// fptc_servestat: render the serve worker's live status file.
//
// Usage:
//   fptc_servestat <status.json> [--raw]
//
// The status file is the atomic (temp + rename) JSON export the worker
// refreshes every FPTC_SERVE_STATUS_S seconds; this CLI turns it into a
// greppable key=value summary so scripts and humans need no JSON parser:
//
//   servestat: pid=<n> generation=<n> tier=<name> flows_active=<n> ...
//   stage name=<stage> count=<n> p50_ns=<n> p95_ns=<n> p99_ns=<n> ...
//
// --raw prints the file verbatim instead.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

int usage(const char* argv0)
{
    std::fprintf(stderr, "usage: %s <status.json> [--raw]\n", argv0);
    return 2;
}

/// Minimal field extraction for the flat JSON the worker emits: finds
/// "key": and returns the scalar (number, bool, or quoted string) after it,
/// searching from `from` so repeated keys (stage entries) can be walked.
std::string field(const std::string& text, const std::string& key, std::size_t from = 0,
                  std::size_t* end = nullptr)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = text.find(needle, from);
    if (at == std::string::npos) {
        return "";
    }
    std::size_t pos = at + needle.size();
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
        ++pos;
    }
    std::string value;
    if (pos < text.size() && text[pos] == '"') {
        const std::size_t close = text.find('"', pos + 1);
        if (close == std::string::npos) {
            return "";
        }
        value = text.substr(pos + 1, close - pos - 1);
        pos = close + 1;
    } else {
        while (pos < text.size() && text[pos] != ',' && text[pos] != '\n' &&
               text[pos] != '}' && text[pos] != ']') {
            value += text[pos++];
        }
        while (!value.empty() && value.back() == ' ') {
            value.pop_back();
        }
    }
    if (end != nullptr) {
        *end = pos;
    }
    return value;
}

} // namespace

int main(int argc, char** argv)
{
    std::string path;
    bool raw = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--raw") == 0) {
            raw = true;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty()) {
        return usage(argv[0]);
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "fptc_servestat: cannot open %s\n", path.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    if (text.empty()) {
        std::fprintf(stderr, "fptc_servestat: %s is empty\n", path.c_str());
        return 1;
    }
    if (raw) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }

    const char* scalars[] = {"pid",           "generation",     "model_generation",
                             "uptime_s",      "breaker_tier_name", "flows_active",
                             "flows_ingested", "flows_classified", "flows_unknown",
                             "shed_total",    "drift_alarms",   "slo_compliance",
                             "snapshots",     "postmortems"};
    std::printf("servestat:");
    for (const char* key : scalars) {
        const std::string value = field(text, key);
        // tier rides under a short name in the summary line
        const char* label = std::strcmp(key, "breaker_tier_name") == 0 ? "tier" : key;
        std::printf(" %s=%s", label, value.empty() ? "?" : value.c_str());
    }
    std::printf(" frec_events=%s frec_dropped=%s\n",
                field(text, "events", text.find("\"flightrec\"")).c_str(),
                field(text, "dropped", text.find("\"flightrec\"")).c_str());

    // One line per stage entry in the "stages" array.
    std::size_t cursor = text.find("\"stages\"");
    while (cursor != std::string::npos) {
        std::size_t after = 0;
        const std::string stage = field(text, "stage", cursor, &after);
        if (stage.empty()) {
            break;
        }
        std::printf("stage name=%s count=%s p50_ns=%s p95_ns=%s p99_ns=%s "
                    "p99_exemplar_flow=%s\n",
                    stage.c_str(), field(text, "count", after).c_str(),
                    field(text, "p50_ns", after).c_str(), field(text, "p95_ns", after).c_str(),
                    field(text, "p99_ns", after).c_str(),
                    field(text, "p99_exemplar_flow", after).c_str());
        cursor = after;
    }
    return 0;
}
