// fptc_merge_telemetry: fold per-shard telemetry artifacts into one file.
//
// Usage:
//   fptc_merge_telemetry --prom  <out.prom>  <in1.prom>  [in2.prom ...]
//   fptc_merge_telemetry --trace <out.json>  <in1.json>  [in2.json ...]
//
// The coordinator of a sharded run calls the same library functions
// automatically; this CLI exists for merging artifacts after the fact
// (e.g. shard files salvaged from a killed fleet) and for scripting.
#include "fptc/util/telemetry_merge.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

int usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s --prom|--trace <output> <input> [input ...]\n"
                 "  --prom   merge Prometheus text files (counters/histograms sum,\n"
                 "           gauges take the max)\n"
                 "  --trace  merge Chrome trace JSON files (input i's events get\n"
                 "           pid i+1)\n",
                 argv0);
    return 2;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 4) {
        return usage(argv[0]);
    }
    const std::string mode = argv[1];
    const std::string output = argv[2];
    std::vector<std::string> inputs;
    for (int i = 3; i < argc; ++i) {
        inputs.emplace_back(argv[i]);
    }
    try {
        std::size_t contributing = 0;
        if (mode == "--prom") {
            contributing = fptc::util::merge_prometheus_files(inputs, output);
        } else if (mode == "--trace") {
            contributing = fptc::util::merge_trace_files(inputs, output);
        } else {
            return usage(argv[0]);
        }
        std::fprintf(stderr, "merged %zu of %zu input(s) into %s\n", contributing,
                     inputs.size(), output.c_str());
    } catch (const std::exception& error) {
        std::fprintf(stderr, "fptc_merge_telemetry: %s\n", error.what());
        return 1;
    }
    return 0;
}
