// fptc_flightrec: decode a serve flight-recorder postmortem (or a raw ring
// file left behind by a dead worker) into human-readable timelines.
//
// Usage:
//   fptc_flightrec <postmortem> [--flow <id>] [--ring]
//
//   --flow <id>  print only the named flow's lifecycle timeline
//   --ring       treat the input as a raw ring file (unsealed), not a
//                CRC-checked postmortem
//
// Output shape (greppable, one record per line):
//   postmortem: reason=<name> generation=<n> events=<n> dropped=<n>
//               last_watermark=<n|none>
//   event ring=<name> ts_ns=<n> kind=<name> flow=<id> arg=<n> detail=<n>
//   exemplar stage=<name> bucket=<b> upper_ns=<n> flow=<id>
#include "fptc/serve/flightrec.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace {

int usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <postmortem> [--flow <id>] [--ring]\n"
                 "  --flow <id>  print only that flow's lifecycle timeline\n"
                 "  --ring       input is a raw (unsealed) ring file\n",
                 argv0);
    return 2;
}

/// kind-aware rendering of the detail word: the shed reason taxonomy for
/// shed events, the backend tier for classify events, raw otherwise.
std::string detail_text(const fptc::serve::FlightEvent& event)
{
    using fptc::serve::FrecKind;
    switch (static_cast<FrecKind>(event.kind)) {
    case FrecKind::shed:
        return fptc::serve::frec_shed_name(event.detail);
    case FrecKind::classify_start:
    case FrecKind::classify_end:
        return "tier" + std::to_string(event.detail);
    case FrecKind::quarantine:
        return event.detail == 1 ? "backwards_ts" : "invalid";
    default:
        return std::to_string(event.detail);
    }
}

} // namespace

int main(int argc, char** argv)
{
    std::string path;
    std::optional<std::uint64_t> flow_filter;
    bool raw_ring = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--flow") == 0) {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            flow_filter = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--ring") == 0) {
            raw_ring = true;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty()) {
        return usage(argv[0]);
    }

    const auto postmortem = raw_ring
                                ? fptc::serve::FlightRecorder::read_ring_file(path)
                                : fptc::serve::load_postmortem(path);
    if (!postmortem.has_value()) {
        std::fprintf(stderr, "fptc_flightrec: cannot decode %s (%s)\n", path.c_str(),
                     raw_ring ? "bad ring file" : "missing, corrupt, or version skew");
        return 1;
    }

    std::uint64_t dropped = 0;
    for (const auto& ring : postmortem->rings) {
        dropped += ring.dropped;
    }
    const auto watermark = postmortem->last_watermark();
    std::printf("postmortem: reason=%s generation=%u events=%llu dropped=%llu "
                "last_watermark=%s detail=\"%s\"\n",
                fptc::serve::postmortem_reason_name(postmortem->reason),
                postmortem->generation,
                static_cast<unsigned long long>(postmortem->event_count()),
                static_cast<unsigned long long>(dropped),
                watermark.has_value() ? std::to_string(*watermark).c_str() : "none",
                postmortem->detail.c_str());

    // Flatten, then order by timestamp: a flow's timeline crosses rings
    // (driver ingest -> assembler window -> classifier verdict).
    struct Line {
        std::uint32_t ring;
        fptc::serve::FlightEvent event;
    };
    std::vector<Line> lines;
    for (const auto& ring : postmortem->rings) {
        for (const auto& event : ring.events) {
            if (flow_filter.has_value() && event.flow_id != *flow_filter) {
                continue;
            }
            lines.push_back({ring.ring, event});
        }
    }
    std::stable_sort(lines.begin(), lines.end(),
                     [](const Line& a, const Line& b) { return a.event.ts_ns < b.event.ts_ns; });
    for (const Line& line : lines) {
        std::printf("event ring=%s ts_ns=%llu kind=%s flow=%llu arg=%llu detail=%s\n",
                    fptc::serve::frec_ring_name(line.ring),
                    static_cast<unsigned long long>(line.event.ts_ns),
                    fptc::serve::frec_kind_name(line.event.kind),
                    static_cast<unsigned long long>(line.event.flow_id),
                    static_cast<unsigned long long>(line.event.arg),
                    detail_text(line.event).c_str());
    }

    if (!flow_filter.has_value()) {
        for (const auto& exemplar : postmortem->exemplars) {
            // bucket b holds values of bit width b: upper bound 2^b - 1.
            const std::uint64_t upper =
                exemplar.bucket == 0
                    ? 0
                    : (exemplar.bucket >= 64 ? ~0ULL : (1ULL << exemplar.bucket) - 1);
            std::printf("exemplar stage=%s bucket=%u upper_ns=%llu flow=%llu\n",
                        fptc::serve::frec_stage_name(exemplar.stage), exemplar.bucket,
                        static_cast<unsigned long long>(upper),
                        static_cast<unsigned long long>(exemplar.flow_id));
        }
        if (!postmortem->metrics_text.empty()) {
            std::printf("metrics_snapshot_bytes=%zu\n", postmortem->metrics_text.size());
        }
    }
    return 0;
}
