// Few-shot contrastive learning end to end (paper Sec. 4.4 / Table 5).
//
// 1. Pre-train a SimCLR network on 100 unlabeled flows per class with the
//    Change RTT + Time shift view pair (NT-Xent, temperature 0.07).
// 2. Freeze the representation and fine-tune a linear classifier with
//    1, 3, 5 and 10 labeled samples per class — the sensitivity sweep the
//    Ref-Paper reports ("93.4% accuracy with only 3 samples, and 94.5% with
//    10 samples" on script).
// 3. Save and reload the pre-trained trunk to show the artifact workflow.
#include "fptc/core/campaign.hpp"
#include "fptc/nn/serialize.hpp"
#include "fptc/util/table.hpp"

#include <cstdio>
#include <iostream>

int main()
{
    using namespace fptc;

    std::cout << "Few-shot contrastive learning (SimCLR + linear fine-tuning)\n"
              << "============================================================\n\n";

    const auto data = core::load_ucdavis();
    const auto split = flow::fixed_per_class_split(data.pretraining, 100, /*seed=*/1);
    std::vector<flow::Flow> pool;
    for (const auto i : split.train) {
        pool.push_back(data.pretraining.flows[i]);
    }
    std::cout << "unlabeled pre-training pool: " << pool.size() << " flows (100 per class)\n";

    // --- SimCLR pre-training ------------------------------------------------
    nn::ModelConfig model_config;
    model_config.num_classes = data.num_classes();
    model_config.with_dropout = false; // the paper's own conclusion (Table 5)
    model_config.projection_dim = 30;
    auto network = nn::make_simclr_network(model_config);

    const augment::ViewPairGenerator views; // Change RTT + Time shift
    core::SimClrConfig pretrain_config;
    pretrain_config.max_epochs = 10;
    const auto pretrain = core::pretrain_simclr(network, pool, views, pretrain_config);
    std::printf("pre-trained for %d epochs; contrastive top-5 accuracy %.1f%%, NT-Xent %.3f\n\n",
                pretrain.epochs_run, 100.0 * pretrain.best_top5_accuracy, pretrain.final_loss);

    // --- Few-shot fine-tuning sweep ------------------------------------------
    const auto script_set = core::rasterize(data.script.flows, views.config());
    const auto human_set = core::rasterize(data.human.flows, views.config());
    const auto script_embedded = core::embed_set(network, script_set);
    const auto human_embedded = core::embed_set(network, human_set);

    util::Table table("Fine-tuning sensitivity to the number of labeled samples per class");
    table.set_header({"samples/class", "script acc (%)", "human acc (%)"});

    flow::Dataset pool_dataset;
    pool_dataset.class_names = data.pretraining.class_names;
    pool_dataset.flows = pool;

    for (const std::size_t shots : {std::size_t{1}, std::size_t{3}, std::size_t{5}, std::size_t{10}}) {
        // Labeled subset from the pool.
        util::Rng rng(1000 + shots);
        std::vector<flow::Flow> labeled;
        for (std::size_t label = 0; label < pool_dataset.num_classes(); ++label) {
            auto indices = pool_dataset.indices_of_class(label);
            rng.shuffle(indices);
            for (std::size_t i = 0; i < shots && i < indices.size(); ++i) {
                labeled.push_back(pool_dataset.flows[indices[i]]);
            }
        }
        const auto train_embedded =
            core::embed_set(network, core::rasterize(labeled, views.config()));

        auto head = nn::make_finetune_head(model_config);
        (void)core::train_head(head, train_embedded, core::finetune_config(7));
        const auto script_cm = core::evaluate_head(head, script_embedded, data.num_classes());
        const auto human_cm = core::evaluate_head(head, human_embedded, data.num_classes());
        table.add_row({std::to_string(shots),
                       util::format_double(100.0 * script_cm.accuracy(), 1),
                       util::format_double(100.0 * human_cm.accuracy(), 1)});
    }
    std::cout << table.to_string() << '\n';
    std::cout << "expected shape: accuracy grows with shots and saturates around 10; human\n"
              << "stays below script (the data shift persists through the latent space).\n\n";

    // --- Artifact workflow ----------------------------------------------------
    const std::string path = "/tmp/fptc_simclr_trunk.bin";
    nn::save_network(network.trunk, path);
    auto restored = nn::make_simclr_network(model_config);
    nn::load_network(restored.trunk, path);
    std::cout << "pre-trained trunk saved to and restored from " << path << " ("
              << network.trunk.parameter_count() << " parameters)\n";
    return 0;
}
