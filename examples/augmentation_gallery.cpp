// Augmentation gallery: one flow, all 7 strategies, rendered side by side.
//
// Visual companion to Tables 4/8 — shows what each augmentation actually
// does to a flowpic: Change RTT stretches/compresses the time axis, Time
// shift translates it, Packet loss thins the counts, Rotate/Flip/Jitter act
// in image space.  Also prints the quantitative deltas (mass and center of
// gravity) per strategy.
#include "fptc/augment/augmentation.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/heatmap.hpp"
#include "fptc/util/table.hpp"

#include <cmath>
#include <iostream>

namespace {

using namespace fptc;

struct PicStats {
    double mass = 0.0;
    double time_center = 0.0; ///< mass-weighted mean column
    double size_center = 0.0; ///< mass-weighted mean row
};

PicStats stats_of(const flowpic::Flowpic& pic)
{
    PicStats s;
    const std::size_t n = pic.resolution();
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            const double v = pic.at(r, c);
            s.mass += v;
            s.time_center += v * static_cast<double>(c);
            s.size_center += v * static_cast<double>(r);
        }
    }
    if (s.mass > 0.0) {
        s.time_center /= s.mass;
        s.size_center /= s.mass;
    }
    return s;
}

} // namespace

int main()
{
    using namespace fptc;

    std::cout << "Augmentation gallery (one Google Music flow, 32x32 flowpics)\n"
              << "=============================================================\n\n";

    // Google Music has the clearest visual structure (the audio-chunk
    // stripes), so transformations are easy to spot.
    util::Rng flow_rng(2024);
    const auto profile = trafficgen::ucdavis19_profile(2, /*human_shift=*/false);
    const auto flow = trafficgen::generate_flow(profile, 2, flow_rng);
    std::cout << "source flow: " << flow.packets.size() << " packets over "
              << flow.duration() << " s\n\n";

    const flowpic::FlowpicConfig config{.resolution = 32};
    const auto original = flowpic::Flowpic::from_flow(flow, config);
    const auto reference = stats_of(original);

    util::Table table("Effect of each strategy on flowpic mass and center of gravity");
    table.set_header({"Strategy", "mass", "Δtime center (cols)", "Δsize center (rows)"});

    util::HeatmapOptions render;
    render.show_scale = false;

    for (const auto kind : augment::all_augmentations()) {
        const auto augmentation = augment::make_augmentation(kind);
        util::Rng rng(7);
        const auto pic = augmentation->augmented_flowpic(flow, config, rng);
        const auto s = stats_of(pic);
        std::cout << "--- " << augmentation->name() << " ---\n"
                  << util::render_heatmap(pic.counts(), 32, 32, render);
        table.add_row({std::string(augmentation->name()), util::format_double(s.mass, 0),
                       util::format_double(s.time_center - reference.time_center, 2),
                       util::format_double(s.size_center - reference.size_center, 2)});
    }

    std::cout << '\n' << table.to_string() << '\n';
    std::cout << "reading guide: Time shift moves the time center; Change RTT re-spaces the\n"
              << "stripes; Packet loss reduces mass; Rotate bleeds mass across size rows —\n"
              << "which is why it breaks sparse datasets like MIRAGE-19 (Table 8).\n";
    return 0;
}
