// Quickstart: the whole pipeline in one page.
//
// 1. Generate a synthetic UCDAVIS19-like dataset (packet time series).
// 2. Turn flows into 32x32 flowpics.
// 3. Expand a 100-per-class training split with the Change RTT augmentation.
// 4. Train the paper's LeNet-5 and evaluate on the script & human partitions.
//
// Expected output: high accuracy on `script`, a visibly lower accuracy on
// `human` — the data shift at the center of the paper's findings.
#include "fptc/core/campaign.hpp"
#include "fptc/util/heatmap.hpp"
#include "fptc/util/table.hpp"

#include <chrono>
#include <iostream>

int main()
{
    using namespace fptc;

    std::cout << "flowpic-tc quickstart\n=====================\n\n";
    const auto t0 = std::chrono::steady_clock::now();

    // (1) Synthetic UCDAVIS19: pretraining / script / human partitions.
    const auto data = core::load_ucdavis(/*samples_scale=*/0.2, /*seed=*/19);
    std::cout << "generated " << data.pretraining.size() << " pretraining flows, "
              << data.script.size() << " script flows, " << data.human.size()
              << " human flows over " << data.num_classes() << " classes\n\n";

    // (2) One flowpic, rendered as ASCII (cf. the paper's Fig. 1).
    const flowpic::FlowpicConfig pic_config{.resolution = 32};
    const auto example_pic =
        flowpic::Flowpic::from_flow(data.pretraining.flows.front(), pic_config);
    std::cout << "a '" << data.pretraining.class_names[data.pretraining.flows.front().label]
              << "' flow as a 32x32 flowpic:\n"
              << util::render_heatmap(example_pic.counts(), 32, 32) << '\n';

    // (3+4) One supervised experiment of the paper's Table 4 protocol.
    core::SupervisedOptions options;
    options.augment_copies = 3;
    options.max_epochs = 15;
    const auto result = core::run_ucdavis_supervised(
        data, augment::AugmentationKind::change_rtt, /*split_seed=*/1, /*train_seed=*/1, options);

    util::Table table("LeNet-5 trained on 100 flows/class + Change RTT augmentation");
    table.set_header({"test set", "accuracy (%)"});
    table.add_row({"script", util::format_double(100.0 * result.script_accuracy())});
    table.add_row({"human", util::format_double(100.0 * result.human_accuracy())});
    table.add_row({"leftover", util::format_double(100.0 * result.leftover_accuracy())});
    std::cout << table.to_string();
    std::cout << "(training stopped after " << result.epochs_run << " epochs)\n";

    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    std::cout << "\ntotal runtime: " << elapsed << " ms\n";
    return 0;
}
