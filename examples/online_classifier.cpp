// Online classification of a simulated capture.
//
// A deployment-shaped scenario the paper's intro motivates: a monitor
// observes live flows, accumulates their packet series, and classifies each
// flow once its 15 s flowpic window closes (the paper's "late" classifier),
// comparing against an "early" XGBoost model that decides after 10 packets.
// Prints per-flow decisions and the final accuracy of both stages.
#include "fptc/core/campaign.hpp"
#include "fptc/flow/features.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/gbt/gbt.hpp"
#include "fptc/util/table.hpp"

#include <cstdio>
#include <iostream>

int main()
{
    using namespace fptc;

    std::cout << "Online traffic classification demo (early vs late decision)\n"
              << "============================================================\n\n";

    // --- Train both models on a 100-per-class split -------------------------
    const auto data = core::load_ucdavis();
    const flowpic::FlowpicConfig config{.resolution = 32};

    core::SupervisedOptions options;
    options.max_epochs = 10;
    options.augment_copies = 2;
    std::cout << "training late-stage CNN (LeNet-5 on flowpics, Change RTT augmentation)...\n";
    const auto split = flow::fixed_per_class_split(data.pretraining, 100, 3);
    const auto tv = flow::train_validation_split(split.train, 0.8, 3);
    std::vector<flow::Flow> train_flows;
    for (const auto i : tv.train) {
        train_flows.push_back(data.pretraining.flows[i]);
    }
    std::vector<flow::Flow> val_flows;
    for (const auto i : tv.validation) {
        val_flows.push_back(data.pretraining.flows[i]);
    }
    util::Rng augment_rng(3);
    const auto train_set = core::augment_set(train_flows, augment::AugmentationKind::change_rtt,
                                             2, config, augment_rng);
    const auto val_set = core::rasterize(val_flows, config);

    nn::ModelConfig model_config;
    model_config.num_classes = data.num_classes();
    auto cnn = nn::make_supervised_network(model_config);
    core::TrainConfig train_config;
    train_config.max_epochs = 10;
    (void)core::train_supervised(cnn, train_set, val_set, train_config);

    std::cout << "training early-stage model (XGBoost on the first 10 packets)...\n\n";
    std::vector<std::vector<float>> early_x;
    std::vector<std::size_t> early_y;
    for (const auto i : split.train) {
        const auto features = flow::early_time_series(data.pretraining.flows[i]);
        early_x.emplace_back(features.begin(), features.end());
        early_y.push_back(data.pretraining.flows[i].label);
    }
    gbt::GbtConfig gbt_config;
    gbt_config.num_rounds = 40;
    gbt::GbtClassifier early_model(gbt_config, data.num_classes());
    early_model.fit(early_x, early_y);

    // --- Simulate a live capture: classify script flows as they "arrive" ---
    std::size_t early_correct = 0;
    std::size_t late_correct = 0;
    std::size_t shown = 0;
    std::cout << "live capture (script partition, " << data.script.size() << " flows):\n";
    std::cout << "  flow  truth           early@10pkts     late@15s         agree?\n";
    for (std::size_t i = 0; i < data.script.size(); ++i) {
        const auto& f = data.script.flows[i];

        // Early decision after 10 packets.
        const auto early_features = flow::early_time_series(f);
        const std::vector<float> early_vector(early_features.begin(), early_features.end());
        const auto early_prediction = early_model.predict(early_vector);

        // Late decision once the flowpic window closes.
        auto sample = core::rasterize(std::span(&f, 1), config);
        const auto logits = cnn.forward(sample.tensor_of(0), false);
        const auto late_prediction = nn::argmax_rows(logits)[0];

        early_correct += early_prediction == f.label;
        late_correct += late_prediction == f.label;
        if (shown < 12) { // print the first few decisions
            std::printf("  %4zu  %-15s %-16s %-16s %s\n", i,
                        data.script.class_names[f.label].c_str(),
                        data.script.class_names[early_prediction].c_str(),
                        data.script.class_names[late_prediction].c_str(),
                        early_prediction == late_prediction ? "yes" : "NO");
            ++shown;
        }
    }

    const auto n = static_cast<double>(data.script.size());
    std::printf("\nearly (10 packets) accuracy: %.1f%%\n", 100.0 * early_correct / n);
    std::printf("late (15 s flowpic) accuracy: %.1f%%\n", 100.0 * late_correct / n);
    std::cout << "\nthe flowpic stage is more accurate but must wait out the 15 s window —\n"
              << "exactly the early-vs-late tension discussed in the paper's Sec. 2.2.\n";
    return 0;
}
