// Dataset curation walkthrough (paper Sec. 3.4 / Table 2).
//
// Builds all four synthetic datasets, applies the paper's curation steps
// one at a time (ACK removal, background removal, minimum-packet filters,
// small-class removal, the 4-into-1 collation) and prints a Table-2 style
// summary after each stage so the effect of every step is visible.
#include "fptc/flow/filters.hpp"
#include "fptc/trafficgen/mobile.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/table.hpp"

#include <iostream>

int main()
{
    using namespace fptc;

    std::cout << "Dataset curation walkthrough (cf. paper Sec. 3.4, Table 2)\n"
              << "===========================================================\n\n";

    // --- UCDAVIS19: pre-partitioned by its authors, no curation needed ----
    trafficgen::UcdavisOptions ucdavis_options;
    std::vector<flow::Dataset> ucdavis_partitions;
    for (const auto partition :
         {trafficgen::UcdavisPartition::pretraining, trafficgen::UcdavisPartition::script,
          trafficgen::UcdavisPartition::human}) {
        ucdavis_partitions.push_back(trafficgen::make_ucdavis19(partition, ucdavis_options));
    }
    std::cout << flow::render_summaries(ucdavis_partitions) << '\n';
    std::cout << "UCDAVIS19 ships pre-partitioned and pre-filtered: \"we found no need to\n"
              << "alter the dataset beside the mere conversion to parquet\" (Sec. 3.4).\n\n";

    // --- MIRAGE-19: the full curation pipeline, step by step ---------------
    trafficgen::MobileGenOptions mobile_options;
    mobile_options.samples_scale = 0.02;

    auto mirage19 = trafficgen::make_mirage19_raw(mobile_options);
    std::vector<flow::Dataset> stages;
    mirage19.name = "mirage19 raw";
    stages.push_back(mirage19);

    mirage19 = flow::remove_ack_packets(std::move(mirage19));
    mirage19.name = "after ACK removal";
    stages.push_back(mirage19);

    mirage19 = flow::remove_background_flows(std::move(mirage19));
    mirage19.name = "after background removal";
    stages.push_back(mirage19);

    mirage19 = flow::filter_min_packets(std::move(mirage19), 10);
    mirage19.name = "after >10pkts filter";
    stages.push_back(mirage19);

    mirage19 = flow::drop_small_classes(std::move(mirage19),
                                        trafficgen::scaled_min_class_samples(mobile_options));
    mirage19.name = "after small-class removal";
    stages.push_back(mirage19);

    std::cout << "MIRAGE-19 curation pipeline:\n" << flow::render_summaries(stages) << '\n';

    // --- MIRAGE-22 variants and UTMOBILENET21 ------------------------------
    std::vector<flow::Dataset> others;
    others.push_back(trafficgen::make_mirage22(mobile_options, 10));
    others.push_back(
        trafficgen::make_mirage22(mobile_options, trafficgen::kMirage22LongFlowThreshold));
    others.push_back(trafficgen::make_utmobilenet21_raw(mobile_options));
    others.back().name = "utmobilenet21 raw (17 classes, 4 partitions collated)";
    others.push_back(trafficgen::make_utmobilenet21(mobile_options));
    std::cout << "Replication datasets:\n" << flow::render_summaries(others) << '\n';

    std::cout << "note the class-count drop of UTMOBILENET21 under curation (paper: 17 -> 10)\n"
              << "and the higher mean packet count of the MIRAGE-22 long-flow variant.\n";
    return 0;
}
