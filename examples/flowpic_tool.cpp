// flowpic_tool — a tcbench-style command-line front end over the library.
//
// Subcommands:
//   generate <dataset> <out.csv>      synthesize a dataset and export it
//                                     (datasets: ucdavis19-pretraining,
//                                      ucdavis19-script, ucdavis19-human,
//                                      mirage19, mirage22, utmobilenet21)
//   summarize <in.csv>                Table-2 style summary of a dataset CSV
//   train <in.csv> <model.bin>        train the paper's LeNet-5 (80/20
//                                     train/val, Change RTT augmentation)
//                                     and save the weights
//   classify <model.bin> <in.csv>     classify every flow of a CSV with a
//                                     saved model; prints the confusion
//   render <in.csv> <flow-index>      render one flow's 32x32 flowpic
//
// The CSV format is the library's monolithic interchange format
// (fptc/flow/io.hpp) — real captures converted to it run through the same
// commands unchanged.
#include "fptc/core/campaign.hpp"
#include "fptc/flow/io.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/nn/serialize.hpp"
#include "fptc/trafficgen/mobile.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/heatmap.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <string>

namespace {

using namespace fptc;

int usage()
{
    std::cerr << "usage:\n"
              << "  flowpic_tool generate <dataset> <out.csv>\n"
              << "  flowpic_tool summarize <in.csv>\n"
              << "  flowpic_tool train <in.csv> <model.bin>\n"
              << "  flowpic_tool classify <model.bin> <in.csv>\n"
              << "  flowpic_tool render <in.csv> <flow-index>\n"
              << "datasets: ucdavis19-pretraining | ucdavis19-script | ucdavis19-human |\n"
              << "          mirage19 | mirage22 | utmobilenet21\n";
    return 2;
}

[[nodiscard]] flow::Dataset make_named_dataset(const std::string& name)
{
    trafficgen::UcdavisOptions ucdavis;
    trafficgen::MobileGenOptions mobile;
    mobile.samples_scale = 0.02;
    if (name == "ucdavis19-pretraining") {
        return trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::pretraining, ucdavis);
    }
    if (name == "ucdavis19-script") {
        return trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::script, ucdavis);
    }
    if (name == "ucdavis19-human") {
        return trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::human, ucdavis);
    }
    if (name == "mirage19") {
        return trafficgen::make_mirage19(mobile);
    }
    if (name == "mirage22") {
        return trafficgen::make_mirage22(mobile);
    }
    if (name == "utmobilenet21") {
        return trafficgen::make_utmobilenet21(mobile);
    }
    throw std::runtime_error("unknown dataset '" + name + "'");
}

int cmd_generate(const std::string& name, const std::string& path)
{
    const auto dataset = make_named_dataset(name);
    flow::write_dataset_csv(dataset, path);
    std::cout << "wrote " << dataset.size() << " flows (" << dataset.num_classes()
              << " classes) to " << path << '\n';
    return 0;
}

int cmd_summarize(const std::string& path)
{
    auto dataset = flow::read_dataset_csv(path);
    dataset.name = path;
    std::cout << flow::render_summaries({dataset});
    return 0;
}

int cmd_train(const std::string& csv_path, const std::string& model_path)
{
    const auto dataset = flow::read_dataset_csv(csv_path);
    if (dataset.size() < 10) {
        throw std::runtime_error("train: dataset too small");
    }
    std::vector<std::size_t> all(dataset.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = i;
    }
    const auto tv = flow::train_validation_split(all, 0.8, 1);
    std::vector<flow::Flow> train_flows;
    std::vector<flow::Flow> val_flows;
    for (const auto i : tv.train) {
        train_flows.push_back(dataset.flows[i]);
    }
    for (const auto i : tv.validation) {
        val_flows.push_back(dataset.flows[i]);
    }

    const flowpic::FlowpicConfig config{.resolution = 32};
    util::Rng rng(1);
    const auto train_set =
        core::augment_set(train_flows, augment::AugmentationKind::change_rtt, 2, config, rng);
    const auto val_set = core::rasterize(val_flows, config);

    nn::ModelConfig model_config;
    model_config.num_classes = dataset.num_classes();
    auto network = nn::make_supervised_network(model_config);
    core::TrainConfig train_config;
    train_config.max_epochs = 15;
    const auto result = core::train_supervised(network, train_set, val_set, train_config);

    const auto confusion = core::evaluate(network, val_set, dataset.num_classes());
    std::cout << "trained " << result.epochs_run << " epochs; validation accuracy "
              << util::format_double(100.0 * confusion.accuracy(), 2) << "%\n";
    nn::save_network(network, model_path);
    std::cout << "model saved to " << model_path << " (" << network.parameter_count()
              << " parameters)\n";
    return 0;
}

int cmd_classify(const std::string& model_path, const std::string& csv_path)
{
    const auto dataset = flow::read_dataset_csv(csv_path);
    nn::ModelConfig model_config;
    model_config.num_classes = dataset.num_classes();
    auto network = nn::make_supervised_network(model_config);
    nn::load_network(network, model_path);

    const auto samples = core::rasterize(dataset.flows, {.resolution = 32});
    const auto confusion = core::evaluate(network, samples, dataset.num_classes());
    std::cout << "classified " << dataset.size() << " flows; accuracy "
              << util::format_double(100.0 * confusion.accuracy(), 2) << "%\n\n";
    std::cout << util::render_confusion(confusion.row_normalized(), dataset.class_names);
    return 0;
}

int cmd_render(const std::string& csv_path, const std::string& index_text)
{
    const auto dataset = flow::read_dataset_csv(csv_path);
    const auto index = static_cast<std::size_t>(std::stoul(index_text));
    if (index >= dataset.size()) {
        throw std::runtime_error("render: flow index out of range");
    }
    const auto& flow = dataset.flows[index];
    std::cout << "flow " << index << " (" << dataset.class_names[flow.label] << ", "
              << flow.packets.size() << " packets, " << util::format_double(flow.duration(), 2)
              << " s):\n";
    const auto pic = flowpic::Flowpic::from_flow(flow, {.resolution = 32});
    std::cout << util::render_heatmap(pic.counts(), 32, 32);
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    try {
        const std::string command = argc > 1 ? argv[1] : "";
        if (command == "generate" && argc == 4) {
            return cmd_generate(argv[2], argv[3]);
        }
        if (command == "summarize" && argc == 3) {
            return cmd_summarize(argv[2]);
        }
        if (command == "train" && argc == 4) {
            return cmd_train(argv[2], argv[3]);
        }
        if (command == "classify" && argc == 4) {
            return cmd_classify(argv[2], argv[3]);
        }
        if (command == "render" && argc == 4) {
            return cmd_render(argv[2], argv[3]);
        }
        return usage();
    } catch (const std::exception& error) {
        std::cerr << "flowpic_tool: " << error.what() << '\n';
        return 1;
    }
}
