file(REMOVE_RECURSE
  "CMakeFiles/few_shot_contrastive.dir/few_shot_contrastive.cpp.o"
  "CMakeFiles/few_shot_contrastive.dir/few_shot_contrastive.cpp.o.d"
  "few_shot_contrastive"
  "few_shot_contrastive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/few_shot_contrastive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
