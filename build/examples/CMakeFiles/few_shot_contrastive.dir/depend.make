# Empty dependencies file for few_shot_contrastive.
# This may be replaced when dependencies are built.
