# Empty compiler generated dependencies file for augmentation_gallery.
# This may be replaced when dependencies are built.
