# Empty compiler generated dependencies file for dataset_curation.
# This may be replaced when dependencies are built.
