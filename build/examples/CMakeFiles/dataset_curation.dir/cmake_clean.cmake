file(REMOVE_RECURSE
  "CMakeFiles/dataset_curation.dir/dataset_curation.cpp.o"
  "CMakeFiles/dataset_curation.dir/dataset_curation.cpp.o.d"
  "dataset_curation"
  "dataset_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
