file(REMOVE_RECURSE
  "CMakeFiles/online_classifier.dir/online_classifier.cpp.o"
  "CMakeFiles/online_classifier.dir/online_classifier.cpp.o.d"
  "online_classifier"
  "online_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
