# Empty compiler generated dependencies file for online_classifier.
# This may be replaced when dependencies are built.
