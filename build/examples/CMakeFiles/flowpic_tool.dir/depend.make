# Empty dependencies file for flowpic_tool.
# This may be replaced when dependencies are built.
