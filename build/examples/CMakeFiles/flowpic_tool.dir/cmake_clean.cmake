file(REMOVE_RECURSE
  "CMakeFiles/flowpic_tool.dir/flowpic_tool.cpp.o"
  "CMakeFiles/flowpic_tool.dir/flowpic_tool.cpp.o.d"
  "flowpic_tool"
  "flowpic_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowpic_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
