# Empty dependencies file for table3_ml_baseline.
# This may be replaced when dependencies are built.
