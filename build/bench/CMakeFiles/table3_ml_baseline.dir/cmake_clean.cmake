file(REMOVE_RECURSE
  "CMakeFiles/table3_ml_baseline.dir/table3_ml_baseline.cpp.o"
  "CMakeFiles/table3_ml_baseline.dir/table3_ml_baseline.cpp.o.d"
  "table3_ml_baseline"
  "table3_ml_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ml_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
