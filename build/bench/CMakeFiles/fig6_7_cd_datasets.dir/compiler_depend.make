# Empty compiler generated dependencies file for fig6_7_cd_datasets.
# This may be replaced when dependencies are built.
