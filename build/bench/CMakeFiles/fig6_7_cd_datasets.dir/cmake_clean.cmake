file(REMOVE_RECURSE
  "CMakeFiles/fig6_7_cd_datasets.dir/fig6_7_cd_datasets.cpp.o"
  "CMakeFiles/fig6_7_cd_datasets.dir/fig6_7_cd_datasets.cpp.o.d"
  "fig6_7_cd_datasets"
  "fig6_7_cd_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_7_cd_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
