# Empty dependencies file for ablation_byol.
# This may be replaced when dependencies are built.
