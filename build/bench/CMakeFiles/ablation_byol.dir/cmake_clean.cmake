file(REMOVE_RECURSE
  "CMakeFiles/ablation_byol.dir/ablation_byol.cpp.o"
  "CMakeFiles/ablation_byol.dir/ablation_byol.cpp.o.d"
  "ablation_byol"
  "ablation_byol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_byol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
