# Empty dependencies file for table7_enlarged_training.
# This may be replaced when dependencies are built.
