file(REMOVE_RECURSE
  "CMakeFiles/table7_enlarged_training.dir/table7_enlarged_training.cpp.o"
  "CMakeFiles/table7_enlarged_training.dir/table7_enlarged_training.cpp.o.d"
  "table7_enlarged_training"
  "table7_enlarged_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_enlarged_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
