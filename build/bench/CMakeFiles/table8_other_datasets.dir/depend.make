# Empty dependencies file for table8_other_datasets.
# This may be replaced when dependencies are built.
