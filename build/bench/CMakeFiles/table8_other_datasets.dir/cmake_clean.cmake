file(REMOVE_RECURSE
  "CMakeFiles/table8_other_datasets.dir/table8_other_datasets.cpp.o"
  "CMakeFiles/table8_other_datasets.dir/table8_other_datasets.cpp.o.d"
  "table8_other_datasets"
  "table8_other_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_other_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
