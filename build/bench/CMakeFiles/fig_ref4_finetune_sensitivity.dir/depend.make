# Empty dependencies file for fig_ref4_finetune_sensitivity.
# This may be replaced when dependencies are built.
