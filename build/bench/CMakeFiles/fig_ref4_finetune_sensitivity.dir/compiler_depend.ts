# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig_ref4_finetune_sensitivity.
