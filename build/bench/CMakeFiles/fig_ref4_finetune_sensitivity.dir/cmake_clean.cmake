file(REMOVE_RECURSE
  "CMakeFiles/fig_ref4_finetune_sensitivity.dir/fig_ref4_finetune_sensitivity.cpp.o"
  "CMakeFiles/fig_ref4_finetune_sensitivity.dir/fig_ref4_finetune_sensitivity.cpp.o.d"
  "fig_ref4_finetune_sensitivity"
  "fig_ref4_finetune_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ref4_finetune_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
