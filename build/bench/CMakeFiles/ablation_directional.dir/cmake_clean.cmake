file(REMOVE_RECURSE
  "CMakeFiles/ablation_directional.dir/ablation_directional.cpp.o"
  "CMakeFiles/ablation_directional.dir/ablation_directional.cpp.o.d"
  "ablation_directional"
  "ablation_directional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_directional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
