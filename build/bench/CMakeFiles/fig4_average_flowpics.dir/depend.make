# Empty dependencies file for fig4_average_flowpics.
# This may be replaced when dependencies are built.
