file(REMOVE_RECURSE
  "CMakeFiles/fig4_average_flowpics.dir/fig4_average_flowpics.cpp.o"
  "CMakeFiles/fig4_average_flowpics.dir/fig4_average_flowpics.cpp.o.d"
  "fig4_average_flowpics"
  "fig4_average_flowpics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_average_flowpics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
