file(REMOVE_RECURSE
  "CMakeFiles/fig3_confusion.dir/fig3_confusion.cpp.o"
  "CMakeFiles/fig3_confusion.dir/fig3_confusion.cpp.o.d"
  "fig3_confusion"
  "fig3_confusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
