# Empty dependencies file for fig3_confusion.
# This may be replaced when dependencies are built.
