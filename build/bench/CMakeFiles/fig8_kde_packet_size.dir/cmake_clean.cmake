file(REMOVE_RECURSE
  "CMakeFiles/fig8_kde_packet_size.dir/fig8_kde_packet_size.cpp.o"
  "CMakeFiles/fig8_kde_packet_size.dir/fig8_kde_packet_size.cpp.o.d"
  "fig8_kde_packet_size"
  "fig8_kde_packet_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_kde_packet_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
