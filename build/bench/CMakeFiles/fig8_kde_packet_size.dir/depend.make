# Empty dependencies file for fig8_kde_packet_size.
# This may be replaced when dependencies are built.
