file(REMOVE_RECURSE
  "CMakeFiles/ablation_supcon.dir/ablation_supcon.cpp.o"
  "CMakeFiles/ablation_supcon.dir/ablation_supcon.cpp.o.d"
  "ablation_supcon"
  "ablation_supcon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_supcon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
