# Empty dependencies file for ablation_supcon.
# This may be replaced when dependencies are built.
