# Empty dependencies file for table5_dropout_projection.
# This may be replaced when dependencies are built.
