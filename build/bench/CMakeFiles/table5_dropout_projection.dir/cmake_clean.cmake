file(REMOVE_RECURSE
  "CMakeFiles/table5_dropout_projection.dir/table5_dropout_projection.cpp.o"
  "CMakeFiles/table5_dropout_projection.dir/table5_dropout_projection.cpp.o.d"
  "table5_dropout_projection"
  "table5_dropout_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dropout_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
