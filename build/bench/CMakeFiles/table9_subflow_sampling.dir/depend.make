# Empty dependencies file for table9_subflow_sampling.
# This may be replaced when dependencies are built.
