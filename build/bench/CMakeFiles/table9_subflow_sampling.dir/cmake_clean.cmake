file(REMOVE_RECURSE
  "CMakeFiles/table9_subflow_sampling.dir/table9_subflow_sampling.cpp.o"
  "CMakeFiles/table9_subflow_sampling.dir/table9_subflow_sampling.cpp.o.d"
  "table9_subflow_sampling"
  "table9_subflow_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_subflow_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
