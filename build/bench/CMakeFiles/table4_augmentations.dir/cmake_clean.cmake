file(REMOVE_RECURSE
  "CMakeFiles/table4_augmentations.dir/table4_augmentations.cpp.o"
  "CMakeFiles/table4_augmentations.dir/table4_augmentations.cpp.o.d"
  "table4_augmentations"
  "table4_augmentations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_augmentations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
