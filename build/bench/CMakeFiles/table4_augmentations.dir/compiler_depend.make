# Empty compiler generated dependencies file for table4_augmentations.
# This may be replaced when dependencies are built.
