# Empty dependencies file for table10_tukey_resolutions.
# This may be replaced when dependencies are built.
