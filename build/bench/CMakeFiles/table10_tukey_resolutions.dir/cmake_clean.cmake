file(REMOVE_RECURSE
  "CMakeFiles/table10_tukey_resolutions.dir/table10_tukey_resolutions.cpp.o"
  "CMakeFiles/table10_tukey_resolutions.dir/table10_tukey_resolutions.cpp.o.d"
  "table10_tukey_resolutions"
  "table10_tukey_resolutions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_tukey_resolutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
