file(REMOVE_RECURSE
  "CMakeFiles/fig5_cd_ranking.dir/fig5_cd_ranking.cpp.o"
  "CMakeFiles/fig5_cd_ranking.dir/fig5_cd_ranking.cpp.o.d"
  "fig5_cd_ranking"
  "fig5_cd_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cd_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
