file(REMOVE_RECURSE
  "CMakeFiles/table6_augmentation_pairs.dir/table6_augmentation_pairs.cpp.o"
  "CMakeFiles/table6_augmentation_pairs.dir/table6_augmentation_pairs.cpp.o.d"
  "table6_augmentation_pairs"
  "table6_augmentation_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_augmentation_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
