# Empty dependencies file for table6_augmentation_pairs.
# This may be replaced when dependencies are built.
