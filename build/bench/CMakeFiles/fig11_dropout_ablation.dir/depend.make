# Empty dependencies file for fig11_dropout_ablation.
# This may be replaced when dependencies are built.
