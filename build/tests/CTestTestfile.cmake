# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_flow_io[1]_include.cmake")
include("/root/repo/build/tests/test_flowpic[1]_include.cmake")
include("/root/repo/build/tests/test_augment[1]_include.cmake")
include("/root/repo/build/tests/test_trafficgen[1]_include.cmake")
include("/root/repo/build/tests/test_nn_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_nn_gradcheck[1]_include.cmake")
include("/root/repo/build/tests/test_nn_loss[1]_include.cmake")
include("/root/repo/build/tests/test_nn_models[1]_include.cmake")
include("/root/repo/build/tests/test_listings[1]_include.cmake")
include("/root/repo/build/tests/test_gbt[1]_include.cmake")
include("/root/repo/build/tests/test_subflow[1]_include.cmake")
include("/root/repo/build/tests/test_core_data[1]_include.cmake")
include("/root/repo/build/tests/test_core_training[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
