# Empty compiler generated dependencies file for test_core_data.
# This may be replaced when dependencies are built.
