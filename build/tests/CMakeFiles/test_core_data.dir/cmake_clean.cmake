file(REMOVE_RECURSE
  "CMakeFiles/test_core_data.dir/test_core_data.cpp.o"
  "CMakeFiles/test_core_data.dir/test_core_data.cpp.o.d"
  "test_core_data"
  "test_core_data.pdb"
  "test_core_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
