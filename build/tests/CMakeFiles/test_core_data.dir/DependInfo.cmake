
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_data.cpp" "tests/CMakeFiles/test_core_data.dir/test_core_data.cpp.o" "gcc" "tests/CMakeFiles/test_core_data.dir/test_core_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fptc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/subflow/CMakeFiles/fptc_subflow.dir/DependInfo.cmake"
  "/root/repo/build/src/gbt/CMakeFiles/fptc_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficgen/CMakeFiles/fptc_trafficgen.dir/DependInfo.cmake"
  "/root/repo/build/src/augment/CMakeFiles/fptc_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/flowpic/CMakeFiles/fptc_flowpic.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fptc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fptc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fptc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fptc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
