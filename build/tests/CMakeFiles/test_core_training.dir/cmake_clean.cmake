file(REMOVE_RECURSE
  "CMakeFiles/test_core_training.dir/test_core_training.cpp.o"
  "CMakeFiles/test_core_training.dir/test_core_training.cpp.o.d"
  "test_core_training"
  "test_core_training.pdb"
  "test_core_training[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
