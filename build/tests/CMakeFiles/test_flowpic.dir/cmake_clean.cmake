file(REMOVE_RECURSE
  "CMakeFiles/test_flowpic.dir/test_flowpic.cpp.o"
  "CMakeFiles/test_flowpic.dir/test_flowpic.cpp.o.d"
  "test_flowpic"
  "test_flowpic.pdb"
  "test_flowpic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flowpic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
