# Empty compiler generated dependencies file for test_flowpic.
# This may be replaced when dependencies are built.
