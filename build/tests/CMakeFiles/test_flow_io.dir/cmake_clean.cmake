file(REMOVE_RECURSE
  "CMakeFiles/test_flow_io.dir/test_flow_io.cpp.o"
  "CMakeFiles/test_flow_io.dir/test_flow_io.cpp.o.d"
  "test_flow_io"
  "test_flow_io.pdb"
  "test_flow_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
