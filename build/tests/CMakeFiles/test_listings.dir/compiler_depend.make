# Empty compiler generated dependencies file for test_listings.
# This may be replaced when dependencies are built.
