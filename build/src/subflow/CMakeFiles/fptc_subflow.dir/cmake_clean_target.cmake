file(REMOVE_RECURSE
  "libfptc_subflow.a"
)
