# Empty compiler generated dependencies file for fptc_subflow.
# This may be replaced when dependencies are built.
