file(REMOVE_RECURSE
  "CMakeFiles/fptc_subflow.dir/subflow.cpp.o"
  "CMakeFiles/fptc_subflow.dir/subflow.cpp.o.d"
  "libfptc_subflow.a"
  "libfptc_subflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_subflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
