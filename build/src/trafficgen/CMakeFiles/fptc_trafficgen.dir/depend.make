# Empty dependencies file for fptc_trafficgen.
# This may be replaced when dependencies are built.
