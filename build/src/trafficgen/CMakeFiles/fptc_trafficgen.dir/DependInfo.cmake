
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trafficgen/mobile.cpp" "src/trafficgen/CMakeFiles/fptc_trafficgen.dir/mobile.cpp.o" "gcc" "src/trafficgen/CMakeFiles/fptc_trafficgen.dir/mobile.cpp.o.d"
  "/root/repo/src/trafficgen/traffic_model.cpp" "src/trafficgen/CMakeFiles/fptc_trafficgen.dir/traffic_model.cpp.o" "gcc" "src/trafficgen/CMakeFiles/fptc_trafficgen.dir/traffic_model.cpp.o.d"
  "/root/repo/src/trafficgen/ucdavis19.cpp" "src/trafficgen/CMakeFiles/fptc_trafficgen.dir/ucdavis19.cpp.o" "gcc" "src/trafficgen/CMakeFiles/fptc_trafficgen.dir/ucdavis19.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/fptc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fptc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fptc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
