file(REMOVE_RECURSE
  "CMakeFiles/fptc_trafficgen.dir/mobile.cpp.o"
  "CMakeFiles/fptc_trafficgen.dir/mobile.cpp.o.d"
  "CMakeFiles/fptc_trafficgen.dir/traffic_model.cpp.o"
  "CMakeFiles/fptc_trafficgen.dir/traffic_model.cpp.o.d"
  "CMakeFiles/fptc_trafficgen.dir/ucdavis19.cpp.o"
  "CMakeFiles/fptc_trafficgen.dir/ucdavis19.cpp.o.d"
  "libfptc_trafficgen.a"
  "libfptc_trafficgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_trafficgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
