file(REMOVE_RECURSE
  "libfptc_trafficgen.a"
)
