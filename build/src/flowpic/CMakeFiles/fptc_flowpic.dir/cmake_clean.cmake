file(REMOVE_RECURSE
  "CMakeFiles/fptc_flowpic.dir/flowpic.cpp.o"
  "CMakeFiles/fptc_flowpic.dir/flowpic.cpp.o.d"
  "libfptc_flowpic.a"
  "libfptc_flowpic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_flowpic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
