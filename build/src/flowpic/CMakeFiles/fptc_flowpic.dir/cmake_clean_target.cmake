file(REMOVE_RECURSE
  "libfptc_flowpic.a"
)
