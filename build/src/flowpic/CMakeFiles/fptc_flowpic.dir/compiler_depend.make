# Empty compiler generated dependencies file for fptc_flowpic.
# This may be replaced when dependencies are built.
