file(REMOVE_RECURSE
  "CMakeFiles/fptc_core.dir/byol.cpp.o"
  "CMakeFiles/fptc_core.dir/byol.cpp.o.d"
  "CMakeFiles/fptc_core.dir/campaign.cpp.o"
  "CMakeFiles/fptc_core.dir/campaign.cpp.o.d"
  "CMakeFiles/fptc_core.dir/data.cpp.o"
  "CMakeFiles/fptc_core.dir/data.cpp.o.d"
  "CMakeFiles/fptc_core.dir/simclr.cpp.o"
  "CMakeFiles/fptc_core.dir/simclr.cpp.o.d"
  "CMakeFiles/fptc_core.dir/trainer.cpp.o"
  "CMakeFiles/fptc_core.dir/trainer.cpp.o.d"
  "libfptc_core.a"
  "libfptc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
