# Empty compiler generated dependencies file for fptc_core.
# This may be replaced when dependencies are built.
