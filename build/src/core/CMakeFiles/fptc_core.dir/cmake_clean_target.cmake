file(REMOVE_RECURSE
  "libfptc_core.a"
)
