# Empty compiler generated dependencies file for fptc_augment.
# This may be replaced when dependencies are built.
