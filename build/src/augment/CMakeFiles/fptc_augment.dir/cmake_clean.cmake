file(REMOVE_RECURSE
  "CMakeFiles/fptc_augment.dir/augmentation.cpp.o"
  "CMakeFiles/fptc_augment.dir/augmentation.cpp.o.d"
  "CMakeFiles/fptc_augment.dir/image.cpp.o"
  "CMakeFiles/fptc_augment.dir/image.cpp.o.d"
  "CMakeFiles/fptc_augment.dir/time_series.cpp.o"
  "CMakeFiles/fptc_augment.dir/time_series.cpp.o.d"
  "CMakeFiles/fptc_augment.dir/view_pair.cpp.o"
  "CMakeFiles/fptc_augment.dir/view_pair.cpp.o.d"
  "libfptc_augment.a"
  "libfptc_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
