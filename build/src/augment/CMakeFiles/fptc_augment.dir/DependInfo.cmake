
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/augment/augmentation.cpp" "src/augment/CMakeFiles/fptc_augment.dir/augmentation.cpp.o" "gcc" "src/augment/CMakeFiles/fptc_augment.dir/augmentation.cpp.o.d"
  "/root/repo/src/augment/image.cpp" "src/augment/CMakeFiles/fptc_augment.dir/image.cpp.o" "gcc" "src/augment/CMakeFiles/fptc_augment.dir/image.cpp.o.d"
  "/root/repo/src/augment/time_series.cpp" "src/augment/CMakeFiles/fptc_augment.dir/time_series.cpp.o" "gcc" "src/augment/CMakeFiles/fptc_augment.dir/time_series.cpp.o.d"
  "/root/repo/src/augment/view_pair.cpp" "src/augment/CMakeFiles/fptc_augment.dir/view_pair.cpp.o" "gcc" "src/augment/CMakeFiles/fptc_augment.dir/view_pair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flowpic/CMakeFiles/fptc_flowpic.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fptc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fptc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fptc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
