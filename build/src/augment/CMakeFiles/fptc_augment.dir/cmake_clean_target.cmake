file(REMOVE_RECURSE
  "libfptc_augment.a"
)
