file(REMOVE_RECURSE
  "CMakeFiles/fptc_gbt.dir/gbt.cpp.o"
  "CMakeFiles/fptc_gbt.dir/gbt.cpp.o.d"
  "libfptc_gbt.a"
  "libfptc_gbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_gbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
