file(REMOVE_RECURSE
  "libfptc_gbt.a"
)
