# Empty dependencies file for fptc_gbt.
# This may be replaced when dependencies are built.
