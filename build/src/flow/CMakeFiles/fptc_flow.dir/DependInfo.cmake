
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/dataset.cpp" "src/flow/CMakeFiles/fptc_flow.dir/dataset.cpp.o" "gcc" "src/flow/CMakeFiles/fptc_flow.dir/dataset.cpp.o.d"
  "/root/repo/src/flow/features.cpp" "src/flow/CMakeFiles/fptc_flow.dir/features.cpp.o" "gcc" "src/flow/CMakeFiles/fptc_flow.dir/features.cpp.o.d"
  "/root/repo/src/flow/filters.cpp" "src/flow/CMakeFiles/fptc_flow.dir/filters.cpp.o" "gcc" "src/flow/CMakeFiles/fptc_flow.dir/filters.cpp.o.d"
  "/root/repo/src/flow/io.cpp" "src/flow/CMakeFiles/fptc_flow.dir/io.cpp.o" "gcc" "src/flow/CMakeFiles/fptc_flow.dir/io.cpp.o.d"
  "/root/repo/src/flow/split.cpp" "src/flow/CMakeFiles/fptc_flow.dir/split.cpp.o" "gcc" "src/flow/CMakeFiles/fptc_flow.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fptc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fptc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
