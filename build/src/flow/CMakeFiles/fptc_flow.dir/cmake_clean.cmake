file(REMOVE_RECURSE
  "CMakeFiles/fptc_flow.dir/dataset.cpp.o"
  "CMakeFiles/fptc_flow.dir/dataset.cpp.o.d"
  "CMakeFiles/fptc_flow.dir/features.cpp.o"
  "CMakeFiles/fptc_flow.dir/features.cpp.o.d"
  "CMakeFiles/fptc_flow.dir/filters.cpp.o"
  "CMakeFiles/fptc_flow.dir/filters.cpp.o.d"
  "CMakeFiles/fptc_flow.dir/io.cpp.o"
  "CMakeFiles/fptc_flow.dir/io.cpp.o.d"
  "CMakeFiles/fptc_flow.dir/split.cpp.o"
  "CMakeFiles/fptc_flow.dir/split.cpp.o.d"
  "libfptc_flow.a"
  "libfptc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
