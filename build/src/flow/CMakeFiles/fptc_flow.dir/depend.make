# Empty dependencies file for fptc_flow.
# This may be replaced when dependencies are built.
