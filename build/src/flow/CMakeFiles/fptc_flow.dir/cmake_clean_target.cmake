file(REMOVE_RECURSE
  "libfptc_flow.a"
)
