file(REMOVE_RECURSE
  "libfptc_util.a"
)
