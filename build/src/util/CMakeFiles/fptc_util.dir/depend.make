# Empty dependencies file for fptc_util.
# This may be replaced when dependencies are built.
