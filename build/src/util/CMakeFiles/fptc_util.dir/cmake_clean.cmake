file(REMOVE_RECURSE
  "CMakeFiles/fptc_util.dir/csv.cpp.o"
  "CMakeFiles/fptc_util.dir/csv.cpp.o.d"
  "CMakeFiles/fptc_util.dir/env.cpp.o"
  "CMakeFiles/fptc_util.dir/env.cpp.o.d"
  "CMakeFiles/fptc_util.dir/heatmap.cpp.o"
  "CMakeFiles/fptc_util.dir/heatmap.cpp.o.d"
  "CMakeFiles/fptc_util.dir/log.cpp.o"
  "CMakeFiles/fptc_util.dir/log.cpp.o.d"
  "CMakeFiles/fptc_util.dir/rng.cpp.o"
  "CMakeFiles/fptc_util.dir/rng.cpp.o.d"
  "CMakeFiles/fptc_util.dir/table.cpp.o"
  "CMakeFiles/fptc_util.dir/table.cpp.o.d"
  "libfptc_util.a"
  "libfptc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
