file(REMOVE_RECURSE
  "CMakeFiles/fptc_nn.dir/conv.cpp.o"
  "CMakeFiles/fptc_nn.dir/conv.cpp.o.d"
  "CMakeFiles/fptc_nn.dir/layers.cpp.o"
  "CMakeFiles/fptc_nn.dir/layers.cpp.o.d"
  "CMakeFiles/fptc_nn.dir/loss.cpp.o"
  "CMakeFiles/fptc_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fptc_nn.dir/models.cpp.o"
  "CMakeFiles/fptc_nn.dir/models.cpp.o.d"
  "CMakeFiles/fptc_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fptc_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/fptc_nn.dir/sequential.cpp.o"
  "CMakeFiles/fptc_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/fptc_nn.dir/serialize.cpp.o"
  "CMakeFiles/fptc_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/fptc_nn.dir/tensor.cpp.o"
  "CMakeFiles/fptc_nn.dir/tensor.cpp.o.d"
  "libfptc_nn.a"
  "libfptc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
