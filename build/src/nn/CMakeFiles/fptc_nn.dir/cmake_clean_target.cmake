file(REMOVE_RECURSE
  "libfptc_nn.a"
)
