# Empty dependencies file for fptc_nn.
# This may be replaced when dependencies are built.
