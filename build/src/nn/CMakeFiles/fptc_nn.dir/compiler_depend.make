# Empty compiler generated dependencies file for fptc_nn.
# This may be replaced when dependencies are built.
