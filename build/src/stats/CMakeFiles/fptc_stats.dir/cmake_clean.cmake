file(REMOVE_RECURSE
  "CMakeFiles/fptc_stats.dir/descriptive.cpp.o"
  "CMakeFiles/fptc_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/fptc_stats.dir/distributions.cpp.o"
  "CMakeFiles/fptc_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/fptc_stats.dir/kde.cpp.o"
  "CMakeFiles/fptc_stats.dir/kde.cpp.o.d"
  "CMakeFiles/fptc_stats.dir/metrics.cpp.o"
  "CMakeFiles/fptc_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/fptc_stats.dir/ranking.cpp.o"
  "CMakeFiles/fptc_stats.dir/ranking.cpp.o.d"
  "CMakeFiles/fptc_stats.dir/tukey.cpp.o"
  "CMakeFiles/fptc_stats.dir/tukey.cpp.o.d"
  "libfptc_stats.a"
  "libfptc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
