file(REMOVE_RECURSE
  "libfptc_stats.a"
)
