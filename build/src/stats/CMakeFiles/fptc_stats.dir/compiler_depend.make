# Empty compiler generated dependencies file for fptc_stats.
# This may be replaced when dependencies are built.
