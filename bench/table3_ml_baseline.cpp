// Regenerates Table 3 (goal G0): "Baseline ML performance without
// augmentation in a supervised setting" — XGBoost-style gradient boosted
// trees fed either a flattened 32x32 flowpic (1,024 features) or the early
// packet time series (3 x 10 features), trained on 100 flows per class and
// tested on the script and human partitions.  Mean accuracy with 95% CI over
// (splits x seeds) experiments; the paper aggregates 15 (5 splits x 3
// seeds).  Also reports the average tree depth quoted in Sec. 4.1.2.
#include "fptc/core/campaign.hpp"
#include "fptc/flow/features.hpp"
#include "fptc/gbt/gbt.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

namespace {

using namespace fptc;

enum class InputKind { flowpic, time_series };

/// Extract features for one flow according to the input representation.
std::vector<float> features_of(const flow::Flow& f, InputKind kind)
{
    if (kind == InputKind::flowpic) {
        flowpic::FlowpicConfig config;
        config.resolution = 32;
        return flowpic::Flowpic::from_flow(f, config).flattened();
    }
    const auto early = flow::early_time_series(f);
    return {early.begin(), early.end()};
}

struct Outcome {
    stats::MeanCi script;
    stats::MeanCi human;
    double avg_depth = 0.0;
};

Outcome run_campaign(const core::UcdavisData& data, InputKind kind, int splits, int seeds)
{
    std::vector<double> script_scores;
    std::vector<double> human_scores;
    double depth_total = 0.0;
    int runs = 0;

    for (int split = 0; split < splits; ++split) {
        const auto selection = flow::fixed_per_class_split(data.pretraining, 100,
                                                           1000 + static_cast<std::uint64_t>(split));
        std::vector<std::vector<float>> train_x;
        std::vector<std::size_t> train_y;
        for (const auto index : selection.train) {
            train_x.push_back(features_of(data.pretraining.flows[index], kind));
            train_y.push_back(data.pretraining.flows[index].label);
        }

        for (int seed = 0; seed < seeds; ++seed) {
            // Per-seed 80/20 subsampling mirrors the paper's s train/val
            // splits and injects the run-to-run variance behind the CIs.
            util::Rng rng(util::mix_seed(99, static_cast<std::uint64_t>(split),
                                         static_cast<std::uint64_t>(seed)));
            const auto picked =
                rng.sample_without_replacement(train_x.size(), train_x.size() * 8 / 10);
            std::vector<std::vector<float>> seed_x;
            std::vector<std::size_t> seed_y;
            seed_x.reserve(picked.size());
            for (const auto i : picked) {
                seed_x.push_back(train_x[i]);
                seed_y.push_back(train_y[i]);
            }

            gbt::GbtConfig config; // paper defaults: 100 estimators, depth 6
            gbt::GbtClassifier model(config, data.num_classes());
            model.fit(seed_x, seed_y);
            depth_total += model.average_tree_depth();
            ++runs;

            const auto score = [&](const flow::Dataset& test) {
                stats::ConfusionMatrix confusion(data.num_classes());
                for (const auto& f : test.flows) {
                    confusion.add(f.label, model.predict(features_of(f, kind)));
                }
                return 100.0 * confusion.accuracy();
            };
            script_scores.push_back(score(data.script));
            human_scores.push_back(score(data.human));
            util::log_info("table3: " +
                           std::string(kind == InputKind::flowpic ? "flowpic" : "timeseries") +
                           " split " + std::to_string(split) + " seed " + std::to_string(seed) +
                           " done");
        }
    }

    Outcome outcome;
    outcome.script = stats::mean_ci(script_scores);
    outcome.human = stats::mean_ci(human_scores);
    outcome.avg_depth = depth_total / runs;
    return outcome;
}

} // namespace

int main()
{
    using namespace fptc;

    // Paper scale: 5 splits x 3 seeds = 15 experiments per input.
    const auto scale = util::resolve_scale(/*paper_splits=*/5, /*paper_seeds=*/3,
                                           /*default_splits=*/5, /*default_seeds=*/3);
    const auto data = core::load_ucdavis();

    std::cout << "=== Table 3 (G0): baseline ML performance without augmentation ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds << " seeds per input; "
              << "paper reference: CNN LeNet5 script 98.67 / human 92.40,\n"
              << " XGBoost flowpic 96.80±0.37 / 73.65±2.14, time series 94.53±0.56 / 66.91±1.40)\n\n";

    const auto flowpic_outcome = run_campaign(data, InputKind::flowpic, scale.splits, scale.seeds);
    const auto series_outcome =
        run_campaign(data, InputKind::time_series, scale.splits, scale.seeds);

    util::Table table("(G0) Baseline ML performance without augmentation, supervised setting");
    table.set_header({"Input (size)", "Model", "Origin", "script", "human"});
    table.add_row({"flowpic (32x32)", "CNN LeNet5", "[paper ref]", "98.67", "92.40"});
    table.add_row({"flowpic (32x32)", "XGBoost", "ours",
                   util::format_mean_ci(flowpic_outcome.script.mean, flowpic_outcome.script.half_width),
                   util::format_mean_ci(flowpic_outcome.human.mean, flowpic_outcome.human.half_width)});
    table.add_row({"time series (3x10)", "XGBoost", "ours",
                   util::format_mean_ci(series_outcome.script.mean, series_outcome.script.half_width),
                   util::format_mean_ci(series_outcome.human.mean, series_outcome.human.half_width)});
    table.add_footnote("Each ours row aggregates " +
                       std::to_string(scale.splits * scale.seeds) +
                       " experiments (splits x seeds); 95% CI via Student t.");
    std::cout << table.to_string() << '\n';

    std::cout << "average tree depth: flowpic input " << util::format_double(flowpic_outcome.avg_depth, 1)
              << ", time series input " << util::format_double(series_outcome.avg_depth, 1)
              << " (paper Sec. 4.1.2: 1.3 and 1.7 — very short trees)\n";
    return 0;
}
