// Regenerates Table 3 (goal G0): "Baseline ML performance without
// augmentation in a supervised setting" — XGBoost-style gradient boosted
// trees fed either a flattened 32x32 flowpic (1,024 features) or the early
// packet time series (3 x 10 features), trained on 100 flows per class and
// tested on the script and human partitions.  Mean accuracy with 95% CI over
// (splits x seeds) experiments; the paper aggregates 15 (5 splits x 3
// seeds).  Also reports the average tree depth quoted in Sec. 4.1.2.
//
// Campaign units run through CampaignExecutor (FPTC_JOBS workers, per-unit
// watchdog / retry / degradation); GBT training polls the executor's cancel
// token so a stalled unit unwinds instead of ignoring its watchdog.
// Aggregation happens in submission order so stdout is bit-identical for any
// worker count.
#include "fptc/core/campaign.hpp"
#include "fptc/core/executor.hpp"
#include "fptc/flow/features.hpp"
#include "fptc/gbt/gbt.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace {

using namespace fptc;

enum class InputKind { flowpic, time_series };

/// Extract features for one flow according to the input representation.
std::vector<float> features_of(const flow::Flow& f, InputKind kind)
{
    if (kind == InputKind::flowpic) {
        flowpic::FlowpicConfig config;
        config.resolution = 32;
        return flowpic::Flowpic::from_flow(f, config).flattened();
    }
    const auto early = flow::early_time_series(f);
    return {early.begin(), early.end()};
}

/// One GBT experiment: draw the 100-per-class split, 80% per-seed subsample,
/// fit and score on script / human.  Self-contained so it can run as an
/// executor unit on any worker.
std::map<std::string, std::string> run_unit(const core::UcdavisData& data, InputKind kind,
                                            int split, int seed,
                                            const util::CancelToken& cancel)
{
    const auto selection = flow::fixed_per_class_split(data.pretraining, 100,
                                                       1000 + static_cast<std::uint64_t>(split));
    std::vector<std::vector<float>> train_x;
    std::vector<std::size_t> train_y;
    for (const auto index : selection.train) {
        train_x.push_back(features_of(data.pretraining.flows[index], kind));
        train_y.push_back(data.pretraining.flows[index].label);
    }

    // Per-seed 80/20 subsampling mirrors the paper's train/val splits and
    // injects the run-to-run variance behind the CIs.
    util::Rng rng(util::mix_seed(99, static_cast<std::uint64_t>(split),
                                 static_cast<std::uint64_t>(seed)));
    const auto picked = rng.sample_without_replacement(train_x.size(), train_x.size() * 8 / 10);
    std::vector<std::vector<float>> seed_x;
    std::vector<std::size_t> seed_y;
    seed_x.reserve(picked.size());
    for (const auto i : picked) {
        seed_x.push_back(train_x[i]);
        seed_y.push_back(train_y[i]);
    }

    gbt::GbtConfig config; // paper defaults: 100 estimators, depth 6
    config.cancel = &cancel;
    gbt::GbtClassifier model(config, data.num_classes());
    model.fit(seed_x, seed_y);

    const auto score = [&](const flow::Dataset& test) {
        stats::ConfusionMatrix confusion(data.num_classes());
        for (const auto& f : test.flows) {
            confusion.add(f.label, model.predict(features_of(f, kind)));
        }
        return 100.0 * confusion.accuracy();
    };
    return {{"script", util::field_from_double(score(data.script))},
            {"human", util::field_from_double(score(data.human))},
            {"depth", util::field_from_double(model.average_tree_depth())}};
}

struct Cell {
    std::vector<double> script;
    std::vector<double> human;
    double depth_total = 0.0;
    std::size_t expected = 0;
};

} // namespace

int main()
{
    using namespace fptc;

    // Paper scale: 5 splits x 3 seeds = 15 experiments per input.
    const auto scale = util::resolve_scale(/*paper_splits=*/5, /*paper_seeds=*/3,
                                           /*default_splits=*/5, /*default_seeds=*/3);
    const auto data = core::load_ucdavis();

    std::cout << "=== Table 3 (G0): baseline ML performance without augmentation ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds << " seeds per input; "
              << "paper reference: CNN LeNet5 script 98.67 / human 92.40,\n"
              << " XGBoost flowpic 96.80±0.37 / 73.65±2.14, time series 94.53±0.56 / 66.91±1.40)\n\n";

    const std::vector<std::pair<InputKind, std::string>> kinds = {
        {InputKind::flowpic, "flowpic"}, {InputKind::time_series, "timeseries"}};

    core::CampaignExecutor executor("table3");
    std::vector<std::size_t> unit_cells;  ///< submission index -> kind index
    std::vector<Cell> cells(kinds.size());

    for (std::size_t k = 0; k < kinds.size(); ++k) {
        const auto kind = kinds[k].first;
        // Admission-control footprint: flattened feature matrix of the
        // training split (dominant for the flowpic input) plus test sets.
        core::FootprintEstimate footprint;
        footprint.resolution = kind == InputKind::flowpic ? 32 : 6;
        footprint.samples = 100 * data.num_classes();
        footprint.eval_samples = data.script.size() + data.human.size();
        footprint.batch = 1;
        for (int split = 0; split < scale.splits; ++split) {
            for (int seed = 0; seed < scale.seeds; ++seed) {
                const std::string key = "input=" + kinds[k].second +
                                        "|split=" + std::to_string(split) +
                                        "|seed=" + std::to_string(seed);
                unit_cells.push_back(k);
                executor.submit(key, [&data, kind, split, seed](const core::UnitContext& ctx) {
                    return run_unit(data, kind, split, seed, ctx.cancel);
                }, core::estimate_unit_bytes(footprint));
            }
        }
    }

    executor.run_all();

    if (executor.is_shard_worker()) {
        // Shard workers only execute and journal units; every table, CSV
        // artifact and summary line belongs to the coordinator's aggregation
        // pass over the merged journal.
        return 0;
    }

    // Ordered reduction (submission order) keeps stdout bit-identical for
    // every FPTC_JOBS value.
    for (std::size_t i = 0; i < unit_cells.size(); ++i) {
        auto& cell = cells[unit_cells[i]];
        ++cell.expected;
        const auto& outcome = executor.outcome(i);
        if (!outcome.succeeded()) {
            continue;  // degraded/cancelled: the cell is marked, not averaged
        }
        cell.script.push_back(util::field_double(outcome.fields, "script"));
        cell.human.push_back(util::field_double(outcome.fields, "human"));
        cell.depth_total += util::field_double(outcome.fields, "depth");
        util::log_info("table3: " + kinds[unit_cells[i]].second + " unit " + std::to_string(i) +
                       " done");
    }

    util::Table table("(G0) Baseline ML performance without augmentation, supervised setting");
    table.set_header({"Input (size)", "Model", "Origin", "script", "human"});
    table.add_row({"flowpic (32x32)", "CNN LeNet5", "[paper ref]", "98.67", "92.40"});
    const std::vector<std::string> labels = {"flowpic (32x32)", "time series (3x10)"};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        const auto& cell = cells[k];
        const auto script_ci = stats::degraded_cell_ci(cell.script, cell.expected);
        const auto human_ci = stats::degraded_cell_ci(cell.human, cell.expected);
        table.add_row({labels[k], "XGBoost", "ours",
                       util::format_degraded_mean_ci(script_ci.ci.mean, script_ci.ci.half_width,
                                                     script_ci.ci.n, script_ci.missing),
                       util::format_degraded_mean_ci(human_ci.ci.mean, human_ci.ci.half_width,
                                                     human_ci.ci.n, human_ci.missing)});
    }
    table.add_footnote("Each ours row aggregates " + std::to_string(scale.splits * scale.seeds) +
                       " experiments (splits x seeds); 95% CI via Student t.");
    if (executor.degraded() > 0) {
        table.add_footnote("†N: N scheduled run(s) of that row degraded; "
                           "mean over survivors only.");
    }
    std::cout << table.to_string() << '\n';

    const auto avg_depth = [](const Cell& cell) {
        return cell.script.empty() ? 0.0
                                   : cell.depth_total / static_cast<double>(cell.script.size());
    };
    std::cout << "average tree depth: flowpic input "
              << util::format_double(avg_depth(cells[0]), 1) << ", time series input "
              << util::format_double(avg_depth(cells[1]), 1)
              << " (paper Sec. 4.1.2: 1.3 and 1.7 — very short trees)\n";
    std::cout << executor.summary() << '\n';
    util::log_info(executor.timing_summary());
    if (executor.retried_units() > 0 || executor.degraded() > 0 ||
        util::fault_injector().enabled()) {
        std::cout << "fault tolerance: " << executor.retried_units()
                  << " unit re-execution(s); injected: " << util::fault_injector().summary()
                  << '\n';
    }
    return 0;
}
