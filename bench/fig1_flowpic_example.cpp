// Regenerates Fig. 1 of the paper: "Example of a packet time series
// transformed into a flowpic representation for a randomly selected YouTube
// flow in the UCDAVIS19 dataset" at 32x32, 64x64 and 1500x1500 resolutions
// (heatmaps log-scaled, darker shades = higher packet counts).
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/heatmap.hpp"

#include <cstdio>
#include <iostream>

int main()
{
    using namespace fptc;

    std::cout << "=== Fig. 1: packet time series -> flowpic (YouTube flow) ===\n\n";

    // A randomly selected YouTube flow (class index 4).
    trafficgen::UcdavisOptions options;
    util::Rng rng(1234);
    const auto profile = trafficgen::ucdavis19_profile(4, /*human_shift=*/false);
    const auto flow = trafficgen::generate_flow(profile, 4, rng);

    // Left-most plot of Fig. 1: the raw packet time series.
    std::cout << "packet time series (first 30 packets of " << flow.packets.size() << "):\n";
    std::cout << "      time(s)   size(B)  dir\n";
    for (std::size_t i = 0; i < flow.packets.size() && i < 30; ++i) {
        const auto& p = flow.packets[i];
        std::printf("  %10.4f  %7d  %s\n", p.timestamp, p.size,
                    p.direction == flow::Direction::downstream ? "down" : "up");
    }
    std::cout << '\n';

    for (const std::size_t resolution : {std::size_t{32}, std::size_t{64}, std::size_t{1500}}) {
        flowpic::FlowpicConfig config;
        config.resolution = resolution;
        const auto pic = flowpic::Flowpic::from_flow(flow, config);
        std::printf("flowpic %zux%zu (time bin %.1f ms, size bin %.1f B, %d packets tallied):\n",
                    resolution, resolution, 1e3 * flowpic::time_bin_width(config),
                    flowpic::size_bin_width(config), static_cast<int>(pic.total_mass()));
        util::HeatmapOptions render;
        render.max_side = 32; // large resolutions are downsampled for display
        std::cout << util::render_heatmap(pic.counts(), resolution, resolution, render) << '\n';
    }

    std::cout << "note: at 32x32 over 15 s the paper quotes 469.8 ms time bins and 46 B size\n"
                 "bins; the vertical stripes match the bursty video chunks of the series.\n";
    return 0;
}
