// Regenerates Fig. 3: "Average confusion matrixes for the 32x32 resolution"
// — the sum of the per-run confusion matrices of the supervised
// augmentation campaign, row-normalized, for the script and human test
// partitions.  In the paper the human matrix exposes the data shift:
// "multiple sources of confusion with Google doc and Google search having
// the most evident clash", while script shows no issue.
#include "fptc/core/campaign.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/heatmap.hpp"
#include "fptc/util/log.hpp"

#include <iostream>

int main()
{
    using namespace fptc;

    // Paper: 105 runs (7 augmentations x 5 splits x 3 seeds).  Default here:
    // all 7 augmentations over a reduced split/seed grid.
    const auto scale = util::resolve_scale(/*paper_splits=*/5, /*paper_seeds=*/3,
                                           /*default_splits=*/1, /*default_seeds=*/1);
    const auto data = core::load_ucdavis();

    core::SupervisedOptions options;
    options.max_epochs = scale.max_epochs;

    stats::ConfusionMatrix script_sum(data.num_classes());
    stats::ConfusionMatrix human_sum(data.num_classes());

    int runs = 0;
    for (const auto augmentation : augment::all_augmentations()) {
        for (int split = 0; split < scale.splits; ++split) {
            for (int seed = 0; seed < scale.seeds; ++seed) {
                const auto result = core::run_ucdavis_supervised(
                    data, augmentation, 1000 + static_cast<std::uint64_t>(split),
                    50 + static_cast<std::uint64_t>(seed), options);
                script_sum.merge(result.script_confusion);
                human_sum.merge(result.human_confusion);
                ++runs;
                util::log_info("fig3: " + std::string(augment::augmentation_name(augmentation)) +
                               " split " + std::to_string(split) + " seed " +
                               std::to_string(seed) + " -> script " +
                               std::to_string(result.script_accuracy()) + ", human " +
                               std::to_string(result.human_accuracy()));
            }
        }
    }

    std::cout << "=== Fig. 3: average confusion matrices, 32x32, " << runs
              << " supervised runs (7 augmentations) ===\n\n";
    std::cout << "script partition (row-normalized):\n"
              << util::render_confusion(script_sum.row_normalized(), data.script.class_names)
              << "\noverall accuracy: " << 100.0 * script_sum.accuracy() << "%\n\n";
    std::cout << "human partition (row-normalized):\n"
              << util::render_confusion(human_sum.row_normalized(), data.human.class_names)
              << "\noverall accuracy: " << 100.0 * human_sum.accuracy() << "%\n\n";
    std::cout << "paper: script shows no specific issue; human shows multiple confusions, the\n"
                 "most evident clash being Google doc vs Google search (the data shift).\n";
    return 0;
}
