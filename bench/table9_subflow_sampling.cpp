// Regenerates Table 9 (App. D.3) and the related Fig. 9/10: the
// reproduction of Rezaei & Liu [33] on UCDAVIS19 — "Macro-average accuracy
// with different retraining dataset and different sampling methods":
// fixed-step / random / incremental subflow sampling, self-supervised
// regression pre-training on the whole pretraining partition, 3-layer
// classifier fine-tuned with 10 labeled flows, tested on script and human.
//
// Paper shape: Incre > Rand > Fixed on script (ours: 96.22 / 94.63 / 87.11)
// and a ~5% drop on human for incremental (92.56), confirming both [33]'s
// ranking and the (milder) human data shift under a time-series input.
#include "fptc/core/campaign.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/subflow/subflow.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

int main()
{
    using namespace fptc;

    const auto scale = util::resolve_scale(1, 3, /*default_splits=*/1, /*default_seeds=*/2);
    const auto data = core::load_ucdavis();

    std::cout << "=== Table 9 (App. D.3): reproduction of Rezaei & Liu's sampling methods ===\n"
              << "(" << scale.seeds << " seeds per cell; fine-tuning with 10 labeled flows)\n\n";

    const subflow::SamplingMethod methods[] = {
        subflow::SamplingMethod::fixed_step,
        subflow::SamplingMethod::random,
        subflow::SamplingMethod::incremental,
    };

    util::Table table("Macro-average accuracy per sampling method (fine-tune on 10 flows)");
    table.set_header({"finetune on", "Fixed", "Rand", "Incre"});

    std::vector<std::string> script_row = {"script"};
    std::vector<std::string> human_row = {"human"};
    util::Table perclass("Fig. 10: per-class accuracy on human (incremental sampling)");
    perclass.set_header({"Class", "accuracy (%)"});

    for (const auto method : methods) {
        std::vector<double> script_scores;
        std::vector<double> human_scores;
        for (int seed = 0; seed < scale.seeds; ++seed) {
            subflow::SubflowModelConfig config;
            config.seed = 33 + static_cast<std::uint64_t>(seed);
            subflow::SubflowModel model(config, data.num_classes(), method);
            const double pretrain_mse = model.pretrain(data.pretraining.flows);
            // Fine-tune on 10 labeled flows drawn from the test partitions,
            // as in [33] ("We only use this dataset to test the same model").
            (void)model.finetune(data.script, 10, 500 + static_cast<std::uint64_t>(seed));
            const auto script_confusion = model.evaluate(data.script);
            const auto human_confusion = model.evaluate(data.human);
            // Macro-average accuracy = mean of per-class recalls.
            const auto macro = [](const stats::ConfusionMatrix& m) {
                const auto recall = m.per_class_recall();
                double total = 0.0;
                for (const double r : recall) {
                    total += r;
                }
                return 100.0 * total / static_cast<double>(recall.size());
            };
            script_scores.push_back(macro(script_confusion));
            human_scores.push_back(macro(human_confusion));
            util::log_info("table9: " + subflow::sampling_method_name(method) + " seed " +
                           std::to_string(seed) + " pretrain-mse " +
                           util::format_double(pretrain_mse, 4) + " -> script " +
                           util::format_double(script_scores.back()) + " human " +
                           util::format_double(human_scores.back()));

            if (method == subflow::SamplingMethod::incremental && seed == 0) {
                const auto recall = human_confusion.per_class_recall();
                for (std::size_t c = 0; c < recall.size(); ++c) {
                    perclass.add_row({data.human.class_names[c],
                                      util::format_double(100.0 * recall[c], 1)});
                }
            }
        }
        const auto script_ci = stats::mean_ci(script_scores);
        const auto human_ci = stats::mean_ci(human_scores);
        script_row.push_back(util::format_mean_ci(script_ci.mean, script_ci.half_width));
        human_row.push_back(util::format_mean_ci(human_ci.mean, human_ci.half_width));
    }
    table.add_row(script_row);
    table.add_row(human_row);
    table.add_footnote("Fixed: fixed-step sampling; Rand: random sampling; Incre: incremental "
                       "sampling (one consecutive window).");

    std::cout << table.to_string() << '\n';
    std::cout << perclass.to_string() << '\n';
    std::cout << "paper reference (ours columns): script 87.11 / 94.63 / 96.22, human 82.60 /\n"
                 "87.29 / 92.56 — incremental sampling is the best strategy, and the human\n"
                 "drop is much milder than with flowpic input.\n";
    return 0;
}
