// Regenerates Fig. 4: "Average 32x32 flowpic for each class across dataset
// partitions" — rows are (pretraining, one 100-sample training split,
// script, human); columns are the 5 classes.  The annotated differences of
// the paper (rectangles A/B/C) are what to look for: Google search bursts
// shifted right and no longer saturating the max packet size in human, and
// Google music losing its vertical stripes.
#include "fptc/core/campaign.hpp"
#include "fptc/flow/split.hpp"
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/util/heatmap.hpp"

#include <iostream>

int main()
{
    using namespace fptc;

    const auto data = core::load_ucdavis();
    const flowpic::FlowpicConfig config{.resolution = 32};

    // One 100-per-class training split, as in the figure's second row.
    const auto selection = flow::fixed_per_class_split(data.pretraining, 100, 1000);
    const auto split_dataset = flow::subset(data.pretraining, selection.train);

    struct Row {
        const char* title;
        const flow::Dataset* dataset;
    };
    const Row rows[] = {
        {"pretraining (all flows)", &data.pretraining},
        {"training split (100 per class)", &split_dataset},
        {"script (30 per class)", &data.script},
        {"human (~15 per class)", &data.human},
    };

    std::cout << "=== Fig. 4: average 32x32 flowpic per class across partitions ===\n"
              << "(time on the horizontal axis, packet size on the vertical axis,\n"
              << " zero length at the top — as in the paper)\n\n";

    for (std::size_t label = 0; label < data.num_classes(); ++label) {
        std::cout << "--- class: " << data.pretraining.class_names[label] << " ---\n";
        for (const auto& row : rows) {
            const auto average = flowpic::average_flowpic_of_class(*row.dataset, label, config);
            std::cout << row.title << ":\n";
            util::HeatmapOptions render;
            render.show_scale = false;
            std::cout << util::render_heatmap(average.counts(), 32, 32, render);
        }
        std::cout << '\n';
    }

    std::cout << "annotations to verify against the paper:\n"
                 "  (A) Google search burst columns shifted right in human only\n"
                 "  (B) Google search top rows (max packet size) not saturated in human;\n"
                 "      a distinctive line appears around row 28 instead\n"
                 "  (C) Google music vertical stripes visible in all rows but human\n";
    return 0;
}
