// Regenerates Table 6: "Comparing the fine-tuning performance when using
// different pairs of augmentation for pretraining (32x32 resolution,
// fine-tuning on 10 samples only)" — the paper's small-scale ablation of
// SimCLR view-pair choices: the Ref-Paper's pair (Change RTT + Time shift)
// against pairs mixing time-series and image transformations.
//
// Paper takeaway: "despite the punctual differences between pairs ... all
// pairs are qualitatively equivalent".
#include "fptc/core/campaign.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

int main()
{
    using namespace fptc;
    using augment::AugmentationKind;

    const auto scale = util::resolve_scale(5, 5, /*default_splits=*/2, /*default_seeds=*/1);
    const int finetune_seeds = scale.full ? 5 : 2;
    const auto data = core::load_ucdavis();

    struct Pair {
        AugmentationKind first;
        AugmentationKind second;
        const char* note;
    };
    const Pair pairs[] = {
        {AugmentationKind::change_rtt, AugmentationKind::time_shift, "(pair used in the Ref-Paper)"},
        {AugmentationKind::packet_loss, AugmentationKind::color_jitter, ""},
        {AugmentationKind::change_rtt, AugmentationKind::color_jitter, ""},
        {AugmentationKind::color_jitter, AugmentationKind::rotate, ""},
    };

    std::cout << "=== Table 6: SimCLR pre-training augmentation pairs ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds << " SimCLR seeds x "
              << finetune_seeds << " fine-tune seeds per pair; 10 samples/class fine-tune)\n\n";

    util::Table table("Fine-tune accuracy per pre-training augmentation pair (32x32)");
    table.set_header({"1st augment.", "2nd augment.", "script", "human"});

    for (const auto& pair : pairs) {
        std::vector<double> script_scores;
        std::vector<double> human_scores;

        core::SimClrOptions options;
        options.first = pair.first;
        options.second = pair.second;

        for (int split = 0; split < scale.splits; ++split) {
            for (int simclr_seed = 0; simclr_seed < scale.seeds; ++simclr_seed) {
                for (int ft_seed = 0; ft_seed < finetune_seeds; ++ft_seed) {
                    const auto run = core::run_ucdavis_simclr(
                        data, 1000 + static_cast<std::uint64_t>(split),
                        70 + static_cast<std::uint64_t>(simclr_seed),
                        90 + static_cast<std::uint64_t>(ft_seed), options);
                    script_scores.push_back(100.0 * run.script_accuracy());
                    human_scores.push_back(100.0 * run.human_accuracy());
                }
            }
        }
        util::log_info("table6: pair (" + std::string(augment::augmentation_name(pair.first)) +
                       ", " + std::string(augment::augmentation_name(pair.second)) + ") done");

        const auto script_ci = stats::mean_ci(script_scores);
        const auto human_ci = stats::mean_ci(human_scores);
        table.add_row({std::string(augment::augmentation_name(pair.first)) +
                           (pair.note[0] != '\0' ? "*" : ""),
                       std::string(augment::augmentation_name(pair.second)) +
                           (pair.note[0] != '\0' ? "*" : ""),
                       util::format_mean_ci(script_ci.mean, script_ci.half_width),
                       util::format_mean_ci(human_ci.mean, human_ci.half_width)});
    }
    table.add_footnote("(*) pair of augmentations used in the Ref-Paper.");

    std::cout << table.to_string() << '\n';
    std::cout << "paper reference: Change RTT+Time shift 92.18±0.31 / 74.69±1.13; the best\n"
                 "alternative pair (Change RTT+Color jitter) 92.38±0.32 / 74.33±1.26 — all\n"
                 "pairs qualitatively equivalent.\n";
    return 0;
}
