// Regenerates Table 5 (goal G2): "Impact of dropout and SimCLR projection
// layer dimension on fine-tuning (32x32 only, with 10 samples for
// fine-tuning training)" — the 2x2 ablation {projection 30, 84} x
// {with/without dropout}, each cell aggregating (splits x SimCLR seeds x
// fine-tune seeds) experiments.
//
// Paper values: proj 30 w/ dropout 91.81±0.38 script / 72.12±1.37 human;
// removing dropout helps human (74.69±1.13); enlarging the projection to 84
// gives no significant gain.  Expected shape here: script in the low 90s,
// human in the 70s, no-dropout >= with-dropout on human.
//
// Campaign units run through CampaignExecutor (FPTC_JOBS workers, per-unit
// watchdog / retry / degradation); aggregation happens in submission order so
// stdout is bit-identical for any worker count.
#include "fptc/core/campaign.hpp"
#include "fptc/core/executor.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

int main()
{
    using namespace fptc;

    // Paper: 125 experiments per cell (5 splits x 5 SimCLR seeds x 5
    // fine-tune seeds).  Default: 2 x 1 x 2 = 4 per cell.
    const auto scale = util::resolve_scale(5, 5, /*default_splits=*/2, /*default_seeds=*/1);
    const int finetune_seeds = scale.full ? 5 : 2;
    const auto data = core::load_ucdavis();
    long total_retries = 0;
    long total_faults = 0;

    std::cout << "=== Table 5 (G2): dropout & projection dimension vs fine-tuning ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds << " SimCLR seeds x "
              << finetune_seeds << " fine-tune seeds per cell; 10 labeled samples/class)\n\n";

    util::Table table("Fine-tune accuracy (32x32, 10 samples per class)");
    table.set_header({"Proj. dim", "Dropout", "script", "human", "pretrain epochs (avg)"});

    struct UnitMeta {
        std::size_t cell;  ///< index into the 2x2 ablation grid
        std::size_t projection_dim;
        bool with_dropout;
        int split;
    };
    struct Cell {
        std::vector<double> script;
        std::vector<double> human;
        double epoch_total = 0.0;
        std::size_t expected = 0;
    };

    core::CampaignExecutor executor("table5");
    std::vector<UnitMeta> units;
    std::vector<Cell> cells(4);
    std::size_t cell_index = 0;

    for (const std::size_t projection_dim : {std::size_t{30}, std::size_t{84}}) {
        for (const bool with_dropout : {true, false}) {
            core::SimClrOptions options;
            options.projection_dim = projection_dim;
            options.with_dropout = with_dropout;

            for (int split = 0; split < scale.splits; ++split) {
                for (int simclr_seed = 0; simclr_seed < scale.seeds; ++simclr_seed) {
                    for (int ft_seed = 0; ft_seed < finetune_seeds; ++ft_seed) {
                        const std::string key =
                            "proj=" + std::to_string(projection_dim) +
                            "|dropout=" + (with_dropout ? "1" : "0") +
                            "|split=" + std::to_string(split) +
                            "|seed=" + std::to_string(simclr_seed) +
                            "|ft=" + std::to_string(ft_seed);
                        units.push_back({cell_index, projection_dim, with_dropout, split});
                        // Admission-control footprint: unlabeled pool (two
                        // augmented views per sample) plus the evaluation sets.
                        core::FootprintEstimate footprint;
                        footprint.resolution = options.flowpic.resolution;
                        footprint.samples = 2 * options.per_class * data.num_classes();
                        footprint.eval_samples = data.script.size() + data.human.size();
                        footprint.batch = 2 * options.batch_samples;
                        executor.submit(key, [&data, options, split, simclr_seed,
                                              ft_seed](const core::UnitContext& ctx) {
                            auto unit_options = options;
                            unit_options.hooks.cancel = &ctx.cancel;
                            unit_options.batch_samples = ctx.batch(options.batch_samples);
                            const auto run = core::run_ucdavis_simclr(
                                data, 1000 + static_cast<std::uint64_t>(split),
                                70 + static_cast<std::uint64_t>(simclr_seed),
                                90 + static_cast<std::uint64_t>(ft_seed), unit_options);
                            return std::map<std::string, std::string>{
                                {"script",
                                 util::field_from_double(100.0 * run.script_accuracy())},
                                {"human", util::field_from_double(100.0 * run.human_accuracy())},
                                {"epochs", std::to_string(run.pretrain_epochs)},
                                {"retries", std::to_string(run.retries)},
                                {"faults", std::to_string(run.faults_detected)}};
                        }, core::estimate_unit_bytes(footprint));
                    }
                }
            }
            ++cell_index;
        }
    }

    executor.run_all();

    if (executor.is_shard_worker()) {
        // Shard workers only execute and journal units; every table, CSV
        // artifact and summary line belongs to the coordinator's aggregation
        // pass over the merged journal.
        return 0;
    }

    // Ordered reduction (submission order) keeps stdout bit-identical for
    // every FPTC_JOBS value.
    for (std::size_t i = 0; i < units.size(); ++i) {
        const auto& meta = units[i];
        const auto& outcome = executor.outcome(i);
        auto& cell = cells[meta.cell];
        ++cell.expected;
        if (!outcome.succeeded()) {
            continue;  // degraded/cancelled: the cell is marked, not averaged
        }
        const auto& fields = outcome.fields;
        cell.script.push_back(util::field_double(fields, "script"));
        cell.human.push_back(util::field_double(fields, "human"));
        cell.epoch_total += static_cast<double>(util::field_long(fields, "epochs"));
        total_retries += util::field_long(fields, "retries");
        total_faults += util::field_long(fields, "faults");
        util::log_info("table5: proj " + std::to_string(meta.projection_dim) + " dropout " +
                       std::to_string(meta.with_dropout) + " split " +
                       std::to_string(meta.split) + " -> script " +
                       util::format_double(cell.script.back()) + " human " +
                       util::format_double(cell.human.back()));
    }

    cell_index = 0;
    for (const std::size_t projection_dim : {std::size_t{30}, std::size_t{84}}) {
        for (const bool with_dropout : {true, false}) {
            const auto& cell = cells[cell_index++];
            const auto script_ci = stats::degraded_cell_ci(cell.script, cell.expected);
            const auto human_ci = stats::degraded_cell_ci(cell.human, cell.expected);
            const auto survivors = cell.script.size();
            table.add_row({std::to_string(projection_dim), with_dropout ? "w/" : "w/o",
                           util::format_degraded_mean_ci(script_ci.ci.mean,
                                                         script_ci.ci.half_width,
                                                         script_ci.ci.n, script_ci.missing),
                           util::format_degraded_mean_ci(human_ci.ci.mean,
                                                         human_ci.ci.half_width, human_ci.ci.n,
                                                         human_ci.missing),
                           survivors > 0
                               ? util::format_double(cell.epoch_total /
                                                         static_cast<double>(survivors),
                                                     1)
                               : "n/a"});
        }
    }
    if (executor.degraded() > 0) {
        table.add_footnote("†N: N scheduled run(s) of that cell degraded; "
                           "mean over survivors only.");
    }

    std::cout << table.to_string() << '\n';
    std::cout << "paper reference (125 exps/cell): proj 30: 91.81±0.38 / 72.12±1.37 (w/),\n"
                 "92.18±0.31 / 74.69±1.13 (w/o); proj 84: 92.02±0.36 / 73.31±1.04 (w/),\n"
                 "92.54±0.33 / 74.35±1.38 (w/o).  Takeaways: dropout does not help (and hurts\n"
                 "human); a larger projection brings no significant gain.\n";
    std::cout << executor.summary() << '\n';
    util::log_info(executor.timing_summary());
    if (total_retries > 0 || total_faults > 0 || executor.retried_units() > 0 ||
        executor.degraded() > 0 || util::fault_injector().enabled()) {
        std::cout << "fault tolerance: " << total_faults << " divergent step(s) detected, "
                  << total_retries << " rollback retrie(s), " << executor.retried_units()
                  << " unit re-execution(s); injected: " << util::fault_injector().summary()
                  << '\n';
    }
    return 0;
}
