// Regenerates Fig. 11 (App. E): "Accuracy difference w/ and w/o dropout in
// supervised learning" — boxplots (whiskers at the 95th percentile) of the
// supervised campaign accuracies with dropout enabled vs masked, across test
// sets and augmentations.  The paper's takeaway: "All scenarios report
// similar performance so the impact of dropout does not play a role and its
// adoption (as required by the Ref-Paper) is weakly motivated."
#include "fptc/core/campaign.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

namespace {

/// Render a one-line ASCII boxplot over [lo, hi].
std::string render_box(const fptc::stats::BoxSummary& box, double lo, double hi,
                       std::size_t width = 56)
{
    std::string line(width, ' ');
    const auto column = [&](double v) {
        const double f = (v - lo) / (hi - lo);
        const double clamped = f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f);
        return static_cast<std::size_t>(clamped * static_cast<double>(width - 1));
    };
    for (std::size_t c = column(box.whisker_low); c <= column(box.whisker_high); ++c) {
        line[c] = '-';
    }
    for (std::size_t c = column(box.q1); c <= column(box.q3); ++c) {
        line[c] = '=';
    }
    line[column(box.median)] = '|';
    return line;
}

} // namespace

int main()
{
    using namespace fptc;

    const auto scale = util::resolve_scale(5, 3, /*default_splits=*/2, /*default_seeds=*/1);
    const auto data = core::load_ucdavis();

    std::cout << "=== Fig. 11 (App. E): dropout vs no-dropout in supervised training ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds
              << " seeds x 7 augmentations per arm, 32x32)\n\n";

    std::vector<double> with_script, with_human, without_script, without_human;

    for (const bool with_dropout : {true, false}) {
        core::SupervisedOptions options;
        options.with_dropout = with_dropout;
        options.max_epochs = scale.max_epochs;
        options.augment_copies = scale.full ? 10 : 2;
        for (const auto augmentation : augment::all_augmentations()) {
            for (int split = 0; split < scale.splits; ++split) {
                for (int seed = 0; seed < scale.seeds; ++seed) {
                    const auto run = core::run_ucdavis_supervised(
                        data, augmentation, 1000 + static_cast<std::uint64_t>(split),
                        50 + static_cast<std::uint64_t>(seed), options);
                    (with_dropout ? with_script : without_script)
                        .push_back(100.0 * run.script_accuracy());
                    (with_dropout ? with_human : without_human)
                        .push_back(100.0 * run.human_accuracy());
                }
            }
            util::log_info(std::string("fig11: dropout=") + (with_dropout ? "on" : "off") + " " +
                           std::string(augment::augmentation_name(augmentation)) + " done");
        }
    }

    const auto print_pair = [](const char* title, const std::vector<double>& with_arm,
                               const std::vector<double>& without_arm, double lo, double hi) {
        std::printf("%s  (axis %.0f..%.0f%%)\n", title, lo, hi);
        std::printf("  w/ dropout  %s\n",
                    render_box(stats::box_summary(with_arm), lo, hi).c_str());
        std::printf("  w/o dropout %s\n",
                    render_box(stats::box_summary(without_arm), lo, hi).c_str());
        const auto with_ci = stats::mean_ci(with_arm);
        const auto without_ci = stats::mean_ci(without_arm);
        std::printf("  means: %.2f vs %.2f (diff %+.2f)\n\n", with_ci.mean, without_ci.mean,
                    without_ci.mean - with_ci.mean);
    };

    print_pair("test on script", with_script, without_script, 85.0, 100.0);
    print_pair("test on human", with_human, without_human, 50.0, 90.0);

    std::cout << "paper takeaway: differences are within noise — dropout is not the lever, so\n"
                 "its adoption in the Ref-Paper is weakly motivated.\n";
    return 0;
}
