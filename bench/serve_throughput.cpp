// Open-loop streaming-serve load generator — the repo's traffic-facing
// perf/robustness number.
//
// Drives an InterleavedStream (trafficgen-backed, deterministic per seed)
// through the StreamingClassifier at full speed, prints the service report,
// checks the robustness invariants the torture harness greps for, and emits
// BENCH_serve.json (flows/sec, events/sec, p50/p99 classify latency, the
// typed shed breakdown, breaker transitions, SLO compliance, crash-recovery
// accounting, host parallelism).
//
// With FPTC_SERVE_SUPERVISE=1 this binary becomes its own supervisor: the
// parent process runs the restart loop (supervisor.hpp) and re-execs itself
// as the worker (FPTC_SERVE_ROLE=worker), which then takes the normal path
// below.  A crashed or hung worker is restarted from its last durable
// snapshot; the final generation's report (and BENCH_serve.json) covers the
// whole logical run because the restored counters are re-based on the
// snapshot cut.
//
// Knobs (all strictly validated):
//   FPTC_SERVE_FLOWS=n        stream flows (default 300)
//   FPTC_SERVE_ARRIVAL_S=x    flow-start window in stream seconds (default 30)
//   FPTC_SERVE_SEED=n         stream + backend seed (default 1)
//   FPTC_SERVE_TRAIN_FLOWS=n  per-class training flows for the backends
//                             (default 0 = untrained CNNs, tiny-fit GBT)
//   FPTC_SERVE_TRAIN_EPOCHS=n CNN training epochs when TRAIN_FLOWS > 0
//   FPTC_SERVE_SUPERVISE=1    run under the crash-recovery supervisor
//   FPTC_SERVE_SELFTEST_CANDIDATE=good|corrupt
//                             write a reload candidate to FPTC_SERVE_RELOAD at
//                             startup: `good` = a valid copy of the incumbent
//                             (canary must accept), `corrupt` = a CRC-correct
//                             checkpoint with a NaN weight (canary must reject
//                             and roll back) — keeps the drift torture
//                             scenarios self-contained
//   FPTC_SERVE_*              service knobs, see fptc/serve/service.hpp
//   FPTC_DRIFT_*              stream drift schedule, see fptc/trafficgen/drift.hpp
//   FPTC_FAULT_SERVE_*        fault classes, see fptc/util/fault.hpp
//
// Exit status: 0 iff the run completed with the flow accounting balanced
// and every MemBudget byte credited back.

#include "fptc/serve/flightrec.hpp"
#include "fptc/serve/service.hpp"
#include "fptc/serve/supervisor.hpp"

#include "fptc/nn/serialize.hpp"
#include "fptc/trafficgen/drift.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/membudget.hpp"
#include "fptc/util/shutdown.hpp"
#include "fptc/util/telemetry.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <cstdio>
#endif

namespace {

double load_average()
{
#if defined(__unix__) || defined(__APPLE__)
    double loads[1] = {0.0};
    if (getloadavg(loads, 1) == 1) {
        return loads[0];
    }
#endif
    return 0.0;
}

/// Drop a reload candidate at the FPTC_SERVE_RELOAD path so the canary
/// torture scenarios are self-contained.  `good` publishes a valid copy of
/// the incumbent; `corrupt` writes a structurally valid, CRC-correct
/// checkpoint whose payload carries a NaN weight — the class of corruption
/// only semantic validation catches (save_parameters is used directly
/// because save_network would refuse to publish it).
void write_selftest_candidate(const std::string& mode, const std::string& path,
                              fptc::serve::CnnBackend& incumbent)
{
    using namespace fptc;
    if (mode == "good") {
        nn::save_network(incumbent.network(), path, incumbent.calibration());
        return;
    }
    if (mode != "corrupt") {
        throw util::EnvError("FPTC_SERVE_SELFTEST_CANDIDATE must be good|corrupt, got '" +
                             mode + "'");
    }
    const auto params = incumbent.network().parameters();
    float& poisoned = params.front()->value.data()[0];
    const float saved = poisoned;
    poisoned = std::numeric_limits<float>::quiet_NaN();
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        nn::save_parameters(params, out, nn::kSerializeVersion, incumbent.calibration());
    }
    poisoned = saved;
}

std::string bench_json(const fptc::serve::ServeReport& report,
                       const fptc::serve::ServeConfig& config, std::size_t stream_flows,
                       std::uint64_t quarantine_oracle, std::uint64_t unknown_oracle)
{
    const double wall = report.wall_seconds > 0.0 ? report.wall_seconds : 1e-9;
    std::ostringstream out;
    out << "{\n"
        << "  \"flows\": " << stream_flows << ",\n"
        << "  \"events\": " << report.events_total << ",\n"
        << "  \"wall_seconds\": " << report.wall_seconds << ",\n"
        << "  \"flows_per_sec\": " << static_cast<double>(report.flows_ingested) / wall << ",\n"
        << "  \"events_per_sec\": " << static_cast<double>(report.events_total) / wall << ",\n"
        << "  \"classified\": " << report.flows_classified << ",\n"
        << "  \"correct\": " << report.flows_correct << ",\n"
        << "  \"p50_latency_ms\": " << report.p50_latency_ms << ",\n"
        << "  \"p99_latency_ms\": " << report.p99_latency_ms << ",\n"
        << "  \"batches\": " << report.batches << ",\n"
        << "  \"shed\": {\n"
        << "    \"mem_budget\": " << report.shed_mem_budget << ",\n"
        << "    \"queue_full\": " << report.shed_queue_full << ",\n"
        << "    \"deadline\": " << report.shed_deadline << ",\n"
        << "    \"breaker\": " << report.shed_breaker << ",\n"
        << "    \"slo\": " << report.shed_slo << ",\n"
        << "    \"restart_loss\": " << report.shed_restart_loss << "\n"
        << "  },\n"
        << "  \"events_quarantined\": " << report.events_quarantined << ",\n"
        << "  \"events_quarantined_backwards\": " << report.events_quarantined_backwards
        << ",\n"
        << "  \"events_mangled\": " << quarantine_oracle << ",\n"
        << "  \"events_dropped_queue\": " << report.events_dropped_queue << ",\n"
        << "  \"events_dropped_mem\": " << report.events_dropped_mem << ",\n"
        << "  \"events_dropped_slo\": " << report.events_dropped_slo << ",\n"
        << "  \"breaker\": {\n"
        << "    \"trips\": " << report.breaker_trips << ",\n"
        << "    \"recoveries\": " << report.breaker_recoveries << ",\n"
        << "    \"final_tier\": " << report.final_tier << "\n"
        << "  },\n"
        << "  \"slo\": {\n"
        << "    \"target_ms\": " << config.slo_ms << ",\n"
        << "    \"considered\": " << report.slo_considered << ",\n"
        << "    \"violations\": " << report.slo_violations << ",\n"
        << "    \"compliance\": " << report.slo_compliance() << "\n"
        << "  },\n"
        << "  \"recovery\": {\n"
        << "    \"generation\": " << report.generation << ",\n"
        << "    \"restored\": " << (report.restored ? "true" : "false") << ",\n"
        << "    \"watermark\": " << report.watermark << ",\n"
        << "    \"restored_flows\": " << report.restored_flows << ",\n"
        << "    \"restore_refused\": " << report.restore_refused << ",\n"
        << "    \"restart_loss\": " << report.shed_restart_loss << ",\n"
        << "    \"snapshots_written\": " << report.snapshots_written << "\n"
        << "  },\n"
        << "  \"openset\": {\n"
        << "    \"threshold\": " << config.unknown_thresh << ",\n"
        << "    \"flows_unknown\": " << report.flows_unknown << ",\n"
        << "    \"unknown_truth_total\": " << report.unknown_truth_total << ",\n"
        << "    \"unknown_truth_rejected\": " << report.unknown_truth_rejected << ",\n"
        << "    \"stream_unknown_flows\": " << unknown_oracle << ",\n"
        << "    \"confidence_mean\": " << report.confidence_mean << "\n"
        << "  },\n"
        << "  \"drift\": {\n"
        << "    \"lambda\": " << config.drift_lambda << ",\n"
        << "    \"rate_threshold\": " << config.drift_rate_thresh << ",\n"
        << "    \"samples\": " << report.drift_samples << ",\n"
        << "    \"alarms\": " << report.drift_alarms << ",\n"
        << "    \"alarms_confidence\": " << report.drift_alarms_confidence << ",\n"
        << "    \"alarms_input\": " << report.drift_alarms_input << ",\n"
        << "    \"alarms_rate\": " << report.drift_alarms_rate << ",\n"
        << "    \"first_alarm_sample\": " << report.drift_first_alarm_sample << "\n"
        << "  },\n"
        << "  \"reload\": {\n"
        << "    \"enabled\": " << (config.reload_path.empty() ? "false" : "true") << ",\n"
        << "    \"attempts\": " << report.reload_attempts << ",\n"
        << "    \"reloads\": " << report.reloads << ",\n"
        << "    \"rollbacks\": " << report.reload_rollbacks << ",\n"
        << "    \"model_generation\": " << report.model_generation << "\n"
        << "  },\n"
        << "  \"flightrec\": {\n"
        << "    \"enabled\": " << (config.flightrec ? "true" : "false") << ",\n"
        << "    \"events\": " << report.frec_events << ",\n"
        << "    \"dropped\": " << report.frec_dropped << ",\n"
        << "    \"postmortems\": " << report.postmortems_written << ",\n"
        << "    \"status_writes\": " << report.status_writes << "\n"
        << "  },\n"
        << "  \"latency_breakdown\": {\n";
    // Per-stage sub-histograms live in the registry (observed by the worker
    // threads that just joined); backend_compute reconciles exactly with
    // the classify-latency histogram by construction.
    for (std::size_t s = 0; s < fptc::serve::kFrecStageCount; ++s) {
        const auto stage = static_cast<fptc::serve::FrecStage>(s);
        const fptc::util::Histogram& h =
            fptc::util::metrics().histogram(fptc::serve::frec_stage_metric_name(stage));
        out << "    \"" << fptc::serve::frec_stage_name(static_cast<std::uint32_t>(s))
            << "\": {\"count\": " << h.count() << ", \"p50_ns\": "
            << static_cast<std::uint64_t>(h.quantile(0.50)) << ", \"p95_ns\": "
            << static_cast<std::uint64_t>(h.quantile(0.95)) << ", \"p99_ns\": "
            << static_cast<std::uint64_t>(h.quantile(0.99)) << "}"
            << (s + 1 < fptc::serve::kFrecStageCount ? "," : "") << "\n";
    }
    out << "  },\n"
        << "  \"host\": {\n"
        << "    \"nproc\": " << std::thread::hardware_concurrency() << ",\n"
        << "    \"load1\": " << load_average() << "\n"
        << "  }\n"
        << "}\n";
    return out.str();
}

} // namespace

int main()
{
    using namespace fptc;

    // Supervisor mode: the parent never serves — it spawns this same binary
    // as the worker (FPTC_SERVE_ROLE=worker) and runs the restart loop.
    if (util::env_int("FPTC_SERVE_SUPERVISE").value_or(0) != 0 && !serve::is_serve_worker()) {
        try {
            return serve::run_supervisor(serve::SupervisorConfig::from_env());
        } catch (const util::EnvError& error) {
            std::cerr << "serve_throughput: " << error.what() << "\n";
            return 2;
        }
    }

    util::install_shutdown_handlers();

    const std::size_t baseline_in_use = util::mem_budget().in_use();
    serve::ServeReport report;
    serve::ServeConfig config;
    std::size_t stream_flows = 0;
    std::uint64_t mangled = 0;
    std::uint64_t unknown_oracle = 0;
    try {
        const auto flows =
            static_cast<std::size_t>(util::env_int("FPTC_SERVE_FLOWS").value_or(300));
        const double arrival = util::env_double("FPTC_SERVE_ARRIVAL_S").value_or(30.0);
        const auto seed =
            static_cast<std::uint64_t>(util::env_int("FPTC_SERVE_SEED").value_or(1));
        const auto train_flows =
            static_cast<std::size_t>(util::env_int("FPTC_SERVE_TRAIN_FLOWS").value_or(0));
        const auto train_epochs =
            static_cast<int>(util::env_int("FPTC_SERVE_TRAIN_EPOCHS").value_or(0));
        config = serve::ServeConfig::from_env();
        // A snapshot is only replayable against the identical deterministic
        // stream: fold the stream identity into the config fingerprint so a
        // changed seed/flows/arrival forces a cold start.
        config.fingerprint_extra = seed ^ (static_cast<std::uint64_t>(flows) << 32) ^
                                   std::bit_cast<std::uint64_t>(arrival);

        serve::BackendBundle backends =
            serve::make_backends(config.flowpic_dim, config.reduced_dim, config.num_classes,
                                 seed, train_flows, train_epochs);
        if (const char* candidate = std::getenv("FPTC_SERVE_SELFTEST_CANDIDATE")) {
            if (config.reload_path.empty()) {
                throw util::EnvError(
                    "FPTC_SERVE_SELFTEST_CANDIDATE requires FPTC_SERVE_RELOAD to name "
                    "the candidate path");
            }
            write_selftest_candidate(candidate, config.reload_path, *backends.full);
        }
        serve::InterleavedStream stream({.flows = flows,
                                         .num_classes = config.num_classes,
                                         .arrival_window = arrival,
                                         .seed = seed,
                                         .drift = trafficgen::DriftSchedule::from_env()});
        stream_flows = stream.flow_count();
        unknown_oracle = stream.unknown_flows();
        serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                           *backends.fallback);
        report = service.run(stream);
        mangled = stream.mangled();
    } catch (const util::EnvError& error) {
        std::cerr << "serve_throughput: " << error.what() << "\n";
        return 2;
    }
    // Backends, stream and service are destroyed: every serve-side charge
    // must be credited back before the balance check below.

    std::cout << report.summary() << "\n";
    std::cout << "serve_faults: " << util::fault_injector().summary() << "\n";

    const std::size_t in_use = util::mem_budget().in_use();
    std::cout << "serve_in_use_bytes=" << (in_use - baseline_in_use) << "\n";

    const std::string json = bench_json(report, config, stream_flows, mangled, unknown_oracle);
    try {
        util::DurableFile::write_file("BENCH_serve.json", json);
    } catch (const std::exception& error) {
        std::cerr << "serve_throughput: BENCH_serve.json write failed: " << error.what()
                  << "\n";
    }
    std::cout << json;
    util::telemetry_flush();

    bool ok = true;
    if (!report.accounted()) {
        std::cerr << "serve_throughput: FLOW ACCOUNTING BROKEN: " << report.summary() << "\n";
        ok = false;
    }
    if (in_use != baseline_in_use) {
        std::cerr << "serve_throughput: MemBudget leak: in_use=" << in_use
                  << " baseline=" << baseline_in_use << "\n";
        ok = false;
    }
    // The quarantine oracle only holds for a single-generation run: after a
    // restore, the fresh stream object re-draws (and re-counts) the mangles
    // of the skipped prefix while the quarantine counter carries the crashed
    // generation's view of them.
    if (!report.restored && report.events_quarantined != mangled) {
        std::cerr << "serve_throughput: quarantine oracle mismatch: quarantined="
                  << report.events_quarantined << " mangled=" << mangled << "\n";
        ok = false;
    }
    if (!std::isfinite(report.p99_latency_ms)) {
        std::cerr << "serve_throughput: non-finite p99 latency\n";
        ok = false;
    }
    const double compliance = report.slo_compliance();
    if (!(compliance >= 0.0 && compliance <= 1.0)) {
        std::cerr << "serve_throughput: SLO compliance out of range: " << compliance << "\n";
        ok = false;
    }
    if (config.slo_ms <= 0.0 && (report.shed_slo != 0 || report.events_dropped_slo != 0)) {
        std::cerr << "serve_throughput: SLO sheds recorded with the SLO off\n";
        ok = false;
    }
    if (config.unknown_thresh <= 0.0 && report.flows_unknown != 0) {
        std::cerr << "serve_throughput: unknown outcomes recorded with open-set off\n";
        ok = false;
    }
    if (config.drift_lambda <= 0.0 && config.drift_rate_thresh <= 0.0 &&
        report.drift_alarms != 0) {
        std::cerr << "serve_throughput: drift alarms recorded with the monitor off\n";
        ok = false;
    }
    if (config.reload_path.empty() && (report.reloads != 0 || report.reload_rollbacks != 0)) {
        std::cerr << "serve_throughput: reload activity recorded with reload off\n";
        ok = false;
    }
    if (!config.flightrec && (report.frec_events != 0 || report.postmortems_written != 0)) {
        std::cerr << "serve_throughput: flight-recorder activity with the recorder off\n";
        ok = false;
    }
    std::cout << (ok ? "SERVE_OK" : "SERVE_FAIL") << "\n";
    return ok ? 0 : 1;
}
