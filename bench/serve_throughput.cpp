// Open-loop streaming-serve load generator — the repo's traffic-facing
// perf/robustness number.
//
// Drives an InterleavedStream (trafficgen-backed, deterministic per seed)
// through the StreamingClassifier at full speed, prints the service report,
// checks the robustness invariants the torture harness greps for, and emits
// BENCH_serve.json (flows/sec, events/sec, p50/p99 classify latency, the
// typed shed breakdown, breaker transitions, SLO compliance, crash-recovery
// accounting, host parallelism).
//
// With FPTC_SERVE_SUPERVISE=1 this binary becomes its own supervisor: the
// parent process runs the restart loop (supervisor.hpp) and re-execs itself
// as the worker (FPTC_SERVE_ROLE=worker), which then takes the normal path
// below.  A crashed or hung worker is restarted from its last durable
// snapshot; the final generation's report (and BENCH_serve.json) covers the
// whole logical run because the restored counters are re-based on the
// snapshot cut.
//
// Knobs (all strictly validated):
//   FPTC_SERVE_FLOWS=n        stream flows (default 300)
//   FPTC_SERVE_ARRIVAL_S=x    flow-start window in stream seconds (default 30)
//   FPTC_SERVE_SEED=n         stream + backend seed (default 1)
//   FPTC_SERVE_TRAIN_FLOWS=n  per-class training flows for the backends
//                             (default 0 = untrained CNNs, tiny-fit GBT)
//   FPTC_SERVE_TRAIN_EPOCHS=n CNN training epochs when TRAIN_FLOWS > 0
//   FPTC_SERVE_SUPERVISE=1    run under the crash-recovery supervisor
//   FPTC_SERVE_*              service knobs, see fptc/serve/service.hpp
//   FPTC_FAULT_SERVE_*        fault classes, see fptc/util/fault.hpp
//
// Exit status: 0 iff the run completed with the flow accounting balanced
// and every MemBudget byte credited back.

#include "fptc/serve/service.hpp"
#include "fptc/serve/supervisor.hpp"

#include "fptc/util/durable.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/membudget.hpp"
#include "fptc/util/shutdown.hpp"
#include "fptc/util/telemetry.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <cstdio>
#endif

namespace {

double load_average()
{
#if defined(__unix__) || defined(__APPLE__)
    double loads[1] = {0.0};
    if (getloadavg(loads, 1) == 1) {
        return loads[0];
    }
#endif
    return 0.0;
}

std::string bench_json(const fptc::serve::ServeReport& report,
                       const fptc::serve::ServeConfig& config, std::size_t stream_flows,
                       std::uint64_t quarantine_oracle)
{
    const double wall = report.wall_seconds > 0.0 ? report.wall_seconds : 1e-9;
    std::ostringstream out;
    out << "{\n"
        << "  \"flows\": " << stream_flows << ",\n"
        << "  \"events\": " << report.events_total << ",\n"
        << "  \"wall_seconds\": " << report.wall_seconds << ",\n"
        << "  \"flows_per_sec\": " << static_cast<double>(report.flows_ingested) / wall << ",\n"
        << "  \"events_per_sec\": " << static_cast<double>(report.events_total) / wall << ",\n"
        << "  \"classified\": " << report.flows_classified << ",\n"
        << "  \"correct\": " << report.flows_correct << ",\n"
        << "  \"p50_latency_ms\": " << report.p50_latency_ms << ",\n"
        << "  \"p99_latency_ms\": " << report.p99_latency_ms << ",\n"
        << "  \"batches\": " << report.batches << ",\n"
        << "  \"shed\": {\n"
        << "    \"mem_budget\": " << report.shed_mem_budget << ",\n"
        << "    \"queue_full\": " << report.shed_queue_full << ",\n"
        << "    \"deadline\": " << report.shed_deadline << ",\n"
        << "    \"breaker\": " << report.shed_breaker << ",\n"
        << "    \"slo\": " << report.shed_slo << ",\n"
        << "    \"restart_loss\": " << report.shed_restart_loss << "\n"
        << "  },\n"
        << "  \"events_quarantined\": " << report.events_quarantined << ",\n"
        << "  \"events_mangled\": " << quarantine_oracle << ",\n"
        << "  \"events_dropped_queue\": " << report.events_dropped_queue << ",\n"
        << "  \"events_dropped_mem\": " << report.events_dropped_mem << ",\n"
        << "  \"events_dropped_slo\": " << report.events_dropped_slo << ",\n"
        << "  \"breaker\": {\n"
        << "    \"trips\": " << report.breaker_trips << ",\n"
        << "    \"recoveries\": " << report.breaker_recoveries << ",\n"
        << "    \"final_tier\": " << report.final_tier << "\n"
        << "  },\n"
        << "  \"slo\": {\n"
        << "    \"target_ms\": " << config.slo_ms << ",\n"
        << "    \"considered\": " << report.slo_considered << ",\n"
        << "    \"violations\": " << report.slo_violations << ",\n"
        << "    \"compliance\": " << report.slo_compliance() << "\n"
        << "  },\n"
        << "  \"recovery\": {\n"
        << "    \"generation\": " << report.generation << ",\n"
        << "    \"restored\": " << (report.restored ? "true" : "false") << ",\n"
        << "    \"watermark\": " << report.watermark << ",\n"
        << "    \"restored_flows\": " << report.restored_flows << ",\n"
        << "    \"restore_refused\": " << report.restore_refused << ",\n"
        << "    \"restart_loss\": " << report.shed_restart_loss << ",\n"
        << "    \"snapshots_written\": " << report.snapshots_written << "\n"
        << "  },\n"
        << "  \"host\": {\n"
        << "    \"nproc\": " << std::thread::hardware_concurrency() << ",\n"
        << "    \"load1\": " << load_average() << "\n"
        << "  }\n"
        << "}\n";
    return out.str();
}

} // namespace

int main()
{
    using namespace fptc;

    // Supervisor mode: the parent never serves — it spawns this same binary
    // as the worker (FPTC_SERVE_ROLE=worker) and runs the restart loop.
    if (util::env_int("FPTC_SERVE_SUPERVISE").value_or(0) != 0 && !serve::is_serve_worker()) {
        try {
            return serve::run_supervisor(serve::SupervisorConfig::from_env());
        } catch (const util::EnvError& error) {
            std::cerr << "serve_throughput: " << error.what() << "\n";
            return 2;
        }
    }

    util::install_shutdown_handlers();

    const std::size_t baseline_in_use = util::mem_budget().in_use();
    serve::ServeReport report;
    serve::ServeConfig config;
    std::size_t stream_flows = 0;
    std::uint64_t mangled = 0;
    try {
        const auto flows =
            static_cast<std::size_t>(util::env_int("FPTC_SERVE_FLOWS").value_or(300));
        const double arrival = util::env_double("FPTC_SERVE_ARRIVAL_S").value_or(30.0);
        const auto seed =
            static_cast<std::uint64_t>(util::env_int("FPTC_SERVE_SEED").value_or(1));
        const auto train_flows =
            static_cast<std::size_t>(util::env_int("FPTC_SERVE_TRAIN_FLOWS").value_or(0));
        const auto train_epochs =
            static_cast<int>(util::env_int("FPTC_SERVE_TRAIN_EPOCHS").value_or(0));
        config = serve::ServeConfig::from_env();
        // A snapshot is only replayable against the identical deterministic
        // stream: fold the stream identity into the config fingerprint so a
        // changed seed/flows/arrival forces a cold start.
        config.fingerprint_extra = seed ^ (static_cast<std::uint64_t>(flows) << 32) ^
                                   std::bit_cast<std::uint64_t>(arrival);

        serve::BackendBundle backends =
            serve::make_backends(config.flowpic_dim, config.reduced_dim, config.num_classes,
                                 seed, train_flows, train_epochs);
        serve::InterleavedStream stream({.flows = flows,
                                         .num_classes = config.num_classes,
                                         .arrival_window = arrival,
                                         .seed = seed});
        stream_flows = stream.flow_count();
        serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                           *backends.fallback);
        report = service.run(stream);
        mangled = stream.mangled();
    } catch (const util::EnvError& error) {
        std::cerr << "serve_throughput: " << error.what() << "\n";
        return 2;
    }
    // Backends, stream and service are destroyed: every serve-side charge
    // must be credited back before the balance check below.

    std::cout << report.summary() << "\n";
    std::cout << "serve_faults: " << util::fault_injector().summary() << "\n";

    const std::size_t in_use = util::mem_budget().in_use();
    std::cout << "serve_in_use_bytes=" << (in_use - baseline_in_use) << "\n";

    const std::string json = bench_json(report, config, stream_flows, mangled);
    try {
        util::DurableFile::write_file("BENCH_serve.json", json);
    } catch (const std::exception& error) {
        std::cerr << "serve_throughput: BENCH_serve.json write failed: " << error.what()
                  << "\n";
    }
    std::cout << json;
    util::telemetry_flush();

    bool ok = true;
    if (!report.accounted()) {
        std::cerr << "serve_throughput: FLOW ACCOUNTING BROKEN: " << report.summary() << "\n";
        ok = false;
    }
    if (in_use != baseline_in_use) {
        std::cerr << "serve_throughput: MemBudget leak: in_use=" << in_use
                  << " baseline=" << baseline_in_use << "\n";
        ok = false;
    }
    // The quarantine oracle only holds for a single-generation run: after a
    // restore, the fresh stream object re-draws (and re-counts) the mangles
    // of the skipped prefix while the quarantine counter carries the crashed
    // generation's view of them.
    if (!report.restored && report.events_quarantined != mangled) {
        std::cerr << "serve_throughput: quarantine oracle mismatch: quarantined="
                  << report.events_quarantined << " mangled=" << mangled << "\n";
        ok = false;
    }
    if (!std::isfinite(report.p99_latency_ms)) {
        std::cerr << "serve_throughput: non-finite p99 latency\n";
        ok = false;
    }
    const double compliance = report.slo_compliance();
    if (!(compliance >= 0.0 && compliance <= 1.0)) {
        std::cerr << "serve_throughput: SLO compliance out of range: " << compliance << "\n";
        ok = false;
    }
    if (config.slo_ms <= 0.0 && (report.shed_slo != 0 || report.events_dropped_slo != 0)) {
        std::cerr << "serve_throughput: SLO sheds recorded with the SLO off\n";
        ok = false;
    }
    std::cout << (ok ? "SERVE_OK" : "SERVE_FAIL") << "\n";
    return ok ? 0 : 1;
}
