// Regenerates Table 4 (goal G1.1): "Comparing data augmentation functions in
// a supervised training" — 7 augmentation strategies x 3 flowpic resolutions
// (32, 64, 1500), each trained on 100 flows per class expanded by the
// augmentation, evaluated on the script / human / leftover test sets with
// mean accuracy ± 95% CI, plus the "mean diff" row against the Ref-Paper's
// values.
//
// Runtime notes: by default the campaign runs 32x32 and 64x64 with reduced
// splits/seeds; the 1500x1500 column (the paper's own 30-minutes-per-run
// bottleneck) is enabled with FPTC_FULL=1.  Results are also dumped as CSV
// to FPTC_ARTIFACTS_DIR when set.
//
// Campaign units run through CampaignExecutor (FPTC_JOBS workers, per-unit
// watchdog / retry / degradation); aggregation happens in submission order so
// stdout is bit-identical for any worker count.
#include "fptc/core/campaign.hpp"
#include "fptc/core/executor.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/csv.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <cstdlib>
#include <iostream>
#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace {

using namespace fptc;

// Ref-Paper (Horowicz et al.) Table 1-2 values at 32x32 for the mean-diff row.
const std::map<augment::AugmentationKind, std::pair<double, double>> kRefPaper32 = {
    {augment::AugmentationKind::none, {98.67, 92.40}},
    {augment::AugmentationKind::rotate, {98.60, 93.73}},
    {augment::AugmentationKind::horizontal_flip, {98.93, 94.67}},
    {augment::AugmentationKind::color_jitter, {96.73, 82.93}},
    {augment::AugmentationKind::packet_loss, {98.73, 90.93}},
    {augment::AugmentationKind::time_shift, {99.13, 92.80}},
    {augment::AugmentationKind::change_rtt, {99.40, 96.40}},
};

struct CellScores {
    std::vector<double> script;
    std::vector<double> human;
    std::vector<double> leftover;
    std::size_t expected = 0;  ///< units scheduled for this cell
};

struct UnitMeta {
    std::size_t resolution;
    augment::AugmentationKind augmentation;
    std::string aug_name;
    int split;
    int seed;
};

} // namespace

int main()
{
    using namespace fptc;

    // Paper scale: 5 splits x 3 seeds per (augmentation, resolution).
    const auto scale = util::resolve_scale(5, 3, /*default_splits=*/2, /*default_seeds=*/1);
    std::vector<std::size_t> resolutions = {32, 64};
    if (scale.full) {
        resolutions.push_back(1500);
    }

    // FPTC_SAMPLES scales the synthetic dataset (default 0.2) and
    // FPTC_PER_CLASS the paper's 100-per-class training split; the torture
    // harness shrinks both so the kill-point sweep stays inside its budget.
    const auto data = core::load_ucdavis(util::env_double("FPTC_SAMPLES").value_or(0.2));
    const auto per_class =
        static_cast<std::size_t>(util::env_int("FPTC_PER_CLASS").value_or(100));
    const char* artifacts_dir = std::getenv("FPTC_ARTIFACTS_DIR");
    util::CsvWriter csv({"augmentation", "resolution", "split", "seed", "script", "human",
                         "leftover", "epochs"});
    long total_retries = 0;
    long total_faults = 0;

    std::cout << "=== Table 4 (G1.1): data augmentations in supervised training ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds
              << " seeds per cell; resolutions:";
    for (const auto r : resolutions) {
        std::cout << ' ' << r;
    }
    std::cout << (scale.full ? "" : "; set FPTC_FULL=1 for the 1500x1500 column") << ")\n\n";

    core::CampaignExecutor executor("table4");
    std::vector<UnitMeta> units;

    for (const auto resolution : resolutions) {
        for (const auto augmentation : augment::all_augmentations()) {
            core::SupervisedOptions options;
            options.flowpic.resolution = resolution;
            options.per_class = per_class;
            options.max_epochs = scale.max_epochs;
            // 64x64 costs ~4x per sample: halve the expansion factor at
            // default scale to keep the suite fast (paper factor: 10).
            options.augment_copies = scale.full ? 10 : (resolution >= 64 ? 2 : 3);
            // 64x64 and larger cost ~4x per run: halve the split count at
            // reduced scale to keep the default suite under budget.
            const int cell_splits =
                (!scale.full && resolution >= 64) ? std::max(1, scale.splits / 2) : scale.splits;
            const auto aug_name = std::string(augment::augmentation_name(augmentation));
            for (int split = 0; split < cell_splits; ++split) {
                for (int seed = 0; seed < scale.seeds; ++seed) {
                    const std::string key = "res=" + std::to_string(resolution) +
                                            "|aug=" + aug_name + "|split=" +
                                            std::to_string(split) + "|seed=" +
                                            std::to_string(seed);
                    units.push_back({resolution, augmentation, aug_name, split, seed});
                    // Admission-control footprint: training samples after
                    // augmentation expansion plus the evaluation sets.
                    core::FootprintEstimate footprint;
                    footprint.resolution = resolution;
                    footprint.samples = per_class * data.num_classes() *
                                        (1 + static_cast<std::size_t>(options.augment_copies));
                    footprint.eval_samples = data.script.size() + data.human.size() +
                                             options.leftover_cap;
                    footprint.batch = options.batch_size;
                    executor.submit(key, [&data, options, augmentation, split,
                                          seed](const core::UnitContext& ctx) {
                        auto unit_options = options;
                        unit_options.hooks.cancel = &ctx.cancel;
                        unit_options.batch_size = ctx.batch(options.batch_size);
                        const auto run = core::run_ucdavis_supervised(
                            data, augmentation, 1000 + static_cast<std::uint64_t>(split),
                            50 + static_cast<std::uint64_t>(seed), unit_options);
                        return std::map<std::string, std::string>{
                            {"script", util::field_from_double(100.0 * run.script_accuracy())},
                            {"human", util::field_from_double(100.0 * run.human_accuracy())},
                            {"leftover", util::field_from_double(100.0 * run.leftover_accuracy())},
                            {"epochs", std::to_string(run.epochs_run)},
                            {"retries", std::to_string(run.retries)},
                            {"faults", std::to_string(run.faults_detected)}};
                    }, core::estimate_unit_bytes(footprint));
                }
            }
        }
    }

    executor.run_all();

    if (executor.is_shard_worker()) {
        // Shard workers only execute and journal units; every table, CSV
        // artifact and summary line belongs to the coordinator's aggregation
        // pass over the merged journal.
        return 0;
    }

    // Ordered reduction: walk outcomes in submission order so the table, the
    // CSV artifact and the log lines are identical for every FPTC_JOBS.
    // cell_scores[resolution][augmentation]
    std::map<std::size_t, std::map<augment::AugmentationKind, CellScores>> cells;
    for (std::size_t i = 0; i < units.size(); ++i) {
        const auto& meta = units[i];
        const auto& outcome = executor.outcome(i);
        auto& cell = cells[meta.resolution][meta.augmentation];
        ++cell.expected;
        if (!outcome.succeeded()) {
            continue;  // degraded/cancelled: the cell is marked, not averaged
        }
        const auto& fields = outcome.fields;
        cell.script.push_back(util::field_double(fields, "script"));
        cell.human.push_back(util::field_double(fields, "human"));
        cell.leftover.push_back(util::field_double(fields, "leftover"));
        total_retries += util::field_long(fields, "retries");
        total_faults += util::field_long(fields, "faults");
        csv.add_row({meta.aug_name, std::to_string(meta.resolution),
                     std::to_string(meta.split), std::to_string(meta.seed),
                     util::format_double(cell.script.back()),
                     util::format_double(cell.human.back()),
                     util::format_double(cell.leftover.back()),
                     std::to_string(util::field_long(fields, "epochs"))});
        util::log_info("table4: res " + std::to_string(meta.resolution) + " " + meta.aug_name +
                       " split " + std::to_string(meta.split) + " seed " +
                       std::to_string(meta.seed) + " -> script " +
                       util::format_double(cell.script.back()) + " human " +
                       util::format_double(cell.human.back()));
    }

    for (const auto test_set : {"script", "human", "leftover"}) {
        util::Table table(std::string("Test on ") + test_set +
                          " (mean accuracy ± 95% CI across splits x seeds)");
        std::vector<std::string> header = {"Augmentation"};
        for (const auto r : resolutions) {
            header.push_back(std::to_string(r) + "x" + std::to_string(r));
        }
        table.set_header(header);
        for (const auto augmentation : augment::all_augmentations()) {
            std::vector<std::string> row = {
                std::string(augment::augmentation_name(augmentation))};
            for (const auto r : resolutions) {
                const auto& cell = cells[r][augmentation];
                const auto& scores = std::string(test_set) == "script" ? cell.script
                                     : std::string(test_set) == "human" ? cell.human
                                                                        : cell.leftover;
                const auto ci = stats::degraded_cell_ci(scores, cell.expected);
                row.push_back(util::format_degraded_mean_ci(ci.ci.mean, ci.ci.half_width,
                                                            ci.ci.n, ci.missing));
            }
            table.add_row(row);
        }
        if (executor.degraded() > 0) {
            table.add_footnote("†N: N scheduled run(s) of that cell degraded; "
                               "mean over survivors only.");
        }
        std::cout << table.to_string() << '\n';
        if (artifacts_dir != nullptr) {
            // Durable (temp + fsync + rename) so a crashed campaign never
            // leaves a torn or empty table artifact behind.
            table.write_file(std::string(artifacts_dir) + "/table4_" + test_set + ".txt");
        }
    }

    // Mean diff vs the Ref-Paper at 32x32 (the paper reports -2.05 script,
    // -21.96 human at this resolution for its own reproduction).  Cells with
    // no surviving runs are excluded from the average.
    double diff_script = 0.0;
    double diff_human = 0.0;
    int diff_cells = 0;
    for (const auto& [augmentation, ref] : kRefPaper32) {
        const auto& cell = cells[32][augmentation];
        if (cell.script.empty()) {
            continue;
        }
        diff_script += stats::mean_ci(cell.script).mean - ref.first;
        diff_human += stats::mean_ci(cell.human).mean - ref.second;
        ++diff_cells;
    }
    if (diff_cells > 0) {
        diff_script /= static_cast<double>(diff_cells);
        diff_human /= static_cast<double>(diff_cells);
    }
    std::cout << "mean diff vs Ref-Paper at 32x32: script " << util::format_double(diff_script)
              << " (paper's own reproduction: -2.05), human " << util::format_double(diff_human)
              << " (paper: -21.96 — the data shift)\n";
    std::cout << "expected shape: small script deltas, ~20% human drop, leftover ≈ script.\n";

    std::cout << executor.summary() << '\n';
    util::log_info(executor.timing_summary());
    if (total_retries > 0 || total_faults > 0 || executor.retried_units() > 0 ||
        executor.degraded() > 0 || util::fault_injector().enabled()) {
        std::cout << "fault tolerance: " << total_faults << " divergent step(s) detected, "
                  << total_retries << " rollback retrie(s), " << executor.retried_units()
                  << " unit re-execution(s); injected: " << util::fault_injector().summary()
                  << '\n';
    }

    if (artifacts_dir != nullptr) {
        const std::string path = std::string(artifacts_dir) + "/table4_runs.csv";
        csv.write_file(path);
        std::cout << "per-run artifact written to " << path << '\n';
    }
    return 0;
}
