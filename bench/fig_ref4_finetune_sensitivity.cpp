// Regenerates the Ref-Paper's Fig. 4 sensitivity curve, which the paper
// leans on twice: "the study reported results (only as figures)
// characterising performance improvement when increasing the number of
// samples for fine-tune training, and concluded that the best performance
// was achieved when using 10 training samples" and "Our method achieves
// 93.4% accuracy with only 3 samples, and 94.5% with 10 samples" (script);
// for human, "Figure 4 of the paper clearly shows an accuracy of about 80%".
//
// Protocol: one SimCLR pre-training per (split, seed), then fine-tune the
// linear head with 1, 3, 5 and 10 labeled samples per class and evaluate on
// script/human — producing the accuracy-vs-samples series with 95% CIs the
// Ref-Paper plotted without them.
#include "fptc/core/campaign.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <map>
#include <vector>

int main()
{
    using namespace fptc;

    const auto scale = util::resolve_scale(5, 5, /*default_splits=*/2, /*default_seeds=*/1);
    const auto data = core::load_ucdavis();
    const std::size_t shot_counts[] = {1, 3, 5, 10};

    std::cout << "=== Ref-Paper Fig. 4: fine-tuning sensitivity to labeled sample count ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds
              << " pretrain seeds; one pre-training reused across the shot sweep)\n\n";

    std::map<std::size_t, std::vector<double>> script_scores;
    std::map<std::size_t, std::vector<double>> human_scores;

    for (int split = 0; split < scale.splits; ++split) {
        for (int seed = 0; seed < scale.seeds; ++seed) {
            for (const auto shots : shot_counts) {
                core::SimClrOptions options;
                options.finetune_per_class = shots;
                const auto run = core::run_ucdavis_simclr(
                    data, 1000 + static_cast<std::uint64_t>(split),
                    70 + static_cast<std::uint64_t>(seed),
                    90 + static_cast<std::uint64_t>(shots), options);
                script_scores[shots].push_back(100.0 * run.script_accuracy());
                human_scores[shots].push_back(100.0 * run.human_accuracy());
                util::log_info("fig_ref4: split " + std::to_string(split) + " shots " +
                               std::to_string(shots) + " -> script " +
                               util::format_double(script_scores[shots].back()));
            }
        }
    }

    util::Table table("Fine-tune accuracy vs labeled samples per class (32x32, SimCLR)");
    table.set_header({"samples/class", "script", "human"});
    for (const auto shots : shot_counts) {
        const auto script_ci = stats::mean_ci(script_scores[shots]);
        const auto human_ci = stats::mean_ci(human_scores[shots]);
        table.add_row({std::to_string(shots),
                       util::format_mean_ci(script_ci.mean, script_ci.half_width),
                       util::format_mean_ci(human_ci.mean, human_ci.half_width)});
    }
    std::cout << table.to_string() << '\n';

    std::cout << "Ref-Paper reference: 93.4% script with 3 samples, 94.5% with 10; human ~80%\n"
                 "at 10 (read off its Fig. 4).  Expected shape: monotone-ish growth that\n"
                 "saturates by 10 samples, with human well below script throughout.\n";
    return 0;
}
