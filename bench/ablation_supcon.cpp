// Ablation (paper Sec. 5 future work): SimCLR vs SupCon pre-training.
//
// "such a study should consider the variety of contrastive learning
// approaches including *supervised* contrastive learning methods such as
// SupCon [21]".  This bench runs the Table 5 protocol twice — once with the
// paper's self-supervised NT-Xent pre-training and once with SupCon's
// multi-positive supervised loss (labels available for the 100-sample pool)
// — and compares the 10-shot fine-tuning accuracy on script and human.
//
// Expected shape: SupCon's label-aware latent space matches or beats SimCLR,
// with the larger margin on the shifted human partition.
#include "fptc/core/campaign.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

int main()
{
    using namespace fptc;

    const auto scale = util::resolve_scale(5, 5, /*default_splits=*/2, /*default_seeds=*/1);
    const int finetune_seeds = scale.full ? 5 : 2;
    const auto data = core::load_ucdavis();

    std::cout << "=== Ablation: SimCLR (self-supervised) vs SupCon (supervised contrastive) ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds << " pretrain seeds x "
              << finetune_seeds << " fine-tune seeds; 10 labeled samples/class fine-tune)\n\n";

    util::Table table("10-shot fine-tuning accuracy per pre-training objective (32x32)");
    table.set_header({"Pre-training", "script", "human", "top-5 contrastive acc"});

    for (const bool supervised : {false, true}) {
        std::vector<double> script_scores;
        std::vector<double> human_scores;
        double top5_total = 0.0;
        int pretrains = 0;

        core::SimClrOptions options; // paper pair: Change RTT + Time shift
        for (int split = 0; split < scale.splits; ++split) {
            for (int pre_seed = 0; pre_seed < scale.seeds; ++pre_seed) {
                for (int ft_seed = 0; ft_seed < finetune_seeds; ++ft_seed) {
                    const auto run =
                        supervised
                            ? core::run_ucdavis_supcon(
                                  data, 1000 + static_cast<std::uint64_t>(split),
                                  70 + static_cast<std::uint64_t>(pre_seed),
                                  90 + static_cast<std::uint64_t>(ft_seed), options)
                            : core::run_ucdavis_simclr(
                                  data, 1000 + static_cast<std::uint64_t>(split),
                                  70 + static_cast<std::uint64_t>(pre_seed),
                                  90 + static_cast<std::uint64_t>(ft_seed), options);
                    script_scores.push_back(100.0 * run.script_accuracy());
                    human_scores.push_back(100.0 * run.human_accuracy());
                    top5_total += run.top5_accuracy;
                    ++pretrains;
                }
            }
            util::log_info(std::string("ablation_supcon: ") +
                           (supervised ? "SupCon" : "SimCLR") + " split " +
                           std::to_string(split) + " done");
        }

        const auto script_ci = stats::mean_ci(script_scores);
        const auto human_ci = stats::mean_ci(human_scores);
        table.add_row({supervised ? "SupCon" : "SimCLR (paper)",
                       util::format_mean_ci(script_ci.mean, script_ci.half_width),
                       util::format_mean_ci(human_ci.mean, human_ci.half_width),
                       util::format_double(100.0 * top5_total / pretrains, 1)});
    }

    std::cout << table.to_string() << '\n';
    std::cout << "reading guide: with labels available for the pre-training pool, SupCon's\n"
                 "latent space clusters classes explicitly; the comparison quantifies how\n"
                 "much the paper's self-supervised setting leaves on the table.\n";
    return 0;
}
