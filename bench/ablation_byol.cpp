// Ablation (paper Sec. 2.4 related work): SimCLR vs BYOL pre-training.
//
// "The closest related work to the Ref-Paper is [37], where the authors
// applied another off-the-shelf contrastive learning method (Bootstrap Your
// Own Latent - BYOL [12] which, unlike SimCLR, does not rely on negative
// samples) ... Overall, [37] shows comparable performance with respect to
// the Ref-Paper."  This bench verifies that observation on the flowpic
// input: both objectives pre-train the same encoder on the same view pairs
// and are fine-tuned identically with 10 labeled samples per class.
//
// Expected shape: BYOL within a few points of SimCLR on script — the
// "comparable performance" of [37].
#include "fptc/core/byol.hpp"
#include "fptc/core/campaign.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

int main()
{
    using namespace fptc;

    const auto scale = util::resolve_scale(5, 5, /*default_splits=*/2, /*default_seeds=*/1);
    const int finetune_seeds = scale.full ? 5 : 2;
    const auto data = core::load_ucdavis();

    std::cout << "=== Ablation: SimCLR (negatives) vs BYOL (no negatives) ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds << " pretrain seeds x "
              << finetune_seeds << " fine-tune seeds; 10 labeled samples/class fine-tune)\n\n";

    util::Table table("10-shot fine-tuning accuracy per pre-training method (32x32)");
    table.set_header({"Pre-training", "script", "human"});

    for (const bool byol : {false, true}) {
        std::vector<double> script_scores;
        std::vector<double> human_scores;
        core::SimClrOptions options; // Change RTT + Time shift views
        for (int split = 0; split < scale.splits; ++split) {
            for (int pre_seed = 0; pre_seed < scale.seeds; ++pre_seed) {
                for (int ft_seed = 0; ft_seed < finetune_seeds; ++ft_seed) {
                    const auto run =
                        byol ? core::run_ucdavis_byol(data,
                                                      1000 + static_cast<std::uint64_t>(split),
                                                      70 + static_cast<std::uint64_t>(pre_seed),
                                                      90 + static_cast<std::uint64_t>(ft_seed),
                                                      options)
                             : core::run_ucdavis_simclr(data,
                                                        1000 + static_cast<std::uint64_t>(split),
                                                        70 + static_cast<std::uint64_t>(pre_seed),
                                                        90 + static_cast<std::uint64_t>(ft_seed),
                                                        options);
                    script_scores.push_back(100.0 * run.script_accuracy());
                    human_scores.push_back(100.0 * run.human_accuracy());
                }
            }
            util::log_info(std::string("ablation_byol: ") + (byol ? "BYOL" : "SimCLR") +
                           " split " + std::to_string(split) + " done");
        }
        const auto script_ci = stats::mean_ci(script_scores);
        const auto human_ci = stats::mean_ci(human_scores);
        table.add_row({byol ? "BYOL [12]" : "SimCLR (paper)",
                       util::format_mean_ci(script_ci.mean, script_ci.half_width),
                       util::format_mean_ci(human_ci.mean, human_ci.half_width)});
    }

    std::cout << table.to_string() << '\n';
    std::cout << "paper context: [37] reports BYOL on packet time series to be comparable to\n"
                 "the Ref-Paper's SimCLR-on-flowpic; this bench makes the comparison on the\n"
                 "*same* input representation and protocol.\n";
    return 0;
}
