// google-benchmark micro-benchmarks over the substrate layers: flowpic
// rasterization, augmentation throughput, CNN forward/backward, NT-Xent,
// and GBT training.  These quantify the per-experiment cost that drives the
// campaign-scale decisions documented in DESIGN.md.
//
// Besides the console table, every run writes BENCH_micro.json (to
// FPTC_ARTIFACTS_DIR when set, else the working directory) with name,
// ns/op, and bytes/op per benchmark so campaign tooling and the telemetry
// overhead gate (tests/run_telemetry.sh) can consume the numbers without
// scraping stdout.
#include "fptc/augment/augmentation.hpp"
#include "fptc/core/data.hpp"
#include "fptc/serve/backend.hpp"
#include "fptc/serve/flightrec.hpp"
#include "fptc/serve/reload.hpp"
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/gbt/gbt.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/membudget.hpp"
#include "fptc/util/telemetry.hpp"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

using namespace fptc;

/// Attributes MemBudget-accounted allocations to a benchmark as a
/// bytes_per_op counter: delta of the accountant's monotonic reserved
/// total across the timing loop, divided by iterations.  Layers that do
/// not charge the budget report 0.
class AllocPerOp {
public:
    explicit AllocPerOp(benchmark::State& state)
        : state_(state), start_(util::mem_budget().reserved_total())
    {
    }

    ~AllocPerOp()
    {
        const std::uint64_t delta = util::mem_budget().reserved_total() - start_;
        const auto iterations = state_.iterations() > 0 ? state_.iterations() : 1;
        state_.counters["bytes_per_op"] =
            benchmark::Counter(static_cast<double>(delta) / static_cast<double>(iterations));
    }

    AllocPerOp(const AllocPerOp&) = delete;
    AllocPerOp& operator=(const AllocPerOp&) = delete;

private:
    benchmark::State& state_;
    std::uint64_t start_;
};

flow::Flow make_test_flow()
{
    util::Rng rng(7);
    return trafficgen::generate_flow(trafficgen::ucdavis19_profile(4, false), 4, rng);
}

void BM_FlowpicRasterize(benchmark::State& state)
{
    const auto flow = make_test_flow();
    flowpic::FlowpicConfig config;
    config.resolution = static_cast<std::size_t>(state.range(0));
    AllocPerOp alloc(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(flowpic::Flowpic::from_flow(flow, config));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(flow.packets.size()));
}
BENCHMARK(BM_FlowpicRasterize)->Arg(32)->Arg(64)->Arg(1500);

void BM_Augmentation(benchmark::State& state)
{
    const auto flow = make_test_flow();
    const auto kind = static_cast<augment::AugmentationKind>(state.range(0));
    const auto augmentation = augment::make_augmentation(kind);
    flowpic::FlowpicConfig config;
    util::Rng rng(11);
    AllocPerOp alloc(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(augmentation->augmented_flowpic(flow, config, rng));
    }
}
BENCHMARK(BM_Augmentation)
    ->Arg(static_cast<int>(augment::AugmentationKind::rotate))
    ->Arg(static_cast<int>(augment::AugmentationKind::color_jitter))
    ->Arg(static_cast<int>(augment::AugmentationKind::packet_loss))
    ->Arg(static_cast<int>(augment::AugmentationKind::change_rtt));

void BM_LeNetForward(benchmark::State& state)
{
    nn::ModelConfig config;
    config.flowpic_dim = static_cast<std::size_t>(state.range(0));
    auto network = nn::make_supervised_network(config);
    const std::size_t dim = nn::effective_input_dim(config.flowpic_dim);
    util::Rng rng(3);
    const auto input = nn::Tensor::randn({32, 1, dim, dim}, rng, 0.5f);
    AllocPerOp alloc(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(network.forward(input, false));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_LeNetForward)->Arg(32)->Arg(64);

void BM_LeNetTrainStep(benchmark::State& state)
{
    nn::ModelConfig config;
    config.flowpic_dim = 32;
    auto network = nn::make_supervised_network(config);
    util::Rng rng(3);
    const auto input = nn::Tensor::randn({32, 1, 32, 32}, rng, 0.5f);
    std::vector<std::size_t> labels(32);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = i % 5;
    }
    AllocPerOp alloc(state);
    for (auto _ : state) {
        const auto logits = network.forward(input, true);
        const auto loss = nn::cross_entropy(logits, labels);
        network.zero_grad();
        benchmark::DoNotOptimize(network.backward(loss.grad));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_LeNetTrainStep);

void BM_NtXent(benchmark::State& state)
{
    util::Rng rng(5);
    const auto projections =
        nn::Tensor::randn({static_cast<std::size_t>(state.range(0)), 30}, rng);
    AllocPerOp alloc(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(nn::nt_xent(projections, 0.07));
    }
}
BENCHMARK(BM_NtXent)->Arg(16)->Arg(64);

void BM_GbtFit(benchmark::State& state)
{
    util::Rng rng(9);
    const std::size_t n = 200;
    const std::size_t d = static_cast<std::size_t>(state.range(0));
    std::vector<std::vector<float>> features(n, std::vector<float>(d));
    std::vector<std::size_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
        labels[i] = i % 5;
        for (auto& v : features[i]) {
            v = static_cast<float>(rng.normal(static_cast<double>(labels[i]), 1.5));
        }
    }
    gbt::GbtConfig config;
    config.num_rounds = 20;
    AllocPerOp alloc(state);
    for (auto _ : state) {
        gbt::GbtClassifier model(config, 5);
        model.fit(features, labels);
        benchmark::DoNotOptimize(model.tree_count());
    }
}
BENCHMARK(BM_GbtFit)->Arg(30)->Arg(256);

void BM_TrafficGeneration(benchmark::State& state)
{
    const auto profile =
        trafficgen::ucdavis19_profile(static_cast<std::size_t>(state.range(0)), false);
    util::Rng rng(13);
    AllocPerOp alloc(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(trafficgen::generate_flow(profile, 0, rng));
    }
}
BENCHMARK(BM_TrafficGeneration)->Arg(0)->Arg(4);

/// One serve-stage classify batch (rasterize + CNN forward for 16 flows)
/// through the full-tier backend at the given flowpic resolution — the
/// latency unit the streaming service's deadline and breaker act on.
void BM_ServeClassifyLatency(benchmark::State& state)
{
    const auto resolution = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kBatch = 16;
    auto backend = serve::CnnBackend::untrained(resolution, 5, 17);
    util::Rng rng(19);
    std::vector<serve::ReadyFlow> batch;
    batch.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
        serve::ReadyFlow ready;
        ready.flow_id = i + 1;
        ready.label = static_cast<std::uint32_t>(i % 5);
        ready.flow = trafficgen::generate_flow(trafficgen::ucdavis19_profile(i % 5, false),
                                               i % 5, rng);
        batch.push_back(std::move(ready));
    }
    const util::CancelToken token;
    AllocPerOp alloc(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(backend->classify(batch, token));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_ServeClassifyLatency)->Arg(16)->Arg(32);

/// One golden-replay canary pass (reload.hpp): classify the fixed labeled
/// buffer — `range(0)` flows per class across 5 classes — through the
/// full-tier CNN and score it.  This is the pause the classifier thread
/// takes between batches when vetting a reload candidate, so it bounds how
/// large FPTC_SERVE_RELOAD_CANARY can be before canarying itself violates
/// the latency SLO.
void BM_ServeCanaryReplay(benchmark::State& state)
{
    const auto canary_flows = static_cast<std::size_t>(state.range(0));
    auto backend = serve::CnnBackend::untrained(32, 5, 17);
    serve::ReloadConfig config;
    config.path = "unused-canary-bench.ckpt";  // never read: only golden_accuracy runs
    config.canary_flows = canary_flows;
    const serve::ModelReloader reloader(config, backend.get());
    AllocPerOp alloc(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reloader.golden_accuracy(*backend));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(canary_flows * 5));
}
BENCHMARK(BM_ServeCanaryReplay)->Arg(4)->Arg(16);

/// Shared workload for the span-overhead pair: a short FNV-1a mixing loop,
/// heavy enough that timer noise does not dominate but small enough that a
/// non-zero-cost disabled span would register.  tests/run_telemetry.sh
/// compares the two benchmarks to gate disabled-path telemetry overhead.
std::uint64_t fnv_mix(std::uint64_t h)
{
    for (std::uint64_t i = 0; i < 64; ++i) {
        h = (h ^ i) * 1099511628211ULL;
    }
    return h;
}

void BM_SpanOverheadBaseline(benchmark::State& state)
{
    std::uint64_t h = 1469598103934665603ULL;
    AllocPerOp alloc(state);
    for (auto _ : state) {
        h = fnv_mix(h);
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_SpanOverheadBaseline);

void BM_TelemetryDisabledSpan(benchmark::State& state)
{
    std::uint64_t h = 1469598103934665603ULL;
    AllocPerOp alloc(state);
    for (auto _ : state) {
        FPTC_TRACE_SPAN("bench_noop");
        h = fnv_mix(h);
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_TelemetryDisabledSpan);

/// The flight-recorder overhead pair, same fnv workload and same contract
/// as the span pair: with no recorder installed a frec_note call site is
/// one relaxed load + predicted branch, gated <= 2% (+2 ns slack) against
/// BM_SpanOverheadBaseline by tests/run_serve_torture.sh.
void BM_FlightRecDisabled(benchmark::State& state)
{
    std::uint64_t h = 1469598103934665603ULL;
    AllocPerOp alloc(state);
    for (auto _ : state) {
        serve::frec_note(serve::FrecRing::driver, serve::FrecKind::ingest, h, h);
        h = fnv_mix(h);
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_FlightRecDisabled);

/// Enabled cost for context (not gated): one steady-clock read plus five
/// relaxed/release stores into a private-memory ring.
void BM_FlightRecEnabled(benchmark::State& state)
{
    serve::FlightRecorder recorder({.ring_path = "", .ring_capacity = 4096});
    std::uint64_t h = 1469598103934665603ULL;
    AllocPerOp alloc(state);
    for (auto _ : state) {
        serve::frec_note(serve::FrecRing::driver, serve::FrecKind::ingest, h, h);
        h = fnv_mix(h);
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_FlightRecEnabled);

/// Console output as usual, plus a machine-readable capture of every
/// per-iteration run for BENCH_micro.json.  Aggregate rows (when
/// --benchmark_repetitions is used) are skipped: consumers want raw runs.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& runs) override
    {
        benchmark::ConsoleReporter::ReportRuns(runs);
        for (const auto& run : runs) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred ||
                run.iterations <= 0) {
                continue;
            }
            const double ns_per_op =
                run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9;
            double bytes_per_op = 0.0;
            const auto counter = run.counters.find("bytes_per_op");
            if (counter != run.counters.end()) {
                bytes_per_op = counter->second.value;
            }
            char row[256];
            std::snprintf(row, sizeof(row),
                          "    {\"name\": \"%s\", \"iterations\": %lld, "
                          "\"ns_per_op\": %.3f, \"bytes_per_op\": %.1f}",
                          run.benchmark_name().c_str(),
                          static_cast<long long>(run.iterations), ns_per_op, bytes_per_op);
            rows_.emplace_back(row);
        }
    }

    [[nodiscard]] std::string json() const
    {
        std::string out = "{\n  \"benchmarks\": [\n";
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            out += rows_[i];
            out += i + 1 < rows_.size() ? ",\n" : "\n";
        }
        out += "  ]\n}\n";
        return out;
    }

private:
    std::vector<std::string> rows_;
};

} // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const char* artifacts_dir = std::getenv("FPTC_ARTIFACTS_DIR");
    const std::string path = (artifacts_dir != nullptr && *artifacts_dir != '\0')
                                 ? std::string(artifacts_dir) + "/BENCH_micro.json"
                                 : std::string("BENCH_micro.json");
    try {
        fptc::util::DurableFile::write_file(path, reporter.json());
    } catch (const std::exception& error) {
        std::fprintf(stderr, "[fptc] failed to write %s: %s\n", path.c_str(), error.what());
        return 1;
    }
    return 0;
}
