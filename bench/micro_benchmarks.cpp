// google-benchmark micro-benchmarks over the substrate layers: flowpic
// rasterization, augmentation throughput, CNN forward/backward, NT-Xent,
// and GBT training.  These quantify the per-experiment cost that drives the
// campaign-scale decisions documented in DESIGN.md.
#include "fptc/augment/augmentation.hpp"
#include "fptc/core/data.hpp"
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/gbt/gbt.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace fptc;

flow::Flow make_test_flow()
{
    util::Rng rng(7);
    return trafficgen::generate_flow(trafficgen::ucdavis19_profile(4, false), 4, rng);
}

void BM_FlowpicRasterize(benchmark::State& state)
{
    const auto flow = make_test_flow();
    flowpic::FlowpicConfig config;
    config.resolution = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(flowpic::Flowpic::from_flow(flow, config));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(flow.packets.size()));
}
BENCHMARK(BM_FlowpicRasterize)->Arg(32)->Arg(64)->Arg(1500);

void BM_Augmentation(benchmark::State& state)
{
    const auto flow = make_test_flow();
    const auto kind = static_cast<augment::AugmentationKind>(state.range(0));
    const auto augmentation = augment::make_augmentation(kind);
    flowpic::FlowpicConfig config;
    util::Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(augmentation->augmented_flowpic(flow, config, rng));
    }
}
BENCHMARK(BM_Augmentation)
    ->Arg(static_cast<int>(augment::AugmentationKind::rotate))
    ->Arg(static_cast<int>(augment::AugmentationKind::color_jitter))
    ->Arg(static_cast<int>(augment::AugmentationKind::packet_loss))
    ->Arg(static_cast<int>(augment::AugmentationKind::change_rtt));

void BM_LeNetForward(benchmark::State& state)
{
    nn::ModelConfig config;
    config.flowpic_dim = static_cast<std::size_t>(state.range(0));
    auto network = nn::make_supervised_network(config);
    const std::size_t dim = nn::effective_input_dim(config.flowpic_dim);
    util::Rng rng(3);
    const auto input = nn::Tensor::randn({32, 1, dim, dim}, rng, 0.5f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(network.forward(input, false));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_LeNetForward)->Arg(32)->Arg(64);

void BM_LeNetTrainStep(benchmark::State& state)
{
    nn::ModelConfig config;
    config.flowpic_dim = 32;
    auto network = nn::make_supervised_network(config);
    util::Rng rng(3);
    const auto input = nn::Tensor::randn({32, 1, 32, 32}, rng, 0.5f);
    std::vector<std::size_t> labels(32);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = i % 5;
    }
    for (auto _ : state) {
        const auto logits = network.forward(input, true);
        const auto loss = nn::cross_entropy(logits, labels);
        network.zero_grad();
        benchmark::DoNotOptimize(network.backward(loss.grad));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_LeNetTrainStep);

void BM_NtXent(benchmark::State& state)
{
    util::Rng rng(5);
    const auto projections =
        nn::Tensor::randn({static_cast<std::size_t>(state.range(0)), 30}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(nn::nt_xent(projections, 0.07));
    }
}
BENCHMARK(BM_NtXent)->Arg(16)->Arg(64);

void BM_GbtFit(benchmark::State& state)
{
    util::Rng rng(9);
    const std::size_t n = 200;
    const std::size_t d = static_cast<std::size_t>(state.range(0));
    std::vector<std::vector<float>> features(n, std::vector<float>(d));
    std::vector<std::size_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
        labels[i] = i % 5;
        for (auto& v : features[i]) {
            v = static_cast<float>(rng.normal(static_cast<double>(labels[i]), 1.5));
        }
    }
    gbt::GbtConfig config;
    config.num_rounds = 20;
    for (auto _ : state) {
        gbt::GbtClassifier model(config, 5);
        model.fit(features, labels);
        benchmark::DoNotOptimize(model.tree_count());
    }
}
BENCHMARK(BM_GbtFit)->Arg(30)->Arg(256);

void BM_TrafficGeneration(benchmark::State& state)
{
    const auto profile =
        trafficgen::ucdavis19_profile(static_cast<std::size_t>(state.range(0)), false);
    util::Rng rng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(trafficgen::generate_flow(profile, 0, rng));
    }
}
BENCHMARK(BM_TrafficGeneration)->Arg(0)->Arg(4);

} // namespace

BENCHMARK_MAIN();
