// Regenerates Fig. 6 and Fig. 7: the critical-distance plot of the 7
// augmentations "across the four tested datasets" (Fig. 6) and the
// per-dataset average-rank breakdown (Fig. 7, ranks closer to 1 = better).
//
// Each experiment contributes one rank vector: the weighted-F1 (mobile
// datasets) or accuracy (UCDAVIS19 leftover) of the 7 augmentations under
// identical split/seed.  The paper's conclusion: pooling the four datasets
// finally separates Change RTT and Time shift from the rest — "the two
// functions are significantly better than the others, yet still not
// statistically different from each other".
#include "fptc/core/campaign.hpp"
#include "fptc/stats/ranking.hpp"
#include "fptc/trafficgen/mobile.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

int main()
{
    using namespace fptc;

    const auto scale = util::resolve_scale(5, 3, /*default_splits=*/1, /*default_seeds=*/2);
    const auto& augmentations = augment::all_augmentations();

    trafficgen::MobileGenOptions gen;
    gen.samples_scale = scale.full ? 0.05 : 0.015;

    struct Entry {
        std::string title;
        flow::Dataset dataset;
    };
    std::vector<Entry> mobile;
    mobile.push_back({"MIRAGE-22", trafficgen::make_mirage22(gen, 10)});
    mobile.push_back({"UTMOBILENET21", trafficgen::make_utmobilenet21(gen)});
    mobile.push_back({"MIRAGE-19", trafficgen::make_mirage19(gen)});

    std::vector<std::vector<double>> all_scores;           // pooled, Fig. 6
    std::vector<std::vector<std::vector<double>>> per_ds;  // Fig. 7
    per_ds.resize(mobile.size() + 1);

    // UCDAVIS19 contributes through the supervised campaign (script scores).
    {
        const auto data = core::load_ucdavis();
        core::SupervisedOptions options;
        options.max_epochs = scale.max_epochs;
        options.augment_copies = scale.full ? 10 : 2;
        for (int split = 0; split < scale.splits; ++split) {
            for (int seed = 0; seed < scale.seeds; ++seed) {
                std::vector<double> row;
                for (const auto augmentation : augmentations) {
                    const auto run = core::run_ucdavis_supervised(
                        data, augmentation, 1000 + static_cast<std::uint64_t>(split),
                        50 + static_cast<std::uint64_t>(seed), options);
                    row.push_back(run.script_accuracy());
                }
                all_scores.push_back(row);
                per_ds[0].push_back(std::move(row));
                util::log_info("fig6_7: ucdavis19 split " + std::to_string(split) + " seed " +
                               std::to_string(seed) + " done");
            }
        }
    }

    for (std::size_t d = 0; d < mobile.size(); ++d) {
        core::SupervisedOptions options;
        options.max_epochs = scale.max_epochs;
        options.augment_copies = scale.full ? 10 : 2;
        for (int split = 0; split < scale.splits; ++split) {
            for (int seed = 0; seed < scale.seeds; ++seed) {
                std::vector<double> row;
                for (const auto augmentation : augmentations) {
                    const auto run = core::run_replication_supervised(
                        mobile[d].dataset, augmentation, 400 + static_cast<std::uint64_t>(split),
                        60 + static_cast<std::uint64_t>(seed), options);
                    row.push_back(run.weighted_f1());
                }
                all_scores.push_back(row);
                per_ds[d + 1].push_back(std::move(row));
                util::log_info("fig6_7: " + mobile[d].title + " split " + std::to_string(split) +
                               " seed " + std::to_string(seed) + " done");
            }
        }
    }

    std::vector<std::string> names;
    for (const auto augmentation : augmentations) {
        names.emplace_back(augment::augmentation_name(augmentation));
    }

    std::cout << "=== Fig. 6: critical-distance plot across the four datasets ===\n";
    const auto pooled = stats::critical_distance_analysis(all_scores, 0.05);
    std::cout << stats::render_cd_plot(pooled, names) << '\n';

    std::cout << "=== Fig. 7: average rank per augmentation and dataset (1 = best) ===\n";
    util::Table table;
    std::vector<std::string> header = {"Augmentation", "UCDAVIS19", "MIRAGE-22", "UTMOBILENET21",
                                       "MIRAGE-19"};
    table.set_header(header);
    std::vector<stats::CriticalDistanceResult> per_results;
    per_results.reserve(per_ds.size());
    for (const auto& scores : per_ds) {
        per_results.push_back(stats::critical_distance_analysis(scores, 0.05));
    }
    for (std::size_t a = 0; a < names.size(); ++a) {
        std::vector<std::string> row = {names[a]};
        for (const auto& result : per_results) {
            row.push_back(util::format_double(result.average_ranks[a], 2));
        }
        table.add_row(row);
    }
    std::cout << table.to_string() << '\n';

    std::cout << "paper takeaway: pooling four datasets shrinks the CD enough to validate\n"
                 "Change RTT and Time shift as significantly better than the other\n"
                 "augmentations (but not different from each other).\n";
    return 0;
}
