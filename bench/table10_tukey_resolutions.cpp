// Regenerates Table 10 (App. F): "Performance comparison across
// augmentations for different flowpic sizes. P-values extracted from Tukey's
// post-hoc test at a 0.05 significance level."  The paper uses this test to
// justify pooling the 32x32 and 64x64 populations in the Fig. 5 ranking
// (p = 0.57 between them) while keeping 1500x1500 apart (p < 1e-5).
//
// We treat every (augmentation, split, seed) experiment's accuracy as one
// observation of its resolution's population.  The 1500x1500 population is
// emulated by the pre-pooled pipeline (see DESIGN.md) and is generated only
// under FPTC_FULL; otherwise a surrogate population with the paper's
// reported offset is synthesized from the 32x32 runs so the statistical
// machinery is still exercised end-to-end.
#include "fptc/core/campaign.hpp"
#include "fptc/stats/tukey.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"

#include <iostream>
#include <vector>

int main()
{
    using namespace fptc;

    const auto scale = util::resolve_scale(5, 3, /*default_splits=*/2, /*default_seeds=*/1);
    const auto data = core::load_ucdavis();

    std::cout << "=== Table 10 (App. F): Tukey HSD across flowpic resolutions ===\n\n";

    // Populations: script accuracies of every (augmentation, split, seed).
    std::vector<std::vector<double>> populations;
    std::vector<std::string> names;

    std::vector<std::size_t> resolutions = {32, 64};
    if (scale.full) {
        resolutions.push_back(1500);
    }
    for (const auto resolution : resolutions) {
        core::SupervisedOptions options;
        options.flowpic.resolution = resolution;
        options.max_epochs = scale.max_epochs;
        options.augment_copies = scale.full ? 10 : 2;
        std::vector<double> population;
        for (const auto augmentation : augment::all_augmentations()) {
            for (int split = 0; split < scale.splits; ++split) {
                for (int seed = 0; seed < scale.seeds; ++seed) {
                    const auto run = core::run_ucdavis_supervised(
                        data, augmentation, 1000 + static_cast<std::uint64_t>(split),
                        50 + static_cast<std::uint64_t>(seed), options);
                    population.push_back(100.0 * run.script_accuracy());
                }
            }
            util::log_info("table10: res " + std::to_string(resolution) + " " +
                           std::string(augment::augmentation_name(augmentation)) + " done");
        }
        populations.push_back(std::move(population));
        names.push_back(std::to_string(resolution) + "x" + std::to_string(resolution));
    }

    if (!scale.full) {
        // Surrogate 1500x1500 population: the paper reports it ~1.5-2 points
        // below 32x32 on script (Table 4); shift the 32x32 population so the
        // Tukey pipeline runs over three groups as in Table 10.
        std::vector<double> surrogate = populations[0];
        for (auto& v : surrogate) {
            v -= 1.8;
        }
        populations.push_back(std::move(surrogate));
        names.emplace_back("1500x1500 (surrogate; run FPTC_FULL=1 for trained population)");
    }

    const auto result = stats::tukey_hsd(populations, 0.05);
    std::cout << stats::render_tukey_table(result, names) << '\n';

    std::cout << "paper reference: 32x32 vs 64x64 p = 0.57 (not different); both differ from\n"
                 "1500x1500 (p = 1.93e-6 and 1.04e-8) — justifying pooling 32+64 in Fig. 5.\n";
    return 0;
}
