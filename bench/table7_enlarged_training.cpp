// Regenerates Table 7: "Accuracy on 32x32 flowpic when enlarging training
// set (w/o dropout)" — the paper's expansion beyond the 100-samples-per-
// class protocol: 80/20 train/validation splits over the *full* pretraining
// partition, for all 7 supervised augmentations plus SimCLR + fine-tuning.
//
// Expected shape (paper): supervised script accuracies rise to ~98.5 and
// human to ~73-75; SimCLR gains more on human (80.45±2.37) than on script —
// "the latent space created via contrastive learning is better at
// mitigating the data shift".
#include "fptc/core/campaign.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

int main()
{
    using namespace fptc;

    // Paper: 20 experiments (20 seeds) per row.  Default: 2 seeds.
    const auto scale = util::resolve_scale(1, 20, /*default_splits=*/1, /*default_seeds=*/2);
    const auto data = core::load_ucdavis();

    std::cout << "=== Table 7: enlarged training set (full pretraining partition, w/o dropout) ===\n"
              << "(" << scale.seeds << " seeds per row; paper: 20)\n\n";

    util::Table table("Accuracy on 32x32 flowpic when enlarging the training set (w/o dropout)");
    table.set_header({"Setting", "Augmentation", "script", "human"});

    core::SupervisedOptions options;
    options.with_dropout = false;
    options.max_epochs = scale.max_epochs;
    options.augment_copies = scale.full ? 10 : 2;

    for (const auto augmentation : augment::all_augmentations()) {
        std::vector<double> script_scores;
        std::vector<double> human_scores;
        for (int seed = 0; seed < scale.seeds; ++seed) {
            const auto run = core::run_ucdavis_enlarged_supervised(
                data, augmentation, 300 + static_cast<std::uint64_t>(seed), options);
            script_scores.push_back(100.0 * run.script_accuracy());
            human_scores.push_back(100.0 * run.human_accuracy());
            util::log_info("table7: " + std::string(augment::augmentation_name(augmentation)) +
                           " seed " + std::to_string(seed) + " -> script " +
                           util::format_double(script_scores.back()) + " human " +
                           util::format_double(human_scores.back()));
        }
        const auto script_ci = stats::mean_ci(script_scores);
        const auto human_ci = stats::mean_ci(human_scores);
        table.add_row({"Supervised", std::string(augment::augmentation_name(augmentation)),
                       util::format_mean_ci(script_ci.mean, script_ci.half_width),
                       util::format_mean_ci(human_ci.mean, human_ci.half_width)});
    }

    {
        std::vector<double> script_scores;
        std::vector<double> human_scores;
        core::SimClrOptions simclr_options;
        simclr_options.with_dropout = false;
        for (int seed = 0; seed < scale.seeds; ++seed) {
            const auto run = core::run_ucdavis_enlarged_simclr(
                data, 300 + static_cast<std::uint64_t>(seed), simclr_options);
            script_scores.push_back(100.0 * run.script_accuracy());
            human_scores.push_back(100.0 * run.human_accuracy());
            util::log_info("table7: SimCLR seed " + std::to_string(seed) + " -> script " +
                           util::format_double(script_scores.back()) + " human " +
                           util::format_double(human_scores.back()));
        }
        const auto script_ci = stats::mean_ci(script_scores);
        const auto human_ci = stats::mean_ci(human_scores);
        table.add_row({"Contrastive", "SimCLR + fine-tuning",
                       util::format_mean_ci(script_ci.mean, script_ci.half_width),
                       util::format_mean_ci(human_ci.mean, human_ci.half_width)});
    }

    std::cout << table.to_string() << '\n';
    std::cout << "paper reference: supervised rows ~98.2-98.6 script / 72.5-74.6 human; SimCLR\n"
                 "93.90±0.74 / 80.45±2.37.  Expected shape: higher scores than the 100-sample\n"
                 "campaigns (Tables 4-5), with SimCLR gaining most on human.\n";
    return 0;
}
