// Regenerates Table 8 (goal G3): "Data augmentation in supervised setting on
// other datasets" — the replication of the augmentation benchmark on
// MIRAGE-22 (>10pkts and >1000pkts variants), UTMOBILENET21 (>10pkts) and
// MIRAGE-19 (>10pkts), with a traditional stratified 80/10/10 split, full
// class imbalance preserved and weighted F1 as the metric (Sec. 4.5.1).
//
// Paper shape to verify: Change RTT and Time shift are the top strategies on
// every dataset; the augmentation gap widens vs UCDAVIS19 (up to ~14% on
// MIRAGE-19) and Rotate *hurts* badly on MIRAGE-19.
//
// Campaign units run through CampaignExecutor (FPTC_JOBS workers, per-unit
// watchdog / retry / degradation); aggregation happens in submission order so
// stdout is bit-identical for any worker count.
#include "fptc/core/campaign.hpp"
#include "fptc/core/executor.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/trafficgen/mobile.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <map>
#include <string>
#include <vector>

int main()
{
    using namespace fptc;

    // Paper: 15 experiments per cell (5 splits x 3 seeds).  Default: 1 x 2.
    const auto scale = util::resolve_scale(5, 3, /*default_splits=*/1, /*default_seeds=*/2);

    trafficgen::MobileGenOptions gen;
    gen.samples_scale = scale.full ? 0.05 : 0.015;

    struct Entry {
        std::string title;
        flow::Dataset dataset;
    };
    std::vector<Entry> datasets;
    datasets.push_back({"MIRAGE-22 (>10pkts)", trafficgen::make_mirage22(gen, 10)});
    datasets.push_back({"MIRAGE-22 (>1000pkts)",
                        trafficgen::make_mirage22(gen, trafficgen::kMirage22LongFlowThreshold)});
    datasets.push_back({"UTMOBILENET21 (>10pkts)", trafficgen::make_utmobilenet21(gen)});
    datasets.push_back({"MIRAGE-19 (>10pkts)", trafficgen::make_mirage19(gen)});

    std::cout << "=== Table 8 (G3): augmentations on the replication datasets ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds
              << " seeds per cell; stratified 80/10/10; metric: weighted F1)\n\n";
    for (const auto& entry : datasets) {
        std::cout << "  " << entry.title << ": " << entry.dataset.size() << " flows, "
                  << entry.dataset.num_classes() << " classes\n";
    }
    std::cout << '\n';

    long total_retries = 0;
    long total_faults = 0;

    util::Table table("Weighted F1 (%) per augmentation and dataset");
    std::vector<std::string> header = {"Augmentation"};
    for (const auto& entry : datasets) {
        header.push_back(entry.title);
    }
    table.set_header(header);

    struct Cell {
        std::vector<double> scores;
        std::size_t expected = 0;
    };

    core::CampaignExecutor executor("table8");
    std::vector<std::size_t> unit_cells;  ///< submission index -> cell index
    // cells laid out augmentation-major: cell = aug_index * datasets + dataset
    std::vector<Cell> cells(augment::all_augmentations().size() * datasets.size());

    std::size_t aug_index = 0;
    for (const auto augmentation : augment::all_augmentations()) {
        for (std::size_t d = 0; d < datasets.size(); ++d) {
            const auto& entry = datasets[d];
            core::SupervisedOptions options;
            options.max_epochs = scale.max_epochs;
            options.augment_copies = scale.full ? 10 : 2;
            const std::size_t cell = aug_index * datasets.size() + d;
            for (int split = 0; split < scale.splits; ++split) {
                for (int seed = 0; seed < scale.seeds; ++seed) {
                    const std::string key =
                        "dataset=" + entry.title +
                        "|aug=" + std::string(augment::augmentation_name(augmentation)) +
                        "|split=" + std::to_string(split) + "|seed=" + std::to_string(seed);
                    unit_cells.push_back(cell);
                    // Admission-control footprint: the 80% training split
                    // expanded by the augmentation, plus the 10% test split.
                    core::FootprintEstimate footprint;
                    footprint.resolution = options.flowpic.resolution;
                    footprint.samples =
                        entry.dataset.size() * 8 / 10 *
                        (1 + static_cast<std::size_t>(options.augment_copies));
                    footprint.eval_samples = entry.dataset.size() / 10;
                    footprint.batch = options.batch_size;
                    executor.submit(key, [&entry, options, augmentation, split,
                                          seed](const core::UnitContext& ctx) {
                        auto unit_options = options;
                        unit_options.hooks.cancel = &ctx.cancel;
                        unit_options.batch_size = ctx.batch(options.batch_size);
                        const auto run = core::run_replication_supervised(
                            entry.dataset, augmentation, 400 + static_cast<std::uint64_t>(split),
                            60 + static_cast<std::uint64_t>(seed), unit_options);
                        return std::map<std::string, std::string>{
                            {"f1", util::field_from_double(100.0 * run.weighted_f1())},
                            {"epochs", std::to_string(run.epochs_run)},
                            {"retries", std::to_string(run.retries)},
                            {"faults", std::to_string(run.faults_detected)}};
                    }, core::estimate_unit_bytes(footprint));
                }
            }
        }
        ++aug_index;
    }

    executor.run_all();

    if (executor.is_shard_worker()) {
        // Shard workers only execute and journal units; every table, CSV
        // artifact and summary line belongs to the coordinator's aggregation
        // pass over the merged journal.
        return 0;
    }

    // Ordered reduction (submission order) keeps stdout bit-identical for
    // every FPTC_JOBS value.
    for (std::size_t i = 0; i < unit_cells.size(); ++i) {
        auto& cell = cells[unit_cells[i]];
        ++cell.expected;
        const auto& outcome = executor.outcome(i);
        if (!outcome.succeeded()) {
            continue;  // degraded/cancelled: the cell is marked, not averaged
        }
        cell.scores.push_back(util::field_double(outcome.fields, "f1"));
        total_retries += util::field_long(outcome.fields, "retries");
        total_faults += util::field_long(outcome.fields, "faults");
    }

    aug_index = 0;
    for (const auto augmentation : augment::all_augmentations()) {
        std::vector<std::string> row = {std::string(augment::augmentation_name(augmentation))};
        for (std::size_t d = 0; d < datasets.size(); ++d) {
            const auto& cell = cells[aug_index * datasets.size() + d];
            const auto ci = stats::degraded_cell_ci(cell.scores, cell.expected);
            row.push_back(util::format_degraded_mean_ci(ci.ci.mean, ci.ci.half_width, ci.ci.n,
                                                        ci.missing));
            util::log_info("table8: " + std::string(augment::augmentation_name(augmentation)) +
                           " on " + datasets[d].title + " -> " +
                           util::format_double(ci.ci.mean));
        }
        table.add_row(row);
        ++aug_index;
    }
    table.add_footnote("Paper reference (weighted F1): e.g. MIRAGE-19 no-aug 69.91±1.57, "
                       "Change RTT 74.28±1.22, Rotate 60.35±1.17 (rotation hurts).");
    if (executor.degraded() > 0) {
        table.add_footnote("†N: N scheduled run(s) of that cell degraded; "
                           "mean over survivors only.");
    }

    std::cout << table.to_string() << '\n';
    std::cout << "shape to verify: Change RTT / Time shift best across datasets; larger gaps\n"
                 "between augmentations than on UCDAVIS19; Rotate degrades MIRAGE-19.\n";
    std::cout << executor.summary() << '\n';
    util::log_info(executor.timing_summary());
    if (total_retries > 0 || total_faults > 0 || executor.retried_units() > 0 ||
        executor.degraded() > 0 || util::fault_injector().enabled()) {
        std::cout << "fault tolerance: " << total_faults << " divergent step(s) detected, "
                  << total_retries << " rollback retrie(s), " << executor.retried_units()
                  << " unit re-execution(s); injected: " << util::fault_injector().summary()
                  << '\n';
    }
    return 0;
}
