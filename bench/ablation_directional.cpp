// Ablation (paper footnote 3): direction-blind vs direction-aware flowpics.
//
// "Traffic directionality is not considered when composing the flowpic in
// the Ref-Paper although the representation could be reformulated to take it
// into account."  This bench does exactly that reformulation: a 2-channel
// flowpic (upstream / downstream planes) fed to a 2-channel LeNet, compared
// against the paper's single-channel representation under the Table 4
// protocol (no augmentation and Change RTT) and on MIRAGE-19.
//
// Outcome at reduced scale: parity on script, no consistent win elsewhere —
// evidence that the paper's direction-blind simplification (footnote 3)
// costs little when classes already differ in size/timing structure.
#include "fptc/core/campaign.hpp"
#include "fptc/stats/descriptive.hpp"
#include "fptc/trafficgen/mobile.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

int main()
{
    using namespace fptc;

    const auto scale = util::resolve_scale(5, 3, /*default_splits=*/2, /*default_seeds=*/1);
    const auto data = core::load_ucdavis();

    std::cout << "=== Ablation: direction-blind vs direction-aware flowpic (footnote 3) ===\n"
              << "(" << scale.splits << " splits x " << scale.seeds << " seeds per cell)\n\n";

    util::Table table("Accuracy / weighted F1 (%) per input representation");
    table.set_header({"Augmentation", "Input", "UCDAVIS19 script", "UCDAVIS19 human",
                      "MIRAGE-19 (wF1)"});

    trafficgen::MobileGenOptions gen;
    gen.samples_scale = 0.015;
    const auto mirage19 = trafficgen::make_mirage19(gen);

    for (const auto augmentation :
         {augment::AugmentationKind::none, augment::AugmentationKind::change_rtt}) {
        for (const bool directional : {false, true}) {
            std::vector<double> script_scores;
            std::vector<double> human_scores;
            std::vector<double> mirage_scores;

            core::SupervisedOptions options;
            options.max_epochs = scale.max_epochs;
            options.augment_copies = scale.full ? 10 : 2;
            options.directional = directional;

            for (int split = 0; split < scale.splits; ++split) {
                for (int seed = 0; seed < scale.seeds; ++seed) {
                    const auto run = core::run_ucdavis_supervised(
                        data, augmentation, 1000 + static_cast<std::uint64_t>(split),
                        50 + static_cast<std::uint64_t>(seed), options);
                    script_scores.push_back(100.0 * run.script_accuracy());
                    human_scores.push_back(100.0 * run.human_accuracy());

                    const auto replication = core::run_replication_supervised(
                        mirage19, augmentation, 400 + static_cast<std::uint64_t>(split),
                        60 + static_cast<std::uint64_t>(seed), options);
                    mirage_scores.push_back(100.0 * replication.weighted_f1());
                }
            }
            util::log_info(std::string("ablation_directional: ") +
                           std::string(augment::augmentation_name(augmentation)) +
                           (directional ? " directional" : " plain") + " done");

            const auto script_ci = stats::mean_ci(script_scores);
            const auto human_ci = stats::mean_ci(human_scores);
            const auto mirage_ci = stats::mean_ci(mirage_scores);
            table.add_row({std::string(augment::augmentation_name(augmentation)),
                           directional ? "directional (2ch)" : "flowpic (paper)",
                           util::format_mean_ci(script_ci.mean, script_ci.half_width),
                           util::format_mean_ci(human_ci.mean, human_ci.half_width),
                           util::format_mean_ci(mirage_ci.mean, mirage_ci.half_width)});
        }
    }

    std::cout << table.to_string() << '\n';
    std::cout << "reading guide: the 2-channel input separates upload- from download-heavy\n"
                 "traffic explicitly.  Whether that wins depends on how much directional\n"
                 "asymmetry the classes carry beyond their size/timing signature — at this\n"
                 "scale the paper's direction-blind choice costs little, supporting its\n"
                 "footnote-3 simplification.\n";
    return 0;
}
