// Regenerates Fig. 8: "Kernel density estimation of the per-class packet
// size distributions" across the three UCDAVIS19 partitions.  The paper's
// point: "While script is perfectly overlapped with the pretraining split,
// Google search for human has an evident shift".  Next to the ASCII curves
// we print the total-variation distance of each partition's KDE to the
// pretraining KDE, making the shift quantitative.
#include "fptc/core/campaign.hpp"
#include "fptc/stats/kde.hpp"
#include "fptc/util/heatmap.hpp"
#include "fptc/util/table.hpp"

#include <iostream>
#include <vector>

namespace {

using namespace fptc;

std::vector<double> packet_sizes_of_class(const flow::Dataset& dataset, std::size_t label)
{
    std::vector<double> sizes;
    for (const auto& f : dataset.flows) {
        if (f.label != label) {
            continue;
        }
        for (const auto& packet : f.packets) {
            sizes.push_back(static_cast<double>(packet.size));
        }
    }
    return sizes;
}

} // namespace

int main()
{
    using namespace fptc;

    const auto data = core::load_ucdavis();
    constexpr std::size_t kGrid = 200;

    std::cout << "=== Fig. 8: per-class packet-size KDE across partitions ===\n\n";

    util::Table distances("Total-variation distance of each partition's packet-size KDE "
                          "to the pretraining KDE");
    distances.set_header({"Class", "script vs pretraining", "human vs pretraining"});

    for (std::size_t label = 0; label < data.num_classes(); ++label) {
        const auto pretraining_sizes = packet_sizes_of_class(data.pretraining, label);
        const auto script_sizes = packet_sizes_of_class(data.script, label);
        const auto human_sizes = packet_sizes_of_class(data.human, label);

        const auto pre_kde = stats::gaussian_kde(pretraining_sizes, 0.0, 1500.0, kGrid, 25.0);
        const auto script_kde = stats::gaussian_kde(script_sizes, 0.0, 1500.0, kGrid, 25.0);
        const auto human_kde = stats::gaussian_kde(human_sizes, 0.0, 1500.0, kGrid, 25.0);

        std::cout << "--- " << data.pretraining.class_names[label] << " ---\n";
        std::cout << "pretraining:\n" << util::render_curve(pre_kde.xs, pre_kde.ys, 72, 8);
        std::cout << "script:\n" << util::render_curve(script_kde.xs, script_kde.ys, 72, 8);
        std::cout << "human:\n" << util::render_curve(human_kde.xs, human_kde.ys, 72, 8) << '\n';

        distances.add_row({data.pretraining.class_names[label],
                           util::format_double(stats::curve_distance(pre_kde, script_kde), 3),
                           util::format_double(stats::curve_distance(pre_kde, human_kde), 3)});
    }

    std::cout << distances.to_string() << '\n';
    std::cout << "paper: script overlaps pretraining for every class; for human, Google\n"
                 "search shows an evident shift (and Google music a distribution change).\n";
    return 0;
}
