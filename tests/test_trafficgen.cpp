// Unit tests for the synthetic dataset generators — determinism, physical
// validity of packet series, partition shapes matching Table 2, and the
// injected human data shift (the paper's central forensic finding).
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/stats/kde.hpp"
#include "fptc/trafficgen/mobile.hpp"
#include "fptc/trafficgen/traffic_model.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace {

using namespace fptc;
using namespace fptc::trafficgen;

TEST(TrafficModel, FlowsAreSortedAndPhysicallyValid)
{
    const auto profile = ucdavis19_profile(4, false); // YouTube
    util::Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        const auto f = generate_flow(profile, 4, rng);
        ASSERT_FALSE(f.packets.empty());
        EXPECT_EQ(f.label, 4u);
        for (std::size_t j = 0; j < f.packets.size(); ++j) {
            const auto& p = f.packets[j];
            EXPECT_GE(p.timestamp, 0.0);
            EXPECT_GE(p.size, 40);
            EXPECT_LE(p.size, flow::kMaxPacketSize);
            if (j > 0) {
                EXPECT_GE(p.timestamp, f.packets[j - 1].timestamp);
            }
        }
    }
}

TEST(TrafficModel, DeterministicForSameSeed)
{
    const auto profile = ucdavis19_profile(2, false);
    util::Rng rng_a(99);
    util::Rng rng_b(99);
    const auto a = generate_flow(profile, 2, rng_a);
    const auto b = generate_flow(profile, 2, rng_b);
    ASSERT_EQ(a.packets.size(), b.packets.size());
    for (std::size_t i = 0; i < a.packets.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.packets[i].timestamp, b.packets[i].timestamp);
        EXPECT_EQ(a.packets[i].size, b.packets[i].size);
    }
}

TEST(TrafficModel, HandshakeOpensEveryClassDistinctively)
{
    // The first upstream packet size is class-characteristic (this is what
    // makes the ML baseline's early time-series features work, Sec. 4.1.2).
    std::set<int> first_sizes;
    for (std::size_t label = 0; label < 5; ++label) {
        const auto profile = ucdavis19_profile(label, false);
        ASSERT_GE(profile.handshake_sizes.size(), 4u) << "class " << label;
        first_sizes.insert(static_cast<int>(profile.handshake_sizes.front()));
    }
    EXPECT_EQ(first_sizes.size(), 5u);
}

TEST(TrafficModel, AckFractionEmitsBareAcks)
{
    ClassProfile profile;
    profile.burst_positions = {0.1};
    profile.burst_packets = 50.0;
    profile.ack_fraction = 0.5;
    util::Rng rng(7);
    const auto f = generate_flow(profile, 0, rng);
    const auto acks = std::count_if(f.packets.begin(), f.packets.end(),
                                    [](const flow::Packet& p) { return p.is_ack; });
    EXPECT_GT(acks, 0);
    for (const auto& p : f.packets) {
        if (p.is_ack) {
            EXPECT_EQ(p.size, 40);
        }
    }
}

TEST(Ucdavis19, PartitionShapesMatchTable2)
{
    UcdavisOptions options;
    const auto script = make_ucdavis19(UcdavisPartition::script, options);
    EXPECT_EQ(script.size(), 150u); // 30 per class, balanced
    const auto counts = script.class_counts();
    for (const auto c : counts) {
        EXPECT_EQ(c, 30u);
    }

    const auto human = make_ucdavis19(UcdavisPartition::human, options);
    EXPECT_EQ(human.size(), 83u); // 15+18+15+15+20 (footnote 12)
    const auto human_counts = human.class_counts();
    EXPECT_EQ(*std::min_element(human_counts.begin(), human_counts.end()), 15u);
    EXPECT_EQ(*std::max_element(human_counts.begin(), human_counts.end()), 20u);

    const auto pretraining = make_ucdavis19(UcdavisPartition::pretraining, options);
    EXPECT_EQ(pretraining.num_classes(), 5u);
    // At the default 0.2 scale the smallest class must still allow the
    // 100-per-class split protocol.
    const auto pre_counts = pretraining.class_counts();
    EXPECT_GE(*std::min_element(pre_counts.begin(), pre_counts.end()), 100u);
}

TEST(Ucdavis19, ClassNamesStable)
{
    const auto& names = ucdavis19_class_names();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[3], "Google Search");
    EXPECT_EQ(names[4], "YouTube");
}

TEST(Ucdavis19, DeterministicDatasets)
{
    UcdavisOptions options;
    const auto a = make_ucdavis19(UcdavisPartition::script, options);
    const auto b = make_ucdavis19(UcdavisPartition::script, options);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.flows[i].packets.size(), b.flows[i].packets.size());
    }
}

TEST(Ucdavis19, HumanShiftMovesGoogleSearchKde)
{
    // Fig. 8's observation: the human Google-search packet-size distribution
    // is shifted; script overlaps pretraining.
    UcdavisOptions options;
    const auto pretraining = make_ucdavis19(UcdavisPartition::pretraining, options);
    const auto script = make_ucdavis19(UcdavisPartition::script, options);
    const auto human = make_ucdavis19(UcdavisPartition::human, options);

    const auto sizes_of = [](const flow::Dataset& d, std::size_t label) {
        std::vector<double> sizes;
        for (const auto& f : d.flows) {
            if (f.label == label) {
                for (const auto& p : f.packets) {
                    sizes.push_back(p.size);
                }
            }
        }
        return sizes;
    };
    constexpr std::size_t kSearch = 3;
    const auto kde_pre = stats::gaussian_kde(sizes_of(pretraining, kSearch), 0, 1500, 150, 30.0);
    const auto kde_script = stats::gaussian_kde(sizes_of(script, kSearch), 0, 1500, 150, 30.0);
    const auto kde_human = stats::gaussian_kde(sizes_of(human, kSearch), 0, 1500, 150, 30.0);

    const double script_distance = stats::curve_distance(kde_pre, kde_script);
    const double human_distance = stats::curve_distance(kde_pre, kde_human);
    EXPECT_LT(script_distance, 0.15);
    EXPECT_GT(human_distance, 2.0 * script_distance);
}

TEST(Ucdavis19, HumanShiftRemovesMusicStripes)
{
    // Fig. 4 rectangle C: Google music stripes visible in all partitions but
    // human.  We measure "stripiness" as the column-count variance of the
    // average flowpic.
    UcdavisOptions options;
    const auto script = make_ucdavis19(UcdavisPartition::script, options);
    const auto human = make_ucdavis19(UcdavisPartition::human, options);
    constexpr std::size_t kMusic = 2;
    const flowpic::FlowpicConfig config{.resolution = 32};

    const auto stripiness = [&](const flow::Dataset& d) {
        const auto avg = flowpic::average_flowpic_of_class(d, kMusic, config);
        // Column mass profile.
        std::vector<double> columns(32, 0.0);
        for (std::size_t r = 0; r < 32; ++r) {
            for (std::size_t c = 0; c < 32; ++c) {
                columns[c] += avg.at(r, c);
            }
        }
        double mean = 0.0;
        for (const double v : columns) {
            mean += v;
        }
        mean /= 32.0;
        double variance = 0.0;
        for (const double v : columns) {
            variance += (v - mean) * (v - mean);
        }
        return mean > 0.0 ? variance / (mean * mean) : 0.0; // coeff of variation^2
    };
    EXPECT_GT(stripiness(script), 1.5 * stripiness(human));
}

TEST(Mobile, Mirage19CurationPipeline)
{
    MobileGenOptions options;
    options.samples_scale = 0.01;
    const auto raw = make_mirage19_raw(options);
    EXPECT_EQ(raw.num_classes(), 20u);
    // Raw data includes ACKs and background flows.
    bool has_ack = false;
    bool has_background = false;
    for (const auto& f : raw.flows) {
        has_background |= f.background;
        for (const auto& p : f.packets) {
            has_ack |= p.is_ack;
        }
    }
    EXPECT_TRUE(has_ack);
    EXPECT_TRUE(has_background);

    const auto curated = make_mirage19(options);
    for (const auto& f : curated.flows) {
        EXPECT_FALSE(f.background);
        EXPECT_GT(f.packets.size(), 10u);
        for (const auto& p : f.packets) {
            EXPECT_FALSE(p.is_ack);
        }
    }
    EXPECT_LT(curated.size(), raw.size());
}

TEST(Mobile, Mirage22LongFlowVariantIsSmallerWithLongerFlows)
{
    MobileGenOptions options;
    options.samples_scale = 0.01;
    const auto standard = make_mirage22(options, 10);
    const auto long_variant = make_mirage22(options, kMirage22LongFlowThreshold);
    EXPECT_LT(long_variant.size(), standard.size());
    const auto s1 = flow::summarize(standard);
    const auto s2 = flow::summarize(long_variant);
    EXPECT_GT(s2.mean_packets, s1.mean_packets);
    for (const auto& f : long_variant.flows) {
        EXPECT_GT(f.packets.size(), kMirage22LongFlowThreshold);
    }
}

TEST(Mobile, UtMobileNetLosesClassesUnderCuration)
{
    // Table 2: 17 classes before curation, 10 after (>10pkts + class-size
    // threshold).
    MobileGenOptions options;
    options.samples_scale = 0.02;
    const auto raw = make_utmobilenet21_raw(options);
    EXPECT_EQ(raw.num_classes(), 17u);
    const auto curated = make_utmobilenet21(options);
    EXPECT_LT(curated.num_classes(), raw.num_classes());
    EXPECT_GE(curated.num_classes(), 8u);
}

TEST(Mobile, ImbalancePreserved)
{
    MobileGenOptions options;
    options.samples_scale = 0.02;
    const auto m19 = make_mirage19(options);
    const auto summary = flow::summarize(m19);
    EXPECT_GT(summary.rho, 2.0); // class imbalance survives curation
}

TEST(Mobile, ScaledMinClassSamplesFloorsAtTen)
{
    MobileGenOptions tiny;
    tiny.samples_scale = 0.001;
    EXPECT_EQ(scaled_min_class_samples(tiny), 10u);
    MobileGenOptions full;
    full.samples_scale = 1.0;
    EXPECT_EQ(scaled_min_class_samples(full), 100u);
}

TEST(Mobile, AppProfilesDifferAcrossClasses)
{
    const auto a = make_mobile_app_profile(1, 0, false);
    const auto b = make_mobile_app_profile(1, 1, false);
    EXPECT_NE(a.handshake_sizes, b.handshake_sizes);
    const auto a_again = make_mobile_app_profile(1, 0, false);
    EXPECT_EQ(a.handshake_sizes, a_again.handshake_sizes); // deterministic
}

TEST(Mobile, LongFlowProfilesAreHeavier)
{
    const auto short_profile = make_mobile_app_profile(2, 3, false);
    const auto long_profile = make_mobile_app_profile(2, 3, true);
    EXPECT_GT(long_profile.chatter_rate, short_profile.chatter_rate);
}

} // namespace
