// Unit tests for the tensor substrate.
#include "fptc/nn/tensor.hpp"

#include <gtest/gtest.h>

namespace {

using fptc::nn::element_count;
using fptc::nn::Shape;
using fptc::nn::Tensor;

TEST(Tensor, ElementCount)
{
    EXPECT_EQ(element_count({}), 1u);
    EXPECT_EQ(element_count({4}), 4u);
    EXPECT_EQ(element_count({2, 3, 4}), 24u);
    EXPECT_EQ(element_count({2, 0}), 0u);
}

TEST(Tensor, ZeroInitialized)
{
    const Tensor t({2, 3});
    EXPECT_EQ(t.size(), 6u);
    EXPECT_EQ(t.rank(), 2u);
    for (const float v : t.data()) {
        EXPECT_FLOAT_EQ(v, 0.0f);
    }
}

TEST(Tensor, WrapDataValidatesSize)
{
    EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
    EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, DimAccess)
{
    const Tensor t({5, 7});
    EXPECT_EQ(t.dim(0), 5u);
    EXPECT_EQ(t.dim(1), 7u);
    EXPECT_THROW((void)t.dim(2), std::out_of_range);
}

TEST(Tensor, Reshape)
{
    const Tensor t({2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
    const auto r = t.reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3u);
    EXPECT_FLOAT_EQ(r[7], 7.0f); // data preserved row-major
    EXPECT_THROW((void)t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, ArithmeticHelpers)
{
    Tensor a({3}, {1, 2, 3});
    const Tensor b({3}, {10, 20, 30});
    a.add(b);
    EXPECT_FLOAT_EQ(a[0], 11.0f);
    a.scale(0.5f);
    EXPECT_FLOAT_EQ(a[2], 16.5f);
    EXPECT_DOUBLE_EQ(a.sum(), 11 * 0.5 + 22 * 0.5 + 33 * 0.5);
    EXPECT_FLOAT_EQ(a.max(), 16.5f);
    EXPECT_NEAR(a.squared_norm(), 5.5 * 5.5 + 11.0 * 11.0 + 16.5 * 16.5, 1e-4);

    const Tensor c({4});
    EXPECT_THROW(a.add(c), std::invalid_argument);
}

TEST(Tensor, FillAndShapeString)
{
    Tensor t({2, 2});
    t.fill(3.5f);
    EXPECT_DOUBLE_EQ(t.sum(), 14.0);
    EXPECT_EQ(t.shape_string(), "[2, 2]");
}

TEST(Tensor, RandnMoments)
{
    fptc::util::Rng rng(4);
    const auto t = Tensor::randn({10000}, rng, 2.0f);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const float v : t.data()) {
        sum += v;
        sum_sq += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.0, 0.1);
    EXPECT_NEAR(sum_sq / 10000.0, 4.0, 0.2);
}

TEST(Tensor, RequireSameShapeMessage)
{
    const Tensor a({2});
    const Tensor b({3});
    try {
        fptc::nn::require_same_shape(a, b, "ctx");
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
    }
}

} // namespace
