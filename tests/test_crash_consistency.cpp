// Crash-consistency tests for the durable I/O layer (fptc/util/durable.hpp)
// and its consumers: atomic replace semantics, abort cleanup, injected
// ENOSPC / short-write / fsync-failure faults, and hard kill points
// (FPTC_FAULT_CRASH_AT_WRITE) exercised as gtest death tests.  The
// process-level K-sweep over a real campaign lives in tests/run_torture.sh;
// this file proves the per-artifact crash windows at the library level.
//
// Note: these tests use EXPECT_EXIT, so they are intentionally NOT named
// after the suites the tsan stage of run_sanitized.sh selects (death tests
// fork, which thread sanitizers dislike).
#include "fptc/util/durable.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

using namespace fptc;

[[nodiscard]] std::string read_all(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class CrashConsistency : public ::testing::Test {
protected:
    void SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("fptc_crash_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::create_directories(dir_);
        util::fault_injector().configure(util::FaultPlan{});
    }

    void TearDown() override
    {
        util::fault_injector().configure(util::FaultPlan{});
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    [[nodiscard]] std::string path(const std::string& name) const
    {
        return (dir_ / name).string();
    }

    /// Count leftover "<name>.tmp.*" siblings of an artifact.
    [[nodiscard]] std::size_t temp_debris(const std::string& name) const
    {
        std::size_t count = 0;
        for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
            if (entry.path().filename().string().rfind(name + ".tmp.", 0) == 0) {
                ++count;
            }
        }
        return count;
    }

    std::filesystem::path dir_;
};

TEST_F(CrashConsistency, DurableFileWriteCommitPublishesContent)
{
    const auto target = path("table.txt");
    util::DurableFile file(target);
    EXPECT_FALSE(std::filesystem::exists(target));  // nothing visible pre-commit
    file.write("hello ");
    file.write("world\n");
    EXPECT_FALSE(std::filesystem::exists(target));
    file.commit();
    EXPECT_EQ(read_all(target), "hello world\n");
    EXPECT_EQ(temp_debris("table.txt"), 0u);
}

TEST_F(CrashConsistency, AbortedDurableFileLeavesNoDebrisAndNoTarget)
{
    const auto target = path("aborted.txt");
    {
        util::DurableFile file(target);
        file.write("half-finished");
        // no commit: destructor must unlink the temp
    }
    EXPECT_FALSE(std::filesystem::exists(target));
    EXPECT_EQ(temp_debris("aborted.txt"), 0u);
}

TEST_F(CrashConsistency, WriteFileReplacesAtomically)
{
    const auto target = path("replace.txt");
    util::DurableFile::write_file(target, "old content\n");
    util::DurableFile::write_file(target, "new content\n");
    EXPECT_EQ(read_all(target), "new content\n");
    EXPECT_EQ(temp_debris("replace.txt"), 0u);
}

TEST_F(CrashConsistency, BadDirectoryIsFatalIoError)
{
    const auto target = path("no/such/dir/file.txt");
    try {
        util::DurableFile::write_file(target, "x");
        FAIL() << "expected IoError";
    } catch (const util::IoError& e) {
        EXPECT_FALSE(e.transient()) << e.what();  // bad path never heals
    }
    EXPECT_THROW(util::probe_appendable(target), util::IoError);
}

TEST_F(CrashConsistency, EnospcSurfacesTransientAndPreservesOldContent)
{
    const auto target = path("enospc.txt");
    util::DurableFile::write_file(target, "previous generation\n");

    util::FaultPlan plan;
    plan.enospc_after_bytes = 4;
    util::fault_injector().configure(plan);
    try {
        util::DurableFile::write_file(target, "a replacement that exceeds the byte budget\n");
        FAIL() << "expected IoError";
    } catch (const util::IoError& e) {
        EXPECT_TRUE(e.transient()) << e.what();
    }
    EXPECT_GE(util::fault_injector().counters().enospc_failures, 1u);
    util::fault_injector().configure(util::FaultPlan{});  // (resets counters)

    EXPECT_EQ(read_all(target), "previous generation\n");  // target untouched
    EXPECT_EQ(temp_debris("enospc.txt"), 0u);              // temp unlinked
}

TEST_F(CrashConsistency, ShortWritesAreTransparentlyCompleted)
{
    util::FaultPlan plan;
    plan.short_writes = 5;
    util::fault_injector().configure(plan);

    const auto target = path("short.txt");
    const std::string content(512, 'x');
    util::DurableFile::write_file(target, content);
    EXPECT_GE(util::fault_injector().counters().short_write_clamps, 1u);
    util::fault_injector().configure(util::FaultPlan{});  // (resets counters)

    EXPECT_EQ(read_all(target), content);  // full-write loop absorbed the clamps
}

TEST_F(CrashConsistency, FsyncFailureIsTransientAndPublishesNothing)
{
    const auto target = path("fsync.txt");
    util::FaultPlan plan;
    plan.fsync_failures = 1;
    util::fault_injector().configure(plan);
    try {
        util::DurableFile::write_file(target, "never durable\n");
        FAIL() << "expected IoError";
    } catch (const util::IoError& e) {
        EXPECT_TRUE(e.transient()) << e.what();
    }
    util::fault_injector().configure(util::FaultPlan{});

    EXPECT_FALSE(std::filesystem::exists(target));  // failed fsync -> no rename
    EXPECT_EQ(temp_debris("fsync.txt"), 0u);

    // A retry from clean state (what the executor does) now succeeds.
    util::DurableFile::write_file(target, "durable after retry\n");
    EXPECT_EQ(read_all(target), "durable after retry\n");
}

TEST_F(CrashConsistency, DurableAppendLineAccumulates)
{
    const auto target = path("journal.jsonl");
    util::durable_append_line(target, "{\"key\":\"a\"}");
    util::durable_append_line(target, "{\"key\":\"b\"}");
    EXPECT_EQ(read_all(target), "{\"key\":\"a\"}\n{\"key\":\"b\"}\n");
}

TEST_F(CrashConsistency, EnospcMidJournalAppendIsRetryable)
{
    const auto target = path("run.jsonl");
    util::RunJournal journal(target);
    journal.record("unit-1", {{"score", "1.0"}});

    util::FaultPlan plan;
    plan.enospc_after_bytes = 4;
    util::fault_injector().configure(plan);
    try {
        journal.record("unit-2", {{"score", "2.0"}});
        FAIL() << "expected IoError";
    } catch (const util::IoError& e) {
        EXPECT_TRUE(e.transient()) << e.what();
    }
    util::fault_injector().configure(util::FaultPlan{});

    // The failed commit was not half-applied: not in memory, not on disk.
    EXPECT_FALSE(journal.completed("unit-2"));
    util::RunJournal reloaded(target);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_TRUE(reloaded.completed("unit-1"));

    // The executor's retry path: re-record after the fault clears.
    journal.record("unit-2", {{"score", "2.0"}});
    util::RunJournal final_state(target);
    EXPECT_EQ(final_state.size(), 2u);
}

// ---- hard kill points (death tests) ----------------------------------------

using ::testing::ExitedWithCode;

TEST_F(CrashConsistency, CrashAtWritePublishesNothing)
{
    const auto target = path("crashed.txt");
    EXPECT_EXIT(
        {
            util::FaultPlan plan;
            plan.crash_at_write = 1;
            util::fault_injector().configure(plan);
            util::DurableFile::write_file(target, "this write never completes\n");
        },
        ExitedWithCode(util::kCrashExitCode), "");
    // The child died mid-temp-write: the target must not exist.  Temp debris
    // is legitimate after a hard crash (no destructor ran) but must never
    // carry the final name.
    EXPECT_FALSE(std::filesystem::exists(target));
}

TEST_F(CrashConsistency, CrashMidAppendTearsOnlyTheFinalLine)
{
    const auto target = path("torn.jsonl");
    {
        util::RunJournal journal(target);
        journal.record("unit-1", {{"score", "1.0"}});
    }
    EXPECT_EXIT(
        {
            util::RunJournal journal(target);
            util::FaultPlan plan;
            plan.crash_at_write = 1;
            util::fault_injector().configure(plan);
            journal.record("unit-2", {{"score", "2.0"}});
        },
        ExitedWithCode(util::kCrashExitCode), "");

    // Reload: the earlier record survives; the half-written line is detected
    // and dropped, not parsed into a bogus record.
    util::RunJournal reloaded(target);
    EXPECT_TRUE(reloaded.completed("unit-1"));
    EXPECT_FALSE(reloaded.completed("unit-2"));
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_EQ(reloaded.discarded_lines(), 1u);
}

TEST_F(CrashConsistency, CrashInsideCompactLeavesOldJournalReadable)
{
    const auto target = path("compact.jsonl");
    {
        util::RunJournal journal(target);
        journal.record("unit-1", {{"score", "1.0"}});
        journal.record("unit-2", {{"score", "2.0"}});
        journal.record("unit-1", {{"score", "1.5"}});  // superseded duplicate
    }
    EXPECT_EXIT(
        {
            util::RunJournal journal(target);
            util::FaultPlan plan;
            plan.crash_at_write = 1;  // dies while writing compact()'s temp file
            util::fault_injector().configure(plan);
            journal.compact();
        },
        ExitedWithCode(util::kCrashExitCode), "");

    // The crash hit the temp write, before any rename: the original journal
    // (including the superseded duplicate line) is fully intact.
    util::RunJournal reloaded(target);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.discarded_lines(), 0u);
    const auto fields = reloaded.find_copy("unit-1");
    ASSERT_TRUE(fields.has_value());
    EXPECT_EQ(fields->at("score"), "1.5");  // last record wins
}

TEST_F(CrashConsistency, CrashBetweenTempWriteAndRenameLeavesOldJournalReadable)
{
    const auto target = path("window.jsonl");
    {
        util::RunJournal journal(target);
        journal.record("unit-1", {{"score", "1.0"}});
    }
    const auto before = read_all(target);
    ASSERT_FALSE(before.empty());
    EXPECT_EXIT(
        {
            // The exact crash window compact() is exposed to: temp fully
            // written but the rename never issued.
            util::DurableFile file(target);
            file.write("{\"key\":\"rewritten\"}\n");
            ::_exit(util::kCrashExitCode);
        },
        ExitedWithCode(util::kCrashExitCode), "");

    EXPECT_EQ(read_all(target), before);  // old journal byte-identical
    util::RunJournal reloaded(target);
    EXPECT_TRUE(reloaded.completed("unit-1"));
}

TEST_F(CrashConsistency, FaultPlanFromEnvParsesDurableKnobs)
{
    ::setenv("FPTC_FAULT_ENOSPC_AFTER_BYTES", "1024", 1);
    ::setenv("FPTC_FAULT_SHORT_WRITES", "3", 1);
    ::setenv("FPTC_FAULT_FSYNC_FAIL", "2", 1);
    ::setenv("FPTC_FAULT_CRASH_AT_WRITE", "7", 1);
    const auto plan = util::fault_plan_from_env();
    ::unsetenv("FPTC_FAULT_ENOSPC_AFTER_BYTES");
    ::unsetenv("FPTC_FAULT_SHORT_WRITES");
    ::unsetenv("FPTC_FAULT_FSYNC_FAIL");
    ::unsetenv("FPTC_FAULT_CRASH_AT_WRITE");

    EXPECT_EQ(plan.enospc_after_bytes, 1024);
    EXPECT_EQ(plan.short_writes, 3);
    EXPECT_EQ(plan.fsync_failures, 2);
    EXPECT_EQ(plan.crash_at_write, 7);
}

} // namespace
