// Tests of the supervised campaign executor: cancellation tokens, the
// watchdog deadline, transient retry with deterministic backoff, graceful
// degradation, bit-identical results across worker counts, journal resume
// under parallel execution and the thread safety of the run journal.
#include "fptc/core/executor.hpp"
#include "fptc/core/guard.hpp"
#include "fptc/core/trainer.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/util/cancel.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/journal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace fptc;
using namespace fptc::core;

class TempFile {
public:
    explicit TempFile(const std::string& name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
};

/// Reset the process-wide injector after tests that arm it.
struct InjectorReset {
    ~InjectorReset() { util::fault_injector().configure(util::FaultPlan{}); }
};

/// Deterministic synthetic unit: fields derived only from the key.
CampaignExecutor::UnitFn synthetic_unit(const std::string& key)
{
    return [key](const UnitContext& ctx) {
        ctx.cancel.poll();
        std::uint64_t hash = 1469598103934665603ULL;
        for (const unsigned char c : key) {
            hash = (hash ^ c) * 1099511628211ULL;
        }
        return std::map<std::string, std::string>{
            {"value", std::to_string(hash % 100000)},
            {"key_len", std::to_string(key.size())}};
    };
}

ExecutorConfig quick_config(int jobs)
{
    ExecutorConfig config;
    config.jobs = jobs;
    config.unit_retries = 2;
    config.backoff_base_ms = 0.1;  // keep retry tests fast
    return config;
}

TEST(CancelToken, PollIsIdleUntilTripped)
{
    util::CancelToken token;
    EXPECT_NO_THROW(token.poll());
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.poll(), util::CancelledError);
}

TEST(CancelToken, FirstKindWins)
{
    util::CancelToken token;
    token.cancel(util::CancelKind::timeout);
    token.cancel(util::CancelKind::cancelled);
    EXPECT_EQ(token.state(), util::CancelKind::timeout);
}

TEST(CancelToken, DeadlinePromotesToTimeout)
{
    util::CancelToken token;
    token.set_timeout(0.01);
    EXPECT_NO_THROW(token.poll());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    try {
        token.poll();
        FAIL() << "expired deadline must throw";
    } catch (const util::CancelledError& error) {
        EXPECT_EQ(error.kind(), util::CancelKind::timeout);
    }
}

TEST(CancelToken, ParentTripReachesChild)
{
    util::CancelToken parent;
    util::CancelToken child;
    child.set_parent(&parent);
    EXPECT_FALSE(child.cancelled());
    parent.cancel();
    EXPECT_TRUE(child.cancelled());
    try {
        child.poll();
        FAIL() << "tripped parent must cancel the child";
    } catch (const util::CancelledError& error) {
        EXPECT_EQ(error.kind(), util::CancelKind::cancelled);
    }
}

TEST(Backoff, DeterministicAndBounded)
{
    ExecutorConfig config;
    config.backoff_base_ms = 50.0;
    config.backoff_max_ms = 400.0;
    const std::string key = "res=32|aug=rotate|split=0|seed=1";

    EXPECT_EQ(backoff_delay_ms(config, key, 0), 0.0);
    double previous_nominal = 0.0;
    for (int retry = 1; retry <= 6; ++retry) {
        const double delay = backoff_delay_ms(config, key, retry);
        // Pure in (config, key, retry): recomputation is bit-identical.
        EXPECT_EQ(delay, backoff_delay_ms(config, key, retry));
        const double nominal = std::min(config.backoff_max_ms, 50.0 * (1 << (retry - 1)));
        EXPECT_GE(delay, 0.5 * nominal);
        EXPECT_LE(delay, config.backoff_max_ms);
        EXPECT_GE(nominal, previous_nominal);
        previous_nominal = nominal;
    }
    // Different keys draw from different jitter streams.
    EXPECT_NE(backoff_delay_ms(config, key, 1), backoff_delay_ms(config, "other-key", 1));
}

TEST(ExceptionTaxonomy, ClassifiesKnownTypes)
{
    EXPECT_EQ(classify_exception(UnitError(ErrorClass::transient, "x")), ErrorClass::transient);
    EXPECT_EQ(classify_exception(UnitError(ErrorClass::fatal, "x")), ErrorClass::fatal);
    EXPECT_EQ(classify_exception(util::CancelledError(util::CancelKind::timeout, "x")),
              ErrorClass::timeout);
    EXPECT_EQ(classify_exception(util::CancelledError(util::CancelKind::cancelled, "x")),
              ErrorClass::cancelled);
    EXPECT_EQ(classify_exception(DivergenceError("diverged")), ErrorClass::fatal);
    EXPECT_EQ(classify_exception(std::bad_alloc{}), ErrorClass::transient);
    EXPECT_EQ(classify_exception(std::runtime_error("boom")), ErrorClass::fatal);
    // Durable-I/O failures carry their own transient hint (ENOSPC vs bad
    // path): the executor must retry the former and degrade on the latter.
    EXPECT_EQ(classify_exception(util::IoError("disk full", /*transient=*/true)),
              ErrorClass::transient);
    EXPECT_EQ(classify_exception(util::IoError("bad path", /*transient=*/false)),
              ErrorClass::fatal);
    // Memory-budget refusals follow the same pattern: concurrent pressure is
    // transient (and earns a shrink retry), a structurally oversized unit is
    // not.
    EXPECT_EQ(classify_exception(util::BudgetExceeded("x", 10, 5, /*transient=*/true)),
              ErrorClass::transient);
    EXPECT_EQ(classify_exception(util::BudgetExceeded("x", 10, 5, /*transient=*/false)),
              ErrorClass::fatal);
}

TEST(Executor, ResultsAreIdenticalAcrossWorkerCounts)
{
    std::vector<std::vector<std::map<std::string, std::string>>> per_jobs;
    for (const int jobs : {1, 2, 4}) {
        CampaignExecutor executor("exec-test", quick_config(jobs));
        for (int i = 0; i < 12; ++i) {
            const std::string key = "unit=" + std::to_string(i);
            executor.submit(key, synthetic_unit(key));
        }
        executor.run_all();
        EXPECT_EQ(executor.executed(), 12u);
        EXPECT_EQ(executor.degraded(), 0u);
        std::vector<std::map<std::string, std::string>> fields;
        for (const auto& outcome : executor.outcomes()) {
            EXPECT_EQ(outcome.status, UnitStatus::ok);
            fields.push_back(outcome.fields);
        }
        per_jobs.push_back(std::move(fields));
    }
    EXPECT_EQ(per_jobs[0], per_jobs[1]);
    EXPECT_EQ(per_jobs[0], per_jobs[2]);
}

TEST(Executor, WatchdogKillsInjectedStall)
{
    InjectorReset reset;
    util::FaultPlan plan;
    plan.stall_units = 1;
    util::fault_injector().configure(plan);

    auto config = quick_config(1);
    config.unit_timeout_s = 0.05;
    CampaignExecutor executor("exec-stall", config);
    executor.submit("stalled", synthetic_unit("stalled"));
    executor.submit("healthy", synthetic_unit("healthy"));
    executor.run_all();

    const auto& stalled = executor.outcome(0);
    EXPECT_EQ(stalled.status, UnitStatus::degraded);
    EXPECT_EQ(stalled.final_error, ErrorClass::timeout);
    EXPECT_EQ(stalled.attempts, 1);  // timeouts are not retried
    ASSERT_EQ(stalled.error_chain.size(), 1u);
    EXPECT_NE(stalled.error_chain[0].find("timeout"), std::string::npos);

    EXPECT_EQ(executor.outcome(1).status, UnitStatus::ok);
    EXPECT_EQ(executor.degraded(), 1u);
    EXPECT_EQ(util::fault_injector().counters().stalled_units, 1u);
}

TEST(Executor, TransientFailuresRetryWithBackoff)
{
    InjectorReset reset;
    util::FaultPlan plan;
    plan.transient_units = 2;  // first two executions fail, third succeeds
    util::fault_injector().configure(plan);

    CampaignExecutor executor("exec-retry", quick_config(1));
    executor.submit("retried", synthetic_unit("retried"));
    executor.run_all();

    const auto& outcome = executor.outcome(0);
    EXPECT_EQ(outcome.status, UnitStatus::ok);
    EXPECT_EQ(outcome.attempts, 3);
    EXPECT_EQ(outcome.unit_retries, 2);
    ASSERT_EQ(outcome.error_chain.size(), 2u);
    EXPECT_EQ(outcome.error_chain[0], "transient: injected transient fault");
    EXPECT_EQ(executor.retried_units(), 1u);
    EXPECT_EQ(executor.degraded(), 0u);
    EXPECT_EQ(util::fault_injector().counters().transient_units, 2u);
}

TEST(Executor, ExhaustedBudgetDegradesWithoutAborting)
{
    auto config = quick_config(1);
    config.unit_retries = 1;
    CampaignExecutor executor("exec-degrade", config);
    executor.submit("doomed", [](const UnitContext&) -> std::map<std::string, std::string> {
        throw UnitError(ErrorClass::transient, "always failing");
    });
    executor.submit("healthy", synthetic_unit("healthy"));
    executor.run_all();

    const auto& doomed = executor.outcome(0);
    EXPECT_EQ(doomed.status, UnitStatus::degraded);
    EXPECT_EQ(doomed.attempts, 2);
    EXPECT_EQ(doomed.unit_retries, 1);
    ASSERT_EQ(doomed.error_chain.size(), 2u);  // full chain, one entry per attempt
    EXPECT_EQ(doomed.final_error, ErrorClass::transient);
    EXPECT_FALSE(doomed.succeeded());

    EXPECT_EQ(executor.outcome(1).status, UnitStatus::ok);
    EXPECT_NE(executor.summary().find("1 degraded"), std::string::npos);
}

TEST(Executor, FatalErrorsAreNotRetried)
{
    CampaignExecutor executor("exec-fatal", quick_config(1));
    executor.submit("fatal", [](const UnitContext&) -> std::map<std::string, std::string> {
        throw std::runtime_error("deterministic failure");
    });
    executor.run_all();

    const auto& outcome = executor.outcome(0);
    EXPECT_EQ(outcome.status, UnitStatus::degraded);
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_EQ(outcome.final_error, ErrorClass::fatal);
}

TEST(Executor, EpochAndUnitRetriesAreCountedSeparately)
{
    InjectorReset reset;
    util::FaultPlan plan;
    plan.transient_units = 1;
    util::fault_injector().configure(plan);

    CampaignExecutor executor("exec-accounting", quick_config(1));
    // The unit reports 2 epoch-level rollback retries (as a TrainResult
    // would); the executor adds 1 unit-level re-execution on top.  The two
    // counters must never be folded together.
    executor.submit("unit", [](const UnitContext&) {
        return std::map<std::string, std::string>{{"retries", "2"}};
    });
    executor.run_all();

    const auto& outcome = executor.outcome(0);
    EXPECT_EQ(outcome.status, UnitStatus::ok);
    EXPECT_EQ(outcome.fields.at("retries"), "2");  // epoch-level, from the run
    EXPECT_EQ(outcome.unit_retries, 1);            // executor-level, separate
}

TEST(Executor, CancellationLeavesNoJournalRecord)
{
    TempFile file("fptc_test_exec_cancel.jsonl");
    ::setenv("FPTC_JOURNAL", file.path().c_str(), 1);

    CampaignExecutor executor("exec-cancel", quick_config(1));
    executor.submit("first", [&executor](const UnitContext& ctx)
                        -> std::map<std::string, std::string> {
        executor.cancel_all();
        ctx.cancel.poll();  // unwinds before any fields are produced
        return {};
    });
    executor.submit("second", synthetic_unit("second"));
    executor.run_all();
    ::unsetenv("FPTC_JOURNAL");

    EXPECT_EQ(executor.outcome(0).status, UnitStatus::cancelled);
    EXPECT_EQ(executor.outcome(1).status, UnitStatus::cancelled);
    EXPECT_EQ(executor.executed(), 0u);
    EXPECT_NE(executor.summary().find("2 cancelled"), std::string::npos);

    util::RunJournal journal(file.path());
    EXPECT_EQ(journal.size(), 0u);  // no partial commits from cancelled units
}

TEST(Executor, CancellationUnwindsTrainingMidEpoch)
{
    const auto train = [] {
        util::Rng rng(7);
        SampleSet set;
        set.dim = 32;
        for (std::size_t label = 0; label < 2; ++label) {
            for (int i = 0; i < 10; ++i) {
                std::vector<float> image(32 * 32, 0.0f);
                image[label == 0 ? 0 : 1023] = 1.0f;
                set.images.push_back(std::move(image));
                set.labels.push_back(label);
            }
        }
        return set;
    }();

    nn::ModelConfig model_config;
    model_config.num_classes = 2;
    auto network = nn::make_supervised_network(model_config);

    util::CancelToken token;
    token.cancel(util::CancelKind::timeout);
    TrainConfig config;
    config.max_epochs = 5;
    config.hooks.cancel = &token;
    EXPECT_THROW(train_supervised(network, train, train, config), util::CancelledError);
}

TEST(Executor, JournalResumeUnderParallelExecutionIsIdentical)
{
    TempFile file("fptc_test_exec_resume.jsonl");
    ::setenv("FPTC_JOURNAL", file.path().c_str(), 1);

    std::vector<std::string> keys;
    for (int i = 0; i < 8; ++i) {
        keys.push_back("unit=" + std::to_string(i));
    }

    std::vector<std::map<std::string, std::string>> first_fields;
    {
        CampaignExecutor executor("exec-resume", quick_config(4));
        for (const auto& key : keys) {
            executor.submit(key, synthetic_unit(key));
        }
        executor.run_all();
        EXPECT_EQ(executor.executed(), 8u);
        EXPECT_EQ(executor.resumed(), 0u);
        for (const auto& outcome : executor.outcomes()) {
            first_fields.push_back(outcome.fields);
        }
    }
    {
        CampaignExecutor executor("exec-resume", quick_config(2));
        for (const auto& key : keys) {
            executor.submit(key, [](const UnitContext&)
                                     -> std::map<std::string, std::string> {
                ADD_FAILURE() << "resumed unit must not re-execute";
                return {};
            });
        }
        executor.run_all();
        ::unsetenv("FPTC_JOURNAL");
        EXPECT_EQ(executor.executed(), 0u);
        EXPECT_EQ(executor.resumed(), 8u);
        for (std::size_t i = 0; i < keys.size(); ++i) {
            EXPECT_EQ(executor.outcome(i).status, UnitStatus::replayed);
            EXPECT_EQ(executor.outcome(i).fields, first_fields[i]);
        }
    }
}

TEST(Executor, ConfigComesFromEnvironment)
{
    ::setenv("FPTC_JOBS", "4", 1);
    ::setenv("FPTC_UNIT_TIMEOUT_S", "1.5", 1);
    ::setenv("FPTC_UNIT_RETRIES", "3", 1);
    ::setenv("FPTC_UNIT_BACKOFF_MS", "25", 1);
    const auto config = executor_config_from_env();
    ::unsetenv("FPTC_JOBS");
    ::unsetenv("FPTC_UNIT_TIMEOUT_S");
    ::unsetenv("FPTC_UNIT_RETRIES");
    ::unsetenv("FPTC_UNIT_BACKOFF_MS");
    EXPECT_EQ(config.jobs, 4);
    EXPECT_DOUBLE_EQ(config.unit_timeout_s, 1.5);
    EXPECT_EQ(config.unit_retries, 3);
    EXPECT_DOUBLE_EQ(config.backoff_base_ms, 25.0);

    const auto defaults = executor_config_from_env();
    EXPECT_EQ(defaults.jobs, 1);  // default preserves sequential seed behaviour
    EXPECT_DOUBLE_EQ(defaults.unit_timeout_s, 0.0);
}

TEST(Executor, AdmissionDefersUnitsThatExceedRemainingBudget)
{
    auto config = quick_config(2);
    config.mem_budget_bytes = 1 << 20;  // 1 MiB: only one 700 KiB unit fits
    CampaignExecutor executor("exec-admission", config);
    for (int i = 0; i < 3; ++i) {
        const std::string key = "unit=" + std::to_string(i);
        executor.submit(key, [key](const UnitContext& ctx) {
            ctx.cancel.poll();
            // Long enough that both workers overlap and the second one must
            // observe the first unit's outstanding estimate.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return std::map<std::string, std::string>{{"key", key}};
        }, 700 * 1024);
    }
    executor.run_all();

    EXPECT_EQ(executor.executed(), 3u);
    EXPECT_EQ(executor.degraded(), 0u);
    // With two workers and room for only one unit at a time, at least one
    // unit had to wait for memory at least once.
    EXPECT_GE(executor.deferred_units(), 1u);
    EXPECT_NE(executor.summary().find("deferred"), std::string::npos);
}

TEST(Executor, IdlePoolAdmitsOversizedEstimate)
{
    auto config = quick_config(1);
    config.mem_budget_bytes = 1 << 20;
    CampaignExecutor executor("exec-oversized", config);
    // Estimate 10x the budget: with nothing running there is nothing to wait
    // for, so the unit must be admitted instead of deadlocking the pool.
    executor.submit("huge", synthetic_unit("huge"), 10 << 20);
    executor.run_all();

    EXPECT_EQ(executor.executed(), 1u);
    EXPECT_EQ(executor.outcome(0).status, UnitStatus::ok);
    EXPECT_EQ(executor.deferred_units(), 0u);
}

TEST(Executor, BudgetExceededEarnsOneShrinkRetryAtHalfBatch)
{
    CampaignExecutor executor("exec-shrink", quick_config(1));
    executor.submit("shrinks", [](const UnitContext& ctx) {
        if (ctx.shrink == 0) {
            throw util::BudgetExceeded("simulated pressure", 1 << 20, 0);
        }
        return std::map<std::string, std::string>{
            {"batch", std::to_string(ctx.batch(32))}};
    });
    executor.run_all();

    const auto& outcome = executor.outcome(0);
    EXPECT_EQ(outcome.status, UnitStatus::ok);
    EXPECT_EQ(outcome.shrinks, 1);
    EXPECT_EQ(outcome.fields.at("batch"), "16");  // ctx.batch halves once
    // The shrink retry is the mitigation, not a wait: it consumes neither the
    // transient retry budget nor a backoff delay.
    EXPECT_EQ(outcome.attempts, 2);
    EXPECT_EQ(outcome.unit_retries, 0);
    EXPECT_EQ(executor.shrunk_units(), 1u);
    EXPECT_NE(executor.summary().find("1 shrunk"), std::string::npos);
}

TEST(Executor, ShrinkRetryNeverFloorsBatchBelowOne)
{
    util::CancelToken token;
    const UnitContext ctx0{token, 0};
    const UnitContext ctx1{token, 1};
    EXPECT_EQ(ctx0.batch(32), 32u);
    EXPECT_EQ(ctx1.batch(32), 16u);
    EXPECT_EQ(ctx1.batch(1), 1u);  // never 0
}

TEST(Executor, AllocFailUnitsIsDeterministicAcrossWorkerCounts)
{
    InjectorReset reset;
    std::vector<std::vector<std::map<std::string, std::string>>> per_jobs;
    for (const int jobs : {1, 2, 4}) {
        util::FaultPlan plan;
        plan.alloc_fail_units = 2;  // the first two *submitted* units
        util::fault_injector().configure(plan);

        CampaignExecutor executor("exec-alloc-units", quick_config(jobs));
        for (int i = 0; i < 6; ++i) {
            const std::string key = "unit=" + std::to_string(i);
            executor.submit(key, [key](const UnitContext& ctx) {
                return std::map<std::string, std::string>{
                    {"batch", std::to_string(ctx.batch(32))}, {"key", key}};
            });
        }
        executor.run_all();

        // Targeting is by submission index, not execution order: exactly the
        // first two units shrink, for every worker count.
        EXPECT_EQ(executor.executed(), 6u);
        EXPECT_EQ(executor.degraded(), 0u);
        EXPECT_EQ(executor.shrunk_units(), 2u);
        EXPECT_EQ(executor.outcome(0).shrinks, 1);
        EXPECT_EQ(executor.outcome(1).shrinks, 1);
        EXPECT_EQ(executor.outcome(2).shrinks, 0);
        EXPECT_EQ(util::fault_injector().counters().alloc_unit_failures, 2u);
        std::vector<std::map<std::string, std::string>> fields;
        for (const auto& outcome : executor.outcomes()) {
            fields.push_back(outcome.fields);
        }
        per_jobs.push_back(std::move(fields));
    }
    EXPECT_EQ(per_jobs[0], per_jobs[1]);
    EXPECT_EQ(per_jobs[0], per_jobs[2]);
}

TEST(Executor, AllocFailAfterMbScopesBytesPerUnitAttempt)
{
    InjectorReset reset;
    std::vector<std::vector<std::map<std::string, std::string>>> per_jobs;
    for (const int jobs : {1, 2}) {
        util::FaultPlan plan;
        plan.alloc_fail_after_mb = 1;  // refuse past 1 MiB of charges per attempt
        util::fault_injector().configure(plan);

        CampaignExecutor executor("exec-alloc-mb", quick_config(jobs));
        for (int i = 0; i < 3; ++i) {
            const std::string key = "unit=" + std::to_string(i);
            // Charge batch * 4 KiB: 2 MiB at the nominal batch of 512 (trips
            // the 1 MiB threshold), exactly 1 MiB after one shrink (passes —
            // the refusal point counts only this attempt's own bytes, so the
            // outcome is identical for any FPTC_JOBS).
            executor.submit(key, [key](const UnitContext& ctx) {
                const util::Charge working(ctx.batch(512) * 4096, "test-unit");
                return std::map<std::string, std::string>{
                    {"bytes", std::to_string(working.bytes())}, {"key", key}};
            });
        }
        executor.run_all();

        EXPECT_EQ(executor.executed(), 3u);
        EXPECT_EQ(executor.degraded(), 0u);
        EXPECT_EQ(executor.shrunk_units(), 3u);  // every unit shrinks exactly once
        for (const auto& outcome : executor.outcomes()) {
            EXPECT_EQ(outcome.shrinks, 1);
            EXPECT_EQ(outcome.fields.at("bytes"), std::to_string(1 << 20));
        }
        EXPECT_GE(util::fault_injector().counters().alloc_rejections, 3u);
        std::vector<std::map<std::string, std::string>> fields;
        for (const auto& outcome : executor.outcomes()) {
            fields.push_back(outcome.fields);
        }
        per_jobs.push_back(std::move(fields));
    }
    EXPECT_EQ(per_jobs[0], per_jobs[1]);
    // Accounting stayed balanced across all the refusals and retries.
    EXPECT_EQ(util::mem_budget().in_use(), 0u);
}

TEST(Executor, FootprintEstimateIsMonotone)
{
    FootprintEstimate small;
    small.samples = 100;
    small.eval_samples = 50;
    const auto base = estimate_unit_bytes(small);
    EXPECT_GT(base, 0u);

    auto more_samples = small;
    more_samples.samples = 200;
    EXPECT_GT(estimate_unit_bytes(more_samples), base);

    auto higher_res = small;
    higher_res.resolution = 64;
    EXPECT_GT(estimate_unit_bytes(higher_res), base);

    auto bigger_batch = small;
    bigger_batch.batch = 64;
    EXPECT_GT(estimate_unit_bytes(bigger_batch), base);

    auto two_channels = small;
    two_channels.channels = 2;
    EXPECT_GT(estimate_unit_bytes(two_channels), base);

    // 1500x1500 rasterizes at native resolution but is stored at the
    // network's pooled input dimension, so the estimate grows far slower
    // than resolution^2.
    auto full_res = small;
    full_res.resolution = 1500;
    EXPECT_GT(estimate_unit_bytes(full_res), base);
}

TEST(JournalThreadSafety, ConcurrentRecordsNeverTearLines)
{
    TempFile file("fptc_test_journal_hammer.jsonl");
    constexpr int kThreads = 8;
    constexpr int kRecordsPerThread = 50;
    {
        util::RunJournal journal(file.path());
        std::vector<std::thread> pool;
        for (int t = 0; t < kThreads; ++t) {
            pool.emplace_back([&journal, t] {
                for (int i = 0; i < kRecordsPerThread; ++i) {
                    const std::string key =
                        "t" + std::to_string(t) + "|i" + std::to_string(i);
                    journal.record(key, {{"thread", std::to_string(t)},
                                         {"index", std::to_string(i)}});
                }
            });
        }
        for (auto& thread : pool) {
            thread.join();
        }
        EXPECT_EQ(journal.size(), static_cast<std::size_t>(kThreads * kRecordsPerThread));
    }

    util::RunJournal reloaded(file.path());
    EXPECT_EQ(reloaded.discarded_lines(), 0u);  // no interleaved/torn lines
    EXPECT_EQ(reloaded.size(), static_cast<std::size_t>(kThreads * kRecordsPerThread));
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kRecordsPerThread; ++i) {
            const auto fields =
                reloaded.find_copy("t" + std::to_string(t) + "|i" + std::to_string(i));
            ASSERT_TRUE(fields.has_value());
            EXPECT_EQ(fields->at("thread"), std::to_string(t));
            EXPECT_EQ(fields->at("index"), std::to_string(i));
        }
    }
}

TEST(JournalThreadSafety, CampaignJournalCountersAreConsistent)
{
    TempFile file("fptc_test_campaign_hammer.jsonl");
    ::setenv("FPTC_JOURNAL", file.path().c_str(), 1);
    util::CampaignJournal journal("hammer");
    ::unsetenv("FPTC_JOURNAL");

    constexpr int kThreads = 8;
    constexpr int kUnitsPerThread = 25;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&journal, t] {
            for (int i = 0; i < kUnitsPerThread; ++i) {
                const std::string key = "t" + std::to_string(t) + "|i" + std::to_string(i);
                journal.commit(key, {{"v", std::to_string(i)}});
                const auto replay = journal.try_replay(key);
                EXPECT_TRUE(replay.has_value());
            }
        });
    }
    for (auto& thread : pool) {
        thread.join();
    }
    EXPECT_EQ(journal.executed(), static_cast<std::size_t>(kThreads * kUnitsPerThread));
    EXPECT_EQ(journal.replayed(), static_cast<std::size_t>(kThreads * kUnitsPerThread));
}

// The tallies behind summary()/timing_summary() are now derived from the
// recorded outcomes instead of private accumulating members; these tests pin
// the rendered strings across that refactor.

TEST(ExecutorSummary, EmptyCampaignRendersAllZeroes)
{
    CampaignExecutor executor("exec-empty", quick_config(2));
    executor.run_all();
    EXPECT_EQ(executor.summary(),
              "executor[exec-empty]: 0 unit(s): 0 executed, 0 resumed, 0 retried, 0 degraded");
    EXPECT_EQ(executor.executed(), 0u);
    EXPECT_EQ(executor.resumed(), 0u);
    EXPECT_EQ(executor.retried_units(), 0u);
    EXPECT_EQ(executor.degraded(), 0u);
    EXPECT_EQ(executor.deferred_units(), 0u);
    EXPECT_EQ(executor.shrunk_units(), 0u);
    EXPECT_NE(executor.timing_summary().find("2 worker(s), wall"), std::string::npos);
}

TEST(ExecutorSummary, AllDegradedCampaignCountsEveryUnit)
{
    auto config = quick_config(1);
    config.unit_retries = 0;
    CampaignExecutor executor("exec-all-degraded", config);
    for (int i = 0; i < 3; ++i) {
        executor.submit("doomed=" + std::to_string(i),
                        [](const UnitContext&) -> std::map<std::string, std::string> {
                            throw UnitError(ErrorClass::transient, "always failing");
                        });
    }
    executor.run_all();
    EXPECT_EQ(executor.summary(),
              "executor[exec-all-degraded]: 3 unit(s): 0 executed, 0 resumed, 0 retried, "
              "3 degraded");
    EXPECT_EQ(executor.executed(), 0u);
    EXPECT_EQ(executor.degraded(), 3u);
}

TEST(ExecutorSummary, RetryHeavyCampaignSeparatesRetriedFromDegraded)
{
    InjectorReset reset;
    util::FaultPlan plan;
    plan.transient_units = 2;  // both retries land on the first unit executed
    util::fault_injector().configure(plan);

    CampaignExecutor executor("exec-retry-heavy", quick_config(1));
    executor.submit("flaky", synthetic_unit("flaky"));
    executor.submit("steady", synthetic_unit("steady"));
    executor.run_all();

    EXPECT_EQ(executor.summary(),
              "executor[exec-retry-heavy]: 2 unit(s): 2 executed, 0 resumed, 1 retried, "
              "0 degraded");
    EXPECT_EQ(executor.retried_units(), 1u);
    const std::string timing = executor.timing_summary();
    EXPECT_NE(timing.find("executor[exec-retry-heavy]: 1 worker(s), wall"),
              std::string::npos);
    EXPECT_NE(timing.find("busy"), std::string::npos);
}

} // namespace
