#!/usr/bin/env bash
# Kill-point torture harness for the durable I/O layer.
#
# Sweeps FPTC_FAULT_CRASH_AT_WRITE over K = 1..N against a tiny table4
# campaign: each crashed run dies with a hard _exit(86) at its K-th durable
# write, tearing whatever artifact was in flight.  After every crash the
# harness relaunches with the same FPTC_JOURNAL and asserts:
#
#   * the resumed run's stdout tables are BIT-IDENTICAL to an uninterrupted
#     golden run (only the executor's executed/resumed summary line and
#     stderr log lines may differ),
#   * the CSV / table artifacts are byte-identical to the golden run's,
#   * no final-named artifact is torn, empty or stale: after a crash, every
#     non-temp file is either absent or a fully valid previous generation
#     (journal lines must all parse except possibly a torn tail),
#   * it also greps src/ to assert no persistence bypasses the durable
#     layer via a raw std::ofstream.
#
# Usage, from the repo root (binary defaults to build/bench/table4_augmentations):
#
#   tests/run_torture.sh [--quick] [path/to/table4_augmentations]
#
# --quick sweeps only K = 1..3 (wired as the CrashTortureQuick ctest);
# the full sweep walks K upward until a run completes without crashing.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
BIN=build/bench/table4_augmentations
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) BIN="$arg" ;;
    esac
done

if [ ! -x "$BIN" ]; then
    echo "run_torture: bench binary '$BIN' not found (build the default preset first)" >&2
    exit 1
fi

# ---- static gate: all persistence must route through util/durable ----------
if grep -rn "std::ofstream" src/ --include='*.cpp' --include='*.hpp' \
        | grep -v "durable" >/dev/null; then
    echo "run_torture: FAIL: raw std::ofstream persistence found in src/ — route it through util::DurableFile:" >&2
    grep -rn "std::ofstream" src/ --include='*.cpp' --include='*.hpp' | grep -v "durable" >&2
    exit 1
fi
echo "run_torture: static gate ok (no raw std::ofstream persistence in src/)"

WORK=$(mktemp -d "${TMPDIR:-/tmp}/fptc_torture.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

# Tiny campaign: 7 augmentations x {32,64}, 1 split x 1 seed = 14 units, on
# a shrunken dataset and training split (the pretraining partition's
# smallest class holds ~59 flows at FPTC_SAMPLES=0.1, so a 25-per-class
# split still fits) to keep each run fast on a single core.
SCALE="FPTC_SPLITS=1 FPTC_SEEDS=1 FPTC_EPOCHS=1 FPTC_SAMPLES=0.1 FPTC_PER_CLASS=25"
JOBS="${FPTC_JOBS:-$(nproc)}"

run_campaign() {
    # $1 = work dir, $2.. = extra env (VAR=value) for this run
    dir="$1"; shift
    mkdir -p "$dir"
    env $SCALE FPTC_JOBS="$JOBS" \
        FPTC_JOURNAL="$dir/journal.jsonl" FPTC_ARTIFACTS_DIR="$dir" \
        "$@" "$BIN" >"$dir/stdout.txt" 2>"$dir/stderr.txt"
}

# The executor summary reports executed vs resumed counts, and the artifact
# confirmation line embeds the per-run directory: both legitimately differ
# between a golden run and a crash+resume run; everything else on stdout
# must match bit-for-bit.
filter_stdout() {
    grep -v -e '^executor\[' -e '^per-run artifact written to ' "$1" > "$1.filtered"
}

# ---- golden (uninterrupted) run ---------------------------------------------
echo "run_torture: golden run (14 units, $JOBS jobs)..."
GOLD="$WORK/golden"
run_campaign "$GOLD"
filter_stdout "$GOLD/stdout.txt"
for artifact in table4_runs.csv table4_script.txt table4_human.txt table4_leftover.txt; do
    if [ ! -s "$GOLD/$artifact" ]; then
        echo "run_torture: FAIL: golden run produced no $artifact" >&2
        exit 1
    fi
done

check_no_torn_artifacts() {
    # $1 = dir. After a crash, every FINAL-named file must be complete:
    # temps (*.tmp.*) are legitimate crash debris, but a renamed artifact may
    # never be empty, and every journal line except a possibly-torn final
    # one must be a complete {...} object.
    for f in "$1"/*; do
        [ -f "$f" ] || continue
        case "$(basename "$f")" in
            *.tmp.*|stdout.txt|stderr.txt) continue ;;
        esac
        if [ ! -s "$f" ]; then
            echo "run_torture: FAIL: empty renamed artifact $f after crash" >&2
            exit 1
        fi
    done
    if [ -f "$1/journal.jsonl" ]; then
        # All lines but the last must parse as {...}; a torn tail is allowed.
        if sed '$d' "$1/journal.jsonl" | grep -vq '^{.*}$'; then
            echo "run_torture: FAIL: torn non-final journal line in $1/journal.jsonl" >&2
            exit 1
        fi
    fi
}

# ---- kill-point sweep -------------------------------------------------------
if [ "$QUICK" = 1 ]; then MAX_K=3; else MAX_K=64; fi
K=1
SWEPT=0
while [ "$K" -le "$MAX_K" ]; do
    dir="$WORK/k$K"
    status=0
    run_campaign "$dir" FPTC_FAULT_CRASH_AT_WRITE="$K" || status=$?
    if [ "$status" = 0 ]; then
        # K exceeded the run's total durable writes: the campaign completed
        # uninterrupted and the sweep has covered every kill point.
        echo "run_torture: K=$K exceeds total durable writes; sweep complete"
        break
    fi
    if [ "$status" != 86 ]; then
        echo "run_torture: FAIL: K=$K exited with $status (expected crash code 86)" >&2
        exit 1
    fi
    check_no_torn_artifacts "$dir"

    # Relaunch with the same journal: resumed + executed must reproduce the
    # golden tables bit-for-bit.
    run_campaign "$dir"
    filter_stdout "$dir/stdout.txt"
    if ! cmp -s "$GOLD/stdout.txt.filtered" "$dir/stdout.txt.filtered"; then
        echo "run_torture: FAIL: K=$K resumed stdout differs from golden:" >&2
        diff "$GOLD/stdout.txt.filtered" "$dir/stdout.txt.filtered" >&2 || true
        exit 1
    fi
    for artifact in table4_runs.csv table4_script.txt table4_human.txt table4_leftover.txt; do
        if ! cmp -s "$GOLD/$artifact" "$dir/$artifact"; then
            echo "run_torture: FAIL: K=$K resumed artifact $artifact differs from golden" >&2
            exit 1
        fi
    done
    resumed=$(grep -c '^{' "$dir/journal.jsonl" || true)
    echo "run_torture: K=$K ok (crash -> resume bit-identical; journal $resumed line(s))"
    SWEPT=$((SWEPT + 1))
    rm -rf "$dir"
    K=$((K + 1))
done

if [ "$SWEPT" -lt 1 ]; then
    echo "run_torture: FAIL: no kill point was actually exercised" >&2
    exit 1
fi
echo "run_torture: PASS ($SWEPT kill point(s) swept, resume bit-identical each time)"
