#!/usr/bin/env bash
# Telemetry gate (TelemetryQuick ctest): run the tiny table4 campaign twice
# — telemetry off, then with FPTC_TRACE + FPTC_METRICS + FPTC_LOG=2 — and
# assert the observability contract:
#
#   * stdout is bit-identical between the two runs: telemetry rides on
#     stderr and side files only, campaign tables never change,
#   * the trace export is valid JSON with balanced B/E pairs and contains
#     the executor/training span taxonomy,
#   * the metrics dump is valid JSON and carries the executor tallies, the
#     MemBudget peak gauge and the per-phase duration histograms,
#   * a bad FPTC_TRACE sink fails fast (EnvError before any unit runs),
#   * optionally (second argument = micro_benchmarks binary): the
#     disabled-path span overhead stays within 2% (+2 ns slack) of an
#     identical span-free workload.
#
# Usage, from the repo root (binary defaults to build/bench/table4_augmentations):
#
#   tests/run_telemetry.sh [path/to/table4_augmentations] [path/to/micro_benchmarks]
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${1:-build/bench/table4_augmentations}
MICRO=${2:-}
if [[ ! -x "$BIN" ]]; then
    echo "run_telemetry: FAIL: bench binary '$BIN' not found (build the default preset first)" >&2
    exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/fptc_telemetry.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

# Both runs share one artifacts dir so the "artifact written to <path>"
# stdout line is identical; the telemetry run overwrites the baseline's.
mkdir -p "$WORK/artifacts"
QUICK_ENV=(FPTC_SPLITS=1 FPTC_SEEDS=1 FPTC_EPOCHS=1 FPTC_SAMPLES=0.1 FPTC_PER_CLASS=25
           FPTC_JOBS=2 FPTC_ARTIFACTS_DIR="$WORK/artifacts")

echo "run_telemetry: quick table4 baseline (telemetry off)..."
env "${QUICK_ENV[@]}" "$BIN" >"$WORK/stdout_off.txt" 2>"$WORK/stderr_off.txt"

echo "run_telemetry: quick table4 with FPTC_TRACE + FPTC_METRICS + FPTC_LOG=2..."
status=0
env "${QUICK_ENV[@]}" FPTC_LOG=2 \
    FPTC_TRACE="$WORK/trace.json" FPTC_METRICS="$WORK/metrics.json" \
    "$BIN" >"$WORK/stdout_on.txt" 2>"$WORK/stderr_on.txt" || status=$?
if [[ "$status" != 0 ]]; then
    echo "run_telemetry: FAIL: campaign with telemetry armed exited with $status" >&2
    tail -20 "$WORK/stderr_on.txt" >&2
    exit 1
fi

if ! cmp -s "$WORK/stdout_off.txt" "$WORK/stdout_on.txt"; then
    echo "run_telemetry: FAIL: stdout differs with telemetry on (tables must stay bit-identical)" >&2
    diff "$WORK/stdout_off.txt" "$WORK/stdout_on.txt" | head -20 >&2
    exit 1
fi

for sink in trace.json metrics.json metrics.json.prom; do
    if [[ ! -s "$WORK/$sink" ]]; then
        echo "run_telemetry: FAIL: telemetry sink $sink missing or empty" >&2
        exit 1
    fi
done

if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORK/trace.json" "$WORK/metrics.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
depth = {}
last_ts = {}
names = set()
for e in events:
    tid = e["tid"]
    names.add(e["name"])
    assert e["ts"] >= last_ts.get(tid, 0.0), f"ts not monotone for tid {tid}"
    last_ts[tid] = e["ts"]
    depth[tid] = depth.get(tid, 0) + (1 if e["ph"] == "B" else -1)
    assert depth[tid] >= 0, f"orphan E event for tid {tid}"
assert all(d == 0 for d in depth.values()), f"unbalanced B/E: {depth}"
for expected in ("unit", "attempt", "epoch", "forward", "backward", "optimizer"):
    assert expected in names, f"span '{expected}' missing from trace (have {sorted(names)})"

with open(sys.argv[2]) as f:
    metrics = json.load(f)
counters = metrics["counters"]
assert counters.get("fptc_executor_units_total", 0) > 0, "no units counted"
assert counters.get("fptc_executor_executed_total", 0) > 0, "no executions counted"
for knob in ("fptc_executor_retries_total", "fptc_executor_deferred_total",
             "fptc_executor_shrunk_total", "fptc_membudget_rejections_total"):
    assert knob in counters, f"counter {knob} missing"
assert "fptc_membudget_peak_bytes" in metrics["gauges"], "membudget peak gauge missing"
histograms = metrics["histograms"]
phase = [name for name in histograms if name.startswith("fptc_phase_")]
assert phase, "no per-phase histograms"
assert histograms[
    "fptc_phase_epoch_duration_ns"]["count"] > 0, "epoch histogram empty"
print(f"run_telemetry: trace OK ({len(events)} events, {len(names)} span names); "
      f"metrics OK ({len(counters)} counters, {len(phase)} phase histograms)")
EOF
else
    echo "run_telemetry: python3 not found, JSON structure checks skipped"
fi

echo "run_telemetry: bad FPTC_TRACE sink must fail fast..."
status=0
env "${QUICK_ENV[@]}" FPTC_TRACE="/nonexistent-fptc-dir/trace.json" \
    "$BIN" >"$WORK/stdout_bad.txt" 2>"$WORK/stderr_bad.txt" || status=$?
if [[ "$status" == 0 ]]; then
    echo "run_telemetry: FAIL: campaign accepted an unwritable FPTC_TRACE sink" >&2
    exit 1
fi
if ! grep -q "FPTC_TRACE" "$WORK/stderr_bad.txt"; then
    echo "run_telemetry: FAIL: rejection does not name the FPTC_TRACE knob" >&2
    tail -5 "$WORK/stderr_bad.txt" >&2
    exit 1
fi

if [[ -n "$MICRO" ]]; then
    if [[ ! -x "$MICRO" ]]; then
        echo "run_telemetry: FAIL: micro benchmark binary '$MICRO' not found" >&2
        exit 1
    fi
    echo "run_telemetry: disabled-path overhead gate (3 repetitions, min ns/op)..."
    env FPTC_ARTIFACTS_DIR="$WORK" "$MICRO" \
        --benchmark_filter='BM_SpanOverheadBaseline|BM_TelemetryDisabledSpan' \
        --benchmark_min_time=0.2 --benchmark_repetitions=3 \
        >"$WORK/micro_stdout.txt" 2>&1
    if [[ ! -s "$WORK/BENCH_micro.json" ]]; then
        echo "run_telemetry: FAIL: micro_benchmarks wrote no BENCH_micro.json" >&2
        exit 1
    fi
    python3 - "$WORK/BENCH_micro.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    runs = json.load(f)["benchmarks"]
def best(name):
    times = [r["ns_per_op"] for r in runs if r["name"] == name]
    assert times, f"benchmark {name} missing from BENCH_micro.json"
    return min(times)
baseline = best("BM_SpanOverheadBaseline")
disabled = best("BM_TelemetryDisabledSpan")
limit = baseline * 1.02 + 2.0
print(f"run_telemetry: baseline {baseline:.1f} ns/op, disabled span {disabled:.1f} ns/op, "
      f"limit {limit:.1f}")
assert disabled <= limit, (
    f"disabled-path span overhead regressed: {disabled:.1f} ns/op > "
    f"{limit:.1f} ns/op (baseline {baseline:.1f} * 1.02 + 2 ns)")
EOF
fi

echo "run_telemetry: PASS (stdout bit-identical; trace/metrics valid; bad sink fails fast)"
