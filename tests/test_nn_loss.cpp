// Unit tests for the loss functions: cross-entropy values/gradients, NT-Xent
// behaviour on constructed geometries, and contrastive top-k accuracy.
#include "fptc/nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace fptc::nn;

TEST(CrossEntropy, UniformLogitsGiveLogK)
{
    const Tensor logits({2, 5}); // all zeros -> uniform softmax
    const std::vector<std::size_t> labels{0, 3};
    const auto result = cross_entropy(logits, labels);
    EXPECT_NEAR(result.loss, std::log(5.0), 1e-6);
}

TEST(CrossEntropy, ConfidentCorrectPredictionHasLowLoss)
{
    Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
    const std::vector<std::size_t> labels{0};
    EXPECT_LT(cross_entropy(logits, labels).loss, 1e-3);
    const std::vector<std::size_t> wrong{2};
    EXPECT_GT(cross_entropy(logits, wrong).loss, 5.0);
}

TEST(CrossEntropy, GradientRowsSumToZero)
{
    fptc::util::Rng rng(1);
    const auto logits = Tensor::randn({4, 6}, rng);
    const std::vector<std::size_t> labels{0, 1, 2, 3};
    const auto result = cross_entropy(logits, labels);
    for (std::size_t n = 0; n < 4; ++n) {
        double row_sum = 0.0;
        for (std::size_t k = 0; k < 6; ++k) {
            row_sum += result.grad[n * 6 + k];
        }
        EXPECT_NEAR(row_sum, 0.0, 1e-6); // softmax - onehot sums to 0
    }
}

TEST(CrossEntropy, Validation)
{
    const Tensor logits({2, 3});
    EXPECT_THROW(cross_entropy(logits, std::vector<std::size_t>{0}), std::invalid_argument);
    EXPECT_THROW(cross_entropy(logits, std::vector<std::size_t>{0, 9}), std::out_of_range);
    EXPECT_THROW(cross_entropy(Tensor({6}), std::vector<std::size_t>{0}), std::invalid_argument);
}

TEST(ArgmaxRows, PicksLargest)
{
    const Tensor logits({2, 3}, {0.1f, 0.9f, 0.5f, 2.0f, -1.0f, 0.0f});
    const auto predictions = argmax_rows(logits);
    EXPECT_EQ(predictions, (std::vector<std::size_t>{1, 0}));
}

/// Build [2B, D] projections where pairs (2i, 2i+1) are nearly identical and
/// different pairs are orthogonal — the ideal contrastive geometry.
Tensor ideal_pairs(std::size_t pairs, std::size_t dim)
{
    Tensor t({2 * pairs, dim});
    for (std::size_t i = 0; i < pairs; ++i) {
        t[(2 * i) * dim + i] = 1.0f;
        t[(2 * i + 1) * dim + i] = 1.0f;
        t[(2 * i + 1) * dim + (i + pairs) % dim] = 0.05f; // slight perturbation
    }
    return t;
}

TEST(NtXent, IdealGeometryHasLowLoss)
{
    const auto good = ideal_pairs(4, 16);
    const auto good_loss = nt_xent(good, 0.07).loss;

    fptc::util::Rng rng(2);
    const auto random = Tensor::randn({8, 16}, rng);
    const auto random_loss = nt_xent(random, 0.07).loss;

    EXPECT_LT(good_loss, 0.2);
    EXPECT_GT(random_loss, good_loss * 5.0);
}

TEST(NtXent, GradientPointsDownhill)
{
    fptc::util::Rng rng(3);
    auto projections = Tensor::randn({8, 10}, rng);
    const auto result = nt_xent(projections, 0.1);
    // One small gradient step must reduce the loss.
    for (std::size_t i = 0; i < projections.size(); ++i) {
        projections[i] -= 0.1f * result.grad[i];
    }
    EXPECT_LT(nt_xent(projections, 0.1).loss, result.loss);
}

TEST(NtXent, Validation)
{
    EXPECT_THROW(nt_xent(Tensor({3, 4})), std::invalid_argument);  // odd rows
    EXPECT_THROW(nt_xent(Tensor({2, 4})), std::invalid_argument);  // B < 2
    EXPECT_THROW(nt_xent(Tensor({8, 4}), 0.0), std::invalid_argument);
}

TEST(ContrastiveTopK, PerfectPairsScoreOne)
{
    const auto good = ideal_pairs(6, 16);
    EXPECT_DOUBLE_EQ(contrastive_top_k_accuracy(good, 1), 1.0);
    EXPECT_DOUBLE_EQ(contrastive_top_k_accuracy(good, 5), 1.0);
}

TEST(ContrastiveTopK, AdversarialGeometryScoresLow)
{
    // Positive pairs orthogonal, but each anchor nearly duplicates an
    // unrelated row -> positives are NOT the nearest neighbours.
    constexpr std::size_t dim = 8;
    Tensor t({8, dim});
    for (std::size_t i = 0; i < 8; ++i) {
        t[i * dim + (i % dim)] = 1.0f;            // each row its own direction
        t[i * dim + ((i + 2) % dim)] = 0.95f;     // strong similarity to row i+2
    }
    EXPECT_LT(contrastive_top_k_accuracy(t, 1), 1.0);
}

TEST(ContrastiveTopK, KLargerThanBatchAlwaysHits)
{
    fptc::util::Rng rng(4);
    const auto random = Tensor::randn({8, 4}, rng);
    EXPECT_DOUBLE_EQ(contrastive_top_k_accuracy(random, 100), 1.0);
}

} // namespace
