// Unit tests for individual layers: hand-computed forward values, backward
// routing, dropout semantics and the Sequential masking idiom.
#include "fptc/nn/conv.hpp"
#include "fptc/nn/layers.hpp"
#include "fptc/nn/sequential.hpp"

#include <gtest/gtest.h>

namespace {

using namespace fptc::nn;

TEST(Linear, ForwardMatchesManualComputation)
{
    Linear layer(2, 3, /*seed=*/1);
    // Overwrite weights deterministically: W = [[1,2],[3,4],[5,6]], b = [.5,.5,.5].
    auto params = layer.parameters();
    auto w = params[0]->value.data();
    for (std::size_t i = 0; i < 6; ++i) {
        w[i] = static_cast<float>(i + 1);
    }
    params[1]->value.fill(0.5f);

    const Tensor x({1, 2}, {10.0f, 20.0f});
    const auto y = layer.forward(x, false);
    ASSERT_EQ(y.shape(), (Shape{1, 3}));
    EXPECT_FLOAT_EQ(y[0], 1 * 10 + 2 * 20 + 0.5f);
    EXPECT_FLOAT_EQ(y[1], 3 * 10 + 4 * 20 + 0.5f);
    EXPECT_FLOAT_EQ(y[2], 5 * 10 + 6 * 20 + 0.5f);
}

TEST(Linear, BackwardAccumulatesParameterGrads)
{
    Linear layer(2, 1, 1);
    auto params = layer.parameters();
    params[0]->value.data()[0] = 2.0f;
    params[0]->value.data()[1] = -1.0f;
    params[1]->value.fill(0.0f);

    const Tensor x({2, 2}, {1, 2, 3, 4});
    (void)layer.forward(x, true);
    const Tensor gy({2, 1}, {1.0f, 0.5f});
    const auto gx = layer.backward(gy);

    // dL/dx = gy * W.
    EXPECT_FLOAT_EQ(gx[0], 2.0f);
    EXPECT_FLOAT_EQ(gx[1], -1.0f);
    EXPECT_FLOAT_EQ(gx[2], 1.0f);
    EXPECT_FLOAT_EQ(gx[3], -0.5f);
    // dL/dW = sum_n gy_n * x_n = 1*[1,2] + 0.5*[3,4] = [2.5, 4].
    EXPECT_FLOAT_EQ(params[0]->grad.data()[0], 2.5f);
    EXPECT_FLOAT_EQ(params[0]->grad.data()[1], 4.0f);
    // dL/db = 1.5.
    EXPECT_FLOAT_EQ(params[1]->grad.data()[0], 1.5f);
}

TEST(Linear, RejectsWrongInputShape)
{
    Linear layer(4, 2, 1);
    EXPECT_THROW((void)layer.forward(Tensor({1, 3}), false), std::invalid_argument);
}

TEST(ReLU, ForwardBackward)
{
    ReLU relu;
    const Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
    const auto y = relu.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    const Tensor gy({4}, {1, 1, 1, 1});
    const auto gx = relu.backward(gy);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[2], 1.0f);
}

TEST(Flatten, RoundTrip)
{
    Flatten flatten;
    const Tensor x({2, 3, 4, 4});
    const auto y = flatten.forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{2, 48}));
    const auto gx = flatten.backward(Tensor({2, 48}));
    EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Identity, PassThrough)
{
    Identity identity;
    const Tensor x({3}, {1, 2, 3});
    const auto y = identity.forward(x, true);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
    EXPECT_EQ(identity.parameter_count(), 0u);
}

TEST(Dropout, EvalModeIsIdentity)
{
    Dropout dropout(0.5, 1);
    const Tensor x({100});
    Tensor ones = x;
    ones.fill(1.0f);
    const auto y = dropout.forward(ones, /*training=*/false);
    EXPECT_DOUBLE_EQ(y.sum(), 100.0);
}

TEST(Dropout, TrainModeZerosAndRescales)
{
    Dropout dropout(0.5, 2);
    Tensor ones({10000});
    ones.fill(1.0f);
    const auto y = dropout.forward(ones, /*training=*/true);
    std::size_t zeros = 0;
    for (const float v : y.data()) {
        if (v == 0.0f) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(v, 2.0f); // inverted dropout scaling
        }
    }
    EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
    // Expected value preserved.
    EXPECT_NEAR(y.sum() / 10000.0, 1.0, 0.06);

    // Backward uses the same mask.
    Tensor gy({10000});
    gy.fill(1.0f);
    const auto gx = dropout.backward(gy);
    for (std::size_t i = 0; i < gx.size(); ++i) {
        EXPECT_FLOAT_EQ(gx[i], y[i]); // mask * scale in both directions
    }
}

TEST(Dropout, RejectsInvalidProbability)
{
    EXPECT_THROW(Dropout(1.0, 1), std::invalid_argument);
    EXPECT_THROW(Dropout(-0.1, 1), std::invalid_argument);
}

TEST(Dropout2d, ZerosWholeChannels)
{
    Dropout2d dropout(0.5, 3);
    Tensor x({4, 8, 3, 3});
    x.fill(1.0f);
    const auto y = dropout.forward(x, true);
    // Each (n, c) plane must be all-zero or all-2.0.
    const std::size_t plane = 9;
    for (std::size_t nc = 0; nc < 32; ++nc) {
        const float first = y[nc * plane];
        for (std::size_t i = 0; i < plane; ++i) {
            EXPECT_FLOAT_EQ(y[nc * plane + i], first);
        }
        EXPECT_TRUE(first == 0.0f || first == 2.0f);
    }
}

TEST(MaxPool2d, ForwardPicksMaxima)
{
    MaxPool2d pool(2);
    const Tensor x({1, 1, 4, 4}, {1, 2, 0, 0, //
                                  3, 4, 0, 1, //
                                  5, 0, 9, 8, //
                                  0, 6, 7, 0});
    const auto y = pool.forward(x, false);
    ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y[0], 4.0f);
    EXPECT_FLOAT_EQ(y[1], 1.0f);
    EXPECT_FLOAT_EQ(y[2], 6.0f);
    EXPECT_FLOAT_EQ(y[3], 9.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax)
{
    MaxPool2d pool(2);
    const Tensor x({1, 1, 2, 2}, {1, 5, 2, 3});
    (void)pool.forward(x, false);
    const Tensor gy({1, 1, 1, 1}, {7.0f});
    const auto gx = pool.backward(gy);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 7.0f); // the max got the gradient
    EXPECT_FLOAT_EQ(gx[2], 0.0f);
    EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(MaxPool2d, FloorsOddDimensions)
{
    MaxPool2d pool(2);
    const auto y = pool.forward(Tensor({1, 1, 5, 5}), false);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
}

TEST(Conv2d, ForwardMatchesManualComputation)
{
    Conv2d conv(1, 1, 2, /*seed=*/1);
    auto params = conv.parameters();
    // Kernel [[1, 0], [0, 1]] (trace filter), bias 0.25.
    auto w = params[0]->value.data();
    w[0] = 1.0f;
    w[1] = 0.0f;
    w[2] = 0.0f;
    w[3] = 1.0f;
    params[1]->value.fill(0.25f);

    const Tensor x({1, 1, 3, 3}, {1, 2, 3, //
                                  4, 5, 6, //
                                  7, 8, 9});
    const auto y = conv.forward(x, false);
    ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y[0], 1 + 5 + 0.25f);
    EXPECT_FLOAT_EQ(y[1], 2 + 6 + 0.25f);
    EXPECT_FLOAT_EQ(y[2], 4 + 8 + 0.25f);
    EXPECT_FLOAT_EQ(y[3], 5 + 9 + 0.25f);
}

TEST(Conv2d, StrideReducesOutput)
{
    Conv2d conv(1, 2, 3, 1, /*stride=*/2);
    const auto y = conv.forward(Tensor({1, 1, 7, 7}), false);
    EXPECT_EQ(y.shape(), (Shape{1, 2, 3, 3}));
}

TEST(Conv2d, RejectsBadInput)
{
    Conv2d conv(2, 4, 3, 1);
    EXPECT_THROW((void)conv.forward(Tensor({1, 1, 8, 8}), false), std::invalid_argument);
    EXPECT_THROW((void)conv.forward(Tensor({1, 2, 2, 2}), false), std::invalid_argument);
}

TEST(Sequential, MaskLayerReplacesWithIdentity)
{
    Sequential net;
    net.add(std::make_unique<Linear>(4, 4, 1));
    const auto dropout_index = net.add(std::make_unique<Dropout>(0.5, 2));
    net.add(std::make_unique<Linear>(4, 2, 3));
    const auto params_before = net.parameter_count();
    net.mask_layer(dropout_index);
    EXPECT_EQ(net.layer(dropout_index).name(), "Identity");
    EXPECT_EQ(net.parameter_count(), params_before); // dropout had no params
    const auto y = net.forward(Tensor({1, 4}), true);
    EXPECT_EQ(y.shape(), (Shape{1, 2}));
}

TEST(Sequential, SummaryListsLayers)
{
    Sequential net;
    net.add(std::make_unique<Linear>(8, 4, 1));
    net.add(std::make_unique<ReLU>());
    const auto text = net.summary({1, 8});
    EXPECT_NE(text.find("Linear"), std::string::npos);
    EXPECT_NE(text.find("ReLU"), std::string::npos);
    EXPECT_NE(text.find("Total params: 36"), std::string::npos); // 8*4+4
}

TEST(Sequential, ZeroGradClearsAll)
{
    Sequential net;
    net.add(std::make_unique<Linear>(2, 2, 1));
    (void)net.forward(Tensor({1, 2}, {1, 1}), true);
    (void)net.backward(Tensor({1, 2}, {1, 1}));
    net.zero_grad();
    for (auto* p : net.parameters()) {
        for (const float g : p->grad.data()) {
            EXPECT_FLOAT_EQ(g, 0.0f);
        }
    }
}

} // namespace
