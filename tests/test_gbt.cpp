// Unit tests for the gradient-boosted-trees baseline.
#include "fptc/gbt/gbt.hpp"
#include "fptc/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace fptc::gbt;

/// Gaussian blobs, one per class, linearly separable in feature 0.
void make_blobs(std::size_t n_per_class, std::size_t classes, std::size_t dims, double spread,
                std::vector<std::vector<float>>& features, std::vector<std::size_t>& labels,
                std::uint64_t seed = 1)
{
    fptc::util::Rng rng(seed);
    for (std::size_t c = 0; c < classes; ++c) {
        for (std::size_t i = 0; i < n_per_class; ++i) {
            std::vector<float> row(dims);
            for (std::size_t d = 0; d < dims; ++d) {
                row[d] = static_cast<float>(rng.normal(static_cast<double>(c) * 3.0, spread));
            }
            features.push_back(std::move(row));
            labels.push_back(c);
        }
    }
}

TEST(Gbt, LearnsSeparableBlobs)
{
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    make_blobs(60, 3, 4, 0.5, features, labels);

    GbtConfig config;
    config.num_rounds = 30;
    GbtClassifier model(config, 3);
    model.fit(features, labels);

    std::size_t correct = 0;
    for (std::size_t i = 0; i < features.size(); ++i) {
        if (model.predict(features[i]) == labels[i]) {
            ++correct;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / features.size(), 0.97);
}

TEST(Gbt, GeneralizesToHeldOut)
{
    std::vector<std::vector<float>> train_x;
    std::vector<std::size_t> train_y;
    make_blobs(80, 2, 6, 1.0, train_x, train_y, 1);
    std::vector<std::vector<float>> test_x;
    std::vector<std::size_t> test_y;
    make_blobs(40, 2, 6, 1.0, test_x, test_y, 2);

    GbtConfig config;
    config.num_rounds = 40;
    GbtClassifier model(config, 2);
    model.fit(train_x, train_y);
    const auto predictions = model.predict_batch(test_x);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test_x.size(); ++i) {
        correct += predictions[i] == test_y[i];
    }
    EXPECT_GT(static_cast<double>(correct) / test_x.size(), 0.9);
}

TEST(Gbt, LearnsXorInteraction)
{
    // XOR needs depth >= 2 splits: single-feature stumps cannot solve it.
    fptc::util::Rng rng(3);
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    for (int i = 0; i < 400; ++i) {
        const float a = rng.bernoulli(0.5) ? 1.0f : 0.0f;
        const float b = rng.bernoulli(0.5) ? 1.0f : 0.0f;
        features.push_back({a + static_cast<float>(rng.normal(0, 0.05)),
                            b + static_cast<float>(rng.normal(0, 0.05))});
        labels.push_back(static_cast<std::size_t>(a != b));
    }
    GbtConfig config;
    config.num_rounds = 40;
    GbtClassifier model(config, 2);
    model.fit(features, labels);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < features.size(); ++i) {
        correct += model.predict(features[i]) == labels[i];
    }
    EXPECT_GT(static_cast<double>(correct) / features.size(), 0.95);
    EXPECT_GE(model.average_tree_depth(), 1.0);
}

TEST(Gbt, ProbabilitiesFormDistribution)
{
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    make_blobs(30, 4, 3, 0.8, features, labels);
    GbtConfig config;
    config.num_rounds = 10;
    GbtClassifier model(config, 4);
    model.fit(features, labels);

    const auto proba = model.predict_proba(features.front());
    ASSERT_EQ(proba.size(), 4u);
    double total = 0.0;
    for (const double p : proba) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Gbt, TreeCountAndDepthBounds)
{
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    make_blobs(40, 3, 2, 0.5, features, labels);
    GbtConfig config;
    config.num_rounds = 15;
    config.max_depth = 4;
    GbtClassifier model(config, 3);
    model.fit(features, labels);
    EXPECT_EQ(model.tree_count(), 45u); // rounds x classes
    EXPECT_LE(model.average_tree_depth(), 4.0);
    EXPECT_GT(model.average_tree_depth(), 0.0);
}

TEST(Gbt, EasyProblemsGrowShortTrees)
{
    // Mirrors the paper's observation (Sec. 4.1.2) that a nearly separable
    // problem yields very short trees (averages 1.3-1.7).
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    make_blobs(50, 2, 1, 0.1, features, labels); // trivially separable
    GbtClassifier model(GbtConfig{}, 2);
    model.fit(features, labels);
    EXPECT_LE(model.average_tree_depth(), 2.0);
}

TEST(Gbt, DeterministicFit)
{
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    make_blobs(30, 2, 3, 1.0, features, labels);
    GbtConfig config;
    config.num_rounds = 5;
    GbtClassifier a(config, 2);
    GbtClassifier b(config, 2);
    a.fit(features, labels);
    b.fit(features, labels);
    for (const auto& row : features) {
        EXPECT_EQ(a.predict_proba(row), b.predict_proba(row));
    }
}

TEST(Gbt, ValidatesInput)
{
    GbtClassifier model(GbtConfig{}, 3);
    EXPECT_THROW(model.fit({}, {}), std::invalid_argument);
    EXPECT_THROW(model.fit({{1.0f}}, {0, 1}), std::invalid_argument);
    EXPECT_THROW(model.fit({{1.0f}, {1.0f, 2.0f}}, {0, 1}), std::invalid_argument);
    EXPECT_THROW(model.fit({{1.0f}, {2.0f}}, {0, 7}), std::invalid_argument);
    EXPECT_THROW(GbtClassifier(GbtConfig{}, 1), std::invalid_argument);
    GbtConfig bad;
    bad.num_rounds = 0;
    EXPECT_THROW(GbtClassifier(bad, 2), std::invalid_argument);
}

TEST(Gbt, PredictValidatesFeatureSize)
{
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    make_blobs(20, 2, 3, 0.5, features, labels);
    GbtConfig config;
    config.num_rounds = 2;
    GbtClassifier model(config, 2);
    model.fit(features, labels);
    const std::vector<float> wrong_size{1.0f};
    EXPECT_THROW((void)model.predict(wrong_size), std::invalid_argument);
}

TEST(GbtTree, EmptyTreePredictsZero)
{
    const Tree tree;
    const std::vector<float> x{1.0f};
    EXPECT_FLOAT_EQ(tree.predict(x), 0.0f);
    EXPECT_EQ(tree.depth(), 0);
}

TEST(Gbt, TrainingPollsTheCancelToken)
{
    // The executor's watchdog cancels via this token; fit() must unwind at
    // its next poll instead of finishing the boosting schedule.
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    make_blobs(40, 3, 4, 0.5, features, labels);

    fptc::util::CancelToken token;
    token.cancel(fptc::util::CancelKind::timeout);
    GbtConfig config;
    config.cancel = &token;
    GbtClassifier model(config, 3);
    EXPECT_THROW(model.fit(features, labels), fptc::util::CancelledError);
}

TEST(Gbt, UntrippedTokenDoesNotDisturbTraining)
{
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    make_blobs(40, 2, 3, 0.5, features, labels);

    fptc::util::CancelToken token;
    GbtConfig cancellable;
    cancellable.num_rounds = 10;
    cancellable.cancel = &token;
    GbtConfig plain;
    plain.num_rounds = 10;

    GbtClassifier a(cancellable, 2);
    GbtClassifier b(plain, 2);
    a.fit(features, labels);
    b.fit(features, labels);
    // Polling is observation-only: the fitted model is bit-identical.
    for (const auto& sample : features) {
        EXPECT_EQ(a.predict(sample), b.predict(sample));
    }
}

} // namespace
