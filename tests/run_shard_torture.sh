#!/usr/bin/env bash
# Torture harness for sharded multi-process campaign execution.
#
# Runs a tiny table4 campaign (14 units) sequentially to establish a golden
# baseline, then asserts that sharded runs reproduce it exactly:
#
#   * FPTC_SHARDS=2 and FPTC_SHARDS=4 clean runs: stdout tables and every
#     CSV/table artifact byte-identical to the sequential run (only the
#     executor summary / per-run artifact lines may differ),
#   * crash-of-a-shard: FPTC_SHARDS=4 with FPTC_FAULT_KILL_SHARD=1:2 SIGKILLs
#     worker 1 after its 2nd unit, before the journal commit — a sibling must
#     steal the expired lease (FPTC_LEASE_TTL_S=2), redo the lost unit, and
#     the campaign must still end byte-identical to sequential,
#   * cooperative shutdown: a sequential campaign sent SIGTERM mid-run must
#     exit 128+15, journal a __shutdown__ record and flush a valid metrics
#     JSON (send-the-signal-then-inspect, no mocks),
#   * (full mode only) crash-of-the-coordinator: the whole process group of a
#     2-shard run is SIGKILLed mid-campaign; a relaunch with the same journal
#     family must absorb the orphaned shard journals and stale leases and
#     finish byte-identical to sequential.
#
# Also emits BENCH_shard_scaling.json (units/sec at 1, 2 and 4 shards, plus
# the host's nproc and 1-minute load so the rows can be interpreted) to
# ${FPTC_ARTIFACTS_DIR:-.}.  Scaling on a one-core CI box is not asserted —
# the rows are recorded for trend tracking (a warning flags the 1-core
# case), correctness is the gate.
#
# Usage, from the repo root (binary defaults to build/bench/table4_augmentations):
#
#   tests/run_shard_torture.sh [--quick] [path/to/table4_augmentations]
#
# --quick (wired as the ShardTortureQuick ctest) skips the coordinator-kill
# scenario; everything else runs in both modes.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
BIN=build/bench/table4_augmentations
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) BIN="$arg" ;;
    esac
done

if [ ! -x "$BIN" ]; then
    echo "run_shard_torture: bench binary '$BIN' not found (build the default preset first)" >&2
    exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/fptc_shard_torture.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

# Same tiny campaign as run_torture.sh: 7 augmentations x {32,64}, 1 split x
# 1 seed = 14 units on a shrunken dataset.
SCALE="FPTC_SPLITS=1 FPTC_SEEDS=1 FPTC_EPOCHS=1 FPTC_SAMPLES=0.1 FPTC_PER_CLASS=25"
UNITS=14
JOBS="${FPTC_JOBS:-$(nproc)}"
ARTIFACTS="table4_runs.csv table4_script.txt table4_human.txt table4_leftover.txt"
BENCH_OUT="${FPTC_ARTIFACTS_DIR:-.}/BENCH_shard_scaling.json"

now_ms() { date +%s%3N; }

run_campaign() {
    # $1 = work dir, $2.. = extra env (VAR=value) for this run
    dir="$1"; shift
    mkdir -p "$dir"
    env $SCALE FPTC_JOBS="$JOBS" \
        FPTC_JOURNAL="$dir/journal.jsonl" FPTC_ARTIFACTS_DIR="$dir" \
        "$@" "$BIN" >"$dir/stdout.txt" 2>"$dir/stderr.txt"
}

# Lines that legitimately differ between runs: the executor summary
# (executed vs resumed/adopted counts), the per-run artifact directory, and
# the fault-tolerance summary (printed only when a fault plan is armed).
filter_stdout() {
    grep -v -e '^executor\[' -e '^per-run artifact written to ' \
        -e '^fault tolerance:' "$1" > "$1.filtered"
}

check_identical() {
    # $1 = run dir, $2 = label.  stdout tables + artifacts vs golden.
    filter_stdout "$1/stdout.txt"
    if ! cmp -s "$GOLD/stdout.txt.filtered" "$1/stdout.txt.filtered"; then
        echo "run_shard_torture: FAIL: $2 stdout differs from sequential golden:" >&2
        diff "$GOLD/stdout.txt.filtered" "$1/stdout.txt.filtered" >&2 || true
        exit 1
    fi
    for artifact in $ARTIFACTS; do
        if ! cmp -s "$GOLD/$artifact" "$1/$artifact"; then
            echo "run_shard_torture: FAIL: $2 artifact $artifact differs from sequential golden" >&2
            exit 1
        fi
    done
}

check_family_collapsed() {
    # $1 = run dir, $2 = label.  After a coordinator finishes, the journal
    # family must be folded back: no shard journals, leases or lock left.
    for leftover in "$1"/journal.jsonl.shard[0-9] "$1"/journal.jsonl.leases \
                    "$1"/journal.jsonl.lock; do
        if [ -e "$leftover" ]; then
            echo "run_shard_torture: FAIL: $2 left $leftover behind after the merge" >&2
            exit 1
        fi
    done
}

# ---- golden sequential run (also the 1-shard scaling baseline) --------------
echo "run_shard_torture: sequential golden run ($UNITS units, $JOBS jobs)..."
GOLD="$WORK/golden"
T0=$(now_ms)
run_campaign "$GOLD"
SEQ_MS=$(( $(now_ms) - T0 ))
filter_stdout "$GOLD/stdout.txt"
for artifact in $ARTIFACTS; do
    if [ ! -s "$GOLD/$artifact" ]; then
        echo "run_shard_torture: FAIL: golden run produced no $artifact" >&2
        exit 1
    fi
done

# ---- clean sharded runs (2 and 4 shards) ------------------------------------
declare -A SHARD_MS
SHARD_MS[1]=$SEQ_MS
for shards in 2 4; do
    echo "run_shard_torture: clean FPTC_SHARDS=$shards run..."
    dir="$WORK/shards$shards"
    T0=$(now_ms)
    run_campaign "$dir" FPTC_SHARDS="$shards"
    SHARD_MS[$shards]=$(( $(now_ms) - T0 ))
    check_identical "$dir" "FPTC_SHARDS=$shards"
    check_family_collapsed "$dir" "FPTC_SHARDS=$shards"
    # Every worker's stdout capture must exist — proof the units really ran
    # in worker processes, not the coordinator's fallback pool.
    for i in $(seq 0 $((shards - 1))); do
        if [ ! -f "$dir/journal.jsonl.shard$i.out" ]; then
            echo "run_shard_torture: FAIL: no stdout capture for shard $i" >&2
            exit 1
        fi
    done
    echo "run_shard_torture: FPTC_SHARDS=$shards ok (byte-identical, ${SHARD_MS[$shards]} ms)"
done

# ---- crash-of-a-shard: SIGKILL worker 1 mid-unit, siblings must recover -----
echo "run_shard_torture: FPTC_SHARDS=4 with worker 1 SIGKILLed after its 2nd unit..."
dir="$WORK/killshard"
run_campaign "$dir" FPTC_SHARDS=4 FPTC_FAULT_KILL_SHARD=1:2 FPTC_LEASE_TTL_S=2
if ! grep -q 'killed by signal 9' "$dir/stderr.txt"; then
    echo "run_shard_torture: FAIL: kill-shard run never reported a SIGKILLed worker" >&2
    exit 1
fi
if ! grep -q 'stealing' "$dir/stderr.txt"; then
    echo "run_shard_torture: FAIL: no sibling stole the dead worker's expired lease" >&2
    exit 1
fi
check_identical "$dir" "kill-shard"
check_family_collapsed "$dir" "kill-shard"
echo "run_shard_torture: kill-shard ok (lease stolen, output byte-identical)"

# ---- cooperative shutdown: SIGTERM mid-campaign, then inspect ---------------
echo "run_shard_torture: SIGTERM mid-campaign (expect exit 143 + __shutdown__ record)..."
dir="$WORK/sigterm"
mkdir -p "$dir"
env $SCALE FPTC_JOBS="$JOBS" \
    FPTC_JOURNAL="$dir/journal.jsonl" FPTC_ARTIFACTS_DIR="$dir" \
    FPTC_METRICS="$dir/metrics.json" \
    "$BIN" >"$dir/stdout.txt" 2>"$dir/stderr.txt" &
PID=$!
# Wait until real progress is journaled, then interrupt.
for _ in $(seq 1 300); do
    journaled=$(grep -c '^{' "$dir/journal.jsonl" 2>/dev/null || true)
    if [ "${journaled:-0}" -ge 1 ]; then
        break
    fi
    sleep 0.1
done
kill -TERM "$PID" 2>/dev/null || true
status=0
wait "$PID" || status=$?
if [ "$status" != 143 ]; then
    echo "run_shard_torture: FAIL: SIGTERMed run exited $status (expected 143 = 128+SIGTERM)" >&2
    exit 1
fi
if ! grep -q '"key":"table4|__shutdown__"' "$dir/journal.jsonl"; then
    echo "run_shard_torture: FAIL: no __shutdown__ record in the journal after SIGTERM" >&2
    exit 1
fi
if [ ! -s "$dir/metrics.json" ]; then
    echo "run_shard_torture: FAIL: SIGTERMed run flushed no metrics.json" >&2
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$dir/metrics.json" || {
        echo "run_shard_torture: FAIL: metrics.json is not valid JSON after SIGTERM" >&2
        exit 1
    }
fi
echo "run_shard_torture: shutdown ok (exit 143, journal + telemetry flushed)"

# ---- full mode: crash-of-the-coordinator ------------------------------------
if [ "$QUICK" = 0 ]; then
    echo "run_shard_torture: SIGKILLing a 2-shard fleet's whole process group..."
    dir="$WORK/killcoord"
    mkdir -p "$dir"
    setsid env $SCALE FPTC_JOBS="$JOBS" FPTC_SHARDS=2 FPTC_LEASE_TTL_S=2 \
        FPTC_JOURNAL="$dir/journal.jsonl" FPTC_ARTIFACTS_DIR="$dir" \
        "$BIN" >"$dir/stdout.txt" 2>"$dir/stderr.txt" &
    PID=$!
    for _ in $(seq 1 300); do
        count=0
        for shard_journal in "$dir"/journal.jsonl.shard[0-9]; do
            [ -f "$shard_journal" ] || continue
            count=$((count + $(grep -c '^{' "$shard_journal" || true)))
        done
        if [ "$count" -ge 2 ]; then
            break
        fi
        sleep 0.1
    done
    # setsid gave the coordinator its own process group (PGID == PID):
    # nuke coordinator and workers at once, like a container OOM kill.
    kill -9 -- "-$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    # Relaunch the coordinator over the orphaned family: workers must replay
    # the dead fleet's shard journals, re-claim or steal its stale leases
    # (TTL 2s), finish the remaining units, and the merge must fold the
    # family away and reproduce the golden output.
    run_campaign "$dir" FPTC_SHARDS=2 FPTC_LEASE_TTL_S=2
    check_identical "$dir" "coordinator-kill resume"
    check_family_collapsed "$dir" "coordinator-kill resume"
    echo "run_shard_torture: coordinator-kill ok (resume byte-identical)"
fi

# ---- scaling record ---------------------------------------------------------
# Shard speedup is only meaningful relative to the cores actually available,
# so the record carries the host's parallelism alongside the timings.
NPROC=$(nproc)
LOAD1=$(awk '{print $1}' /proc/loadavg 2>/dev/null || echo 0)
if [ "$NPROC" -le 1 ]; then
    echo "run_shard_torture: WARNING: single-core host (nproc=$NPROC, load1=$LOAD1):" \
         "shard wall-times measure scheduling overhead, not scaling — treat the" \
         "units_per_s rows as correctness artifacts only" >&2
fi
mkdir -p "$(dirname "$BENCH_OUT")"
{
    printf '{\n  "benchmark": "shard_scaling",\n  "units": %d,\n  "jobs": %s,\n' \
        "$UNITS" "$JOBS"
    printf '  "host": {"nproc": %s, "load1": %s},\n  "rows": [\n' "$NPROC" "$LOAD1"
    sep=""
    for shards in 1 2 4; do
        ms=${SHARD_MS[$shards]}
        ups=$(awk -v u="$UNITS" -v ms="$ms" 'BEGIN { printf "%.3f", (ms > 0) ? u * 1000.0 / ms : 0 }')
        printf '%s    {"shards": %d, "wall_ms": %d, "units_per_s": %s}' \
            "$sep" "$shards" "$ms" "$ups"
        sep=$',\n'
    done
    printf '\n  ]\n}\n'
} > "$BENCH_OUT"
echo "run_shard_torture: wrote $BENCH_OUT"

echo "run_shard_torture: PASS"
