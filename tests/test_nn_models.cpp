// Tests of the model factories against the paper's App. C listings —
// including the exact trainable-parameter counts printed there — plus
// optimizers and weight serialization.
#include "fptc/nn/loss.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/nn/optimizer.hpp"
#include "fptc/nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace fptc::nn;

TEST(Models, SupervisedParameterCountMatchesListing1)
{
    // App. C listing 1/2: "Total params: 61,281" for flowpic_dim 32,
    // 5 classes (with or without dropout — dropout has no parameters).
    for (const bool with_dropout : {true, false}) {
        ModelConfig config;
        config.flowpic_dim = 32;
        config.num_classes = 5;
        config.with_dropout = with_dropout;
        auto network = make_supervised_network(config);
        EXPECT_EQ(network.parameter_count(), 61281u) << "dropout=" << with_dropout;
    }
}

TEST(Models, SimClrParameterCountsMatchListings3And4)
{
    // Listing 3 (projection 30): 68,842.  Listing 4 (projection 84): 75,376.
    ModelConfig config;
    config.flowpic_dim = 32;
    config.with_dropout = false;
    config.projection_dim = 30;
    auto small = make_simclr_network(config);
    EXPECT_EQ(small.trunk.parameter_count() + small.projection.parameter_count(), 68842u);

    config.projection_dim = 84;
    auto large = make_simclr_network(config);
    EXPECT_EQ(large.trunk.parameter_count() + large.projection.parameter_count(), 75376u);
}

TEST(Models, FinetuneHeadMatchesListing5)
{
    // Listing 5's trainable classifier: Linear(120 -> 5) = 605 params.
    ModelConfig config;
    config.num_classes = 5;
    auto head = make_finetune_head(config);
    EXPECT_EQ(head.parameter_count(), 605u);
}

TEST(Models, ForwardShapes)
{
    for (const std::size_t dim : {std::size_t{32}, std::size_t{64}}) {
        ModelConfig config;
        config.flowpic_dim = dim;
        config.num_classes = 5;
        auto network = make_supervised_network(config);
        const auto y = network.forward(Tensor({3, 1, dim, dim}), false);
        EXPECT_EQ(y.shape(), (Shape{3, 5})) << "dim=" << dim;
    }
}

TEST(Models, LargeResolutionUsesEffectiveDim)
{
    EXPECT_EQ(effective_input_dim(32), 32u);
    EXPECT_EQ(effective_input_dim(64), 64u);
    EXPECT_EQ(effective_input_dim(256), 64u);
    EXPECT_EQ(effective_input_dim(1500), 65u); // 1500 / (1500/64 = 23)

    ModelConfig config;
    config.flowpic_dim = 1500;
    config.num_classes = 5;
    auto network = make_supervised_network(config);
    // The "full" architecture takes the pre-pooled 65x65 input.
    const auto y = network.forward(Tensor({2, 1, 65, 65}), false);
    EXPECT_EQ(y.shape(), (Shape{2, 5}));
}

TEST(Models, SimClrForwardAndEmbed)
{
    ModelConfig config;
    config.flowpic_dim = 32;
    config.projection_dim = 30;
    auto network = make_simclr_network(config);
    const Tensor x({4, 1, 32, 32});
    const auto z = network.forward(x, false);
    EXPECT_EQ(z.shape(), (Shape{4, 30}));
    const auto h = network.embed(x);
    EXPECT_EQ(h.shape(), (Shape{4, kRepresentationDim}));
}

TEST(Models, SeedChangesInitialization)
{
    ModelConfig a;
    a.seed = 1;
    ModelConfig b;
    b.seed = 2;
    auto net_a = make_supervised_network(a);
    auto net_b = make_supervised_network(b);
    const auto pa = net_a.parameters();
    const auto pb = net_b.parameters();
    bool any_different = false;
    for (std::size_t i = 0; i < pa.front()->value.size(); ++i) {
        any_different |= pa.front()->value[i] != pb.front()->value[i];
    }
    EXPECT_TRUE(any_different);
}

TEST(Optimizer, SgdStepMovesAgainstGradient)
{
    Parameter p(Tensor({2}, {1.0f, -1.0f}));
    p.grad = Tensor({2}, {0.5f, -0.5f});
    Sgd sgd({&p}, 0.1);
    sgd.step();
    EXPECT_FLOAT_EQ(p.value[0], 0.95f);
    EXPECT_FLOAT_EQ(p.value[1], -0.95f);
    sgd.zero_grad();
    EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(Optimizer, SgdMomentumAccumulates)
{
    Parameter p(Tensor({1}, {0.0f}));
    Sgd sgd({&p}, 0.1, 0.9);
    p.grad = Tensor({1}, {1.0f});
    sgd.step(); // v = 1, x = -0.1
    sgd.step(); // v = 1.9, x = -0.29
    EXPECT_NEAR(p.value[0], -0.29f, 1e-6);
}

TEST(Optimizer, AdamConvergesOnQuadratic)
{
    // Minimize (x - 3)^2 via Adam.
    Parameter p(Tensor({1}, {0.0f}));
    Adam adam({&p}, 0.1);
    for (int i = 0; i < 300; ++i) {
        p.grad = Tensor({1}, {2.0f * (p.value[0] - 3.0f)});
        adam.step();
    }
    EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Optimizer, RejectsNullParameters)
{
    EXPECT_THROW(Sgd({nullptr}, 0.1), std::invalid_argument);
}

TEST(Serialize, RoundTripPreservesOutputs)
{
    ModelConfig config;
    config.flowpic_dim = 32;
    config.seed = 5;
    auto original = make_supervised_network(config);
    fptc::util::Rng rng(6);
    const auto x = Tensor::randn({2, 1, 32, 32}, rng, 0.5f);
    const auto y_before = original.forward(x, false);

    std::stringstream buffer;
    save_parameters(original.parameters(), buffer);

    ModelConfig other = config;
    other.seed = 999; // different init, then overwritten by load
    auto restored = make_supervised_network(other);
    load_parameters(restored.parameters(), buffer);
    const auto y_after = restored.forward(x, false);

    ASSERT_EQ(y_before.size(), y_after.size());
    for (std::size_t i = 0; i < y_before.size(); ++i) {
        EXPECT_FLOAT_EQ(y_before[i], y_after[i]);
    }
}

TEST(Serialize, DetectsArchitectureMismatch)
{
    ModelConfig small;
    small.flowpic_dim = 32;
    auto a = make_supervised_network(small);
    std::stringstream buffer;
    save_parameters(a.parameters(), buffer);

    ModelConfig big = small;
    big.flowpic_dim = 64; // different flatten width
    auto b = make_supervised_network(big);
    EXPECT_THROW(load_parameters(b.parameters(), buffer), std::runtime_error);
}

TEST(Serialize, DetectsTruncation)
{
    ModelConfig config;
    auto network = make_supervised_network(config);
    std::stringstream buffer;
    save_parameters(network.parameters(), buffer);
    const auto full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(load_parameters(network.parameters(), truncated), std::runtime_error);
}

TEST(Models, RejectsTooSmallInput)
{
    ModelConfig config;
    config.flowpic_dim = 8; // too small for two 5x5 conv + pool stages
    EXPECT_THROW(make_supervised_network(config), std::invalid_argument);
}

} // namespace
