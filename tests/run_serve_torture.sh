#!/usr/bin/env bash
# Chaos torture harness for the streaming classification service.
#
# Drives the serve_throughput load generator through its fault classes and
# asserts the overload-resilience contract end to end (real process, real
# faults, no mocks):
#
#   * nominal: every flow classified, no sheds, accounting balanced,
#     BENCH_serve.json emitted with nonzero flows/sec and a finite p99,
#   * backend stall (FPTC_FAULT_SERVE_STALL_BACKEND): stalled batches are
#     cut by the batch deadline as typed `deadline` sheds, the circuit
#     breaker trips down the degradation ladder AND recovers via half-open
#     probes once the stalls stop,
#   * packet mangling (FPTC_FAULT_SERVE_MANGLE_PACKETS): every corrupted
#     event is quarantined at ingest validation — the binary cross-checks
#     quarantined == the stream's mangle oracle exactly,
#   * microbursts into a tight flow table (FPTC_FAULT_SERVE_BURST +
#     FPTC_SERVE_MEM_MB=1 + a window longer than the stream): LRU eviction
#     fires and every evicted flow is a typed `mem_budget` shed,
#   * combined chaos: all three fault classes at once — the service must
#     still exit 0 with every dropped flow typed and every MemBudget byte
#     credited back (serve_in_use_bytes=0),
#   * flight recorder: a SIGKILLed worker with FPTC_SERVE_POSTMORTEM set
#     must leave a sealable mmap ring that the supervisor turns into a
#     CRC-valid postmortem — fptc_flightrec must decode it and its
#     last_watermark (the snapshot-marker event) must equal the watermark
#     the restarted generation resumed from (BENCH_serve.json recovery),
#   * live status: a nominal run with FPTC_SERVE_STATUS must export an
#     atomically-published JSON status file that fptc_servestat renders
#     (pid, tier, flows, per-stage latency lines).
#
# Every scenario asserts the run never aborts (exit 0, SERVE_OK printed)
# and the flow-accounting invariant held (accounted=1 in the summary line).
#
# Usage, from the repo root (binary defaults to build/bench/serve_throughput):
#
#   tests/run_serve_torture.sh [--quick] [--drift] [path/to/serve_throughput] \
#       [path/to/micro_benchmarks]
#
# When the optional micro_benchmarks binary is given, the fault suite also
# gates the *disabled* flight-recorder hot path within 2% (+2 ns slack) of
# the span-free baseline workload (same idiom as run_telemetry.sh).
#
# --quick (wired as the ServeTortureQuick ctest) shrinks the stream and
# skips the combined-chaos seed sweep; every scenario class still runs.
#
# --drift (wired as the ServeDriftQuick ctest) runs the drift/model-
# lifecycle suite INSTEAD of the fault suite:
#   * drift_nominal: drift monitor armed on a stationary stream — zero
#     alarms (the no-false-alarm side of the detector contract),
#   * drift_alarm: scripted step shift (FPTC_DRIFT_MODE=step) — the monitor
#     must alarm after the shift and the breaker ladder must respond,
#   * unknown_flood: unknown-app injection + open-set threshold — >= 90% of
#     unknown-truth flows routed to the typed `unknown` outcome, never
#     silently misclassified,
#   * canary_rollback / canary_reload: a corrupt (NaN-poisoned, CRC-valid)
#     candidate is rejected with a counted rollback and zero generation
#     bump; a good candidate is accepted exactly once,
#   * drift_kill: unknown flood + supervised SIGKILL — the extended
#     invariant (ingested == classified + unknown + sheds) holds across the
#     snapshot restore.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
DRIFT=0
BIN=build/bench/serve_throughput
MICRO=""
NPOS=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        --drift) DRIFT=1 ;;
        *)
            if [ "$NPOS" -eq 0 ]; then BIN="$arg"; else MICRO="$arg"; fi
            NPOS=$((NPOS + 1))
            ;;
    esac
done

if [ ! -x "$BIN" ]; then
    echo "run_serve_torture: bench binary '$BIN' not found (build the default preset first)" >&2
    exit 1
fi
BIN=$(readlink -f "$BIN")
# The introspection tools live next to the bench tree: build/bench -> build/tools.
TOOLS=$(dirname "$(dirname "$BIN")")/tools

WORK=$(mktemp -d "${TMPDIR:-/tmp}/fptc_serve_torture.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

if [ "$QUICK" = 1 ]; then
    FLOWS=120
else
    FLOWS=300
fi
BENCH_OUT="${FPTC_ARTIFACTS_DIR:-.}/BENCH_serve.json"

run_serve() {
    # $1 = scenario name, $2.. = extra env for this run.  The binary exits
    # nonzero on any broken invariant (accounting, MemBudget balance,
    # quarantine oracle, non-finite p99), so a plain status check is most of
    # the gate; BENCH_serve.json lands in the scenario dir.
    scenario="$1"; shift
    dir="$WORK/$scenario"
    mkdir -p "$dir"
    if ! (cd "$dir" && env FPTC_SERVE_FLOWS="$FLOWS" "$@" "$BIN" \
            >"$dir/stdout.txt" 2>"$dir/stderr.txt"); then
        echo "run_serve_torture: FAIL: scenario '$scenario' exited nonzero:" >&2
        tail -20 "$dir/stdout.txt" "$dir/stderr.txt" >&2 || true
        exit 1
    fi
    if ! grep -q '^SERVE_OK$' "$dir/stdout.txt"; then
        echo "run_serve_torture: FAIL: scenario '$scenario' printed no SERVE_OK" >&2
        exit 1
    fi
    if ! grep -q ' accounted=1' "$dir/stdout.txt"; then
        echo "run_serve_torture: FAIL: scenario '$scenario' accounting did not balance:" >&2
        grep '^serve:' "$dir/stdout.txt" >&2 || true
        exit 1
    fi
    if ! grep -q '^serve_in_use_bytes=0$' "$dir/stdout.txt"; then
        echo "run_serve_torture: FAIL: scenario '$scenario' leaked MemBudget bytes:" >&2
        grep '^serve_in_use_bytes=' "$dir/stdout.txt" >&2 || true
        exit 1
    fi
    if [ ! -s "$dir/BENCH_serve.json" ]; then
        echo "run_serve_torture: FAIL: scenario '$scenario' emitted no BENCH_serve.json" >&2
        exit 1
    fi
}

# summary_field <dir> <key>: pull one counter off the greppable summary line.
summary_field() {
    sed -n "s/.*[[:space:]]$2=\([0-9][0-9]*\).*/\1/p" "$1/stdout.txt" | head -1
}

require_pos() {
    # $1 = scenario, $2 = key, $3 = value
    if [ -z "$3" ] || [ "$3" -eq 0 ]; then
        echo "run_serve_torture: FAIL: scenario '$1' expected $2 > 0, got '${3:-missing}':" >&2
        grep '^serve:' "$WORK/$1/stdout.txt" >&2 || true
        exit 1
    fi
}

require_zero() {
    if [ -z "$3" ] || [ "$3" -ne 0 ]; then
        echo "run_serve_torture: FAIL: scenario '$1' expected $2 == 0, got '${3:-missing}':" >&2
        grep '^serve:' "$WORK/$1/stdout.txt" >&2 || true
        exit 1
    fi
}

# json_field <dir> <key>: pull one numeric field out of BENCH_serve.json.
json_field() {
    sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1/BENCH_serve.json" | head -1
}

# ---- drift / model-lifecycle suite (--drift) --------------------------------
if [ "$DRIFT" = 1 ]; then
    # The detector operating point (lambda/delta/rate threshold) is tuned
    # against this exact deterministic stream: seed 1, 300 flows.  Keep the
    # flow count pinned even under --quick — the env list's *last*
    # FPTC_SERVE_FLOWS assignment wins over run_serve's default.
    DRIFT_ENV="FPTC_SERVE_FLOWS=300 FPTC_SERVE_SEED=1 FPTC_SERVE_READY_DEPTH=512
               FPTC_SERVE_DRIFT_LAMBDA=25 FPTC_SERVE_DRIFT_DELTA=0.1
               FPTC_SERVE_DRIFT_MIN=48
               FPTC_SERVE_DRIFT_RATE_THRESH=0.6 FPTC_SERVE_DRIFT_RATE_WINDOW=64"

    echo "run_serve_torture: drift monitor armed, stationary stream (no false alarms)..."
    run_serve drift_nominal $DRIFT_ENV
    require_zero drift_nominal drift_alarms \
        "$(summary_field "$WORK/drift_nominal" drift_alarms)"
    echo "run_serve_torture: drift_nominal ok (0 alarms on a stationary stream)"

    echo "run_serve_torture: scripted step shift at 50% of the arrival window..."
    run_serve drift_alarm $DRIFT_ENV \
        FPTC_DRIFT_MODE=step FPTC_DRIFT_AT=0.5 FPTC_DRIFT_MAGNITUDE=1.0
    require_pos drift_alarm drift_alarms "$(summary_field "$WORK/drift_alarm" drift_alarms)"
    # The breaker-ladder response: at least one drift-driven trip.
    require_pos drift_alarm trips "$(summary_field "$WORK/drift_alarm" trips)"
    first=$(json_field "$WORK/drift_alarm" first_alarm_sample)
    if [ -z "$first" ] || [ "$first" -lt 48 ]; then
        echo "run_serve_torture: FAIL: drift alarm before the warmup gate (first=$first)" >&2
        exit 1
    fi
    echo "run_serve_torture: drift_alarm ok" \
         "(alarms=$(summary_field "$WORK/drift_alarm" drift_alarms), first at sample $first)"

    echo "run_serve_torture: unknown-app flood against the open-set threshold..."
    run_serve unknown_flood $DRIFT_ENV \
        FPTC_DRIFT_UNKNOWN=0.5 FPTC_DRIFT_AT=0 FPTC_SERVE_UNKNOWN_THRESH=0.9
    total=$(json_field "$WORK/unknown_flood" unknown_truth_total)
    rejected=$(json_field "$WORK/unknown_flood" unknown_truth_rejected)
    require_pos unknown_flood unknown_truth "$total"
    if ! awk -v r="${rejected:-0}" -v t="${total:-1}" 'BEGIN { exit (r >= 0.9 * t) ? 0 : 1 }'; then
        echo "run_serve_torture: FAIL: unknown flood leaked past the threshold" \
             "(rejected=$rejected of $total)" >&2
        exit 1
    fi
    echo "run_serve_torture: unknown_flood ok ($rejected/$total unknown-truth flows rejected)"

    echo "run_serve_torture: corrupt reload candidate (NaN weight, valid CRC)..."
    rollback_dir="$WORK/canary_rollback"
    mkdir -p "$rollback_dir"
    run_serve canary_rollback $DRIFT_ENV \
        FPTC_SERVE_RELOAD="$rollback_dir/candidate.ckpt" FPTC_SERVE_RELOAD_EVERY=4 \
        FPTC_SERVE_SELFTEST_CANDIDATE=corrupt
    require_pos canary_rollback rollbacks "$(summary_field "$WORK/canary_rollback" rollbacks)"
    require_zero canary_rollback reloads "$(summary_field "$WORK/canary_rollback" reloads)"
    require_zero canary_rollback model_generation \
        "$(summary_field "$WORK/canary_rollback" model_generation)"
    echo "run_serve_torture: canary_rollback ok (corrupt candidate rejected," \
         "incumbent kept serving)"

    echo "run_serve_torture: good reload candidate (identical copy of the incumbent)..."
    reload_dir="$WORK/canary_reload"
    mkdir -p "$reload_dir"
    run_serve canary_reload $DRIFT_ENV \
        FPTC_SERVE_RELOAD="$reload_dir/candidate.ckpt" FPTC_SERVE_RELOAD_EVERY=4 \
        FPTC_SERVE_SELFTEST_CANDIDATE=good
    require_pos canary_reload reloads "$(summary_field "$WORK/canary_reload" reloads)"
    require_zero canary_reload rollbacks "$(summary_field "$WORK/canary_reload" rollbacks)"
    require_pos canary_reload model_generation \
        "$(summary_field "$WORK/canary_reload" model_generation)"
    echo "run_serve_torture: canary_reload ok (accepted once," \
         "model_generation=$(summary_field "$WORK/canary_reload" model_generation))"

    echo "run_serve_torture: unknown flood + supervised SIGKILL (invariant across restore)..."
    dk_dir="$WORK/drift_kill"
    mkdir -p "$dk_dir"
    run_serve drift_kill $DRIFT_ENV \
        FPTC_DRIFT_UNKNOWN=0.5 FPTC_DRIFT_AT=0 FPTC_SERVE_UNKNOWN_THRESH=0.9 \
        FPTC_SERVE_SUPERVISE=1 \
        FPTC_SERVE_SNAPSHOT="$dk_dir/snapshot.bin" FPTC_SERVE_SNAPSHOT_EVERY=400 \
        FPTC_FAULT_KILL_SERVE=1 FPTC_SERVE_MAX_RESTARTS=3 FPTC_SERVE_BACKOFF_MS=50
    if ! grep -q 'SUPERVISOR_OK restarts=1 degraded=0' "$dk_dir/stderr.txt"; then
        echo "run_serve_torture: FAIL: drift_kill missing SUPERVISOR_OK restarts=1:" >&2
        tail -10 "$dk_dir/stderr.txt" >&2 || true
        exit 1
    fi
    require_pos drift_kill restored "$(summary_field "$WORK/drift_kill" restored)"
    require_pos drift_kill unknown "$(summary_field "$WORK/drift_kill" unknown)"
    echo "run_serve_torture: drift_kill ok (restored, accounting balanced with" \
         "unknown=$(summary_field "$WORK/drift_kill" unknown))"

    echo "run_serve_torture: PASS (drift suite)"
    exit 0
fi

# ---- nominal: full service, no faults, nothing shed -------------------------
# The zero-shed assertion must test the *logic* (no faults -> no spurious
# sheds), not the machine: a sanitizer build classifies ~15x slower, and
# with the default 64-slot ready queue that alone fills the queue and
# forces queue_full sheds.  Provision the queue past the flow count so a
# slow classifier can only ever delay, never shed.
echo "run_serve_torture: nominal run ($FLOWS flows)..."
run_serve nominal FPTC_SERVE_READY_DEPTH=512
ingested=$(summary_field "$WORK/nominal" ingested)
classified=$(summary_field "$WORK/nominal" classified)
require_pos nominal ingested "$ingested"
if [ "$ingested" != "$classified" ]; then
    echo "run_serve_torture: FAIL: nominal run shed flows (ingested=$ingested classified=$classified)" >&2
    exit 1
fi
require_zero nominal quarantined "$(summary_field "$WORK/nominal" quarantined)"
# The nominal run's BENCH_serve.json is the published perf record.
mkdir -p "$(dirname "$BENCH_OUT")"
cp "$WORK/nominal/BENCH_serve.json" "$BENCH_OUT"
flows_per_sec=$(sed -n 's/.*"flows_per_sec": \([0-9.]*\).*/\1/p' "$BENCH_OUT")
if ! awk -v f="${flows_per_sec:-0}" 'BEGIN { exit (f > 0) ? 0 : 1 }'; then
    echo "run_serve_torture: FAIL: BENCH_serve.json flows_per_sec not positive ('$flows_per_sec')" >&2
    exit 1
fi
echo "run_serve_torture: nominal ok ($classified/$ingested classified, $flows_per_sec flows/sec)"

# ---- backend stall: deadline sheds + breaker trip AND recovery --------------
echo "run_serve_torture: backend stall (first 3 batches wedge, 100 ms deadline)..."
run_serve stall FPTC_FAULT_SERVE_STALL_BACKEND=3 \
    FPTC_SERVE_DEADLINE_MS=100 FPTC_SERVE_BREAKER_COOLDOWN=2
require_pos stall shed_deadline "$(summary_field "$WORK/stall" shed_deadline)"
require_pos stall trips "$(summary_field "$WORK/stall" trips)"
require_pos stall recoveries "$(summary_field "$WORK/stall" recoveries)"
echo "run_serve_torture: stall ok (trips=$(summary_field "$WORK/stall" trips)," \
     "recoveries=$(summary_field "$WORK/stall" recoveries)," \
     "shed_deadline=$(summary_field "$WORK/stall" shed_deadline))"

# ---- packet mangling: quarantine every corrupted event ----------------------
echo "run_serve_torture: mangling ~10% of packet events..."
run_serve mangle FPTC_FAULT_SERVE_MANGLE_PACKETS=10
require_pos mangle quarantined "$(summary_field "$WORK/mangle" quarantined)"
# quarantined == mangled oracle is asserted inside the binary (SERVE_OK);
# double-check the json agrees for belt and braces.
q=$(sed -n 's/.*"events_quarantined": \([0-9]*\).*/\1/p' "$WORK/mangle/BENCH_serve.json")
m=$(sed -n 's/.*"events_mangled": \([0-9]*\).*/\1/p' "$WORK/mangle/BENCH_serve.json")
if [ "$q" != "$m" ]; then
    echo "run_serve_torture: FAIL: quarantined=$q != mangled=$m in BENCH_serve.json" >&2
    exit 1
fi
echo "run_serve_torture: mangle ok ($q events quarantined, oracle exact)"

# ---- microburst into a tight flow table: typed mem_budget sheds -------------
echo "run_serve_torture: bursts into a 1 MB flow table (window pinned open)..."
run_serve burst FPTC_FAULT_SERVE_BURST=64 \
    FPTC_SERVE_MEM_MB=1 FPTC_SERVE_WINDOW_S=1000
require_pos burst shed_mem_budget "$(summary_field "$WORK/burst" shed_mem_budget)"
echo "run_serve_torture: burst ok (shed_mem_budget=$(summary_field "$WORK/burst" shed_mem_budget))"

# ---- hard SLO, nominal load: latency target met ----------------------------
# This scenario pins the no-false-positive side of the SLO machinery
# (violations stay zero, compliance == 1); slo_overload below pins the
# positive side.  The target must be generous relative to the *build*: a
# tsan classifier legitimately queues flows for tens of seconds, so a
# wall-clock target tight enough to be interesting on -O2 would assert
# machine speed, not admission logic.
echo "run_serve_torture: nominal run under a generous 60 s SLO..."
run_serve slo_nominal FPTC_SERVE_SLO_MS=60000 FPTC_SERVE_READY_DEPTH=512
require_zero slo_nominal slo_violations "$(summary_field "$WORK/slo_nominal" slo_violations)"
require_zero slo_nominal shed_slo "$(summary_field "$WORK/slo_nominal" shed_slo)"
compliance=$(sed -n 's/.*"compliance": \([0-9.]*\).*/\1/p' "$WORK/slo_nominal/BENCH_serve.json")
if ! awk -v c="${compliance:-0}" 'BEGIN { exit (c == 1) ? 0 : 1 }'; then
    echo "run_serve_torture: FAIL: nominal SLO compliance != 1 ('$compliance')" >&2
    exit 1
fi
echo "run_serve_torture: slo_nominal ok (compliance=$compliance)"

# ---- hard SLO under overload: CoDel sheds ahead of the breaker --------------
echo "run_serve_torture: 20 ms SLO while the backend wedges (6 batches)..."
run_serve slo_overload FPTC_FAULT_SERVE_STALL_BACKEND=6 \
    FPTC_SERVE_DEADLINE_MS=100 FPTC_SERVE_SLO_MS=20 FPTC_SERVE_BREAKER_COOLDOWN=2
require_pos slo_overload slo_violations "$(summary_field "$WORK/slo_overload" slo_violations)"
require_pos slo_overload shed_slo "$(summary_field "$WORK/slo_overload" shed_slo)"
echo "run_serve_torture: slo_overload ok" \
     "(violations=$(summary_field "$WORK/slo_overload" slo_violations)," \
     "shed_slo=$(summary_field "$WORK/slo_overload" shed_slo))"

# ---- supervised SIGKILL: restart from the durable snapshot ------------------
echo "run_serve_torture: SIGKILL the worker after its first snapshot commit..."
kill_dir="$WORK/kill"
mkdir -p "$kill_dir"
run_serve kill FPTC_SERVE_SUPERVISE=1 \
    FPTC_SERVE_SNAPSHOT="$kill_dir/snapshot.bin" FPTC_SERVE_SNAPSHOT_EVERY=400 \
    FPTC_FAULT_KILL_SERVE=1 FPTC_SERVE_MAX_RESTARTS=3 FPTC_SERVE_BACKOFF_MS=50
if ! grep -q 'SUPERVISOR_OK restarts=1 degraded=0' "$kill_dir/stderr.txt"; then
    echo "run_serve_torture: FAIL: kill scenario missing SUPERVISOR_OK restarts=1:" >&2
    tail -10 "$kill_dir/stderr.txt" >&2 || true
    exit 1
fi
require_pos kill generation "$(summary_field "$WORK/kill" generation)"
require_pos kill restored "$(summary_field "$WORK/kill" restored)"
if [ -e "$kill_dir/snapshot.bin" ]; then
    echo "run_serve_torture: FAIL: kill scenario left its snapshot behind after a clean finish" >&2
    exit 1
fi
echo "run_serve_torture: kill ok (restarted once, resumed from snapshot," \
     "restart_loss=$(summary_field "$WORK/kill" shed_restart_loss))"

# ---- wedged classifier: watchdog hang-exit + supervised restart -------------
# The stall budget must sit well above one legitimate classify batch on the
# slowest build we gate (tsan runs the CNN ~15x slower and the classifier
# beats once per batch): a budget a fast machine would pick (~3 s) makes
# the *restarted* healthy generation hang-exit too, and the restarts=1
# assertion below then fails on machine speed rather than logic.
echo "run_serve_torture: wedge the classifier thread (watchdog stall budget 10 s)..."
hang_dir="$WORK/hang"
mkdir -p "$hang_dir"
run_serve hang FPTC_SERVE_SUPERVISE=1 \
    FPTC_SERVE_SNAPSHOT="$hang_dir/snapshot.bin" FPTC_SERVE_SNAPSHOT_EVERY=400 \
    FPTC_FAULT_SERVE_HANG=2 FPTC_SERVE_HANG_S=10 \
    FPTC_SERVE_MAX_RESTARTS=3 FPTC_SERVE_BACKOFF_MS=50
if ! grep -q 'SUPERVISOR_OK restarts=1 degraded=0' "$hang_dir/stderr.txt"; then
    echo "run_serve_torture: FAIL: hang scenario missing SUPERVISOR_OK restarts=1:" >&2
    tail -10 "$hang_dir/stderr.txt" >&2 || true
    exit 1
fi
if ! grep -q 'watchdog' "$hang_dir/stderr.txt"; then
    echo "run_serve_torture: FAIL: hang scenario has no watchdog stall report" >&2
    exit 1
fi
require_pos hang generation "$(summary_field "$WORK/hang" generation)"
echo "run_serve_torture: hang ok (watchdog hang-exit, restarted once," \
     "generation=$(summary_field "$WORK/hang" generation))"

# ---- flight recorder: SIGKILL -> sealed postmortem, decodable timeline ------
# FPTC_SERVE_POSTMORTEM arms the flight recorder with a file-backed mmap
# ring; when the supervisor reaps the SIGKILLed worker it seals that ring
# into a CRC-checked postmortem.  fptc_flightrec must decode it, and the
# last snapshot-marker event it recorded (last_watermark) must equal the
# watermark the restarted generation restored from — the consistent-cut
# contract between the recorder and the durable snapshot.
echo "run_serve_torture: SIGKILL with the flight recorder armed (postmortem seal)..."
pm_dir="$WORK/flightrec_kill"
mkdir -p "$pm_dir"
run_serve flightrec_kill FPTC_SERVE_SUPERVISE=1 \
    FPTC_SERVE_SNAPSHOT="$pm_dir/snapshot.bin" FPTC_SERVE_SNAPSHOT_EVERY=400 \
    FPTC_SERVE_POSTMORTEM="$pm_dir/postmortem.bin" \
    FPTC_FAULT_KILL_SERVE=1 FPTC_SERVE_MAX_RESTARTS=3 FPTC_SERVE_BACKOFF_MS=50
if ! grep -q 'SUPERVISOR_OK restarts=1 degraded=0' "$pm_dir/stderr.txt"; then
    echo "run_serve_torture: FAIL: flightrec_kill missing SUPERVISOR_OK restarts=1:" >&2
    tail -10 "$pm_dir/stderr.txt" >&2 || true
    exit 1
fi
if [ ! -s "$pm_dir/postmortem.bin" ]; then
    echo "run_serve_torture: FAIL: flightrec_kill left no postmortem file" >&2
    exit 1
fi
if [ ! -x "$TOOLS/fptc_flightrec" ]; then
    echo "run_serve_torture: FAIL: fptc_flightrec not built at $TOOLS/fptc_flightrec" >&2
    exit 1
fi
if ! "$TOOLS/fptc_flightrec" "$pm_dir/postmortem.bin" >"$pm_dir/flightrec.txt" 2>&1; then
    echo "run_serve_torture: FAIL: fptc_flightrec refused the sealed postmortem:" >&2
    tail -5 "$pm_dir/flightrec.txt" >&2 || true
    exit 1
fi
if ! grep -q '^postmortem: reason=sigkill_reap' "$pm_dir/flightrec.txt"; then
    echo "run_serve_torture: FAIL: decoded postmortem reason is not sigkill_reap:" >&2
    head -1 "$pm_dir/flightrec.txt" >&2 || true
    exit 1
fi
if ! grep -q '^event ring=' "$pm_dir/flightrec.txt"; then
    echo "run_serve_torture: FAIL: decoded postmortem holds no flow events" >&2
    exit 1
fi
pm_watermark=$(sed -n 's/.*last_watermark=\([0-9][0-9]*\).*/\1/p' "$pm_dir/flightrec.txt" | head -1)
restored_watermark=$(json_field "$pm_dir" watermark)
if [ -z "$pm_watermark" ] || [ "$pm_watermark" != "$restored_watermark" ]; then
    echo "run_serve_torture: FAIL: postmortem last_watermark '$pm_watermark' !=" \
         "restored snapshot watermark '$restored_watermark'" >&2
    exit 1
fi
if [ -e "$pm_dir/postmortem.bin.ring" ]; then
    echo "run_serve_torture: FAIL: clean finish left the flight-recorder ring file behind" >&2
    exit 1
fi
echo "run_serve_torture: flightrec_kill ok (postmortem sealed + decoded," \
     "last_watermark=$pm_watermark matches the restored snapshot)"

# ---- live status: atomic JSON export + fptc_servestat rendering -------------
echo "run_serve_torture: nominal run exporting live status (fptc_servestat)..."
st_dir="$WORK/status"
mkdir -p "$st_dir"
run_serve status FPTC_SERVE_READY_DEPTH=512 FPTC_SERVE_FLIGHTREC=1 \
    FPTC_SERVE_STATUS="$st_dir/status.json" FPTC_SERVE_STATUS_S=0.05
status_writes=$(summary_field "$WORK/status" status_writes)
require_pos status status_writes "$status_writes"
if [ ! -s "$st_dir/status.json" ]; then
    echo "run_serve_torture: FAIL: status scenario exported no status file" >&2
    exit 1
fi
if [ ! -x "$TOOLS/fptc_servestat" ]; then
    echo "run_serve_torture: FAIL: fptc_servestat not built at $TOOLS/fptc_servestat" >&2
    exit 1
fi
if ! "$TOOLS/fptc_servestat" "$st_dir/status.json" >"$st_dir/servestat.txt" 2>&1; then
    echo "run_serve_torture: FAIL: fptc_servestat refused the status file:" >&2
    tail -5 "$st_dir/servestat.txt" >&2 || true
    exit 1
fi
for key in pid= tier= flows_classified= frec_events=; do
    if ! grep -q "$key" "$st_dir/servestat.txt"; then
        echo "run_serve_torture: FAIL: fptc_servestat output missing '$key':" >&2
        cat "$st_dir/servestat.txt" >&2 || true
        exit 1
    fi
done
stage_lines=$(grep -c '^stage name=' "$st_dir/servestat.txt" || true)
if [ "$stage_lines" -ne 4 ]; then
    echo "run_serve_torture: FAIL: expected 4 stage latency lines, got $stage_lines" >&2
    exit 1
fi
echo "run_serve_torture: status ok ($status_writes status writes," \
     "$(grep '^servestat:' "$st_dir/servestat.txt" | head -1 | cut -c1-70)...)"

# ---- combined chaos: all fault classes at once ------------------------------
if [ "$QUICK" = 1 ]; then
    SEEDS="1"
else
    SEEDS="1 2 3"
fi
for seed in $SEEDS; do
    echo "run_serve_torture: combined chaos (stall + mangle + burst, seed $seed)..."
    run_serve "chaos$seed" FPTC_SERVE_SEED="$seed" FPTC_FAULT_SEED="$seed" \
        FPTC_FAULT_SERVE_STALL_BACKEND=3 FPTC_FAULT_SERVE_MANGLE_PACKETS=5 \
        FPTC_FAULT_SERVE_BURST=32 \
        FPTC_SERVE_DEADLINE_MS=100 FPTC_SERVE_BREAKER_COOLDOWN=2 \
        FPTC_SERVE_MEM_MB=1 FPTC_SERVE_WINDOW_S=1000
    require_pos "chaos$seed" trips "$(summary_field "$WORK/chaos$seed" trips)"
    require_pos "chaos$seed" quarantined "$(summary_field "$WORK/chaos$seed" quarantined)"
    echo "run_serve_torture: chaos seed $seed ok:" \
         "$(grep '^serve:' "$WORK/chaos$seed/stdout.txt")"
done

# ---- disabled-recorder overhead gate (micro_benchmarks pair) ----------------
# BM_FlightRecDisabled runs the real frec_note() call with the gate off on
# top of the span-free BM_SpanOverheadBaseline workload; the disabled hot
# path must stay within 2% (+2 ns slack) of that baseline — the same
# contract and gate idiom as the telemetry span pair in run_telemetry.sh.
if [ -n "$MICRO" ]; then
    if [ ! -x "$MICRO" ]; then
        echo "run_serve_torture: FAIL: micro benchmark binary '$MICRO' not found" >&2
        exit 1
    fi
    echo "run_serve_torture: disabled flight-recorder overhead gate (3 reps, min ns/op)..."
    micro_dir="$WORK/micro"
    mkdir -p "$micro_dir"
    env FPTC_ARTIFACTS_DIR="$micro_dir" "$MICRO" \
        --benchmark_filter='BM_SpanOverheadBaseline|BM_FlightRecDisabled' \
        --benchmark_min_time=0.2 --benchmark_repetitions=3 \
        >"$micro_dir/micro_stdout.txt" 2>&1
    if [ ! -s "$micro_dir/BENCH_micro.json" ]; then
        echo "run_serve_torture: FAIL: micro_benchmarks wrote no BENCH_micro.json" >&2
        exit 1
    fi
    python3 - "$micro_dir/BENCH_micro.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    runs = json.load(f)["benchmarks"]
def best(name):
    times = [r["ns_per_op"] for r in runs if r["name"] == name]
    assert times, f"benchmark {name} missing from BENCH_micro.json"
    return min(times)
baseline = best("BM_SpanOverheadBaseline")
disabled = best("BM_FlightRecDisabled")
limit = baseline * 1.02 + 2.0
print(f"run_serve_torture: baseline {baseline:.1f} ns/op, disabled recorder "
      f"{disabled:.1f} ns/op, limit {limit:.1f}")
assert disabled <= limit, (
    f"disabled flight-recorder overhead regressed: {disabled:.1f} ns/op > "
    f"{limit:.1f} ns/op (baseline {baseline:.1f} * 1.02 + 2 ns)")
EOF
fi

echo "run_serve_torture: PASS"
