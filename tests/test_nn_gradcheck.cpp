// Numerical gradient verification of every hand-written backward pass.
//
// For each layer/loss we compare the analytic gradient against central
// finite differences of the scalar loss L = sum(w ⊙ output) for a fixed
// random weighting w.  Float32 storage limits precision, so tolerances are
// relative ~1e-2 with small absolute floors.
#include "fptc/nn/conv.hpp"
#include "fptc/nn/layers.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/nn/models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace {

using namespace fptc::nn;

constexpr float kEps = 1e-2f;

/// Scalar objective: weighted sum of a layer's output for input x.
double weighted_output(Layer& layer, const Tensor& x, const Tensor& w)
{
    const auto y = layer.forward(x, /*training=*/false);
    double total = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        total += static_cast<double>(y[i]) * static_cast<double>(w[i]);
    }
    return total;
}

/// Compare analytic input-gradient against central differences.
void check_input_gradient(Layer& layer, Tensor x, const Shape& output_shape, double tolerance)
{
    fptc::util::Rng rng(77);
    const auto w = Tensor::randn(output_shape, rng);

    (void)layer.forward(x, false);
    const auto analytic = layer.backward(w);

    for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 24)) {
        const float original = x[i];
        x[i] = original + kEps;
        const double up = weighted_output(layer, x, w);
        x[i] = original - kEps;
        const double down = weighted_output(layer, x, w);
        x[i] = original;
        const double numeric = (up - down) / (2.0 * kEps);
        EXPECT_NEAR(analytic[i], numeric, tolerance + 0.02 * std::fabs(numeric))
            << "input index " << i;
    }
    // Restore cache for any later use.
    (void)layer.forward(x, false);
}

/// Compare analytic parameter-gradients against central differences.
void check_parameter_gradients(Layer& layer, const Tensor& x, const Shape& output_shape,
                               double tolerance)
{
    fptc::util::Rng rng(78);
    const auto w = Tensor::randn(output_shape, rng);

    for (auto* p : layer.parameters()) {
        p->zero_grad();
    }
    (void)layer.forward(x, false);
    (void)layer.backward(w);

    for (auto* p : layer.parameters()) {
        auto values = p->value.data();
        const auto grads = p->grad.data();
        for (std::size_t i = 0; i < values.size();
             i += std::max<std::size_t>(1, values.size() / 16)) {
            const float original = values[i];
            values[i] = original + kEps;
            const double up = weighted_output(layer, x, w);
            values[i] = original - kEps;
            const double down = weighted_output(layer, x, w);
            values[i] = original;
            const double numeric = (up - down) / (2.0 * kEps);
            EXPECT_NEAR(grads[i], numeric, tolerance + 0.02 * std::fabs(numeric))
                << p->name << " index " << i;
        }
    }
}

TEST(GradCheck, Linear)
{
    Linear layer(6, 4, 5);
    fptc::util::Rng rng(1);
    const auto x = Tensor::randn({3, 6}, rng);
    check_input_gradient(layer, x, {3, 4}, 5e-3);
    check_parameter_gradients(layer, x, {3, 4}, 5e-3);
}

TEST(GradCheck, Conv2d)
{
    Conv2d layer(2, 3, 3, 6);
    fptc::util::Rng rng(2);
    const auto x = Tensor::randn({2, 2, 6, 6}, rng);
    check_input_gradient(layer, x, {2, 3, 4, 4}, 1e-2);
    check_parameter_gradients(layer, x, {2, 3, 4, 4}, 1e-2);
}

TEST(GradCheck, ReLU)
{
    ReLU layer;
    fptc::util::Rng rng(3);
    auto x = Tensor::randn({2, 10}, rng);
    // Keep activations away from the kink where finite differences lie.
    for (auto& v : x.data()) {
        if (std::fabs(v) < 0.05f) {
            v = 0.2f;
        }
    }
    check_input_gradient(layer, x, {2, 10}, 5e-3);
}

TEST(GradCheck, MaxPool2d)
{
    MaxPool2d layer(2);
    fptc::util::Rng rng(4);
    // Distinct values avoid argmax ties under perturbation.
    Tensor x({1, 2, 4, 4});
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(i) * 0.37f + static_cast<float>(rng.uniform()) * 0.01f;
    }
    check_input_gradient(layer, x, {1, 2, 2, 2}, 5e-3);
}

TEST(GradCheck, CrossEntropy)
{
    fptc::util::Rng rng(5);
    Tensor logits = Tensor::randn({4, 5}, rng);
    const std::vector<std::size_t> labels{0, 2, 4, 1};

    const auto analytic = cross_entropy(logits, labels);
    for (std::size_t i = 0; i < logits.size(); ++i) {
        const float original = logits[i];
        logits[i] = original + kEps;
        const double up = cross_entropy(logits, labels).loss;
        logits[i] = original - kEps;
        const double down = cross_entropy(logits, labels).loss;
        logits[i] = original;
        const double numeric = (up - down) / (2.0 * kEps);
        EXPECT_NEAR(analytic.grad[i], numeric, 2e-3) << "logit " << i;
    }
}

TEST(GradCheck, NtXent)
{
    fptc::util::Rng rng(6);
    Tensor projections = Tensor::randn({8, 6}, rng);

    const auto analytic = nt_xent(projections, 0.2);
    for (std::size_t i = 0; i < projections.size(); i += 3) {
        const float original = projections[i];
        projections[i] = original + kEps;
        const double up = nt_xent(projections, 0.2).loss;
        projections[i] = original - kEps;
        const double down = nt_xent(projections, 0.2).loss;
        projections[i] = original;
        const double numeric = (up - down) / (2.0 * kEps);
        EXPECT_NEAR(analytic.grad[i], numeric, 5e-3 + 0.05 * std::fabs(numeric))
            << "projection " << i;
    }
}

TEST(GradCheck, FullLeNetEndToEnd)
{
    // End-to-end: numerical gradient of the training loss w.r.t. a few
    // parameters of the real architecture.
    ModelConfig config;
    config.flowpic_dim = 32;
    config.with_dropout = false; // dropout is stochastic; masked here
    auto network = make_supervised_network(config);

    fptc::util::Rng rng(7);
    const auto x = Tensor::randn({2, 1, 32, 32}, rng, 0.5f);
    const std::vector<std::size_t> labels{1, 3};

    const auto loss_of = [&]() {
        const auto logits = network.forward(x, false);
        return cross_entropy(logits, labels).loss;
    };

    network.zero_grad();
    const auto logits = network.forward(x, false);
    const auto loss = cross_entropy(logits, labels);
    (void)network.backward(loss.grad);

    auto params = network.parameters();
    ASSERT_FALSE(params.empty());
    // Check a handful of parameters from the first conv and the last linear.
    for (auto* p : {params.front(), params.back()}) {
        auto values = p->value.data();
        const auto grads = p->grad.data();
        for (std::size_t i = 0; i < values.size();
             i += std::max<std::size_t>(1, values.size() / 5)) {
            const float original = values[i];
            values[i] = original + kEps;
            const double up = loss_of();
            values[i] = original - kEps;
            const double down = loss_of();
            values[i] = original;
            const double numeric = (up - down) / (2.0 * kEps);
            // End-to-end through 12 float32 layers, so the finite-difference
            // estimate carries noticeable truncation error near softmax
            // saturation; the tight per-layer checks above own exactness,
            // this asserts direction and magnitude.
            EXPECT_NEAR(grads[i], numeric, 1e-2 + 0.15 * std::fabs(numeric))
                << p->name << " index " << i;
        }
    }
}

} // namespace
