// Crash-recovery unit tests for the streaming serve pipeline: the CoDel
// SLO admission controller (deterministic, injected clock), the snapshot
// codec's refusal ladder (truncation, bit flips, version skew, trailing
// garbage — every malformation is a cold start, never a crash), flow-table
// snapshot/restore round trips (including restore under an injected
// allocation-fault budget), the watchdog's stall detection, the
// supervisor's backoff math, and an end-to-end restore run asserting the
// typed restart_loss accounting and the watermark stream skip.

#include "fptc/serve/admission.hpp"
#include "fptc/serve/backend.hpp"
#include "fptc/serve/flow_table.hpp"
#include "fptc/serve/service.hpp"
#include "fptc/serve/snapshot.hpp"
#include "fptc/serve/stream.hpp"
#include "fptc/serve/supervisor.hpp"
#include "fptc/serve/watchdog.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/membudget.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace fptc;
using namespace std::chrono_literals;

namespace {

class TempDir {
public:
    explicit TempDir(const std::string& name)
        : path_(std::string(::testing::TempDir()) + name + "." + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    [[nodiscard]] std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

/// Reconfigure the process-wide injector and restore inertness on scope exit.
struct FaultGuard {
    explicit FaultGuard(const util::FaultPlan& plan) { util::fault_injector().configure(plan); }
    ~FaultGuard() { util::fault_injector().configure(util::FaultPlan{}); }
};

serve::SnapshotFlow make_flow(std::uint64_t id, std::size_t packets, double first_ts = 0.0)
{
    serve::SnapshotFlow flow{.flow_id = id, .label = 2, .first_ts = first_ts, .packets = {}};
    for (std::size_t i = 0; i < packets; ++i) {
        flow.packets.push_back(flow::Packet{
            .timestamp = first_ts + 0.01 * static_cast<double>(i),
            .size = 100 + static_cast<int>(i),
            .direction = (i % 2 == 0) ? flow::Direction::upstream : flow::Direction::downstream,
            .is_ack = false,
        });
    }
    return flow;
}

serve::ServeSnapshot make_snapshot()
{
    serve::ServeSnapshot snap;
    snap.watermark = 1234;
    snap.stream_now = 17.25;
    snap.generation = 2;
    snap.config_fingerprint = 0xfeedULL | 1;
    snap.counters.events_total = 1234;
    snap.counters.events_quarantined = 7;
    snap.counters.flows_ingested = 42;
    snap.counters.flows_classified = 30;
    snap.counters.shed_breaker = 3;
    snap.counters.shed_restart_loss = 1;
    snap.counters.slo_violations = 5;
    snap.flows.push_back(make_flow(11, 3, 1.0));
    snap.flows.push_back(make_flow(99, 5, 2.5));
    return snap;
}

} // namespace

// ---------------------------------------------------------------------------
// CoDel SLO admission (deterministic: both sojourn and clock are injected)
// ---------------------------------------------------------------------------

TEST(ServeCodel, DisabledTargetNeverDrops)
{
    serve::CoDelAdmission codel({.target_ms = 0.0, .interval_ms = 100.0});
    EXPECT_FALSE(codel.enabled());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(codel.should_drop(1e9, static_cast<double>(i)));
    }
    EXPECT_EQ(codel.drops(), 0u);
}

TEST(ServeCodel, DropsOnlyAfterSustainedExcursion)
{
    serve::CoDelAdmission codel({.target_ms = 10.0, .interval_ms = 100.0});
    ASSERT_TRUE(codel.enabled());
    // Above target, but not yet for a full interval: no drops.
    EXPECT_FALSE(codel.should_drop(20.0, 0.0));
    EXPECT_FALSE(codel.should_drop(20.0, 50.0));
    // A dip below target re-arms the excursion timer.
    EXPECT_FALSE(codel.should_drop(5.0, 60.0));
    EXPECT_FALSE(codel.should_drop(20.0, 70.0));   // re-arms at 70 + 100
    EXPECT_FALSE(codel.should_drop(20.0, 150.0));  // 150 < 170: still waiting
    EXPECT_TRUE(codel.should_drop(20.0, 170.0));   // sustained a full interval
    EXPECT_TRUE(codel.dropping());
    EXPECT_EQ(codel.drops(), 1u);
}

TEST(ServeCodel, ControlLawCadenceIsSqrtCount)
{
    serve::CoDelAdmission codel({.target_ms = 10.0, .interval_ms = 100.0});
    EXPECT_FALSE(codel.should_drop(20.0, 0.0));
    EXPECT_TRUE(codel.should_drop(20.0, 100.0));   // drop 1: next at 200
    EXPECT_FALSE(codel.should_drop(20.0, 150.0));
    EXPECT_TRUE(codel.should_drop(20.0, 200.0));   // drop 2: next at 200+100/sqrt(2)=270.71
    EXPECT_FALSE(codel.should_drop(20.0, 270.0));
    EXPECT_TRUE(codel.should_drop(20.0, 271.0));   // drop 3: next at 270.71+100/sqrt(3)=328.45
    EXPECT_TRUE(codel.should_drop(20.0, 329.0));   // drop 4
    // Recovery: one sojourn below target leaves dropping mode immediately.
    EXPECT_FALSE(codel.should_drop(5.0, 350.0));
    EXPECT_FALSE(codel.dropping());
    EXPECT_EQ(codel.drops(), 4u);
}

TEST(ServeCodel, RelapseWithinTwoIntervalsResumesFasterCadence)
{
    serve::CoDelAdmission codel({.target_ms = 10.0, .interval_ms = 100.0});
    // Build up count = 4, then recover at t = 350 (see cadence test above).
    EXPECT_FALSE(codel.should_drop(20.0, 0.0));
    EXPECT_TRUE(codel.should_drop(20.0, 100.0));
    EXPECT_TRUE(codel.should_drop(20.0, 200.0));
    EXPECT_TRUE(codel.should_drop(20.0, 271.0));
    EXPECT_TRUE(codel.should_drop(20.0, 329.0));
    EXPECT_FALSE(codel.should_drop(5.0, 350.0));
    // Relapse within 2 intervals: the excursion timer still applies...
    EXPECT_FALSE(codel.should_drop(20.0, 360.0));  // arms at 360 + 100
    EXPECT_TRUE(codel.should_drop(20.0, 460.0));   // ...but count resumes at 4-2=2,
    // so the next drop comes at 460 + 100/sqrt(2) = 530.71, not 460 + 100.
    EXPECT_FALSE(codel.should_drop(20.0, 530.0));
    EXPECT_TRUE(codel.should_drop(20.0, 531.0));
}

// ---------------------------------------------------------------------------
// snapshot codec: round trip and the refusal ladder
// ---------------------------------------------------------------------------

TEST(ServeSnapshotCodec, RoundTripPreservesEverything)
{
    const serve::ServeSnapshot snap = make_snapshot();
    const std::string bytes = serve::encode_snapshot(snap);
    const auto decoded = serve::decode_snapshot(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->watermark, snap.watermark);
    EXPECT_DOUBLE_EQ(decoded->stream_now, snap.stream_now);
    EXPECT_EQ(decoded->generation, snap.generation);
    EXPECT_EQ(decoded->config_fingerprint, snap.config_fingerprint);
    EXPECT_EQ(decoded->counters.events_total, snap.counters.events_total);
    EXPECT_EQ(decoded->counters.events_quarantined, snap.counters.events_quarantined);
    EXPECT_EQ(decoded->counters.flows_ingested, snap.counters.flows_ingested);
    EXPECT_EQ(decoded->counters.flows_classified, snap.counters.flows_classified);
    EXPECT_EQ(decoded->counters.shed_breaker, snap.counters.shed_breaker);
    EXPECT_EQ(decoded->counters.shed_restart_loss, snap.counters.shed_restart_loss);
    EXPECT_EQ(decoded->counters.slo_violations, snap.counters.slo_violations);
    ASSERT_EQ(decoded->flows.size(), 2u);
    EXPECT_EQ(decoded->flows[0].flow_id, 11u);
    EXPECT_EQ(decoded->flows[1].flow_id, 99u);
    ASSERT_EQ(decoded->flows[1].packets.size(), 5u);
    EXPECT_EQ(decoded->flows[1].packets[3].size, 103);
    EXPECT_EQ(decoded->flows[1].packets[1].direction, flow::Direction::downstream);
    EXPECT_DOUBLE_EQ(decoded->flows[1].packets[2].timestamp, 2.5 + 0.02);
}

TEST(ServeSnapshotCodec, EveryTruncationIsRejected)
{
    const std::string bytes = serve::encode_snapshot(make_snapshot());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(serve::decode_snapshot(std::string_view(bytes).substr(0, len)).has_value())
            << "truncation to " << len << " bytes decoded";
    }
}

TEST(ServeSnapshotCodec, EveryBitFlipIsRejected)
{
    const std::string pristine = serve::encode_snapshot(make_snapshot());
    ASSERT_TRUE(serve::decode_snapshot(pristine).has_value());
    for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
        std::string corrupt = pristine;
        corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x40);
        EXPECT_FALSE(serve::decode_snapshot(corrupt).has_value())
            << "bit flip at byte " << byte << " decoded";
    }
}

TEST(ServeSnapshotCodec, TrailingGarbageIsRejected)
{
    std::string bytes = serve::encode_snapshot(make_snapshot());
    bytes.push_back('\0');
    EXPECT_FALSE(serve::decode_snapshot(bytes).has_value());
}

TEST(ServeSnapshotCodec, UnknownVersionIsAColdStart)
{
    // The version field sits right after the 8-byte magic.
    std::string bytes = serve::encode_snapshot(make_snapshot());
    bytes[8] = static_cast<char>(serve::kSnapshotVersion + 1);
    EXPECT_FALSE(serve::decode_snapshot(bytes).has_value());
}

// ---------------------------------------------------------------------------
// snapshot file round trip (DurableFile publish, fingerprint gate)
// ---------------------------------------------------------------------------

TEST(ServeSnapshotFile, SaveLoadRoundTripAndFingerprintGate)
{
    TempDir dir("fptc_serve_snap");
    const std::string path = dir.file("snapshot.bin");
    const serve::ServeSnapshot snap = make_snapshot();
    serve::save_snapshot(path, snap);

    // expect = 0 skips the fingerprint check.
    ASSERT_TRUE(serve::load_snapshot(path).has_value());
    // Matching fingerprint loads; a different one is a cold start.
    EXPECT_TRUE(serve::load_snapshot(path, snap.config_fingerprint).has_value());
    EXPECT_FALSE(serve::load_snapshot(path, snap.config_fingerprint ^ 2).has_value());
    // Missing file is a cold start, not an error.
    EXPECT_FALSE(serve::load_snapshot(dir.file("absent.bin")).has_value());
}

TEST(ServeSnapshotFile, TornFileOnDiskIsAColdStart)
{
    TempDir dir("fptc_serve_torn");
    const std::string path = dir.file("snapshot.bin");
    serve::save_snapshot(path, make_snapshot());
    // Truncate in place, as if the machine died mid-publish of a non-durable
    // copy.
    std::filesystem::resize_file(path, 10);
    EXPECT_FALSE(serve::load_snapshot(path).has_value());
}

TEST(ServeSnapshotFile, ConfigFingerprintCoversStreamIdentity)
{
    serve::ServeConfig a;
    serve::ServeConfig b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), 0u);
    EXPECT_EQ(a.fingerprint() & 1, 1u);  // never 0: 0 means "don't check"
    b.window_seconds = 30.0;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b = a;
    b.fingerprint_extra = 7;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------------------
// flow-table snapshot/restore
// ---------------------------------------------------------------------------

TEST(ServeFlowTableSnapshot, ExportRestoreRoundTrip)
{
    const std::size_t before = util::mem_budget().in_use();
    {
        serve::FlowTable table(1 << 20, 15.0);
        for (std::uint64_t id = 1; id <= 4; ++id) {
            for (int p = 0; p < 3; ++p) {
                (void)table.add_packet(serve::PacketEvent{
                    .flow_id = id, .label = 1, .timestamp = 0.1 * p, .size = 100.0});
            }
        }
        const auto flows = table.snapshot_entries();
        ASSERT_EQ(flows.size(), 4u);
        EXPECT_EQ(flows[0].flow_id, 1u);  // close-FIFO order preserved
        EXPECT_EQ(flows[0].packets.size(), 3u);

        serve::FlowTable restored(1 << 20, 15.0);
        EXPECT_EQ(restored.restore(flows), 0u);
        EXPECT_EQ(restored.size(), 4u);
        const auto again = restored.snapshot_entries();
        ASSERT_EQ(again.size(), 4u);
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(again[i].flow_id, flows[i].flow_id);
            EXPECT_EQ(again[i].packets.size(), flows[i].packets.size());
        }
    }
    EXPECT_EQ(util::mem_budget().in_use(), before);  // all charges credited back
}

TEST(ServeFlowTableSnapshot, RestoreRefusesWhatTheCapCannotHold)
{
    std::vector<serve::SnapshotFlow> flows;
    for (std::uint64_t id = 1; id <= 50; ++id) {
        flows.push_back(make_flow(id, 8));
    }
    // A cap this small holds only a handful of flows; restore must refuse
    // the rest (no eviction churn: restored flows are equally old).
    serve::FlowTable table(4096, 15.0);
    const std::size_t refused = table.restore(flows);
    EXPECT_GT(refused, 0u);
    EXPECT_EQ(table.size() + refused, 50u);
}

TEST(ServeFlowTableSnapshot, RestoreUnderAllocFaultShedsTyped)
{
    util::FaultPlan plan;
    plan.alloc_fail_after_mb = 1;  // refuse once this thread charged 1 MB
    FaultGuard guard(plan);
    util::fault_injector().begin_alloc_scope();

    std::vector<serve::SnapshotFlow> flows;
    flows.push_back(make_flow(1, 4));       // small: charges fine
    flows.push_back(make_flow(2, 100000));  // ~2.4 MB of packets: refused
    const std::size_t before = util::mem_budget().in_use();
    {
        serve::FlowTable table(64 << 20, 15.0);
        const std::size_t refused = table.restore(flows);
        EXPECT_GE(refused, 1u);
        EXPECT_GE(table.size(), 1u);  // the small flow survived the fault
    }
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

// ---------------------------------------------------------------------------
// watchdog stall detection (injected on_stall: no process death in tests)
// ---------------------------------------------------------------------------

TEST(ServeWatchdogUnit, DetectsOnlyTheSilentThread)
{
    std::mutex mutex;
    std::vector<std::string> stalled;
    serve::Watchdog watchdog({
        .stall_seconds = 0.10,
        .poll_seconds = 0.02,
        .heartbeat_path = "",
        .on_stall =
            [&](const std::string& name) {
                std::lock_guard lock(mutex);
                stalled.push_back(name);
            },
    });
    const std::size_t beater = watchdog.add_thread("beater");
    const std::size_t wedged = watchdog.add_thread("wedged");
    const std::size_t idler = watchdog.add_thread("idler");
    watchdog.set_idle(idler, true);
    watchdog.start();
    const auto deadline = std::chrono::steady_clock::now() + 600ms;
    bool saw_stall = false;
    while (std::chrono::steady_clock::now() < deadline) {
        watchdog.beat(beater);
        {
            std::lock_guard lock(mutex);
            saw_stall = !stalled.empty();
        }
        if (saw_stall) {
            break;
        }
        std::this_thread::sleep_for(10ms);
    }
    watchdog.mark_done(wedged);
    watchdog.stop();
    std::lock_guard lock(mutex);
    ASSERT_TRUE(saw_stall) << "watchdog never reported the wedged thread";
    for (const auto& name : stalled) {
        EXPECT_EQ(name, "wedged");  // never the beating or the idle thread
    }
}

TEST(ServeWatchdogUnit, HeartbeatFileIsRefreshed)
{
    TempDir dir("fptc_serve_hb");
    const std::string path = dir.file("heartbeat");
    serve::Watchdog watchdog(
        {.stall_seconds = 0.0, .poll_seconds = 0.02, .heartbeat_path = path, .on_stall = {}});
    ASSERT_TRUE(watchdog.enabled());  // heartbeat alone enables the thread
    watchdog.start();
    std::this_thread::sleep_for(100ms);
    watchdog.stop();
    struct stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0) << "heartbeat file was never written";
    EXPECT_GT(st.st_size, 0);
}

TEST(ServeWatchdogUnit, DisabledWatchdogNeverStarts)
{
    serve::Watchdog watchdog(
        {.stall_seconds = 0.0, .poll_seconds = 0.02, .heartbeat_path = "", .on_stall = {}});
    EXPECT_FALSE(watchdog.enabled());
    watchdog.start();  // no-op; stop() on a never-started watchdog is safe too
    watchdog.stop();
}

// ---------------------------------------------------------------------------
// supervisor backoff math
// ---------------------------------------------------------------------------

TEST(ServeSupervisorMath, ExponentialBackoffWithCap)
{
    serve::SupervisorConfig config;
    config.backoff_ms = 200.0;
    config.backoff_cap_ms = 5000.0;
    EXPECT_DOUBLE_EQ(serve::backoff_delay_ms(config, 1), 200.0);
    EXPECT_DOUBLE_EQ(serve::backoff_delay_ms(config, 2), 400.0);
    EXPECT_DOUBLE_EQ(serve::backoff_delay_ms(config, 3), 800.0);
    EXPECT_DOUBLE_EQ(serve::backoff_delay_ms(config, 5), 3200.0);
    EXPECT_DOUBLE_EQ(serve::backoff_delay_ms(config, 6), 5000.0);   // 6400 clamps
    EXPECT_DOUBLE_EQ(serve::backoff_delay_ms(config, 20), 5000.0);  // stays clamped
}

TEST(ServeSupervisorMath, WorkerRoleComesFromEnvironment)
{
    ASSERT_EQ(std::getenv(serve::kServeRoleEnv), nullptr) << "test env already has a role";
    EXPECT_FALSE(serve::is_serve_worker());
    EXPECT_EQ(serve::serve_generation(), 0u);
    ::setenv(serve::kServeRoleEnv, serve::kServeRoleWorker, 1);
    ::setenv(serve::kServeGenerationEnv, "3", 1);
    EXPECT_TRUE(serve::is_serve_worker());
    EXPECT_EQ(serve::serve_generation(), 3u);
    ::unsetenv(serve::kServeRoleEnv);
    ::unsetenv(serve::kServeGenerationEnv);
}

// ---------------------------------------------------------------------------
// end-to-end restore: typed restart_loss, watermark skip, invariant across
// generations
// ---------------------------------------------------------------------------

namespace {

serve::ServeConfig recovery_config(const std::string& snapshot_path)
{
    serve::ServeConfig config;
    config.batch_size = 8;
    config.flowpic_dim = 16;
    config.reduced_dim = 16;
    config.deadline_ms = 2000.0;
    config.snapshot_path = snapshot_path;
    config.snapshot_period_s = 0.0;  // no new snapshots: this run only restores
    config.generation = 1;
    return config;
}

} // namespace

TEST(ServeRecoveryE2E, RestoredRunTypesTheLossWindowAndBalances)
{
    TempDir dir("fptc_serve_e2e");
    const std::string path = dir.file("snapshot.bin");
    const serve::ServeConfig config = recovery_config(path);

    // Craft the crashed generation's snapshot: at the cut it had ingested 5
    // flows, classified 2, and carried 1 in the table — so 2 were in flight
    // (ready queue / mid-batch) and must surface as typed restart_loss.
    serve::ServeSnapshot snap;
    snap.watermark = 50;
    snap.stream_now = 0.0;
    snap.generation = 0;
    snap.config_fingerprint = config.fingerprint();
    snap.counters.events_total = 50;
    snap.counters.flows_ingested = 5;
    snap.counters.flows_classified = 2;
    snap.flows.push_back(make_flow(900001, 3, 0.0));  // id outside the stream's range
    serve::save_snapshot(path, snap);

    const std::size_t before = util::mem_budget().in_use();
    serve::ServeReport report;
    std::uint64_t emitted = 0;
    {
        auto backends = serve::make_backends(config.flowpic_dim, config.reduced_dim,
                                             config.num_classes, 42);
        serve::InterleavedStream stream({.flows = 40, .seed = 11});
        serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                           *backends.fallback);
        report = service.run(stream);
        emitted = stream.events_emitted();
    }

    EXPECT_TRUE(report.restored);
    EXPECT_EQ(report.watermark, 50u);
    EXPECT_EQ(report.generation, 1u);
    EXPECT_EQ(report.restored_flows, 1u);
    EXPECT_EQ(report.restore_refused, 0u);
    EXPECT_EQ(report.shed_restart_loss, 2u);  // 5 - 2 - 0 sheds - 1 in table
    // The driver consumed the whole deterministic stream: 50 skipped draws
    // plus everything it then served.
    EXPECT_EQ(report.events_total, emitted);
    // Counters continued from the cut: the 5 pre-crash flows plus whatever
    // the replay ingested, and the invariant holds across the generations.
    EXPECT_GT(report.flows_ingested, 5u);
    EXPECT_TRUE(report.accounted()) << report.summary();
    // A clean finish retires the snapshot: only a crash leaves one behind.
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(ServeRecoveryE2E, SnapshotEveryWritesAndRetiresSnapshots)
{
    TempDir dir("fptc_serve_snapw");
    const std::string path = dir.file("snapshot.bin");
    serve::ServeConfig config = recovery_config(path);
    config.generation = 0;
    config.snapshot_period_s = 0.0;
    config.snapshot_every = 100;  // event-cadence markers: deterministic count

    auto backends = serve::make_backends(config.flowpic_dim, config.reduced_dim,
                                         config.num_classes, 42);
    serve::InterleavedStream stream({.flows = 40, .seed = 11});
    serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                       *backends.fallback);
    const auto report = service.run(stream);

    EXPECT_FALSE(report.restored);
    EXPECT_GT(report.snapshots_written, 0u);
    EXPECT_TRUE(report.accounted()) << report.summary();
    EXPECT_FALSE(std::filesystem::exists(path));  // retired on the clean finish
}

TEST(ServeRecoveryE2E, MismatchedFingerprintColdStarts)
{
    TempDir dir("fptc_serve_coldstart");
    const std::string path = dir.file("snapshot.bin");
    const serve::ServeConfig config = recovery_config(path);

    serve::ServeSnapshot snap = make_snapshot();
    snap.config_fingerprint = config.fingerprint() ^ 2;  // written by a different setup
    serve::save_snapshot(path, snap);

    auto backends = serve::make_backends(config.flowpic_dim, config.reduced_dim,
                                         config.num_classes, 42);
    serve::InterleavedStream stream({.flows = 20, .seed = 11});
    serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                       *backends.fallback);
    const auto report = service.run(stream);

    EXPECT_FALSE(report.restored);
    EXPECT_EQ(report.watermark, 0u);
    EXPECT_EQ(report.shed_restart_loss, 0u);
    EXPECT_TRUE(report.accounted()) << report.summary();
}
