// Unit + property tests for the flowpic representation — bin geometry
// matching the paper's quoted numbers, mass conservation, orientation and
// resolution invariants.
#include "fptc/flowpic/flowpic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace fptc;
using flowpic::Flowpic;
using flowpic::FlowpicConfig;

flow::Flow flow_with(std::initializer_list<std::pair<double, int>> packets)
{
    flow::Flow f;
    for (const auto& [t, size] : packets) {
        flow::Packet p;
        p.timestamp = t;
        p.size = size;
        f.packets.push_back(p);
    }
    return f;
}

TEST(Flowpic, BinWidthsMatchPaperNumbers)
{
    // Sec. 2.2: "a 32x32 flowpic leads to 469.8ms time bins and 46B packet
    // size bins".
    FlowpicConfig config;
    config.resolution = 32;
    EXPECT_NEAR(flowpic::time_bin_width(config) * 1e3, 468.75, 1.5); // 15s/32
    EXPECT_NEAR(flowpic::size_bin_width(config), 46.875, 1.0);       // 1500/32
}

TEST(Flowpic, SinglePacketLandsInExpectedCell)
{
    // Packet at t=7.6s (just past mid-window) and size 750 (mid-size).
    const auto f = flow_with({{7.6, 750}});
    const auto pic = Flowpic::from_flow(f, {.resolution = 32});
    // time bin: 7.6 / 0.46875 = 16.2 -> 16; size bin: 750 / 46.875 = 16.
    EXPECT_FLOAT_EQ(pic.at(16, 16), 1.0f);
    EXPECT_DOUBLE_EQ(pic.total_mass(), 1.0);
}

TEST(Flowpic, OrientationZeroSizeAtTopTimeZeroLeft)
{
    const auto f = flow_with({{0.0, 0}, {14.9, 1500}});
    const auto pic = Flowpic::from_flow(f, {.resolution = 32});
    EXPECT_FLOAT_EQ(pic.at(0, 0), 1.0f);    // small size, early -> top-left
    EXPECT_FLOAT_EQ(pic.at(31, 31), 1.0f);  // max size, late -> bottom-right
}

TEST(Flowpic, MassEqualsPacketsInsideWindow)
{
    auto f = flow_with({{0.1, 100}, {5.0, 200}, {14.99, 300}});
    // Packets beyond the 15 s window are not represented.
    flow::Packet late;
    late.timestamp = 20.0;
    late.size = 400;
    f.packets.push_back(late);
    const auto pic = Flowpic::from_flow(f, {.resolution = 32});
    EXPECT_DOUBLE_EQ(pic.total_mass(), 3.0);
}

TEST(Flowpic, OversizeAndNegativeSizesClampToEdgeBins)
{
    auto f = flow_with({{1.0, 1500}});
    f.packets.push_back({.timestamp = 2.0, .size = 5000});
    f.packets.push_back({.timestamp = 3.0, .size = -10});
    const auto pic = Flowpic::from_flow(f, {.resolution = 32});
    EXPECT_DOUBLE_EQ(pic.total_mass(), 3.0);
    EXPECT_FLOAT_EQ(pic.at(31, 2), 1.0f); // 1500 exactly -> last size bin
    EXPECT_FLOAT_EQ(pic.at(31, 4), 1.0f); // clamped oversize
    EXPECT_FLOAT_EQ(pic.at(0, 6), 1.0f);  // clamped negative
}

TEST(Flowpic, OriginAtFirstPacketOption)
{
    const auto f = flow_with({{100.0, 750}, {107.5, 750}});
    FlowpicConfig absolute;
    EXPECT_DOUBLE_EQ(Flowpic::from_flow(f, absolute).total_mass(), 0.0);

    FlowpicConfig relative;
    relative.origin_at_first_packet = true;
    const auto pic = Flowpic::from_flow(f, relative);
    EXPECT_DOUBLE_EQ(pic.total_mass(), 2.0);
    EXPECT_FLOAT_EQ(pic.at(16, 0), 1.0f);
    EXPECT_FLOAT_EQ(pic.at(16, 16), 1.0f);
}

TEST(Flowpic, EmptyFlowGivesEmptyPic)
{
    const auto pic = Flowpic::from_flow(flow::Flow{}, {.resolution = 32});
    EXPECT_DOUBLE_EQ(pic.total_mass(), 0.0);
}

TEST(Flowpic, NormalizeMaxScalesToUnit)
{
    auto f = flow_with({{1.0, 100}, {1.0, 100}, {2.0, 200}});
    auto pic = Flowpic::from_flow(f, {.resolution = 32});
    pic.normalize_max();
    EXPECT_FLOAT_EQ(*std::max_element(pic.counts().begin(), pic.counts().end()), 1.0f);
    // All-zero pic must survive normalization untouched.
    auto empty = Flowpic::from_flow(flow::Flow{}, {.resolution = 8});
    empty.normalize_max();
    EXPECT_DOUBLE_EQ(empty.total_mass(), 0.0);
}

TEST(Flowpic, FlattenedHasResolutionSquaredEntries)
{
    const auto pic = Flowpic::from_flow(flow_with({{1.0, 100}}), {.resolution = 64});
    EXPECT_EQ(pic.flattened().size(), 64u * 64u);
}

TEST(Flowpic, AtThrowsOutOfRange)
{
    const auto pic = Flowpic::from_flow(flow::Flow{}, {.resolution = 8});
    EXPECT_THROW((void)pic.at(8, 0), std::out_of_range);
    EXPECT_THROW((void)pic.at(0, 8), std::out_of_range);
}

TEST(Flowpic, ConstructorValidatesShape)
{
    EXPECT_THROW(Flowpic(4, std::vector<float>(15, 0.0f)), std::invalid_argument);
    EXPECT_THROW(Flowpic(0, {}), std::invalid_argument);
    EXPECT_NO_THROW(Flowpic(4, std::vector<float>(16, 0.0f)));
}

TEST(Flowpic, AverageFlowpicIsElementwiseMean)
{
    const auto a = flow_with({{1.0, 100}});
    const auto b = flow_with({{1.0, 100}, {2.0, 100}});
    std::vector<flow::Flow> flows{a, b};
    const auto average = flowpic::average_flowpic(flows, {.resolution = 32});
    EXPECT_NEAR(average.total_mass(), 1.5, 1e-6);
    EXPECT_THROW(flowpic::average_flowpic({}, {.resolution = 32}), std::invalid_argument);
}

TEST(Flowpic, AverageFlowpicOfClassFiltersByLabel)
{
    flow::Dataset d;
    d.class_names = {"a", "b"};
    auto fa = flow_with({{1.0, 100}});
    fa.label = 0;
    auto fb = flow_with({{1.0, 100}, {2.0, 200}, {3.0, 300}});
    fb.label = 1;
    d.flows = {fa, fb};
    const auto avg_b = flowpic::average_flowpic_of_class(d, 1, {.resolution = 32});
    EXPECT_NEAR(avg_b.total_mass(), 3.0, 1e-6);
}

// Property sweep: mass conservation and shape across resolutions.
class FlowpicResolutionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FlowpicResolutionTest, MassIndependentOfResolution)
{
    const std::size_t resolution = GetParam();
    auto f = flow_with({});
    for (int i = 0; i < 200; ++i) {
        flow::Packet p;
        p.timestamp = 15.0 * (i / 200.0);
        p.size = (i * 37) % 1500;
        f.packets.push_back(p);
    }
    const auto pic = Flowpic::from_flow(f, {.resolution = resolution});
    EXPECT_EQ(pic.resolution(), resolution);
    EXPECT_DOUBLE_EQ(pic.total_mass(), 200.0);
    for (const float v : pic.counts()) {
        EXPECT_GE(v, 0.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, FlowpicResolutionTest,
                         ::testing::Values(8, 32, 64, 128, 1500));

TEST(Flowpic, InvalidConfigThrows)
{
    EXPECT_THROW(Flowpic::from_flow(flow::Flow{}, {.resolution = 0}),
                 std::invalid_argument);
    FlowpicConfig bad;
    bad.duration = 0.0;
    EXPECT_THROW(Flowpic::from_flow(flow::Flow{}, bad), std::invalid_argument);
}

} // namespace
