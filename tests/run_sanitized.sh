#!/bin/sh
# Build and run the test suite under sanitizers.  Three stages:
#
#   1. the full suite under AddressSanitizer + UBSan ("asan-ubsan" preset) —
#      excluding CrashTortureQuick, whose sanitized bench binary would blow
#      the time budget (it runs against the optimized build in stage 3),
#   2. the concurrency-sensitive executor / cancellation / journal tests
#      under ThreadSanitizer ("tsan" preset),
#   3. a bounded (<60s) kill-point torture sweep (tests/run_torture.sh
#      --quick) against the default optimized build: crash at the first
#      durable writes, resume from the journal, assert bit-identical tables.
#
# Usage, from the repo root:
#
#   tests/run_sanitized.sh [extra ctest args...]
#
# e.g. tests/run_sanitized.sh -R Serialize  (extra args apply to the
# asan stage; the tsan and torture stages always run their fixed selection)
set -eu

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" -E CrashTortureQuick "$@"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target test_executor test_util
ctest --preset tsan -j "$(nproc)" -R 'Executor|CancelToken|Journal|Backoff|ExceptionTaxonomy'

cmake --preset default
cmake --build --preset default -j "$(nproc)" --target table4_augmentations
tests/run_torture.sh --quick build/bench/table4_augmentations
