#!/bin/sh
# Build and run the full test suite under AddressSanitizer + UBSan
# (the "asan-ubsan" CMake preset).  Usage, from the repo root:
#
#   tests/run_sanitized.sh [extra ctest args...]
#
# e.g. tests/run_sanitized.sh -R Serialize
set -eu

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"
