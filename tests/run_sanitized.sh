#!/bin/sh
# Build and run the test suite under sanitizers.  Two stages:
#
#   1. the full suite under AddressSanitizer + UBSan ("asan-ubsan" preset),
#   2. the concurrency-sensitive executor / cancellation / journal tests
#      under ThreadSanitizer ("tsan" preset).
#
# Usage, from the repo root:
#
#   tests/run_sanitized.sh [extra ctest args...]
#
# e.g. tests/run_sanitized.sh -R Serialize  (extra args apply to the
# asan stage; the tsan stage always runs its fixed concurrency filter)
set -eu

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target test_executor test_util
ctest --preset tsan -j "$(nproc)" -R 'Executor|CancelToken|Journal|Backoff|ExceptionTaxonomy'
