#!/usr/bin/env bash
# Build and run the test suite under sanitizers.  Five stages:
#
#   1. the full suite under AddressSanitizer + UBSan ("asan-ubsan" preset) —
#      excluding the CrashTortureQuick / MemBudgetQuick bench gates, whose
#      sanitized binaries would blow the time budget (they run against the
#      optimized build in stages 3-4),
#   2. the concurrency-sensitive executor / cancellation / journal / memory
#      accountant tests under ThreadSanitizer ("tsan" preset),
#   3. a bounded (<60s) kill-point torture sweep (tests/run_torture.sh
#      --quick) against the default optimized build: crash at the first
#      durable writes, resume from the journal, assert bit-identical tables,
#   4. the resource-governance gate (tests/run_membudget.sh) against the
#      same build: a tight FPTC_MEM_BUDGET_MB must degrade gracefully with
#      peak <= budget and balanced accounting,
#   5. the telemetry gate (tests/run_telemetry.sh) against the tsan build:
#      tracing + metrics armed on a threaded campaign must be race-free,
#      keep stdout bit-identical and export valid trace/metrics JSON (the
#      overhead micro-gate is skipped — sanitized timings are meaningless),
#   6. the sharded-execution gate (tests/run_shard_torture.sh --quick)
#      against the optimized build: multi-process campaign with a worker
#      SIGKILLed mid-unit must resume via lease stealing and produce stdout
#      and table artifacts byte-identical to a sequential run,
#   7. the overload-resilience gate (tests/run_serve_torture.sh --quick)
#      against BOTH sanitized builds: the streaming classifier under
#      backend stalls, mangled packets and microbursts must never abort,
#      type every shed and balance the MemBudget — race-free under tsan,
#      leak-free under asan; the flight-recorder postmortem seal/decode
#      and live-status scenarios run in the same sweep (the overhead
#      micro-gate is skipped — no micro_benchmarks arg is passed),
#   8. the drift / model-lifecycle gate (tests/run_serve_torture.sh
#      --quick --drift) against BOTH sanitized builds: no false drift
#      alarms on a stationary stream, alarms after a scripted shift,
#      unknown-flood open-set rejection, and the canary reload/rollback
#      paths — the hot model swap must be race-free under tsan and the
#      scratch canary network leak-free under asan.
#
# Usage, from the repo root:
#
#   tests/run_sanitized.sh [extra ctest args...]
#
# e.g. tests/run_sanitized.sh -R Serialize  (extra args apply to the
# asan stage; the tsan, torture, membudget and telemetry stages always run
# their fixed selection)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" -E 'CrashTortureQuick|MemBudgetQuick|TelemetryQuick|ServeTortureQuick|ServeDriftQuick' "$@"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target test_executor test_util test_membudget test_telemetry test_shard test_serve test_serve_recovery test_serve_drift test_serve_flightrec
ctest --preset tsan -j "$(nproc)" \
    -R 'Executor|CancelToken|Journal|Backoff|ExceptionTaxonomy|MemBudget|Charge|Tracing|Histogram|Metrics|EnvValidation|Shard|Lease|Scavenge|Shutdown|FaultKillShard|TelemetryMerge|Serve|ServeDrift|Drift|Calibration' \
    -E 'MemBudgetQuick|TelemetryQuick|ShardTortureQuick|ServeTortureQuick|ServeDriftQuick'

cmake --preset default
cmake --build --preset default -j "$(nproc)" --target table4_augmentations
if [[ ! -x build/bench/table4_augmentations ]]; then
    echo "run_sanitized: FAIL: build/bench/table4_augmentations missing after build" >&2
    exit 1
fi
tests/run_torture.sh --quick build/bench/table4_augmentations
tests/run_membudget.sh build/bench/table4_augmentations

cmake --build --preset tsan -j "$(nproc)" --target table4_augmentations
tests/run_telemetry.sh build-tsan/bench/table4_augmentations

tests/run_shard_torture.sh --quick build/bench/table4_augmentations

cmake --build --preset asan-ubsan -j "$(nproc)" --target serve_throughput fptc_flightrec fptc_servestat
cmake --build --preset tsan -j "$(nproc)" --target serve_throughput fptc_flightrec fptc_servestat
tests/run_serve_torture.sh --quick build-asan/bench/serve_throughput
tests/run_serve_torture.sh --quick build-tsan/bench/serve_throughput

tests/run_serve_torture.sh --quick --drift build-asan/bench/serve_throughput
tests/run_serve_torture.sh --quick --drift build-tsan/bench/serve_throughput
