// Integration tests: the full campaign runners end-to-end at miniature
// scale.  These exercise exactly the code paths behind the bench binaries
// (Tables 3-9) and assert the paper's qualitative shapes: script learnable,
// human degraded by the data shift, replication datasets trainable, subflow
// pipeline functional.
#include "fptc/core/campaign.hpp"
#include "fptc/gbt/gbt.hpp"
#include "fptc/subflow/subflow.hpp"
#include "fptc/trafficgen/mobile.hpp"

#include <gtest/gtest.h>

namespace {

using namespace fptc;
using namespace fptc::core;

class CampaignTest : public ::testing::Test {
protected:
    static const UcdavisData& data()
    {
        static const UcdavisData d = load_ucdavis(0.2, 19);
        return d;
    }
};

TEST_F(CampaignTest, SupervisedRunReproducesShiftShape)
{
    SupervisedOptions options;
    options.per_class = 40;   // miniature split
    options.augment_copies = 2;
    options.max_epochs = 8;
    options.leftover_cap = 150;
    const auto run = run_ucdavis_supervised(data(), augment::AugmentationKind::change_rtt,
                                            /*split_seed=*/1, /*train_seed=*/1, options);
    EXPECT_GE(run.epochs_run, 1);
    EXPECT_EQ(run.script_confusion.total(), data().script.size());
    EXPECT_EQ(run.human_confusion.total(), data().human.size());
    EXPECT_EQ(run.leftover_confusion.total(), 150u);
    // Paper shape: script well learnable, human hit by the data shift.
    EXPECT_GT(run.script_accuracy(), 0.85);
    EXPECT_LT(run.human_accuracy(), run.script_accuracy() - 0.05);
    // Leftover behaves like script ("no gap appears when comparing script
    // with leftover", Sec. 4.2.2).
    EXPECT_GT(run.leftover_accuracy(), 0.85);
}

TEST_F(CampaignTest, SupervisedRunIsDeterministic)
{
    SupervisedOptions options;
    options.per_class = 30;
    options.augment_copies = 1;
    options.max_epochs = 3;
    options.leftover_cap = 50;
    const auto a = run_ucdavis_supervised(data(), augment::AugmentationKind::time_shift, 2, 3,
                                          options);
    const auto b = run_ucdavis_supervised(data(), augment::AugmentationKind::time_shift, 2, 3,
                                          options);
    EXPECT_DOUBLE_EQ(a.script_accuracy(), b.script_accuracy());
    EXPECT_DOUBLE_EQ(a.human_accuracy(), b.human_accuracy());
    EXPECT_EQ(a.epochs_run, b.epochs_run);
}

TEST_F(CampaignTest, SimClrRunFinetunesAboveChance)
{
    SimClrOptions options;
    options.per_class = 40;
    options.pretrain_max_epochs = 4;
    const auto run = run_ucdavis_simclr(data(), /*split_seed=*/1, /*pretrain_seed=*/1,
                                        /*finetune_seed=*/1, options);
    EXPECT_GE(run.pretrain_epochs, 1);
    // 5-way task, 10 labeled samples/class: must beat chance comfortably.
    EXPECT_GT(run.script_accuracy(), 0.5);
    EXPECT_EQ(run.script_confusion.total(), data().script.size());
    EXPECT_EQ(run.human_confusion.total(), data().human.size());
}

TEST_F(CampaignTest, EnlargedSupervisedUsesWholePartition)
{
    SupervisedOptions options;
    options.augment_copies = 1;
    options.max_epochs = 4;
    options.with_dropout = false;
    const auto run = run_ucdavis_enlarged_supervised(data(), augment::AugmentationKind::none, 5,
                                                     options);
    EXPECT_GT(run.script_accuracy(), 0.85);
}

TEST(Replication, MobileDatasetTrains)
{
    trafficgen::MobileGenOptions gen;
    gen.samples_scale = 0.01;
    const auto dataset = trafficgen::make_mirage19(gen);
    ASSERT_GT(dataset.num_classes(), 5u);

    SupervisedOptions options;
    options.augment_copies = 2;
    options.max_epochs = 6;
    const auto run = run_replication_supervised(dataset, augment::AugmentationKind::change_rtt,
                                                /*split_seed=*/1, /*train_seed=*/1, options);
    // ~10% of the flows land in the test set.
    EXPECT_GT(run.test_confusion.total(), dataset.size() / 20);
    // Weighted F1 far above the ~1/K chance level.
    EXPECT_GT(run.weighted_f1(), 2.0 / static_cast<double>(dataset.num_classes()));
}

TEST(Baseline, GbtOnFlowpicsBeatsChance)
{
    // The Table 3 path: flattened flowpics into the GBT classifier.
    const auto data = load_ucdavis(0.2, 19);
    const auto split = flow::fixed_per_class_split(data.pretraining, 30, 11);
    std::vector<std::vector<float>> features;
    std::vector<std::size_t> labels;
    for (const auto i : split.train) {
        features.push_back(
            flowpic::Flowpic::from_flow(data.pretraining.flows[i], {.resolution = 32})
                .flattened());
        labels.push_back(data.pretraining.flows[i].label);
    }
    gbt::GbtConfig config;
    config.num_rounds = 20;
    gbt::GbtClassifier model(config, data.num_classes());
    model.fit(features, labels);

    stats::ConfusionMatrix confusion(data.num_classes());
    for (const auto& f : data.script.flows) {
        confusion.add(f.label,
                      model.predict(flowpic::Flowpic::from_flow(f, {.resolution = 32}).flattened()));
    }
    EXPECT_GT(confusion.accuracy(), 0.7);
}

TEST(SubflowIntegration, PipelineRunsOnUcdavis)
{
    trafficgen::UcdavisOptions gen;
    gen.samples_scale = 0.05;
    const auto pretraining =
        trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::pretraining, gen);
    const auto script = trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::script, gen);

    subflow::SubflowModelConfig config;
    config.pretrain_epochs = 3;
    config.finetune_epochs = 20;
    subflow::SubflowModel model(config, 5, subflow::SamplingMethod::incremental);
    (void)model.pretrain(pretraining.flows);
    (void)model.finetune(script, 10, 3);
    const auto confusion = model.evaluate(script);
    EXPECT_GT(confusion.accuracy(), 0.4);
}

} // namespace
