// Unit tests for the core data pipeline: rasterization, normalization,
// batching, the paper's x-N augmentation expansion and large-resolution
// pre-pooling.
#include "fptc/core/data.hpp"
#include "fptc/nn/models.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace {

using namespace fptc;
using namespace fptc::core;

std::vector<flow::Flow> sample_flows(std::size_t count = 4)
{
    std::vector<flow::Flow> flows;
    for (std::size_t n = 0; n < count; ++n) {
        flow::Flow f;
        f.label = n % 2;
        for (int i = 0; i < 30; ++i) {
            flow::Packet p;
            p.timestamp = 0.4 * i;
            p.size = 200 + 40 * static_cast<int>(n) + (i % 3) * 300;
            f.packets.push_back(p);
        }
        flows.push_back(std::move(f));
    }
    return flows;
}

TEST(CoreData, RasterizeShapesAndLabels)
{
    const auto flows = sample_flows(6);
    const auto set = rasterize(flows, {.resolution = 32});
    EXPECT_EQ(set.size(), 6u);
    EXPECT_EQ(set.dim, 32u);
    EXPECT_EQ(set.native_resolution, 32u);
    for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_EQ(set.images[i].size(), 32u * 32u);
        EXPECT_EQ(set.labels[i], flows[i].label);
    }
}

TEST(CoreData, ImagesAreMaxNormalized)
{
    const auto set = rasterize(sample_flows(), {.resolution = 32});
    for (const auto& image : set.images) {
        float max_value = 0.0f;
        for (const float v : image) {
            EXPECT_GE(v, 0.0f);
            EXPECT_LE(v, 1.0f);
            max_value = std::max(max_value, v);
        }
        EXPECT_FLOAT_EQ(max_value, 1.0f);
    }
}

TEST(CoreData, BatchAssemblesTensor)
{
    const auto set = rasterize(sample_flows(5), {.resolution = 32});
    const std::vector<std::size_t> indices{0, 3};
    const auto batch = set.batch(indices);
    EXPECT_EQ(batch.shape(), (nn::Shape{2, 1, 32, 32}));
    // Content of second batch row equals sample 3.
    for (std::size_t i = 0; i < 32 * 32; ++i) {
        EXPECT_FLOAT_EQ(batch[32 * 32 + i], set.images[3][i]);
    }
    EXPECT_THROW((void)set.batch(std::vector<std::size_t>{}), std::invalid_argument);
}

TEST(CoreData, TensorOfSingleSample)
{
    const auto set = rasterize(sample_flows(2), {.resolution = 32});
    EXPECT_EQ(set.tensor_of(1).shape(), (nn::Shape{1, 1, 32, 32}));
}

TEST(CoreData, AppendRequiresMatchingDims)
{
    auto a = rasterize(sample_flows(2), {.resolution = 32});
    const auto b = rasterize(sample_flows(3), {.resolution = 32});
    a.append(b);
    EXPECT_EQ(a.size(), 5u);
    const auto c = rasterize(sample_flows(1), {.resolution = 64});
    EXPECT_THROW(a.append(c), std::invalid_argument);
}

TEST(CoreData, AugmentSetExpansionFactor)
{
    const auto flows = sample_flows(4);
    util::Rng rng(1);
    // The paper's x10 rule: N copies per flow for a real augmentation.
    const auto expanded =
        augment_set(flows, augment::AugmentationKind::change_rtt, 10, {.resolution = 32}, rng);
    EXPECT_EQ(expanded.size(), 40u);
    // "No augmentation" ignores the copy count (baseline uses originals).
    const auto baseline =
        augment_set(flows, augment::AugmentationKind::none, 10, {.resolution = 32}, rng);
    EXPECT_EQ(baseline.size(), 4u);
    EXPECT_THROW(
        (void)augment_set(flows, augment::AugmentationKind::rotate, 0, {.resolution = 32}, rng),
        std::invalid_argument);
}

TEST(CoreData, AugmentedCopiesDiffer)
{
    const auto flows = sample_flows(1);
    util::Rng rng(2);
    const auto expanded =
        augment_set(flows, augment::AugmentationKind::time_shift, 3, {.resolution = 32}, rng);
    ASSERT_EQ(expanded.size(), 3u);
    EXPECT_NE(expanded.images[0], expanded.images[1]);
}

TEST(CoreData, LargeResolutionPredPooledToEffectiveDim)
{
    const auto flows = sample_flows(1);
    const auto set = rasterize(flows, {.resolution = 1500});
    EXPECT_EQ(set.native_resolution, 1500u);
    EXPECT_EQ(set.dim, nn::effective_input_dim(1500));
    EXPECT_EQ(set.images.front().size(), set.dim * set.dim);
}

TEST(CoreData, PoolToEffectiveIsIdentityForSmall)
{
    const auto pic = flowpic::Flowpic::from_flow(sample_flows(1).front(), {.resolution = 32});
    const auto pooled = pool_to_effective(pic);
    EXPECT_EQ(pooled.size(), 32u * 32u);
    for (std::size_t i = 0; i < pooled.size(); ++i) {
        EXPECT_FLOAT_EQ(pooled[i], pic.counts()[i]);
    }
}

TEST(CoreData, ValidateSamplesPassesCleanSets)
{
    auto set = rasterize(sample_flows(4), {.resolution = 32});
    const auto report = validate_samples(set);
    EXPECT_TRUE(report.clean()) << report.first_defect;
    EXPECT_EQ(report.checked, 4u);
    EXPECT_EQ(set.size(), 4u);
    EXPECT_EQ(set.quarantined, 0u);
}

TEST(CoreData, ValidateSamplesQuarantinesCorruptTensors)
{
    auto set = rasterize(sample_flows(5), {.resolution = 32});
    // Simulate a corrupted cache: NaN pixel, negative pixel, wrong shape,
    // un-normalized value, all-zero tensor.
    set.images[0][10] = std::numeric_limits<float>::quiet_NaN();
    set.images[1][20] = -0.5f;
    set.images[2].resize(10);
    set.images[3][5] = 3.0f;
    std::fill(set.images[4].begin(), set.images[4].end(), 0.0f);

    const auto report = validate_samples(set);
    EXPECT_EQ(report.checked, 5u);
    EXPECT_EQ(report.quarantined, 5u);
    EXPECT_FALSE(report.first_defect.empty());
    EXPECT_EQ(set.size(), 0u);
    EXPECT_EQ(set.labels.size(), 0u);
    EXPECT_EQ(set.quarantined, 5u);
}

TEST(CoreData, ValidateSamplesScrubsInPlaceKeepingOrder)
{
    auto set = rasterize(sample_flows(4), {.resolution = 32});
    const auto survivor_a = set.images[0];
    const auto survivor_b = set.images[3];
    set.images[1][0] = std::numeric_limits<float>::infinity();
    set.images[2][0] = -1.0f;
    const auto report = validate_samples(set);
    EXPECT_EQ(report.quarantined, 2u);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.images[0], survivor_a);
    EXPECT_EQ(set.images[1], survivor_b);
    EXPECT_EQ(set.labels.size(), 2u);
}

TEST(CoreData, AppendCarriesQuarantineCount)
{
    auto a = rasterize(sample_flows(2), {.resolution = 32});
    auto b = rasterize(sample_flows(2), {.resolution = 32});
    b.images[0][0] = std::numeric_limits<float>::quiet_NaN();
    (void)validate_samples(b);
    EXPECT_EQ(b.quarantined, 1u);
    a.append(b);
    EXPECT_EQ(a.quarantined, 1u);
    EXPECT_EQ(a.size(), 3u);
}

TEST(CoreData, PoolToEffectiveKeepsMaxima)
{
    // A single hot cell must survive max pooling.
    std::vector<float> counts(1500 * 1500, 0.0f);
    counts[700 * 1500 + 701] = 42.0f;
    const flowpic::Flowpic pic(1500, std::move(counts));
    const auto pooled = pool_to_effective(pic);
    const float max_pooled = *std::max_element(pooled.begin(), pooled.end());
    EXPECT_FLOAT_EQ(max_pooled, 42.0f);
}

} // namespace
