// Tests for the checksummed checkpoint format (fptc/nn/serialize.hpp):
// v2 roundtrip, v1 compatibility, corruption detection (bad magic, bad
// version, truncation, bit flips), descriptive mismatch errors, and the
// save_network truncated-write recovery path.
#include "fptc/nn/models.hpp"
#include "fptc/nn/serialize.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/fault.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace fptc;
using nn::Parameter;
using nn::Tensor;

/// Two small parameters with recognizable contents.
std::vector<Parameter> make_params()
{
    std::vector<Parameter> params;
    params.emplace_back(Tensor({2, 3}), "weight");
    params.emplace_back(Tensor({3}), "bias");
    float v = 0.5f;
    for (auto& p : params) {
        for (auto& x : p.value.data()) {
            x = v;
            v += 0.25f;
        }
    }
    return params;
}

std::vector<Parameter*> pointers(std::vector<Parameter>& params)
{
    std::vector<Parameter*> out;
    for (auto& p : params) {
        out.push_back(&p);
    }
    return out;
}

std::string serialized(std::vector<Parameter>& params, std::uint32_t version)
{
    std::ostringstream out(std::ios::binary);
    nn::save_parameters(pointers(params), out, version);
    return out.str();
}

/// Expects load_parameters to throw with `needle` in the message.
void expect_load_error(std::vector<Parameter>& target, const std::string& blob,
                       const std::string& needle)
{
    std::istringstream in(blob, std::ios::binary);
    try {
        nn::load_parameters(pointers(target), in);
        FAIL() << "expected failure containing '" << needle << "'";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
}

TEST(Serialize, RoundTripV2)
{
    auto params = make_params();
    const auto blob = serialized(params, 2);

    auto restored = make_params();
    for (auto& p : restored) {
        p.value.fill(0.0f);
    }
    std::istringstream in(blob, std::ios::binary);
    nn::load_parameters(pointers(restored), in);
    for (std::size_t i = 0; i < params.size(); ++i) {
        const auto expected = params[i].value.data();
        const auto got = restored[i].value.data();
        for (std::size_t k = 0; k < expected.size(); ++k) {
            EXPECT_EQ(got[k], expected[k]);
        }
    }
}

TEST(Serialize, V1StreamsRemainReadable)
{
    auto params = make_params();
    const auto v1 = serialized(params, 1);
    const auto v2 = serialized(params, 2);
    // v1 has no trailing 8-byte checksum.
    EXPECT_EQ(v1.size() + 8, v2.size());

    auto restored = make_params();
    for (auto& p : restored) {
        p.value.fill(0.0f);
    }
    std::istringstream in(v1, std::ios::binary);
    nn::load_parameters(pointers(restored), in);
    EXPECT_EQ(restored[0].value.data()[0], params[0].value.data()[0]);
}

TEST(Serialize, RejectsUnknownSaveVersion)
{
    auto params = make_params();
    std::ostringstream out(std::ios::binary);
    EXPECT_THROW(nn::save_parameters(pointers(params), out, 4), std::runtime_error);
    EXPECT_THROW(nn::save_parameters(pointers(params), out, 0), std::runtime_error);
}

TEST(Serialize, RejectsBadMagic)
{
    auto params = make_params();
    auto blob = serialized(params, 2);
    blob[7] ^= 0x01; // header is little-endian u64: magic lives in the top bytes
    auto target = make_params();
    expect_load_error(target, blob, "bad magic");
}

TEST(Serialize, RejectsUnsupportedVersion)
{
    auto params = make_params();
    auto blob = serialized(params, 2);
    blob[0] = 9; // version byte
    auto target = make_params();
    expect_load_error(target, blob, "unsupported format version 9");
}

TEST(Serialize, RejectsTruncatedStream)
{
    auto params = make_params();
    auto blob = serialized(params, 2);
    blob.resize(blob.size() / 2);
    auto target = make_params();
    expect_load_error(target, blob, "truncated");
}

TEST(Serialize, RejectsBitFlipViaChecksum)
{
    auto params = make_params();
    auto blob = serialized(params, 2);
    // Flip one payload bit (past header + count, inside tensor data).
    blob[blob.size() - 12] ^= 0x10;
    auto target = make_params();
    expect_load_error(target, blob, "checksum mismatch");
}

TEST(Serialize, CorruptLoadLeavesTargetUntouched)
{
    auto params = make_params();
    auto blob = serialized(params, 2);
    blob[blob.size() - 12] ^= 0x10;

    auto target = make_params();
    for (auto& p : target) {
        p.value.fill(7.0f);
    }
    std::istringstream in(blob, std::ios::binary);
    EXPECT_THROW(nn::load_parameters(pointers(target), in), std::runtime_error);
    for (const auto& p : target) {
        for (const auto x : p.value.data()) {
            EXPECT_EQ(x, 7.0f); // staged load must not half-overwrite
        }
    }
}

TEST(Serialize, CountMismatchNamesBothSides)
{
    auto params = make_params();
    const auto blob = serialized(params, 2);
    std::vector<Parameter> fewer;
    fewer.emplace_back(Tensor({2, 3}), "weight");
    expect_load_error(fewer, blob, "parameter count mismatch (stream has 2, network has 1)");
}

TEST(Serialize, ShapeMismatchNamesParameter)
{
    auto params = make_params();
    const auto blob = serialized(params, 2);
    std::vector<Parameter> wrong;
    wrong.emplace_back(Tensor({2, 3}), "weight");
    wrong.emplace_back(Tensor({4}), "bias");
    expect_load_error(wrong, blob, "parameter 1 ('bias'): shape mismatch");
}

TEST(Serialize, VerifyCheckpointAcceptsGoodRejectsBad)
{
    auto params = make_params();
    const auto good = serialized(params, 2);
    {
        std::istringstream in(good, std::ios::binary);
        std::string error;
        EXPECT_TRUE(nn::verify_checkpoint(in, &error)) << error;
    }
    {
        auto bad = good;
        bad[bad.size() - 12] ^= 0x01;
        std::istringstream in(bad, std::ios::binary);
        std::string error;
        EXPECT_FALSE(nn::verify_checkpoint(in, &error));
        EXPECT_NE(error.find("checksum"), std::string::npos) << error;
    }
    {
        auto torn = good;
        torn.resize(torn.size() - 20);
        std::istringstream in(torn, std::ios::binary);
        EXPECT_FALSE(nn::verify_checkpoint(in));
    }
}

TEST(Serialize, NetworkFileRoundTrip)
{
    nn::ModelConfig config;
    config.num_classes = 3;
    auto network = nn::make_finetune_head(config);
    const auto path =
        (std::filesystem::temp_directory_path() / "fptc_test_checkpoint.bin").string();
    nn::save_network(network, path);

    auto other = nn::make_finetune_head(config);
    nn::load_network(other, path);
    const auto a = network.parameters();
    const auto b = other.parameters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto da = a[i]->value.data();
        const auto db = b[i]->value.data();
        for (std::size_t k = 0; k < da.size(); ++k) {
            EXPECT_EQ(da[k], db[k]);
        }
    }
    std::remove(path.c_str());
}

TEST(Serialize, V1FileOnDiskRemainsLoadable)
{
    // Compat: a checkpoint written by the v1 (pre-checksum) format and
    // sitting on disk must still load into a current network byte-for-byte.
    nn::ModelConfig config;
    config.num_classes = 3;
    auto network = nn::make_finetune_head(config);
    std::ostringstream blob(std::ios::binary);
    nn::save_parameters(network.parameters(), blob, /*version=*/1);
    const auto path = (std::filesystem::temp_directory_path() / "fptc_test_v1.bin").string();
    {
        std::ofstream out(path, std::ios::binary);
        out << blob.str();
    }

    auto restored = nn::make_finetune_head(config);
    for (auto* p : restored.parameters()) {
        p->value.fill(0.0f);
    }
    nn::load_network(restored, path);
    const auto a = network.parameters();
    const auto b = restored.parameters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto da = a[i]->value.data();
        const auto db = b[i]->value.data();
        for (std::size_t k = 0; k < da.size(); ++k) {
            EXPECT_EQ(da[k], db[k]);
        }
    }
    std::remove(path.c_str());
}

TEST(Serialize, EnospcMidCheckpointLeavesPreviousCheckpointIntact)
{
    // A full disk during save_network must surface as a transient IoError
    // (executor retries, then degrades) and must NOT touch the previous
    // checkpoint at the same path: the durable layer writes a temp file and
    // only renames after a successful fsync.
    nn::ModelConfig config;
    config.num_classes = 3;
    auto network = nn::make_finetune_head(config);
    const auto path =
        (std::filesystem::temp_directory_path() / "fptc_test_enospc.bin").string();
    nn::save_network(network, path);

    auto changed = nn::make_finetune_head(config);
    for (auto* p : changed.parameters()) {
        p->value.fill(42.0f);
    }
    util::FaultPlan plan;
    plan.enospc_after_bytes = 16; // budget exhausts inside the payload write
    util::fault_injector().configure(plan);
    try {
        nn::save_network(changed, path);
        FAIL() << "expected IoError from injected ENOSPC";
    } catch (const util::IoError& e) {
        EXPECT_TRUE(e.transient()) << e.what();
        EXPECT_NE(std::string(e.what()).find("errno"), std::string::npos) << e.what();
    }
    util::fault_injector().configure(util::FaultPlan{});

    // The original checkpoint still verifies and still holds the ORIGINAL
    // parameters (not the 42-filled ones).
    std::ifstream readback(path, std::ios::binary);
    std::string error;
    ASSERT_TRUE(nn::verify_checkpoint(readback, &error)) << error;
    auto restored = nn::make_finetune_head(config);
    nn::load_network(restored, path);
    EXPECT_EQ(restored.parameters()[0]->value.data()[0],
              network.parameters()[0]->value.data()[0]);
    std::remove(path.c_str());
}

TEST(Serialize, SaveNetworkRecoversFromTruncatedWrite)
{
    // Arm exactly one truncated-write fault: the first write attempt is cut
    // in half, verification fails, and the retry must produce a valid file.
    util::FaultPlan plan;
    plan.truncate_writes = 1;
    util::fault_injector().configure(plan);

    nn::ModelConfig config;
    config.num_classes = 3;
    auto network = nn::make_finetune_head(config);
    const auto path =
        (std::filesystem::temp_directory_path() / "fptc_test_truncated.bin").string();
    nn::save_network(network, path);
    EXPECT_EQ(util::fault_injector().counters().truncated_writes, 1u);
    util::fault_injector().configure(util::FaultPlan{});

    std::ifstream readback(path, std::ios::binary);
    std::string error;
    EXPECT_TRUE(nn::verify_checkpoint(readback, &error)) << error;
    std::remove(path.c_str());
}

} // namespace
