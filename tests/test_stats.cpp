// Unit tests for fptc::stats — distributions against published table
// values (including the paper's own q_0.05 = 2.949 and CD = 1.644),
// descriptive statistics, Friedman/Nemenyi ranking, Tukey HSD, KDE and
// classification metrics.
#include "fptc/stats/descriptive.hpp"
#include "fptc/stats/distributions.hpp"
#include "fptc/stats/kde.hpp"
#include "fptc/stats/metrics.hpp"
#include "fptc/stats/ranking.hpp"
#include "fptc/stats/tukey.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace {

using namespace fptc::stats;

TEST(Distributions, NormalCdfKnownValues)
{
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(normal_cdf(-1.0), 0.15865525, 1e-6);
}

TEST(Distributions, NormalQuantileInvertsCdf)
{
    for (const double p : {0.01, 0.1, 0.25, 0.5, 0.9, 0.975, 0.999}) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
    }
    EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
    EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
}

TEST(Distributions, LogGammaMatchesFactorials)
{
    EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);  // Gamma(5) = 4!
    EXPECT_NEAR(log_gamma(0.5), std::log(std::sqrt(std::acos(-1.0))), 1e-10);
}

TEST(Distributions, IncompleteBetaBounds)
{
    EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    // I_x(1,1) = x (uniform distribution).
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.37), 0.37, 1e-9);
    // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
    EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3), 1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-9);
}

TEST(Distributions, StudentTCriticalAgainstTables)
{
    // Standard two-sided critical values.
    EXPECT_NEAR(student_t_critical(1, 0.05), 12.706, 0.01);
    EXPECT_NEAR(student_t_critical(14, 0.05), 2.1448, 0.002);
    EXPECT_NEAR(student_t_critical(30, 0.05), 2.0423, 0.002);
    EXPECT_NEAR(student_t_critical(1000, 0.05), 1.962, 0.002);
}

TEST(Distributions, StudentTCdfSymmetry)
{
    EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
    EXPECT_NEAR(student_t_cdf(2.0, 9.0) + student_t_cdf(-2.0, 9.0), 1.0, 1e-9);
}

TEST(Distributions, StudentizedRangeAgainstTables)
{
    // q_{0.05}(k, infinity) from standard tables.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_NEAR(studentized_range_critical(2, inf, 0.05), 2.772, 0.01);
    EXPECT_NEAR(studentized_range_critical(7, inf, 0.05), 4.170, 0.01);
    // Finite df: q_{0.05}(3, 10) = 3.88.
    EXPECT_NEAR(studentized_range_critical(3, 10.0, 0.05), 3.88, 0.05);
}

TEST(Distributions, NemenyiQMatchesPaper)
{
    // Sec. 4.3.2: "q_{0.05} = 2.949" for k = 7.
    EXPECT_NEAR(nemenyi_q(7, 0.05), 2.949, 0.01);
}

TEST(Descriptive, MeanVarianceStd)
{
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, MedianAndPercentile)
{
    EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
    EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0}, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0}, 100.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0}, 50.0), 20.0);
}

TEST(Descriptive, MeanCiMatchesManualComputation)
{
    // 5 samples: mean 10, sd sqrt(2.5); t_{0.025,4} = 2.7764.
    const std::vector<double> v{8.0, 9.0, 10.0, 11.0, 12.0};
    const auto ci = mean_ci(v, 0.95);
    EXPECT_DOUBLE_EQ(ci.mean, 10.0);
    const double expected = 2.7764 * std::sqrt(2.5) / std::sqrt(5.0);
    EXPECT_NEAR(ci.half_width, expected, 1e-3);
    EXPECT_EQ(ci.n, 5u);
}

TEST(Descriptive, MeanCiDegenerate)
{
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(mean_ci(empty).half_width, 0.0);
    const std::vector<double> single{3.0};
    EXPECT_DOUBLE_EQ(mean_ci(single).mean, 3.0);
    EXPECT_DOUBLE_EQ(mean_ci(single).half_width, 0.0);
}

TEST(Descriptive, BoxSummaryOrdering)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i) {
        v.push_back(i);
    }
    const auto box = box_summary(v);
    EXPECT_LE(box.whisker_low, box.q1);
    EXPECT_LE(box.q1, box.median);
    EXPECT_LE(box.median, box.q3);
    EXPECT_LE(box.q3, box.whisker_high);
    EXPECT_NEAR(box.median, 50.5, 0.6);
}

TEST(Ranking, PaperExampleNoTies)
{
    // Sec. 4.3.1: accuracies 0.9, 0.7, 0.8 -> ranks 1, 3, 2.
    const std::vector<double> scores{0.9, 0.7, 0.8};
    const auto ranks = rank_scores(scores);
    EXPECT_DOUBLE_EQ(ranks[0], 1.0);
    EXPECT_DOUBLE_EQ(ranks[1], 3.0);
    EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(Ranking, PaperExampleWithTies)
{
    // Sec. 4.3.1: 0.9, 0.9, 0.8 -> ranks 1.5, 1.5, 3.
    const std::vector<double> scores{0.9, 0.9, 0.8};
    const auto ranks = rank_scores(scores);
    EXPECT_DOUBLE_EQ(ranks[0], 1.5);
    EXPECT_DOUBLE_EQ(ranks[1], 1.5);
    EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(Ranking, CriticalDistanceMatchesPaperFormula)
{
    // Paper: alpha = 0.05, k = 7, N = 30 -> CD = 1.644.
    std::vector<std::vector<double>> scores(30, std::vector<double>(7));
    fptc::util::Rng rng(1);
    for (auto& row : scores) {
        for (auto& v : row) {
            v = rng.uniform();
        }
    }
    const auto result = critical_distance_analysis(scores, 0.05);
    EXPECT_NEAR(result.critical_distance, 1.644, 0.01);
    EXPECT_EQ(result.k, 7);
    EXPECT_EQ(result.n, 30u);
    // Average ranks must average to (k+1)/2 = 4.
    double total = 0.0;
    for (const double r : result.average_ranks) {
        total += r;
    }
    EXPECT_NEAR(total / 7.0, 4.0, 1e-9);
}

TEST(Ranking, ClearWinnerGetsRankOne)
{
    std::vector<std::vector<double>> scores;
    fptc::util::Rng rng(2);
    for (int i = 0; i < 20; ++i) {
        // Treatment 2 always wins, treatment 0 always loses.
        scores.push_back({0.1 + 0.01 * rng.uniform(), 0.5 + 0.01 * rng.uniform(),
                          0.9 + 0.01 * rng.uniform()});
    }
    const auto result = critical_distance_analysis(scores);
    EXPECT_DOUBLE_EQ(result.average_ranks[2], 1.0);
    EXPECT_DOUBLE_EQ(result.average_ranks[0], 3.0);
    EXPECT_GT(result.friedman_statistic, 10.0);
}

TEST(Ranking, RendersPlot)
{
    std::vector<std::vector<double>> scores(10, {0.9, 0.8, 0.7});
    const auto result = critical_distance_analysis(scores);
    const auto plot = render_cd_plot(result, {"a", "b", "c"});
    EXPECT_NE(plot.find("a"), std::string::npos);
    EXPECT_NE(plot.find("Critical distance"), std::string::npos);
}

TEST(Tukey, SeparatedGroupsAreSignificant)
{
    std::vector<std::vector<double>> groups(3);
    fptc::util::Rng rng(3);
    for (int i = 0; i < 25; ++i) {
        groups[0].push_back(rng.normal(0.0, 1.0));
        groups[1].push_back(rng.normal(0.2, 1.0));  // close to group 0
        groups[2].push_back(rng.normal(8.0, 1.0));  // far away
    }
    const auto result = tukey_hsd(groups, 0.05);
    ASSERT_EQ(result.comparisons.size(), 3u);
    // (0,1): not different; (0,2) and (1,2): different.
    EXPECT_FALSE(result.comparisons[0].significant);
    EXPECT_TRUE(result.comparisons[1].significant);
    EXPECT_TRUE(result.comparisons[2].significant);
    EXPECT_LT(result.comparisons[1].p_value, 1e-4);
    EXPECT_GT(result.comparisons[0].p_value, 0.2);
}

TEST(Tukey, HandlesUnequalGroupSizes)
{
    std::vector<std::vector<double>> groups = {
        {1.0, 2.0, 3.0, 2.0, 1.5},
        {1.2, 2.2, 2.8},
    };
    const auto result = tukey_hsd(groups);
    EXPECT_EQ(result.comparisons.size(), 1u);
    EXPECT_FALSE(result.comparisons[0].significant);
}

TEST(Tukey, RejectsDegenerateInput)
{
    EXPECT_THROW(tukey_hsd({{1.0, 2.0}}), std::invalid_argument);
    EXPECT_THROW(tukey_hsd({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

TEST(Tukey, RendersTable)
{
    std::vector<std::vector<double>> groups = {{1.0, 2.0, 1.5}, {1.1, 2.1, 1.4}};
    const auto text = render_tukey_table(tukey_hsd(groups), {"32x32", "64x64"});
    EXPECT_NE(text.find("Is Different?"), std::string::npos);
    EXPECT_NE(text.find("32x32"), std::string::npos);
}

TEST(Kde, IntegratesToOne)
{
    fptc::util::Rng rng(5);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i) {
        samples.push_back(rng.normal(750.0, 100.0));
    }
    const auto curve = gaussian_kde(samples, 0.0, 1500.0, 300);
    double integral = 0.0;
    for (std::size_t i = 1; i < curve.xs.size(); ++i) {
        integral += 0.5 * (curve.ys[i] + curve.ys[i - 1]) * (curve.xs[i] - curve.xs[i - 1]);
    }
    EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, PeakNearTheData)
{
    const std::vector<double> samples{500.0, 510.0, 490.0, 505.0, 495.0};
    const auto curve = gaussian_kde(samples, 0.0, 1500.0, 500);
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < curve.ys.size(); ++i) {
        if (curve.ys[i] > curve.ys[argmax]) {
            argmax = i;
        }
    }
    EXPECT_NEAR(curve.xs[argmax], 500.0, 15.0);
}

TEST(Kde, CurveDistanceDetectsShift)
{
    fptc::util::Rng rng(6);
    std::vector<double> a;
    std::vector<double> b;
    std::vector<double> c;
    for (int i = 0; i < 400; ++i) {
        a.push_back(rng.normal(1450.0, 40.0));
        b.push_back(rng.normal(1450.0, 40.0)); // same distribution
        c.push_back(rng.normal(1290.0, 60.0)); // the human Google-search shift
    }
    const auto ka = gaussian_kde(a, 0.0, 1500.0, 200, 25.0);
    const auto kb = gaussian_kde(b, 0.0, 1500.0, 200, 25.0);
    const auto kc = gaussian_kde(c, 0.0, 1500.0, 200, 25.0);
    EXPECT_LT(curve_distance(ka, kb), 0.1);
    EXPECT_GT(curve_distance(ka, kc), 0.5);
}

TEST(Kde, SilvermanFallsBackOnDegenerateSample)
{
    const std::vector<double> constant{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(silverman_bandwidth(constant), 1.0);
}

TEST(Metrics, AccuracyAndCounts)
{
    ConfusionMatrix m(3);
    m.add(0, 0);
    m.add(0, 1);
    m.add(1, 1);
    m.add(2, 2);
    EXPECT_EQ(m.total(), 4u);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
    EXPECT_EQ(m.count(0, 1), 1u);
    EXPECT_THROW(m.add(3, 0), std::out_of_range);
}

TEST(Metrics, PerClassRecallPrecisionF1)
{
    ConfusionMatrix m(2);
    // class 0: 3 true, 2 found; class 1: 2 true, both found but 1 extra.
    m.add(0, 0);
    m.add(0, 0);
    m.add(0, 1);
    m.add(1, 1);
    m.add(1, 1);
    const auto recall = m.per_class_recall();
    EXPECT_NEAR(recall[0], 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(recall[1], 1.0);
    const auto precision = m.per_class_precision();
    EXPECT_DOUBLE_EQ(precision[0], 1.0);
    EXPECT_NEAR(precision[1], 2.0 / 3.0, 1e-12);
    const auto f1 = m.per_class_f1();
    EXPECT_NEAR(f1[0], 0.8, 1e-12);
    EXPECT_NEAR(f1[1], 0.8, 1e-12);
    EXPECT_NEAR(m.macro_f1(), 0.8, 1e-12);
}

TEST(Metrics, WeightedF1FollowsSupport)
{
    ConfusionMatrix m(2);
    // class 0 has 9 samples all correct; class 1 has 1 sample, wrong.
    for (int i = 0; i < 9; ++i) {
        m.add(0, 0);
    }
    m.add(1, 0);
    const auto f1 = m.per_class_f1();
    const double expected = (f1[0] * 9.0 + f1[1] * 1.0) / 10.0;
    EXPECT_NEAR(m.weighted_f1(), expected, 1e-12);
    // Macro F1 treats classes equally and is much lower here.
    EXPECT_LT(m.macro_f1(), m.weighted_f1());
}

TEST(Metrics, RowNormalization)
{
    ConfusionMatrix m(2);
    m.add(0, 0);
    m.add(0, 1);
    m.add(0, 1);
    const auto rows = m.row_normalized();
    EXPECT_NEAR(rows[0][0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(rows[0][1], 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(rows[1][0], 0.0); // empty row stays zero
}

TEST(Metrics, MergeAccumulates)
{
    ConfusionMatrix a(2);
    ConfusionMatrix b(2);
    a.add(0, 0);
    b.add(1, 1);
    b.add(1, 0);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.count(1, 0), 1u);
    ConfusionMatrix c(3);
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Metrics, AccuracyOfVectors)
{
    const std::vector<std::size_t> truth{0, 1, 2, 1};
    const std::vector<std::size_t> predicted{0, 1, 1, 1};
    EXPECT_DOUBLE_EQ(accuracy_of(truth, predicted), 0.75);
}

TEST(DegradedCell, CompleteCellHasNoMissingMarker)
{
    const std::vector<double> scores{90.0, 92.0, 94.0};
    const auto cell = fptc::stats::degraded_cell_ci(scores, 3);
    EXPECT_TRUE(cell.complete());
    EXPECT_FALSE(cell.empty());
    EXPECT_EQ(cell.missing, 0u);
    EXPECT_DOUBLE_EQ(cell.ci.mean, 92.0);
    const auto rendered = fptc::util::format_degraded_mean_ci(cell.ci.mean, cell.ci.half_width,
                                                              cell.ci.n, cell.missing);
    EXPECT_EQ(rendered.find("†"), std::string::npos);
}

TEST(DegradedCell, ZeroSurvivorsRendersNaMarkerNeverNan)
{
    const std::vector<double> none;
    const auto cell = fptc::stats::degraded_cell_ci(none, 4);
    EXPECT_TRUE(cell.empty());
    EXPECT_EQ(cell.missing, 4u);
    // The CI over zero survivors must be inert zeros, not NaN.
    EXPECT_FALSE(std::isnan(cell.ci.mean));
    EXPECT_FALSE(std::isnan(cell.ci.half_width));
    const auto rendered = fptc::util::format_degraded_mean_ci(cell.ci.mean, cell.ci.half_width,
                                                              cell.ci.n, cell.missing);
    EXPECT_EQ(rendered, "n/a †4");
    EXPECT_EQ(rendered.find("nan"), std::string::npos);
}

TEST(DegradedCell, OneSurvivorHasZeroHalfWidth)
{
    const std::vector<double> one{88.5};
    const auto cell = fptc::stats::degraded_cell_ci(one, 3);
    EXPECT_EQ(cell.missing, 2u);
    EXPECT_DOUBLE_EQ(cell.ci.mean, 88.5);
    EXPECT_DOUBLE_EQ(cell.ci.half_width, 0.0);  // no spread from one value
    EXPECT_FALSE(std::isnan(cell.ci.half_width));
    const auto rendered = fptc::util::format_degraded_mean_ci(cell.ci.mean, cell.ci.half_width,
                                                              cell.ci.n, cell.missing);
    EXPECT_EQ(rendered, "88.50 ±0.00 †2");
}

TEST(DegradedCell, PartialSurvivorsKeepTheirCiAndTheMarker)
{
    const std::vector<double> scores{90.0, 94.0};
    const auto cell = fptc::stats::degraded_cell_ci(scores, 5);
    EXPECT_EQ(cell.missing, 3u);
    EXPECT_DOUBLE_EQ(cell.ci.mean, 92.0);
    EXPECT_GT(cell.ci.half_width, 0.0);
    const auto rendered = fptc::util::format_degraded_mean_ci(cell.ci.mean, cell.ci.half_width,
                                                              cell.ci.n, cell.missing);
    EXPECT_NE(rendered.find("†3"), std::string::npos);
    EXPECT_EQ(rendered.find("nan"), std::string::npos);
}

TEST(DegradedCell, MoreSurvivorsThanExpectedClampsMissingToZero)
{
    // Defensive: a miscounted `expected` below the survivor count must not
    // underflow into a giant missing marker.
    const std::vector<double> scores{1.0, 2.0, 3.0};
    const auto cell = fptc::stats::degraded_cell_ci(scores, 2);
    EXPECT_EQ(cell.missing, 0u);
    EXPECT_TRUE(cell.complete());
}

} // namespace
