// Streaming-serve unit tests: queue semantics, ingest validation, flow
// table windowing/eviction/accounting, circuit-breaker ladder, and
// end-to-end service runs under each fault class.

#include "fptc/serve/backend.hpp"
#include "fptc/serve/breaker.hpp"
#include "fptc/serve/event.hpp"
#include "fptc/serve/flow_table.hpp"
#include "fptc/serve/queue.hpp"
#include "fptc/serve/service.hpp"
#include "fptc/serve/stream.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/membudget.hpp"

#include "fptc/util/env.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

using namespace fptc;
using namespace std::chrono_literals;

namespace {

serve::PacketEvent make_event(std::uint64_t flow_id, double ts, double size = 100.0)
{
    return serve::PacketEvent{.flow_id = flow_id, .label = 0, .timestamp = ts, .size = size};
}

/// Reconfigure the process-wide injector and restore inertness on scope exit.
struct FaultGuard {
    explicit FaultGuard(const util::FaultPlan& plan) { util::fault_injector().configure(plan); }
    ~FaultGuard() { util::fault_injector().configure(util::FaultPlan{}); }
};

} // namespace

// ---------------------------------------------------------------------------
// event validation
// ---------------------------------------------------------------------------

TEST(ServeEvent, AcceptsWellFormedEvent)
{
    EXPECT_EQ(serve::validate(make_event(1, 0.5)), nullptr);
    EXPECT_EQ(serve::validate(make_event(7, 0.0, 1500.0)), nullptr);
}

TEST(ServeEvent, RejectsMalformedEvents)
{
    EXPECT_STREQ(serve::validate(make_event(0, 0.5)), "no_flow_id");
    EXPECT_STREQ(serve::validate(make_event(1, std::nan(""))), "nan_timestamp");
    EXPECT_STREQ(serve::validate(make_event(1, -0.1)), "negative_timestamp");
    EXPECT_STREQ(serve::validate(make_event(1, 0.5, -42.0)), "bad_size");
    EXPECT_STREQ(serve::validate(make_event(1, 0.5, 1e9)), "bad_size");
    EXPECT_STREQ(serve::validate(make_event(1, 0.5, 0.0)), "bad_size");
    auto inf_ts = make_event(1, std::numeric_limits<double>::infinity());
    EXPECT_STREQ(serve::validate(inf_ts), "nan_timestamp");
}

// ---------------------------------------------------------------------------
// bounded queue
// ---------------------------------------------------------------------------

TEST(ServeQueue, TryPushRefusesWhenFull)
{
    serve::BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.try_push(1));
    EXPECT_TRUE(queue.try_push(2));
    EXPECT_FALSE(queue.try_push(3));
    EXPECT_EQ(queue.pop(0ms).value(), 1);
    EXPECT_TRUE(queue.try_push(3));
}

TEST(ServeQueue, CloseDrainsThenRefuses)
{
    serve::BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.try_push(1));
    queue.close();
    EXPECT_FALSE(queue.try_push(2));
    EXPECT_EQ(queue.pop(0ms).value(), 1);
    EXPECT_FALSE(queue.pop(0ms).has_value());  // closed + drained: immediate
}

TEST(ServeQueue, DrainTakesUpToMax)
{
    serve::BoundedQueue<int> queue(8);
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(queue.try_push(i));
    }
    std::vector<int> out;
    EXPECT_EQ(queue.drain(out, 3, 0ms), 3u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(queue.size(), 2u);
}

TEST(ServeQueue, PushWaitSucceedsWhenConsumerDrains)
{
    serve::BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.try_push(1));
    std::thread consumer([&] {
        std::this_thread::sleep_for(20ms);
        (void)queue.pop(1000ms);
    });
    EXPECT_TRUE(queue.push_wait(2, 2000ms));
    consumer.join();
    EXPECT_EQ(queue.pop(0ms).value(), 2);
}

TEST(ServeQueue, PushWaitTimesOutWhenStuckFull)
{
    serve::BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.try_push(1));
    EXPECT_FALSE(queue.push_wait(2, 10ms));
}

// ---------------------------------------------------------------------------
// flow table
// ---------------------------------------------------------------------------

TEST(ServeFlowTable, WindowClosesInStreamTime)
{
    serve::FlowTable table(1 << 20, 15.0);
    ASSERT_TRUE(table.add_packet(make_event(1, 0.0)).new_flow);
    ASSERT_TRUE(table.add_packet(make_event(2, 5.0)).new_flow);
    ASSERT_TRUE(table.add_packet(make_event(1, 6.0)).admitted);

    EXPECT_TRUE(table.pop_ready(14.9).empty());
    auto ready = table.pop_ready(15.0);  // flow 1 closed (first_ts 0), flow 2 not
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].flow_id, 1u);
    EXPECT_EQ(ready[0].flow.packets.size(), 2u);
    EXPECT_EQ(table.size(), 1u);

    ready = table.pop_ready(20.0);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].flow_id, 2u);
    EXPECT_EQ(table.size(), 0u);
}

TEST(ServeFlowTable, FlushReleasesEverything)
{
    serve::FlowTable table(1 << 20, 15.0);
    ASSERT_TRUE(table.add_packet(make_event(1, 0.0)).admitted);
    ASSERT_TRUE(table.add_packet(make_event(2, 1.0)).admitted);
    EXPECT_EQ(table.flush_all().size(), 2u);
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.bytes(), 0u);
}

TEST(ServeFlowTable, EvictsLeastRecentlyActiveUnderPressure)
{
    // Cap fits two flows plus a little; the third admission evicts the
    // least recently *active* flow.
    const std::size_t cap = 2 * (serve::FlowTable::kFlowOverhead + serve::FlowTable::kPacketCost) +
                            serve::FlowTable::kFlowOverhead;
    serve::FlowTable table(cap + serve::FlowTable::kPacketCost, 15.0);
    ASSERT_TRUE(table.add_packet(make_event(1, 0.0)).new_flow);
    ASSERT_TRUE(table.add_packet(make_event(2, 0.1)).new_flow);
    ASSERT_TRUE(table.add_packet(make_event(1, 0.2)).admitted);  // touch flow 1

    const auto outcome = table.add_packet(make_event(3, 0.3));
    EXPECT_TRUE(outcome.new_flow);
    EXPECT_EQ(outcome.evicted, 1u);  // flow 2 was coldest
    EXPECT_EQ(table.evictions(), 1u);
    EXPECT_EQ(table.size(), 2u);

    auto ready = table.flush_all();
    std::vector<std::uint64_t> ids;
    for (const auto& flow : ready) {
        ids.push_back(flow.flow_id);
    }
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 3}));
}

TEST(ServeFlowTable, BalancesMemBudgetCharges)
{
    const std::size_t before = util::mem_budget().in_use();
    {
        serve::FlowTable table(1 << 20, 15.0);
        for (int i = 1; i <= 20; ++i) {
            (void)table.add_packet(make_event(static_cast<std::uint64_t>(i), 0.01 * i));
        }
        EXPECT_GT(util::mem_budget().in_use(), before);
        auto ready = table.pop_ready(100.0);
        EXPECT_EQ(ready.size(), 20u);
        // ReadyFlows still hold their charges until destroyed.
        EXPECT_GT(util::mem_budget().in_use(), before);
    }
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

// ---------------------------------------------------------------------------
// circuit breaker
// ---------------------------------------------------------------------------

TEST(ServeBreaker, DeadlineTripsImmediatelyAndProbeRecovers)
{
    serve::CircuitBreaker breaker({.p99_ms = 100.0, .failure_threshold = 3, .cooldown_batches = 2});
    EXPECT_EQ(breaker.plan_batch(), serve::Tier::full);
    breaker.record_failure(true);
    EXPECT_EQ(breaker.tier(), serve::Tier::reduced);
    EXPECT_EQ(breaker.trips(), 1u);

    // Cooldown: two batches at the degraded tier...
    EXPECT_EQ(breaker.plan_batch(), serve::Tier::reduced);
    breaker.record_success(1.0);
    EXPECT_EQ(breaker.plan_batch(), serve::Tier::reduced);
    breaker.record_success(1.0);
    // ...then a half-open probe one tier up, whose success recovers it.
    EXPECT_EQ(breaker.plan_batch(), serve::Tier::full);
    EXPECT_TRUE(breaker.probing());
    breaker.record_success(1.0);
    EXPECT_EQ(breaker.tier(), serve::Tier::full);
    EXPECT_EQ(breaker.recoveries(), 1u);
}

TEST(ServeBreaker, ConsecutiveFailuresTripAndFailedProbeStaysDegraded)
{
    serve::CircuitBreaker breaker({.p99_ms = 100.0, .failure_threshold = 2, .cooldown_batches = 1});
    breaker.record_failure(false);
    EXPECT_EQ(breaker.tier(), serve::Tier::full);  // below threshold
    breaker.record_failure(false);
    EXPECT_EQ(breaker.tier(), serve::Tier::reduced);

    (void)breaker.plan_batch();  // burns the cooldown
    EXPECT_EQ(breaker.plan_batch(), serve::Tier::full);  // probe
    breaker.record_failure(false);                       // probe fails
    EXPECT_EQ(breaker.tier(), serve::Tier::reduced);
    EXPECT_EQ(breaker.recoveries(), 0u);
}

TEST(ServeBreaker, LadderBottomsOutAtShed)
{
    serve::CircuitBreaker breaker({.p99_ms = 100.0, .failure_threshold = 1, .cooldown_batches = 99});
    for (int i = 0; i < 5; ++i) {
        breaker.record_failure(true);
    }
    EXPECT_EQ(breaker.tier(), serve::Tier::shed);
    EXPECT_EQ(breaker.trips(), 3u);  // full->reduced->fallback->shed
}

TEST(ServeBreaker, LatencyP99Trips)
{
    serve::CircuitBreaker breaker({.p99_ms = 50.0, .failure_threshold = 3, .cooldown_batches = 4});
    for (std::size_t i = 0; i < serve::CircuitBreaker::kMinSamples; ++i) {
        breaker.record_success(200.0);
    }
    EXPECT_EQ(breaker.tier(), serve::Tier::reduced);
    EXPECT_EQ(breaker.trips(), 1u);
}

// ---------------------------------------------------------------------------
// stream + end-to-end service
// ---------------------------------------------------------------------------

TEST(ServeStream, DeterministicPerSeed)
{
    serve::InterleavedStream a({.flows = 20, .seed = 7});
    serve::InterleavedStream b({.flows = 20, .seed = 7});
    ASSERT_EQ(a.base_events(), b.base_events());
    for (std::size_t i = 0; i < a.base_events(); ++i) {
        const auto ea = a.next();
        const auto eb = b.next();
        ASSERT_TRUE(ea.has_value());
        ASSERT_TRUE(eb.has_value());
        EXPECT_EQ(ea->flow_id, eb->flow_id);
        EXPECT_EQ(ea->timestamp, eb->timestamp);
        EXPECT_EQ(ea->size, eb->size);
    }
}

TEST(ServeStream, EventsAreTimeSortedAndValid)
{
    serve::InterleavedStream stream({.flows = 30, .seed = 3});
    double last = 0.0;
    while (auto event = stream.next()) {
        EXPECT_EQ(serve::validate(*event), nullptr);
        EXPECT_GE(event->timestamp, last);
        last = event->timestamp;
    }
    EXPECT_EQ(stream.flow_count(), 30u);
}

namespace {

serve::ServeConfig quick_config()
{
    serve::ServeConfig config;
    config.batch_size = 8;
    config.flowpic_dim = 16;  // both CNN tiers tiny: unit tests stay fast
    config.reduced_dim = 16;
    config.deadline_ms = 2000.0;
    return config;
}

serve::ServeReport run_service(const serve::ServeConfig& config, std::size_t flows)
{
    auto backends = serve::make_backends(config.flowpic_dim, config.reduced_dim,
                                         config.num_classes, 42);
    serve::InterleavedStream stream({.flows = flows, .seed = 11});
    serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                       *backends.fallback);
    auto report = service.run(stream);
    EXPECT_EQ(report.events_quarantined, stream.mangled());
    return report;
}

} // namespace

TEST(ServeService, NominalRunClassifiesEverythingAndBalances)
{
    const std::size_t before = util::mem_budget().in_use();
    const auto report = run_service(quick_config(), 40);
    EXPECT_EQ(report.flows_ingested, 40u);
    EXPECT_EQ(report.flows_classified, 40u);
    EXPECT_EQ(report.shed_total(), 0u);
    EXPECT_TRUE(report.accounted());
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(ServeService, MangledPacketsAreQuarantinedExactly)
{
    util::FaultPlan plan;
    plan.seed = 5;
    plan.serve_mangle_percent = 10.0;
    const FaultGuard guard(plan);

    const auto report = run_service(quick_config(), 30);
    EXPECT_GT(report.events_quarantined, 0u);
    EXPECT_TRUE(report.accounted());
}

TEST(ServeService, BackendStallTripsBreakerAndShedsTyped)
{
    util::FaultPlan plan;
    plan.serve_stall_backend = 2;
    const FaultGuard guard(plan);

    auto config = quick_config();
    config.deadline_ms = 200.0;  // stalled batches expire; healthy ones fit even under tsan
    config.breaker_cooldown = 1;
    const std::size_t before = util::mem_budget().in_use();
    const auto report = run_service(config, 60);
    EXPECT_GT(report.shed_deadline, 0u);
    EXPECT_GT(report.breaker_trips, 0u);
    EXPECT_GT(report.breaker_recoveries, 0u);
    EXPECT_TRUE(report.accounted());
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(ServeService, BurstUnderTightMemoryShedsTypedAndBalances)
{
    util::FaultPlan plan;
    plan.serve_burst = 48;
    const FaultGuard guard(plan);

    // Hold every flow resident (window longer than the stream) against the
    // 1 MB table-cap floor: the whole stream plus its burst clones exceeds
    // the cap, so LRU eviction must fire and every eviction must surface as
    // a typed mem_budget shed.
    auto config = quick_config();
    config.mem_mb = 1;
    config.window_seconds = 1000.0;
    const std::size_t before = util::mem_budget().in_use();
    const auto report = run_service(config, 200);
    EXPECT_GT(report.shed_mem_budget, 0u);
    EXPECT_TRUE(report.accounted());
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(ServeConfigEnv, RejectsMalformedKnob)
{
    ::setenv("FPTC_SERVE_BATCH", "0", 1);
    EXPECT_THROW((void)serve::ServeConfig::from_env(), util::EnvError);
    ::setenv("FPTC_SERVE_DEADLINE_MS", "-3", 1);
    EXPECT_THROW((void)serve::ServeConfig::from_env(), util::EnvError);
    ::unsetenv("FPTC_SERVE_BATCH");
    ::unsetenv("FPTC_SERVE_DEADLINE_MS");
    EXPECT_NO_THROW((void)serve::ServeConfig::from_env());
}
