#!/usr/bin/env bash
# Resource-governance gate (MemBudgetQuick ctest): run the tiny table4
# campaign under a deliberately tight FPTC_MEM_BUDGET_MB and assert the
# OOM-graceful contract of the executor's admission control:
#
#   * the campaign COMPLETES with exit 0 — memory pressure degrades cells
#     (deferred admissions, shrink retries, †N markers), it never aborts,
#   * the accountant's peak never exceeds the configured budget (the hard
#     cap is enforced at reserve time, not merely observed),
#   * accounting is balanced: in_use returns to 0 by the end of the run,
#   * the governance actually engaged — at least one deferral, shrink,
#     rejection or degraded cell; a budget that constrains nothing would
#     make this gate vacuous,
#   * the __membudget__ journal record is present for post-mortems.
#
# Usage, from the repo root (binary defaults to build/bench/table4_augmentations):
#
#   tests/run_membudget.sh [path/to/table4_augmentations]
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${1:-build/bench/table4_augmentations}
if [[ ! -x "$BIN" ]]; then
    echo "run_membudget: FAIL: bench binary '$BIN' not found (build the default preset first)" >&2
    exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/fptc_membudget.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

# Tight enough that the 64x64 units (the big footprints of the quick
# campaign) cannot all overlap, loose enough that every unit still fits the
# pool-idle admission path and the campaign completes.
BUDGET_MB=24

echo "run_membudget: quick table4 under FPTC_MEM_BUDGET_MB=$BUDGET_MB, 2 jobs..."
status=0
env FPTC_SPLITS=1 FPTC_SEEDS=1 FPTC_EPOCHS=1 FPTC_SAMPLES=0.1 FPTC_PER_CLASS=25 \
    FPTC_JOBS=2 FPTC_MEM_BUDGET_MB="$BUDGET_MB" \
    FPTC_JOURNAL="$WORK/journal.jsonl" FPTC_ARTIFACTS_DIR="$WORK" \
    "$BIN" >"$WORK/stdout.txt" 2>"$WORK/stderr.txt" || status=$?

if [[ "$status" != 0 ]]; then
    echo "run_membudget: FAIL: campaign under memory budget exited with $status (must degrade, never abort)" >&2
    tail -20 "$WORK/stderr.txt" >&2
    exit 1
fi

# The executor logs its accountant state at the end of run_all:
#   executor[table4]: mem in_use=A peak=B budget=C rejections=D deferred=E shrunk=F
MEM_LINE=$(grep -o 'mem in_use=[0-9]* peak=[0-9]* budget=[0-9]* rejections=[0-9]* deferred=[0-9]* shrunk=[0-9]*' \
    "$WORK/stderr.txt" | tail -1)
if [[ -z "$MEM_LINE" ]]; then
    echo "run_membudget: FAIL: no executor mem line on stderr" >&2
    exit 1
fi
field() { echo "$MEM_LINE" | grep -o "$1=[0-9]*" | cut -d= -f2; }
IN_USE=$(field in_use)
PEAK=$(field peak)
BUDGET_BYTES=$(field budget)
REJECTIONS=$(field rejections)
DEFERRED=$(field deferred)
SHRUNK=$(field shrunk)
echo "run_membudget: $MEM_LINE"

if [[ "$BUDGET_BYTES" != $((BUDGET_MB * 1024 * 1024)) ]]; then
    echo "run_membudget: FAIL: accountant budget $BUDGET_BYTES B does not match FPTC_MEM_BUDGET_MB=$BUDGET_MB" >&2
    exit 1
fi
if [[ "$PEAK" -gt "$BUDGET_BYTES" ]]; then
    echo "run_membudget: FAIL: peak accounted bytes $PEAK exceed the budget $BUDGET_BYTES" >&2
    exit 1
fi
if [[ "$PEAK" -eq 0 ]]; then
    echo "run_membudget: FAIL: peak is 0 — the hot owners charged nothing" >&2
    exit 1
fi
if [[ "$IN_USE" != 0 ]]; then
    echo "run_membudget: FAIL: $IN_USE accounted bytes still in use after the campaign (leak)" >&2
    exit 1
fi

DEGRADED=0
if grep -q '†' "$WORK/stdout.txt"; then DEGRADED=1; fi
if [[ "$DEFERRED" -eq 0 && "$SHRUNK" -eq 0 && "$REJECTIONS" -eq 0 && "$DEGRADED" -eq 0 ]]; then
    echo "run_membudget: FAIL: budget $BUDGET_MB MB constrained nothing (no deferral/shrink/rejection/degrade) — tighten it" >&2
    exit 1
fi

if ! grep -q '__membudget__' "$WORK/journal.jsonl"; then
    echo "run_membudget: FAIL: no __membudget__ record in the journal" >&2
    exit 1
fi

for artifact in table4_script.txt table4_human.txt table4_leftover.txt; do
    if [[ ! -s "$WORK/$artifact" ]]; then
        echo "run_membudget: FAIL: campaign under budget produced no $artifact" >&2
        exit 1
    fi
done

echo "run_membudget: PASS (peak $PEAK B <= budget $BUDGET_BYTES B; deferred=$DEFERRED shrunk=$SHRUNK rejections=$REJECTIONS degraded-marks=$DEGRADED; balanced)"
