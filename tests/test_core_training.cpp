// Tests of the training loops: supervised early stopping, evaluation,
// SimCLR pre-training mechanics, the frozen-trunk fine-tuning path and the
// divergence guard (NaN-loss detection, rollback, bounded retries).
#include "fptc/core/campaign.hpp"
#include "fptc/core/guard.hpp"
#include "fptc/core/simclr.hpp"
#include "fptc/core/trainer.hpp"
#include "fptc/util/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace fptc;
using namespace fptc::core;

/// Tiny two-class sample set with an unmistakable signature: class 0 has a
/// hot top-left corner, class 1 a hot bottom-right corner.
SampleSet toy_samples(std::size_t per_class, std::uint64_t seed)
{
    util::Rng rng(seed);
    SampleSet set;
    set.dim = 32;
    for (std::size_t label = 0; label < 2; ++label) {
        for (std::size_t i = 0; i < per_class; ++i) {
            std::vector<float> image(32 * 32, 0.0f);
            for (int k = 0; k < 40; ++k) {
                const auto r = static_cast<std::size_t>(rng.uniform_int(0, 9));
                const auto c = static_cast<std::size_t>(rng.uniform_int(0, 9));
                if (label == 0) {
                    image[r * 32 + c] = 1.0f;
                } else {
                    image[(31 - r) * 32 + (31 - c)] = 1.0f;
                }
            }
            set.images.push_back(std::move(image));
            set.labels.push_back(label);
        }
    }
    return set;
}

TEST(Trainer, LearnsToySeparation)
{
    const auto train = toy_samples(40, 1);
    const auto validation = toy_samples(10, 2);
    const auto test = toy_samples(20, 3);

    nn::ModelConfig model_config;
    model_config.num_classes = 2;
    model_config.with_dropout = false;
    auto network = nn::make_supervised_network(model_config);

    TrainConfig config;
    config.max_epochs = 10;
    const auto result = train_supervised(network, train, validation, config);
    EXPECT_GE(result.epochs_run, 1);
    EXPECT_LE(result.epochs_run, 10);

    const auto confusion = evaluate(network, test, 2);
    EXPECT_GT(confusion.accuracy(), 0.9);
    EXPECT_EQ(confusion.total(), test.size());
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau)
{
    const auto train = toy_samples(30, 4);
    const auto validation = toy_samples(10, 5);
    nn::ModelConfig model_config;
    model_config.num_classes = 2;
    auto network = nn::make_supervised_network(model_config);

    TrainConfig config;
    config.max_epochs = 40;
    config.patience = 2;
    config.min_delta = 0.5; // essentially impossible improvement threshold
    const auto result = train_supervised(network, train, validation, config);
    EXPECT_LE(result.epochs_run, 4); // stops after patience epochs
    EXPECT_EQ(result.validation_history.size(), static_cast<std::size_t>(result.epochs_run));
}

TEST(Trainer, MonitorsTrainLossWithoutValidation)
{
    const auto train = toy_samples(20, 6);
    nn::ModelConfig model_config;
    model_config.num_classes = 2;
    auto network = nn::make_supervised_network(model_config);
    TrainConfig config;
    config.max_epochs = 6;
    const auto result = train_supervised(network, train, SampleSet{}, config);
    EXPECT_GE(result.epochs_run, 1);
    EXPECT_GT(result.validation_history.size(), 0u);
}

TEST(Trainer, RejectsEmptyTrainingSet)
{
    nn::ModelConfig model_config;
    auto network = nn::make_supervised_network(model_config);
    EXPECT_THROW((void)train_supervised(network, SampleSet{}, SampleSet{}, TrainConfig{}),
                 std::invalid_argument);
}

TEST(Trainer, EvaluateLossDecreasesAfterTraining)
{
    const auto train = toy_samples(30, 7);
    nn::ModelConfig model_config;
    model_config.num_classes = 2;
    model_config.with_dropout = false;
    auto network = nn::make_supervised_network(model_config);
    const double before = evaluate_loss(network, train);
    TrainConfig config;
    config.max_epochs = 5;
    (void)train_supervised(network, train, SampleSet{}, config);
    const double after = evaluate_loss(network, train);
    EXPECT_LT(after, before);
}

TEST(SimClr, PretrainImprovesTop5Accuracy)
{
    // Unlabeled flows from the synthetic UCDAVIS19 generator.
    trafficgen::UcdavisOptions options;
    options.samples_scale = 0.05;
    const auto dataset =
        trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::pretraining, options);

    nn::ModelConfig model_config;
    model_config.with_dropout = false;
    auto network = nn::make_simclr_network(model_config);
    const augment::ViewPairGenerator views;

    SimClrConfig config;
    config.max_epochs = 4;
    config.patience = 4;
    const auto result = pretrain_simclr(network, dataset.flows, views, config);
    EXPECT_GE(result.epochs_run, 1);
    // With 64-view batches, random top-5 would be ~5/63 = 8%; a pre-trained
    // representation must do much better.
    EXPECT_GT(result.best_top5_accuracy, 0.3);
}

TEST(SimClr, EmbedSetProducesRepresentationRows)
{
    nn::ModelConfig model_config;
    auto network = nn::make_simclr_network(model_config);
    const auto samples = toy_samples(3, 8);
    const auto embedded = embed_set(network, samples);
    EXPECT_EQ(embedded.features.shape(), (nn::Shape{6, nn::kRepresentationDim}));
    EXPECT_EQ(embedded.labels.size(), 6u);
}

TEST(SimClr, HeadTrainsOnSeparableEmbeddings)
{
    // Hand-made embeddings: class determined by the sign of feature 0.
    EmbeddedSet train;
    train.features = nn::Tensor({40, nn::kRepresentationDim});
    for (std::size_t i = 0; i < 40; ++i) {
        const std::size_t label = i % 2;
        train.labels.push_back(label);
        train.features[i * nn::kRepresentationDim] = label == 0 ? 1.0f : -1.0f;
        train.features[i * nn::kRepresentationDim + 1] = 0.3f;
    }
    nn::ModelConfig config;
    config.num_classes = 2;
    auto head = nn::make_finetune_head(config);
    const auto result = train_head(head, train, finetune_config(1));
    EXPECT_GE(result.epochs_run, 1);
    const auto confusion = evaluate_head(head, train, 2);
    EXPECT_GT(confusion.accuracy(), 0.95);
}

TEST(SimClr, FinetuneConfigMatchesPaperProtocol)
{
    const auto config = finetune_config(3);
    EXPECT_DOUBLE_EQ(config.learning_rate, 1e-2);
    EXPECT_EQ(config.patience, 5);
    EXPECT_DOUBLE_EQ(config.min_delta, 1e-3);
}

TEST(Guard, RecoversFromInjectedNanLosses)
{
    // Inject a NaN loss on every 7th guarded step: the guard must roll back,
    // reseed and finish the training with the usual accuracy.
    util::FaultPlan plan;
    plan.nan_loss_every = 7;
    util::fault_injector().configure(plan);

    const auto train = toy_samples(40, 1);
    const auto test = toy_samples(20, 3);
    nn::ModelConfig model_config;
    model_config.num_classes = 2;
    model_config.with_dropout = false;
    auto network = nn::make_supervised_network(model_config);
    TrainConfig config;
    config.max_epochs = 8;
    const auto result = train_supervised(network, train, SampleSet{}, config);
    util::fault_injector().configure(util::FaultPlan{});

    EXPECT_GE(result.retries, 1);
    EXPECT_GE(result.faults_detected, 1);
    const auto confusion = evaluate(network, test, 2);
    EXPECT_GT(confusion.accuracy(), 0.9);
}

TEST(Guard, ExhaustedRetryBudgetThrows)
{
    // Every guarded step diverges: no epoch can ever commit, so the
    // consecutive-failure budget must run out and surface as an error.
    util::FaultPlan plan;
    plan.nan_loss_every = 1;
    util::fault_injector().configure(plan);

    const auto train = toy_samples(10, 1);
    nn::ModelConfig model_config;
    model_config.num_classes = 2;
    auto network = nn::make_supervised_network(model_config);
    TrainConfig config;
    config.max_epochs = 3;
    config.guard.max_retries = 2;
    EXPECT_THROW((void)train_supervised(network, train, SampleSet{}, config), DivergenceError);
    util::fault_injector().configure(util::FaultPlan{});
}

TEST(Guard, RollbackRestoresSnapshot)
{
    nn::ModelConfig model_config;
    model_config.num_classes = 2;
    auto network = nn::make_supervised_network(model_config);
    const auto params = network.parameters();
    const float original = params[0]->value.data()[0];

    DivergenceGuard guard(params, GuardConfig{});
    params[0]->value.data()[0] = original + 42.0f;
    EXPECT_TRUE(guard.step_diverged(std::nan("")));
    EXPECT_TRUE(guard.rollback());
    EXPECT_EQ(params[0]->value.data()[0], original);
    EXPECT_EQ(guard.retries(), 1);

    // Committing adopts the current weights and resets the failure streak.
    params[0]->value.data()[0] = original + 1.0f;
    guard.commit();
    EXPECT_FALSE(guard.step_diverged(0.5));
    EXPECT_TRUE(guard.step_diverged(1e9)); // beyond loss_limit
    EXPECT_TRUE(guard.rollback());
    EXPECT_EQ(params[0]->value.data()[0], original + 1.0f);
}

TEST(Guard, RetrySeedsAreDistinct)
{
    nn::ModelConfig model_config;
    auto network = nn::make_supervised_network(model_config);
    DivergenceGuard guard(network.parameters(), GuardConfig{});
    const auto first = guard.retry_seed(7);
    EXPECT_TRUE(guard.step_diverged(std::nan("")));
    EXPECT_TRUE(guard.rollback());
    const auto second = guard.retry_seed(7);
    EXPECT_NE(first, second);
    EXPECT_NE(first, 7u);
}

TEST(SimClr, PretrainValidation)
{
    nn::ModelConfig model_config;
    auto network = nn::make_simclr_network(model_config);
    const augment::ViewPairGenerator views;
    EXPECT_THROW((void)pretrain_simclr(network, {}, views, SimClrConfig{}),
                 std::invalid_argument);
}

} // namespace
