// Tests of the sharded-execution layer: shard journal namespacing and
// merge, the cross-process lease store (claim/deny/steal/heartbeat), the
// sibling-journal adoption view, orphan temp-file scavenging, cooperative
// shutdown state, the FPTC_FAULT_KILL_SHARD fault class, shard-aware
// CampaignJournal loading, degraded-record replay through the executor, and
// telemetry merging.  Also hosts the cross-process journal contention
// hammer: re-invoked with --journal-hammer-child, the binary becomes one of
// two child processes appending to a shared journal family under file
// locks while the parent merges concurrently (run under tsan by
// tests/run_sanitized.sh).
#include "fptc/core/executor.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/journal.hpp"
#include "fptc/util/shard.hpp"
#include "fptc/util/shutdown.hpp"
#include "fptc/util/telemetry_merge.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;

namespace {

using namespace fptc;

/// argv[0], so the hammer test can respawn this binary in child mode.
std::string g_self;

class TempDir {
public:
    explicit TempDir(const std::string& name)
        : path_(std::string(::testing::TempDir()) + name + "." + std::to_string(::getpid()))
    {
        std::string cmd = "rm -rf '" + path_ + "' && mkdir -p '" + path_ + "'";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
    ~TempDir()
    {
        std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    [[nodiscard]] std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

void write_text(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::trunc);
    out << content;
}

[[nodiscard]] std::string read_text(const std::string& path)
{
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

struct InjectorReset {
    ~InjectorReset() { util::fault_injector().configure(util::FaultPlan{}); }
};

struct EnvGuard {
    explicit EnvGuard(std::string name) : name_(std::move(name)) {}
    ~EnvGuard() { ::unsetenv(name_.c_str()); }
    std::string name_;
};

// ---------------------------------------------------------------------------
// Shard journal namespacing
// ---------------------------------------------------------------------------

TEST(ShardPaths, FamilyNamingIsDerivedFromTheBase)
{
    EXPECT_EQ(util::shard_journal_path("/tmp/x/run.journal", 3), "/tmp/x/run.journal.shard3");
    EXPECT_EQ(util::shard_lease_path("/tmp/x/run.journal"), "/tmp/x/run.journal.leases");
    EXPECT_EQ(util::shard_lock_path("/tmp/x/run.journal"), "/tmp/x/run.journal.lock");
}

TEST(ShardPaths, ListShardJournalsSortsByIdAndSkipsCompanions)
{
    TempDir dir("fptc_shardlist");
    const std::string base = dir.file("run.journal");
    write_text(base, "");
    write_text(base + ".shard10", "");
    write_text(base + ".shard2", "");
    write_text(base + ".shard0", "");
    write_text(base + ".shard0.out", "");    // stdout capture, not a journal
    write_text(base + ".shard1x", "");       // malformed suffix
    write_text(base + ".leases", "");
    const auto found = util::list_shard_journals(base);
    ASSERT_EQ(found.size(), 3u);
    EXPECT_EQ(found[0], base + ".shard0");
    EXPECT_EQ(found[1], base + ".shard2");
    EXPECT_EQ(found[2], base + ".shard10");
}

TEST(ShardPaths, ReadJournalRecordsIsLastWinsAndCountsTornLines)
{
    TempDir dir("fptc_readrecs");
    const std::string path = dir.file("j");
    write_text(path,
               "{\"key\":\"a\",\"v\":\"1\"}\n"
               "{\"key\":\"b\",\"v\":\"2\"}\n"
               "{\"key\":\"a\",\"v\":\"3\"}\n"
               "{\"key\":\"torn");
    std::size_t discarded = 0;
    const auto records = util::read_journal_records(path, &discarded);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(discarded, 1u);
    EXPECT_EQ(records[0].key, "a");
    EXPECT_EQ(records[0].fields.at("v"), "3");  // superseded in place
    EXPECT_EQ(records[1].key, "b");
}

TEST(ShardMerge, UnionsShardFilesWithLaterShardsWinning)
{
    TempDir dir("fptc_shardmerge");
    const std::string base = dir.file("run.journal");
    write_text(base, "{\"key\":\"stale\",\"v\":\"base\"}\n");
    write_text(base + ".shard0",
               "{\"key\":\"stale\",\"v\":\"s0\"}\n{\"key\":\"only0\",\"v\":\"a\"}\n");
    write_text(base + ".shard1",
               "{\"key\":\"stale\",\"v\":\"s1\"}\n{\"key\":\"only1\",\"v\":\"b\"}\n");
    const std::size_t merged = util::merge_shard_journals(base, /*remove_shards=*/false);
    EXPECT_EQ(merged, 3u);
    const auto records = util::read_journal_records(base);
    ASSERT_EQ(records.size(), 3u);
    bool saw_stale = false;
    for (const auto& record : records) {
        if (record.key == "stale") {
            saw_stale = true;
            EXPECT_EQ(record.fields.at("v"), "s1");  // highest shard id wins
        }
    }
    EXPECT_TRUE(saw_stale);
    // Shard files survive a remove_shards=false merge...
    EXPECT_EQ(util::list_shard_journals(base).size(), 2u);
    // ...and disappear (with the lease/lock files) on remove_shards=true.
    write_text(base + ".leases", "");
    util::merge_shard_journals(base, /*remove_shards=*/true);
    EXPECT_TRUE(util::list_shard_journals(base).empty());
    struct stat st{};
    EXPECT_NE(::stat((base + ".leases").c_str(), &st), 0);
    EXPECT_NE(::stat((base + ".lock").c_str(), &st), 0);
}

// ---------------------------------------------------------------------------
// Lease store
// ---------------------------------------------------------------------------

TEST(LeaseStore, StartupProbesFlockOnTheLockFile)
{
    TempDir dir("fptc_leaseprobe");
    const std::string base = dir.file("run.journal");
    // Construction probes flock on the lock file: on a functional local
    // filesystem it must succeed and leave the lock file behind, unlocked
    // (a later FileLock must not block).
    util::LeaseStore store(base, 0, 30.0);
    EXPECT_EQ(::access(util::shard_lock_path(base).c_str(), F_OK), 0);
    const util::FileLock lock(util::shard_lock_path(base));
    // A held lock does not fail the probe — EWOULDBLOCK proves flock works.
    EXPECT_NO_THROW(util::probe_flock(util::shard_lock_path(base)));
}

TEST(LeaseStore, FilesystemNameIsNonEmptyForRealPaths)
{
    TempDir dir("fptc_leasefs");
    const std::string name = util::filesystem_name_of(dir.path());
    EXPECT_FALSE(name.empty());
    // Never-created file: falls back to the parent directory.
    EXPECT_EQ(util::filesystem_name_of(dir.file("missing.lock")), name);
}

TEST(LeaseStore, ForeignUnexpiredLeaseDeniesTheClaim)
{
    TempDir dir("fptc_lease1");
    const std::string base = dir.file("run.journal");
    util::LeaseStore mine(base, 0, 30.0);
    util::LeaseStore theirs(base, 1, 30.0);
    EXPECT_TRUE(mine.try_claim("camp|u1"));
    EXPECT_FALSE(theirs.try_claim("camp|u1"));
    EXPECT_EQ(theirs.stolen(), 0u);
    // Re-claiming one's own lease is allowed (restart of the same shard).
    EXPECT_TRUE(mine.try_claim("camp|u1"));
    // Release opens the unit to everyone.
    mine.release("camp|u1");
    EXPECT_TRUE(theirs.try_claim("camp|u1"));
    EXPECT_EQ(theirs.stolen(), 0u);  // released, not stolen
}

TEST(LeaseStore, ExpiredForeignLeaseIsStolen)
{
    TempDir dir("fptc_lease2");
    const std::string base = dir.file("run.journal");
    util::LeaseStore dead(base, 0, 0.05);  // 50ms TTL, then never heartbeats
    util::LeaseStore survivor(base, 1, 30.0);
    ASSERT_TRUE(dead.try_claim("camp|u1"));
    EXPECT_FALSE(survivor.try_claim("camp|u1"));
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_TRUE(survivor.try_claim("camp|u1"));
    EXPECT_EQ(survivor.stolen(), 1u);
}

TEST(LeaseStore, HeartbeatKeepsALeaseAlive)
{
    TempDir dir("fptc_lease3");
    const std::string base = dir.file("run.journal");
    util::LeaseStore owner(base, 0, 0.15);
    util::LeaseStore rival(base, 1, 0.15);
    ASSERT_TRUE(owner.try_claim("camp|u1"));
    for (int i = 0; i < 4; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        owner.heartbeat({"camp|u1"});
    }
    // 240ms after the claim — far past the 150ms TTL, but the beats kept
    // extending the expiry.
    EXPECT_FALSE(rival.try_claim("camp|u1"));
    const auto leases = owner.snapshot();
    ASSERT_EQ(leases.count("camp|u1"), 1u);
    EXPECT_EQ(leases.at("camp|u1").shard, 0);
}

TEST(LeaseStore, CompactionBoundsTheLeaseFile)
{
    TempDir dir("fptc_lease4");
    const std::string base = dir.file("run.journal");
    util::LeaseStore store(base, 0, 30.0);
    // Many claim/release cycles: without compaction the lease journal would
    // keep every transaction line forever.
    for (int i = 0; i < 300; ++i) {
        const std::string key = "camp|u" + std::to_string(i % 7);
        ASSERT_TRUE(store.try_claim(key));
        store.release(key);
    }
    struct stat st{};
    ASSERT_EQ(::stat(util::shard_lease_path(base).c_str(), &st), 0);
    // 600 transactions at ~60 bytes each would be ~36 KB uncompacted; the
    // periodic rewrite keeps only live leases (none, here).
    EXPECT_LT(st.st_size, 8 * 1024);
    EXPECT_TRUE(store.snapshot().empty());
}

// ---------------------------------------------------------------------------
// Sibling journal adoption view
// ---------------------------------------------------------------------------

TEST(ShardJournalSet, SeesBaseAndSiblingsButNotItself)
{
    TempDir dir("fptc_sibs");
    const std::string base = dir.file("run.journal");
    write_text(base, "{\"key\":\"camp|a\",\"v\":\"base\"}\n");
    write_text(base + ".shard0", "{\"key\":\"camp|own\",\"v\":\"mine\"}\n");
    write_text(base + ".shard1", "{\"key\":\"camp|b\",\"v\":\"sib\"}\n");
    util::ShardJournalSet view(base, /*own_shard=*/0);
    ASSERT_TRUE(view.maybe_reload(0));
    EXPECT_TRUE(view.find("camp|a").has_value());
    EXPECT_TRUE(view.find("camp|b").has_value());
    EXPECT_FALSE(view.find("camp|own").has_value());  // own journal excluded

    // Rate limiting: an immediate reload with a large interval is skipped...
    write_text(base + ".shard1",
               "{\"key\":\"camp|b\",\"v\":\"sib\"}\n{\"key\":\"camp|c\",\"v\":\"new\"}\n");
    EXPECT_FALSE(view.maybe_reload(60 * 1000));
    EXPECT_FALSE(view.find("camp|c").has_value());
    // ...and a forced one picks up the new record.
    EXPECT_TRUE(view.maybe_reload(0));
    EXPECT_TRUE(view.find("camp|c").has_value());
}

// ---------------------------------------------------------------------------
// Orphan temp scavenging
// ---------------------------------------------------------------------------

TEST(Scavenge, RemovesOnlyDeadWritersDebris)
{
    TempDir dir("fptc_scav");
    // Find a pid that is certainly dead: fork a child that exits at once.
    const pid_t dead = ::fork();
    ASSERT_GE(dead, 0);
    if (dead == 0) {
        ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(dead, &status, 0), dead);

    const std::string debris = dir.file("table.csv.tmp." + std::to_string(dead) + ".7");
    const std::string own =
        dir.file("table.csv.tmp." + std::to_string(::getpid()) + ".1");
    const std::string odd = dir.file("notes.tmp.abc.1");
    write_text(debris, "torn");
    write_text(own, "in flight");
    write_text(odd, "unrelated");
    EXPECT_EQ(util::scavenge_orphan_temps(dir.path()), 1u);
    struct stat st{};
    EXPECT_NE(::stat(debris.c_str(), &st), 0);  // dead writer's temp removed
    EXPECT_EQ(::stat(own.c_str(), &st), 0);     // our own in-flight temp kept
    EXPECT_EQ(::stat(odd.c_str(), &st), 0);     // non-DurableFile name kept
    EXPECT_EQ(util::scavenge_orphan_temps(dir.file("missing-dir")), 0u);
}

// ---------------------------------------------------------------------------
// Cooperative shutdown state
// ---------------------------------------------------------------------------

TEST(Shutdown, SigtermLatchesTheFlagInsteadOfKilling)
{
    util::reset_shutdown_for_tests();
    util::install_shutdown_handlers();
    EXPECT_FALSE(util::shutdown_requested());
    EXPECT_EQ(util::shutdown_signal(), 0);
    ASSERT_EQ(::raise(SIGTERM), 0);  // the handler only sets the flag
    EXPECT_TRUE(util::shutdown_requested());
    EXPECT_EQ(util::shutdown_signal(), SIGTERM);
    EXPECT_EQ(util::shutdown_exit_code(SIGTERM), 143);
    EXPECT_EQ(util::shutdown_exit_code(SIGINT), 130);
    util::reset_shutdown_for_tests();
    EXPECT_FALSE(util::shutdown_requested());
}

// ---------------------------------------------------------------------------
// FPTC_FAULT_KILL_SHARD
// ---------------------------------------------------------------------------

TEST(FaultKillShard, EnvSpecParsesShardAndTriggerIndex)
{
    const EnvGuard guard("FPTC_FAULT_KILL_SHARD");
    ::setenv("FPTC_FAULT_KILL_SHARD", "1:2", 1);
    auto plan = util::fault_plan_from_env();
    EXPECT_EQ(plan.kill_shard, 1);
    EXPECT_EQ(plan.kill_shard_at_unit, 2);
    ::setenv("FPTC_FAULT_KILL_SHARD", "3", 1);  // plain k targets shard 0
    plan = util::fault_plan_from_env();
    EXPECT_EQ(plan.kill_shard, 0);
    EXPECT_EQ(plan.kill_shard_at_unit, 3);
    ::setenv("FPTC_FAULT_KILL_SHARD", "bogus", 1);
    plan = util::fault_plan_from_env();
    EXPECT_EQ(plan.kill_shard, -1);
    EXPECT_EQ(plan.kill_shard_at_unit, 0);
}

TEST(FaultKillShard, FiresOnceAtTheTargetShardsKthUnit)
{
    InjectorReset reset;
    util::FaultPlan plan;
    plan.kill_shard = 1;
    plan.kill_shard_at_unit = 2;
    util::fault_injector().configure(plan);
    EXPECT_TRUE(util::fault_injector().enabled());
    // Other shards (and the sequential shard_id -1) never trigger, and do
    // not advance the target's completion count.
    EXPECT_FALSE(util::fault_injector().inject_shard_kill(-1));
    EXPECT_FALSE(util::fault_injector().inject_shard_kill(0));
    EXPECT_FALSE(util::fault_injector().inject_shard_kill(1));  // 1st unit
    EXPECT_TRUE(util::fault_injector().inject_shard_kill(1));   // 2nd: fire
    EXPECT_FALSE(util::fault_injector().inject_shard_kill(1));  // once only
    EXPECT_EQ(util::fault_injector().counters().shard_kills, 1u);
}

// ---------------------------------------------------------------------------
// Shard-aware CampaignJournal and degraded-record replay
// ---------------------------------------------------------------------------

TEST(CampaignJournalShard, WorkerLoadsTheFamilyAndAppendsToItsOwnFile)
{
    TempDir dir("fptc_cjshard");
    const std::string base = dir.file("run.journal");
    const EnvGuard guard("FPTC_JOURNAL");
    ::setenv("FPTC_JOURNAL", base.c_str(), 1);
    write_text(base, "{\"key\":\"camp|from-base\",\"v\":\"1\"}\n");
    write_text(base + ".shard1", "{\"key\":\"camp|from-sib\",\"v\":\"2\"}\n");

    util::CampaignJournal journal("camp", /*shard_id=*/0);
    ASSERT_TRUE(journal.enabled());
    EXPECT_EQ(journal.base_path(), base);
    EXPECT_EQ(journal.full_key("u"), "camp|u");
    EXPECT_TRUE(journal.try_replay("from-base").has_value());
    EXPECT_TRUE(journal.try_replay("from-sib").has_value());
    journal.commit("own-unit", {{"v", "3"}});
    // The commit landed in the shard journal, not the base.
    const auto own = util::read_journal_records(base + ".shard0");
    ASSERT_EQ(own.size(), 1u);
    EXPECT_EQ(own[0].key, "camp|own-unit");
    EXPECT_EQ(util::read_journal_records(base).size(), 1u);

    // Coordinator-side absorb folds everything into the base.
    util::CampaignJournal coordinator("camp");
    EXPECT_GE(coordinator.absorb_shard_journals(/*remove_shards=*/true), 1u);
    EXPECT_TRUE(coordinator.try_replay("own-unit").has_value());
    EXPECT_TRUE(util::list_shard_journals(base).empty());
}

TEST(ExecutorShard, JournaledDegradationReplaysAsDegraded)
{
    TempDir dir("fptc_degreplay");
    const std::string base = dir.file("run.journal");
    const EnvGuard guard("FPTC_JOURNAL");
    ::setenv("FPTC_JOURNAL", base.c_str(), 1);
    {
        util::RunJournal journal(base);
        journal.record("camp|bad-unit",
                       {{util::kStatusField, util::kDegradedStatus},
                        {util::kErrorField, "fatal: boom\nfatal: boom again"},
                        {util::kFinalErrorField, "fatal"}});
    }
    core::ExecutorConfig config;
    config.jobs = 1;
    core::CampaignExecutor executor("camp", config);
    bool executed = false;
    executor.submit("bad-unit", [&executed](const core::UnitContext&) {
        executed = true;
        return std::map<std::string, std::string>{{"v", "1"}};
    });
    executor.run_all();
    EXPECT_FALSE(executed);  // the failure record suppressed re-execution
    const auto& outcome = executor.outcome(0);
    EXPECT_EQ(outcome.status, core::UnitStatus::degraded);
    EXPECT_EQ(outcome.final_error, core::ErrorClass::fatal);
    ASSERT_EQ(outcome.error_chain.size(), 2u);
    EXPECT_EQ(outcome.error_chain[0], "fatal: boom");
    EXPECT_EQ(outcome.error_chain[1], "fatal: boom again");
    EXPECT_EQ(executor.degraded(), 1u);
}

// ---------------------------------------------------------------------------
// Telemetry merging
// ---------------------------------------------------------------------------

TEST(TelemetryMerge, PrometheusCountersSumGaugesMaxHistogramsRecumulate)
{
    TempDir dir("fptc_prom");
    // Shard A: buckets at le=4 (cum 3).  Shard B: le=2 (cum 1), le=8 (cum
    // 3).  A naive per-series sum would yield a non-monotone series; the
    // de-cumulate/re-cumulate merge must give 2->1, 4->4, 8->6.
    write_text(dir.file("a.prom"),
               "# TYPE fptc_units_total counter\n"
               "fptc_units_total 5\n"
               "# TYPE fptc_peak_bytes gauge\n"
               "fptc_peak_bytes 700\n"
               "# TYPE fptc_ms histogram\n"
               "fptc_ms_bucket{le=\"4\"} 3\n"
               "fptc_ms_bucket{le=\"+Inf\"} 3\n"
               "fptc_ms_sum 9\n"
               "fptc_ms_count 3\n");
    write_text(dir.file("b.prom"),
               "# TYPE fptc_units_total counter\n"
               "fptc_units_total 7\n"
               "# TYPE fptc_peak_bytes gauge\n"
               "fptc_peak_bytes 300\n"
               "# TYPE fptc_ms histogram\n"
               "fptc_ms_bucket{le=\"2\"} 1\n"
               "fptc_ms_bucket{le=\"8\"} 3\n"
               "fptc_ms_bucket{le=\"+Inf\"} 3\n"
               "fptc_ms_sum 21\n"
               "fptc_ms_count 3\n");
    const std::string out = dir.file("merged.prom");
    EXPECT_EQ(util::merge_prometheus_files(
                  {dir.file("a.prom"), dir.file("b.prom"), dir.file("missing.prom")}, out),
              2u);
    const std::string merged = read_text(out);
    EXPECT_NE(merged.find("fptc_units_total 12\n"), std::string::npos);
    EXPECT_NE(merged.find("fptc_peak_bytes 700\n"), std::string::npos);
    EXPECT_NE(merged.find("fptc_ms_bucket{le=\"2\"} 1\n"), std::string::npos);
    EXPECT_NE(merged.find("fptc_ms_bucket{le=\"4\"} 4\n"), std::string::npos);
    EXPECT_NE(merged.find("fptc_ms_bucket{le=\"8\"} 6\n"), std::string::npos);
    EXPECT_NE(merged.find("fptc_ms_bucket{le=\"+Inf\"} 6\n"), std::string::npos);
    EXPECT_NE(merged.find("fptc_ms_sum 30\n"), std::string::npos);
    EXPECT_NE(merged.find("fptc_ms_count 6\n"), std::string::npos);
}

TEST(TelemetryMerge, TraceEventsConcatenateWithPerShardPids)
{
    TempDir dir("fptc_trace");
    write_text(dir.file("a.json"),
               "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
               "{\"name\": \"unit\", \"ph\": \"B\", \"ts\": 1, \"pid\": 1, \"tid\": 1},\n"
               "{\"name\": \"unit\", \"ph\": \"E\", \"ts\": 2, \"pid\": 1, \"tid\": 1}\n"
               "]}\n");
    write_text(dir.file("b.json"),
               "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
               "{\"name\": \"unit\", \"ph\": \"B\", \"ts\": 3, \"pid\": 1, \"tid\": 9}\n"
               "]}\n");
    const std::string out = dir.file("merged.json");
    EXPECT_EQ(util::merge_trace_files({dir.file("a.json"), dir.file("b.json")}, out), 2u);
    const std::string merged = read_text(out);
    EXPECT_NE(merged.find("\"ts\": 1, \"pid\": 1,"), std::string::npos);
    EXPECT_NE(merged.find("\"ts\": 3, \"pid\": 2,"), std::string::npos);
    // Valid JSON shape: last event line has no trailing comma.
    EXPECT_EQ(merged.find(",\n]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-process journal contention hammer
// ---------------------------------------------------------------------------

constexpr int kHammerRecords = 25;

[[nodiscard]] pid_t spawn_hammer_child(const std::string& dir, int shard)
{
    const std::string shard_arg = std::to_string(shard);
    const std::string count_arg = std::to_string(kHammerRecords);
    const char* argv[] = {g_self.c_str(),      "--journal-hammer-child",
                          dir.c_str(),         shard_arg.c_str(),
                          count_arg.c_str(),   nullptr};
    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, g_self.c_str(), nullptr, nullptr,
                                 const_cast<char**>(argv), environ);
    return rc == 0 ? pid : -1;
}

TEST(JournalHammer, TwoProcessesAndAConcurrentMergerLoseNothing)
{
    ASSERT_FALSE(g_self.empty());
    TempDir dir("fptc_hammer");
    const std::string base = dir.file("hammer.journal");
    const pid_t a = spawn_hammer_child(dir.path(), 0);
    const pid_t b = spawn_hammer_child(dir.path(), 1);
    ASSERT_GT(a, 0);
    ASSERT_GT(b, 0);

    // Merge the family repeatedly while both children are appending and
    // claiming — exercising FileLock serialization against live writers.
    bool a_done = false;
    bool b_done = false;
    int a_status = -1;
    int b_status = -1;
    while (!a_done || !b_done) {
        util::merge_shard_journals(base, /*remove_shards=*/false);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (!a_done && ::waitpid(a, &a_status, WNOHANG) == a) {
            a_done = true;
        }
        if (!b_done && ::waitpid(b, &b_status, WNOHANG) == b) {
            b_done = true;
        }
    }
    ASSERT_TRUE(WIFEXITED(a_status));
    ASSERT_TRUE(WIFEXITED(b_status));
    EXPECT_EQ(WEXITSTATUS(a_status), 0);
    EXPECT_EQ(WEXITSTATUS(b_status), 0);

    const std::size_t total = util::merge_shard_journals(base, /*remove_shards=*/true);
    EXPECT_EQ(total, static_cast<std::size_t>(2 * kHammerRecords));
    const auto records = util::read_journal_records(base);
    EXPECT_EQ(records.size(), static_cast<std::size_t>(2 * kHammerRecords));
    for (const auto& record : records) {
        EXPECT_EQ(record.fields.count("v"), 1u) << record.key;
    }
}

} // namespace

namespace {

/// Child mode of the hammer test: append `count` records to this shard's
/// journal, each under a claim/release lease transaction, with periodic
/// contended claims on a shared key to exercise denials.
int hammer_child_main(const char* dir, int shard, int count)
{
    const std::string base = std::string(dir) + "/hammer.journal";
    util::LeaseStore leases(base, shard, 5.0);
    util::RunJournal journal(util::shard_journal_path(base, shard));
    for (int i = 0; i < count; ++i) {
        const std::string key =
            "hammer|s" + std::to_string(shard) + "-" + std::to_string(i);
        if (!leases.try_claim(key)) {
            return 3;  // own keys are never foreign-held
        }
        journal.record(key, {{"v", std::to_string(i)}});
        leases.release(key);
        // Contended shared keys: both children fight over these; either
        // outcome is fine, the lock just must serialize the transactions.
        (void)leases.try_claim("hammer|shared-" + std::to_string(i % 4));
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc == 5 && std::string(argv[1]) == "--journal-hammer-child") {
        return hammer_child_main(argv[2], std::atoi(argv[3]), std::atoi(argv[4]));
    }
    g_self = argv[0];
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
