// Pin the network architectures to the paper's App. C listings 1-5: exact
// layer sequences (including the Identity masking slots) and the printed
// parameter totals.
#include "fptc/nn/models.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace fptc::nn;

std::vector<std::string> layer_names(Sequential& network)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < network.layer_count(); ++i) {
        names.push_back(network.layer(i).name());
    }
    return names;
}

TEST(Listings, SupervisedWithDropoutMatchesListing1)
{
    ModelConfig config;
    config.flowpic_dim = 32;
    config.with_dropout = true;
    auto network = make_supervised_network(config);
    // Listing 1: Conv2d ReLU MaxPool2d Conv2d ReLU Dropout2d MaxPool2d
    //            Flatten Linear ReLU Linear ReLU Dropout1d Linear
    EXPECT_EQ(layer_names(network),
              (std::vector<std::string>{"Conv2d", "ReLU", "MaxPool2d", "Conv2d", "ReLU",
                                        "Dropout2d", "MaxPool2d", "Flatten", "Linear", "ReLU",
                                        "Linear", "ReLU", "Dropout", "Linear"}));
}

TEST(Listings, SupervisedWithoutDropoutMatchesListing2)
{
    ModelConfig config;
    config.flowpic_dim = 32;
    config.with_dropout = false;
    auto network = make_supervised_network(config);
    // Listing 2: the two dropout slots are masked with Identity.
    const auto names = layer_names(network);
    EXPECT_EQ(names[5], "Identity");  // "<- masked" Dropout2d slot
    EXPECT_EQ(names[12], "Identity"); // "<- masked" Dropout1d slot
    EXPECT_EQ(names.size(), 14u);     // same depth as listing 1
}

TEST(Listings, SimClrProjectionMatchesListing3)
{
    ModelConfig config;
    config.flowpic_dim = 32;
    config.with_dropout = false;
    config.projection_dim = 30;
    auto network = make_simclr_network(config);
    // Trunk ends at the 120-d representation (ReLU after Linear-9).
    const auto trunk_names = layer_names(network.trunk);
    EXPECT_EQ(trunk_names.back(), "ReLU");
    EXPECT_EQ(trunk_names[trunk_names.size() - 2], "Linear");
    // Projection: Linear(120->120) ReLU Identity Linear(120->30).
    EXPECT_EQ(layer_names(network.projection),
              (std::vector<std::string>{"Linear", "ReLU", "Identity", "Linear"}));
}

TEST(Listings, ParameterTotalsMatchAllListings)
{
    // Listing 1/2: 61,281.  Listing 3: 68,842.  Listing 4: 75,376.
    // Listing 5 (trainable classifier): 605.  The paper prints these totals
    // via torchsummary; they pin the architecture bit-for-bit.
    ModelConfig config;
    config.flowpic_dim = 32;
    config.num_classes = 5;

    config.with_dropout = true;
    EXPECT_EQ(make_supervised_network(config).parameter_count(), 61281u);

    config.with_dropout = false;
    config.projection_dim = 30;
    auto simclr30 = make_simclr_network(config);
    EXPECT_EQ(simclr30.trunk.parameter_count() + simclr30.projection.parameter_count(), 68842u);

    config.projection_dim = 84;
    auto simclr84 = make_simclr_network(config);
    EXPECT_EQ(simclr84.trunk.parameter_count() + simclr84.projection.parameter_count(), 75376u);

    EXPECT_EQ(make_finetune_head(config).parameter_count(), 605u);
}

TEST(Listings, OutputShapesMatchListing1Column)
{
    // Spot-check the "Output Shape" column of listing 1 at batch size 1:
    // Conv2d-1 -> [6, 28, 28], MaxPool2d-3 -> [6, 14, 14],
    // Conv2d-4 -> [16, 10, 10], MaxPool2d-7 -> [16, 5, 5], Flatten -> [400].
    ModelConfig config;
    config.flowpic_dim = 32;
    config.with_dropout = true;
    auto network = make_supervised_network(config);

    Tensor x({1, 1, 32, 32});
    const std::vector<Shape> expected = {
        {1, 6, 28, 28},  // Conv2d-1
        {1, 6, 28, 28},  // ReLU-2
        {1, 6, 14, 14},  // MaxPool2d-3
        {1, 16, 10, 10}, // Conv2d-4
        {1, 16, 10, 10}, // ReLU-5
        {1, 16, 10, 10}, // Dropout2d-6
        {1, 16, 5, 5},   // MaxPool2d-7
        {1, 400},        // Flatten-8
        {1, 120},        // Linear-9
        {1, 120},        // ReLU-10
        {1, 84},         // Linear-11
        {1, 84},         // ReLU-12
        {1, 84},         // Dropout1d-13
        {1, 5},          // Linear-14
    };
    for (std::size_t i = 0; i < network.layer_count(); ++i) {
        x = network.layer(i).forward(x, /*training=*/false);
        EXPECT_EQ(x.shape(), expected[i]) << "layer " << i + 1;
    }
}

TEST(Listings, SummaryPrintoutContainsTotals)
{
    ModelConfig config;
    config.flowpic_dim = 32;
    auto network = make_supervised_network(config);
    const auto text = network.summary({1, 1, 32, 32});
    EXPECT_NE(text.find("Total params: 61281"), std::string::npos);
    EXPECT_NE(text.find("Conv2d"), std::string::npos);
    EXPECT_NE(text.find("[1, 5]"), std::string::npos);
}

} // namespace
