// Tests for the two paper-flagged extensions: SupCon (Sec. 5 future work)
// and the direction-aware flowpic (footnote 3).
#include "fptc/core/byol.hpp"
#include "fptc/core/campaign.hpp"
#include "fptc/core/data.hpp"
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/nn/loss.hpp"
#include "fptc/nn/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace fptc;

// ------------------------------------------------------------- SupCon loss

TEST(SupCon, ClusteredGeometryHasLowerLossThanScattered)
{
    // Two classes along orthogonal directions, 4 samples each: the ideal
    // SupCon geometry.
    constexpr std::size_t dim = 8;
    nn::Tensor clustered({8, dim});
    std::vector<std::size_t> labels(8);
    for (std::size_t i = 0; i < 8; ++i) {
        labels[i] = i / 4;
        clustered[i * dim + labels[i]] = 1.0f;
        clustered[i * dim + 4 + i % 4] = 0.05f; // tiny per-sample variation
    }
    const double clustered_loss = nn::sup_con(clustered, labels, 0.1).loss;

    util::Rng rng(1);
    const auto scattered = nn::Tensor::randn({8, dim}, rng);
    const double scattered_loss = nn::sup_con(scattered, labels, 0.1).loss;
    EXPECT_LT(clustered_loss, scattered_loss);
}

TEST(SupCon, GradientDescendsLoss)
{
    util::Rng rng(2);
    auto projections = nn::Tensor::randn({10, 6}, rng);
    const std::vector<std::size_t> labels{0, 0, 1, 1, 2, 2, 0, 1, 2, 0};
    const auto result = nn::sup_con(projections, labels, 0.2);
    for (std::size_t i = 0; i < projections.size(); ++i) {
        projections[i] -= 0.1f * result.grad[i];
    }
    EXPECT_LT(nn::sup_con(projections, labels, 0.2).loss, result.loss);
}

TEST(SupCon, NumericalGradient)
{
    util::Rng rng(3);
    auto projections = nn::Tensor::randn({6, 5}, rng);
    const std::vector<std::size_t> labels{0, 0, 1, 1, 2, 2};
    const auto analytic = nn::sup_con(projections, labels, 0.3);
    constexpr float eps = 1e-2f;
    for (std::size_t i = 0; i < projections.size(); i += 2) {
        const float original = projections[i];
        projections[i] = original + eps;
        const double up = nn::sup_con(projections, labels, 0.3).loss;
        projections[i] = original - eps;
        const double down = nn::sup_con(projections, labels, 0.3).loss;
        projections[i] = original;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(analytic.grad[i], numeric, 5e-3 + 0.05 * std::fabs(numeric)) << "index " << i;
    }
}

TEST(SupCon, AnchorsWithoutPositivesAreSkipped)
{
    // All-distinct labels: no positives anywhere -> zero loss, zero grad.
    util::Rng rng(4);
    const auto projections = nn::Tensor::randn({4, 4}, rng);
    const std::vector<std::size_t> labels{0, 1, 2, 3};
    const auto result = nn::sup_con(projections, labels);
    EXPECT_DOUBLE_EQ(result.loss, 0.0);
    for (const float g : result.grad.data()) {
        EXPECT_FLOAT_EQ(g, 0.0f);
    }
}

TEST(SupCon, Validation)
{
    util::Rng rng(5);
    const auto projections = nn::Tensor::randn({4, 4}, rng);
    EXPECT_THROW((void)nn::sup_con(projections, std::vector<std::size_t>{0, 1}),
                 std::invalid_argument);
    EXPECT_THROW((void)nn::sup_con(projections, std::vector<std::size_t>{0, 0, 1, 1}, 0.0),
                 std::invalid_argument);
}

// -------------------------------------------------- directional flowpic

flow::Flow mixed_direction_flow()
{
    flow::Flow f;
    for (int i = 0; i < 60; ++i) {
        flow::Packet p;
        p.timestamp = 0.2 * i;
        p.size = i % 2 == 0 ? 200 : 1400; // up small, down large
        p.direction = i % 2 == 0 ? flow::Direction::upstream : flow::Direction::downstream;
        f.packets.push_back(p);
    }
    return f;
}

TEST(DirectionalFlowpic, ChannelsSumToPlainFlowpic)
{
    const auto f = mixed_direction_flow();
    const flowpic::FlowpicConfig config{.resolution = 32};
    const auto plain = flowpic::Flowpic::from_flow(f, config);
    const auto [up, down] = flowpic::directional_flowpics(f, config);
    for (std::size_t i = 0; i < plain.counts().size(); ++i) {
        EXPECT_FLOAT_EQ(up.counts()[i] + down.counts()[i], plain.counts()[i]);
    }
}

TEST(DirectionalFlowpic, ChannelsSeparateDirections)
{
    const auto f = mixed_direction_flow();
    const auto [up, down] = flowpic::directional_flowpics(f, {.resolution = 32});
    // Upstream packets are all small (rows ~4), downstream all large (~row 29).
    EXPECT_GT(up.total_mass(), 0.0);
    EXPECT_GT(down.total_mass(), 0.0);
    for (std::size_t c = 0; c < 32; ++c) {
        EXPECT_FLOAT_EQ(up.at(29, c), 0.0f);   // no large packets upstream
        EXPECT_FLOAT_EQ(down.at(4, c), 0.0f);  // no small packets downstream
    }
}

TEST(DirectionalFlowpic, RasterizeDirectionalShape)
{
    const auto f = mixed_direction_flow();
    const auto set = core::rasterize_directional(std::span(&f, 1), {.resolution = 32});
    EXPECT_EQ(set.channels, 2u);
    EXPECT_EQ(set.images.front().size(), 2u * 32 * 32);
    const auto batch = set.tensor_of(0);
    EXPECT_EQ(batch.shape(), (nn::Shape{1, 2, 32, 32}));
}

TEST(DirectionalFlowpic, AugmentSetDirectionalWorksForAllKinds)
{
    const auto f = mixed_direction_flow();
    util::Rng rng(6);
    for (const auto kind : augment::all_augmentations()) {
        const auto set = core::augment_set_directional(std::span(&f, 1), kind, 2,
                                                       {.resolution = 32}, rng);
        const std::size_t expected = kind == augment::AugmentationKind::none ? 1u : 2u;
        EXPECT_EQ(set.size(), expected) << augment::augmentation_name(kind);
        EXPECT_EQ(set.channels, 2u);
        for (const float v : set.images.front()) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.0f);
        }
    }
}

TEST(DirectionalFlowpic, TwoChannelNetworkForward)
{
    nn::ModelConfig config;
    config.input_channels = 2;
    config.num_classes = 5;
    auto network = nn::make_supervised_network(config);
    const auto y = network.forward(nn::Tensor({2, 2, 32, 32}), false);
    EXPECT_EQ(y.shape(), (nn::Shape{2, 5}));
    // More input channels -> more conv1 parameters than the 1-channel net.
    nn::ModelConfig plain = config;
    plain.input_channels = 1;
    auto plain_network = nn::make_supervised_network(plain);
    EXPECT_GT(network.parameter_count(), plain_network.parameter_count());
}

// ------------------------------------------------------ campaign plumbing

TEST(Extensions, SupConCampaignRunSmoke)
{
    const auto data = core::load_ucdavis(0.2, 19);
    core::SimClrOptions options;
    options.per_class = 30;
    options.pretrain_max_epochs = 3;
    const auto run = core::run_ucdavis_supcon(data, 1, 1, 1, options);
    EXPECT_GE(run.pretrain_epochs, 1);
    // Supervised contrastive pre-training must give a usable representation.
    EXPECT_GT(run.script_accuracy(), 0.5);
}

TEST(Byol, TargetStartsAsExactCopyAndTracksByEma)
{
    nn::ModelConfig config;
    config.with_dropout = false;
    auto network = core::make_byol_network(config);
    const auto online = network.online.parameters();
    const auto target = network.target.parameters();
    ASSERT_EQ(online.size(), target.size());
    for (std::size_t i = 0; i < online.size(); ++i) {
        ASSERT_EQ(online[i]->value.size(), target[i]->value.size());
        for (std::size_t j = 0; j < online[i]->value.size(); ++j) {
            ASSERT_FLOAT_EQ(online[i]->value[j], target[i]->value[j]);
        }
    }
}

TEST(Byol, PretrainReducesRegressionLoss)
{
    trafficgen::UcdavisOptions gen;
    gen.samples_scale = 0.05;
    const auto pool =
        trafficgen::make_ucdavis19(trafficgen::UcdavisPartition::pretraining, gen);

    nn::ModelConfig config;
    config.with_dropout = false;
    auto network = core::make_byol_network(config);
    const augment::ViewPairGenerator views;
    core::ByolConfig pretrain;
    pretrain.max_epochs = 3;
    pretrain.patience = 3;
    const auto result = core::pretrain_byol(network, pool.flows, views, pretrain);
    EXPECT_GE(result.epochs_run, 1);
    // The regression loss lives in [0, 4]; after training it must sit well
    // below the untrained ~2 (orthogonal embeddings).
    EXPECT_LT(result.final_loss, 1.0);
}

TEST(Byol, CampaignRunSmoke)
{
    const auto data = core::load_ucdavis(0.2, 19);
    core::SimClrOptions options;
    options.per_class = 30;
    options.pretrain_max_epochs = 3;
    const auto run = core::run_ucdavis_byol(data, 1, 1, 1, options);
    EXPECT_GE(run.pretrain_epochs, 1);
    EXPECT_GT(run.script_accuracy(), 0.4); // far above 20% chance
}

TEST(Extensions, DirectionalCampaignRunSmoke)
{
    const auto data = core::load_ucdavis(0.2, 19);
    core::SupervisedOptions options;
    options.per_class = 30;
    options.augment_copies = 1;
    options.max_epochs = 5;
    options.leftover_cap = 50;
    options.directional = true;
    const auto run = core::run_ucdavis_supervised(data, augment::AugmentationKind::none, 1, 1,
                                                  options);
    EXPECT_GT(run.script_accuracy(), 0.6);
}

} // namespace
