// Unit + property tests for the 7 augmentation strategies and the SimCLR
// view-pair generator.
#include "fptc/augment/augmentation.hpp"
#include "fptc/augment/image.hpp"
#include "fptc/augment/time_series.hpp"
#include "fptc/augment/view_pair.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace fptc;
using namespace fptc::augment;

flow::Flow make_flow(std::size_t packets = 40)
{
    flow::Flow f;
    for (std::size_t i = 0; i < packets; ++i) {
        flow::Packet p;
        p.timestamp = 0.2 + 0.3 * static_cast<double>(i);
        p.size = 100 + static_cast<int>((i * 53) % 1300);
        p.direction = i % 3 == 0 ? flow::Direction::upstream : flow::Direction::downstream;
        f.packets.push_back(p);
    }
    f.label = 3;
    return f;
}

TEST(Augmentations, NamesMatchPaperTables)
{
    EXPECT_EQ(augmentation_name(AugmentationKind::none), "No augmentation");
    EXPECT_EQ(augmentation_name(AugmentationKind::change_rtt), "Change RTT");
    EXPECT_EQ(augmentation_name(AugmentationKind::time_shift), "Time shift");
    EXPECT_EQ(augmentation_name(AugmentationKind::packet_loss), "Packet loss");
    EXPECT_EQ(augmentation_name(AugmentationKind::rotate), "Rotate");
    EXPECT_EQ(augmentation_name(AugmentationKind::horizontal_flip), "Horizontal flip");
    EXPECT_EQ(augmentation_name(AugmentationKind::color_jitter), "Color jitter");
}

TEST(Augmentations, RegistryHasSevenStrategiesNoneFirst)
{
    const auto& all = all_augmentations();
    EXPECT_EQ(all.size(), 7u);
    EXPECT_EQ(all.front(), AugmentationKind::none);
}

TEST(ChangeRtt, ScalesInterArrivalsByOneFactor)
{
    const auto f = make_flow(20);
    ChangeRtt augmentation; // alpha ~ U[0.5, 1.5] per the paper
    util::Rng rng(5);
    const auto out = augmentation.transform_flow(f, rng);
    ASSERT_EQ(out.packets.size(), f.packets.size());
    // First timestamp is the anchor and must be preserved.
    EXPECT_DOUBLE_EQ(out.packets.front().timestamp, f.packets.front().timestamp);
    // All gaps scale by the same alpha in [0.5, 1.5].
    const double alpha = (out.packets[1].timestamp - out.packets[0].timestamp) /
                         (f.packets[1].timestamp - f.packets[0].timestamp);
    EXPECT_GE(alpha, 0.5);
    EXPECT_LE(alpha, 1.5);
    for (std::size_t i = 1; i < f.packets.size(); ++i) {
        const double gap_in = f.packets[i].timestamp - f.packets[i - 1].timestamp;
        const double gap_out = out.packets[i].timestamp - out.packets[i - 1].timestamp;
        EXPECT_NEAR(gap_out, alpha * gap_in, 1e-9);
    }
    // Sizes untouched.
    EXPECT_EQ(out.packets[7].size, f.packets[7].size);
}

TEST(ChangeRtt, ValidatesRange)
{
    EXPECT_THROW(ChangeRtt(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(ChangeRtt(1.5, 0.5), std::invalid_argument);
}

TEST(TimeShift, TranslatesUniformly)
{
    const auto f = make_flow(10);
    TimeShift augmentation(0.3, 0.3); // deterministic shift
    util::Rng rng(1);
    const auto out = augmentation.transform_flow(f, rng);
    ASSERT_EQ(out.packets.size(), f.packets.size());
    for (std::size_t i = 0; i < f.packets.size(); ++i) {
        EXPECT_NEAR(out.packets[i].timestamp, f.packets[i].timestamp + 0.3, 1e-12);
    }
}

TEST(TimeShift, DropsPacketsShiftedBeforeZero)
{
    const auto f = make_flow(10); // first packet at t = 0.2
    TimeShift augmentation(-1.0, -1.0);
    util::Rng rng(1);
    const auto out = augmentation.transform_flow(f, rng);
    // Packets at t = 0.2, 0.5, 0.8 move below 0 and are dropped.
    EXPECT_EQ(out.packets.size(), 7u);
    for (const auto& p : out.packets) {
        EXPECT_GE(p.timestamp, 0.0);
    }
}

TEST(PacketLoss, DropsSubsetKeepsAtLeastOne)
{
    const auto f = make_flow(200);
    PacketLoss augmentation(0.3, 0.3);
    util::Rng rng(2);
    const auto out = augmentation.transform_flow(f, rng);
    EXPECT_LT(out.packets.size(), f.packets.size());
    EXPECT_GT(out.packets.size(), f.packets.size() / 2); // ~30% loss
    EXPECT_GE(out.packets.size(), 1u);
    EXPECT_EQ(out.label, f.label);

    // Even at extreme loss rates one packet must survive.
    PacketLoss extreme(0.999, 0.999);
    const auto survivor = extreme.transform_flow(f, rng);
    EXPECT_GE(survivor.packets.size(), 1u);
}

TEST(PacketLoss, ValidatesRange)
{
    EXPECT_THROW(PacketLoss(-0.1, 0.5), std::invalid_argument);
    EXPECT_THROW(PacketLoss(0.2, 1.0), std::invalid_argument);
}

TEST(HorizontalFlip, MirrorsTimeAxisExactly)
{
    flowpic::Flowpic pic(4, std::vector<float>{
                                1, 0, 0, 2, //
                                0, 3, 0, 0, //
                                0, 0, 0, 0, //
                                4, 0, 0, 0});
    HorizontalFlip flip(1.0); // always flip
    util::Rng rng(1);
    const auto out = flip.transform_pic(std::move(pic), rng);
    EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(out.at(0, 3), 1.0f);
    EXPECT_FLOAT_EQ(out.at(1, 2), 3.0f);
    EXPECT_FLOAT_EQ(out.at(3, 3), 4.0f);
}

TEST(HorizontalFlip, DoubleFlipIsIdentity)
{
    flow::Flow f = make_flow(30);
    auto original = flowpic::Flowpic::from_flow(f, {.resolution = 32});
    HorizontalFlip flip(1.0);
    util::Rng rng(1);
    auto twice = flip.transform_pic(flip.transform_pic(original, rng), rng);
    for (std::size_t i = 0; i < original.counts().size(); ++i) {
        EXPECT_FLOAT_EQ(twice.counts()[i], original.counts()[i]);
    }
}

TEST(HorizontalFlip, ZeroProbabilityIsIdentity)
{
    auto pic = flowpic::Flowpic(2, std::vector<float>{1, 2, 3, 4});
    HorizontalFlip flip(0.0);
    util::Rng rng(1);
    const auto out = flip.transform_pic(std::move(pic), rng);
    EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 2.0f);
}

TEST(Rotate, ApproximatelyPreservesMass)
{
    const auto f = make_flow(300);
    auto pic = flowpic::Flowpic::from_flow(f, {.resolution = 32});
    const double mass_before = pic.total_mass();
    Rotate rotate(10.0);
    util::Rng rng(3);
    const auto out = rotate.transform_pic(std::move(pic), rng);
    // Bilinear resampling + border clipping loses a little mass only.
    EXPECT_NEAR(out.total_mass(), mass_before, 0.15 * mass_before);
    for (const float v : out.counts()) {
        EXPECT_GE(v, 0.0f);
    }
}

TEST(Rotate, ZeroAngleIsNearIdentity)
{
    const auto f = make_flow(50);
    auto pic = flowpic::Flowpic::from_flow(f, {.resolution = 32});
    const auto reference = pic;
    Rotate rotate(0.0);
    util::Rng rng(3);
    const auto out = rotate.transform_pic(std::move(pic), rng);
    for (std::size_t i = 0; i < reference.counts().size(); ++i) {
        EXPECT_NEAR(out.counts()[i], reference.counts()[i], 1e-4);
    }
}

TEST(ColorJitter, KeepsCountsNonNegativeAndZerosZeroWithoutBrightness)
{
    const auto f = make_flow(100);
    auto pic = flowpic::Flowpic::from_flow(f, {.resolution = 32});
    ColorJitter jitter(0.3, 0.0, 0.1); // no brightness offset
    util::Rng rng(4);
    const auto reference = pic;
    const auto out = jitter.transform_pic(std::move(pic), rng);
    for (std::size_t i = 0; i < out.counts().size(); ++i) {
        EXPECT_GE(out.counts()[i], 0.0f);
        if (reference.counts()[i] == 0.0f) {
            EXPECT_FLOAT_EQ(out.counts()[i], 0.0f); // empty cells stay empty
        }
    }
}

TEST(ColorJitter, ChangesIntensities)
{
    const auto f = make_flow(100);
    auto pic = flowpic::Flowpic::from_flow(f, {.resolution = 32});
    const auto reference = pic;
    ColorJitter jitter;
    util::Rng rng(4);
    const auto out = jitter.transform_pic(std::move(pic), rng);
    double diff = 0.0;
    for (std::size_t i = 0; i < out.counts().size(); ++i) {
        diff += std::fabs(out.counts()[i] - reference.counts()[i]);
    }
    EXPECT_GT(diff, 0.0);
}

// Property sweep over every strategy through the full pipeline.
class AugmentationPipelineTest : public ::testing::TestWithParam<AugmentationKind> {};

TEST_P(AugmentationPipelineTest, ProducesValidFlowpic)
{
    const auto kind = GetParam();
    const auto augmentation = make_augmentation(kind);
    EXPECT_EQ(augmentation->kind(), kind);
    const auto f = make_flow(80);
    util::Rng rng(9);
    flowpic::FlowpicConfig config;
    config.resolution = 32;
    for (int trial = 0; trial < 5; ++trial) {
        const auto pic = augmentation->augmented_flowpic(f, config, rng);
        EXPECT_EQ(pic.resolution(), 32u);
        EXPECT_GT(pic.total_mass(), 0.0);
        for (const float v : pic.counts()) {
            EXPECT_GE(v, 0.0f);
            EXPECT_TRUE(std::isfinite(v));
        }
    }
}

TEST_P(AugmentationPipelineTest, TimeSeriesFlagConsistent)
{
    const auto kind = GetParam();
    const auto augmentation = make_augmentation(kind);
    const bool expected = kind == AugmentationKind::change_rtt ||
                          kind == AugmentationKind::time_shift ||
                          kind == AugmentationKind::packet_loss;
    EXPECT_EQ(augmentation->is_time_series(), expected);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AugmentationPipelineTest,
                         ::testing::ValuesIn(all_augmentations()),
                         [](const auto& info) {
                             std::string name(augmentation_name(info.param));
                             for (auto& c : name) {
                                 if (!std::isalnum(static_cast<unsigned char>(c))) {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

TEST(ViewPair, ProducesTwoDistinctViews)
{
    const auto f = make_flow(60);
    ViewPairGenerator views; // paper pair: Change RTT + Time shift
    EXPECT_EQ(views.first_kind(), AugmentationKind::change_rtt);
    EXPECT_EQ(views.second_kind(), AugmentationKind::time_shift);
    util::Rng rng(6);
    const auto [a, b] = views.view_pair(f, rng);
    EXPECT_EQ(a.resolution(), 32u);
    EXPECT_EQ(b.resolution(), 32u);
    // Two independently transformed views of the same flow must differ.
    bool different = false;
    for (std::size_t i = 0; i < a.counts().size(); ++i) {
        if (a.counts()[i] != b.counts()[i]) {
            different = true;
            break;
        }
    }
    EXPECT_TRUE(different);
}

TEST(ViewPair, MixedFamilyPairWorks)
{
    const auto f = make_flow(60);
    flowpic::FlowpicConfig config;
    config.resolution = 64;
    ViewPairGenerator views(AugmentationKind::color_jitter, AugmentationKind::change_rtt, config);
    util::Rng rng(6);
    const auto view = views.view(f, rng);
    EXPECT_EQ(view.resolution(), 64u);
    EXPECT_GT(view.total_mass(), 0.0);
}

} // namespace
