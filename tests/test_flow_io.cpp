// Tests for the monolithic CSV dataset format (fptc/flow/io.hpp).
#include "fptc/flow/io.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace fptc::flow;

Dataset tiny_dataset()
{
    Dataset d;
    d.name = "tiny";
    d.class_names = {"alpha", "beta"};
    Flow a;
    a.label = 0;
    a.packets = {{0.0, 100, Direction::upstream, false}, {0.5, 1400, Direction::downstream, false}};
    Flow b;
    b.label = 1;
    b.background = true;
    b.packets = {{0.25, 40, Direction::downstream, true}};
    d.flows = {a, b};
    return d;
}

TEST(FlowIo, RoundTripPreservesEverything)
{
    const auto original = tiny_dataset();
    std::stringstream buffer;
    write_dataset_csv(original, buffer);
    const auto restored = read_dataset_csv(buffer);

    ASSERT_EQ(restored.flows.size(), original.flows.size());
    EXPECT_EQ(restored.class_names, original.class_names);
    for (std::size_t f = 0; f < original.flows.size(); ++f) {
        const auto& in = original.flows[f];
        const auto& out = restored.flows[f];
        EXPECT_EQ(out.label, in.label);
        EXPECT_EQ(out.background, in.background);
        ASSERT_EQ(out.packets.size(), in.packets.size());
        for (std::size_t p = 0; p < in.packets.size(); ++p) {
            EXPECT_DOUBLE_EQ(out.packets[p].timestamp, in.packets[p].timestamp);
            EXPECT_EQ(out.packets[p].size, in.packets[p].size);
            EXPECT_EQ(out.packets[p].direction, in.packets[p].direction);
            EXPECT_EQ(out.packets[p].is_ack, in.packets[p].is_ack);
        }
    }
}

TEST(FlowIo, RoundTripOnGeneratedDataset)
{
    fptc::trafficgen::UcdavisOptions options;
    options.samples_scale = 0.02;
    const auto original =
        fptc::trafficgen::make_ucdavis19(fptc::trafficgen::UcdavisPartition::script, options);
    std::stringstream buffer;
    write_dataset_csv(original, buffer);
    const auto restored = read_dataset_csv(buffer);
    ASSERT_EQ(restored.size(), original.size());
    EXPECT_EQ(restored.class_names, original.class_names);
    std::size_t total_in = 0;
    std::size_t total_out = 0;
    for (std::size_t f = 0; f < original.size(); ++f) {
        total_in += original.flows[f].packets.size();
        total_out += restored.flows[f].packets.size();
    }
    EXPECT_EQ(total_in, total_out);
}

TEST(FlowIo, RejectsBadHeader)
{
    std::stringstream buffer("wrong,header\n");
    EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    std::stringstream empty;
    EXPECT_THROW((void)read_dataset_csv(empty), std::runtime_error);
}

TEST(FlowIo, RejectsMalformedRows)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    {
        std::stringstream buffer(header + "0,0,x,0.0,100,sideways,0,0\n");
        EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    }
    {
        std::stringstream buffer(header + "0,0,x,0.0,100,up,0\n"); // 7 fields
        EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    }
    {
        std::stringstream buffer(header + "5,0,x,0.0,100,up,0,0\n"); // gap in ids
        EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    }
    {
        std::stringstream buffer(header + "0,zero,x,0.0,100,up,0,0\n"); // bad label
        EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    }
}

TEST(FlowIo, RejectsInconsistentClassNames)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    std::stringstream buffer(header + "0,0,alpha,0.0,100,up,0,0\n1,0,beta,0.0,100,up,0,0\n");
    EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
}

TEST(FlowIo, FillsVocabularyGaps)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    // Only label 2 appears; labels 0 and 1 get placeholder names.
    std::stringstream buffer(header + "0,2,gamma,0.0,100,up,0,0\n");
    const auto dataset = read_dataset_csv(buffer);
    ASSERT_EQ(dataset.class_names.size(), 3u);
    EXPECT_EQ(dataset.class_names[2], "gamma");
    EXPECT_EQ(dataset.class_names[0], "class-0");
}

} // namespace
