// Tests for the monolithic CSV dataset format (fptc/flow/io.hpp): strict
// round-trips, line-numbered errors, header validation and the
// quarantine-and-continue reader.
#include "fptc/flow/io.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/fault.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace fptc::flow;

Dataset tiny_dataset()
{
    Dataset d;
    d.name = "tiny";
    d.class_names = {"alpha", "beta"};
    Flow a;
    a.label = 0;
    a.packets = {{0.0, 100, Direction::upstream, false}, {0.5, 1400, Direction::downstream, false}};
    Flow b;
    b.label = 1;
    b.background = true;
    b.packets = {{0.25, 40, Direction::downstream, true}};
    d.flows = {a, b};
    return d;
}

TEST(FlowIo, RoundTripPreservesEverything)
{
    const auto original = tiny_dataset();
    std::stringstream buffer;
    write_dataset_csv(original, buffer);
    const auto restored = read_dataset_csv(buffer);

    ASSERT_EQ(restored.flows.size(), original.flows.size());
    EXPECT_EQ(restored.class_names, original.class_names);
    for (std::size_t f = 0; f < original.flows.size(); ++f) {
        const auto& in = original.flows[f];
        const auto& out = restored.flows[f];
        EXPECT_EQ(out.label, in.label);
        EXPECT_EQ(out.background, in.background);
        ASSERT_EQ(out.packets.size(), in.packets.size());
        for (std::size_t p = 0; p < in.packets.size(); ++p) {
            EXPECT_DOUBLE_EQ(out.packets[p].timestamp, in.packets[p].timestamp);
            EXPECT_EQ(out.packets[p].size, in.packets[p].size);
            EXPECT_EQ(out.packets[p].direction, in.packets[p].direction);
            EXPECT_EQ(out.packets[p].is_ack, in.packets[p].is_ack);
        }
    }
}

TEST(FlowIo, RoundTripOnGeneratedDataset)
{
    fptc::trafficgen::UcdavisOptions options;
    options.samples_scale = 0.02;
    const auto original =
        fptc::trafficgen::make_ucdavis19(fptc::trafficgen::UcdavisPartition::script, options);
    std::stringstream buffer;
    write_dataset_csv(original, buffer);
    const auto restored = read_dataset_csv(buffer);
    ASSERT_EQ(restored.size(), original.size());
    EXPECT_EQ(restored.class_names, original.class_names);
    std::size_t total_in = 0;
    std::size_t total_out = 0;
    for (std::size_t f = 0; f < original.size(); ++f) {
        total_in += original.flows[f].packets.size();
        total_out += restored.flows[f].packets.size();
    }
    EXPECT_EQ(total_in, total_out);
}

TEST(FlowIo, RejectsBadHeader)
{
    std::stringstream buffer("wrong,header\n");
    EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    std::stringstream empty;
    EXPECT_THROW((void)read_dataset_csv(empty), std::runtime_error);
}

TEST(FlowIo, RejectsMalformedRows)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    {
        std::stringstream buffer(header + "0,0,x,0.0,100,sideways,0,0\n");
        EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    }
    {
        std::stringstream buffer(header + "0,0,x,0.0,100,up,0\n"); // 7 fields
        EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    }
    {
        std::stringstream buffer(header + "5,0,x,0.0,100,up,0,0\n"); // gap in ids
        EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    }
    {
        std::stringstream buffer(header + "0,zero,x,0.0,100,up,0,0\n"); // bad label
        EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
    }
}

TEST(FlowIo, RejectsInconsistentClassNames)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    std::stringstream buffer(header + "0,0,alpha,0.0,100,up,0,0\n1,0,beta,0.0,100,up,0,0\n");
    EXPECT_THROW((void)read_dataset_csv(buffer), std::runtime_error);
}

TEST(FlowIo, ErrorsCarryLineNumbers)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    // The bad row is the third line of the file (header is line 1).
    std::stringstream buffer(header + "0,0,x,0.0,100,up,0,0\n0,0,x,oops,100,up,0,0\n");
    try {
        (void)read_dataset_csv(buffer);
        FAIL() << "expected parse failure";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("timestamp"), std::string::npos) << e.what();
    }
}

TEST(FlowIo, HeaderErrorsNameTheColumn)
{
    std::stringstream buffer(
        "flow_id,label,klass,timestamp,size,direction,is_ack,background\n");
    try {
        (void)read_dataset_csv(buffer);
        FAIL() << "expected header rejection";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("column 3"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("'klass'"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("'class_name'"), std::string::npos) << e.what();
    }
}

TEST(FlowIo, QuarantineCollectsBadRowsAndContinues)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    std::stringstream buffer(header + "0,0,alpha,0.0,100,up,0,0\n"   // line 2: good
                             + "0,0,alpha,bogus,100,up,0,0\n"        // line 3: bad timestamp
                             + "1,1,beta,0.0,100,up,0\n"             // line 4: 7 fields
                             + "2,1,beta,0.5,200,down,1,0\n");       // line 5: good
    CsvReadReport report;
    CsvReadOptions options;
    options.quarantine = true;
    const auto dataset = read_dataset_csv(buffer, options, &report);

    ASSERT_EQ(report.quarantined.size(), 2u);
    EXPECT_EQ(report.quarantined[0].line_number, 3u);
    EXPECT_EQ(report.quarantined[1].line_number, 4u);
    EXPECT_NE(report.quarantined[0].error.find("timestamp"), std::string::npos);
    EXPECT_EQ(report.rows_read, 2u);
    ASSERT_EQ(dataset.flows.size(), 2u);
    EXPECT_EQ(dataset.flows[0].packets.size(), 1u);
    EXPECT_EQ(dataset.flows[1].label, 1u);
}

TEST(FlowIo, QuarantineRejectsResumedFlows)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    // Flow 0 resumes after flow 1: its second appearance must be quarantined,
    // not appended to the first.
    std::stringstream buffer(header + "0,0,alpha,0.0,100,up,0,0\n"
                             + "1,1,beta,0.0,100,up,0,0\n"
                             + "0,0,alpha,1.0,100,up,0,0\n");
    CsvReadReport report;
    CsvReadOptions options;
    options.quarantine = true;
    const auto dataset = read_dataset_csv(buffer, options, &report);
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0].line_number, 4u);
    EXPECT_EQ(dataset.flows.size(), 2u);
    EXPECT_EQ(dataset.flows[0].packets.size(), 1u);
}

TEST(FlowIo, QuarantineCapThrows)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    std::string body;
    for (int i = 0; i < 5; ++i) {
        body += "garbage\n";
    }
    std::stringstream buffer(header + body);
    CsvReadOptions options;
    options.quarantine = true;
    options.max_quarantined = 3;
    EXPECT_THROW((void)read_dataset_csv(buffer, options, nullptr), std::runtime_error);
}

TEST(FlowIo, InjectedCsvFaultsAreQuarantined)
{
    // 100% row corruption: every row is mangled, quarantined and counted.
    fptc::util::FaultPlan plan;
    plan.csv_row_percent = 100.0;
    fptc::util::fault_injector().configure(plan);

    const auto original = tiny_dataset();
    std::stringstream buffer;
    write_dataset_csv(original, buffer);
    CsvReadReport report;
    CsvReadOptions options;
    options.quarantine = true;
    const auto dataset = read_dataset_csv(buffer, options, &report);
    fptc::util::fault_injector().configure(fptc::util::FaultPlan{});

    EXPECT_EQ(report.injected_faults, 3u); // one per packet row
    EXPECT_EQ(report.quarantined.size(), 3u);
    EXPECT_EQ(report.rows_read, 0u);
    EXPECT_TRUE(dataset.flows.empty()); // all-quarantined flows are dropped
}

TEST(FlowIo, StrictModeIgnoresCsvFaultInjection)
{
    fptc::util::FaultPlan plan;
    plan.csv_row_percent = 100.0;
    fptc::util::fault_injector().configure(plan);

    const auto original = tiny_dataset();
    std::stringstream buffer;
    write_dataset_csv(original, buffer);
    const auto restored = read_dataset_csv(buffer); // strict read: no mangling
    fptc::util::fault_injector().configure(fptc::util::FaultPlan{});
    EXPECT_EQ(restored.flows.size(), original.flows.size());
}

TEST(FlowIo, RejectsNonFiniteAndExoticTimestamps)
{
    // strtod accepts "nan", "inf"/"infinity", hex floats and leading
    // whitespace; none may enter a dataset (a NaN timestamp silently poisons
    // every downstream flowpic).  Regression for the hardened parse_double.
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    const char* bad[] = {"nan",   "NAN", "-nan", "inf", "INF",  "infinity", "-inf",
                         "0x1p3", "0X2", " 1.0", "1.0 ", "1e999", "-1e999", ""};
    for (const char* value : bad) {
        std::stringstream buffer(header + std::string("0,0,x,") + value + ",100,up,0,0\n");
        try {
            (void)read_dataset_csv(buffer);
            FAIL() << "expected rejection of timestamp '" << value << "'";
        } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string(e.what()).find("timestamp"), std::string::npos)
                << value << ": " << e.what();
        }
    }
    const char* good[] = {"1.5", "-2.5e-3", "1E2", "0.0", "+3.25", ".5"};
    for (const char* value : good) {
        std::stringstream buffer(header + std::string("0,0,x,") + value + ",100,up,0,0\n");
        const auto dataset = read_dataset_csv(buffer);
        ASSERT_EQ(dataset.flows.size(), 1u) << value;
        EXPECT_DOUBLE_EQ(dataset.flows[0].packets.at(0).timestamp, std::strtod(value, nullptr))
            << value;
    }
}

TEST(FlowIo, NonFiniteTimestampsAreQuarantinedNotLoaded)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    std::stringstream buffer(header + "0,0,x,0.0,100,up,0,0\n"
                             + "1,0,x,nan,100,up,0,0\n"
                             + "2,0,x,1e999,100,up,0,0\n");
    CsvReadReport report;
    CsvReadOptions options;
    options.quarantine = true;
    const auto dataset = read_dataset_csv(buffer, options, &report);
    EXPECT_EQ(report.quarantined.size(), 2u);
    ASSERT_EQ(dataset.flows.size(), 1u);
    EXPECT_DOUBLE_EQ(dataset.flows[0].packets.at(0).timestamp, 0.0);
}

TEST(FlowIo, RejectsOutOfRangePacketSizes)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    const char* bad[] = {"-1", "-40", "65536", "999999999", "2147483647"};
    for (const char* value : bad) {
        std::stringstream buffer(header + std::string("0,0,x,0.0,") + value + ",up,0,0\n");
        try {
            (void)read_dataset_csv(buffer);
            FAIL() << "expected rejection of size '" << value << "'";
        } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string(e.what()).find("size"), std::string::npos)
                << value << ": " << e.what();
        }
    }
    // The boundary values pass: 0 (a pure-ACK artifact) and the max datagram.
    const char* good[] = {"0", "1", "1500", "65535"};
    for (const char* value : good) {
        std::stringstream buffer(header + std::string("0,0,x,0.0,") + value + ",up,0,0\n");
        const auto dataset = read_dataset_csv(buffer);
        ASSERT_EQ(dataset.flows.size(), 1u) << value;
        EXPECT_EQ(dataset.flows[0].packets.at(0).size, std::atoi(value)) << value;
    }
}

TEST(FlowIo, FuzzCorpusIsQuarantinedAndParsingContinues)
{
    // A deterministic fuzz corpus over the packet-row grammar: truncations,
    // field deletions, out-of-domain numerics (negative sizes, NaN/overflow
    // timestamps, label garbage).  Every entry must quarantine — never
    // abort, never register flow state — and the good rows around the
    // corpus must survive untouched.
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    const std::string good_head = "0,0,alpha,0.0,100,up,0,0";
    const std::string good_tail = "2,1,beta,0.5,200,down,1,0";

    std::vector<std::string> corpus = {
        "1,1,beta,nan,100,up,0,0",         // NaN timestamp
        "1,1,beta,-nan,100,up,0,0",
        "1,1,beta,inf,100,up,0,0",
        "1,1,beta,1e999,100,up,0,0",       // overflow -> inf
        "1,1,beta,0x1p3,100,up,0,0",       // hex float
        "1,1,beta,,100,up,0,0",            // empty timestamp
        "1,1,beta,0.5,-40,up,0,0",         // negative size
        "1,1,beta,0.5,65536,up,0,0",       // beyond max datagram
        "1,1,beta,0.5,2147483648,up,0,0",  // int overflow
        "1,1,beta,0.5,1e3,up,0,0",         // float size
        "1,1,beta,0.5,,up,0,0",            // empty size
        "1,-1,beta,0.5,100,up,0,0",        // negative label
        "1,9999999,beta,0.5,100,up,0,0",   // implausible label
        "1,1,beta,0.5,100,sideways,0,0",   // bad direction
        "x,1,beta,0.5,100,up,0,0",         // non-numeric flow id
        ",,,,,,,",                         // all fields empty
        "1,1,beta,0.5,100,up,0,0,9",       // extra field
    };
    // Every truncation of a valid row up to (and including) the text before
    // its last comma has fewer than 8 fields and must quarantine.  (One
    // character further — a trailing comma — would make an 8-field row with
    // an empty background column, which parses.)
    for (std::size_t len = 1; len <= good_tail.find_last_of(','); ++len) {
        corpus.push_back(good_tail.substr(0, len));
    }

    std::string body = good_head + "\n";
    for (const auto& row : corpus) {
        body += row + "\n";
    }
    body += good_tail + "\n";

    CsvReadReport report;
    CsvReadOptions options;
    options.quarantine = true;
    std::stringstream buffer(header + body);
    const auto dataset = read_dataset_csv(buffer, options, &report);

    EXPECT_EQ(report.quarantined.size(), corpus.size());
    EXPECT_EQ(report.rows_read, 2u);
    ASSERT_EQ(dataset.flows.size(), 2u);
    EXPECT_EQ(dataset.flows[0].label, 0u);
    EXPECT_EQ(dataset.flows[1].label, 1u);
    EXPECT_EQ(dataset.flows[1].packets.at(0).size, 200);
    // Line numbers attribute each quarantined row exactly (header is line 1,
    // good_head line 2, corpus starts at line 3).
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
        EXPECT_EQ(report.quarantined[i].line_number, i + 3) << report.quarantined[i].error;
    }

    // Strict mode refuses each corpus entry outright.
    for (const auto& row : corpus) {
        std::stringstream strict(header + row + "\n");
        EXPECT_THROW((void)read_dataset_csv(strict), std::runtime_error) << row;
    }
}

TEST(FlowIo, FillsVocabularyGaps)
{
    const std::string header =
        "flow_id,label,class_name,timestamp,size,direction,is_ack,background\n";
    // Only label 2 appears; labels 0 and 1 get placeholder names.
    std::stringstream buffer(header + "0,2,gamma,0.0,100,up,0,0\n");
    const auto dataset = read_dataset_csv(buffer);
    ASSERT_EQ(dataset.class_names.size(), 3u);
    EXPECT_EQ(dataset.class_names[2], "gamma");
    EXPECT_EQ(dataset.class_names[0], "class-0");
}

} // namespace
