// Tests of the process-wide memory accountant: reserve/release bookkeeping,
// peak tracking, budget enforcement with typed refusals, Charge RAII
// semantics (copy re-reserves, move steals, grow/shrink/reset), interaction
// with the allocation fault injector, and the balance invariant — in_use()
// returns to zero after every test (asserted by a global test environment,
// the leak check of the acceptance criteria).
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/membudget.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

namespace {

using namespace fptc;

/// Restore the global accountant's budget (and reset its peak) on scope exit
/// so tests cannot leak configuration into each other.
struct BudgetGuard {
    explicit BudgetGuard(std::size_t budget_bytes)
        : previous_(util::mem_budget().budget_bytes())
    {
        util::mem_budget().set_budget_bytes(budget_bytes);
    }
    ~BudgetGuard() { util::mem_budget().set_budget_bytes(previous_); }

private:
    std::size_t previous_;
};

/// Reset the process-wide injector after tests that arm it.
struct InjectorReset {
    ~InjectorReset() { util::fault_injector().configure(util::FaultPlan{}); }
};

TEST(MemBudget, ReserveReleaseBalancesAndTracksPeak)
{
    util::MemBudget budget;
    EXPECT_EQ(budget.in_use(), 0u);
    budget.reserve(1000, "a");
    budget.reserve(500, "b");
    EXPECT_EQ(budget.in_use(), 1500u);
    EXPECT_EQ(budget.peak_bytes(), 1500u);
    budget.release(500);
    EXPECT_EQ(budget.in_use(), 1000u);
    EXPECT_EQ(budget.peak_bytes(), 1500u);  // peak is a high-water mark
    budget.reserve(200, "c");
    EXPECT_EQ(budget.peak_bytes(), 1500u);  // 1200 < old peak
    budget.release(1200);
    EXPECT_EQ(budget.in_use(), 0u);
    EXPECT_EQ(budget.reserved_total(), 1700u);
    EXPECT_EQ(budget.rejections(), 0u);
}

TEST(MemBudget, ZeroByteReservationsAreFree)
{
    util::MemBudget budget;
    budget.reserve(0, "nothing");
    EXPECT_EQ(budget.in_use(), 0u);
    EXPECT_EQ(budget.reserved_total(), 0u);
    budget.release(0);
    EXPECT_EQ(budget.in_use(), 0u);
}

TEST(MemBudget, ReleaseClampsAtZeroInsteadOfUnderflowing)
{
    util::MemBudget budget;
    budget.reserve(100, "a");
    budget.release(1000);  // over-release must clamp, not wrap to huge
    EXPECT_EQ(budget.in_use(), 0u);
}

TEST(MemBudget, BudgetRefusalThrowsTypedExceptionWithAmounts)
{
    util::MemBudget budget;
    budget.set_budget_bytes(1000);
    budget.reserve(800, "base");
    try {
        budget.reserve(300, "overflow");
        FAIL() << "reserve over budget must throw";
    } catch (const util::BudgetExceeded& error) {
        EXPECT_EQ(error.requested(), 300u);
        EXPECT_EQ(error.available(), 200u);
        EXPECT_TRUE(error.transient());
        EXPECT_NE(std::string(error.what()).find("overflow"), std::string::npos);
    }
    // The failed reservation charged nothing.
    EXPECT_EQ(budget.in_use(), 800u);
    EXPECT_EQ(budget.rejections(), 1u);
    budget.release(800);
    EXPECT_EQ(budget.in_use(), 0u);
}

TEST(MemBudget, ZeroBudgetMeansUnlimited)
{
    util::MemBudget budget;
    EXPECT_EQ(budget.budget_bytes(), 0u);
    EXPECT_NO_THROW(budget.reserve(std::size_t{1} << 40, "huge"));
    budget.release(std::size_t{1} << 40);
    EXPECT_EQ(budget.in_use(), 0u);
}

TEST(MemBudget, ConcurrentReserveReleaseStaysBalanced)
{
    util::MemBudget budget;
    constexpr int kThreads = 8;
    constexpr int kIterations = 2000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&budget] {
            for (int i = 0; i < kIterations; ++i) {
                budget.reserve(64, "hammer");
                budget.release(64);
            }
        });
    }
    for (auto& thread : pool) {
        thread.join();
    }
    EXPECT_EQ(budget.in_use(), 0u);
    EXPECT_EQ(budget.reserved_total(),
              static_cast<std::size_t>(kThreads) * kIterations * 64u);
    EXPECT_GE(budget.peak_bytes(), 64u);
    EXPECT_LE(budget.peak_bytes(), static_cast<std::size_t>(kThreads) * 64u);
}

TEST(Charge, ReservesOnConstructionReleasesOnDestruction)
{
    const auto before = util::mem_budget().in_use();
    {
        util::Charge charge(4096, "test");
        EXPECT_EQ(charge.bytes(), 4096u);
        EXPECT_EQ(util::mem_budget().in_use(), before + 4096);
    }
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(Charge, CopyReReservesMoveSteals)
{
    const auto before = util::mem_budget().in_use();
    {
        util::Charge original(1000, "test");
        util::Charge copy(original);  // copy owns its own reservation
        EXPECT_EQ(copy.bytes(), 1000u);
        EXPECT_EQ(util::mem_budget().in_use(), before + 2000);

        util::Charge moved(std::move(copy));  // move transfers, no new bytes
        EXPECT_EQ(moved.bytes(), 1000u);
        EXPECT_EQ(copy.bytes(), 0u);  // NOLINT(bugprone-use-after-move)
        EXPECT_EQ(util::mem_budget().in_use(), before + 2000);
    }
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(Charge, AssignmentRebalancesExactly)
{
    const auto before = util::mem_budget().in_use();
    {
        util::Charge a(300, "test");
        util::Charge b(500, "test");
        a = b;  // copy-assign: a now owns 500
        EXPECT_EQ(a.bytes(), 500u);
        EXPECT_EQ(util::mem_budget().in_use(), before + 1000);
        util::Charge c(700, "test");
        a = std::move(c);  // move-assign: a's 500 released, c's 700 stolen
        EXPECT_EQ(a.bytes(), 700u);
        EXPECT_EQ(c.bytes(), 0u);  // NOLINT(bugprone-use-after-move)
        EXPECT_EQ(util::mem_budget().in_use(), before + 1200);
    }
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(Charge, GrowShrinkResetTrackTheAccountant)
{
    const auto before = util::mem_budget().in_use();
    {
        util::Charge charge(100, "test");
        charge.grow(400);
        EXPECT_EQ(charge.bytes(), 500u);
        EXPECT_EQ(util::mem_budget().in_use(), before + 500);
        charge.shrink(200);
        EXPECT_EQ(charge.bytes(), 300u);
        charge.shrink(10000);  // clamped: releases only what is held
        EXPECT_EQ(charge.bytes(), 0u);
        EXPECT_EQ(util::mem_budget().in_use(), before);
        charge.reset(250);
        EXPECT_EQ(charge.bytes(), 250u);
        EXPECT_EQ(util::mem_budget().in_use(), before + 250);
        charge.reset();
        EXPECT_EQ(charge.bytes(), 0u);
    }
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(Charge, DefaultConstructedIsInert)
{
    const auto before = util::mem_budget().in_use();
    util::Charge charge;
    EXPECT_EQ(charge.bytes(), 0u);
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(Charge, FailedReservationLeavesNothingCharged)
{
    BudgetGuard guard(1000);
    const auto before = util::mem_budget().in_use();
    EXPECT_THROW(util::Charge charge(2000, "too-big"), util::BudgetExceeded);
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

TEST(Charge, CopyAssignOverBudgetKeepsTargetIntact)
{
    BudgetGuard guard(1000);
    util::Charge a(400, "test");
    util::Charge b(400, "test");
    // Copy-assign reserves the new 400 before releasing a's old 400: with
    // only 200 left this must refuse — and leave `a` still holding its 400.
    EXPECT_THROW(a = b, util::BudgetExceeded);
    EXPECT_EQ(a.bytes(), 400u);
    EXPECT_EQ(util::mem_budget().in_use(), 800u);
}

TEST(MemBudget, AllocFaultInjectionRefusesDeterministically)
{
    InjectorReset reset;
    util::FaultPlan plan;
    plan.alloc_fail_after_mb = 1;
    util::fault_injector().configure(plan);
    util::fault_injector().begin_alloc_scope();

    util::MemBudget budget;  // no budget: only the injector can refuse
    budget.reserve(512 * 1024, "first");   // scope: 0.5 MiB
    budget.reserve(512 * 1024, "second");  // scope: exactly 1 MiB, still fine
    EXPECT_THROW(budget.reserve(1, "third"), util::BudgetExceeded);  // over
    budget.release(1024 * 1024);
    EXPECT_EQ(budget.in_use(), 0u);

    // A fresh scope starts counting from zero again.
    util::fault_injector().begin_alloc_scope();
    EXPECT_NO_THROW(budget.reserve(1024 * 1024, "fresh"));
    budget.release(1024 * 1024);
    EXPECT_EQ(budget.in_use(), 0u);
    EXPECT_GE(util::fault_injector().counters().alloc_rejections, 1u);
}

TEST(MemBudget, SummaryMentionsEveryCounter)
{
    util::MemBudget budget;
    budget.set_budget_bytes(2048);
    budget.reserve(1024, "x");
    const auto summary = budget.summary();
    EXPECT_NE(summary.find("in_use="), std::string::npos);
    EXPECT_NE(summary.find("peak="), std::string::npos);
    EXPECT_NE(summary.find("budget="), std::string::npos);
    EXPECT_NE(summary.find("rejections="), std::string::npos);
    budget.release(1024);
}

TEST(MemBudget, GlobalAccountantReadsEnvKnobOnce)
{
    // The process-wide accountant is configured from FPTC_MEM_BUDGET_MB on
    // first use; within a test binary it has long been touched, so here we
    // only pin the invariant the rest of the suite relies on: it exists and
    // is balanced between tests.
    EXPECT_EQ(util::mem_budget().in_use(), 0u);
}

/// Acceptance-criteria leak check: accounting must balance — the global
/// accountant returns to zero bytes in use after the whole suite.
class MemBudgetBalanceEnvironment : public ::testing::Environment {
public:
    void TearDown() override { ASSERT_EQ(util::mem_budget().in_use(), 0u); }
};

const auto* const kBalanceEnvironment =
    ::testing::AddGlobalTestEnvironment(new MemBudgetBalanceEnvironment);

} // namespace
