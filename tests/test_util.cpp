// Unit tests for fptc::util — RNG determinism and distribution sanity,
// table/CSV rendering, heatmaps, campaign-scale resolution, the run
// journal and the fault injector.
#include "fptc/util/csv.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/heatmap.hpp"
#include "fptc/util/journal.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>

namespace {

using fptc::util::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng rng(0);
    // xoshiro with an all-zero state would be stuck at 0; splitmix expansion
    // must prevent that.
    bool any_nonzero = false;
    for (int i = 0; i < 8; ++i) {
        any_nonzero |= rng() != 0;
    }
    EXPECT_TRUE(any_nonzero);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform_int(2, 6);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all of 2..6 hit
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(3);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(rng.uniform_int(9, 9), 9);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, PoissonMeanMatchesLambda)
{
    Rng rng(13);
    for (const double lambda : {0.5, 4.0, 30.0, 100.0}) {
        double total = 0.0;
        constexpr int n = 4000;
        for (int i = 0; i < n; ++i) {
            total += rng.poisson(lambda);
        }
        EXPECT_NEAR(total / n, lambda, lambda * 0.1 + 0.1) << "lambda=" << lambda;
    }
}

TEST(Rng, PoissonZeroLambda)
{
    Rng rng(1);
    EXPECT_EQ(rng.poisson(0.0), 0);
    EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(17);
    double total = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        total += rng.exponential(2.0);
    }
    EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(19);
    const double weights[] = {1.0, 3.0, 0.0, 6.0};
    std::array<int, 4> counts{};
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        ++counts[rng.categorical(weights)];
    }
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
    EXPECT_NEAR(counts[3] / double(n), 0.6, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = v;
    rng.shuffle(shuffled);
    auto sorted = shuffled;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, v);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(29);
    const auto sample = rng.sample_without_replacement(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (const auto i : sample) {
        EXPECT_LT(i, 100u);
    }
}

TEST(Rng, SampleWithoutReplacementClampsToN)
{
    Rng rng(29);
    const auto sample = rng.sample_without_replacement(5, 50);
    EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(5);
    Rng child = parent.fork();
    // Child and parent should not emit the same sequence.
    int equal = 0;
    for (int i = 0; i < 32; ++i) {
        if (parent() == child()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(MixSeed, DistinctForDistinctStreams)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t a = 0; a < 10; ++a) {
        for (std::uint64_t b = 0; b < 10; ++b) {
            seeds.insert(fptc::util::mix_seed(42, a, b));
        }
    }
    EXPECT_EQ(seeds.size(), 100u);
}

TEST(Table, RendersAlignedColumns)
{
    fptc::util::Table table("Title");
    table.set_header({"A", "Long header"});
    table.add_row({"x", "1"});
    table.add_row({"longer", "2"});
    table.add_footnote("note");
    const auto text = table.to_string();
    EXPECT_NE(text.find("Title"), std::string::npos);
    EXPECT_NE(text.find("Long header"), std::string::npos);
    EXPECT_NE(text.find("note"), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, MarkdownHasSeparatorRow)
{
    fptc::util::Table table;
    table.set_header({"A", "B"});
    table.add_row({"1", "2"});
    const auto md = table.to_markdown();
    EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(Table, FormatMeanCi)
{
    EXPECT_EQ(fptc::util::format_mean_ci(96.8, 0.37), "96.80 ±0.37");
    EXPECT_EQ(fptc::util::format_double(1.0 / 3.0, 3), "0.333");
    EXPECT_EQ(fptc::util::format_double(std::nan(""), 2), "n/a");
}

TEST(Csv, EscapesSpecialCharacters)
{
    EXPECT_EQ(fptc::util::csv_escape("plain"), "plain");
    EXPECT_EQ(fptc::util::csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(fptc::util::csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, RoundTripContent)
{
    fptc::util::CsvWriter csv({"x", "y"});
    csv.add_row({"1", "two,three"});
    const auto text = csv.to_string();
    EXPECT_EQ(text, "x,y\n1,\"two,three\"\n");
}

TEST(Heatmap, RendersExpectedDimensions)
{
    std::vector<float> values(16, 0.0f);
    values[5] = 10.0f;
    const auto text = fptc::util::render_heatmap(values, 4, 4);
    // 4 content rows + 2 border rows + scale line.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 7);
    EXPECT_NE(text.find('@'), std::string::npos); // the hot cell
}

TEST(Heatmap, DownsamplesLargeInput)
{
    std::vector<float> values(128 * 128, 1.0f);
    fptc::util::HeatmapOptions options;
    options.max_side = 16;
    options.show_scale = false;
    const auto text = fptc::util::render_heatmap(values, 128, 128, options);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 18); // 16 + borders
}

class TempFile {
public:
    explicit TempFile(const std::string& name)
        : path_((std::filesystem::temp_directory_path() / name).string())
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
};

TEST(Journal, JsonLineRoundTrip)
{
    fptc::util::JournalRecord record;
    record.key = "table4|res=32|aug=rotate|split=0|seed=1";
    record.fields = {{"script", "98.25"}, {"note", "quote \" and \\ and\ntab\t"}};
    const auto line = fptc::util::to_json_line(record);
    const auto parsed = fptc::util::parse_json_line(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->key, record.key);
    EXPECT_EQ(parsed->fields, record.fields);
}

TEST(Journal, ParseRejectsTornLines)
{
    EXPECT_FALSE(fptc::util::parse_json_line("").has_value());
    EXPECT_FALSE(fptc::util::parse_json_line("{\"key\":\"a\",\"x\":\"1").has_value());
    EXPECT_FALSE(fptc::util::parse_json_line("not json at all").has_value());
    EXPECT_FALSE(fptc::util::parse_json_line("{\"x\":\"1\"}").has_value()); // no key
}

TEST(Journal, RecordsSurviveReopen)
{
    TempFile file("fptc_test_journal.jsonl");
    {
        fptc::util::RunJournal journal(file.path());
        EXPECT_EQ(journal.size(), 0u);
        journal.record("unit-a", {{"score", "1.5"}});
        journal.record("unit-b", {{"score", "2.5"}});
    }
    fptc::util::RunJournal reopened(file.path());
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.recovered_records(), 2u);
    EXPECT_TRUE(reopened.completed("unit-a"));
    EXPECT_FALSE(reopened.completed("unit-c"));
    const auto* fields = reopened.find("unit-b");
    ASSERT_NE(fields, nullptr);
    EXPECT_EQ(fields->at("score"), "2.5");
}

TEST(Journal, TornTailIsDiscarded)
{
    TempFile file("fptc_test_journal_torn.jsonl");
    {
        fptc::util::RunJournal journal(file.path());
        journal.record("unit-a", {{"score", "1"}});
    }
    {
        // Simulate a crash mid-append: a half-written final line.
        std::ofstream out(file.path(), std::ios::app);
        out << "{\"key\":\"unit-b\",\"score\":\"2";
    }
    fptc::util::RunJournal reopened(file.path());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.discarded_lines(), 1u);
    EXPECT_FALSE(reopened.completed("unit-b"));

    // compact() rewrites the file without the torn line.
    reopened.compact();
    fptc::util::RunJournal compacted(file.path());
    EXPECT_EQ(compacted.size(), 1u);
    EXPECT_EQ(compacted.discarded_lines(), 0u);
}

TEST(Journal, LastRecordWinsOnRerecord)
{
    TempFile file("fptc_test_journal_dup.jsonl");
    {
        fptc::util::RunJournal journal(file.path());
        journal.record("unit", {{"score", "1"}});
        journal.record("unit", {{"score", "2"}});
    }
    fptc::util::RunJournal reopened(file.path());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.find("unit")->at("score"), "2");
}

TEST(Journal, AtomicWriteFileReplacesContent)
{
    TempFile file("fptc_test_atomic.txt");
    fptc::util::atomic_write_file(file.path(), "first");
    fptc::util::atomic_write_file(file.path(), "second");
    std::ifstream in(file.path());
    std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "second");
}

TEST(Journal, FieldDoubleRoundTripsExactly)
{
    const double value = 0.1 + 0.2; // not representable prettily
    const auto text = fptc::util::field_from_double(value);
    std::map<std::string, std::string> fields{{"v", text}};
    EXPECT_EQ(fptc::util::field_double(fields, "v"), value);
    EXPECT_THROW((void)fptc::util::field_double(fields, "missing"), std::runtime_error);
}

TEST(Journal, CampaignJournalReplaysRecordedUnits)
{
    TempFile file("fptc_test_campaign.jsonl");
    ::setenv("FPTC_JOURNAL", file.path().c_str(), 1);
    int executions = 0;
    const auto run = [&] {
        ++executions;
        return std::map<std::string, std::string>{{"score", "9"}};
    };
    {
        fptc::util::CampaignJournal journal("testbench");
        ASSERT_TRUE(journal.enabled());
        EXPECT_EQ(journal.run_or_replay("u1", run).at("score"), "9");
        EXPECT_EQ(journal.run_or_replay("u2", run).at("score"), "9");
        EXPECT_EQ(journal.executed(), 2u);
        EXPECT_EQ(journal.replayed(), 0u);
    }
    {
        // A re-launched campaign replays both units without executing.
        fptc::util::CampaignJournal journal("testbench");
        EXPECT_EQ(journal.run_or_replay("u1", run).at("score"), "9");
        EXPECT_EQ(journal.run_or_replay("u2", run).at("score"), "9");
        EXPECT_EQ(journal.replayed(), 2u);
        EXPECT_EQ(journal.executed(), 0u);
        EXPECT_NE(journal.summary().find("2 replayed"), std::string::npos);
    }
    EXPECT_EQ(executions, 2);
    {
        // Keys are namespaced per campaign: another bench re-executes.
        fptc::util::CampaignJournal journal("otherbench");
        (void)journal.run_or_replay("u1", run);
        EXPECT_EQ(journal.executed(), 1u);
    }
    ::unsetenv("FPTC_JOURNAL");
}

TEST(Journal, CampaignJournalDisabledWithoutEnv)
{
    ::unsetenv("FPTC_JOURNAL");
    fptc::util::CampaignJournal journal("testbench");
    EXPECT_FALSE(journal.enabled());
    int executions = 0;
    const auto run = [&] {
        ++executions;
        return std::map<std::string, std::string>{};
    };
    (void)journal.run_or_replay("u1", run);
    (void)journal.run_or_replay("u1", run);
    EXPECT_EQ(executions, 2); // every call executes without a journal
    EXPECT_TRUE(journal.summary().empty());
}

TEST(Fault, InertByDefault)
{
    fptc::util::FaultInjector injector;
    EXPECT_FALSE(injector.enabled());
    EXPECT_FALSE(injector.inject_nan_loss());
    EXPECT_FALSE(injector.inject_truncated_write());
    EXPECT_FALSE(injector.inject_csv_corruption());
    EXPECT_EQ(injector.counters().total(), 0u);
}

TEST(Fault, NanLossFiresEveryKthStep)
{
    fptc::util::FaultPlan plan;
    plan.nan_loss_every = 3;
    fptc::util::FaultInjector injector(plan);
    EXPECT_TRUE(injector.enabled());
    int fired = 0;
    for (int i = 0; i < 12; ++i) {
        fired += injector.inject_nan_loss() ? 1 : 0;
    }
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(injector.counters().nan_losses, 4u);
}

TEST(Fault, TruncatedWritesAreFirstN)
{
    fptc::util::FaultPlan plan;
    plan.truncate_writes = 2;
    fptc::util::FaultInjector injector(plan);
    EXPECT_TRUE(injector.inject_truncated_write());
    EXPECT_TRUE(injector.inject_truncated_write());
    EXPECT_FALSE(injector.inject_truncated_write());
    EXPECT_EQ(injector.counters().truncated_writes, 2u);
}

TEST(Fault, CsvCorruptionIsDeterministicInSeed)
{
    fptc::util::FaultPlan plan;
    plan.seed = 5;
    plan.csv_row_percent = 30.0;
    fptc::util::FaultInjector a(plan);
    fptc::util::FaultInjector b(plan);
    int fired = 0;
    for (int i = 0; i < 200; ++i) {
        const bool hit = a.inject_csv_corruption();
        EXPECT_EQ(hit, b.inject_csv_corruption());
        fired += hit ? 1 : 0;
    }
    EXPECT_GT(fired, 30); // ~60 expected
    EXPECT_LT(fired, 100);
    EXPECT_EQ(a.summary(), b.summary());
}

TEST(Env, ResolveScaleDefaults)
{
    ::unsetenv("FPTC_FULL");
    ::unsetenv("FPTC_SPLITS");
    ::unsetenv("FPTC_SEEDS");
    ::unsetenv("FPTC_EPOCHS");
    const auto scale = fptc::util::resolve_scale(5, 3, 2, 1);
    EXPECT_FALSE(scale.full);
    EXPECT_EQ(scale.splits, 2);
    EXPECT_EQ(scale.seeds, 1);
    EXPECT_LE(scale.max_epochs, 12);
}

TEST(Env, ResolveScaleOverrides)
{
    ::setenv("FPTC_FULL", "1", 1);
    ::setenv("FPTC_SPLITS", "7", 1);
    const auto scale = fptc::util::resolve_scale(5, 3, 2, 1, 40);
    EXPECT_TRUE(scale.full);
    EXPECT_EQ(scale.splits, 7);
    EXPECT_EQ(scale.seeds, 3); // paper seeds under FPTC_FULL
    EXPECT_EQ(scale.max_epochs, 40);
    ::unsetenv("FPTC_FULL");
    ::unsetenv("FPTC_SPLITS");
}

/// setenv/getenv RAII so a throwing assertion cannot leak the knob into
/// later tests.
class KnobGuard {
public:
    KnobGuard(const char* name, const char* value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~KnobGuard() { ::unsetenv(name_); }

private:
    const char* name_;
};

TEST(Env, IntKnobParsesStrictly)
{
    {
        KnobGuard knob("FPTC_TEST_KNOB", "42");
        EXPECT_EQ(fptc::util::env_int("FPTC_TEST_KNOB").value_or(-1), 42);
    }
    EXPECT_FALSE(fptc::util::env_int("FPTC_TEST_KNOB").has_value());  // unset
    {
        KnobGuard knob("FPTC_TEST_KNOB", "");
        EXPECT_FALSE(fptc::util::env_int("FPTC_TEST_KNOB").has_value());  // empty
    }
    {
        KnobGuard knob("FPTC_TEST_KNOB", "0");
        EXPECT_EQ(fptc::util::env_int("FPTC_TEST_KNOB").value_or(-1), 0);
    }
}

TEST(Env, IntKnobRejectsGarbageWithNameAndValue)
{
    KnobGuard knob("FPTC_TEST_KNOB", "fast");
    try {
        (void)fptc::util::env_int("FPTC_TEST_KNOB");
        FAIL() << "non-numeric knob must throw";
    } catch (const fptc::util::EnvError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("FPTC_TEST_KNOB"), std::string::npos);
        EXPECT_NE(what.find("fast"), std::string::npos);
    }
}

TEST(Env, IntKnobRejectsTrailingGarbage)
{
    KnobGuard knob("FPTC_TEST_KNOB", "12abc");
    EXPECT_THROW((void)fptc::util::env_int("FPTC_TEST_KNOB"), fptc::util::EnvError);
}

TEST(Env, IntKnobRejectsNegative)
{
    KnobGuard knob("FPTC_TEST_KNOB", "-3");
    EXPECT_THROW((void)fptc::util::env_int("FPTC_TEST_KNOB"), fptc::util::EnvError);
}

TEST(Env, IntKnobRejectsOverflow)
{
    KnobGuard knob("FPTC_TEST_KNOB", "99999999999999999999");
    EXPECT_THROW((void)fptc::util::env_int("FPTC_TEST_KNOB"), fptc::util::EnvError);
}

TEST(Env, DoubleKnobParsesStrictly)
{
    KnobGuard knob("FPTC_TEST_KNOB", "0.25");
    EXPECT_DOUBLE_EQ(fptc::util::env_double("FPTC_TEST_KNOB").value_or(-1.0), 0.25);
}

TEST(Env, DoubleKnobRejectsGarbage)
{
    KnobGuard knob("FPTC_TEST_KNOB", "half");
    EXPECT_THROW((void)fptc::util::env_double("FPTC_TEST_KNOB"), fptc::util::EnvError);
}

TEST(Env, DoubleKnobRejectsTrailingGarbage)
{
    KnobGuard knob("FPTC_TEST_KNOB", "1.5x");
    EXPECT_THROW((void)fptc::util::env_double("FPTC_TEST_KNOB"), fptc::util::EnvError);
}

TEST(Env, DoubleKnobRejectsNegative)
{
    KnobGuard knob("FPTC_TEST_KNOB", "-0.1");
    EXPECT_THROW((void)fptc::util::env_double("FPTC_TEST_KNOB"), fptc::util::EnvError);
}

TEST(Env, DoubleKnobRejectsOverflowAndNonFinite)
{
    {
        KnobGuard knob("FPTC_TEST_KNOB", "1e999");
        EXPECT_THROW((void)fptc::util::env_double("FPTC_TEST_KNOB"), fptc::util::EnvError);
    }
    {
        KnobGuard knob("FPTC_TEST_KNOB", "inf");
        EXPECT_THROW((void)fptc::util::env_double("FPTC_TEST_KNOB"), fptc::util::EnvError);
    }
    {
        KnobGuard knob("FPTC_TEST_KNOB", "nan");
        EXPECT_THROW((void)fptc::util::env_double("FPTC_TEST_KNOB"), fptc::util::EnvError);
    }
}

} // namespace
