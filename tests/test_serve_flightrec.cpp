// Flight-recorder unit tests: ring wrap-around accounting, disabled-gate
// inertness, exemplar bucketing, the postmortem codec's refusal ladder
// (truncation, bit flips, trailing garbage), concurrent producers against
// snapshot readers (tsan-checked), ring-file round trips + supervisor-style
// sealing, the stage/latency histogram reconciliation invariant, and the
// exact fptc_serve_* Prometheus instrument set documented in README.md.
//
// Death tests (postmortems surviving std::_Exit) live in the FlightRecCrash
// suite — intentionally NOT named to match the sanitizer harness's 'Serve'
// tsan regex, like the other EXPECT_EXIT suites.

#include "fptc/serve/backend.hpp"
#include "fptc/serve/flightrec.hpp"
#include "fptc/serve/service.hpp"
#include "fptc/serve/stream.hpp"
#include "fptc/util/telemetry.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace fptc;

namespace {

class TempDir {
public:
    explicit TempDir(const std::string& name)
        : path_(std::string(::testing::TempDir()) + name + "." + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    [[nodiscard]] std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

serve::Postmortem sample_postmortem()
{
    serve::Postmortem pm;
    pm.reason = static_cast<std::uint32_t>(serve::PostmortemReason::manual);
    pm.generation = 3;
    pm.detail = "unit test";
    serve::Postmortem::RingDump ring;
    ring.ring = static_cast<std::uint32_t>(serve::FrecRing::assembler);
    ring.recorded = 7;
    ring.dropped = 2;
    for (std::uint64_t i = 0; i < 5; ++i) {
        ring.events.push_back(serve::FlightEvent{
            .ts_ns = 100 * i,
            .flow_id = i,
            .arg = i * i,
            .kind = static_cast<std::uint32_t>(serve::FrecKind::admit),
            .detail = 0,
        });
    }
    ring.events.push_back(serve::FlightEvent{
        .ts_ns = 600,
        .flow_id = 0,
        .arg = 4242,  // watermark
        .kind = static_cast<std::uint32_t>(serve::FrecKind::snapshot_marker),
        .detail = 0,
    });
    pm.rings.push_back(std::move(ring));
    pm.exemplars.push_back({static_cast<std::uint32_t>(serve::FrecStage::backend_compute),
                            20, 77});
    pm.metrics_text = "# TYPE fptc_serve_events_total counter\nfptc_serve_events_total 1\n";
    return pm;
}

} // namespace

TEST(ServeFlightRec, RingWrapsOverwritingOldest)
{
    serve::FlightRecorder recorder({.ring_path = "", .ring_capacity = 64});
    for (std::uint64_t i = 0; i < 200; ++i) {
        recorder.note(serve::FrecRing::driver, serve::FrecKind::ingest, i, i, 0);
    }
    EXPECT_EQ(recorder.recorded(serve::FrecRing::driver), 200u);
    EXPECT_EQ(recorder.dropped(serve::FrecRing::driver), 136u);
    const auto window = recorder.ring_snapshot(serve::FrecRing::driver);
    ASSERT_EQ(window.size(), 64u);
    // The surviving window is the newest 64 events, oldest first.
    for (std::size_t i = 0; i < window.size(); ++i) {
        EXPECT_EQ(window[i].flow_id, 136 + i);
        EXPECT_EQ(window[i].arg, 136 + i);
    }
    // The untouched rings stay empty; totals see only the driver ring.
    EXPECT_EQ(recorder.recorded(serve::FrecRing::classifier), 0u);
    EXPECT_EQ(recorder.recorded_total(), 200u);
    EXPECT_EQ(recorder.dropped_total(), 136u);
}

TEST(ServeFlightRec, DisabledGateIsInert)
{
    // No recorder installed: the free-function hot path must be a no-op.
    serve::frec_note(serve::FrecRing::driver, serve::FrecKind::ingest, 1, 2, 3);
    serve::frec_exemplar(serve::FrecStage::assembly, 99, 5);
    serve::FlightRecorder recorder({.ring_path = "", .ring_capacity = 64});
    EXPECT_EQ(recorder.recorded_total(), 0u);
    // Armed now: the same call lands.
    serve::frec_note(serve::FrecRing::driver, serve::FrecKind::ingest, 1, 2, 3);
    EXPECT_EQ(recorder.recorded_total(), 1u);
}

TEST(ServeFlightRec, ExemplarRemembersLastFlowPerBucket)
{
    serve::FlightRecorder recorder({.ring_path = "", .ring_capacity = 64});
    // 1000 ns and 1023 ns share bit width 10; 5000 ns lands in bucket 13.
    recorder.observe_exemplar(serve::FrecStage::backend_compute, 1000, 11);
    recorder.observe_exemplar(serve::FrecStage::backend_compute, 1023, 22);
    recorder.observe_exemplar(serve::FrecStage::backend_compute, 5000, 33);
    EXPECT_EQ(serve::frec_bucket(0), 0u);
    EXPECT_EQ(serve::frec_bucket(1), 1u);
    EXPECT_EQ(serve::frec_bucket(1000), 10u);
    EXPECT_EQ(recorder.exemplar(serve::FrecStage::backend_compute,
                                serve::frec_bucket(1000)),
              22u);
    EXPECT_EQ(recorder.exemplar(serve::FrecStage::backend_compute,
                                serve::frec_bucket(5000)),
              33u);
    // A different stage's table is independent.
    EXPECT_EQ(recorder.exemplar(serve::FrecStage::assembly, serve::frec_bucket(1000)), 0u);
}

TEST(ServeFlightRec, PostmortemCodecRoundTrips)
{
    const serve::Postmortem pm = sample_postmortem();
    const std::string bytes = serve::encode_postmortem(pm);
    const auto decoded = serve::decode_postmortem(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->reason, pm.reason);
    EXPECT_EQ(decoded->generation, pm.generation);
    EXPECT_EQ(decoded->detail, pm.detail);
    ASSERT_EQ(decoded->rings.size(), 1u);
    EXPECT_EQ(decoded->rings[0].recorded, 7u);
    EXPECT_EQ(decoded->rings[0].dropped, 2u);
    ASSERT_EQ(decoded->rings[0].events.size(), 6u);
    EXPECT_EQ(decoded->rings[0].events[2].arg, 4u);
    ASSERT_EQ(decoded->exemplars.size(), 1u);
    EXPECT_EQ(decoded->exemplars[0].flow_id, 77u);
    EXPECT_EQ(decoded->metrics_text, pm.metrics_text);
    ASSERT_TRUE(decoded->last_watermark().has_value());
    EXPECT_EQ(*decoded->last_watermark(), 4242u);
    EXPECT_EQ(decoded->event_count(), 6u);
}

TEST(ServeFlightRec, PostmortemDecodeRefusesMalformations)
{
    const std::string bytes = serve::encode_postmortem(sample_postmortem());
    // Truncation at every eighth prefix length.
    for (std::size_t len = 0; len < bytes.size(); len += 8) {
        EXPECT_FALSE(serve::decode_postmortem(bytes.substr(0, len)).has_value())
            << "accepted truncation at " << len;
    }
    // A flipped payload byte must fail the CRC.
    std::string flipped = bytes;
    flipped[bytes.size() / 2] = static_cast<char>(flipped[bytes.size() / 2] ^ 0x40);
    EXPECT_FALSE(serve::decode_postmortem(flipped).has_value());
    // Bad magic.
    std::string magic = bytes;
    magic[0] = 'X';
    EXPECT_FALSE(serve::decode_postmortem(magic).has_value());
    // Appended garbage changes the payload size the CRC covers.
    EXPECT_FALSE(serve::decode_postmortem(bytes + "zz").has_value());
}

TEST(ServeFlightRec, SaveLoadRoundTripsThroughDisk)
{
    const TempDir dir("fptc_frec_saveload");
    const std::string path = dir.file("pm.bin");
    ASSERT_TRUE(serve::save_postmortem(path, sample_postmortem()));
    const auto loaded = serve::load_postmortem(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->event_count(), 6u);
    EXPECT_FALSE(serve::load_postmortem(dir.file("missing.bin")).has_value());
}

TEST(ServeFlightRec, ConcurrentProducersAndSnapshotReadersAreClean)
{
    // One producer per ring (the real topology) plus a reader hammering
    // snapshots and exemplars — the atomic_ref discipline must keep this
    // race-free under tsan.
    serve::FlightRecorder recorder({.ring_path = "", .ring_capacity = 256});
    constexpr std::uint64_t kPerThread = 20000;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        std::uint64_t sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            for (std::size_t r = 0; r < serve::kFrecRingCount; ++r) {
                sink += recorder.ring_snapshot(static_cast<serve::FrecRing>(r)).size();
            }
            sink += recorder.exemplar(serve::FrecStage::backend_compute, 20);
        }
        EXPECT_GE(sink, 0u);
    });
    std::vector<std::thread> producers;
    for (std::size_t r = 0; r < serve::kFrecRingCount; ++r) {
        producers.emplace_back([&recorder, r] {
            const auto ring = static_cast<serve::FrecRing>(r);
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                recorder.note(ring, serve::FrecKind::ingest, i, i, 0);
                if ((i & 0xFF) == 0) {
                    recorder.observe_exemplar(serve::FrecStage::backend_compute, i, i);
                }
            }
        });
    }
    for (auto& t : producers) {
        t.join();
    }
    stop.store(true);
    reader.join();
    EXPECT_EQ(recorder.recorded_total(), kPerThread * serve::kFrecRingCount);
    for (std::size_t r = 0; r < serve::kFrecRingCount; ++r) {
        EXPECT_EQ(recorder.ring_snapshot(static_cast<serve::FrecRing>(r)).size(), 256u);
    }
}

TEST(ServeFlightRec, RingFileRoundTripsAndSeals)
{
    const TempDir dir("fptc_frec_ring");
    const std::string ring_path = dir.file("rings.bin");
    {
        serve::FlightRecorder recorder(
            {.ring_path = ring_path, .ring_capacity = 128, .generation = 2});
        ASSERT_TRUE(recorder.file_backed());
        for (std::uint64_t i = 0; i < 10; ++i) {
            recorder.note(serve::FrecRing::assembler, serve::FrecKind::admit, i, i, 0);
        }
        recorder.note(serve::FrecRing::assembler, serve::FrecKind::snapshot_marker, 0, 500, 0);
        recorder.observe_exemplar(serve::FrecStage::ingest_wait, 900, 42);
        // Recorder goes out of scope *without* remove_backing — the ring
        // file stays, as after a kill.
    }
    const auto skeleton = serve::FlightRecorder::read_ring_file(ring_path);
    ASSERT_TRUE(skeleton.has_value());
    EXPECT_EQ(skeleton->generation, 2u);
    EXPECT_EQ(skeleton->event_count(), 11u);
    ASSERT_TRUE(skeleton->last_watermark().has_value());
    EXPECT_EQ(*skeleton->last_watermark(), 500u);

    const std::string pm_path = dir.file("pm.bin");
    ASSERT_TRUE(serve::FlightRecorder::seal_from_ring_file(
        ring_path, pm_path, serve::PostmortemReason::sigkill_reap, 4, "signal 9"));
    const auto sealed = serve::load_postmortem(pm_path);
    ASSERT_TRUE(sealed.has_value());
    EXPECT_EQ(sealed->reason, static_cast<std::uint32_t>(serve::PostmortemReason::sigkill_reap));
    EXPECT_EQ(sealed->generation, 4u);  // supervisor stamp wins over the file's
    EXPECT_EQ(sealed->detail, "signal 9");
    EXPECT_EQ(sealed->event_count(), 11u);
    // An exemplar recorded pre-"crash" survives the seal.
    bool found = false;
    for (const auto& ex : sealed->exemplars) {
        if (ex.stage == static_cast<std::uint32_t>(serve::FrecStage::ingest_wait) &&
            ex.flow_id == 42) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    // Garbage is refused, not crashed on.
    EXPECT_FALSE(serve::FlightRecorder::read_ring_file(dir.file("absent.bin")).has_value());
}

TEST(ServeFlightRec, RemoveBackingUnlinksRingFile)
{
    const TempDir dir("fptc_frec_unlink");
    const std::string ring_path = dir.file("rings.bin");
    serve::FlightRecorder recorder({.ring_path = ring_path, .ring_capacity = 64});
    ASSERT_TRUE(std::filesystem::exists(ring_path));
    recorder.remove_backing();
    EXPECT_FALSE(std::filesystem::exists(ring_path));
}

namespace {

serve::ServeReport run_quick_service(bool with_recorder)
{
    serve::ServeConfig config;
    config.batch_size = 8;
    config.flowpic_dim = 16;
    config.reduced_dim = 16;
    config.deadline_ms = 2000.0;
    config.flightrec = with_recorder;
    auto backends = serve::make_backends(config.flowpic_dim, config.reduced_dim,
                                         config.num_classes, 42);
    serve::InterleavedStream stream({.flows = 40, .seed = 11});
    serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                       *backends.fallback);
    return service.run(stream);
}

} // namespace

TEST(ServeFlightRec, StageHistogramsReconcileWithClassifyLatency)
{
    util::metrics().reset_values_for_tests();
    const auto report = run_quick_service(true);
    EXPECT_EQ(report.flows_classified, 40u);
    EXPECT_GT(report.frec_events, 0u);
    const util::Histogram& latency =
        util::metrics().histogram("fptc_serve_classify_latency_ns");
    const util::Histogram& backend = util::metrics().histogram(
        serve::frec_stage_metric_name(serve::FrecStage::backend_compute));
    // backend_compute observes the identical value as the end-to-end
    // histogram at every batch: exact reconciliation, not approximate.
    EXPECT_EQ(backend.count(), latency.count());
    EXPECT_EQ(backend.sum(), latency.sum());
    EXPECT_EQ(latency.count(), report.batches);
    // The queue-wait stages saw every classified flow at least once.
    const util::Histogram& ready_wait = util::metrics().histogram(
        serve::frec_stage_metric_name(serve::FrecStage::ready_wait));
    const util::Histogram& assembly = util::metrics().histogram(
        serve::frec_stage_metric_name(serve::FrecStage::assembly));
    const util::Histogram& ingest_wait = util::metrics().histogram(
        serve::frec_stage_metric_name(serve::FrecStage::ingest_wait));
    EXPECT_EQ(ready_wait.count(), 40u);
    EXPECT_EQ(assembly.count(), 40u);
    EXPECT_EQ(ingest_wait.count(), report.events_total);
}

TEST(ServeFlightRec, RecorderOffMeansZeroFrecActivity)
{
    util::metrics().reset_values_for_tests();
    const auto report = run_quick_service(false);
    EXPECT_EQ(report.frec_events, 0u);
    EXPECT_EQ(report.frec_dropped, 0u);
    EXPECT_EQ(report.postmortems_written, 0u);
    // Stage attribution is unconditional — off-recorder runs still get it.
    const util::Histogram& backend = util::metrics().histogram(
        serve::frec_stage_metric_name(serve::FrecStage::backend_compute));
    EXPECT_EQ(backend.count(), report.batches);
}

TEST(ServeFlightRec, PrometheusExportsExactlyTheDocumentedServeSet)
{
    util::metrics().reset_values_for_tests();
    (void)run_quick_service(true);
    // The README metrics table, verbatim.  A new fptc_serve_* instrument
    // must be added in all three places: ServeMetrics, this set, README.md.
    const std::set<std::string> documented = {
        "fptc_serve_events_total counter",
        "fptc_serve_events_quarantined_total counter",
        "fptc_serve_events_dropped_queue_total counter",
        "fptc_serve_events_dropped_mem_total counter",
        "fptc_serve_events_dropped_slo_total counter",
        "fptc_serve_flows_ingested_total counter",
        "fptc_serve_flows_classified_total counter",
        "fptc_serve_shed_mem_budget_total counter",
        "fptc_serve_shed_queue_full_total counter",
        "fptc_serve_shed_deadline_total counter",
        "fptc_serve_shed_breaker_total counter",
        "fptc_serve_shed_slo_total counter",
        "fptc_serve_shed_restart_loss_total counter",
        "fptc_serve_slo_violations_total counter",
        "fptc_serve_snapshots_total counter",
        "fptc_serve_breaker_trips_total counter",
        "fptc_serve_breaker_recoveries_total counter",
        "fptc_serve_flows_unknown_total counter",
        "fptc_serve_quarantined_backwards_ts_total counter",
        "fptc_serve_drift_alarms_total counter",
        "fptc_serve_reloads_total counter",
        "fptc_serve_reload_rollbacks_total counter",
        "fptc_serve_postmortems_total counter",
        "fptc_serve_flows_active gauge",
        "fptc_serve_breaker_state gauge",
        "fptc_serve_generation gauge",
        "fptc_serve_model_generation gauge",
        "fptc_serve_flightrec_events gauge",
        "fptc_serve_flightrec_dropped gauge",
        "fptc_serve_classify_latency_ns histogram",
        "fptc_serve_stage_ingest_wait_ns histogram",
        "fptc_serve_stage_assembly_ns histogram",
        "fptc_serve_stage_ready_wait_ns histogram",
        "fptc_serve_stage_backend_compute_ns histogram",
    };
    std::set<std::string> exported;
    std::istringstream text(util::metrics().prometheus_text());
    std::string line;
    while (std::getline(text, line)) {
        if (line.rfind("# TYPE fptc_serve_", 0) == 0) {
            exported.insert(line.substr(7));  // "name type"
        }
    }
    EXPECT_EQ(exported, documented);
}

// ---------------------------------------------------------------------------
// Death tests: a postmortem must be complete and CRC-valid even when the
// process leaves via std::_Exit mid-stream (no destructors, no flushes).
// ---------------------------------------------------------------------------

using ::testing::ExitedWithCode;

TEST(FlightRecCrash, DumpThenExitLeavesValidPostmortem)
{
    const TempDir dir("fptc_frec_death_dump");
    const std::string pm_path = dir.file("pm.bin");
    EXPECT_EXIT(
        {
            // Under ctest each TEST runs alone in its own process, so the
            // registry starts empty; touch one instrument so the dumped
            // metrics snapshot has at least one "# TYPE" line to assert on.
            util::metrics().counter("fptc_test_frec_death_total").add(1);
            serve::FlightRecorder recorder({.ring_path = "", .ring_capacity = 64});
            for (std::uint64_t i = 0; i < 100; ++i) {
                recorder.note(serve::FrecRing::classifier, serve::FrecKind::classify_end, i,
                              i * 10, 1);
            }
            recorder.dump(pm_path, serve::PostmortemReason::watchdog_stall, "test stall");
            std::_Exit(88);
        },
        ExitedWithCode(88), "");
    const auto pm = serve::load_postmortem(pm_path);
    ASSERT_TRUE(pm.has_value());
    EXPECT_EQ(pm->reason, static_cast<std::uint32_t>(serve::PostmortemReason::watchdog_stall));
    EXPECT_EQ(pm->detail, "test stall");
    EXPECT_EQ(pm->event_count(), 64u);  // the surviving window of 100 notes
    // An in-process dump attaches the live metrics snapshot.
    EXPECT_NE(pm->metrics_text.find("# TYPE"), std::string::npos);
    for (const auto& ring : pm->rings) {
        if (ring.ring == static_cast<std::uint32_t>(serve::FrecRing::classifier)) {
            EXPECT_EQ(ring.recorded, 100u);
            EXPECT_EQ(ring.dropped, 36u);
        }
    }
}

TEST(FlightRecCrash, UncleanExitLeavesSealableRingFile)
{
    const TempDir dir("fptc_frec_death_seal");
    const std::string ring_path = dir.file("rings.bin");
    EXPECT_EXIT(
        {
            serve::FlightRecorder recorder(
                {.ring_path = ring_path, .ring_capacity = 64, .generation = 1});
            if (!recorder.file_backed()) {
                std::_Exit(3);  // mmap failed: fail the exit-code match below
            }
            for (std::uint64_t i = 0; i < 30; ++i) {
                recorder.note(serve::FrecRing::driver, serve::FrecKind::ingest, i, i, 0);
            }
            recorder.note(serve::FrecRing::assembler, serve::FrecKind::snapshot_marker, 0,
                          1234, 0);
            // No dump, no destructor: the process vanishes as under SIGKILL
            // (modulo the kernel flushing the MAP_SHARED pages either way).
            std::_Exit(9);
        },
        ExitedWithCode(9), "");
    const std::string pm_path = dir.file("pm.bin");
    ASSERT_TRUE(serve::FlightRecorder::seal_from_ring_file(
        ring_path, pm_path, serve::PostmortemReason::sigkill_reap, 1, "signal 9"));
    const auto pm = serve::load_postmortem(pm_path);
    ASSERT_TRUE(pm.has_value());
    EXPECT_EQ(pm->event_count(), 31u);
    ASSERT_TRUE(pm->last_watermark().has_value());
    EXPECT_EQ(*pm->last_watermark(), 1234u);
}
