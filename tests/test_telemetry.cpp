// Tests of the telemetry module: log2-histogram bucketing and quantiles,
// registry instrument identity and text expositions, span round-trips
// through the per-thread trace rings, ring wrap-around accounting, the
// balanced-B/E guarantee of the Chrome trace export, and strict EnvError
// validation of the FPTC_TRACE / FPTC_METRICS / FPTC_TRACE_EVENTS knobs.
#include "fptc/util/env.hpp"
#include "fptc/util/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace fptc;

/// Rewind the process-wide telemetry state when a test scope ends so the
/// lazily-cached enablement flags never leak into the next test.
struct TelemetryReset {
    TelemetryReset() { util::telemetry_reset_for_tests(); }
    ~TelemetryReset() { util::telemetry_reset_for_tests(); }
};

/// Scoped environment variable; restores the previous value on exit.
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* previous = std::getenv(name);
        had_previous_ = previous != nullptr;
        if (had_previous_) {
            previous_ = previous;
        }
        ::setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (had_previous_) {
            ::setenv(name_.c_str(), previous_.c_str(), 1);
        } else {
            ::unsetenv(name_.c_str());
        }
    }

private:
    std::string name_;
    std::string previous_;
    bool had_previous_ = false;
};

/// Enable tracing without touching the environment; the sink path is never
/// written because the tests reset telemetry before any flush runs.
util::TelemetryConfig tracing_config(std::size_t ring_capacity = 4096)
{
    util::TelemetryConfig config;
    config.trace_path = std::string(::testing::TempDir()) + "fptc_test_trace.json";
    config.ring_capacity = ring_capacity;
    return config;
}

TEST(Histogram, BucketsByBitWidth)
{
    util::Histogram histogram;
    histogram.observe(0);     // bucket 0
    histogram.observe(1);     // bucket 1: [1, 1]
    histogram.observe(2);     // bucket 2: [2, 3]
    histogram.observe(3);     // bucket 2
    histogram.observe(1024);  // bucket 11: [1024, 2047]
    EXPECT_EQ(histogram.count(), 5u);
    EXPECT_EQ(histogram.sum(), 1030u);
    EXPECT_EQ(histogram.bucket(0), 1u);
    EXPECT_EQ(histogram.bucket(1), 1u);
    EXPECT_EQ(histogram.bucket(2), 2u);
    EXPECT_EQ(histogram.bucket(11), 1u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 1030.0 / 5.0);
}

TEST(Histogram, BucketUpperBounds)
{
    EXPECT_EQ(util::Histogram::bucket_upper_bound(0), 0u);
    EXPECT_EQ(util::Histogram::bucket_upper_bound(1), 1u);
    EXPECT_EQ(util::Histogram::bucket_upper_bound(2), 3u);
    EXPECT_EQ(util::Histogram::bucket_upper_bound(11), 2047u);
}

TEST(Histogram, QuantilesLandInTheRightBucket)
{
    util::Histogram histogram;
    EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);  // empty
    for (int i = 0; i < 90; ++i) {
        histogram.observe(100);  // bucket 7: [64, 127]
    }
    for (int i = 0; i < 10; ++i) {
        histogram.observe(100000);  // bucket 17: [65536, 131071]
    }
    const double p50 = histogram.quantile(0.5);
    EXPECT_GE(p50, 64.0);
    EXPECT_LE(p50, 127.0);
    const double p95 = histogram.quantile(0.95);
    EXPECT_GE(p95, 65536.0);
    EXPECT_LE(p95, 131071.0);
    histogram.reset();
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_DOUBLE_EQ(histogram.quantile(0.95), 0.0);
}

TEST(Metrics, CounterAndGauge)
{
    util::Counter counter;
    counter.add();
    counter.add(4);
    EXPECT_EQ(counter.value(), 5u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);

    util::Gauge gauge;
    gauge.set(7);
    gauge.set_max(3);  // raise-only: lower value is ignored
    EXPECT_EQ(gauge.value(), 7);
    gauge.set_max(11);
    EXPECT_EQ(gauge.value(), 11);
}

TEST(Metrics, RegistryReturnsStableReferences)
{
    auto& registry = util::metrics();
    auto& counter = registry.counter("fptc_test_stable_total");
    counter.reset();
    auto& again = registry.counter("fptc_test_stable_total");
    EXPECT_EQ(&counter, &again);
    counter.add(3);
    EXPECT_EQ(again.value(), 3u);
    counter.reset();
}

TEST(Metrics, PrometheusTextExposition)
{
    auto& registry = util::metrics();
    registry.counter("fptc_test_expo_total").reset();
    registry.counter("fptc_test_expo_total").add(2);
    registry.gauge("fptc_test_expo_bytes").set(42);
    registry.histogram("fptc_test_expo_ns").reset();
    registry.histogram("fptc_test_expo_ns").observe(5);

    const std::string text = registry.prometheus_text();
    EXPECT_NE(text.find("# TYPE fptc_test_expo_total counter"), std::string::npos);
    EXPECT_NE(text.find("fptc_test_expo_total 2"), std::string::npos);
    EXPECT_NE(text.find("# TYPE fptc_test_expo_bytes gauge"), std::string::npos);
    EXPECT_NE(text.find("fptc_test_expo_bytes 42"), std::string::npos);
    EXPECT_NE(text.find("# TYPE fptc_test_expo_ns histogram"), std::string::npos);
    EXPECT_NE(text.find("fptc_test_expo_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
    EXPECT_NE(text.find("fptc_test_expo_ns_count 1"), std::string::npos);

    const std::string json = registry.json_text();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"fptc_test_expo_total\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);

    const auto names = registry.histogram_names("fptc_test_expo");
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "fptc_test_expo_ns");
}

TEST(Tracing, SpanRoundTripThroughTheRing)
{
    TelemetryReset reset;
    util::telemetry_configure_for_tests(tracing_config());
    ASSERT_TRUE(util::trace_enabled());

    {
        FPTC_TRACE_SPAN("outer", {{"campaign", "exec-test"}});
        FPTC_TRACE_SPAN("inner");
    }

    const auto events = util::trace_snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_NE(std::string(events[0].args).find("\"campaign\": \"exec-test\""),
              std::string::npos);
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_EQ(events[1].phase, 'B');
    // Destruction order: inner closes before outer.
    EXPECT_STREQ(events[2].name, "inner");
    EXPECT_EQ(events[2].phase, 'E');
    EXPECT_STREQ(events[3].name, "outer");
    EXPECT_EQ(events[3].phase, 'E');
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_EQ(events[i].tid, events[0].tid);
        EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
    }
}

TEST(Tracing, SpansFeedPhaseHistograms)
{
    TelemetryReset reset;
    util::telemetry_configure_for_tests(tracing_config());
    auto& histogram = util::metrics().histogram("fptc_phase_unittest_duration_ns");
    histogram.reset();
    {
        FPTC_TRACE_SPAN("unittest");
    }
    EXPECT_EQ(histogram.count(), 1u);
}

TEST(Tracing, DisabledSpansRecordNothing)
{
    TelemetryReset reset;
    util::telemetry_configure_for_tests(util::TelemetryConfig{});  // all sinks off
    ASSERT_FALSE(util::trace_enabled());
    auto& histogram = util::metrics().histogram("fptc_phase_offtest_duration_ns");
    histogram.reset();
    {
        FPTC_TRACE_SPAN("offtest");
    }
    EXPECT_EQ(util::trace_snapshot().size(), 0u);
    EXPECT_EQ(histogram.count(), 0u);
}

TEST(Tracing, RingWrapKeepsTheMostRecentWindow)
{
    TelemetryReset reset;
    util::telemetry_configure_for_tests(tracing_config(/*ring_capacity=*/64));

    // A fresh thread gets a fresh ring with the configured (small) capacity.
    std::thread producer([] {
        for (int i = 0; i < 200; ++i) {
            FPTC_TRACE_SPAN("wrapped");
        }
    });
    producer.join();

    EXPECT_GT(util::trace_dropped(), 0u);
    const auto events = util::trace_snapshot();
    ASSERT_FALSE(events.empty());
    EXPECT_LE(events.size(), 64u);
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
    }
}

TEST(Tracing, ChromeExportBalancesBeginEndPairs)
{
    TelemetryReset reset;
    util::telemetry_configure_for_tests(tracing_config(/*ring_capacity=*/64));

    // Wrap the ring mid-span so the export sees orphan 'E' events (their 'B'
    // was overwritten) and open 'B' events (still unclosed at snapshot).
    std::thread producer([] {
        FPTC_TRACE_SPAN("enclosing");
        for (int i = 0; i < 100; ++i) {
            FPTC_TRACE_SPAN("filler");
        }
    });
    producer.join();

    const std::string json = util::chrome_trace_json();
    std::size_t begins = 0;
    std::size_t ends = 0;
    for (std::size_t pos = 0; (pos = json.find("\"ph\": \"", pos)) != std::string::npos;
         pos += 8) {
        if (json[pos + 7] == 'B') {
            ++begins;
        } else if (json[pos + 7] == 'E') {
            ++ends;
        }
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"fptc\""), std::string::npos);
}

TEST(Tracing, ProfilerReportListsObservedPhases)
{
    TelemetryReset reset;
    auto config = tracing_config();
    config.profile = true;
    util::telemetry_configure_for_tests(config);
    auto& registry = util::metrics();
    registry.histogram("fptc_phase_reporttest_duration_ns").reset();
    {
        FPTC_TRACE_SPAN("reporttest");
    }
    const std::string report = util::profiler_report();
    EXPECT_NE(report.find("reporttest"), std::string::npos);
    registry.histogram("fptc_phase_reporttest_duration_ns").reset();
}

TEST(EnvValidation, EmptySinkIsRejected)
{
    TelemetryReset reset;
    ScopedEnv trace("FPTC_TRACE", "");
    EXPECT_THROW(util::telemetry_init(), util::EnvError);
}

TEST(EnvValidation, UnwritableSinkIsRejected)
{
    TelemetryReset reset;
    ScopedEnv trace("FPTC_TRACE", "/nonexistent-fptc-dir/trace.json");
    EXPECT_THROW(util::telemetry_init(), util::EnvError);
}

TEST(EnvValidation, EmptyMetricsSinkIsRejected)
{
    TelemetryReset reset;
    ScopedEnv metrics_sink("FPTC_METRICS", "");
    EXPECT_THROW(util::telemetry_init(), util::EnvError);
}

TEST(EnvValidation, TinyRingCapacityIsRejected)
{
    TelemetryReset reset;
    ScopedEnv events("FPTC_TRACE_EVENTS", "10");
    EXPECT_THROW(util::telemetry_init(), util::EnvError);
}

TEST(EnvValidation, ValidKnobsResolve)
{
    TelemetryReset reset;
    const std::string path = std::string(::testing::TempDir()) + "fptc_env_trace.json";
    ScopedEnv trace("FPTC_TRACE", path.c_str());
    ScopedEnv events("FPTC_TRACE_EVENTS", "128");
    const auto& config = util::telemetry_init();
    EXPECT_EQ(config.trace_path, path);
    EXPECT_EQ(config.ring_capacity, 128u);
    EXPECT_TRUE(util::trace_enabled());
    std::remove(path.c_str());
}

} // namespace
