// Unit tests for fptc::flow — packet/flow types, curation filters, feature
// extraction and the paper's three split protocols.
#include "fptc/flow/dataset.hpp"
#include "fptc/flow/features.hpp"
#include "fptc/flow/filters.hpp"
#include "fptc/flow/split.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace {

using namespace fptc::flow;

Flow make_flow(std::size_t label, std::size_t packets, double gap = 0.1, bool background = false)
{
    Flow f;
    f.label = label;
    f.background = background;
    for (std::size_t i = 0; i < packets; ++i) {
        Packet p;
        p.timestamp = gap * static_cast<double>(i);
        p.size = 100 + static_cast<int>(i % 5) * 100;
        p.direction = i % 2 == 0 ? Direction::upstream : Direction::downstream;
        f.packets.push_back(p);
    }
    return f;
}

Dataset make_dataset(const std::vector<std::size_t>& counts, std::size_t packets_each = 20,
                     double gap = 0.1)
{
    Dataset d;
    d.name = "test";
    for (std::size_t c = 0; c < counts.size(); ++c) {
        d.class_names.push_back("class-" + std::to_string(c));
        for (std::size_t i = 0; i < counts[c]; ++i) {
            d.flows.push_back(make_flow(c, packets_each, gap));
        }
    }
    return d;
}

TEST(Flow, DurationAndBytes)
{
    const auto f = make_flow(0, 5, 0.5);
    EXPECT_DOUBLE_EQ(f.duration(), 2.0);
    EXPECT_EQ(f.total_bytes(), 100u + 200 + 300 + 400 + 500);
    EXPECT_DOUBLE_EQ(Flow{}.duration(), 0.0);
}

TEST(Dataset, ClassCountsAndIndices)
{
    const auto d = make_dataset({3, 1, 2});
    const auto counts = d.class_counts();
    EXPECT_EQ(counts, (std::vector<std::size_t>{3, 1, 2}));
    EXPECT_EQ(d.indices_of_class(2).size(), 2u);
    EXPECT_EQ(d.size(), 6u);
}

TEST(Dataset, SummaryMatchesTable2Semantics)
{
    const auto d = make_dataset({10, 2, 6}, 15);
    const auto s = summarize(d);
    EXPECT_EQ(s.classes, 3u);
    EXPECT_EQ(s.flows_all, 18u);
    EXPECT_EQ(s.flows_min, 2u);
    EXPECT_EQ(s.flows_max, 10u);
    EXPECT_DOUBLE_EQ(s.rho, 5.0);
    EXPECT_DOUBLE_EQ(s.mean_packets, 15.0);
}

TEST(Dataset, RenderSummariesContainsRho)
{
    const auto text = render_summaries({make_dataset({4, 2})});
    EXPECT_NE(text.find("rho"), std::string::npos);
    EXPECT_NE(text.find("test"), std::string::npos);
}

TEST(Filters, RemoveAckPackets)
{
    Dataset d = make_dataset({1}, 10);
    d.flows[0].packets[3].is_ack = true;
    d.flows[0].packets[7].is_ack = true;
    d = remove_ack_packets(std::move(d));
    EXPECT_EQ(d.flows[0].packets.size(), 8u);
    for (const auto& p : d.flows[0].packets) {
        EXPECT_FALSE(p.is_ack);
    }
}

TEST(Filters, RemoveBackgroundFlows)
{
    Dataset d = make_dataset({3});
    d.flows[1].background = true;
    d = remove_background_flows(std::move(d));
    EXPECT_EQ(d.flows.size(), 2u);
}

TEST(Filters, MinPacketsIsStrict)
{
    Dataset d;
    d.class_names = {"a"};
    d.flows.push_back(make_flow(0, 10)); // exactly 10: dropped (strictly more required)
    d.flows.push_back(make_flow(0, 11)); // kept
    d = filter_min_packets(std::move(d), 10);
    EXPECT_EQ(d.flows.size(), 1u);
    EXPECT_EQ(d.flows[0].packets.size(), 11u);
}

TEST(Filters, DropSmallClassesRemapsLabels)
{
    Dataset d = make_dataset({5, 1, 4}); // middle class too small
    d = drop_small_classes(std::move(d), 3);
    EXPECT_EQ(d.class_names, (std::vector<std::string>{"class-0", "class-2"}));
    EXPECT_EQ(d.flows.size(), 9u);
    // Former class 2 must be re-indexed to 1.
    std::set<std::size_t> labels;
    for (const auto& f : d.flows) {
        labels.insert(f.label);
    }
    EXPECT_EQ(labels, (std::set<std::size_t>{0, 1}));
}

TEST(Filters, TruncateDuration)
{
    Dataset d = make_dataset({1}, 100, 0.5); // 50 s of packets
    d = truncate_duration(std::move(d), 15.0);
    ASSERT_FALSE(d.flows[0].packets.empty());
    const auto& packets = d.flows[0].packets;
    EXPECT_LE(packets.back().timestamp - packets.front().timestamp, 15.0);
    EXPECT_EQ(packets.size(), 31u); // packets at 0.0 .. 15.0 inclusive
}

TEST(Features, EarlyTimeSeriesLayout)
{
    const auto f = make_flow(0, 12, 0.25);
    const auto features = early_time_series(f);
    ASSERT_EQ(features.size(), kEarlyFeatureSize);
    // First block: sizes / 1500.
    EXPECT_FLOAT_EQ(features[0], 100.0f / 1500.0f);
    // Second block: directions (+1 down / -1 up); packet 0 is upstream.
    EXPECT_FLOAT_EQ(features[kEarlyPackets], -1.0f);
    EXPECT_FLOAT_EQ(features[kEarlyPackets + 1], 1.0f);
    // Third block: inter-arrival times; first entry 0, others 0.25.
    EXPECT_FLOAT_EQ(features[2 * kEarlyPackets], 0.0f);
    EXPECT_FLOAT_EQ(features[2 * kEarlyPackets + 3], 0.25f);
}

TEST(Features, EarlyTimeSeriesZeroPadsShortFlows)
{
    const auto f = make_flow(0, 3);
    const auto features = early_time_series(f);
    for (std::size_t i = 3; i < kEarlyPackets; ++i) {
        EXPECT_FLOAT_EQ(features[i], 0.0f);
        EXPECT_FLOAT_EQ(features[kEarlyPackets + i], 0.0f);
    }
}

TEST(Features, FlowStatisticsSaneRanges)
{
    const auto f = make_flow(0, 50, 0.1);
    const auto stats = flow_statistics(f);
    ASSERT_EQ(stats.size(), kFlowStatCount);
    for (const float v : stats) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 100.0f);
    }
    // Downstream ratio (entry 23) must be ~0.5 for the alternating flow.
    EXPECT_NEAR(stats[22], 0.5f, 0.05f);
}

TEST(Features, FlowStatisticsEmptyFlow)
{
    const auto stats = flow_statistics(Flow{});
    for (const float v : stats) {
        EXPECT_FLOAT_EQ(v, 0.0f);
    }
}

TEST(Features, InterArrivalTimes)
{
    const auto f = make_flow(0, 4, 0.3);
    const auto iats = inter_arrival_times(f);
    ASSERT_EQ(iats.size(), 4u);
    EXPECT_DOUBLE_EQ(iats[0], 0.0);
    EXPECT_NEAR(iats[2], 0.3, 1e-12);
}

TEST(Split, FixedPerClassDrawsExactCounts)
{
    const auto d = make_dataset({120, 150, 130});
    const auto split = fixed_per_class_split(d, 100, 7);
    EXPECT_EQ(split.train.size(), 300u);
    EXPECT_EQ(split.test.size(), d.size() - 300u); // the "leftover" set
    // Per-class counts must be exactly 100.
    std::vector<std::size_t> counts(3, 0);
    for (const auto i : split.train) {
        ++counts[d.flows[i].label];
    }
    EXPECT_EQ(counts, (std::vector<std::size_t>{100, 100, 100}));
    // Train and leftover must be disjoint.
    std::set<std::size_t> train_set(split.train.begin(), split.train.end());
    for (const auto i : split.test) {
        EXPECT_EQ(train_set.count(i), 0u);
    }
}

TEST(Split, FixedPerClassThrowsWhenClassTooSmall)
{
    const auto d = make_dataset({50, 150});
    EXPECT_THROW(fixed_per_class_split(d, 100, 7), std::invalid_argument);
}

TEST(Split, FixedPerClassDeterministicPerSeed)
{
    const auto d = make_dataset({120, 150});
    const auto a = fixed_per_class_split(d, 100, 7);
    const auto b = fixed_per_class_split(d, 100, 7);
    const auto c = fixed_per_class_split(d, 100, 8);
    EXPECT_EQ(a.train, b.train);
    EXPECT_NE(a.train, c.train);
}

TEST(Split, TrainValidationFraction)
{
    std::vector<std::size_t> indices(100);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        indices[i] = i;
    }
    const auto split = train_validation_split(indices, 0.8, 3);
    EXPECT_EQ(split.train.size(), 80u);
    EXPECT_EQ(split.validation.size(), 20u);
    std::set<std::size_t> all(split.train.begin(), split.train.end());
    all.insert(split.validation.begin(), split.validation.end());
    EXPECT_EQ(all.size(), 100u);
}

TEST(Split, StratifiedPreservesPerClassProportions)
{
    const auto d = make_dataset({100, 40});
    const auto split = stratified_split(d, 0.8, 0.1, 5);
    std::vector<std::vector<std::size_t>> counts(3, std::vector<std::size_t>(2, 0));
    for (const auto i : split.train) {
        ++counts[0][d.flows[i].label];
    }
    for (const auto i : split.validation) {
        ++counts[1][d.flows[i].label];
    }
    for (const auto i : split.test) {
        ++counts[2][d.flows[i].label];
    }
    EXPECT_EQ(counts[0][0], 80u);
    EXPECT_EQ(counts[1][0], 10u);
    EXPECT_EQ(counts[2][0], 10u);
    EXPECT_EQ(counts[0][1], 32u);
    EXPECT_EQ(counts[1][1], 4u);
    EXPECT_EQ(counts[2][1], 4u);
}

TEST(Split, StratifiedRejectsBadFractions)
{
    const auto d = make_dataset({10});
    EXPECT_THROW(stratified_split(d, 0.9, 0.2, 1), std::invalid_argument);
}

TEST(Split, SubsetMaterializesSelection)
{
    const auto d = make_dataset({3, 3});
    const auto s = subset(d, {0, 4});
    EXPECT_EQ(s.flows.size(), 2u);
    EXPECT_EQ(s.flows[0].label, 0u);
    EXPECT_EQ(s.flows[1].label, 1u);
    EXPECT_EQ(s.class_names, d.class_names);
}

} // namespace
