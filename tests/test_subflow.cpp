// Unit tests for the Rezaei & Liu subflow-sampling reproduction (Table 9).
#include "fptc/subflow/subflow.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace {

using namespace fptc;
using namespace fptc::subflow;

flow::Flow long_flow(std::size_t packets = 200)
{
    flow::Flow f;
    for (std::size_t i = 0; i < packets; ++i) {
        flow::Packet p;
        p.timestamp = 0.05 * static_cast<double>(i);
        p.size = 100 + static_cast<int>(i % 10) * 50;
        p.direction = i % 2 == 0 ? flow::Direction::upstream : flow::Direction::downstream;
        f.packets.push_back(p);
    }
    return f;
}

TEST(SubflowSampling, FeatureVectorSize)
{
    SubflowConfig config;
    config.subflow_length = 20;
    EXPECT_EQ(subflow_feature_size(config), 60u);
    util::Rng rng(1);
    const auto features = sample_subflow(long_flow(), SamplingMethod::random, config, rng);
    EXPECT_EQ(features.size(), 60u);
}

TEST(SubflowSampling, IncrementalIsConsecutive)
{
    // A consecutive window of the uniform-gap flow has identical
    // inter-arrival entries (0.05 / 15 normalized).
    SubflowConfig config;
    util::Rng rng(2);
    const auto features = sample_subflow(long_flow(), SamplingMethod::incremental, config, rng);
    const std::size_t length = config.subflow_length;
    for (std::size_t i = 1; i < length; ++i) {
        EXPECT_NEAR(features[2 * length + i], 0.05f / 15.0f, 1e-6);
    }
}

TEST(SubflowSampling, FixedStepHasConstantStride)
{
    SubflowConfig config;
    util::Rng rng(3);
    const auto features = sample_subflow(long_flow(), SamplingMethod::fixed_step, config, rng);
    const std::size_t length = config.subflow_length;
    // All gaps equal (stride * 0.05), so IAT features beyond index 1 match.
    const float gap = features[2 * length + 1];
    EXPECT_GT(gap, 0.0f);
    for (std::size_t i = 2; i < length; ++i) {
        EXPECT_NEAR(features[2 * length + i], gap, 1e-6);
    }
}

TEST(SubflowSampling, RandomDrawsDistinctSortedPackets)
{
    SubflowConfig config;
    util::Rng rng(4);
    // Sizes encode the packet index modulo pattern; with random sampling the
    // IATs vary (unlike fixed/incremental on this uniform flow).
    const auto features = sample_subflow(long_flow(), SamplingMethod::random, config, rng);
    const std::size_t length = config.subflow_length;
    std::set<float> distinct_gaps;
    for (std::size_t i = 1; i < length; ++i) {
        distinct_gaps.insert(features[2 * length + i]);
    }
    EXPECT_GT(distinct_gaps.size(), 3u);
}

TEST(SubflowSampling, ShortFlowsZeroPad)
{
    SubflowConfig config;
    util::Rng rng(5);
    const auto short_f = long_flow(5);
    for (const auto method :
         {SamplingMethod::fixed_step, SamplingMethod::random, SamplingMethod::incremental}) {
        const auto features = sample_subflow(short_f, method, config, rng);
        ASSERT_EQ(features.size(), subflow_feature_size(config));
        // Tail must be zero-padded.
        for (std::size_t i = 5; i < config.subflow_length; ++i) {
            EXPECT_FLOAT_EQ(features[i], 0.0f);
        }
    }
}

TEST(SubflowSampling, MethodNames)
{
    EXPECT_EQ(sampling_method_name(SamplingMethod::fixed_step), "Fixed");
    EXPECT_EQ(sampling_method_name(SamplingMethod::random), "Rand");
    EXPECT_EQ(sampling_method_name(SamplingMethod::incremental), "Incre");
}

class SubflowModelTest : public ::testing::Test {
protected:
    static flow::Dataset tiny_ucdavis(trafficgen::UcdavisPartition partition)
    {
        trafficgen::UcdavisOptions options;
        options.samples_scale = 0.05;
        return trafficgen::make_ucdavis19(partition, options);
    }
};

TEST_F(SubflowModelTest, PretrainReducesRegressionError)
{
    const auto pretraining = tiny_ucdavis(trafficgen::UcdavisPartition::pretraining);
    SubflowModelConfig config;
    config.pretrain_epochs = 1;
    SubflowModel one_epoch(config, 5, SamplingMethod::incremental);
    const double mse_after_one = one_epoch.pretrain(pretraining.flows);

    config.pretrain_epochs = 6;
    SubflowModel six_epochs(config, 5, SamplingMethod::incremental);
    const double mse_after_six = six_epochs.pretrain(pretraining.flows);
    EXPECT_LT(mse_after_six, mse_after_one);
}

TEST_F(SubflowModelTest, FinetuneBeatsChanceOnScript)
{
    const auto pretraining = tiny_ucdavis(trafficgen::UcdavisPartition::pretraining);
    const auto script = tiny_ucdavis(trafficgen::UcdavisPartition::script);

    SubflowModelConfig config;
    config.pretrain_epochs = 4;
    config.finetune_epochs = 30;
    SubflowModel model(config, 5, SamplingMethod::incremental);
    (void)model.pretrain(pretraining.flows);
    (void)model.finetune(script, 10, 7);
    const auto confusion = model.evaluate(script);
    EXPECT_EQ(confusion.total(), script.size());
    EXPECT_GT(confusion.accuracy(), 0.5); // well above 20% chance
}

TEST_F(SubflowModelTest, EvaluateVotesPerFlow)
{
    const auto script = tiny_ucdavis(trafficgen::UcdavisPartition::script);
    SubflowModelConfig config;
    config.pretrain_epochs = 1;
    config.finetune_epochs = 2;
    SubflowModel model(config, 5, SamplingMethod::random);
    (void)model.pretrain(script.flows);
    (void)model.finetune(script, 5, 1);
    const auto confusion = model.evaluate(script);
    // One vote per flow, regardless of subflow count.
    EXPECT_EQ(confusion.total(), script.size());
}

TEST_F(SubflowModelTest, ValidatesInput)
{
    SubflowModelConfig config;
    SubflowModel model(config, 5, SamplingMethod::random);
    EXPECT_THROW((void)model.pretrain({}), std::invalid_argument);
    flow::Dataset empty;
    empty.class_names = {"a"};
    EXPECT_THROW((void)model.finetune(empty, 10, 1), std::invalid_argument);
}

} // namespace
