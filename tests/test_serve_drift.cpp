// Drift-aware serving unit tests: temperature calibration (argmax
// preservation, fit quality, v3 checkpoint round trip), semantic checkpoint
// validation (NaN weights are a typed CheckpointError), the Page–Hinkley
// detector's sample-clock determinism (alarm at an exactly derivable step,
// never on a stationary stream), the DriftMonitor's standardized channels
// and prediction-rate histogram, the flow table's backwards-timestamp
// quarantine, the canary-gated reloader (accept / corrupt-reject /
// regressed-reject / CRC dedup), and the extended flow-accounting
// invariant `ingested == classified + unknown + sheds` across a
// crash + snapshot-restore boundary carrying the model generation.

#include "fptc/nn/calibration.hpp"
#include "fptc/nn/models.hpp"
#include "fptc/nn/serialize.hpp"
#include "fptc/serve/backend.hpp"
#include "fptc/serve/drift.hpp"
#include "fptc/serve/flow_table.hpp"
#include "fptc/serve/reload.hpp"
#include "fptc/serve/service.hpp"
#include "fptc/serve/snapshot.hpp"
#include "fptc/serve/stream.hpp"
#include "fptc/trafficgen/drift.hpp"
#include "fptc/util/membudget.hpp"
#include "fptc/util/rng.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

using namespace fptc;

namespace {

class TempDir {
public:
    explicit TempDir(const std::string& name)
        : path_(std::string(::testing::TempDir()) + name + "." + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    [[nodiscard]] std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

nn::Sequential tiny_network(std::uint64_t seed)
{
    nn::ModelConfig config;
    config.flowpic_dim = 16;
    config.num_classes = 5;
    config.seed = seed;
    return nn::make_supervised_network(config);
}

} // namespace

// ---------------------------------------------------------------------------
// temperature scaling
// ---------------------------------------------------------------------------

TEST(CalibrationTemperature, ScalingNeverChangesArgmaxOnlyConfidence)
{
    const std::vector<float> logits = {2.0f, -1.0f, 0.5f, 3.5f, 0.0f};
    const auto base = nn::softmax_row(logits, 1.0);
    const std::size_t argmax_base =
        static_cast<std::size_t>(std::max_element(base.begin(), base.end()) - base.begin());
    double previous_max = 2.0;  // above any probability
    for (const double temperature : {0.25, 0.5, 1.0, 4.0, 32.0, 500.0}) {
        const auto probs = nn::softmax_row(logits, temperature);
        double total = 0.0;
        for (const double p : probs) {
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-9) << "T=" << temperature;
        const std::size_t argmax =
            static_cast<std::size_t>(std::max_element(probs.begin(), probs.end()) -
                                     probs.begin());
        EXPECT_EQ(argmax, argmax_base) << "T=" << temperature;
        // Monotone: raising T flattens the distribution, so the max-class
        // confidence — what the open-set threshold reads — only falls.
        EXPECT_LT(probs[argmax], previous_max) << "T=" << temperature;
        previous_max = probs[argmax];
    }
}

TEST(CalibrationTemperature, FittedTemperatureNeverWorseNllThanUnit)
{
    // Systematically overconfident logits (scaled-up margins): the fitted
    // temperature must be > 1 and must not lose to T = 1 on NLL.
    const std::size_t n = 64;
    const std::size_t k = 5;
    util::Rng rng(7);
    std::vector<float> data(n * k);
    std::vector<std::size_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
        labels[i] = static_cast<std::size_t>(rng.uniform(0.0, 1.0) * k) % k;
        for (std::size_t j = 0; j < k; ++j) {
            // Overconfident but imperfect: big margin toward a class that is
            // only usually the label.
            const bool hot = (rng.uniform(0.0, 1.0) < 0.7) ? (j == labels[i]) : (j == (labels[i] + 1) % k);
            data[i * k + j] = static_cast<float>(rng.uniform(-0.5, 0.5)) + (hot ? 12.0f : 0.0f);
        }
    }
    nn::Tensor logits({n, k}, std::move(data));
    const double fitted = nn::fit_temperature(logits, labels);
    EXPECT_GT(fitted, 1.0);
    EXPECT_LE(fitted, nn::kMaxTemperature);
    EXPECT_LE(nn::calibration_nll(logits, labels, fitted),
              nn::calibration_nll(logits, labels, 1.0) + 1e-12);
}

TEST(CalibrationTemperature, DegenerateInputFitsToUnit)
{
    nn::Tensor empty({0, 5});
    EXPECT_DOUBLE_EQ(nn::fit_temperature(empty, {}), 1.0);
}

// ---------------------------------------------------------------------------
// checkpoint format v3: calibration round trip + semantic validation
// ---------------------------------------------------------------------------

TEST(CalibrationCheckpoint, V3RoundTripCarriesTemperature)
{
    TempDir dir("fptc_ckpt_v3");
    const std::string path = dir.file("model.ckpt");
    nn::Sequential saved = tiny_network(3);
    nn::Calibration calibration;
    calibration.temperature = 3.5;
    nn::save_network(saved, path, calibration);

    nn::Sequential loaded = tiny_network(99);  // different init, same shapes
    nn::Calibration restored;
    nn::load_network(loaded, path, &restored);
    EXPECT_DOUBLE_EQ(restored.temperature, 3.5);
    EXPECT_TRUE(restored.calibrated());

    // The weights themselves round-trip too.
    const auto a = saved.parameters();
    const auto b = loaded.parameters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i]->value.data().size(), b[i]->value.data().size());
        for (std::size_t j = 0; j < a[i]->value.data().size(); ++j) {
            EXPECT_EQ(a[i]->value.data()[j], b[i]->value.data()[j]);
        }
    }
}

TEST(CalibrationCheckpoint, LegacyV2StreamDefaultsToUncalibrated)
{
    nn::Sequential network = tiny_network(4);
    std::stringstream stream;
    nn::save_parameters(network.parameters(), stream, 2);
    nn::Calibration calibration;
    calibration.temperature = 777.0;  // must be overwritten by the default
    nn::load_parameters(tiny_network(5).parameters(), stream, &calibration);
    EXPECT_DOUBLE_EQ(calibration.temperature, 1.0);
    EXPECT_FALSE(calibration.calibrated());
}

TEST(CalibrationCheckpoint, NaNWeightIsTypedCheckpointError)
{
    nn::Sequential network = tiny_network(6);
    const auto params = network.parameters();
    params.front()->value.data()[0] = std::numeric_limits<float>::quiet_NaN();

    // The bytes are structurally perfect — correct magic, shapes, CRC —
    // which is exactly why the *semantic* pass must catch them.
    std::stringstream stream;
    nn::save_parameters(params, stream, nn::kSerializeVersion);

    std::string error;
    EXPECT_FALSE(nn::verify_checkpoint(stream, &error));
    EXPECT_FALSE(error.empty());

    stream.clear();
    stream.seekg(0);
    EXPECT_THROW(nn::load_parameters(tiny_network(7).parameters(), stream),
                 nn::CheckpointError);
}

TEST(CalibrationCheckpoint, OutOfRangeWeightIsTypedCheckpointError)
{
    nn::Sequential network = tiny_network(8);
    const auto params = network.parameters();
    params.front()->value.data()[0] = nn::kMaxAbsWeight * 2.0f;
    std::stringstream stream;
    nn::save_parameters(params, stream, nn::kSerializeVersion);
    EXPECT_THROW(nn::load_parameters(tiny_network(9).parameters(), stream),
                 nn::CheckpointError);
}

// ---------------------------------------------------------------------------
// Page–Hinkley: the clock is the sample index — tests script it exactly
// ---------------------------------------------------------------------------

TEST(DriftPageHinkley, AlarmsAtExactlyTheDerivableSample)
{
    // delta=0.1, lambda=2, warmup 5.  Ten samples at 0.0 leave the running
    // mean at 0 and the up-statistic at 0.  Each subsequent 1.0 adds
    // (1 - mean_t - 0.1) to the up cumulative: +0.809 (mean 1/11), +0.733
    // (mean 2/12), +0.669 (mean 3/13) — crossing lambda=2 at cumulative
    // 2.212 on the 13th sample, not before, not after.
    serve::PageHinkleyConfig config{.delta = 0.1, .lambda = 2.0, .min_samples = 5};
    serve::PageHinkley detector(config);
    std::uint64_t alarm_at = 0;
    for (std::uint64_t i = 1; i <= 20 && alarm_at == 0; ++i) {
        if (detector.add(i <= 10 ? 0.0 : 1.0)) {
            alarm_at = i;
        }
    }
    EXPECT_EQ(alarm_at, 13u);
    EXPECT_EQ(detector.alarms(), 1u);
    // The alarm re-baselined the detector: its statistic starts over.
    EXPECT_EQ(detector.samples(), 0u);
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
}

TEST(DriftPageHinkley, StationarySignalNeverAlarms)
{
    serve::PageHinkleyConfig config{.delta = 0.05, .lambda = 5.0, .min_samples = 16};
    serve::PageHinkley detector(config);
    // A deterministic zero-mean cycle: the per-sample deviations cancel and
    // the delta drift keeps both cumulative statistics pinned near zero.
    const double cycle[4] = {0.45, 0.55, 0.5, 0.5};
    for (std::size_t i = 0; i < 10000; ++i) {
        EXPECT_FALSE(detector.add(cycle[i % 4])) << "sample " << i;
    }
    EXPECT_EQ(detector.alarms(), 0u);
    EXPECT_EQ(detector.samples(), 10000u);
}

TEST(DriftPageHinkley, DownwardShiftAlarmsToo)
{
    serve::PageHinkleyConfig config{.delta = 0.1, .lambda = 2.0, .min_samples = 5};
    serve::PageHinkley detector(config);
    bool alarmed = false;
    for (std::uint64_t i = 1; i <= 40 && !alarmed; ++i) {
        alarmed = detector.add(i <= 10 ? 1.0 : 0.0);
    }
    EXPECT_TRUE(alarmed);
}

// ---------------------------------------------------------------------------
// DriftMonitor: standardized channels + prediction-rate histogram
// ---------------------------------------------------------------------------

TEST(DriftMonitorUnit, DisabledMonitorObservesNothing)
{
    serve::DriftMonitor monitor({.lambda = 0.0});
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(monitor.observe({.confidence = 0.5 + 0.4 * (i % 2),
                                      .predicted = 0,
                                      .mean_packet_size = 100.0,
                                      .packet_count = 10}));
    }
    EXPECT_EQ(monitor.stats().samples, 0u);
    EXPECT_EQ(monitor.stats().total(), 0u);
}

TEST(DriftMonitorUnit, ConfidenceCollapseAlarmsOncePerShift)
{
    serve::DriftMonitorConfig config;
    config.lambda = 10.0;
    config.delta = 0.1;
    config.min_samples = 32;
    serve::DriftMonitor monitor(config);

    // Stationary regime: a deterministic confidence cycle with nonzero
    // variance (so the standardizer learns a real sigma), steady inputs.
    const double high[4] = {0.82, 0.90, 0.86, 0.88};
    for (std::size_t i = 0; i < 400; ++i) {
        const bool alarm = monitor.observe({.confidence = high[i % 4],
                                            .predicted = i % 5,
                                            .mean_packet_size = 400.0 + 10.0 * (i % 3),
                                            .packet_count = 20 + i % 4});
        EXPECT_FALSE(alarm) << "false alarm at stationary sample " << i;
    }
    ASSERT_EQ(monitor.stats().total(), 0u);

    // Confidence collapses (the classic drift signature) while inputs stay
    // put: only the confidence channel may fire, and a *sustained* shift
    // must alarm once, not once per sample.
    const double low[4] = {0.30, 0.38, 0.34, 0.36};
    for (std::size_t i = 0; i < 400; ++i) {
        monitor.observe({.confidence = low[i % 4],
                         .predicted = i % 5,
                         .mean_packet_size = 400.0 + 10.0 * (i % 3),
                         .packet_count = 20 + i % 4});
    }
    EXPECT_GE(monitor.stats().alarms_confidence, 1u);
    EXPECT_LE(monitor.stats().alarms_confidence, 2u);
    EXPECT_EQ(monitor.stats().alarms_rate, 0u);
    EXPECT_GT(monitor.stats().first_alarm_sample, 400u);
    EXPECT_EQ(monitor.stats().samples, 800u);
}

TEST(DriftMonitorUnit, PredictionRateShiftAlarms)
{
    serve::DriftMonitorConfig config;
    config.lambda = 1e6;  // scalar channels effectively off; monitor enabled
    config.delta = 0.1;
    config.min_samples = 16;
    config.num_classes = 5;
    config.rate_window = 50;
    config.rate_threshold = 1.0;
    serve::DriftMonitor monitor(config);

    const auto steady = [&](std::size_t i) {
        return serve::DriftObservation{.confidence = 0.5 + 0.1 * (i % 2),
                                       .predicted = i % 5,
                                       .mean_packet_size = 300.0 + (i % 7),
                                       .packet_count = 12 + i % 3};
    };
    // Reference window (uniform mix) + a full uniform sliding window.
    for (std::size_t i = 0; i < 200; ++i) {
        EXPECT_FALSE(monitor.observe(steady(i))) << "sample " << i;
    }
    // The mix collapses onto one class: L1 distance vs the uniform
    // reference tends to 2 * (1 - 1/5) = 1.6 > threshold 1.0.
    bool alarmed = false;
    for (std::size_t i = 0; i < 200 && !alarmed; ++i) {
        auto observation = steady(i);
        observation.predicted = 0;
        alarmed = monitor.observe(observation);
    }
    EXPECT_TRUE(alarmed);
    EXPECT_EQ(monitor.stats().alarms_rate, 1u);
    EXPECT_EQ(monitor.stats().alarms_confidence, 0u);
}

// ---------------------------------------------------------------------------
// flow table: backwards-timestamp quarantine
// ---------------------------------------------------------------------------

namespace {

serve::PacketEvent event_at(std::uint64_t flow_id, double ts)
{
    return serve::PacketEvent{.flow_id = flow_id,
                              .label = 1,
                              .timestamp = ts,
                              .size = 200.0,
                              .direction = flow::Direction::upstream,
                              .flow_end = false};
}

} // namespace

TEST(ServeFlowTableQuarantine, BackwardsTimestampIsDroppedFlowKeepsServing)
{
    serve::FlowTable table(1 << 20, 15.0);
    EXPECT_TRUE(table.add_packet(event_at(1, 1.0)).admitted);
    EXPECT_TRUE(table.add_packet(event_at(1, 2.0)).admitted);

    // A time-warped packet: quarantined, not admitted, nothing evicted.
    const auto warped = table.add_packet(event_at(1, 0.5));
    EXPECT_TRUE(warped.quarantined_backwards);
    EXPECT_FALSE(warped.admitted);
    EXPECT_FALSE(warped.shed_self);
    EXPECT_EQ(warped.evicted, 0u);

    // The flow itself keeps serving: later packets still land.
    EXPECT_TRUE(table.add_packet(event_at(1, 2.5)).admitted);

    auto ready = table.flush_all();
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].flow.packets.size(), 3u);  // the warped one is gone
    for (std::size_t i = 1; i < ready[0].flow.packets.size(); ++i) {
        EXPECT_GE(ready[0].flow.packets[i].timestamp,
                  ready[0].flow.packets[i - 1].timestamp);
    }
}

TEST(ServeFlowTableQuarantine, JitterWithinToleranceIsAdmitted)
{
    serve::FlowTable table(1 << 20, 15.0);
    EXPECT_TRUE(table.add_packet(event_at(1, 1.0)).admitted);
    // Sub-tolerance reordering (capture jitter) is not an attack.
    const auto jitter =
        table.add_packet(event_at(1, 1.0 - serve::FlowTable::kBackwardsTolerance / 2.0));
    EXPECT_TRUE(jitter.admitted);
    EXPECT_FALSE(jitter.quarantined_backwards);
    auto ready = table.flush_all();
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].flow.packets.size(), 2u);
}

// ---------------------------------------------------------------------------
// canary-gated reload
// ---------------------------------------------------------------------------

TEST(ServeReload, DisabledWithoutTargetOrPath)
{
    serve::ReloadConfig config;
    config.path = "somewhere.ckpt";
    serve::ModelReloader no_target(config, nullptr);
    EXPECT_FALSE(no_target.enabled());
    EXPECT_EQ(no_target.check_now(), serve::ModelReloader::Outcome::disabled);

    auto backend = serve::CnnBackend::untrained(16, 5, 1);
    config.path.clear();
    serve::ModelReloader no_path(config, backend.get());
    EXPECT_FALSE(no_path.enabled());
    EXPECT_EQ(no_path.check_now(), serve::ModelReloader::Outcome::disabled);
}

TEST(ServeReload, GoodCandidateReloadsOnceAndBumpsGeneration)
{
    TempDir dir("fptc_reload_good");
    const std::string path = dir.file("candidate.ckpt");
    auto backend = serve::CnnBackend::untrained(16, 5, 11);

    serve::ReloadConfig config;
    config.path = path;
    config.canary_flows = 4;
    config.num_classes = 5;
    config.seed = 11;
    serve::ModelReloader reloader(config, backend.get());
    EXPECT_TRUE(reloader.enabled());
    EXPECT_EQ(reloader.check_now(), serve::ModelReloader::Outcome::no_candidate);

    // An identical copy of the incumbent replays at identical golden
    // accuracy — within any tolerance, so it must be accepted.
    nn::Calibration calibration;
    calibration.temperature = 2.25;
    nn::save_network(backend->network(), path, calibration);
    EXPECT_EQ(reloader.check_now(), serve::ModelReloader::Outcome::reloaded);
    EXPECT_EQ(reloader.model_generation(), 1u);
    EXPECT_EQ(reloader.stats().reloads, 1u);
    EXPECT_EQ(reloader.stats().rollbacks, 0u);
    // The candidate's persisted calibration came along with the swap.
    EXPECT_DOUBLE_EQ(backend->calibration().temperature, 2.25);

    // Same bytes on disk: the CRC dedup refuses to re-canary.
    EXPECT_EQ(reloader.check_now(), serve::ModelReloader::Outcome::unchanged);
    EXPECT_EQ(reloader.stats().attempts, 1u);
}

TEST(ServeReload, CorruptCandidateRollsBackWithTypedReason)
{
    TempDir dir("fptc_reload_corrupt");
    const std::string path = dir.file("candidate.ckpt");
    auto backend = serve::CnnBackend::untrained(16, 5, 13);

    // Structurally valid, CRC-correct, semantically poisoned: written via
    // save_parameters because save_network would refuse to publish it.
    {
        nn::Sequential poisoned_network = tiny_network(13);
        const auto params = poisoned_network.parameters();
        params.front()->value.data()[0] = std::numeric_limits<float>::quiet_NaN();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        nn::save_parameters(params, out, nn::kSerializeVersion);
    }

    serve::ReloadConfig config;
    config.path = path;
    config.canary_flows = 4;
    config.seed = 13;
    serve::ModelReloader reloader(config, backend.get());
    EXPECT_EQ(reloader.check_now(), serve::ModelReloader::Outcome::rolled_back);
    EXPECT_EQ(reloader.stats().rollbacks, 1u);
    EXPECT_EQ(reloader.stats().rejected_invalid, 1u);
    EXPECT_EQ(reloader.stats().reloads, 0u);
    EXPECT_EQ(reloader.model_generation(), 0u);
    EXPECT_FALSE(reloader.stats().last_error.empty());

    // The rejected bytes are remembered: no re-canary loop on a bad file.
    EXPECT_EQ(reloader.check_now(), serve::ModelReloader::Outcome::unchanged);
    EXPECT_EQ(reloader.stats().attempts, 1u);
}

TEST(ServeReload, RegressedCandidateFailsGoldenReplay)
{
    TempDir dir("fptc_reload_regressed");
    const std::string path = dir.file("candidate.ckpt");

    // A briefly trained incumbent vs a deterministically useless candidate:
    // all-zero weights give all-zero logits, so argmax always lands on
    // class 0 and golden accuracy is exactly 1/num_classes on the balanced
    // buffer — the golden replay must separate them.
    auto bundle = serve::make_backends(16, 16, 5, 21, 8, 2);
    serve::CnnBackend& incumbent = *bundle.full;

    serve::ReloadConfig config;
    config.path = path;
    config.canary_flows = 8;
    config.tolerance = 0.05;
    config.seed = 21;
    serve::ModelReloader reloader(config, &incumbent);

    auto zeroed = serve::CnnBackend::untrained(16, 5, 987);
    for (nn::Parameter* parameter : zeroed->network().parameters()) {
        std::fill(parameter->value.data().begin(), parameter->value.data().end(), 0.0f);
    }
    const double incumbent_accuracy = reloader.golden_accuracy(incumbent);
    const double candidate_accuracy = reloader.golden_accuracy(*zeroed);
    EXPECT_DOUBLE_EQ(candidate_accuracy, 0.2);
    ASSERT_GT(incumbent_accuracy, candidate_accuracy + config.tolerance)
        << "fixture lost its accuracy separation; retune seeds";

    nn::save_network(zeroed->network(), path);
    EXPECT_EQ(reloader.check_now(), serve::ModelReloader::Outcome::rolled_back);
    EXPECT_EQ(reloader.stats().rejected_accuracy, 1u);
    EXPECT_EQ(reloader.model_generation(), 0u);
    EXPECT_DOUBLE_EQ(reloader.stats().incumbent_accuracy, incumbent_accuracy);
    EXPECT_DOUBLE_EQ(reloader.stats().candidate_accuracy, candidate_accuracy);
}

// ---------------------------------------------------------------------------
// snapshot v2 + extended invariant across restart/restore
// ---------------------------------------------------------------------------

TEST(ServeSnapshotV2, RoundTripCarriesDriftCountersAndModelGeneration)
{
    serve::ServeSnapshot snap;
    snap.watermark = 77;
    snap.stream_now = 3.5;
    snap.generation = 2;
    snap.model_generation = 4;
    snap.config_fingerprint = 0xabcdULL;
    snap.counters.flows_ingested = 50;
    snap.counters.flows_classified = 30;
    snap.counters.flows_unknown = 12;
    snap.counters.unknown_truth_total = 10;
    snap.counters.unknown_truth_rejected = 9;
    snap.counters.events_quarantined_backwards = 3;
    snap.counters.drift_alarms = 2;
    snap.counters.reloads = 4;
    snap.counters.reload_rollbacks = 1;

    const auto decoded = serve::decode_snapshot(serve::encode_snapshot(snap));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->model_generation, 4u);
    EXPECT_EQ(decoded->counters.flows_unknown, 12u);
    EXPECT_EQ(decoded->counters.unknown_truth_total, 10u);
    EXPECT_EQ(decoded->counters.unknown_truth_rejected, 9u);
    EXPECT_EQ(decoded->counters.events_quarantined_backwards, 3u);
    EXPECT_EQ(decoded->counters.drift_alarms, 2u);
    EXPECT_EQ(decoded->counters.reloads, 4u);
    EXPECT_EQ(decoded->counters.reload_rollbacks, 1u);
}

TEST(ServeDriftE2E, OpenSetRejectionKeepsExtendedInvariant)
{
    serve::ServeConfig config;
    config.batch_size = 8;
    config.flowpic_dim = 16;
    config.reduced_dim = 16;
    config.deadline_ms = 2000.0;
    config.unknown_thresh = 0.9;  // untrained CNN scores ~1/num_classes

    trafficgen::DriftSchedule drift;
    drift.unknown_rate = 0.4;
    drift.at = 0.0;

    auto backends = serve::make_backends(config.flowpic_dim, config.reduced_dim,
                                         config.num_classes, 42);
    serve::InterleavedStream stream(
        {.flows = 60, .num_classes = config.num_classes, .seed = 9, .drift = drift});
    ASSERT_GT(stream.unknown_flows(), 0u);
    serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                       *backends.fallback);
    const serve::ServeReport report = service.run(stream);

    EXPECT_TRUE(report.accounted()) << report.summary();
    EXPECT_GT(report.flows_unknown, 0u);
    EXPECT_EQ(report.flows_ingested,
              report.flows_classified + report.flows_unknown + report.shed_total());
    // Oracle: every unknown-truth flow that reached a verdict was rejected,
    // not silently misclassified as one of the five trained classes.
    EXPECT_EQ(report.unknown_truth_rejected, report.unknown_truth_total);
}

TEST(ServeDriftE2E, InvariantAndModelGenerationSurviveRestore)
{
    TempDir dir("fptc_drift_restore");
    const std::string path = dir.file("snapshot.bin");
    serve::ServeConfig config;
    config.batch_size = 8;
    config.flowpic_dim = 16;
    config.reduced_dim = 16;
    config.deadline_ms = 2000.0;
    config.unknown_thresh = 0.9;
    config.snapshot_path = path;
    config.snapshot_period_s = 0.0;
    config.generation = 1;

    // The crashed generation had rejected 4 flows as unknown and survived
    // one accepted hot reload; its snapshot carries both.
    serve::ServeSnapshot snap;
    snap.watermark = 40;
    snap.generation = 0;
    snap.model_generation = 3;
    snap.config_fingerprint = config.fingerprint();
    snap.counters.events_total = 40;
    snap.counters.flows_ingested = 10;
    snap.counters.flows_classified = 5;
    snap.counters.flows_unknown = 4;
    snap.counters.unknown_truth_total = 3;
    snap.counters.unknown_truth_rejected = 3;
    snap.counters.drift_alarms = 1;
    serve::save_snapshot(path, snap);

    const std::size_t before = util::mem_budget().in_use();
    serve::ServeReport report;
    {
        auto backends = serve::make_backends(config.flowpic_dim, config.reduced_dim,
                                             config.num_classes, 42);
        serve::InterleavedStream stream({.flows = 40, .seed = 11});
        serve::StreamingClassifier service(config, *backends.full, *backends.reduced,
                                           *backends.fallback);
        report = service.run(stream);
    }

    EXPECT_TRUE(report.restored);
    EXPECT_EQ(report.model_generation, 3u);  // carried across the crash
    EXPECT_EQ(report.drift_alarms, 1u);
    EXPECT_GE(report.flows_unknown, 4u);
    EXPECT_GT(report.flows_ingested, 10u);
    // One pre-crash flow was in flight (10 ingested = 5 classified +
    // 4 unknown + 1 lost): the extended invariant still balances because
    // the restore types that flow as restart_loss.
    EXPECT_EQ(report.shed_restart_loss, 1u);
    EXPECT_TRUE(report.accounted()) << report.summary();
    EXPECT_EQ(report.flows_ingested,
              report.flows_classified + report.flows_unknown + report.shed_total());
    EXPECT_EQ(util::mem_budget().in_use(), before);
}

// ---------------------------------------------------------------------------
// trafficgen drift schedule
// ---------------------------------------------------------------------------

TEST(TrafficgenDrift, InactiveScheduleKeepsStreamBitIdentical)
{
    serve::InterleavedStream plain({.flows = 50, .seed = 5});
    serve::InterleavedStream with_inactive({.flows = 50, .seed = 5, .drift = {}});
    ASSERT_EQ(plain.base_events(), with_inactive.base_events());
    for (;;) {
        const auto a = plain.next();
        const auto b = with_inactive.next();
        ASSERT_EQ(a.has_value(), b.has_value());
        if (!a) {
            break;
        }
        EXPECT_EQ(a->flow_id, b->flow_id);
        EXPECT_EQ(a->label, b->label);
        EXPECT_EQ(a->timestamp, b->timestamp);
        EXPECT_EQ(a->size, b->size);
    }
}

TEST(TrafficgenDrift, ShiftWeightFollowsTheSchedule)
{
    trafficgen::DriftSchedule step;
    step.mode = trafficgen::DriftSchedule::Mode::step;
    step.at = 0.5;
    step.magnitude = 0.8;
    EXPECT_DOUBLE_EQ(step.shift_weight(0.0), 0.0);
    EXPECT_DOUBLE_EQ(step.shift_weight(0.49), 0.0);
    EXPECT_DOUBLE_EQ(step.shift_weight(0.5), 0.8);
    EXPECT_DOUBLE_EQ(step.shift_weight(1.0), 0.8);

    trafficgen::DriftSchedule linear;
    linear.mode = trafficgen::DriftSchedule::Mode::linear;
    linear.at = 0.5;
    linear.magnitude = 1.0;
    EXPECT_DOUBLE_EQ(linear.shift_weight(0.5), 0.0);
    EXPECT_DOUBLE_EQ(linear.shift_weight(0.75), 0.5);
    EXPECT_DOUBLE_EQ(linear.shift_weight(1.0), 1.0);
}

TEST(TrafficgenDrift, UnknownInjectionLabelsOutsideTrainedClasses)
{
    trafficgen::DriftSchedule drift;
    drift.unknown_rate = 1.0;  // every flow after `at` is an unknown app
    drift.at = 0.0;
    serve::InterleavedStream stream({.flows = 30, .num_classes = 5, .seed = 3, .drift = drift});
    EXPECT_EQ(stream.unknown_flows(), stream.flow_count());
    while (auto event = stream.next()) {
        EXPECT_EQ(event->label, 5u);
    }
}
