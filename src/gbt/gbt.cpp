#include "fptc/gbt/gbt.hpp"

#include "fptc/util/membudget.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fptc::gbt {

float Tree::predict(std::span<const float> x) const
{
    if (nodes.empty()) {
        return 0.0f;
    }
    int index = 0;
    while (nodes[static_cast<std::size_t>(index)].feature >= 0) {
        const auto& node = nodes[static_cast<std::size_t>(index)];
        index = x[static_cast<std::size_t>(node.feature)] < node.threshold ? node.left : node.right;
    }
    return nodes[static_cast<std::size_t>(index)].value;
}

int Tree::depth() const
{
    if (nodes.empty()) {
        return 0;
    }
    // Iterative depth computation over the flat representation.
    std::vector<std::pair<int, int>> stack{{0, 0}};
    int max_depth = 0;
    while (!stack.empty()) {
        const auto [index, depth] = stack.back();
        stack.pop_back();
        const auto& node = nodes[static_cast<std::size_t>(index)];
        if (node.feature < 0) {
            max_depth = std::max(max_depth, depth);
        } else {
            stack.emplace_back(node.left, depth + 1);
            stack.emplace_back(node.right, depth + 1);
        }
    }
    return max_depth;
}

namespace {

/// Per-feature histogram bin edges (quantile-ish via sorted unique values).
struct BinMap {
    std::vector<std::vector<float>> edges; ///< edges[f] sorted ascending

    [[nodiscard]] std::uint16_t bin_of(std::size_t feature, float value) const
    {
        const auto& e = edges[feature];
        return static_cast<std::uint16_t>(
            std::upper_bound(e.begin(), e.end(), value) - e.begin());
    }
};

[[nodiscard]] BinMap build_bins(const std::vector<std::vector<float>>& features, int num_bins)
{
    const std::size_t n = features.size();
    const std::size_t d = features.front().size();
    BinMap bins;
    bins.edges.resize(d);
    std::vector<float> column(n);
    for (std::size_t f = 0; f < d; ++f) {
        for (std::size_t i = 0; i < n; ++i) {
            column[i] = features[i][f];
        }
        std::sort(column.begin(), column.end());
        auto& edges = bins.edges[f];
        // Quantile edges; duplicates collapse automatically.
        for (int b = 1; b < num_bins; ++b) {
            const auto idx = static_cast<std::size_t>(
                static_cast<double>(b) / num_bins * static_cast<double>(n - 1));
            const float edge = column[idx];
            if (edges.empty() || edge > edges.back()) {
                edges.push_back(edge);
            }
        }
    }
    return bins;
}

struct SplitCandidate {
    double gain = 0.0;
    std::size_t feature = 0;
    std::uint16_t bin = 0; ///< go left when binned value <= bin
    float threshold = 0.0f;
};

struct NodeBuildState {
    std::vector<std::uint32_t> samples;
    int depth = 0;
    int node_index = 0;
};

[[nodiscard]] double leaf_objective(double g, double h, double lambda)
{
    return g * g / (h + lambda);
}

} // namespace

GbtClassifier::GbtClassifier(GbtConfig config, std::size_t num_classes)
    : config_(config), num_classes_(num_classes)
{
    if (num_classes < 2) {
        throw std::invalid_argument("GbtClassifier: need at least 2 classes");
    }
    if (config_.num_rounds < 1 || config_.max_depth < 1 || config_.num_bins < 2) {
        throw std::invalid_argument("GbtClassifier: bad configuration");
    }
}

void GbtClassifier::fit(const std::vector<std::vector<float>>& features,
                        const std::vector<std::size_t>& labels)
{
    if (features.empty() || features.size() != labels.size()) {
        throw std::invalid_argument("GbtClassifier::fit: empty or mismatched input");
    }
    const std::size_t n = features.size();
    num_features_ = features.front().size();
    for (const auto& row : features) {
        if (row.size() != num_features_) {
            throw std::invalid_argument("GbtClassifier::fit: ragged feature rows");
        }
    }
    for (const auto label : labels) {
        if (label >= num_classes_) {
            throw std::invalid_argument("GbtClassifier::fit: label out of range");
        }
    }

    const auto bins = build_bins(features, config_.num_bins);
    // Charge the whole training working set (binned design matrix, margin /
    // probability / gradient / hessian buffers, split histograms) against the
    // process memory budget up front, before the allocations happen; released
    // when fit() returns or unwinds.
    const util::Charge working_set(
        num_features_ * n * sizeof(std::uint16_t) + 2 * n * num_classes_ * sizeof(double) +
            2 * n * sizeof(float) +
            2 * static_cast<std::size_t>(config_.num_bins) * sizeof(double),
        "gbt::fit");
    // Binned design matrix, column-major for cache-friendly histogram builds.
    std::vector<std::vector<std::uint16_t>> binned(num_features_,
                                                   std::vector<std::uint16_t>(n));
    std::size_t max_bins = 0;
    for (std::size_t f = 0; f < num_features_; ++f) {
        for (std::size_t i = 0; i < n; ++i) {
            binned[f][i] = bins.bin_of(f, features[i][f]);
        }
        max_bins = std::max(max_bins, bins.edges[f].size() + 1);
    }

    trees_.clear();
    trees_.reserve(static_cast<std::size_t>(config_.num_rounds) * num_classes_);

    // Raw margins per (sample, class), updated after every round.
    std::vector<double> margins(n * num_classes_, 0.0);
    std::vector<double> probabilities(n * num_classes_, 0.0);
    std::vector<float> gradients(n);
    std::vector<float> hessians(n);

    std::vector<double> hist_g(max_bins);
    std::vector<double> hist_h(max_bins);

    for (int round = 0; round < config_.num_rounds; ++round) {
        FPTC_TRACE_SPAN("gbt_round");
        if (config_.cancel != nullptr) {
            config_.cancel->poll();
        }
        // Softmax over current margins.
        for (std::size_t i = 0; i < n; ++i) {
            const double* m = margins.data() + i * num_classes_;
            double* p = probabilities.data() + i * num_classes_;
            double max_margin = m[0];
            for (std::size_t k = 1; k < num_classes_; ++k) {
                max_margin = std::max(max_margin, m[k]);
            }
            double denom = 0.0;
            for (std::size_t k = 0; k < num_classes_; ++k) {
                p[k] = std::exp(m[k] - max_margin);
                denom += p[k];
            }
            for (std::size_t k = 0; k < num_classes_; ++k) {
                p[k] /= denom;
            }
        }

        for (std::size_t k = 0; k < num_classes_; ++k) {
            if (config_.cancel != nullptr) {
                config_.cancel->poll();
            }
            for (std::size_t i = 0; i < n; ++i) {
                const double p = probabilities[i * num_classes_ + k];
                gradients[i] = static_cast<float>(p - (labels[i] == k ? 1.0 : 0.0));
                hessians[i] = static_cast<float>(std::max(p * (1.0 - p), 1e-6));
            }

            Tree tree;
            tree.nodes.push_back(TreeNode{});
            std::vector<NodeBuildState> stack;
            {
                NodeBuildState root;
                root.samples.resize(n);
                for (std::size_t i = 0; i < n; ++i) {
                    root.samples[i] = static_cast<std::uint32_t>(i);
                }
                stack.push_back(std::move(root));
            }

            while (!stack.empty()) {
                if (config_.cancel != nullptr) {
                    config_.cancel->poll();
                }
                NodeBuildState state = std::move(stack.back());
                stack.pop_back();

                double g_total = 0.0;
                double h_total = 0.0;
                for (const auto i : state.samples) {
                    g_total += gradients[i];
                    h_total += hessians[i];
                }

                SplitCandidate best;
                if (state.depth < config_.max_depth && state.samples.size() >= 2) {
                    const double parent_obj = leaf_objective(g_total, h_total, config_.lambda);
                    for (std::size_t f = 0; f < num_features_; ++f) {
                        const std::size_t bin_count = bins.edges[f].size() + 1;
                        if (bin_count < 2) {
                            continue;
                        }
                        std::fill(hist_g.begin(), hist_g.begin() + static_cast<std::ptrdiff_t>(bin_count), 0.0);
                        std::fill(hist_h.begin(), hist_h.begin() + static_cast<std::ptrdiff_t>(bin_count), 0.0);
                        const auto& column = binned[f];
                        for (const auto i : state.samples) {
                            hist_g[column[i]] += gradients[i];
                            hist_h[column[i]] += hessians[i];
                        }
                        double g_left = 0.0;
                        double h_left = 0.0;
                        for (std::size_t b = 0; b + 1 < bin_count; ++b) {
                            g_left += hist_g[b];
                            h_left += hist_h[b];
                            const double h_right = h_total - h_left;
                            if (h_left < config_.min_child_weight ||
                                h_right < config_.min_child_weight) {
                                continue;
                            }
                            const double g_right = g_total - g_left;
                            const double gain =
                                0.5 * (leaf_objective(g_left, h_left, config_.lambda) +
                                       leaf_objective(g_right, h_right, config_.lambda) -
                                       parent_obj) -
                                config_.gamma;
                            if (gain > best.gain) {
                                best.gain = gain;
                                best.feature = f;
                                best.bin = static_cast<std::uint16_t>(b);
                                best.threshold = bins.edges[f][b];
                            }
                        }
                    }
                }

                const auto node_index = static_cast<std::size_t>(state.node_index);
                if (best.gain <= 0.0) {
                    tree.nodes[node_index].feature = -1;
                    tree.nodes[node_index].value = static_cast<float>(
                        -config_.learning_rate * g_total / (h_total + config_.lambda));
                    continue;
                }

                NodeBuildState left_state;
                NodeBuildState right_state;
                left_state.depth = right_state.depth = state.depth + 1;
                const auto& column = binned[best.feature];
                for (const auto i : state.samples) {
                    if (column[i] <= best.bin) {
                        left_state.samples.push_back(i);
                    } else {
                        right_state.samples.push_back(i);
                    }
                }

                // Append children first: push_back may reallocate, so the
                // parent node is written through a fresh index afterwards.
                const auto left_index = static_cast<int>(tree.nodes.size());
                tree.nodes.push_back(TreeNode{});
                const auto right_index = static_cast<int>(tree.nodes.size());
                tree.nodes.push_back(TreeNode{});

                TreeNode& node = tree.nodes[node_index];
                node.feature = static_cast<int>(best.feature);
                // upper_bound semantics: bin b covers values <= edges[b]; the
                // left child takes bins [0, best.bin], i.e. x <= threshold.
                // Tree::predict tests `x < threshold`, so nudge the stored
                // threshold to the next representable float.
                node.threshold =
                    std::nextafter(best.threshold, std::numeric_limits<float>::infinity());
                node.left = left_index;
                node.right = right_index;
                left_state.node_index = left_index;
                right_state.node_index = right_index;
                stack.push_back(std::move(left_state));
                stack.push_back(std::move(right_state));
            }

            // Update margins with the freshly grown tree.
            for (std::size_t i = 0; i < n; ++i) {
                margins[i * num_classes_ + k] +=
                    static_cast<double>(tree.predict(features[i]));
            }
            trees_.push_back(std::move(tree));
        }
    }
}

std::vector<double> GbtClassifier::predict_proba(std::span<const float> features) const
{
    if (features.size() != num_features_) {
        throw std::invalid_argument("GbtClassifier::predict_proba: feature size mismatch");
    }
    std::vector<double> margins(num_classes_, 0.0);
    for (std::size_t t = 0; t < trees_.size(); ++t) {
        margins[t % num_classes_] += static_cast<double>(trees_[t].predict(features));
    }
    double max_margin = margins[0];
    for (const double m : margins) {
        max_margin = std::max(max_margin, m);
    }
    double denom = 0.0;
    for (auto& m : margins) {
        m = std::exp(m - max_margin);
        denom += m;
    }
    for (auto& m : margins) {
        m /= denom;
    }
    return margins;
}

std::size_t GbtClassifier::predict(std::span<const float> features) const
{
    const auto proba = predict_proba(features);
    return static_cast<std::size_t>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<std::size_t> GbtClassifier::predict_batch(
    const std::vector<std::vector<float>>& features) const
{
    std::vector<std::size_t> predictions;
    predictions.reserve(features.size());
    for (const auto& row : features) {
        predictions.push_back(predict(row));
    }
    return predictions;
}

double GbtClassifier::average_tree_depth() const
{
    if (trees_.empty()) {
        return 0.0;
    }
    double total = 0.0;
    for (const auto& tree : trees_) {
        total += tree.depth();
    }
    return total / static_cast<double>(trees_.size());
}

std::size_t GbtClassifier::tree_count() const noexcept
{
    return trees_.size();
}

} // namespace fptc::gbt
