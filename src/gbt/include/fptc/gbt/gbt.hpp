// Gradient-boosted decision trees (XGBoost-style) for the ML baseline.
//
// Section 4.1 of the paper: "We used a classic XGBoost as our ML model, with
// default hyper-parameter values (100 estimators, max depth 6)" fed either a
// flattened 32x32 flowpic (1,024 features) or the 30-element early
// time-series vector.  This is a from-scratch reimplementation of the same
// algorithm family: second-order (gradient + hessian) boosting with the
// XGBoost split gain, softmax multi-class objective (one tree per class per
// round), histogram-based split finding and L2 leaf regularization.
//
// The paper also inspects the fitted ensembles ("the trained forests have
// very short trees — an average depth of 1.7 for time series and 1.3 for
// flowpic input"); average_tree_depth() exposes the same diagnostic.
#pragma once

#include "fptc/util/cancel.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fptc::gbt {

/// Boosting hyper-parameters (defaults follow the paper's "default
/// hyper-parameter values": 100 estimators, depth 6).
struct GbtConfig {
    int num_rounds = 100;          ///< boosting rounds
    int max_depth = 6;             ///< maximum tree depth
    double learning_rate = 0.3;    ///< shrinkage (XGBoost default eta)
    double lambda = 1.0;           ///< L2 regularization on leaf weights
    double gamma = 0.0;            ///< minimum gain to split
    double min_child_weight = 1.0; ///< minimum hessian sum per child
    int num_bins = 32;             ///< histogram bins per feature
    /// Watchdog hook: fit() polls this token per boosting round, per class
    /// tree and per node build, so a table3 unit unwinds with CancelledError
    /// when its executor deadline trips instead of blowing past
    /// FPTC_UNIT_TIMEOUT_S.  Null = never cancelled.
    const util::CancelToken* cancel = nullptr;
};

/// A regression tree stored as a flat node array.
struct TreeNode {
    int feature = -1;        ///< split feature; -1 for leaves
    float threshold = 0.0f;  ///< go left when x[feature] < threshold
    int left = -1;
    int right = -1;
    float value = 0.0f;      ///< leaf output (already shrunk)
};

struct Tree {
    std::vector<TreeNode> nodes;

    [[nodiscard]] float predict(std::span<const float> x) const;
    [[nodiscard]] int depth() const;
};

/// Multi-class gradient boosted trees with a softmax objective.
class GbtClassifier {
public:
    GbtClassifier(GbtConfig config, std::size_t num_classes);

    /// Train on row-major feature vectors.  All rows must share one length;
    /// labels must be < num_classes.  Throws std::invalid_argument on
    /// malformed input.
    void fit(const std::vector<std::vector<float>>& features,
             const std::vector<std::size_t>& labels);

    /// Per-class probabilities for one sample (softmax of raw margins).
    [[nodiscard]] std::vector<double> predict_proba(std::span<const float> features) const;

    /// Most likely class.
    [[nodiscard]] std::size_t predict(std::span<const float> features) const;

    /// Batch prediction.
    [[nodiscard]] std::vector<std::size_t> predict_batch(
        const std::vector<std::vector<float>>& features) const;

    /// Mean depth over all trees of the fitted ensemble (Sec. 4.1.2).
    [[nodiscard]] double average_tree_depth() const;

    [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }
    [[nodiscard]] std::size_t tree_count() const noexcept;

private:
    GbtConfig config_;
    std::size_t num_classes_;
    std::size_t num_features_ = 0;
    /// trees_[round * num_classes + class]
    std::vector<Tree> trees_;
};

} // namespace fptc::gbt
