#include "fptc/stats/descriptive.hpp"

#include "fptc/stats/distributions.hpp"

#include <algorithm>
#include <cmath>

namespace fptc::stats {

double mean(std::span<const double> values) noexcept
{
    if (values.empty()) {
        return 0.0;
    }
    double total = 0.0;
    for (const double v : values) {
        total += v;
    }
    return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept
{
    const std::size_t n = values.size();
    if (n < 2) {
        return 0.0;
    }
    const double m = mean(values);
    double sum_sq = 0.0;
    for (const double v : values) {
        const double d = v - m;
        sum_sq += d * d;
    }
    return sum_sq / static_cast<double>(n - 1);
}

double stddev(std::span<const double> values) noexcept
{
    return std::sqrt(variance(values));
}

double median(std::vector<double> values) noexcept
{
    return percentile(std::move(values), 50.0);
}

double percentile(std::vector<double> values, double p) noexcept
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank = clamped / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

MeanCi mean_ci(std::span<const double> values, double confidence)
{
    MeanCi result;
    result.n = values.size();
    result.mean = mean(values);
    if (values.size() < 2) {
        return result;
    }
    const double alpha = 1.0 - confidence;
    const double df = static_cast<double>(values.size() - 1);
    const double t = student_t_critical(df, alpha);
    result.half_width = t * stddev(values) / std::sqrt(static_cast<double>(values.size()));
    return result;
}

DegradedCellCi degraded_cell_ci(std::span<const double> values, std::size_t expected,
                                double confidence)
{
    DegradedCellCi cell;
    cell.ci = mean_ci(values, confidence);
    cell.missing = expected > values.size() ? expected - values.size() : 0;
    return cell;
}

BoxSummary box_summary(std::vector<double> values) noexcept
{
    BoxSummary summary;
    if (values.empty()) {
        return summary;
    }
    std::sort(values.begin(), values.end());
    const auto pct = [&](double p) {
        const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
        const auto lo = static_cast<std::size_t>(rank);
        const auto hi = std::min(lo + 1, values.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        return values[lo] * (1.0 - frac) + values[hi] * frac;
    };
    summary.whisker_low = pct(5.0);
    summary.q1 = pct(25.0);
    summary.median = pct(50.0);
    summary.q3 = pct(75.0);
    summary.whisker_high = pct(95.0);
    return summary;
}

} // namespace fptc::stats
