#include "fptc/stats/metrics.hpp"

#include <stdexcept>

namespace fptc::stats {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : counts_(num_classes, std::vector<std::size_t>(num_classes, 0))
{
    if (num_classes == 0) {
        throw std::invalid_argument("ConfusionMatrix: num_classes must be > 0");
    }
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted)
{
    if (truth >= counts_.size() || predicted >= counts_.size()) {
        throw std::out_of_range("ConfusionMatrix::add: label out of range");
    }
    ++counts_[truth][predicted];
    ++total_;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other)
{
    if (other.counts_.size() != counts_.size()) {
        throw std::invalid_argument("ConfusionMatrix::merge: size mismatch");
    }
    for (std::size_t r = 0; r < counts_.size(); ++r) {
        for (std::size_t c = 0; c < counts_.size(); ++c) {
            counts_[r][c] += other.counts_[r][c];
        }
    }
    total_ += other.total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth, std::size_t predicted) const
{
    return counts_.at(truth).at(predicted);
}

double ConfusionMatrix::accuracy() const noexcept
{
    if (total_ == 0) {
        return 0.0;
    }
    std::size_t correct = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        correct += counts_[i][i];
    }
    return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::per_class_recall() const
{
    std::vector<double> recall(counts_.size(), 0.0);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::size_t row_total = 0;
        for (const auto c : counts_[i]) {
            row_total += c;
        }
        if (row_total > 0) {
            recall[i] = static_cast<double>(counts_[i][i]) / static_cast<double>(row_total);
        }
    }
    return recall;
}

std::vector<double> ConfusionMatrix::per_class_precision() const
{
    std::vector<double> precision(counts_.size(), 0.0);
    for (std::size_t j = 0; j < counts_.size(); ++j) {
        std::size_t column_total = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            column_total += counts_[i][j];
        }
        if (column_total > 0) {
            precision[j] = static_cast<double>(counts_[j][j]) / static_cast<double>(column_total);
        }
    }
    return precision;
}

std::vector<double> ConfusionMatrix::per_class_f1() const
{
    const auto recall = per_class_recall();
    const auto precision = per_class_precision();
    std::vector<double> f1(counts_.size(), 0.0);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double denom = recall[i] + precision[i];
        if (denom > 0.0) {
            f1[i] = 2.0 * recall[i] * precision[i] / denom;
        }
    }
    return f1;
}

double ConfusionMatrix::macro_f1() const
{
    const auto f1 = per_class_f1();
    double total = 0.0;
    for (const double v : f1) {
        total += v;
    }
    return counts_.empty() ? 0.0 : total / static_cast<double>(counts_.size());
}

double ConfusionMatrix::weighted_f1() const
{
    if (total_ == 0) {
        return 0.0;
    }
    const auto f1 = per_class_f1();
    double weighted = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::size_t support = 0;
        for (const auto c : counts_[i]) {
            support += c;
        }
        weighted += f1[i] * static_cast<double>(support);
    }
    return weighted / static_cast<double>(total_);
}

std::vector<std::vector<double>> ConfusionMatrix::row_normalized() const
{
    std::vector<std::vector<double>> normalized(counts_.size(),
                                                std::vector<double>(counts_.size(), 0.0));
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::size_t row_total = 0;
        for (const auto c : counts_[i]) {
            row_total += c;
        }
        if (row_total == 0) {
            continue;
        }
        for (std::size_t j = 0; j < counts_.size(); ++j) {
            normalized[i][j] = static_cast<double>(counts_[i][j]) / static_cast<double>(row_total);
        }
    }
    return normalized;
}

double accuracy_of(std::span<const std::size_t> truth, std::span<const std::size_t> predicted)
{
    if (truth.size() != predicted.size()) {
        throw std::invalid_argument("accuracy_of: size mismatch");
    }
    if (truth.empty()) {
        return 0.0;
    }
    std::size_t correct = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (truth[i] == predicted[i]) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(truth.size());
}

} // namespace fptc::stats
