#include "fptc/stats/tukey.hpp"

#include "fptc/stats/descriptive.hpp"
#include "fptc/stats/distributions.hpp"
#include "fptc/util/table.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fptc::stats {

TukeyResult tukey_hsd(const std::vector<std::vector<double>>& groups, double alpha)
{
    const std::size_t k = groups.size();
    if (k < 2) {
        throw std::invalid_argument("tukey_hsd: need at least 2 groups");
    }
    std::size_t total_n = 0;
    for (const auto& group : groups) {
        if (group.size() < 2) {
            throw std::invalid_argument("tukey_hsd: each group needs >= 2 observations");
        }
        total_n += group.size();
    }

    TukeyResult result;
    result.alpha = alpha;
    result.df_error = static_cast<double>(total_n - k);

    // Pooled within-group variance (MSE).
    double ss_within = 0.0;
    std::vector<double> means(k);
    for (std::size_t g = 0; g < k; ++g) {
        means[g] = mean(groups[g]);
        for (const double v : groups[g]) {
            const double d = v - means[g];
            ss_within += d * d;
        }
    }
    result.pooled_variance = ss_within / result.df_error;

    for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = a + 1; b < k; ++b) {
            TukeyComparison cmp;
            cmp.group_a = static_cast<int>(a);
            cmp.group_b = static_cast<int>(b);
            cmp.mean_difference = means[a] - means[b];
            // Tukey-Kramer standard error for unequal group sizes.
            const double na = static_cast<double>(groups[a].size());
            const double nb = static_cast<double>(groups[b].size());
            const double se = std::sqrt(result.pooled_variance / 2.0 * (1.0 / na + 1.0 / nb));
            cmp.q_statistic = se > 0.0 ? std::fabs(cmp.mean_difference) / se : 0.0;
            cmp.p_value =
                1.0 - studentized_range_cdf(cmp.q_statistic, static_cast<int>(k), result.df_error);
            if (cmp.p_value < 0.0) {
                cmp.p_value = 0.0;
            }
            cmp.significant = cmp.p_value < alpha;
            result.comparisons.push_back(cmp);
        }
    }
    return result;
}

std::string render_tukey_table(const TukeyResult& result, const std::vector<std::string>& names)
{
    util::Table table("Tukey HSD post-hoc test (alpha = " + util::format_double(result.alpha, 2) + ")");
    table.set_header({"Group", "Group", "p-value", "Is Different?"});
    for (const auto& cmp : result.comparisons) {
        const auto name = [&](int idx) {
            const auto u = static_cast<std::size_t>(idx);
            return u < names.size() ? names[u] : std::to_string(idx);
        };
        char p_buffer[32];
        if (cmp.p_value > 0.0 && cmp.p_value < 1e-3) {
            std::snprintf(p_buffer, sizeof p_buffer, "%.2e", cmp.p_value);
        } else {
            std::snprintf(p_buffer, sizeof p_buffer, "%.2f", cmp.p_value);
        }
        table.add_row({name(cmp.group_a), name(cmp.group_b), p_buffer, cmp.significant ? "Yes" : "No"});
    }
    table.add_footnote("P-values extracted from Tukey's post-hoc test at a " +
                       util::format_double(result.alpha, 2) + " significance level.");
    return table.to_string();
}

} // namespace fptc::stats
