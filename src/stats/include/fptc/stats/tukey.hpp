// Tukey HSD post-hoc test.
//
// Appendix F of the paper compares the accuracy populations obtained at the
// three flowpic resolutions "using a posthoc Tukey test" and reports the
// pairwise p-values in Table 10 (32x32 vs 64x64: p=0.57; both vs 1500x1500:
// p < 1e-5).  tukey_hsd() reproduces that computation: a one-way layout,
// pooled within-group variance, and Studentized-range p-values.
#pragma once

#include <string>
#include <vector>

namespace fptc::stats {

/// One pairwise comparison result.
struct TukeyComparison {
    int group_a = 0;
    int group_b = 0;
    double mean_difference = 0.0; ///< mean(a) - mean(b)
    double q_statistic = 0.0;     ///< Studentized range statistic
    double p_value = 1.0;         ///< P(Q >= q) under H0
    bool significant = false;     ///< p_value < alpha
};

/// Full HSD outcome.
struct TukeyResult {
    std::vector<TukeyComparison> comparisons;
    double pooled_variance = 0.0; ///< MSE (within-group mean square)
    double df_error = 0.0;        ///< error degrees of freedom
    double alpha = 0.05;
};

/// Run Tukey's HSD over `groups` (each a sample of observations).  Groups may
/// have different sizes (Tukey-Kramer adjustment is applied).
/// Throws std::invalid_argument when fewer than 2 groups or any group has
/// fewer than 2 observations.
[[nodiscard]] TukeyResult tukey_hsd(const std::vector<std::vector<double>>& groups,
                                    double alpha = 0.05);

/// Render the Table-10 style report ("Is Different?" column included).
[[nodiscard]] std::string render_tukey_table(const TukeyResult& result,
                                             const std::vector<std::string>& names);

} // namespace fptc::stats
