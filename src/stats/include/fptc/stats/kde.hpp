// Gaussian kernel density estimation.
//
// Figure 8 of the paper shows per-class packet-size KDEs across the three
// UCDAVIS19 partitions and is the most compelling visual evidence for the
// Google-search data shift in the `human` partition.  This module provides
// the estimator used by bench/fig8_kde_packet_size.
#pragma once

#include <span>
#include <vector>

namespace fptc::stats {

/// A density curve sampled on a regular grid.
struct DensityCurve {
    std::vector<double> xs;
    std::vector<double> ys; ///< density values; integrates to ~1 over [xs.front(), xs.back()]
};

/// Silverman's rule-of-thumb bandwidth: 0.9 * min(sd, IQR/1.34) * n^(-1/5).
/// Falls back to 1.0 for degenerate samples.
[[nodiscard]] double silverman_bandwidth(std::span<const double> samples);

/// Evaluate a Gaussian KDE of `samples` on `grid_points` points spanning
/// [lo, hi].  With bandwidth <= 0, Silverman's rule is applied.
[[nodiscard]] DensityCurve gaussian_kde(std::span<const double> samples, double lo, double hi,
                                        std::size_t grid_points = 256, double bandwidth = 0.0);

/// Symmetrized total-variation style distance between two curves sampled on
/// identical grids: 0 means identical shapes, values near 1 strongly shifted.
/// Used by tests and the Fig. 8 bench to quantify the human-partition shift.
[[nodiscard]] double curve_distance(const DensityCurve& a, const DensityCurve& b);

} // namespace fptc::stats
