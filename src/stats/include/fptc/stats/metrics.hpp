// Classification metrics: confusion matrix, accuracy, F1 variants.
//
// The paper measures accuracy on the (balanced) UCDAVIS19 test partitions
// (Tables 3-7) and switches to a weighted F1 score for the imbalanced
// replication datasets (Table 8, Sec. 4.5.1).  Figure 3 renders average
// row-normalized confusion matrices.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fptc::stats {

/// Streaming confusion matrix over `num_classes` labels.
class ConfusionMatrix {
public:
    explicit ConfusionMatrix(std::size_t num_classes);

    /// Record one prediction.  Labels must be < num_classes.
    void add(std::size_t truth, std::size_t predicted);

    /// Merge another matrix (e.g. accumulating across campaign runs, as the
    /// paper does for Fig. 3: "we summed all the confusion matrices").
    void merge(const ConfusionMatrix& other);

    [[nodiscard]] std::size_t num_classes() const noexcept { return counts_.size(); }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] std::size_t count(std::size_t truth, std::size_t predicted) const;

    /// Overall accuracy in [0, 1]; 0 for an empty matrix.
    [[nodiscard]] double accuracy() const noexcept;

    /// Per-class recall / precision / F1 (0 when undefined).
    [[nodiscard]] std::vector<double> per_class_recall() const;
    [[nodiscard]] std::vector<double> per_class_precision() const;
    [[nodiscard]] std::vector<double> per_class_f1() const;

    /// Unweighted mean of per-class F1.
    [[nodiscard]] double macro_f1() const;

    /// Support-weighted mean of per-class F1 (paper's Table 8 metric).
    [[nodiscard]] double weighted_f1() const;

    /// Row-normalized matrix (each row sums to 1; empty rows stay 0) — the
    /// representation plotted in Fig. 3.
    [[nodiscard]] std::vector<std::vector<double>> row_normalized() const;

private:
    std::vector<std::vector<std::size_t>> counts_;
    std::size_t total_ = 0;
};

/// Convenience: accuracy of parallel truth/prediction label vectors.
[[nodiscard]] double accuracy_of(std::span<const std::size_t> truth,
                                 std::span<const std::size_t> predicted);

} // namespace fptc::stats
