// Friedman ranking + Nemenyi post-hoc critical-distance analysis.
//
// Section 4.3 of the paper compares the 7 augmentations "according to the
// procedures presented in [Demsar 2006]": per-experiment accuracies are
// turned into rankings (ties get the group's average rank), ranks are
// averaged per augmentation, and pairs whose average-rank difference is
// below the critical distance CD = q_alpha * sqrt(k(k+1)/(6N)) are not
// statistically different.  Figures 5-7 render the result as a CD plot.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fptc::stats {

/// Rank a single experiment's scores.  The *highest* score gets rank 1
/// (best), as in the paper ("accuracies 0.9, 0.7, 0.8 -> ranks 1, 3, 2");
/// tied scores share the average rank of their group.
[[nodiscard]] std::vector<double> rank_scores(std::span<const double> scores);

/// Outcome of a critical-distance analysis over N experiments x k treatments.
struct CriticalDistanceResult {
    std::vector<double> average_ranks;          ///< per-treatment mean rank (lower is better)
    double critical_distance = 0.0;             ///< Nemenyi CD at the chosen alpha
    int k = 0;                                  ///< number of treatments
    std::size_t n = 0;                          ///< number of experiments
    double friedman_statistic = 0.0;            ///< Friedman chi^2_F statistic
    std::vector<std::vector<int>> groups;       ///< maximal cliques of indistinguishable treatments
};

/// Run the Friedman + Nemenyi analysis.  `scores[i]` holds the k treatment
/// scores of experiment i; all rows must have the same length.
[[nodiscard]] CriticalDistanceResult critical_distance_analysis(
    const std::vector<std::vector<double>>& scores, double alpha = 0.05);

/// Render a textual CD plot in the spirit of Fig. 5: treatments on an axis of
/// average ranks, bars joining groups that are not statistically different.
[[nodiscard]] std::string render_cd_plot(const CriticalDistanceResult& result,
                                         const std::vector<std::string>& names,
                                         std::size_t width = 72);

} // namespace fptc::stats
