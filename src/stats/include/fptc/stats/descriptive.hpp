// Descriptive statistics and confidence intervals.
//
// Every "ours" cell in the paper's Tables 3-8 is "the average accuracy across
// N modeling experiments and the related 95-th confidence intervals"
// computed with a Student t distribution; MeanCi reproduces exactly that.
#pragma once

#include <span>
#include <vector>

namespace fptc::stats {

/// Sample mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 when fewer than 2 values.
[[nodiscard]] double variance(std::span<const double> values) noexcept;

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> values) noexcept;

/// Median (averaging the middle pair for even sizes).
[[nodiscard]] double median(std::vector<double> values) noexcept;

/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> values, double p) noexcept;

/// Mean with a symmetric t-distribution confidence half-width.
struct MeanCi {
    double mean = 0.0;       ///< sample mean
    double half_width = 0.0; ///< CI half width ("±" value in the tables)
    std::size_t n = 0;       ///< number of samples aggregated
};

/// Compute mean ± t_{alpha/2, n-1} * s / sqrt(n).  With fewer than 2 samples
/// the half width is 0.
[[nodiscard]] MeanCi mean_ci(std::span<const double> values, double confidence = 0.95);

/// Campaign table cell aggregate that tolerates degraded units: the CI over
/// the surviving scores plus how many of the expected contributions are
/// missing.  A degraded cell is *marked*, never silently averaged — see
/// util::format_degraded_mean_ci for the rendering.
struct DegradedCellCi {
    MeanCi ci;                ///< over the surviving values only
    std::size_t missing = 0;  ///< expected - surviving contributions

    [[nodiscard]] bool complete() const noexcept { return missing == 0; }
    [[nodiscard]] bool empty() const noexcept { return ci.n == 0; }
};

/// Aggregate `values` (the surviving unit scores of one table cell) against
/// the number of units the campaign scheduled for that cell.
[[nodiscard]] DegradedCellCi degraded_cell_ci(std::span<const double> values,
                                              std::size_t expected, double confidence = 0.95);

/// Five-number-style summary used by the boxplot figures (Fig. 11): median,
/// quartiles and 5th/95th percentile whiskers.
struct BoxSummary {
    double whisker_low = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double whisker_high = 0.0;
};

[[nodiscard]] BoxSummary box_summary(std::vector<double> values) noexcept;

} // namespace fptc::stats
