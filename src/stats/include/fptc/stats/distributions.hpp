// Probability distributions used by the paper's statistical analyses.
//
// - Student's t quantiles drive the 95% confidence intervals reported in
//   every "ours" cell of Tables 3-8 ("computed the 95% confidence intervals
//   using a t distribution", Sec. 4.1.1).
// - The Studentized range distribution drives both the Nemenyi critical
//   distance (Sec. 4.3.1: CD = q_alpha * sqrt(k(k+1)/6N)) and the Tukey HSD
//   post-hoc test of Appendix F (Table 10 p-values).
//
// All functions are implemented from scratch (incomplete beta/gamma via
// continued fractions, Studentized range via the classical double
// integral) so the library has no external numeric dependencies.
#pragma once

namespace fptc::stats {

/// Standard normal probability density.
[[nodiscard]] double normal_pdf(double x) noexcept;

/// Standard normal cumulative distribution function.
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Standard normal quantile (Acklam's rational approximation + one Newton
/// polish step).  Requires p in (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Natural log of the gamma function (Lanczos).
[[nodiscard]] double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b), x in [0, 1].
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Student's t cumulative distribution with `df` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double df);

/// Two-sided critical value: t such that P(|T| <= t) = 1 - alpha.
[[nodiscard]] double student_t_critical(double df, double alpha);

/// CDF of the Studentized range statistic q for `k` groups and `df`
/// error degrees of freedom (df may be infinity for the asymptotic case used
/// by the Nemenyi test).  Accuracy ~1e-6, matching published q tables.
[[nodiscard]] double studentized_range_cdf(double q, int k, double df);

/// Upper-alpha critical value of the Studentized range: q with
/// P(Q <= q) = 1 - alpha.  Solved by bisection on studentized_range_cdf.
[[nodiscard]] double studentized_range_critical(int k, double df, double alpha);

/// Tukey/Nemenyi convention used in the paper: q_alpha already divided by
/// sqrt(2) (Sec. 4.3.1 quotes q_0.05 = 2.949 for k = 7).
[[nodiscard]] double nemenyi_q(int k, double alpha = 0.05);

} // namespace fptc::stats
