#include "fptc/stats/ranking.hpp"

#include "fptc/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace fptc::stats {

std::vector<double> rank_scores(std::span<const double> scores)
{
    const std::size_t k = scores.size();
    std::vector<std::size_t> order(k);
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Descending by score: best score -> first position -> rank 1.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

    std::vector<double> ranks(k, 0.0);
    std::size_t i = 0;
    while (i < k) {
        std::size_t j = i;
        while (j + 1 < k && scores[order[j + 1]] == scores[order[i]]) {
            ++j;
        }
        // positions i..j (0-based) share the average of ranks i+1..j+1.
        const double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
        for (std::size_t p = i; p <= j; ++p) {
            ranks[order[p]] = avg_rank;
        }
        i = j + 1;
    }
    return ranks;
}

CriticalDistanceResult critical_distance_analysis(const std::vector<std::vector<double>>& scores,
                                                  double alpha)
{
    if (scores.empty()) {
        throw std::invalid_argument("critical_distance_analysis: no experiments");
    }
    const std::size_t k = scores.front().size();
    if (k < 2) {
        throw std::invalid_argument("critical_distance_analysis: need at least 2 treatments");
    }
    for (const auto& row : scores) {
        if (row.size() != k) {
            throw std::invalid_argument("critical_distance_analysis: ragged score matrix");
        }
    }

    CriticalDistanceResult result;
    result.k = static_cast<int>(k);
    result.n = scores.size();
    result.average_ranks.assign(k, 0.0);
    for (const auto& row : scores) {
        const auto ranks = rank_scores(row);
        for (std::size_t j = 0; j < k; ++j) {
            result.average_ranks[j] += ranks[j];
        }
    }
    const auto n = static_cast<double>(result.n);
    for (auto& r : result.average_ranks) {
        r /= n;
    }

    // Friedman chi-square statistic.
    const auto kd = static_cast<double>(k);
    double sum_sq = 0.0;
    for (const double r : result.average_ranks) {
        sum_sq += r * r;
    }
    result.friedman_statistic = 12.0 * n / (kd * (kd + 1.0)) * (sum_sq - kd * (kd + 1.0) * (kd + 1.0) / 4.0);

    const double q = nemenyi_q(result.k, alpha);
    result.critical_distance = q * std::sqrt(kd * (kd + 1.0) / (6.0 * n));

    // Group treatments: sort by average rank, emit maximal runs whose
    // rank spread stays within CD (the horizontal bars of a CD diagram).
    std::vector<int> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return result.average_ranks[static_cast<std::size_t>(a)] <
               result.average_ranks[static_cast<std::size_t>(b)];
    });
    // Groups are contiguous runs of the rank-sorted order; a run is maximal
    // exactly when it extends past the previous run's end.
    std::size_t previous_end = 0;
    bool have_group = false;
    for (std::size_t start = 0; start < k; ++start) {
        std::size_t end = start;
        while (end + 1 < k &&
               result.average_ranks[static_cast<std::size_t>(order[end + 1])] -
                       result.average_ranks[static_cast<std::size_t>(order[start])] <=
                   result.critical_distance) {
            ++end;
        }
        if (end > start && (!have_group || end > previous_end)) {
            result.groups.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                                       order.begin() + static_cast<std::ptrdiff_t>(end) + 1);
            previous_end = end;
            have_group = true;
        }
    }
    // Groups were built from rank-sorted order; store them sorted by index for
    // stable comparison, but keep clique membership intact.
    for (auto& group : result.groups) {
        std::sort(group.begin(), group.end());
    }
    return result;
}

std::string render_cd_plot(const CriticalDistanceResult& result, const std::vector<std::string>& names,
                           std::size_t width)
{
    const auto k = static_cast<std::size_t>(result.k);
    std::ostringstream out;
    char buffer[160];
    std::snprintf(buffer, sizeof buffer,
                  "Critical distance CD = %.3f (alpha-level Nemenyi, k=%d, N=%zu)\n",
                  result.critical_distance, result.k, result.n);
    out << buffer;

    // Axis from best (rank 1, right side as in the paper) to worst (rank k).
    const double rank_lo = 1.0;
    const double rank_hi = static_cast<double>(result.k);
    const auto column_of = [&](double rank) {
        // rank 1 -> rightmost column; rank k -> leftmost.
        const double f = (rank_hi - rank) / (rank_hi - rank_lo);
        return static_cast<std::size_t>(f * static_cast<double>(width - 1) + 0.5);
    };

    std::string axis(width, '-');
    for (int tick = 1; tick <= result.k; ++tick) {
        axis[column_of(tick)] = '+';
    }
    out << axis << "\n";
    std::string tick_labels(width, ' ');
    for (int tick = 1; tick <= result.k; ++tick) {
        const auto col = column_of(tick);
        const std::string label = std::to_string(tick);
        for (std::size_t i = 0; i < label.size() && col + i < width; ++i) {
            tick_labels[col + i] = label[i];
        }
    }
    out << tick_labels << "  (average rank; right = better)\n";

    // One line per treatment, ordered best to worst.
    std::vector<std::size_t> order(k);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return result.average_ranks[a] < result.average_ranks[b];
    });
    for (const auto idx : order) {
        std::string line(width, ' ');
        line[column_of(result.average_ranks[idx])] = '*';
        const std::string& name = idx < names.size() ? names[idx] : std::to_string(idx);
        std::snprintf(buffer, sizeof buffer, " %s (%.3f)", name.c_str(), result.average_ranks[idx]);
        out << line << buffer << '\n';
    }

    // Group bars.
    for (std::size_t g = 0; g < result.groups.size(); ++g) {
        double lo = rank_hi;
        double hi = rank_lo;
        for (const int idx : result.groups[g]) {
            lo = std::min(lo, result.average_ranks[static_cast<std::size_t>(idx)]);
            hi = std::max(hi, result.average_ranks[static_cast<std::size_t>(idx)]);
        }
        std::string line(width, ' ');
        const auto c_hi = column_of(lo); // best rank -> right
        const auto c_lo = column_of(hi);
        for (std::size_t c = c_lo; c <= c_hi && c < width; ++c) {
            line[c] = '=';
        }
        out << line << " group " << g + 1 << " (not statistically different)\n";
    }
    return out.str();
}

} // namespace fptc::stats
