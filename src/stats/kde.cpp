#include "fptc/stats/kde.hpp"

#include "fptc/stats/descriptive.hpp"
#include "fptc/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fptc::stats {

double silverman_bandwidth(std::span<const double> samples)
{
    if (samples.size() < 2) {
        return 1.0;
    }
    const double sd = stddev(samples);
    std::vector<double> sorted(samples.begin(), samples.end());
    const double q1 = percentile(sorted, 25.0);
    const double q3 = percentile(sorted, 75.0);
    const double iqr = (q3 - q1) / 1.34;
    double spread = sd;
    if (iqr > 0.0) {
        spread = std::min(sd, iqr);
    }
    if (spread <= 0.0) {
        return 1.0;
    }
    return 0.9 * spread * std::pow(static_cast<double>(samples.size()), -0.2);
}

DensityCurve gaussian_kde(std::span<const double> samples, double lo, double hi,
                          std::size_t grid_points, double bandwidth)
{
    if (samples.empty()) {
        throw std::invalid_argument("gaussian_kde: empty sample");
    }
    if (!(hi > lo) || grid_points < 2) {
        throw std::invalid_argument("gaussian_kde: invalid grid");
    }
    const double h = bandwidth > 0.0 ? bandwidth : silverman_bandwidth(samples);

    DensityCurve curve;
    curve.xs.resize(grid_points);
    curve.ys.assign(grid_points, 0.0);
    const double step = (hi - lo) / static_cast<double>(grid_points - 1);
    for (std::size_t i = 0; i < grid_points; ++i) {
        curve.xs[i] = lo + step * static_cast<double>(i);
    }
    const double norm = 1.0 / (static_cast<double>(samples.size()) * h);
    for (const double sample : samples) {
        // Kernels decay fast: only touch grid points within 5 bandwidths.
        const double reach = 5.0 * h;
        const auto first =
            static_cast<std::size_t>(std::max(0.0, std::floor((sample - reach - lo) / step)));
        const auto last = static_cast<std::size_t>(
            std::min(static_cast<double>(grid_points - 1), std::ceil((sample + reach - lo) / step)));
        for (std::size_t i = first; i <= last && i < grid_points; ++i) {
            const double z = (curve.xs[i] - sample) / h;
            curve.ys[i] += norm * normal_pdf(z);
        }
    }
    return curve;
}

double curve_distance(const DensityCurve& a, const DensityCurve& b)
{
    if (a.xs.size() != b.xs.size() || a.xs.empty()) {
        throw std::invalid_argument("curve_distance: curves must share a grid");
    }
    // 0.5 * integral |f - g| — total variation distance for densities.
    double accum = 0.0;
    for (std::size_t i = 1; i < a.xs.size(); ++i) {
        const double dx = a.xs[i] - a.xs[i - 1];
        const double diff =
            0.5 * (std::fabs(a.ys[i] - b.ys[i]) + std::fabs(a.ys[i - 1] - b.ys[i - 1]));
        accum += diff * dx;
    }
    return 0.5 * accum;
}

} // namespace fptc::stats
