#include "fptc/stats/distributions.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace fptc::stats {

double normal_pdf(double x) noexcept
{
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) noexcept
{
    return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double normal_quantile(double p)
{
    if (!(p > 0.0 && p < 1.0)) {
        throw std::invalid_argument("normal_quantile: p must be in (0,1)");
    }
    // Acklam's rational approximation.
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    double x = 0.0;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // One Newton polish step on the CDF.
    const double e = normal_cdf(x) - p;
    const double u = e / normal_pdf(x);
    x -= u / (1.0 + x * u / 2.0);
    return x;
}

double log_gamma(double x)
{
    // Lanczos approximation (g = 7, n = 9).
    static constexpr double coefficients[] = {
        0.99999999999980993,  676.5203681218851,   -1259.1392167224028, 771.32342877765313,
        -176.61502916214059,  12.507343278686905,  -0.13857109526572012,
        9.9843695780195716e-6, 1.5056327351493116e-7};
    if (x < 0.5) {
        // Reflection formula.
        return std::log(std::numbers::pi / std::sin(std::numbers::pi * x)) - log_gamma(1.0 - x);
    }
    x -= 1.0;
    double sum = coefficients[0];
    for (int i = 1; i < 9; ++i) {
        sum += coefficients[i] / (x + i);
    }
    const double t = x + 7.5;
    return 0.5 * std::log(2.0 * std::numbers::pi) + (x + 0.5) * std::log(t) - t + std::log(sum);
}

namespace {

/// Continued-fraction evaluation for the incomplete beta (Numerical Recipes
/// style modified Lentz algorithm).
[[nodiscard]] double beta_continued_fraction(double a, double b, double x)
{
    constexpr int max_iterations = 300;
    constexpr double epsilon = 3.0e-14;
    constexpr double fpmin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin) {
        d = fpmin;
    }
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iterations; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin) {
            d = fpmin;
        }
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin) {
            c = fpmin;
        }
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin) {
            d = fpmin;
        }
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin) {
            c = fpmin;
        }
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < epsilon) {
            break;
        }
    }
    return h;
}

} // namespace

double incomplete_beta(double a, double b, double x)
{
    if (x <= 0.0) {
        return 0.0;
    }
    if (x >= 1.0) {
        return 1.0;
    }
    const double ln_front =
        log_gamma(a + b) - log_gamma(a) - log_gamma(b) + a * std::log(x) + b * std::log(1.0 - x);
    const double front = std::exp(ln_front);
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * beta_continued_fraction(a, b, x) / a;
    }
    return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df)
{
    if (df <= 0.0) {
        throw std::invalid_argument("student_t_cdf: df must be positive");
    }
    const double x = df / (df + t * t);
    const double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - p : p;
}

double student_t_critical(double df, double alpha)
{
    if (!(alpha > 0.0 && alpha < 1.0)) {
        throw std::invalid_argument("student_t_critical: alpha must be in (0,1)");
    }
    const double target = 1.0 - alpha / 2.0;
    double lo = 0.0;
    double hi = 1.0;
    while (student_t_cdf(hi, df) < target) {
        hi *= 2.0;
        if (hi > 1e6) {
            break;
        }
    }
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (student_t_cdf(mid, df) < target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

namespace {

/// Inner probability of the Studentized range given a scale factor u applied
/// to q: P_k(u*q) = k * integral phi(z) * [Phi(z) - Phi(z - u q)]^(k-1) dz.
/// Evaluated with composite Gauss-Legendre over a wide z window.
[[nodiscard]] double range_probability(double q, int k)
{
    if (q <= 0.0) {
        return 0.0;
    }
    // 16-point Gauss-Legendre nodes/weights on [-1, 1].
    static constexpr double nodes[] = {
        -0.9894009349916499, -0.9445750230732326, -0.8656312023878318, -0.7554044083550030,
        -0.6178762444026438, -0.4580167776572274, -0.2816035507792589, -0.0950125098376374,
        0.0950125098376374,  0.2816035507792589,  0.4580167776572274,  0.6178762444026438,
        0.7554044083550030,  0.8656312023878318,  0.9445750230732326,  0.9894009349916499};
    static constexpr double weights[] = {
        0.0271524594117541, 0.0622535239386479, 0.0951585116824928, 0.1246289712555339,
        0.1495959888165767, 0.1691565193950025, 0.1826034150449236, 0.1894506104550685,
        0.1894506104550685, 0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
        0.1246289712555339, 0.0951585116824928, 0.0622535239386479, 0.0271524594117541};

    constexpr double z_lo = -8.0;
    constexpr double z_hi = 8.0;
    constexpr int panels = 32;
    const double panel_width = (z_hi - z_lo) / panels;

    double total = 0.0;
    for (int p = 0; p < panels; ++p) {
        const double a = z_lo + p * panel_width;
        const double mid = a + 0.5 * panel_width;
        const double half = 0.5 * panel_width;
        for (int i = 0; i < 16; ++i) {
            const double z = mid + half * nodes[i];
            const double inner = normal_cdf(z) - normal_cdf(z - q);
            if (inner <= 0.0) {
                continue;
            }
            total += weights[i] * half * normal_pdf(z) * std::pow(inner, k - 1);
        }
    }
    return std::min(1.0, k * total);
}

} // namespace

double studentized_range_cdf(double q, int k, double df)
{
    if (k < 2) {
        throw std::invalid_argument("studentized_range_cdf: k must be >= 2");
    }
    if (q <= 0.0) {
        return 0.0;
    }
    if (!std::isfinite(df) || df > 5000.0) {
        return range_probability(q, k);
    }
    // Outer integral over the chi-distributed scale:
    //   P(Q <= q) = int_0^inf f_chi(s; df) * P_k(q * s) ds
    // where s = chi_df / sqrt(df).  The density of s is
    //   f(s) = (df^{df/2} / (Gamma(df/2) 2^{df/2 - 1})) s^{df-1} exp(-df s^2 / 2).
    const double log_const =
        0.5 * df * std::log(df) - log_gamma(0.5 * df) - (0.5 * df - 1.0) * std::log(2.0);

    static constexpr double nodes[] = {
        -0.9894009349916499, -0.9445750230732326, -0.8656312023878318, -0.7554044083550030,
        -0.6178762444026438, -0.4580167776572274, -0.2816035507792589, -0.0950125098376374,
        0.0950125098376374,  0.2816035507792589,  0.4580167776572274,  0.6178762444026438,
        0.7554044083550030,  0.8656312023878318,  0.9445750230732326,  0.9894009349916499};
    static constexpr double weights[] = {
        0.0271524594117541, 0.0622535239386479, 0.0951585116824928, 0.1246289712555339,
        0.1495959888165767, 0.1691565193950025, 0.1826034150449236, 0.1894506104550685,
        0.1894506104550685, 0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
        0.1246289712555339, 0.0951585116824928, 0.0622535239386479, 0.0271524594117541};

    // The scale s concentrates around 1 with spread ~1/sqrt(2 df); integrate
    // over [max(0, 1-10/sqrt(2df)), 1+10/sqrt(2df)].
    const double spread = 10.0 / std::sqrt(2.0 * df);
    const double s_lo = std::max(1e-8, 1.0 - spread);
    const double s_hi = 1.0 + spread;
    constexpr int panels = 24;
    const double panel_width = (s_hi - s_lo) / panels;

    double total = 0.0;
    for (int p = 0; p < panels; ++p) {
        const double a = s_lo + p * panel_width;
        const double mid = a + 0.5 * panel_width;
        const double half = 0.5 * panel_width;
        for (int i = 0; i < 16; ++i) {
            const double s = mid + half * nodes[i];
            const double log_density = log_const + (df - 1.0) * std::log(s) - 0.5 * df * s * s;
            if (log_density < -700.0) {
                continue;
            }
            total += weights[i] * half * std::exp(log_density) * range_probability(q * s, k);
        }
    }
    return std::min(1.0, total);
}

double studentized_range_critical(int k, double df, double alpha)
{
    if (!(alpha > 0.0 && alpha < 1.0)) {
        throw std::invalid_argument("studentized_range_critical: alpha must be in (0,1)");
    }
    const double target = 1.0 - alpha;
    double lo = 0.0;
    double hi = 2.0;
    while (studentized_range_cdf(hi, k, df) < target && hi < 128.0) {
        hi *= 2.0;
    }
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (studentized_range_cdf(mid, k, df) < target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double nemenyi_q(int k, double alpha)
{
    const double infinite_df = std::numeric_limits<double>::infinity();
    return studentized_range_critical(k, infinite_df, alpha) / std::numbers::sqrt2;
}

} // namespace fptc::stats
