#include "fptc/trafficgen/drift.hpp"

#include "fptc/util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace fptc::trafficgen {

namespace {

double env_fraction(const char* name, double fallback, double max_value)
{
    const auto value = util::env_double(name);
    if (!value.has_value()) {
        return fallback;
    }
    if (*value < 0.0 || *value > max_value) {
        throw util::EnvError(std::string(name) + " must be in [0, " + std::to_string(max_value) +
                             "], got " + std::to_string(*value));
    }
    return *value;
}

} // namespace

double DriftSchedule::shift_weight(double progress) const noexcept
{
    const double p = std::clamp(progress, 0.0, 1.0);
    switch (mode) {
    case Mode::none:
        return 0.0;
    case Mode::step:
        return p >= at ? magnitude : 0.0;
    case Mode::linear: {
        if (p <= at) {
            return 0.0;
        }
        const double span = 1.0 - at;
        return span <= 0.0 ? magnitude : magnitude * std::min(1.0, (p - at) / span);
    }
    }
    return 0.0;
}

DriftSchedule DriftSchedule::from_env()
{
    DriftSchedule schedule;
    if (const char* mode = std::getenv("FPTC_DRIFT_MODE"); mode != nullptr && *mode != '\0') {
        const std::string value(mode);
        if (value == "step") {
            schedule.mode = Mode::step;
        } else if (value == "linear") {
            schedule.mode = Mode::linear;
        } else if (value == "none") {
            schedule.mode = Mode::none;
        } else {
            throw util::EnvError("FPTC_DRIFT_MODE must be step|linear|none, got '" + value + "'");
        }
    }
    schedule.at = env_fraction("FPTC_DRIFT_AT", schedule.at, 1.0);
    schedule.magnitude = env_fraction("FPTC_DRIFT_MAGNITUDE", schedule.magnitude, 1.0);
    schedule.unknown_rate = env_fraction("FPTC_DRIFT_UNKNOWN", schedule.unknown_rate, 1.0);
    schedule.imbalance = env_fraction("FPTC_DRIFT_IMBALANCE", schedule.imbalance, 1.0);
    if (schedule.imbalance >= 1.0) {
        throw util::EnvError("FPTC_DRIFT_IMBALANCE must be in [0, 1), got " +
                             std::to_string(schedule.imbalance));
    }
    return schedule;
}

ClassProfile blend_profiles(const ClassProfile& base, const ClassProfile& shifted, double t)
{
    const double w = std::clamp(t, 0.0, 1.0);
    const auto lerp = [w](double a, double b) { return a + (b - a) * w; };
    // Structural vectors have no meaningful interpolation (different counts,
    // different meanings per slot) — they switch wholesale at the midpoint.
    ClassProfile out = w < 0.5 ? base : shifted;
    out.name = base.name + "+drift";
    out.handshake_gap = lerp(base.handshake_gap, shifted.handshake_gap);
    out.burst_period = lerp(base.burst_period, shifted.burst_period);
    out.burst_period_jitter = lerp(base.burst_period_jitter, shifted.burst_period_jitter);
    out.burst_phase_jitter = lerp(base.burst_phase_jitter, shifted.burst_phase_jitter);
    out.burst_packets = lerp(base.burst_packets, shifted.burst_packets);
    out.burst_packets_jitter = lerp(base.burst_packets_jitter, shifted.burst_packets_jitter);
    out.burst_width = lerp(base.burst_width, shifted.burst_width);
    out.chatter_rate = lerp(base.chatter_rate, shifted.chatter_rate);
    out.chatter_size_mean = lerp(base.chatter_size_mean, shifted.chatter_size_mean);
    out.chatter_size_std = lerp(base.chatter_size_std, shifted.chatter_size_std);
    out.duration_log_mean = lerp(base.duration_log_mean, shifted.duration_log_mean);
    out.duration_log_std = lerp(base.duration_log_std, shifted.duration_log_std);
    out.down_fraction = lerp(base.down_fraction, shifted.down_fraction);
    out.ack_fraction = lerp(base.ack_fraction, shifted.ack_fraction);
    out.rate_jitter = lerp(base.rate_jitter, shifted.rate_jitter);
    out.window = lerp(base.window, shifted.window);
    return out;
}

ClassProfile unknown_app_profile(std::uint64_t seed)
{
    // A mobile-app profile from a seed-space disjoint from anything the
    // serve backends train on; class index 7 is outside every 5-class set.
    ClassProfile profile = make_mobile_app_profile(seed ^ 0xD21F7000ULL, 7, false);
    profile.name = "unknown_app";
    return profile;
}

} // namespace fptc::trafficgen
