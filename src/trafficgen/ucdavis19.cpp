#include "fptc/trafficgen/ucdavis19.hpp"

#include <cmath>
#include <stdexcept>

namespace fptc::trafficgen {

namespace {

// Class indices in the fixed vocabulary order.
enum : std::size_t { kDoc = 0, kDrive = 1, kMusic = 2, kSearch = 3, kYouTube = 4 };

// Paper Table 2 pretraining totals: 6,439 flows, min 592, max 1,915.
constexpr std::size_t kPretrainCounts[5] = {1221, 1634, 592, 1915, 1077};
// script: perfectly balanced, 30 per class.
constexpr std::size_t kScriptCounts[5] = {30, 30, 30, 30, 30};
// human: 83 flows; "three classes have 15 samples, the remaining 18 and 20"
// (paper footnote 12).
constexpr std::size_t kHumanCounts[5] = {15, 18, 15, 15, 20};

} // namespace

std::string partition_name(UcdavisPartition partition)
{
    switch (partition) {
    case UcdavisPartition::pretraining:
        return "pretraining";
    case UcdavisPartition::script:
        return "script";
    case UcdavisPartition::human:
        return "human";
    }
    return "unknown";
}

const std::vector<std::string>& ucdavis19_class_names()
{
    static const std::vector<std::string> names = {
        "Google Doc", "Google Drive", "Google Music", "Google Search", "YouTube"};
    return names;
}

ClassProfile ucdavis19_profile(std::size_t class_index, bool human_shift)
{
    ClassProfile profile;
    profile.name = ucdavis19_class_names().at(class_index);
    switch (class_index) {
    case kDoc:
        // Keystroke/typing sync: continuous small-packet chatter plus light
        // periodic save bursts of mid-size packets.
        profile.handshake_sizes = {310.0, 1380.0, 160.0, 540.0, 210.0, 480.0};
        profile.chatter_rate = 6.0;
        profile.chatter_size_mean = 250.0;
        profile.chatter_size_std = 120.0;
        profile.burst_period = 4.0;
        profile.burst_packets = 8.0;
        profile.burst_width = 0.3;
        profile.burst_sizes = {{600.0, 150.0, 0.6}, {1200.0, 150.0, 0.4}};
        profile.down_fraction = 0.55;
        profile.duration_log_mean = std::log(40.0);
        profile.duration_log_std = 0.5;
        break;
    case kDrive:
        // Bulk file transfer: a few wide full-MTU blocks, upload-dominated.
        profile.handshake_sizes = {480.0, 1210.0, 980.0, 300.0, 1340.0, 720.0};
        profile.burst_positions = {0.03, 0.25, 0.55};
        profile.burst_packets = 180.0;
        profile.burst_width = 0.9;
        profile.burst_sizes = {{1500.0, 25.0, 0.85}, {500.0, 200.0, 0.15}};
        profile.chatter_rate = 1.0;
        profile.down_fraction = 0.30;
        profile.duration_log_mean = std::log(30.0);
        profile.duration_log_std = 0.7;
        break;
    case kMusic:
        // Audio streaming: regular ~1 s chunk stripes of near-MTU packets
        // (the vertical stripes of Fig. 4 rectangle C).
        profile.handshake_sizes = {610.0, 890.0, 260.0, 1450.0, 380.0, 1100.0};
        profile.burst_period = 1.1;
        profile.burst_packets = 45.0;
        profile.burst_width = 0.12;
        profile.burst_sizes = {{1460.0, 40.0, 0.75}, {850.0, 120.0, 0.25}};
        profile.chatter_rate = 0.5;
        profile.chatter_size_mean = 150.0;
        profile.down_fraction = 0.93;
        profile.duration_log_mean = std::log(60.0);
        profile.duration_log_std = 0.4;
        break;
    case kSearch:
        // Request/response: one burst at the window start and one around the
        // middle (Fig. 4: "two vertical groups of pixels around the
        // left-axis and the center of the picture").
        profile.handshake_sizes = {240.0, 760.0, 420.0, 1120.0, 560.0, 940.0};
        profile.burst_positions = {0.01, 0.48};
        profile.burst_packets = 70.0;
        profile.burst_width = 0.35;
        profile.burst_sizes = {{1480.0, 30.0, 0.5}, {620.0, 150.0, 0.3}, {180.0, 80.0, 0.2}};
        profile.chatter_rate = 1.2;
        profile.chatter_size_mean = 150.0;
        profile.down_fraction = 0.80;
        profile.duration_log_mean = std::log(20.0);
        profile.duration_log_std = 0.8;
        break;
    case kYouTube:
        // Video streaming: bursty ~2.4 s chunks of full-size packets.
        profile.handshake_sizes = {820.0, 1460.0, 640.0, 1430.0, 1020.0, 1360.0};
        profile.burst_period = 2.4;
        profile.burst_packets = 130.0;
        profile.burst_width = 0.45;
        profile.burst_sizes = {{1490.0, 20.0, 0.88}, {900.0, 200.0, 0.12}};
        profile.chatter_rate = 0.8;
        profile.down_fraction = 0.92;
        profile.duration_log_mean = std::log(80.0);
        profile.duration_log_std = 0.5;
        break;
    default:
        throw std::out_of_range("ucdavis19_profile: class index");
    }

    if (!human_shift) {
        return profile;
    }

    // --- the data shift of Sec. 4.2.3 / App. D.1 -------------------------
    switch (class_index) {
    case kSearch:
        // Rectangle A: burst groups shifted to the right.
        profile.burst_positions = {0.13, 0.60};
        // Rectangle B: packet sizes no longer saturate the 1500 B bin; the
        // large component concentrates near flowpic row 28 (~1.3 kB) —
        // exactly the Fig. 8 KDE shift for Google search.
        profile.burst_sizes = {{1290.0, 60.0, 0.5}, {620.0, 150.0, 0.3}, {180.0, 80.0, 0.2}};
        // Human queries also change the opening exchange: it drifts towards
        // Google Doc's signature (the Doc/Search clash of Fig. 3).
        profile.handshake_sizes = {310.0, 1380.0, 160.0, 540.0, 210.0, 480.0}; // == Doc's
        break;
    case kMusic:
        // Rectangle C: the stripes disappear — human interaction (seeking,
        // pausing) smears the audio chunks into continuous traffic.
        profile.burst_period = 0.0;
        profile.burst_positions.clear();
        profile.chatter_rate = 14.0;
        profile.chatter_size_mean = 1460.0;
        profile.chatter_size_std = 60.0;
        // Seek/pause interaction also reshapes the opening exchange towards
        // a video-like (YouTube) signature.
        profile.handshake_sizes = {820.0, 1460.0, 640.0, 1430.0, 1020.0, 1360.0}; // == YouTube's
        break;
    case kDrive:
        // [33] reports up to 7% accuracy drop for Drive under human use
        // (renames, moves): lighter, wider transfers.
        profile.burst_packets = 155.0;
        profile.burst_width = 1.15;
        break;
    case kYouTube:
        // Mild: human seeking slightly stretches the chunk cadence.
        profile.burst_period = 3.0;
        break;
    case kDoc:
    default:
        // "accuracy of the Google search and Google document have not
        // changed significantly" [33] — Doc's own behaviour is stable (it is
        // the *search* shift that collides with Doc's signature).
        break;
    }
    return profile;
}

flow::Dataset make_ucdavis19(UcdavisPartition partition, const UcdavisOptions& options)
{
    if (!(options.samples_scale > 0.0 && options.samples_scale <= 1.0)) {
        throw std::invalid_argument("make_ucdavis19: samples_scale must be in (0, 1]");
    }
    flow::Dataset dataset;
    dataset.name = "ucdavis19/" + partition_name(partition);
    dataset.class_names = ucdavis19_class_names();

    const bool human = partition == UcdavisPartition::human;
    const std::size_t* counts = nullptr;
    double scale = 1.0;
    switch (partition) {
    case UcdavisPartition::pretraining:
        counts = kPretrainCounts;
        scale = options.samples_scale; // only the big partition is scaled
        break;
    case UcdavisPartition::script:
        counts = kScriptCounts;
        break;
    case UcdavisPartition::human:
        counts = kHumanCounts;
        break;
    }

    const std::size_t num_classes = dataset.class_names.size();
    for (std::size_t label = 0; label < num_classes; ++label) {
        const auto target = static_cast<std::size_t>(
            std::max(1.0, std::round(static_cast<double>(counts[label]) * scale)));
        util::Rng rng(util::mix_seed(options.seed, static_cast<std::uint64_t>(partition), label));
        const auto profile = ucdavis19_profile(label, human);
        std::vector<flow::Flow> flows;
        flows.reserve(target);
        for (std::size_t i = 0; i < target; ++i) {
            if (rng.bernoulli(options.atypical_fraction)) {
                // Behavioural overlap: borrow another class's burst timing
                // while keeping this class's packet sizes and handshake.
                const auto other = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(num_classes) - 2));
                const auto donor_label = other >= label ? other + 1 : other;
                const auto donor = ucdavis19_profile(donor_label, human);
                auto blended = profile;
                blended.burst_positions = donor.burst_positions;
                blended.burst_period = donor.burst_period;
                blended.burst_packets = donor.burst_packets;
                blended.burst_width = donor.burst_width;
                blended.chatter_rate = donor.chatter_rate;
                flows.push_back(generate_flow(blended, label, rng));
            } else {
                flows.push_back(generate_flow(profile, label, rng));
            }
        }
        dataset.flows.insert(dataset.flows.end(), std::make_move_iterator(flows.begin()),
                             std::make_move_iterator(flows.end()));
    }
    return dataset;
}

} // namespace fptc::trafficgen
