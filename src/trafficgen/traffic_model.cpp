#include "fptc/trafficgen/traffic_model.hpp"

#include <algorithm>
#include <cmath>

namespace fptc::trafficgen {

namespace {

constexpr double kMinPacketSize = 40.0;

[[nodiscard]] int sample_size(const std::vector<SizeComponent>& mixture, util::Rng& rng)
{
    if (mixture.empty()) {
        return 1500;
    }
    std::vector<double> weights;
    weights.reserve(mixture.size());
    for (const auto& component : mixture) {
        weights.push_back(component.weight);
    }
    const auto& chosen = mixture[rng.categorical(weights)];
    const double size = rng.normal(chosen.mean, chosen.stddev);
    return static_cast<int>(
        std::clamp(size, kMinPacketSize, static_cast<double>(flow::kMaxPacketSize)));
}

void emit_burst(std::vector<flow::Packet>& packets, const ClassProfile& profile, double center,
                double horizon, double volume_factor, util::Rng& rng)
{
    const double packet_mean = profile.burst_packets * volume_factor *
                               rng.lognormal(0.0, profile.burst_packets_jitter);
    const int count = std::max(1, rng.poisson(packet_mean));
    // A burst is an ordered packet train: back-to-back packets with
    // exponential micro-gaps whose mean is class-characteristic (set by the
    // burst width / packet count).  Consecutive-window sampling (Rezaei &
    // Liu's "incremental" subflows) sees this local spacing directly, which
    // is what makes it the strongest sampling policy (Table 9).
    const double gap_mean = std::max(1e-4, 2.0 * profile.burst_width / std::max(1, count));
    double t = center - profile.burst_width + rng.normal(0.0, 0.25 * profile.burst_width);
    for (int i = 0; i < count; ++i) {
        t += rng.exponential(1.0 / gap_mean);
        if (t < 0.0 || t > horizon) {
            continue;
        }
        flow::Packet packet;
        packet.timestamp = t;
        packet.size = sample_size(profile.burst_sizes, rng);
        packet.direction =
            rng.bernoulli(profile.down_fraction) ? flow::Direction::downstream
                                                 : flow::Direction::upstream;
        packets.push_back(packet);
    }
}

} // namespace

flow::Flow generate_flow(const ClassProfile& profile, std::size_t label, util::Rng& rng)
{
    flow::Flow result;
    result.label = label;

    const double duration =
        std::clamp(rng.lognormal(profile.duration_log_mean, profile.duration_log_std), 0.3, 300.0);
    const double horizon = std::min(duration, profile.window);
    const double volume_factor = rng.lognormal(0.0, profile.rate_jitter);

    // Opening handshake: ordered, alternating directions, tight spacing.
    {
        double t = rng.uniform(0.0, 0.01);
        bool upstream = true;
        for (const double size : profile.handshake_sizes) {
            flow::Packet packet;
            packet.timestamp = t;
            packet.size = static_cast<int>(std::clamp(rng.normal(size, 0.03 * size),
                                                      kMinPacketSize,
                                                      static_cast<double>(flow::kMaxPacketSize)));
            packet.direction =
                upstream ? flow::Direction::upstream : flow::Direction::downstream;
            result.packets.push_back(packet);
            upstream = !upstream;
            t += rng.exponential(1.0 / profile.handshake_gap);
        }
    }

    // Fixed bursts (positions are window fractions).
    for (const double position : profile.burst_positions) {
        const double center = position * profile.window +
                              rng.normal(0.0, 0.15 * profile.window * 0.05);
        if (center <= horizon) {
            emit_burst(result.packets, profile, center, horizon, volume_factor, rng);
        }
    }

    // Periodic burst train.
    if (profile.burst_period > 0.0) {
        double t = rng.uniform(0.0, profile.burst_phase_jitter * profile.burst_period);
        while (t <= horizon) {
            emit_burst(result.packets, profile, t, horizon, volume_factor, rng);
            const double jitter = rng.lognormal(0.0, profile.burst_period_jitter);
            t += profile.burst_period * jitter;
        }
    }

    // Background chatter.
    const int chatter_count = rng.poisson(profile.chatter_rate * horizon * volume_factor);
    for (int i = 0; i < chatter_count; ++i) {
        flow::Packet packet;
        packet.timestamp = rng.uniform(0.0, horizon);
        const double size = rng.normal(profile.chatter_size_mean, profile.chatter_size_std);
        packet.size = static_cast<int>(
            std::clamp(size, kMinPacketSize, static_cast<double>(flow::kMaxPacketSize)));
        packet.direction =
            rng.bernoulli(0.5) ? flow::Direction::downstream : flow::Direction::upstream;
        result.packets.push_back(packet);
    }

    // Guarantee a non-empty flow (a lone handshake packet).
    if (result.packets.empty()) {
        flow::Packet packet;
        packet.timestamp = 0.0;
        packet.size = 60;
        packet.direction = flow::Direction::upstream;
        result.packets.push_back(packet);
    }

    // Bare ACKs in the reverse direction of data packets (MIRAGE curation
    // removes these; generating them makes that step meaningful).
    if (profile.ack_fraction > 0.0) {
        std::vector<flow::Packet> acks;
        for (const auto& packet : result.packets) {
            if (rng.bernoulli(profile.ack_fraction)) {
                flow::Packet ack;
                ack.timestamp = packet.timestamp + rng.uniform(0.0005, 0.02);
                ack.size = 40;
                ack.direction = packet.direction == flow::Direction::downstream
                                    ? flow::Direction::upstream
                                    : flow::Direction::downstream;
                ack.is_ack = true;
                acks.push_back(ack);
            }
        }
        result.packets.insert(result.packets.end(), acks.begin(), acks.end());
    }

    std::sort(result.packets.begin(), result.packets.end(),
              [](const flow::Packet& a, const flow::Packet& b) { return a.timestamp < b.timestamp; });
    return result;
}

std::vector<flow::Flow> generate_flows(const ClassProfile& profile, std::size_t label,
                                       std::size_t count, util::Rng& rng)
{
    std::vector<flow::Flow> flows;
    flows.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        flows.push_back(generate_flow(profile, label, rng));
    }
    return flows;
}

ClassProfile make_mobile_app_profile(std::uint64_t dataset_seed, std::size_t class_index,
                                     bool long_flows)
{
    util::Rng rng(util::mix_seed(dataset_seed, class_index, 0xAB));
    ClassProfile profile;
    profile.name = "app-" + std::to_string(class_index);

    // Mobile apps cluster around a handful of traffic archetypes (REST
    // chatter, media streams, CDN downloads, telemetry, ...): apps sharing an
    // archetype differ only by small offsets, which is what makes mobile-app
    // classification genuinely hard (paper Table 8: 60-94% F1, not ~100%).
    const std::size_t archetype = class_index % 5;
    util::Rng arche_rng(util::mix_seed(dataset_seed, archetype, 0xCE));

    // Shared archetype bases, small app-specific offsets.
    const double base_small = arche_rng.uniform(120.0, 500.0);
    const double base_large = arche_rng.uniform(700.0, 1450.0);
    const double base_weight = arche_rng.uniform(0.35, 0.65);
    const double base_period = arche_rng.bernoulli(0.6) ? arche_rng.uniform(1.0, 4.0) : 0.0;

    profile.handshake_sizes = {base_small + rng.uniform(-90.0, 90.0),
                               base_large + rng.uniform(-120.0, 120.0),
                               base_small * 0.7 + rng.uniform(-70.0, 70.0),
                               base_large * 0.8 + rng.uniform(-120.0, 120.0)};

    // Every app starts with a request/response exchange near t=0.
    profile.burst_positions = {0.0};
    profile.burst_packets = rng.uniform(4.0, 14.0);
    profile.burst_width = rng.uniform(0.1, 0.4);

    if (base_period > 0.0) {
        profile.burst_period = base_period * rng.uniform(0.85, 1.15);
        profile.burst_packets_jitter = rng.uniform(0.3, 0.7);
    }

    SizeComponent small;
    small.mean = base_small + rng.uniform(-110.0, 110.0);
    small.stddev = rng.uniform(50.0, 130.0);
    small.weight = base_weight + rng.uniform(-0.15, 0.15);
    SizeComponent large;
    large.mean = base_large + rng.uniform(-160.0, 160.0);
    large.stddev = rng.uniform(50.0, 160.0);
    large.weight = 1.0 - small.weight;
    profile.burst_sizes = {small, large};

    profile.chatter_rate = rng.uniform(0.3, 1.5);
    profile.chatter_size_mean = rng.uniform(90.0, 250.0);
    profile.down_fraction = rng.uniform(0.6, 0.9);
    profile.ack_fraction = rng.uniform(0.15, 0.45);
    profile.rate_jitter = 0.55; // strong per-flow volume variation

    if (long_flows) {
        // Video-meeting apps (MIRAGE-22): all essentially RTP media streams;
        // app identity is a subtle rate/size shading on a shared archetype.
        profile.chatter_rate = 30.0 + 8.0 * archetype + rng.uniform(-4.0, 4.0);
        profile.chatter_size_mean = 450.0 + 160.0 * (archetype % 3) + rng.uniform(-60.0, 60.0);
        profile.chatter_size_std = rng.uniform(120.0, 260.0);
        profile.duration_log_mean = std::log(rng.uniform(30.0, 120.0));
        profile.duration_log_std = 0.5;
        if (profile.burst_period > 0.0) {
            profile.burst_period = rng.uniform(0.5, 2.0);
        }
    } else {
        // Short interactive flows (MIRAGE-19 averages ~20 packets): sparse
        // flowpics with only a handful of populated cells.
        profile.duration_log_mean = std::log(rng.uniform(0.8, 4.0));
        profile.duration_log_std = rng.uniform(0.8, 1.2);
    }
    return profile;
}

} // namespace fptc::trafficgen
