#include "fptc/trafficgen/mobile.hpp"

#include "fptc/flow/filters.hpp"
#include "fptc/trafficgen/traffic_model.hpp"
#include "fptc/util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fptc::trafficgen {

namespace {

/// Scale a paper flow count, keeping at least one flow.
[[nodiscard]] std::size_t scaled(std::size_t paper_count, double scale)
{
    return static_cast<std::size_t>(
        std::max(1.0, std::round(static_cast<double>(paper_count) * scale)));
}

/// Background-traffic profile (netd daemon, SSDP, Android gms, ...): short
/// bursts of small packets, direction-balanced.
[[nodiscard]] ClassProfile background_profile(std::uint64_t seed)
{
    util::Rng rng(seed);
    ClassProfile profile;
    profile.name = "background";
    profile.burst_positions = {0.0};
    profile.burst_packets = rng.uniform(3.0, 12.0);
    profile.burst_width = 0.1;
    profile.burst_sizes = {{120.0, 60.0, 0.8}, {400.0, 120.0, 0.2}};
    profile.chatter_rate = rng.uniform(0.5, 2.0);
    profile.chatter_size_mean = 100.0;
    profile.down_fraction = 0.5;
    profile.duration_log_mean = std::log(2.0);
    profile.duration_log_std = 0.8;
    return profile;
}

/// Append `count` flows of `profile` with the given label.  With
/// probability `blend_fraction` a flow borrows the burst/chatter behaviour
/// of a random donor profile while keeping its own opening exchange —
/// emulating the label noise of netstat-based ground truth.
void append_class(flow::Dataset& dataset, const ClassProfile& profile, std::size_t label,
                  std::size_t count, util::Rng& rng,
                  const std::vector<ClassProfile>& donors = {}, double blend_fraction = 0.0,
                  bool background = false)
{
    for (std::size_t i = 0; i < count; ++i) {
        flow::Flow generated;
        if (!donors.empty() && donors.size() > 1 && rng.bernoulli(blend_fraction)) {
            const auto donor_index = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(donors.size()) - 1));
            auto blended = profile;
            const auto& donor = donors[donor_index];
            blended.burst_positions = donor.burst_positions;
            blended.burst_period = donor.burst_period;
            blended.burst_packets = donor.burst_packets;
            blended.burst_sizes = donor.burst_sizes;
            blended.chatter_rate = donor.chatter_rate;
            blended.chatter_size_mean = donor.chatter_size_mean;
            generated = generate_flow(blended, label, rng);
        } else {
            generated = generate_flow(profile, label, rng);
        }
        generated.background = background;
        dataset.flows.push_back(std::move(generated));
    }
}

/// Shared curation pipeline of Sec. 3.4 for the MIRAGE datasets.
[[nodiscard]] flow::Dataset curate_mirage(flow::Dataset dataset, std::size_t min_packets,
                                          std::size_t min_class_samples)
{
    dataset = flow::remove_ack_packets(std::move(dataset));
    dataset = flow::remove_background_flows(std::move(dataset));
    dataset = flow::filter_min_packets(std::move(dataset), min_packets);
    dataset = flow::drop_small_classes(std::move(dataset), min_class_samples);
    return dataset;
}

} // namespace

std::size_t scaled_min_class_samples(const MobileGenOptions& options)
{
    return std::max<std::size_t>(10, scaled(100, options.samples_scale));
}

// ---------------------------------------------------------------- MIRAGE-19

flow::Dataset make_mirage19_raw(const MobileGenOptions& options)
{
    if (!(options.samples_scale > 0.0 && options.samples_scale <= 1.0)) {
        throw std::invalid_argument("make_mirage19_raw: bad samples_scale");
    }
    constexpr std::size_t kClasses = 20;
    // Paper Table 2 (no filter): 122,007 flows, min 1,986, max 11,737.
    constexpr std::size_t kMinCount = 1986;
    constexpr std::size_t kMaxCount = 11737;

    flow::Dataset dataset;
    dataset.name = "mirage19";
    for (std::size_t c = 0; c < kClasses; ++c) {
        dataset.class_names.push_back("mirage19-app-" + std::to_string(c));
    }
    std::vector<ClassProfile> profiles;
    profiles.reserve(kClasses);
    for (std::size_t c = 0; c < kClasses; ++c) {
        profiles.push_back(make_mobile_app_profile(options.seed + 19, c, /*long_flows=*/false));
    }
    for (std::size_t c = 0; c < kClasses; ++c) {
        // Convex count profile between min and max reproduces rho ~ 5.9.
        const double f = static_cast<double>(c) / static_cast<double>(kClasses - 1);
        const auto paper_count = static_cast<std::size_t>(
            kMinCount + (kMaxCount - kMinCount) * std::pow(f, 2.2));
        const auto count = scaled(paper_count, options.samples_scale);

        util::Rng rng(util::mix_seed(options.seed, 19, c));
        append_class(dataset, profiles[c], c, count, rng, profiles, options.blend_fraction);

        // ~8% additional background flows captured alongside the target app.
        const auto bg_count = std::max<std::size_t>(1, count / 12);
        append_class(dataset, background_profile(util::mix_seed(options.seed, 19, c, 99)), c,
                     bg_count, rng, {}, 0.0, /*background=*/true);
    }
    return dataset;
}

flow::Dataset make_mirage19(const MobileGenOptions& options)
{
    auto dataset = curate_mirage(make_mirage19_raw(options), 10, scaled_min_class_samples(options));
    dataset.name = "mirage19 (>10pkts)";
    return dataset;
}

// ---------------------------------------------------------------- MIRAGE-22

flow::Dataset make_mirage22_raw(const MobileGenOptions& options)
{
    if (!(options.samples_scale > 0.0 && options.samples_scale <= 1.0)) {
        throw std::invalid_argument("make_mirage22_raw: bad samples_scale");
    }
    constexpr std::size_t kClasses = 9;
    // Paper Table 2 (no filter): 59,071 flows, min 2,252, max 18,882.
    constexpr std::size_t kMinCount = 2252;
    constexpr std::size_t kMaxCount = 18882;

    flow::Dataset dataset;
    dataset.name = "mirage22";
    for (std::size_t c = 0; c < kClasses; ++c) {
        dataset.class_names.push_back("mirage22-meet-" + std::to_string(c));
    }
    std::vector<ClassProfile> profiles;
    profiles.reserve(kClasses);
    for (std::size_t c = 0; c < kClasses; ++c) {
        profiles.push_back(make_mobile_app_profile(options.seed + 22, c, /*long_flows=*/true));
    }
    for (std::size_t c = 0; c < kClasses; ++c) {
        const double f = static_cast<double>(c) / static_cast<double>(kClasses - 1);
        const auto paper_count = static_cast<std::size_t>(
            kMinCount + (kMaxCount - kMinCount) * std::pow(f, 2.6));
        const auto count = scaled(paper_count, options.samples_scale);

        util::Rng rng(util::mix_seed(options.seed, 22, c));
        append_class(dataset, profiles[c], c, count, rng, profiles, options.blend_fraction);

        const auto bg_count = std::max<std::size_t>(1, count / 15);
        append_class(dataset, background_profile(util::mix_seed(options.seed, 22, c, 99)), c,
                     bg_count, rng, {}, 0.0, /*background=*/true);
    }
    return dataset;
}

flow::Dataset make_mirage22(const MobileGenOptions& options, std::size_t min_packets)
{
    auto dataset =
        curate_mirage(make_mirage22_raw(options), min_packets, scaled_min_class_samples(options));
    dataset.name = "mirage22 (>" + std::to_string(min_packets) + "pkts)";
    return dataset;
}

// ------------------------------------------------------------ UTMOBILENET21

flow::Dataset make_utmobilenet21_raw(const MobileGenOptions& options)
{
    if (!(options.samples_scale > 0.0 && options.samples_scale <= 1.0)) {
        throw std::invalid_argument("make_utmobilenet21_raw: bad samples_scale");
    }
    constexpr std::size_t kClasses = 17;
    flow::Dataset dataset;
    dataset.name = "utmobilenet21";
    for (std::size_t c = 0; c < kClasses; ++c) {
        dataset.class_names.push_back("utmobilenet-app-" + std::to_string(c));
    }

    // Donor pool for behavioural blending (built from the populous classes).
    std::vector<ClassProfile> donor_profiles;
    for (std::size_t c = 7; c < kClasses; ++c) {
        donor_profiles.push_back(make_mobile_app_profile(options.seed + 21, c, false));
    }

    // Paper Table 2: 34,378 flows, min 159, max 5,591 (rho 35.2); after
    // curation only 10 of the 17 classes survive.  We mirror that with 7
    // deliberately rare-and-short classes and 10 populous ones.
    for (std::size_t c = 0; c < kClasses; ++c) {
        const bool rare = c < 7;
        std::size_t paper_count = 0;
        if (rare) {
            paper_count = 159 + c * 35; // 159..369
        } else {
            const double f = static_cast<double>(c - 7) / 9.0;
            paper_count = static_cast<std::size_t>(1000 + 4591 * std::pow(f, 1.8));
        }
        const auto count = scaled(paper_count, options.samples_scale);

        auto profile = make_mobile_app_profile(options.seed + 21, c, /*long_flows=*/false);
        // Medium-length flows (paper: 664 packets per flow on average before
        // filtering): scale up activity relative to MIRAGE-19.
        profile.chatter_rate *= 6.0;
        profile.burst_packets *= 2.0;
        profile.duration_log_mean = std::log(10.0);
        if (rare) {
            // Rare classes are also short-flowed so the >10pkts filter prunes
            // them below the class-size threshold (17 -> ~10 classes).
            profile.duration_log_mean = std::log(0.8);
            profile.chatter_rate = 0.5;
            profile.burst_packets = std::min(profile.burst_packets, 6.0);
        }

        // "4-into-1": four collection partitions with mild per-partition
        // behavioural jitter, collated into one dataset (Sec. 3.4).
        constexpr double kPartitionShare[4] = {0.25, 0.35, 0.25, 0.15};
        for (std::size_t part = 0; part < 4; ++part) {
            util::Rng rng(util::mix_seed(options.seed, 21, c, part));
            auto partition_profile = profile;
            partition_profile.chatter_rate *= rng.uniform(0.8, 1.25);
            partition_profile.burst_packets *= rng.uniform(0.85, 1.2);
            const auto part_count = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::round(kPartitionShare[part] *
                                                       static_cast<double>(count))));
            append_class(dataset, partition_profile, c, part_count, rng, donor_profiles,
                         options.blend_fraction);
        }
    }
    return dataset;
}

flow::Dataset make_utmobilenet21(const MobileGenOptions& options)
{
    auto dataset = make_utmobilenet21_raw(options);
    dataset = flow::filter_min_packets(std::move(dataset), 10);
    dataset = flow::drop_small_classes(std::move(dataset), scaled_min_class_samples(options));
    dataset.name = "utmobilenet21 (>10pkts)";
    return dataset;
}

} // namespace fptc::trafficgen
