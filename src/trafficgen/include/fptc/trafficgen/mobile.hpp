// Synthetic stand-ins for the three replication datasets of Sec. 4.5:
// MIRAGE-19 (20 mobile apps, very short flows), MIRAGE-22 (9 video-meeting
// apps, very long flows) and UTMOBILENET21 (17 apps in 4 collated
// partitions, heavy imbalance).
//
// Class behaviours are drawn procedurally from wide priors (see
// make_mobile_app_profile) so classes overlap realistically; per-class flow
// counts follow the paper's Table 2 (scaled by samples_scale).  The raw
// builders include bare TCP ACKs and background-traffic flows so the
// curation steps of Sec. 3.4 ("first removed TCP ACK packets ... then
// discarded flows related to background traffic ... filter out flows with
// less than 10 packets and remove classes with less than 100 samples") do
// real work; the curated builders apply exactly those steps.
#pragma once

#include "fptc/flow/dataset.hpp"

#include <cstdint>

namespace fptc::trafficgen {

/// Generation options shared by the three mobile datasets.
struct MobileGenOptions {
    /// Scale factor on the paper's per-class flow counts.  The curation
    /// thresholds (100-samples-per-class) scale along with it.
    double samples_scale = 0.05;
    std::uint64_t seed = 2023;
    /// Fraction of flows whose burst/chatter behaviour is borrowed from a
    /// random other class of the same dataset.  Mobile ground truth comes
    /// from netstat-based labeling of shared-socket traffic, which is
    /// intrinsically noisy; this keeps achievable F1 in the paper's 60-95%
    /// band instead of a synthetic 100%.
    double blend_fraction = 0.10;
};

/// Scaled equivalent of the paper's "remove classes with less than 100
/// samples" threshold (never below 10).
[[nodiscard]] std::size_t scaled_min_class_samples(const MobileGenOptions& options);

// --- MIRAGE-19: 20 Android apps, mean flow length ~20 packets ------------
[[nodiscard]] flow::Dataset make_mirage19_raw(const MobileGenOptions& options = {});
/// Curated: ACK removal, background removal, >10 packets, small classes dropped.
[[nodiscard]] flow::Dataset make_mirage19(const MobileGenOptions& options = {});

// --- MIRAGE-22: 9 video-meeting apps, very long flows ---------------------
[[nodiscard]] flow::Dataset make_mirage22_raw(const MobileGenOptions& options = {});
/// Curated with a minimum-packet filter: pass 10 for the ">10pkts" variant
/// of Table 2/8.  For the ">1000pkts" variant the paper filters on whole
/// flow length; since we generate only the 15 s flowpic window, the
/// equivalent window-level threshold is scaled to 500 (see DESIGN.md).
[[nodiscard]] flow::Dataset make_mirage22(const MobileGenOptions& options = {},
                                          std::size_t min_packets = 10);

/// Window-level threshold standing in for the paper's ">1000pkts" filter.
inline constexpr std::size_t kMirage22LongFlowThreshold = 500;

// --- UTMOBILENET21: 17 apps, 4 partitions collated into one ---------------
[[nodiscard]] flow::Dataset make_utmobilenet21_raw(const MobileGenOptions& options = {});
/// Curated: >10 packets + small-class removal (17 -> ~10 classes as in the
/// paper's Table 2).
[[nodiscard]] flow::Dataset make_utmobilenet21(const MobileGenOptions& options = {});

} // namespace fptc::trafficgen
