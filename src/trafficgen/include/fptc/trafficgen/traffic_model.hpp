// Stochastic per-class traffic models.
//
// The paper's datasets are real captures we cannot redistribute; this module
// is the documented substitution (DESIGN.md): every class is a generative
// model over packet time series whose flowpic signature matches the
// qualitative structure the paper reports (Fig. 4's per-class average
// flowpics: video burst stripes, search request bursts near t=0 and mid-
// window, music audio-chunk stripes, bulk-upload blocks, keystroke chatter).
//
// A ClassProfile describes: (i) burst placement — fixed positions within the
// 15 s window and/or a periodic burst train, (ii) the packet-size mixture
// inside bursts, (iii) low-rate background "chatter", and (iv) flow-level
// attributes (duration, direction split, bare-ACK density for the MIRAGE
// curation).  All randomness flows through the caller's Rng.
#pragma once

#include "fptc/flow/packet.hpp"
#include "fptc/util/rng.hpp"

#include <string>
#include <vector>

namespace fptc::trafficgen {

/// One Gaussian component of a packet-size mixture.
struct SizeComponent {
    double mean = 1500.0;   ///< bytes
    double stddev = 50.0;   ///< bytes
    double weight = 1.0;    ///< relative mixture weight
};

/// Generative description of one traffic class.
struct ClassProfile {
    std::string name;

    // --- connection handshake ---------------------------------------------
    /// Class-specific opening exchange: packet sizes emitted in order at the
    /// very start of the flow, alternating up/down starting upstream (think
    /// TLS ClientHello / ServerHello / first request).  These leading packets
    /// make the early time-series representation (Table 3's 3x10 features)
    /// informative, as it is for real applications.
    std::vector<double> handshake_sizes;
    double handshake_gap = 0.006; ///< mean gap between handshake packets (s)

    // --- burst structure ------------------------------------------------
    /// Fixed burst centers as fractions of the 15 s window (e.g. Google
    /// search: a request burst at ~0 and another around the middle).
    std::vector<double> burst_positions;
    /// Period of a repeating burst train in seconds; 0 disables it (YouTube
    /// video chunks ~2-3 s, Google music audio chunks ~1 s).
    double burst_period = 0.0;
    double burst_period_jitter = 0.10; ///< relative jitter applied per burst
    double burst_phase_jitter = 0.4;   ///< initial phase ~ U[0, jitter*period]
    double burst_packets = 50.0;       ///< mean packets per burst
    double burst_packets_jitter = 0.4; ///< lognormal sigma on per-flow burst size
    double burst_width = 0.25;         ///< temporal std-dev of a burst (seconds)
    std::vector<SizeComponent> burst_sizes;

    // --- background chatter ----------------------------------------------
    double chatter_rate = 1.0;        ///< packets per second, uniform over the flow
    double chatter_size_mean = 120.0; ///< bytes
    double chatter_size_std = 60.0;

    // --- flow-level attributes --------------------------------------------
    double duration_log_mean = 3.0;  ///< ln-seconds (lognormal duration)
    double duration_log_std = 0.6;
    double down_fraction = 0.8;      ///< probability a packet is downstream
    double ack_fraction = 0.0;       ///< bare ACKs added per data packet
    double rate_jitter = 0.35;       ///< lognormal sigma of a per-flow volume factor
    double window = 15.0;            ///< generation horizon in seconds
};

/// Sample one flow from the profile.  Packets are time-sorted, timestamps
/// start at >= 0 within the profile window, sizes are clamped to
/// [40, 1500].  `label` is stored on the returned flow.
[[nodiscard]] flow::Flow generate_flow(const ClassProfile& profile, std::size_t label,
                                       util::Rng& rng);

/// Sample `count` flows of the class.
[[nodiscard]] std::vector<flow::Flow> generate_flows(const ClassProfile& profile, std::size_t label,
                                                     std::size_t count, util::Rng& rng);

/// Derive a randomized "app-like" profile for procedurally generated mobile
/// datasets (MIRAGE / UTMOBILENET): class characteristics are drawn from
/// wide priors seeded by (dataset_seed, class_index) so that classes overlap
/// realistically but remain learnable.
[[nodiscard]] ClassProfile make_mobile_app_profile(std::uint64_t dataset_seed,
                                                   std::size_t class_index, bool long_flows);

} // namespace fptc::trafficgen
