// Scheduled distribution drift for generated traffic.
//
// The serve drift monitor needs an *input* whose distribution moves on a
// known schedule, so torture scenarios can assert "no alarm on stationary
// traffic" and "alarm within N flows of the scripted shift".  A
// DriftSchedule describes how a deterministic stream departs from its base
// class profiles as it progresses (progress = flow start time / arrival
// window, in [0, 1]):
//
//   * parameter shift — flows blend from the base profile toward a shifted
//     variant (the ucdavis19 human-partition profiles: the paper's own
//     script-vs-human drift), stepping at `at` or ramping linearly,
//   * unknown-class injection — a fraction of post-shift flows is drawn
//     from a profile outside the trained classes and labeled
//     `num_classes` (the open-set oracle),
//   * imbalance skew — class draw probabilities tilt geometrically
//     (weight s^c), bending the prediction-rate mix without touching any
//     single class's shape.
//
// All knobs come from FPTC_DRIFT_* environment variables (from_env), and
// everything downstream of the schedule stays seed-deterministic.
#pragma once

#include "fptc/trafficgen/traffic_model.hpp"

#include <cstdint>

namespace fptc::trafficgen {

struct DriftSchedule {
    enum class Mode { none, step, linear };

    Mode mode = Mode::none;    ///< FPTC_DRIFT_MODE: step | linear (unset = none)
    double at = 0.5;           ///< FPTC_DRIFT_AT: progress where the shift begins
    double magnitude = 1.0;    ///< FPTC_DRIFT_MAGNITUDE: full-drift blend weight [0, 1]
    double unknown_rate = 0.0; ///< FPTC_DRIFT_UNKNOWN: unknown-class rate after `at`
    double imbalance = 0.0;    ///< FPTC_DRIFT_IMBALANCE: geometric skew s in [0, 1); 0 = off

    /// Anything scheduled at all?  An inactive schedule must leave the
    /// consuming stream bit-identical to one built without it.
    [[nodiscard]] bool active() const noexcept
    {
        return mode != Mode::none || unknown_rate > 0.0 || imbalance > 0.0;
    }

    /// Blend weight toward the shifted profile at `progress` in [0, 1]:
    /// 0 before `at`; `magnitude` after it (step) or ramping to it (linear).
    [[nodiscard]] double shift_weight(double progress) const noexcept;

    /// Strictly validated FPTC_DRIFT_* knobs (throws util::EnvError).
    [[nodiscard]] static DriftSchedule from_env();
};

/// Interpolate two class profiles: scalar fields lerp by `t` in [0, 1];
/// structural vectors (handshake, burst placement, size mixture) switch
/// from `base` to `shifted` at t >= 0.5.
[[nodiscard]] ClassProfile blend_profiles(const ClassProfile& base, const ClassProfile& shifted,
                                          double t);

/// A profile deliberately *outside* the trained classes (a procedurally
/// generated mobile-app profile), for open-set injection.
[[nodiscard]] ClassProfile unknown_app_profile(std::uint64_t seed);

} // namespace fptc::trafficgen
