// Synthetic stand-in for the UCDAVIS19 dataset (Rezaei & Liu, 2019).
//
// UCDAVIS19 contains 5 Google-service classes in three pre-defined
// partitions (paper Table 2): `pretraining` (6,439 flows collected by
// scripts, 592-1,915 per class), `script` (150 flows, 30 per class) and
// `human` (83 flows, 15-20 per class, captured from real user interaction).
//
// The paper's central forensic finding (Sec. 4.2.3, Fig. 4, Fig. 8, App. D)
// is a *data shift* in the human partition: Google search bursts appear
// shifted right (rectangle A), its packet sizes no longer saturate the
// 1500 B bin but concentrate around flowpic row 28 (rectangle B), and
// Google music loses its periodic audio-chunk stripes (rectangle C).  The
// `human` builder injects exactly those distortions, which lets every
// downstream experiment reproduce the ~20% script-vs-human accuracy gap and
// the Google-search KDE shift.
#pragma once

#include "fptc/flow/dataset.hpp"
#include "fptc/trafficgen/traffic_model.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace fptc::trafficgen {

/// UCDAVIS19's three pre-defined partitions.
enum class UcdavisPartition { pretraining, script, human };

[[nodiscard]] std::string partition_name(UcdavisPartition partition);

/// Generation options.  samples_scale shrinks the per-class flow counts from
/// the paper's values (1.0 = full size; the default keeps the smallest class
/// above the 100-samples-per-class requirement of the split protocol while
/// staying laptop-friendly).
struct UcdavisOptions {
    double samples_scale = 0.2;
    std::uint64_t seed = 19;
    /// Fraction of flows whose *burst timing structure* is borrowed from a
    /// random other class while keeping the class's own packet sizes.  Real
    /// captures contain such behavioural overlap (a user idles on YouTube, a
    /// Doc session syncs a big image, ...); it puts a realistic ceiling below
    /// 100% on the achievable accuracy, matching the paper's 95-98% range on
    /// script/leftover.
    double atypical_fraction = 0.025;
};

/// The 5 service classes in a fixed order.
[[nodiscard]] const std::vector<std::string>& ucdavis19_class_names();

/// The generative profile of one class; `human_shift` selects the distorted
/// variants used by the human partition.
[[nodiscard]] ClassProfile ucdavis19_profile(std::size_t class_index, bool human_shift);

/// Build one partition.  Pretraining/script draw from the base profiles;
/// human draws from the shifted profiles.  Deterministic per (seed,
/// partition).
[[nodiscard]] flow::Dataset make_ucdavis19(UcdavisPartition partition,
                                           const UcdavisOptions& options = {});

} // namespace fptc::trafficgen
