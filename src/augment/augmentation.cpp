#include "fptc/augment/augmentation.hpp"

#include "fptc/augment/image.hpp"
#include "fptc/augment/time_series.hpp"

#include <stdexcept>

namespace fptc::augment {

std::string_view augmentation_name(AugmentationKind kind) noexcept
{
    switch (kind) {
    case AugmentationKind::none:
        return "No augmentation";
    case AugmentationKind::rotate:
        return "Rotate";
    case AugmentationKind::horizontal_flip:
        return "Horizontal flip";
    case AugmentationKind::color_jitter:
        return "Color jitter";
    case AugmentationKind::packet_loss:
        return "Packet loss";
    case AugmentationKind::time_shift:
        return "Time shift";
    case AugmentationKind::change_rtt:
        return "Change RTT";
    }
    return "unknown";
}

const std::vector<AugmentationKind>& all_augmentations()
{
    static const std::vector<AugmentationKind> kinds = {
        AugmentationKind::none,        AugmentationKind::rotate,
        AugmentationKind::horizontal_flip, AugmentationKind::color_jitter,
        AugmentationKind::packet_loss, AugmentationKind::time_shift,
        AugmentationKind::change_rtt,
    };
    return kinds;
}

flow::Flow Augmentation::transform_flow(const flow::Flow& input, util::Rng& /*rng*/) const
{
    return input;
}

flowpic::Flowpic Augmentation::transform_pic(flowpic::Flowpic pic, util::Rng& /*rng*/) const
{
    return pic;
}

flowpic::Flowpic Augmentation::augmented_flowpic(const flow::Flow& input,
                                                 const flowpic::FlowpicConfig& config,
                                                 util::Rng& rng) const
{
    if (is_time_series()) {
        const auto transformed = transform_flow(input, rng);
        return transform_pic(flowpic::Flowpic::from_flow(transformed, config), rng);
    }
    return transform_pic(flowpic::Flowpic::from_flow(input, config), rng);
}

std::unique_ptr<Augmentation> make_augmentation(AugmentationKind kind)
{
    switch (kind) {
    case AugmentationKind::none:
        return std::make_unique<NoAugmentation>();
    case AugmentationKind::rotate:
        return std::make_unique<Rotate>();
    case AugmentationKind::horizontal_flip:
        return std::make_unique<HorizontalFlip>();
    case AugmentationKind::color_jitter:
        return std::make_unique<ColorJitter>();
    case AugmentationKind::packet_loss:
        return std::make_unique<PacketLoss>();
    case AugmentationKind::time_shift:
        return std::make_unique<TimeShift>();
    case AugmentationKind::change_rtt:
        return std::make_unique<ChangeRtt>();
    }
    throw std::invalid_argument("make_augmentation: unknown kind");
}

} // namespace fptc::augment
