#include "fptc/augment/view_pair.hpp"

namespace fptc::augment {

ViewPairGenerator::ViewPairGenerator(AugmentationKind first, AugmentationKind second,
                                     flowpic::FlowpicConfig config)
    : first_(make_augmentation(first)), second_(make_augmentation(second)), config_(config)
{
}

flowpic::Flowpic ViewPairGenerator::view(const flow::Flow& input, util::Rng& rng) const
{
    const Augmentation* stage_a = first_.get();
    const Augmentation* stage_b = second_.get();
    if (rng.bernoulli(0.5)) {
        std::swap(stage_a, stage_b);
    }
    // Time-series stages must precede rasterization; within each family the
    // randomized (stage_a, stage_b) order decides who goes first.
    flow::Flow series = input;
    if (stage_a->is_time_series()) {
        series = stage_a->transform_flow(series, rng);
    }
    if (stage_b->is_time_series()) {
        series = stage_b->transform_flow(series, rng);
    }
    auto pic = flowpic::Flowpic::from_flow(series, config_);
    if (!stage_a->is_time_series()) {
        pic = stage_a->transform_pic(std::move(pic), rng);
    }
    if (!stage_b->is_time_series()) {
        pic = stage_b->transform_pic(std::move(pic), rng);
    }
    return pic;
}

std::pair<flowpic::Flowpic, flowpic::Flowpic> ViewPairGenerator::view_pair(const flow::Flow& input,
                                                                           util::Rng& rng) const
{
    auto first_view = view(input, rng);
    auto second_view = view(input, rng);
    return {std::move(first_view), std::move(second_view)};
}

} // namespace fptc::augment
