#include "fptc/augment/image.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace fptc::augment {

Rotate::Rotate(double max_degrees) : max_degrees_(max_degrees)
{
    if (!(max_degrees >= 0.0 && max_degrees <= 180.0)) {
        throw std::invalid_argument("Rotate: max_degrees must be in [0, 180]");
    }
}

flowpic::Flowpic Rotate::transform_pic(flowpic::Flowpic pic, util::Rng& rng) const
{
    const double degrees = rng.uniform(-max_degrees_, max_degrees_);
    const double radians = degrees * std::numbers::pi / 180.0;
    const double cos_t = std::cos(radians);
    const double sin_t = std::sin(radians);
    const std::size_t n = pic.resolution();
    const double center = (static_cast<double>(n) - 1.0) / 2.0;

    const auto source = pic.counts();
    std::vector<float> rotated(n * n, 0.0f);
    // Inverse mapping with bilinear interpolation: for each destination cell,
    // sample the source at the back-rotated coordinate.
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            const double y = static_cast<double>(r) - center;
            const double x = static_cast<double>(c) - center;
            const double src_x = cos_t * x + sin_t * y + center;
            const double src_y = -sin_t * x + cos_t * y + center;
            if (src_x < 0.0 || src_y < 0.0 || src_x > static_cast<double>(n - 1) ||
                src_y > static_cast<double>(n - 1)) {
                continue;
            }
            const auto x0 = static_cast<std::size_t>(src_x);
            const auto y0 = static_cast<std::size_t>(src_y);
            const auto x1 = std::min(x0 + 1, n - 1);
            const auto y1 = std::min(y0 + 1, n - 1);
            const double fx = src_x - static_cast<double>(x0);
            const double fy = src_y - static_cast<double>(y0);
            const double v00 = source[y0 * n + x0];
            const double v01 = source[y0 * n + x1];
            const double v10 = source[y1 * n + x0];
            const double v11 = source[y1 * n + x1];
            const double value = v00 * (1 - fx) * (1 - fy) + v01 * fx * (1 - fy) +
                                 v10 * (1 - fx) * fy + v11 * fx * fy;
            rotated[r * n + c] = static_cast<float>(value);
        }
    }
    return flowpic::Flowpic(n, std::move(rotated));
}

HorizontalFlip::HorizontalFlip(double probability) : probability_(probability)
{
    if (!(probability >= 0.0 && probability <= 1.0)) {
        throw std::invalid_argument("HorizontalFlip: probability must be in [0, 1]");
    }
}

flowpic::Flowpic HorizontalFlip::transform_pic(flowpic::Flowpic pic, util::Rng& rng) const
{
    if (!rng.bernoulli(probability_)) {
        return pic;
    }
    const std::size_t n = pic.resolution();
    auto counts = pic.counts();
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n / 2; ++c) {
            std::swap(counts[r * n + c], counts[r * n + (n - 1 - c)]);
        }
    }
    return pic;
}

ColorJitter::ColorJitter(double contrast, double brightness, double pixel_noise)
    : contrast_(contrast), brightness_(brightness), pixel_noise_(pixel_noise)
{
    if (!(contrast >= 0.0 && contrast < 1.0) || !(brightness >= 0.0) || !(pixel_noise >= 0.0)) {
        throw std::invalid_argument("ColorJitter: invalid strengths");
    }
}

flowpic::Flowpic ColorJitter::transform_pic(flowpic::Flowpic pic, util::Rng& rng) const
{
    auto counts = pic.counts();
    float max_count = 0.0f;
    for (const float v : counts) {
        max_count = std::max(max_count, v);
    }
    const double contrast = rng.uniform(1.0 - contrast_, 1.0 + contrast_);
    const double brightness = rng.uniform(-brightness_, brightness_) * static_cast<double>(max_count);
    for (auto& v : counts) {
        if (v <= 0.0f && brightness <= 0.0) {
            continue; // keep empty cells empty unless brightness is additive
        }
        const double noise = rng.uniform(1.0 - pixel_noise_, 1.0 + pixel_noise_);
        double value = static_cast<double>(v) * contrast * noise;
        if (v > 0.0f) {
            value += brightness;
        }
        v = static_cast<float>(std::max(0.0, value));
    }
    return pic;
}

} // namespace fptc::augment
