// Data augmentation framework.
//
// The paper benchmarks 7 strategies (Sec. 3.2): "Next to applying no
// augmentation, we adopted the 6 augmentations used in the Ref-Paper — 3
// packet time series transformations (Change RTT, Time Shift and Packet
// Loss) and 3 image transformations (Rotation, Horizontal Flip, and
// Colorjitter)".  Time-series transformations act on the packet series
// *before* the flowpic is computed; image transformations act on the
// finished flowpic.  Both are expressed through one polymorphic interface so
// the campaign code treats every strategy uniformly.
#pragma once

#include "fptc/flow/packet.hpp"
#include "fptc/flowpic/flowpic.hpp"
#include "fptc/util/rng.hpp"

#include <memory>
#include <string_view>
#include <vector>

namespace fptc::augment {

/// The 7 strategies of Tables 4/8 in their table order.
enum class AugmentationKind {
    none,
    rotate,
    horizontal_flip,
    color_jitter,
    packet_loss,
    time_shift,
    change_rtt,
};

/// Human-readable strategy name as printed in the paper's tables.
[[nodiscard]] std::string_view augmentation_name(AugmentationKind kind) noexcept;

/// All 7 kinds in table order (No augmentation first).
[[nodiscard]] const std::vector<AugmentationKind>& all_augmentations();

/// One augmentation strategy.  Stateless with respect to samples: all
/// randomness flows through the caller-provided Rng so campaigns stay
/// reproducible.
class Augmentation {
public:
    virtual ~Augmentation() = default;
    Augmentation() = default;
    Augmentation(const Augmentation&) = delete;
    Augmentation& operator=(const Augmentation&) = delete;

    [[nodiscard]] virtual AugmentationKind kind() const noexcept = 0;
    [[nodiscard]] std::string_view name() const noexcept { return augmentation_name(kind()); }

    /// True when this strategy transforms the packet series (Change RTT,
    /// Time shift, Packet loss).
    [[nodiscard]] virtual bool is_time_series() const noexcept { return false; }

    /// Transform the packet series.  Default: identity copy.
    [[nodiscard]] virtual flow::Flow transform_flow(const flow::Flow& input, util::Rng& rng) const;

    /// Transform a finished flowpic.  Default: identity pass-through.
    [[nodiscard]] virtual flowpic::Flowpic transform_pic(flowpic::Flowpic pic, util::Rng& rng) const;

    /// Full pipeline: apply the time-series stage (if any), rasterize, then
    /// apply the image stage (if any).
    [[nodiscard]] flowpic::Flowpic augmented_flowpic(const flow::Flow& input,
                                                     const flowpic::FlowpicConfig& config,
                                                     util::Rng& rng) const;
};

/// Factory for any of the 7 strategies (default hyper-parameters per the
/// paper: Change RTT alpha ~ U[0.5, 1.5], Time shift b ~ U[-1, 1] s, ...).
[[nodiscard]] std::unique_ptr<Augmentation> make_augmentation(AugmentationKind kind);

} // namespace fptc::augment
