// Packet time-series augmentations (Change RTT, Time shift, Packet loss).
//
// Hyper-parameters follow the quotes of the Ref-Paper reproduced in
// Sec. 4.4.1: "'Change RTT' by alpha ~ U[0.5, 1.5] together with Time Shift
// by b ~ U[-1, 1]".  Packet loss drops packets i.i.d. with a rate drawn per
// view.  All three operate on the packet series before rasterization, which
// is why the paper prefers them: they emulate genuine network phenomena
// (path RTT changes, clock offsets, loss) instead of image-space artifacts.
#pragma once

#include "fptc/augment/augmentation.hpp"

namespace fptc::augment {

/// Change RTT: rescale all inter-arrival gaps by a single factor
/// alpha ~ U[lo, hi], emulating a different round-trip time on the path.
class ChangeRtt final : public Augmentation {
public:
    explicit ChangeRtt(double alpha_lo = 0.5, double alpha_hi = 1.5);

    [[nodiscard]] AugmentationKind kind() const noexcept override
    {
        return AugmentationKind::change_rtt;
    }
    [[nodiscard]] bool is_time_series() const noexcept override { return true; }
    [[nodiscard]] flow::Flow transform_flow(const flow::Flow& input, util::Rng& rng) const override;

private:
    double alpha_lo_;
    double alpha_hi_;
};

/// Time shift: translate the whole series by b ~ U[lo, hi] seconds within the
/// flowpic window; packets shifted before t=0 are clamped out by the
/// rasterizer.
class TimeShift final : public Augmentation {
public:
    explicit TimeShift(double shift_lo = -1.0, double shift_hi = 1.0);

    [[nodiscard]] AugmentationKind kind() const noexcept override
    {
        return AugmentationKind::time_shift;
    }
    [[nodiscard]] bool is_time_series() const noexcept override { return true; }
    [[nodiscard]] flow::Flow transform_flow(const flow::Flow& input, util::Rng& rng) const override;

private:
    double shift_lo_;
    double shift_hi_;
};

/// Packet loss: drop each packet i.i.d. with probability p ~ U[lo, hi] drawn
/// once per view (at least one packet always survives).
class PacketLoss final : public Augmentation {
public:
    explicit PacketLoss(double rate_lo = 0.01, double rate_hi = 0.15);

    [[nodiscard]] AugmentationKind kind() const noexcept override
    {
        return AugmentationKind::packet_loss;
    }
    [[nodiscard]] bool is_time_series() const noexcept override { return true; }
    [[nodiscard]] flow::Flow transform_flow(const flow::Flow& input, util::Rng& rng) const override;

private:
    double rate_lo_;
    double rate_hi_;
};

} // namespace fptc::augment
