// Image-space augmentations (Rotation, Horizontal flip, Color jitter).
//
// These act on the rasterized flowpic, mirroring the computer-vision recipes
// the Ref-Paper borrowed.  The paper's ranking analysis (Sec. 4.3/4.5) finds
// them generally weaker than the time-series transformations — Rotate even
// hurts badly on MIRAGE-19 (Table 8) — which these implementations let the
// bench harnesses reproduce.
#pragma once

#include "fptc/augment/augmentation.hpp"

namespace fptc::augment {

/// Rotate the flowpic by an angle theta ~ U[-max_degrees, +max_degrees]
/// around its center (bilinear resampling, zero fill outside).
class Rotate final : public Augmentation {
public:
    explicit Rotate(double max_degrees = 10.0);

    [[nodiscard]] AugmentationKind kind() const noexcept override
    {
        return AugmentationKind::rotate;
    }
    [[nodiscard]] flowpic::Flowpic transform_pic(flowpic::Flowpic pic, util::Rng& rng) const override;

private:
    double max_degrees_;
};

/// Mirror the time axis with probability p (RandomHorizontalFlip).
class HorizontalFlip final : public Augmentation {
public:
    explicit HorizontalFlip(double probability = 0.5);

    [[nodiscard]] AugmentationKind kind() const noexcept override
    {
        return AugmentationKind::horizontal_flip;
    }
    [[nodiscard]] flowpic::Flowpic transform_pic(flowpic::Flowpic pic, util::Rng& rng) const override;

private:
    double probability_;
};

/// Brightness/contrast jitter on the count "intensities": every cell is
/// scaled by a global contrast factor c ~ U[1-s, 1+s], perturbed by a small
/// per-cell multiplicative noise, and shifted by a global brightness offset
/// proportional to the flowpic max.  Counts stay non-negative.
class ColorJitter final : public Augmentation {
public:
    explicit ColorJitter(double contrast = 0.3, double brightness = 0.1, double pixel_noise = 0.1);

    [[nodiscard]] AugmentationKind kind() const noexcept override
    {
        return AugmentationKind::color_jitter;
    }
    [[nodiscard]] flowpic::Flowpic transform_pic(flowpic::Flowpic pic, util::Rng& rng) const override;

private:
    double contrast_;
    double brightness_;
    double pixel_noise_;
};

/// The identity strategy ("No augmentation" rows of Tables 4/8).
class NoAugmentation final : public Augmentation {
public:
    [[nodiscard]] AugmentationKind kind() const noexcept override
    {
        return AugmentationKind::none;
    }
};

} // namespace fptc::augment
