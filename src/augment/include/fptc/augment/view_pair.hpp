// SimCLR view-pair generation.
//
// Section 4.4.1: "we selected to use 'Change RTT' ... together with Time
// Shift ... In each training step, a double batch of 32 unlabeled images is
// loaded after applying the two augmentations above" and, on the ambiguity
// of how to combine them, "we opted for applying the two transformations in
// random order for every image in a mini-batch".  ViewPairGenerator follows
// that choice: each view chains the two strategies in an independently
// shuffled order (time-series stages run before rasterization, image stages
// after — the only physically meaningful ordering across the two families).
#pragma once

#include "fptc/augment/augmentation.hpp"

#include <memory>
#include <utility>

namespace fptc::augment {

/// Generates pairs of augmented "views" of a flow for contrastive training.
class ViewPairGenerator {
public:
    /// Construct from two strategy kinds (defaults to the paper's pair:
    /// Change RTT + Time shift).
    ViewPairGenerator(AugmentationKind first = AugmentationKind::change_rtt,
                      AugmentationKind second = AugmentationKind::time_shift,
                      flowpic::FlowpicConfig config = {});

    /// Produce one augmented view: both strategies applied, order randomized.
    [[nodiscard]] flowpic::Flowpic view(const flow::Flow& input, util::Rng& rng) const;

    /// Produce the (anchor, positive) pair SimCLR contrasts.
    [[nodiscard]] std::pair<flowpic::Flowpic, flowpic::Flowpic> view_pair(const flow::Flow& input,
                                                                          util::Rng& rng) const;

    [[nodiscard]] const flowpic::FlowpicConfig& config() const noexcept { return config_; }
    [[nodiscard]] AugmentationKind first_kind() const noexcept { return first_->kind(); }
    [[nodiscard]] AugmentationKind second_kind() const noexcept { return second_->kind(); }

private:
    std::unique_ptr<Augmentation> first_;
    std::unique_ptr<Augmentation> second_;
    flowpic::FlowpicConfig config_;
};

} // namespace fptc::augment
