#include "fptc/augment/time_series.hpp"

#include <stdexcept>

namespace fptc::augment {

ChangeRtt::ChangeRtt(double alpha_lo, double alpha_hi) : alpha_lo_(alpha_lo), alpha_hi_(alpha_hi)
{
    if (!(alpha_lo > 0.0 && alpha_hi >= alpha_lo)) {
        throw std::invalid_argument("ChangeRtt: need 0 < alpha_lo <= alpha_hi");
    }
}

flow::Flow ChangeRtt::transform_flow(const flow::Flow& input, util::Rng& rng) const
{
    const double alpha = rng.uniform(alpha_lo_, alpha_hi_);
    flow::Flow output = input;
    if (output.packets.empty()) {
        return output;
    }
    const double origin = output.packets.front().timestamp;
    for (auto& packet : output.packets) {
        packet.timestamp = origin + alpha * (packet.timestamp - origin);
    }
    return output;
}

TimeShift::TimeShift(double shift_lo, double shift_hi) : shift_lo_(shift_lo), shift_hi_(shift_hi)
{
    if (!(shift_hi >= shift_lo)) {
        throw std::invalid_argument("TimeShift: need shift_lo <= shift_hi");
    }
}

flow::Flow TimeShift::transform_flow(const flow::Flow& input, util::Rng& rng) const
{
    const double shift = rng.uniform(shift_lo_, shift_hi_);
    flow::Flow output = input;
    for (auto& packet : output.packets) {
        packet.timestamp += shift;
    }
    // Packets pushed before the window start are out of the representation;
    // the rasterizer skips negative times, but dropping them here keeps the
    // series a valid monotone trace for any downstream consumer.
    std::erase_if(output.packets, [](const flow::Packet& p) { return p.timestamp < 0.0; });
    return output;
}

PacketLoss::PacketLoss(double rate_lo, double rate_hi) : rate_lo_(rate_lo), rate_hi_(rate_hi)
{
    if (!(rate_lo >= 0.0 && rate_hi >= rate_lo && rate_hi < 1.0)) {
        throw std::invalid_argument("PacketLoss: need 0 <= rate_lo <= rate_hi < 1");
    }
}

flow::Flow PacketLoss::transform_flow(const flow::Flow& input, util::Rng& rng) const
{
    const double rate = rng.uniform(rate_lo_, rate_hi_);
    flow::Flow output;
    output.label = input.label;
    output.background = input.background;
    output.packets.reserve(input.packets.size());
    for (const auto& packet : input.packets) {
        if (!rng.bernoulli(rate)) {
            output.packets.push_back(packet);
        }
    }
    if (output.packets.empty() && !input.packets.empty()) {
        output.packets.push_back(input.packets.front());
    }
    return output;
}

} // namespace fptc::augment
