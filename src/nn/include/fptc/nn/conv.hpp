// Convolution and pooling layers.
//
// LeNet-5 (App. C listing 1) needs only valid (unpadded) stride-1
// convolutions with square kernels and 2x2 max pooling; the implementations
// are direct loops — at 32x32/64x64 flowpic resolutions that is plenty fast
// on a CPU, and for the 1500x1500 "full" architecture the model factory
// inserts an aggressive input pooling stage first (see models.hpp).
#pragma once

#include "fptc/nn/layer.hpp"

#include <cstdint>
#include <vector>

namespace fptc::nn {

/// 2-d convolution, stride `stride`, no padding:
/// input [N, C_in, H, W] -> output [N, C_out, (H-k)/stride+1, (W-k)/stride+1].
class Conv2d final : public Layer {
public:
    Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_size,
           std::uint64_t seed, std::size_t stride = 1);

    [[nodiscard]] std::string name() const override { return "Conv2d"; }
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }

    [[nodiscard]] std::size_t in_channels() const noexcept { return in_channels_; }
    [[nodiscard]] std::size_t out_channels() const noexcept { return out_channels_; }
    [[nodiscard]] std::size_t kernel_size() const noexcept { return kernel_size_; }

private:
    std::size_t in_channels_;
    std::size_t out_channels_;
    std::size_t kernel_size_;
    std::size_t stride_;
    Parameter weight_; ///< [C_out, C_in, k, k]
    Parameter bias_;   ///< [C_out]
    Tensor input_cache_;
};

/// Max pooling with square window == stride (LeNet uses 2x2/2).
class MaxPool2d final : public Layer {
public:
    explicit MaxPool2d(std::size_t window);

    [[nodiscard]] std::string name() const override { return "MaxPool2d"; }
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;

private:
    std::size_t window_;
    Shape input_shape_;
    std::vector<std::size_t> argmax_; ///< flat source index per output element
};

} // namespace fptc::nn
