// Gradient-descent optimizers: SGD (with momentum) and Adam.
//
// The paper trains with a "static learning rate at 0.001" for supervised
// runs and SimCLR pre-training and 0.01 for fine-tuning.  Adam is the
// de-facto optimizer of the released tcbench framework and converges in far
// fewer epochs on CPU, so the campaign defaults use it; plain SGD is kept
// for the ablation benches and tests.
#pragma once

#include "fptc/nn/layer.hpp"

#include <vector>

namespace fptc::nn {

/// Optimizer interface over a fixed parameter set.
class Optimizer {
public:
    explicit Optimizer(std::vector<Parameter*> parameters);
    virtual ~Optimizer() = default;
    Optimizer(const Optimizer&) = delete;
    Optimizer& operator=(const Optimizer&) = delete;

    /// Apply one update from the accumulated gradients.
    virtual void step() = 0;

    /// Clear all parameter gradients.
    void zero_grad();

    [[nodiscard]] double learning_rate() const noexcept { return learning_rate_; }
    void set_learning_rate(double lr) noexcept { learning_rate_ = lr; }

protected:
    std::vector<Parameter*> parameters_;
    double learning_rate_ = 1e-3;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd final : public Optimizer {
public:
    Sgd(std::vector<Parameter*> parameters, double learning_rate, double momentum = 0.0);

    void step() override;

private:
    double momentum_;
    std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
public:
    Adam(std::vector<Parameter*> parameters, double learning_rate, double beta1 = 0.9,
         double beta2 = 0.999, double epsilon = 1e-8);

    void step() override;

private:
    double beta1_;
    double beta2_;
    double epsilon_;
    long step_count_ = 0;
    std::vector<Tensor> first_moment_;
    std::vector<Tensor> second_moment_;
};

} // namespace fptc::nn
