// Loss functions: softmax cross-entropy and NT-Xent (InfoNCE).
//
// Cross-entropy drives the supervised campaigns (Tables 4, 7, 8) and the
// fine-tuning stage; NT-Xent with temperature 0.07 is SimCLR's contrastive
// loss (Sec. 4.4.2: "training with SimCLR (temperature=0.07, learning
// rate=0.001)").  Both return the scalar loss together with the gradient
// w.r.t. their input so the trainers can feed it straight into backward().
#pragma once

#include "fptc/nn/tensor.hpp"

#include <cstddef>
#include <span>

namespace fptc::nn {

/// Scalar loss + gradient with respect to the loss input.
struct LossResult {
    double loss = 0.0;
    Tensor grad; ///< same shape as the input of the loss
};

/// Mean softmax cross-entropy over a batch.  `logits` is [N, K]; labels are
/// class indices < K.  The returned grad is (softmax - onehot)/N.
[[nodiscard]] LossResult cross_entropy(const Tensor& logits, std::span<const std::size_t> labels);

/// Predicted class per row (argmax of logits).
[[nodiscard]] std::vector<std::size_t> argmax_rows(const Tensor& logits);

/// NT-Xent contrastive loss over a double batch of projections [2B, D] where
/// rows (2i, 2i+1) are the two views of sample i.  Embeddings are L2
/// normalized internally (cosine similarities); gradients flow through the
/// normalization.
[[nodiscard]] LossResult nt_xent(const Tensor& projections, double temperature = 0.07);

/// Contrastive top-k accuracy: fraction of anchors whose positive ranks in
/// their top-k most-similar rows (k=5 is the paper's SimCLR early-stopping
/// metric: "patience of 3 on the top-5 accuracy").
[[nodiscard]] double contrastive_top_k_accuracy(const Tensor& projections, std::size_t k = 5);

/// SupCon — supervised contrastive loss (Khosla et al., NeurIPS'20).
///
/// The paper lists this as the natural follow-up to its SimCLR study
/// ("such a study should consider ... supervised contrastive learning
/// methods such as SupCon [21]", Sec. 5).  Unlike NT-Xent, every row of the
/// same label is a positive: L_i = -1/|P(i)| * sum_{p in P(i)}
/// log( exp(s_ip) / sum_{a != i} exp(s_ia) ).  Rows are L2-normalized
/// internally; anchors without positives contribute zero.
[[nodiscard]] LossResult sup_con(const Tensor& projections, std::span<const std::size_t> labels,
                                 double temperature = 0.07);

} // namespace fptc::nn
