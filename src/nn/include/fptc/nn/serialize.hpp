// Model weight (de)serialization.
//
// The paper publishes trained models among its artifacts; this module plays
// that role: a tiny versioned binary format for the parameter tensors of a
// Sequential (or any parameter list).  Shapes are stored and verified on
// load, so loading into a mismatched architecture fails loudly, naming the
// offending parameter.
//
// Format v2 (current) appends a CRC32 of the payload, so truncated or
// bit-flipped checkpoints are rejected instead of silently loading garbage.
// v1 files (no checksum) remain readable.  save_network writes via a temp
// file + atomic rename and re-verifies the written bytes, retrying once on
// a corrupted write — the recovery path exercised by the fault injector's
// truncated-write faults.
#pragma once

#include "fptc/nn/sequential.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>

namespace fptc::nn {

/// Current checkpoint format version (v2 = checksummed).
inline constexpr std::uint32_t kSerializeVersion = 2;

/// Write all parameters to a binary stream.  `version` may be 1 (legacy,
/// no checksum — kept for compatibility tests) or 2.  Throws
/// std::runtime_error on stream failure or unknown version.
void save_parameters(const std::vector<Parameter*>& parameters, std::ostream& out,
                     std::uint32_t version = kSerializeVersion);

/// Read parameters back; count and shapes must match exactly.  Accepts v1
/// and v2 streams.  Throws std::runtime_error on format/shape/checksum
/// mismatch or stream failure, naming the parameter index in the message.
void load_parameters(const std::vector<Parameter*>& parameters, std::istream& in);

/// Structurally validate a checkpoint stream (magic, version, shape table,
/// payload length, v2 checksum) without loading it into a network.  Returns
/// false and fills `error` (when non-null) on any defect.
[[nodiscard]] bool verify_checkpoint(std::istream& in, std::string* error = nullptr);

/// Convenience wrappers over whole networks and files.  save_network is
/// atomic (temp file + rename) and verifies the written checkpoint,
/// rewriting it once if the bytes on disk fail validation.
void save_network(Sequential& network, const std::string& path);
void load_network(Sequential& network, const std::string& path);

} // namespace fptc::nn
