// Model weight (de)serialization.
//
// The paper publishes trained models among its artifacts; this module plays
// that role: a tiny versioned binary format for the parameter tensors of a
// Sequential (or any parameter list).  Shapes are stored and verified on
// load, so loading into a mismatched architecture fails loudly, naming the
// offending parameter.
//
// Format v2 appends a CRC32 of the payload, so truncated or bit-flipped
// checkpoints are rejected instead of silently loading garbage.  Format v3
// (current) additionally carries the model's calibration record (the fitted
// softmax temperature, calibration.hpp) inside the checksummed payload, so
// a hot-reloaded model arrives with the calibration it was trained with.
// v1/v2 files remain readable (calibration defaults to T = 1).  save_network
// writes via a temp file + atomic rename and re-verifies the written bytes,
// retrying once on a corrupted write — the recovery path exercised by the
// fault injector's truncated-write faults.
//
// Loading is validated on two axes: *structural* (magic, version, shapes,
// length, CRC — catches truncation and bit rot) and *semantic* (every
// weight finite and within kMaxAbsWeight, temperature sane — catches
// garbage a buggy writer checksummed and fsync'd correctly).  Semantic
// defects throw the typed CheckpointError, which callers must treat as
// fatal for that file: retrying the load cannot fix bad bytes.
#pragma once

#include "fptc/nn/calibration.hpp"
#include "fptc/nn/sequential.hpp"

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace fptc::nn {

/// Current checkpoint format version (v3 = checksummed + calibration).
inline constexpr std::uint32_t kSerializeVersion = 3;

/// Largest weight magnitude a checkpoint may carry.  Trained parameters in
/// this repo live in [-10, 10]; anything beyond this bound is a corrupt or
/// diverged writer, not a model.
inline constexpr float kMaxAbsWeight = 1e6f;

/// A checkpoint whose *content* is invalid: non-finite or out-of-range
/// weights, an insane calibration record.  Structural defects (truncation,
/// CRC) stay std::runtime_error; this subtype marks the fatal-for-this-file
/// class — the bytes verified, the data is garbage, retry cannot help.
class CheckpointError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Write all parameters to a binary stream.  `version` may be 1 (legacy,
/// no checksum — kept for compatibility tests), 2 (checksummed) or 3
/// (checksummed + calibration; `calibration` is only persisted at v3).
/// Throws std::runtime_error on stream failure or unknown version.
void save_parameters(const std::vector<Parameter*>& parameters, std::ostream& out,
                     std::uint32_t version = kSerializeVersion,
                     const Calibration& calibration = {});

/// Read parameters back; count and shapes must match exactly.  Accepts v1,
/// v2 and v3 streams.  Throws std::runtime_error on format/shape/checksum
/// mismatch or stream failure (naming the parameter index in the message)
/// and CheckpointError on semantically invalid content.  When `calibration`
/// is non-null it receives the persisted record (T = 1 for v1/v2 streams).
void load_parameters(const std::vector<Parameter*>& parameters, std::istream& in,
                     Calibration* calibration = nullptr);

/// Validate a checkpoint stream structurally (magic, version, shape table,
/// payload length, checksum) AND semantically (finite, in-range weights and
/// calibration) without loading it into a network.  Returns false and fills
/// `error` (when non-null) on any defect.  The canary gate runs this as its
/// first check on a reload candidate.
[[nodiscard]] bool verify_checkpoint(std::istream& in, std::string* error = nullptr);

/// Convenience wrappers over whole networks and files.  save_network is
/// atomic (temp file + rename) and verifies the written checkpoint,
/// rewriting it once if the bytes on disk fail validation.  load_network
/// throws CheckpointError on semantically invalid weights (a fatal,
/// not-retryable defect for that file).
void save_network(Sequential& network, const std::string& path,
                  const Calibration& calibration = {});
void load_network(Sequential& network, const std::string& path,
                  Calibration* calibration = nullptr);

} // namespace fptc::nn
