// Model weight (de)serialization.
//
// The paper publishes trained models among its artifacts; this module plays
// that role: a tiny versioned binary format for the parameter tensors of a
// Sequential (or any parameter list).  Shapes are stored and verified on
// load, so loading into a mismatched architecture fails loudly.
#pragma once

#include "fptc/nn/sequential.hpp"

#include <iosfwd>
#include <string>

namespace fptc::nn {

/// Write all parameters to a binary stream.  Throws std::runtime_error on
/// stream failure.
void save_parameters(const std::vector<Parameter*>& parameters, std::ostream& out);

/// Read parameters back; shapes must match exactly.  Throws
/// std::runtime_error on format/shape mismatch or stream failure.
void load_parameters(const std::vector<Parameter*>& parameters, std::istream& in);

/// Convenience wrappers over whole networks and files.
void save_network(Sequential& network, const std::string& path);
void load_network(Sequential& network, const std::string& path);

} // namespace fptc::nn
