// Layer interface and trainable parameters.
//
// Layers implement explicit forward/backward passes (no autograd tape): each
// forward caches what its backward needs, mirroring the textbook derivations
// for the handful of layer types LeNet-5 requires.  A Parameter couples a
// value tensor with its gradient accumulator; optimizers consume the
// parameter list a network exposes.
#pragma once

#include "fptc/nn/tensor.hpp"

#include <string>
#include <vector>

namespace fptc::nn {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
    Tensor value;
    Tensor grad;
    std::string name;

    explicit Parameter(Tensor initial, std::string parameter_name = {})
        : value(std::move(initial)), grad(Tensor::zeros(value.shape())), name(std::move(parameter_name))
    {
    }

    void zero_grad() noexcept { grad.fill(0.0f); }
};

/// Abstract network layer.
class Layer {
public:
    virtual ~Layer() = default;
    Layer() = default;
    Layer(const Layer&) = delete;
    Layer& operator=(const Layer&) = delete;

    /// Layer type name for architecture printouts (App. C style listings).
    [[nodiscard]] virtual std::string name() const = 0;

    /// Forward pass.  `training` toggles dropout-style stochastic behavior.
    [[nodiscard]] virtual Tensor forward(const Tensor& input, bool training) = 0;

    /// Backward pass: gradient w.r.t. this layer's input, given the gradient
    /// w.r.t. its output.  Must be called after forward() on the same input;
    /// parameter gradients are *accumulated* into Parameter::grad.
    [[nodiscard]] virtual Tensor backward(const Tensor& grad_output) = 0;

    /// Trainable parameters (empty by default).
    [[nodiscard]] virtual std::vector<Parameter*> parameters() { return {}; }

    /// Number of trainable scalars (the "Param #" column of App. C).
    [[nodiscard]] std::size_t parameter_count()
    {
        std::size_t count = 0;
        for (const auto* p : parameters()) {
            count += p->value.size();
        }
        return count;
    }
};

} // namespace fptc::nn
