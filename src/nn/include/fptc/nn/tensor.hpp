// Dense float tensor.
//
// The deep-learning substrate of this repository: a row-major owning tensor
// with just enough functionality for the paper's CNNs (LeNet-5 variants,
// App. C listings 1-5).  It deliberately avoids views/broadcasting — every
// layer works on explicit [N, C, H, W] or [N, D] shapes, which keeps the
// hand-written backward passes easy to audit against the math.
#pragma once

#include "fptc/util/membudget.hpp"
#include "fptc/util/rng.hpp"

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fptc::nn {

/// Shape of a tensor (outermost dimension first).
using Shape = std::vector<std::size_t>;

/// Row-major dense float tensor with value semantics.
class Tensor {
public:
    Tensor() = default;

    /// Allocate a zero-filled tensor of the given shape.
    explicit Tensor(Shape shape);

    /// Wrap existing data (size must match the shape's element count).
    Tensor(Shape shape, std::vector<float> data);

    [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }

    /// I.i.d. normal entries with the given standard deviation.
    [[nodiscard]] static Tensor randn(Shape shape, util::Rng& rng, float stddev = 1.0f);

    [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
    [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    /// Dimension i of the shape; throws std::out_of_range when absent.
    [[nodiscard]] std::size_t dim(std::size_t i) const;

    [[nodiscard]] std::span<float> data() noexcept { return data_; }
    [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

    [[nodiscard]] float& operator[](std::size_t i) noexcept { return data_[i]; }
    [[nodiscard]] float operator[](std::size_t i) const noexcept { return data_[i]; }

    /// Reinterpret with a new shape of identical element count.
    [[nodiscard]] Tensor reshaped(Shape new_shape) const;

    /// Fill every element with `value`.
    void fill(float value) noexcept;

    /// Element-wise in-place operations.
    void add(const Tensor& other);       ///< this += other (same shape)
    void scale(float factor) noexcept;   ///< this *= factor

    /// Sum / maximum of all elements (0 / -inf when empty).
    [[nodiscard]] double sum() const noexcept;
    [[nodiscard]] float max() const noexcept;

    /// Squared L2 norm of all elements.
    [[nodiscard]] double squared_norm() const noexcept;

    /// Human-readable "[2, 1, 32, 32]" shape string for diagnostics.
    [[nodiscard]] std::string shape_string() const;

private:
    Shape shape_;
    // Declared before data_ so construction charges the accountant *before*
    // the backing store is allocated: under FPTC_MEM_BUDGET_MB a refused
    // tensor throws BudgetExceeded without ever touching the allocator.
    // Implicit copy/move/destroy keep the charge balanced (util::Charge
    // copies re-reserve, moves transfer, destructors release).
    util::Charge charge_;
    std::vector<float> data_;
};

/// Total element count implied by a shape (1 for the empty shape).
[[nodiscard]] std::size_t element_count(const Shape& shape) noexcept;

/// Check two shapes for equality with a readable exception on mismatch.
void require_same_shape(const Tensor& a, const Tensor& b, const char* context);

} // namespace fptc::nn
