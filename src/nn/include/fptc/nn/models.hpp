// Model factories matching the paper's App. C listings.
//
// Listing 1/2: the supervised LeNet-5 ("mini" architecture) with or without
// dropout — Conv(1->6,5) ReLU Pool, Conv(6->16,5) ReLU [Dropout2d 0.25]
// Pool, Flatten, Linear(->120) ReLU, Linear(120->84) ReLU [Dropout 0.5],
// Linear(84->classes).
//
// Listing 3/4: the SimCLR pre-train network — the same trunk up to the
// 120-d representation h, followed by the projection head
// Linear(120->120) ReLU [masked dropout] Linear(120->{30|84}).
//
// Listing 5: the fine-tune network — the frozen trunk with the projection
// masked to Identity and a fresh Linear(120->classes) classifier.
//
// The "full" architecture (paper Fig. 6-7 of the Ref-Paper, used at
// 1500x1500) has one fewer fully-connected layer; since training a 1500x1500
// valid-convolution LeNet end-to-end is the paper's own 30-minutes-per-run
// bottleneck, our factory for resolutions >= 256 prepends an input max-pool
// that reduces the image to ~64x64 before the trunk (a documented
// substitution; see DESIGN.md).
#pragma once

#include "fptc/nn/sequential.hpp"

#include <cstdint>
#include <memory>

namespace fptc::nn {

/// Hyper-parameters shared by the model factories.
struct ModelConfig {
    std::size_t flowpic_dim = 32;   ///< input resolution N (32, 64 or 1500)
    std::size_t input_channels = 1; ///< 1 (plain flowpic) or 2 (directional)
    std::size_t num_classes = 5;    ///< classifier width
    bool with_dropout = true;       ///< listing 1 vs listing 2
    std::size_t projection_dim = 30; ///< SimCLR projection output (30 or 84)
    std::uint64_t seed = 1;         ///< weight initialization seed
};

/// Build the supervised network (listing 1/2; "full" variant automatically
/// selected for flowpic_dim >= 256).
[[nodiscard]] Sequential make_supervised_network(const ModelConfig& config);

/// SimCLR network: a trunk producing the 120-d representation h and a
/// projection head producing z = g(h).
struct SimClrNetwork {
    Sequential trunk;      ///< flowpic -> h (120-d), listing 3 rows 1-10
    Sequential projection; ///< h -> z (projection_dim), listing 3 rows 11-14

    /// Full forward used during pre-training.
    [[nodiscard]] Tensor forward(const Tensor& input, bool training);

    /// Backward through projection then trunk.
    void backward(const Tensor& grad_output);

    /// Representation h only (for fine-tuning / probing).
    [[nodiscard]] Tensor embed(const Tensor& input);

    [[nodiscard]] std::vector<Parameter*> parameters();
    void zero_grad();
};

/// Build the SimCLR pre-train network (listing 3/4).
[[nodiscard]] SimClrNetwork make_simclr_network(const ModelConfig& config);

/// Build the fine-tune classifier head (listing 5's Linear-14): a fresh
/// Linear(120 -> num_classes) trained on frozen trunk embeddings.
[[nodiscard]] Sequential make_finetune_head(const ModelConfig& config);

/// The trunk's representation width (120 for all architectures).
inline constexpr std::size_t kRepresentationDim = 120;

/// Effective trunk input resolution after the large-input pooling stage
/// (equal to flowpic_dim below 256).
[[nodiscard]] std::size_t effective_input_dim(std::size_t flowpic_dim) noexcept;

} // namespace fptc::nn
