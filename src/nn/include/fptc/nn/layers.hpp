// Basic layers: Linear, ReLU, Flatten, Identity, Dropout, Dropout2d.
//
// Together with Conv2d/MaxPool2d (conv.hpp) these are exactly the layer
// types appearing in the paper's App. C listings.  Identity matters more
// than it looks: "our architectures are designed to use nn.Identity()
// modules to mask out layers that are not needed from a given architecture"
// — the dropout ablation (Table 5, Fig. 11) and the fine-tune network
// (listing 5) are all expressed by masking layers with Identity.
#pragma once

#include "fptc/nn/layer.hpp"
#include "fptc/util/rng.hpp"

#include <cstdint>

namespace fptc::nn {

/// Fully connected layer: y = W x + b, input [N, in], output [N, out].
class Linear final : public Layer {
public:
    /// He-uniform initialization seeded deterministically.
    Linear(std::size_t in_features, std::size_t out_features, std::uint64_t seed);

    [[nodiscard]] std::string name() const override { return "Linear"; }
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }

    [[nodiscard]] std::size_t in_features() const noexcept { return in_features_; }
    [[nodiscard]] std::size_t out_features() const noexcept { return out_features_; }

private:
    std::size_t in_features_;
    std::size_t out_features_;
    Parameter weight_; ///< [out, in]
    Parameter bias_;   ///< [out]
    Tensor input_cache_;
};

/// Element-wise rectified linear unit.
class ReLU final : public Layer {
public:
    [[nodiscard]] std::string name() const override { return "ReLU"; }
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;

private:
    Tensor input_cache_;
};

/// Collapse all non-batch dimensions: [N, C, H, W] -> [N, C*H*W].
class Flatten final : public Layer {
public:
    [[nodiscard]] std::string name() const override { return "Flatten"; }
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;

private:
    Shape input_shape_;
};

/// Pass-through used to mask out layers (paper App. C).
class Identity final : public Layer {
public:
    [[nodiscard]] std::string name() const override { return "Identity"; }
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
};

/// Inverted dropout: at train time zero each activation with probability p
/// and scale survivors by 1/(1-p); identity at eval time.
class Dropout final : public Layer {
public:
    Dropout(double probability, std::uint64_t seed);

    [[nodiscard]] std::string name() const override { return "Dropout"; }
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;

    [[nodiscard]] double probability() const noexcept { return probability_; }

private:
    double probability_;
    util::Rng rng_;
    Tensor mask_;
};

/// Channel-wise dropout for [N, C, H, W] inputs (PyTorch's Dropout2d):
/// entire feature maps are zeroed together.
class Dropout2d final : public Layer {
public:
    Dropout2d(double probability, std::uint64_t seed);

    [[nodiscard]] std::string name() const override { return "Dropout2d"; }
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;

    [[nodiscard]] double probability() const noexcept { return probability_; }

private:
    double probability_;
    util::Rng rng_;
    Tensor mask_; ///< per-(n, c) keep mask expanded lazily in backward
};

} // namespace fptc::nn
