// Temperature scaling for calibrated per-class scores (Guo et al., 2017).
//
// The serve path's open-set rejection thresholds the classifier's maximum
// softmax probability, which is only meaningful if that probability is
// *calibrated*: raw CNN logits are systematically overconfident.
// Temperature scaling is the standard single-parameter fix — divide the
// logits by a scalar T > 0 fitted to minimize validation NLL — and has the
// property the rejection path depends on: it rescales confidence without
// ever changing the argmax, so accuracy is untouched.
//
// The fitted temperature is persisted inside the checkpoint (serialize.hpp
// format v3), so a hot-reloaded model arrives with the calibration it was
// fitted with; a missing record (v1/v2 checkpoint) means T = 1 (uncalibrated).
#pragma once

#include "fptc/nn/tensor.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace fptc::nn {

/// Post-hoc calibration state attached to a trained network.
struct Calibration {
    double temperature = 1.0; ///< logits are divided by this before softmax

    [[nodiscard]] bool calibrated() const noexcept { return temperature != 1.0; }
};

/// Softmax of one logit row at temperature T (numerically stable).  T must
/// be > 0; T = 1 is the plain softmax.
[[nodiscard]] std::vector<double> softmax_row(std::span<const float> logits, double temperature);

/// Mean negative log-likelihood of `labels` under softmax(logits / T).
/// `logits` is [N, K]; labels are class indices < K.
[[nodiscard]] double calibration_nll(const Tensor& logits, std::span<const std::size_t> labels,
                                     double temperature);

/// Fit the temperature that minimizes validation NLL by golden-section
/// search over log T in [1/kMaxTemperature, kMaxTemperature].  Deterministic
/// (no RNG); returns 1.0 on degenerate input (empty batch).  The fitted
/// NLL is never worse than the T = 1 NLL on the same batch.
[[nodiscard]] double fit_temperature(const Tensor& logits, std::span<const std::size_t> labels);

/// Search bounds for fit_temperature (wide enough for any network this repo
/// trains; the bound also caps what a checkpoint may carry — see
/// serialize.cpp's semantic validation).
inline constexpr double kMaxTemperature = 1000.0;

} // namespace fptc::nn
