// Sequential layer container + architecture printouts.
//
// All networks in the paper are straight pipelines (App. C), so a Sequential
// container is the whole model zoo.  It also implements the paper's layer
// masking idiom: "our architectures are designed to use nn.Identity()
// modules to mask out layers that are not needed from a given architecture".
#pragma once

#include "fptc/nn/layer.hpp"

#include <memory>
#include <string>
#include <vector>

namespace fptc::nn {

/// A chain of layers executed in order.
class Sequential {
public:
    Sequential() = default;

    /// Append a layer (returns the index it received).
    std::size_t add(std::unique_ptr<Layer> layer);

    [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
    [[nodiscard]] Layer& layer(std::size_t index);
    [[nodiscard]] const Layer& layer(std::size_t index) const;

    /// Replace the layer at `index` with an Identity (the masking idiom used
    /// for the dropout ablation and the fine-tune network).
    void mask_layer(std::size_t index);

    /// Forward through every layer.
    [[nodiscard]] Tensor forward(const Tensor& input, bool training);

    /// Backward through every layer in reverse; returns grad w.r.t. input.
    [[nodiscard]] Tensor backward(const Tensor& grad_output);

    /// All trainable parameters in layer order.
    [[nodiscard]] std::vector<Parameter*> parameters();

    /// Zero every parameter gradient.
    void zero_grad();

    /// Total trainable scalar count.
    [[nodiscard]] std::size_t parameter_count();

    /// App. C style architecture listing: one row per layer with output shape
    /// and parameter count, computed by forwarding a dummy input.
    [[nodiscard]] std::string summary(const Shape& input_shape);

private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace fptc::nn
