#include "fptc/nn/conv.hpp"

#include "fptc/util/rng.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fptc::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_size,
               std::uint64_t seed, std::size_t stride)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      weight_(Tensor({out_channels, in_channels, kernel_size, kernel_size}), "weight"),
      bias_(Tensor({out_channels}), "bias")
{
    if (in_channels == 0 || out_channels == 0 || kernel_size == 0 || stride == 0) {
        throw std::invalid_argument("Conv2d: zero-sized configuration");
    }
    util::Rng rng(seed);
    const double fan_in = static_cast<double>(in_channels * kernel_size * kernel_size);
    const auto limit = static_cast<float>(std::sqrt(6.0 / fan_in));
    for (auto& w : weight_.value.data()) {
        w = static_cast<float>(rng.uniform(-limit, limit));
    }
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/)
{
    if (input.rank() != 4 || input.dim(1) != in_channels_) {
        throw std::invalid_argument("Conv2d::forward: expected [N, " + std::to_string(in_channels_) +
                                    ", H, W], got " + input.shape_string());
    }
    const std::size_t batch = input.dim(0);
    const std::size_t h = input.dim(2);
    const std::size_t w = input.dim(3);
    if (h < kernel_size_ || w < kernel_size_) {
        throw std::invalid_argument("Conv2d::forward: input smaller than kernel");
    }
    input_cache_ = input;
    const std::size_t out_h = (h - kernel_size_) / stride_ + 1;
    const std::size_t out_w = (w - kernel_size_) / stride_ + 1;
    Tensor output({batch, out_channels_, out_h, out_w});

    const auto x = input.data();
    const auto kernel = weight_.value.data();
    const auto b = bias_.value.data();
    auto y = output.data();

    const std::size_t in_plane = h * w;
    const std::size_t out_plane = out_h * out_w;
    const std::size_t kernel_plane = kernel_size_ * kernel_size_;

    for (std::size_t n = 0; n < batch; ++n) {
        const float* x_n = x.data() + n * in_channels_ * in_plane;
        float* y_n = y.data() + n * out_channels_ * out_plane;
        for (std::size_t oc = 0; oc < out_channels_; ++oc) {
            const float* k_oc = kernel.data() + oc * in_channels_ * kernel_plane;
            float* y_oc = y_n + oc * out_plane;
            const float bias_value = b[oc];
            for (std::size_t oy = 0; oy < out_h; ++oy) {
                for (std::size_t ox = 0; ox < out_w; ++ox) {
                    float accum = bias_value;
                    const std::size_t iy0 = oy * stride_;
                    const std::size_t ix0 = ox * stride_;
                    for (std::size_t ic = 0; ic < in_channels_; ++ic) {
                        const float* x_ic = x_n + ic * in_plane;
                        const float* k_ic = k_oc + ic * kernel_plane;
                        for (std::size_t ky = 0; ky < kernel_size_; ++ky) {
                            const float* x_row = x_ic + (iy0 + ky) * w + ix0;
                            const float* k_row = k_ic + ky * kernel_size_;
                            for (std::size_t kx = 0; kx < kernel_size_; ++kx) {
                                accum += x_row[kx] * k_row[kx];
                            }
                        }
                    }
                    y_oc[oy * out_w + ox] = accum;
                }
            }
        }
    }
    return output;
}

Tensor Conv2d::backward(const Tensor& grad_output)
{
    const std::size_t batch = input_cache_.dim(0);
    const std::size_t h = input_cache_.dim(2);
    const std::size_t w = input_cache_.dim(3);
    const std::size_t out_h = (h - kernel_size_) / stride_ + 1;
    const std::size_t out_w = (w - kernel_size_) / stride_ + 1;
    if (grad_output.rank() != 4 || grad_output.dim(0) != batch ||
        grad_output.dim(1) != out_channels_ || grad_output.dim(2) != out_h ||
        grad_output.dim(3) != out_w) {
        throw std::invalid_argument("Conv2d::backward: bad grad shape " + grad_output.shape_string());
    }

    Tensor grad_input(input_cache_.shape());
    const auto x = input_cache_.data();
    const auto kernel = weight_.value.data();
    auto gk = weight_.grad.data();
    auto gb = bias_.grad.data();
    const auto gy = grad_output.data();
    auto gx = grad_input.data();

    const std::size_t in_plane = h * w;
    const std::size_t out_plane = out_h * out_w;
    const std::size_t kernel_plane = kernel_size_ * kernel_size_;

    for (std::size_t n = 0; n < batch; ++n) {
        const float* x_n = x.data() + n * in_channels_ * in_plane;
        float* gx_n = gx.data() + n * in_channels_ * in_plane;
        const float* gy_n = gy.data() + n * out_channels_ * out_plane;
        for (std::size_t oc = 0; oc < out_channels_; ++oc) {
            const float* k_oc = kernel.data() + oc * in_channels_ * kernel_plane;
            float* gk_oc = gk.data() + oc * in_channels_ * kernel_plane;
            const float* gy_oc = gy_n + oc * out_plane;
            for (std::size_t oy = 0; oy < out_h; ++oy) {
                for (std::size_t ox = 0; ox < out_w; ++ox) {
                    const float g = gy_oc[oy * out_w + ox];
                    if (g == 0.0f) {
                        continue;
                    }
                    gb[oc] += g;
                    const std::size_t iy0 = oy * stride_;
                    const std::size_t ix0 = ox * stride_;
                    for (std::size_t ic = 0; ic < in_channels_; ++ic) {
                        const float* x_ic = x_n + ic * in_plane;
                        float* gx_ic = gx_n + ic * in_plane;
                        const float* k_ic = k_oc + ic * kernel_plane;
                        float* gk_ic = gk_oc + ic * kernel_plane;
                        for (std::size_t ky = 0; ky < kernel_size_; ++ky) {
                            const float* x_row = x_ic + (iy0 + ky) * w + ix0;
                            float* gx_row = gx_ic + (iy0 + ky) * w + ix0;
                            const float* k_row = k_ic + ky * kernel_size_;
                            float* gk_row = gk_ic + ky * kernel_size_;
                            for (std::size_t kx = 0; kx < kernel_size_; ++kx) {
                                gk_row[kx] += g * x_row[kx];
                                gx_row[kx] += g * k_row[kx];
                            }
                        }
                    }
                }
            }
        }
    }
    return grad_input;
}

MaxPool2d::MaxPool2d(std::size_t window) : window_(window)
{
    if (window == 0) {
        throw std::invalid_argument("MaxPool2d: window must be > 0");
    }
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/)
{
    if (input.rank() != 4) {
        throw std::invalid_argument("MaxPool2d::forward: expected [N, C, H, W]");
    }
    input_shape_ = input.shape();
    const std::size_t batch = input.dim(0);
    const std::size_t channels = input.dim(1);
    const std::size_t h = input.dim(2);
    const std::size_t w = input.dim(3);
    const std::size_t out_h = h / window_;
    const std::size_t out_w = w / window_;
    if (out_h == 0 || out_w == 0) {
        throw std::invalid_argument("MaxPool2d::forward: input smaller than window");
    }
    Tensor output({batch, channels, out_h, out_w});
    argmax_.assign(output.size(), 0);

    const auto x = input.data();
    auto y = output.data();
    const std::size_t in_plane = h * w;
    const std::size_t out_plane = out_h * out_w;

    for (std::size_t nc = 0; nc < batch * channels; ++nc) {
        const float* x_plane = x.data() + nc * in_plane;
        float* y_plane = y.data() + nc * out_plane;
        std::size_t* arg_plane = argmax_.data() + nc * out_plane;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
            for (std::size_t ox = 0; ox < out_w; ++ox) {
                float best = -std::numeric_limits<float>::infinity();
                std::size_t best_index = 0;
                for (std::size_t wy = 0; wy < window_; ++wy) {
                    for (std::size_t wx = 0; wx < window_; ++wx) {
                        const std::size_t idx = (oy * window_ + wy) * w + (ox * window_ + wx);
                        if (x_plane[idx] > best) {
                            best = x_plane[idx];
                            best_index = idx;
                        }
                    }
                }
                y_plane[oy * out_w + ox] = best;
                arg_plane[oy * out_w + ox] = nc * in_plane + best_index;
            }
        }
    }
    return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output)
{
    if (grad_output.size() != argmax_.size()) {
        throw std::invalid_argument("MaxPool2d::backward: grad size mismatch");
    }
    Tensor grad_input(input_shape_);
    auto gx = grad_input.data();
    const auto gy = grad_output.data();
    for (std::size_t i = 0; i < argmax_.size(); ++i) {
        gx[argmax_[i]] += gy[i];
    }
    return grad_input;
}

} // namespace fptc::nn
