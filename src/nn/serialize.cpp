#include "fptc/nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace fptc::nn {

namespace {

constexpr std::uint32_t kMagic = 0x46505443; // "FPTC"
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ostream& out, std::uint64_t value)
{
    out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

[[nodiscard]] std::uint64_t read_u64(std::istream& in)
{
    std::uint64_t value = 0;
    in.read(reinterpret_cast<char*>(&value), sizeof value);
    if (!in) {
        throw std::runtime_error("load_parameters: truncated stream");
    }
    return value;
}

} // namespace

void save_parameters(const std::vector<Parameter*>& parameters, std::ostream& out)
{
    write_u64(out, (static_cast<std::uint64_t>(kMagic) << 32) | kVersion);
    write_u64(out, parameters.size());
    for (const auto* p : parameters) {
        write_u64(out, p->value.shape().size());
        for (const auto d : p->value.shape()) {
            write_u64(out, d);
        }
        const auto data = p->value.data();
        out.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(data.size() * sizeof(float)));
    }
    if (!out) {
        throw std::runtime_error("save_parameters: stream failure");
    }
}

void load_parameters(const std::vector<Parameter*>& parameters, std::istream& in)
{
    const std::uint64_t header = read_u64(in);
    if ((header >> 32) != kMagic || (header & 0xffffffffULL) != kVersion) {
        throw std::runtime_error("load_parameters: bad magic/version");
    }
    const std::uint64_t count = read_u64(in);
    if (count != parameters.size()) {
        throw std::runtime_error("load_parameters: parameter count mismatch (file has " +
                                 std::to_string(count) + ", network has " +
                                 std::to_string(parameters.size()) + ")");
    }
    for (auto* p : parameters) {
        const std::uint64_t rank = read_u64(in);
        Shape shape(rank);
        for (auto& d : shape) {
            d = read_u64(in);
        }
        if (shape != p->value.shape()) {
            throw std::runtime_error("load_parameters: shape mismatch for parameter '" + p->name +
                                     "'");
        }
        auto data = p->value.data();
        in.read(reinterpret_cast<char*>(data.data()),
                static_cast<std::streamsize>(data.size() * sizeof(float)));
        if (!in) {
            throw std::runtime_error("load_parameters: truncated tensor data");
        }
    }
}

void save_network(Sequential& network, const std::string& path)
{
    std::ofstream file(path, std::ios::binary);
    if (!file) {
        throw std::runtime_error("save_network: cannot open " + path);
    }
    save_parameters(network.parameters(), file);
}

void load_network(Sequential& network, const std::string& path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        throw std::runtime_error("load_network: cannot open " + path);
    }
    load_parameters(network.parameters(), file);
}

} // namespace fptc::nn
