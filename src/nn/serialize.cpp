#include "fptc/nn/serialize.hpp"

#include "fptc/util/crc32.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/journal.hpp"
#include "fptc/util/log.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fptc::nn {

namespace {

constexpr std::uint32_t kMagic = 0x46505443; // "FPTC"

// CRC32 comes from the shared util/crc32.hpp (one table for every
// checksummed on-disk format: checkpoints here, serve snapshots).
using util::crc32_update;

// ---- checksummed stream helpers --------------------------------------------

/// Writes raw bytes while accumulating the payload CRC (v2).
struct CrcWriter {
    std::ostream& out;
    std::uint32_t crc = 0;
    bool checksummed = false;

    void write(const char* data, std::size_t size)
    {
        out.write(data, static_cast<std::streamsize>(size));
        if (checksummed) {
            crc = crc32_update(crc, data, size);
        }
    }

    void write_u64(std::uint64_t value)
    {
        write(reinterpret_cast<const char*>(&value), sizeof value);
    }
};

/// Reads raw bytes while accumulating the payload CRC (v2); error messages
/// carry `context` so callers learn *which* parameter was truncated.
struct CrcReader {
    std::istream& in;
    std::uint32_t crc = 0;
    bool checksummed = false;

    void read(char* data, std::size_t size, const std::string& context)
    {
        in.read(data, static_cast<std::streamsize>(size));
        if (!in) {
            throw std::runtime_error("load_parameters: truncated stream while reading " + context);
        }
        if (checksummed) {
            crc = crc32_update(crc, data, size);
        }
    }

    [[nodiscard]] std::uint64_t read_u64(const std::string& context)
    {
        std::uint64_t value = 0;
        read(reinterpret_cast<char*>(&value), sizeof value, context);
        return value;
    }
};

[[nodiscard]] std::string shape_to_string(const Shape& shape)
{
    std::string out = "[";
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i > 0) {
            out += ", ";
        }
        out += std::to_string(shape[i]);
    }
    return out + "]";
}

/// Sanity cap on a single tensor's element count (guards dimension products
/// read from corrupt files before they turn into huge allocations).
constexpr std::uint64_t kMaxElements = 1ULL << 33;
constexpr std::uint64_t kMaxRank = 16;

/// Semantic weight check: nullptr when `w` is a plausible model weight,
/// otherwise a short defect name for the error message.
[[nodiscard]] const char* weight_defect(float w) noexcept
{
    if (std::isnan(w)) {
        return "NaN";
    }
    if (std::isinf(w)) {
        return "infinite";
    }
    if (std::abs(w) > kMaxAbsWeight) {
        return "out-of-range";
    }
    return nullptr;
}

/// Semantic calibration check (same contract as weight_defect).
[[nodiscard]] const char* temperature_defect(double temperature) noexcept
{
    if (std::isnan(temperature) || std::isinf(temperature)) {
        return "non-finite";
    }
    if (temperature <= 0.0 || temperature > kMaxTemperature) {
        return "out-of-range";
    }
    return nullptr;
}

/// Parse version from the 8-byte header; throws on bad magic or version.
[[nodiscard]] std::uint32_t read_header(std::istream& in, const char* who)
{
    std::uint64_t header = 0;
    in.read(reinterpret_cast<char*>(&header), sizeof header);
    if (!in) {
        throw std::runtime_error(std::string(who) + ": truncated stream while reading header");
    }
    if ((header >> 32) != kMagic) {
        throw std::runtime_error(std::string(who) + ": bad magic (not an FPTC checkpoint)");
    }
    const auto version = static_cast<std::uint32_t>(header & 0xffffffffULL);
    if (version < 1 || version > kSerializeVersion) {
        throw std::runtime_error(std::string(who) + ": unsupported format version " +
                                 std::to_string(version) + " (supported: 1.." +
                                 std::to_string(kSerializeVersion) + ")");
    }
    return version;
}

} // namespace

void save_parameters(const std::vector<Parameter*>& parameters, std::ostream& out,
                     std::uint32_t version, const Calibration& calibration)
{
    if (version < 1 || version > kSerializeVersion) {
        throw std::runtime_error("save_parameters: unsupported format version " +
                                 std::to_string(version));
    }
    std::uint64_t header = (static_cast<std::uint64_t>(kMagic) << 32) | version;
    out.write(reinterpret_cast<const char*>(&header), sizeof header);

    CrcWriter writer{out, 0, version >= 2};
    writer.write_u64(parameters.size());
    for (const auto* p : parameters) {
        writer.write_u64(p->value.shape().size());
        for (const auto d : p->value.shape()) {
            writer.write_u64(d);
        }
        const auto data = p->value.data();
        writer.write(reinterpret_cast<const char*>(data.data()), data.size() * sizeof(float));
    }
    if (version >= 3) {
        writer.write(reinterpret_cast<const char*>(&calibration.temperature),
                     sizeof calibration.temperature);
    }
    if (version >= 2) {
        const std::uint64_t crc = writer.crc;
        out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    }
    if (!out) {
        throw std::runtime_error("save_parameters: stream failure");
    }
}

void load_parameters(const std::vector<Parameter*>& parameters, std::istream& in,
                     Calibration* calibration)
{
    const std::uint32_t version = read_header(in, "load_parameters");
    CrcReader reader{in, 0, version >= 2};

    const std::uint64_t count = reader.read_u64("parameter count");
    if (count != parameters.size()) {
        throw std::runtime_error("load_parameters: parameter count mismatch (stream has " +
                                 std::to_string(count) + ", network has " +
                                 std::to_string(parameters.size()) + ")");
    }
    // Stage tensor data first and commit only after full validation, so a
    // corrupt stream (bad shape, truncation, checksum mismatch) never leaves
    // the target network half-overwritten.
    std::vector<std::vector<float>> staged(parameters.size());
    for (std::size_t index = 0; index < parameters.size(); ++index) {
        auto* p = parameters[index];
        const std::string context = "parameter " + std::to_string(index) +
                                    (p->name.empty() ? "" : " ('" + p->name + "')");
        const std::uint64_t rank = reader.read_u64(context + " rank");
        if (rank > kMaxRank) {
            throw std::runtime_error("load_parameters: " + context + ": implausible rank " +
                                     std::to_string(rank) + " (corrupt stream?)");
        }
        Shape shape(rank);
        for (auto& d : shape) {
            d = reader.read_u64(context + " shape");
        }
        if (shape != p->value.shape()) {
            throw std::runtime_error("load_parameters: " + context + ": shape mismatch (stream " +
                                     shape_to_string(shape) + ", network " +
                                     shape_to_string(p->value.shape()) + ")");
        }
        staged[index].resize(p->value.size());
        reader.read(reinterpret_cast<char*>(staged[index].data()),
                    staged[index].size() * sizeof(float), context + " data");
    }
    Calibration loaded;
    if (version >= 3) {
        reader.read(reinterpret_cast<char*>(&loaded.temperature), sizeof loaded.temperature,
                    "calibration temperature");
    }
    if (version >= 2) {
        const std::uint32_t computed = reader.crc;
        std::uint64_t stored = 0;
        in.read(reinterpret_cast<char*>(&stored), sizeof stored);
        if (!in) {
            throw std::runtime_error("load_parameters: truncated stream while reading checksum");
        }
        if (stored != computed) {
            throw std::runtime_error(
                "load_parameters: checksum mismatch (stored " + std::to_string(stored) +
                ", computed " + std::to_string(computed) + ") — checkpoint corrupt or truncated");
        }
    }
    // Semantic validation, after the structural checks: the CRC proves the
    // bytes are the writer's bytes, this proves the writer's bytes are a
    // model.  Fails *typed* (CheckpointError) so callers know a retry
    // cannot help — the file's content is garbage.
    for (std::size_t index = 0; index < parameters.size(); ++index) {
        for (const float w : staged[index]) {
            if (const char* defect = weight_defect(w); defect != nullptr) {
                throw CheckpointError("load_parameters: parameter " + std::to_string(index) +
                                      " contains a " + defect + " weight (" +
                                      std::to_string(w) + ") — checkpoint semantically invalid");
            }
        }
    }
    if (const char* defect = temperature_defect(loaded.temperature); defect != nullptr) {
        throw CheckpointError("load_parameters: " + std::string(defect) +
                              " calibration temperature (" +
                              std::to_string(loaded.temperature) +
                              ") — checkpoint semantically invalid");
    }
    for (std::size_t index = 0; index < parameters.size(); ++index) {
        auto data = parameters[index]->value.data();
        std::copy(staged[index].begin(), staged[index].end(), data.begin());
    }
    if (calibration != nullptr) {
        *calibration = loaded;
    }
}

bool verify_checkpoint(std::istream& in, std::string* error)
{
    try {
        const std::uint32_t version = read_header(in, "verify_checkpoint");
        CrcReader reader{in, 0, version >= 2};
        const std::uint64_t count = reader.read_u64("parameter count");
        constexpr std::uint64_t kMaxParameters = 1ULL << 20;
        if (count > kMaxParameters) {
            throw std::runtime_error("verify_checkpoint: implausible parameter count " +
                                     std::to_string(count));
        }
        // Semantic defects are recorded but reported only after the CRC
        // verifies: a corrupt byte stream should fail as "checksum
        // mismatch", not as whatever garbage float it happened to decode to.
        std::string semantic_defect;
        std::array<float, 1024> buffer;
        for (std::uint64_t index = 0; index < count; ++index) {
            const std::string context = "parameter " + std::to_string(index);
            const std::uint64_t rank = reader.read_u64(context + " rank");
            if (rank > kMaxRank) {
                throw std::runtime_error("verify_checkpoint: " + context + ": implausible rank " +
                                         std::to_string(rank));
            }
            std::uint64_t elements = 1;
            for (std::uint64_t d = 0; d < rank; ++d) {
                const std::uint64_t dim = reader.read_u64(context + " shape");
                if (dim == 0 || elements > kMaxElements / std::max<std::uint64_t>(dim, 1)) {
                    throw std::runtime_error("verify_checkpoint: " + context +
                                             ": implausible shape");
                }
                elements *= dim;
            }
            std::uint64_t remaining = elements;
            while (remaining > 0) {
                const std::size_t chunk =
                    static_cast<std::size_t>(std::min<std::uint64_t>(remaining, buffer.size()));
                reader.read(reinterpret_cast<char*>(buffer.data()), chunk * sizeof(float),
                            context + " data");
                for (std::size_t i = 0; i < chunk && semantic_defect.empty(); ++i) {
                    if (const char* defect = weight_defect(buffer[i]); defect != nullptr) {
                        semantic_defect = "verify_checkpoint: " + context + " contains a " +
                                          defect + " weight";
                    }
                }
                remaining -= chunk;
            }
        }
        if (version >= 3) {
            double temperature = 1.0;
            reader.read(reinterpret_cast<char*>(&temperature), sizeof temperature,
                        "calibration temperature");
            if (const char* defect = temperature_defect(temperature);
                defect != nullptr && semantic_defect.empty()) {
                semantic_defect = std::string("verify_checkpoint: ") + defect +
                                  " calibration temperature";
            }
        }
        if (version >= 2) {
            std::uint64_t stored = 0;
            in.read(reinterpret_cast<char*>(&stored), sizeof stored);
            if (!in) {
                throw std::runtime_error("verify_checkpoint: truncated checksum");
            }
            if (stored != reader.crc) {
                throw std::runtime_error("verify_checkpoint: checksum mismatch");
            }
        }
        if (!semantic_defect.empty()) {
            throw CheckpointError(semantic_defect);
        }
    } catch (const std::exception& e) {
        if (error != nullptr) {
            *error = e.what();
        }
        return false;
    }
    return true;
}

void save_network(Sequential& network, const std::string& path, const Calibration& calibration)
{
    // Serialize to memory first so a truncated write never leaves a partial
    // file at `path` (durable temp + fsync + rename + dir fsync via
    // util::atomic_write_file), then re-verify the bytes on disk; a
    // corrupted write (e.g. the fault injector's truncated-write fault, or
    // a full disk) is detected and rewritten once.  An ENOSPC or fsync
    // failure surfaces as util::IoError (transient), which the campaign
    // executor retries and then degrades — the previous checkpoint at
    // `path`, if any, is left untouched.
    std::ostringstream buffer(std::ios::binary);
    save_parameters(network.parameters(), buffer, kSerializeVersion, calibration);
    const std::string blob = buffer.str();

    constexpr int kAttempts = 2;
    std::string last_error;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        std::string written = blob;
        if (util::fault_injector().inject_truncated_write()) {
            written.resize(written.size() / 2);
            util::log_info("save_network: fault injector truncated checkpoint write to " + path);
        }
        util::atomic_write_file(path, written);

        std::ifstream readback(path, std::ios::binary);
        std::string error;
        if (readback && verify_checkpoint(readback, &error)) {
            return;
        }
        last_error = error.empty() ? "cannot re-open " + path : error;
        util::log_info("save_network: checkpoint verification failed (" + last_error +
                       "); rewriting");
    }
    throw std::runtime_error("save_network: checkpoint at " + path +
                             " failed verification after rewrite: " + last_error);
}

void load_network(Sequential& network, const std::string& path, Calibration* calibration)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        throw std::runtime_error("load_network: cannot open " + path);
    }
    load_parameters(network.parameters(), file, calibration);
}

} // namespace fptc::nn
