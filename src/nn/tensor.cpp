#include "fptc/nn/tensor.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace fptc::nn {

std::size_t element_count(const Shape& shape) noexcept
{
    std::size_t count = 1;
    for (const auto d : shape) {
        count *= d;
    }
    return count;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      charge_(element_count(shape_) * sizeof(float), "nn::Tensor"),
      data_(element_count(shape_), 0.0f)
{
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)),
      charge_(data.size() * sizeof(float), "nn::Tensor"),
      data_(std::move(data))
{
    if (data_.size() != element_count(shape_)) {
        throw std::invalid_argument("Tensor: data size does not match shape");
    }
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float stddev)
{
    Tensor t(std::move(shape));
    for (auto& v : t.data_) {
        v = static_cast<float>(rng.normal(0.0, stddev));
    }
    return t;
}

std::size_t Tensor::dim(std::size_t i) const
{
    if (i >= shape_.size()) {
        throw std::out_of_range("Tensor::dim: axis " + std::to_string(i) + " of rank " +
                                std::to_string(shape_.size()));
    }
    return shape_[i];
}

Tensor Tensor::reshaped(Shape new_shape) const
{
    if (element_count(new_shape) != data_.size()) {
        throw std::invalid_argument("Tensor::reshaped: element count mismatch");
    }
    return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) noexcept
{
    for (auto& v : data_) {
        v = value;
    }
}

void Tensor::add(const Tensor& other)
{
    require_same_shape(*this, other, "Tensor::add");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += other.data_[i];
    }
}

void Tensor::scale(float factor) noexcept
{
    for (auto& v : data_) {
        v *= factor;
    }
}

double Tensor::sum() const noexcept
{
    double total = 0.0;
    for (const float v : data_) {
        total += static_cast<double>(v);
    }
    return total;
}

float Tensor::max() const noexcept
{
    float best = -std::numeric_limits<float>::infinity();
    for (const float v : data_) {
        best = v > best ? v : best;
    }
    return best;
}

double Tensor::squared_norm() const noexcept
{
    double total = 0.0;
    for (const float v : data_) {
        total += static_cast<double>(v) * static_cast<double>(v);
    }
    return total;
}

std::string Tensor::shape_string() const
{
    std::ostringstream out;
    out << '[';
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i > 0) {
            out << ", ";
        }
        out << shape_[i];
    }
    out << ']';
    return out.str();
}

void require_same_shape(const Tensor& a, const Tensor& b, const char* context)
{
    if (a.shape() != b.shape()) {
        throw std::invalid_argument(std::string(context) + ": shape mismatch " + a.shape_string() +
                                    " vs " + b.shape_string());
    }
}

} // namespace fptc::nn
