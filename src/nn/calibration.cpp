#include "fptc/nn/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fptc::nn {

std::vector<double> softmax_row(std::span<const float> logits, double temperature)
{
    if (temperature <= 0.0) {
        throw std::invalid_argument("softmax_row: temperature must be positive");
    }
    std::vector<double> probs(logits.size(), 0.0);
    if (logits.empty()) {
        return probs;
    }
    double max_scaled = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < logits.size(); ++k) {
        probs[k] = static_cast<double>(logits[k]) / temperature;
        max_scaled = std::max(max_scaled, probs[k]);
    }
    double denom = 0.0;
    for (double& p : probs) {
        p = std::exp(p - max_scaled);
        denom += p;
    }
    for (double& p : probs) {
        p /= denom;
    }
    return probs;
}

double calibration_nll(const Tensor& logits, std::span<const std::size_t> labels,
                       double temperature)
{
    const Shape& shape = logits.shape();
    if (shape.size() != 2) {
        throw std::invalid_argument("calibration_nll: expected [N, K] logits");
    }
    const std::size_t rows = shape[0];
    const std::size_t classes = shape[1];
    if (labels.size() != rows) {
        throw std::invalid_argument("calibration_nll: label count mismatch");
    }
    if (rows == 0) {
        return 0.0;
    }
    const auto data = logits.data();
    double total = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
        if (labels[i] >= classes) {
            throw std::invalid_argument("calibration_nll: label out of range");
        }
        // log-softmax evaluated directly: log p_y = (z_y - max)/T - log sum.
        const auto row = data.subspan(i * classes, classes);
        double max_scaled = -std::numeric_limits<double>::infinity();
        for (const float z : row) {
            max_scaled = std::max(max_scaled, static_cast<double>(z) / temperature);
        }
        double denom = 0.0;
        for (const float z : row) {
            denom += std::exp(static_cast<double>(z) / temperature - max_scaled);
        }
        total -= static_cast<double>(row[labels[i]]) / temperature - max_scaled - std::log(denom);
    }
    return total / static_cast<double>(rows);
}

double fit_temperature(const Tensor& logits, std::span<const std::size_t> labels)
{
    const Shape& shape = logits.shape();
    if (shape.size() != 2 || shape[0] == 0 || labels.empty()) {
        return 1.0;
    }
    // Golden-section search over u = log T: NLL(T) is smooth and unimodal
    // in practice; the log parameterization keeps the search symmetric
    // around T = 1.
    const double lo_u = std::log(1.0 / kMaxTemperature);
    const double hi_u = std::log(kMaxTemperature);
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    const auto nll_at = [&](double u) { return calibration_nll(logits, labels, std::exp(u)); };

    double a = lo_u;
    double b = hi_u;
    double c = b - phi * (b - a);
    double d = a + phi * (b - a);
    double fc = nll_at(c);
    double fd = nll_at(d);
    for (int iter = 0; iter < 80 && (b - a) > 1e-6; ++iter) {
        if (fc < fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = nll_at(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = nll_at(d);
        }
    }
    const double fitted = std::exp((a + b) / 2.0);
    // The fitted temperature must never calibrate *worse* than doing
    // nothing — guard against a pathological surface by comparing to T = 1.
    if (calibration_nll(logits, labels, fitted) > calibration_nll(logits, labels, 1.0)) {
        return 1.0;
    }
    return fitted;
}

} // namespace fptc::nn
