#include "fptc/nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace fptc::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, std::uint64_t seed)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor({out_features, in_features}), "weight"),
      bias_(Tensor({out_features}), "bias")
{
    if (in_features == 0 || out_features == 0) {
        throw std::invalid_argument("Linear: zero-sized layer");
    }
    util::Rng rng(seed);
    // He-uniform: U[-limit, limit], limit = sqrt(6 / fan_in).
    const auto limit = static_cast<float>(std::sqrt(6.0 / static_cast<double>(in_features)));
    auto weights = weight_.value.data();
    for (auto& w : weights) {
        w = static_cast<float>(rng.uniform(-limit, limit));
    }
}

Tensor Linear::forward(const Tensor& input, bool /*training*/)
{
    if (input.rank() != 2 || input.dim(1) != in_features_) {
        throw std::invalid_argument("Linear::forward: expected [N, " + std::to_string(in_features_) +
                                    "], got " + input.shape_string());
    }
    input_cache_ = input;
    const std::size_t batch = input.dim(0);
    Tensor output({batch, out_features_});
    const auto w = weight_.value.data();
    const auto b = bias_.value.data();
    const auto x = input.data();
    auto y = output.data();
    for (std::size_t n = 0; n < batch; ++n) {
        const float* x_row = x.data() + n * in_features_;
        float* y_row = y.data() + n * out_features_;
        for (std::size_t o = 0; o < out_features_; ++o) {
            const float* w_row = w.data() + o * in_features_;
            float accum = b[o];
            for (std::size_t i = 0; i < in_features_; ++i) {
                accum += w_row[i] * x_row[i];
            }
            y_row[o] = accum;
        }
    }
    return output;
}

Tensor Linear::backward(const Tensor& grad_output)
{
    const std::size_t batch = input_cache_.dim(0);
    if (grad_output.rank() != 2 || grad_output.dim(0) != batch ||
        grad_output.dim(1) != out_features_) {
        throw std::invalid_argument("Linear::backward: bad grad shape " + grad_output.shape_string());
    }
    Tensor grad_input({batch, in_features_});
    const auto w = weight_.value.data();
    auto gw = weight_.grad.data();
    auto gb = bias_.grad.data();
    const auto x = input_cache_.data();
    const auto gy = grad_output.data();
    auto gx = grad_input.data();
    for (std::size_t n = 0; n < batch; ++n) {
        const float* x_row = x.data() + n * in_features_;
        const float* gy_row = gy.data() + n * out_features_;
        float* gx_row = gx.data() + n * in_features_;
        for (std::size_t o = 0; o < out_features_; ++o) {
            const float g = gy_row[o];
            gb[o] += g;
            const float* w_row = w.data() + o * in_features_;
            float* gw_row = gw.data() + o * in_features_;
            for (std::size_t i = 0; i < in_features_; ++i) {
                gw_row[i] += g * x_row[i];
                gx_row[i] += g * w_row[i];
            }
        }
    }
    return grad_input;
}

Tensor ReLU::forward(const Tensor& input, bool /*training*/)
{
    input_cache_ = input;
    Tensor output = input;
    for (auto& v : output.data()) {
        v = v > 0.0f ? v : 0.0f;
    }
    return output;
}

Tensor ReLU::backward(const Tensor& grad_output)
{
    require_same_shape(grad_output, input_cache_, "ReLU::backward");
    Tensor grad_input = grad_output;
    const auto x = input_cache_.data();
    auto g = grad_input.data();
    for (std::size_t i = 0; i < g.size(); ++i) {
        if (x[i] <= 0.0f) {
            g[i] = 0.0f;
        }
    }
    return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/)
{
    if (input.rank() < 2) {
        throw std::invalid_argument("Flatten::forward: need at least rank 2");
    }
    input_shape_ = input.shape();
    const std::size_t batch = input.dim(0);
    return input.reshaped({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output)
{
    return grad_output.reshaped(input_shape_);
}

Tensor Identity::forward(const Tensor& input, bool /*training*/)
{
    return input;
}

Tensor Identity::backward(const Tensor& grad_output)
{
    return grad_output;
}

Dropout::Dropout(double probability, std::uint64_t seed) : probability_(probability), rng_(seed)
{
    if (!(probability >= 0.0 && probability < 1.0)) {
        throw std::invalid_argument("Dropout: probability must be in [0, 1)");
    }
}

Tensor Dropout::forward(const Tensor& input, bool training)
{
    if (!training || probability_ == 0.0) {
        mask_ = Tensor{};
        return input;
    }
    mask_ = Tensor(input.shape());
    Tensor output = input;
    const auto scale = static_cast<float>(1.0 / (1.0 - probability_));
    auto m = mask_.data();
    auto y = output.data();
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (rng_.bernoulli(probability_)) {
            m[i] = 0.0f;
            y[i] = 0.0f;
        } else {
            m[i] = scale;
            y[i] *= scale;
        }
    }
    return output;
}

Tensor Dropout::backward(const Tensor& grad_output)
{
    if (mask_.empty()) {
        return grad_output;
    }
    require_same_shape(grad_output, mask_, "Dropout::backward");
    Tensor grad_input = grad_output;
    const auto m = mask_.data();
    auto g = grad_input.data();
    for (std::size_t i = 0; i < g.size(); ++i) {
        g[i] *= m[i];
    }
    return grad_input;
}

Dropout2d::Dropout2d(double probability, std::uint64_t seed) : probability_(probability), rng_(seed)
{
    if (!(probability >= 0.0 && probability < 1.0)) {
        throw std::invalid_argument("Dropout2d: probability must be in [0, 1)");
    }
}

Tensor Dropout2d::forward(const Tensor& input, bool training)
{
    if (!training || probability_ == 0.0) {
        mask_ = Tensor{};
        return input;
    }
    if (input.rank() != 4) {
        throw std::invalid_argument("Dropout2d::forward: expected [N, C, H, W]");
    }
    const std::size_t batch = input.dim(0);
    const std::size_t channels = input.dim(1);
    const std::size_t plane = input.dim(2) * input.dim(3);
    mask_ = Tensor({batch, channels});
    Tensor output = input;
    const auto scale = static_cast<float>(1.0 / (1.0 - probability_));
    auto m = mask_.data();
    auto y = output.data();
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t c = 0; c < channels; ++c) {
            const float keep = rng_.bernoulli(probability_) ? 0.0f : scale;
            m[n * channels + c] = keep;
            float* channel = y.data() + (n * channels + c) * plane;
            for (std::size_t i = 0; i < plane; ++i) {
                channel[i] *= keep;
            }
        }
    }
    return output;
}

Tensor Dropout2d::backward(const Tensor& grad_output)
{
    if (mask_.empty()) {
        return grad_output;
    }
    if (grad_output.rank() != 4) {
        throw std::invalid_argument("Dropout2d::backward: expected [N, C, H, W]");
    }
    const std::size_t batch = grad_output.dim(0);
    const std::size_t channels = grad_output.dim(1);
    const std::size_t plane = grad_output.dim(2) * grad_output.dim(3);
    Tensor grad_input = grad_output;
    const auto m = mask_.data();
    auto g = grad_input.data();
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t c = 0; c < channels; ++c) {
            const float keep = m[n * channels + c];
            float* channel = g.data() + (n * channels + c) * plane;
            for (std::size_t i = 0; i < plane; ++i) {
                channel[i] *= keep;
            }
        }
    }
    return grad_input;
}

} // namespace fptc::nn
