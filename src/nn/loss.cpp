#include "fptc/nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace fptc::nn {

LossResult cross_entropy(const Tensor& logits, std::span<const std::size_t> labels)
{
    if (logits.rank() != 2) {
        throw std::invalid_argument("cross_entropy: logits must be [N, K]");
    }
    const std::size_t batch = logits.dim(0);
    const std::size_t classes = logits.dim(1);
    if (labels.size() != batch) {
        throw std::invalid_argument("cross_entropy: label count mismatch");
    }

    LossResult result;
    result.grad = Tensor(logits.shape());
    const auto x = logits.data();
    auto g = result.grad.data();
    double total_loss = 0.0;
    const auto inv_batch = 1.0f / static_cast<float>(batch);

    for (std::size_t n = 0; n < batch; ++n) {
        const float* row = x.data() + n * classes;
        float* grad_row = g.data() + n * classes;
        const std::size_t label = labels[n];
        if (label >= classes) {
            throw std::out_of_range("cross_entropy: label out of range");
        }
        // Numerically stable log-softmax.
        float max_logit = row[0];
        for (std::size_t k = 1; k < classes; ++k) {
            max_logit = std::max(max_logit, row[k]);
        }
        double denom = 0.0;
        for (std::size_t k = 0; k < classes; ++k) {
            denom += std::exp(static_cast<double>(row[k] - max_logit));
        }
        const double log_denom = std::log(denom);
        total_loss += -(static_cast<double>(row[label] - max_logit) - log_denom);
        for (std::size_t k = 0; k < classes; ++k) {
            const double softmax =
                std::exp(static_cast<double>(row[k] - max_logit)) / denom;
            grad_row[k] = (static_cast<float>(softmax) - (k == label ? 1.0f : 0.0f)) * inv_batch;
        }
    }
    result.loss = total_loss / static_cast<double>(batch);
    return result;
}

std::vector<std::size_t> argmax_rows(const Tensor& logits)
{
    if (logits.rank() != 2) {
        throw std::invalid_argument("argmax_rows: expected [N, K]");
    }
    const std::size_t batch = logits.dim(0);
    const std::size_t classes = logits.dim(1);
    std::vector<std::size_t> predictions(batch, 0);
    const auto x = logits.data();
    for (std::size_t n = 0; n < batch; ++n) {
        const float* row = x.data() + n * classes;
        std::size_t best = 0;
        for (std::size_t k = 1; k < classes; ++k) {
            if (row[k] > row[best]) {
                best = k;
            }
        }
        predictions[n] = best;
    }
    return predictions;
}

namespace {

/// L2-normalize every row; returns norms for the gradient pass.
void normalize_rows(const Tensor& input, Tensor& normalized, std::vector<double>& norms)
{
    const std::size_t rows = input.dim(0);
    const std::size_t dim = input.dim(1);
    normalized = input;
    norms.assign(rows, 0.0);
    auto z = normalized.data();
    for (std::size_t r = 0; r < rows; ++r) {
        float* row = z.data() + r * dim;
        double norm_sq = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            norm_sq += static_cast<double>(row[d]) * static_cast<double>(row[d]);
        }
        const double norm = std::sqrt(std::max(norm_sq, 1e-24));
        norms[r] = norm;
        const auto inv = static_cast<float>(1.0 / norm);
        for (std::size_t d = 0; d < dim; ++d) {
            row[d] *= inv;
        }
    }
}

/// Cosine similarity matrix of row-normalized embeddings.
[[nodiscard]] std::vector<double> similarity_matrix(const Tensor& z)
{
    const std::size_t rows = z.dim(0);
    const std::size_t dim = z.dim(1);
    std::vector<double> sim(rows * rows, 0.0);
    const auto data = z.data();
    for (std::size_t i = 0; i < rows; ++i) {
        const float* zi = data.data() + i * dim;
        for (std::size_t j = i + 1; j < rows; ++j) {
            const float* zj = data.data() + j * dim;
            double dot = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                dot += static_cast<double>(zi[d]) * static_cast<double>(zj[d]);
            }
            sim[i * rows + j] = dot;
            sim[j * rows + i] = dot;
        }
    }
    return sim;
}

} // namespace

LossResult nt_xent(const Tensor& projections, double temperature)
{
    if (projections.rank() != 2 || projections.dim(0) % 2 != 0 || projections.dim(0) < 4) {
        throw std::invalid_argument("nt_xent: expected [2B, D] with B >= 2");
    }
    if (!(temperature > 0.0)) {
        throw std::invalid_argument("nt_xent: temperature must be positive");
    }
    const std::size_t rows = projections.dim(0);
    const std::size_t dim = projections.dim(1);

    Tensor z;
    std::vector<double> norms;
    normalize_rows(projections, z, norms);
    const auto sim = similarity_matrix(z);

    // dL/ds accumulation, where s_ij = cos(z_i, z_j) / temperature.
    std::vector<double> grad_s(rows * rows, 0.0);
    double total_loss = 0.0;
    const double inv_anchors = 1.0 / static_cast<double>(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t positive = i ^ 1; // views are interleaved pairs
        double max_s = -1e30;
        for (std::size_t j = 0; j < rows; ++j) {
            if (j != i) {
                max_s = std::max(max_s, sim[i * rows + j] / temperature);
            }
        }
        double denom = 0.0;
        for (std::size_t j = 0; j < rows; ++j) {
            if (j != i) {
                denom += std::exp(sim[i * rows + j] / temperature - max_s);
            }
        }
        const double s_pos = sim[i * rows + positive] / temperature;
        total_loss += -(s_pos - max_s - std::log(denom));
        for (std::size_t j = 0; j < rows; ++j) {
            if (j == i) {
                continue;
            }
            const double p = std::exp(sim[i * rows + j] / temperature - max_s) / denom;
            grad_s[i * rows + j] += (p - (j == positive ? 1.0 : 0.0)) * inv_anchors;
        }
    }

    // dL/dz_i = sum_j (G_ij + G_ji) z_j / temperature.
    Tensor grad_z({rows, dim});
    {
        const auto z_data = z.data();
        auto gz = grad_z.data();
        for (std::size_t i = 0; i < rows; ++i) {
            float* gz_row = gz.data() + i * dim;
            for (std::size_t j = 0; j < rows; ++j) {
                if (j == i) {
                    continue;
                }
                const double coeff = (grad_s[i * rows + j] + grad_s[j * rows + i]) / temperature;
                if (coeff == 0.0) {
                    continue;
                }
                const float* z_row = z_data.data() + j * dim;
                for (std::size_t d = 0; d < dim; ++d) {
                    gz_row[d] += static_cast<float>(coeff * static_cast<double>(z_row[d]));
                }
            }
        }
    }

    // Backprop through row normalization: de = (dz - (z . dz) z) / ||e||.
    LossResult result;
    result.loss = total_loss * inv_anchors;
    result.grad = Tensor(projections.shape());
    {
        const auto z_data = z.data();
        const auto gz = grad_z.data();
        auto ge = result.grad.data();
        for (std::size_t i = 0; i < rows; ++i) {
            const float* z_row = z_data.data() + i * dim;
            const float* gz_row = gz.data() + i * dim;
            float* ge_row = ge.data() + i * dim;
            double dot = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                dot += static_cast<double>(z_row[d]) * static_cast<double>(gz_row[d]);
            }
            const double inv_norm = 1.0 / norms[i];
            for (std::size_t d = 0; d < dim; ++d) {
                ge_row[d] = static_cast<float>(
                    (static_cast<double>(gz_row[d]) - dot * static_cast<double>(z_row[d])) * inv_norm);
            }
        }
    }
    return result;
}

LossResult sup_con(const Tensor& projections, std::span<const std::size_t> labels,
                   double temperature)
{
    if (projections.rank() != 2 || projections.dim(0) < 2) {
        throw std::invalid_argument("sup_con: expected [N >= 2, D]");
    }
    if (labels.size() != projections.dim(0)) {
        throw std::invalid_argument("sup_con: label count mismatch");
    }
    if (!(temperature > 0.0)) {
        throw std::invalid_argument("sup_con: temperature must be positive");
    }
    const std::size_t rows = projections.dim(0);
    const std::size_t dim = projections.dim(1);

    Tensor z;
    std::vector<double> norms;
    normalize_rows(projections, z, norms);
    const auto sim = similarity_matrix(z);

    // dL/ds accumulation over the multi-positive objective.
    std::vector<double> grad_s(rows * rows, 0.0);
    double total_loss = 0.0;
    std::size_t active_anchors = 0;
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<std::size_t> positives;
        for (std::size_t j = 0; j < rows; ++j) {
            if (j != i && labels[j] == labels[i]) {
                positives.push_back(j);
            }
        }
        if (positives.empty()) {
            continue; // anchor with no positive: skipped (SupCon convention)
        }
        ++active_anchors;
        double max_s = -1e30;
        for (std::size_t j = 0; j < rows; ++j) {
            if (j != i) {
                max_s = std::max(max_s, sim[i * rows + j] / temperature);
            }
        }
        double denom = 0.0;
        for (std::size_t j = 0; j < rows; ++j) {
            if (j != i) {
                denom += std::exp(sim[i * rows + j] / temperature - max_s);
            }
        }
        const double inv_positives = 1.0 / static_cast<double>(positives.size());
        for (const auto p : positives) {
            const double s_pos = sim[i * rows + p] / temperature;
            total_loss += -(s_pos - max_s - std::log(denom)) * inv_positives;
            grad_s[i * rows + p] -= inv_positives;
        }
        // Softmax pull: each positive term contributes the same softmax
        // distribution over all non-anchor rows, so it enters once.
        for (std::size_t j = 0; j < rows; ++j) {
            if (j == i) {
                continue;
            }
            const double softmax = std::exp(sim[i * rows + j] / temperature - max_s) / denom;
            grad_s[i * rows + j] += softmax;
        }
    }
    if (active_anchors == 0) {
        LossResult empty;
        empty.grad = Tensor(projections.shape());
        return empty;
    }
    const double inv_anchors = 1.0 / static_cast<double>(active_anchors);
    for (auto& g : grad_s) {
        g *= inv_anchors;
    }

    // dL/dz_i = sum_j (G_ij + G_ji) z_j / temperature, then backprop through
    // the row normalization — identical machinery to nt_xent.
    Tensor grad_z({rows, dim});
    {
        const auto z_data = z.data();
        auto gz = grad_z.data();
        for (std::size_t i = 0; i < rows; ++i) {
            float* gz_row = gz.data() + i * dim;
            for (std::size_t j = 0; j < rows; ++j) {
                if (j == i) {
                    continue;
                }
                const double coeff = (grad_s[i * rows + j] + grad_s[j * rows + i]) / temperature;
                if (coeff == 0.0) {
                    continue;
                }
                const float* z_row = z_data.data() + j * dim;
                for (std::size_t d = 0; d < dim; ++d) {
                    gz_row[d] += static_cast<float>(coeff * static_cast<double>(z_row[d]));
                }
            }
        }
    }

    LossResult result;
    result.loss = total_loss * inv_anchors;
    result.grad = Tensor(projections.shape());
    {
        const auto z_data = z.data();
        const auto gz = grad_z.data();
        auto ge = result.grad.data();
        for (std::size_t i = 0; i < rows; ++i) {
            const float* z_row = z_data.data() + i * dim;
            const float* gz_row = gz.data() + i * dim;
            float* ge_row = ge.data() + i * dim;
            double dot = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                dot += static_cast<double>(z_row[d]) * static_cast<double>(gz_row[d]);
            }
            const double inv_norm = 1.0 / norms[i];
            for (std::size_t d = 0; d < dim; ++d) {
                ge_row[d] = static_cast<float>(
                    (static_cast<double>(gz_row[d]) - dot * static_cast<double>(z_row[d])) * inv_norm);
            }
        }
    }
    return result;
}

double contrastive_top_k_accuracy(const Tensor& projections, std::size_t k)
{
    if (projections.rank() != 2 || projections.dim(0) % 2 != 0 || projections.dim(0) < 2) {
        throw std::invalid_argument("contrastive_top_k_accuracy: expected [2B, D]");
    }
    const std::size_t rows = projections.dim(0);

    Tensor z;
    std::vector<double> norms;
    normalize_rows(projections, z, norms);
    const auto sim = similarity_matrix(z);

    std::size_t hits = 0;
    for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t positive = i ^ 1;
        const double positive_sim = sim[i * rows + positive];
        std::size_t strictly_better = 0;
        for (std::size_t j = 0; j < rows; ++j) {
            if (j != i && j != positive && sim[i * rows + j] > positive_sim) {
                ++strictly_better;
            }
        }
        if (strictly_better < k) {
            ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(rows);
}

} // namespace fptc::nn
