#include "fptc/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace fptc::nn {

Optimizer::Optimizer(std::vector<Parameter*> parameters) : parameters_(std::move(parameters))
{
    for (const auto* p : parameters_) {
        if (p == nullptr) {
            throw std::invalid_argument("Optimizer: null parameter");
        }
    }
}

void Optimizer::zero_grad()
{
    for (auto* p : parameters_) {
        p->zero_grad();
    }
}

Sgd::Sgd(std::vector<Parameter*> parameters, double learning_rate, double momentum)
    : Optimizer(std::move(parameters)), momentum_(momentum)
{
    learning_rate_ = learning_rate;
    if (momentum_ != 0.0) {
        velocity_.reserve(parameters_.size());
        for (const auto* p : parameters_) {
            velocity_.emplace_back(Tensor::zeros(p->value.shape()));
        }
    }
}

void Sgd::step()
{
    const auto lr = static_cast<float>(learning_rate_);
    for (std::size_t i = 0; i < parameters_.size(); ++i) {
        auto& p = *parameters_[i];
        auto values = p.value.data();
        const auto grads = p.grad.data();
        if (momentum_ == 0.0) {
            for (std::size_t j = 0; j < values.size(); ++j) {
                values[j] -= lr * grads[j];
            }
        } else {
            auto v = velocity_[i].data();
            const auto mu = static_cast<float>(momentum_);
            for (std::size_t j = 0; j < values.size(); ++j) {
                v[j] = mu * v[j] + grads[j];
                values[j] -= lr * v[j];
            }
        }
    }
}

Adam::Adam(std::vector<Parameter*> parameters, double learning_rate, double beta1, double beta2,
           double epsilon)
    : Optimizer(std::move(parameters)), beta1_(beta1), beta2_(beta2), epsilon_(epsilon)
{
    learning_rate_ = learning_rate;
    first_moment_.reserve(parameters_.size());
    second_moment_.reserve(parameters_.size());
    for (const auto* p : parameters_) {
        first_moment_.emplace_back(Tensor::zeros(p->value.shape()));
        second_moment_.emplace_back(Tensor::zeros(p->value.shape()));
    }
}

void Adam::step()
{
    ++step_count_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
    const double alpha = learning_rate_ * std::sqrt(bias2) / bias1;
    const auto b1 = static_cast<float>(beta1_);
    const auto b2 = static_cast<float>(beta2_);
    for (std::size_t i = 0; i < parameters_.size(); ++i) {
        auto& p = *parameters_[i];
        auto values = p.value.data();
        const auto grads = p.grad.data();
        auto m = first_moment_[i].data();
        auto v = second_moment_[i].data();
        for (std::size_t j = 0; j < values.size(); ++j) {
            m[j] = b1 * m[j] + (1.0f - b1) * grads[j];
            v[j] = b2 * v[j] + (1.0f - b2) * grads[j] * grads[j];
            values[j] -= static_cast<float>(alpha * static_cast<double>(m[j]) /
                                            (std::sqrt(static_cast<double>(v[j])) + epsilon_));
        }
    }
}

} // namespace fptc::nn
