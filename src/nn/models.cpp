#include "fptc/nn/models.hpp"

#include "fptc/nn/conv.hpp"
#include "fptc/nn/layers.hpp"
#include "fptc/util/rng.hpp"

#include <stdexcept>

namespace fptc::nn {

namespace {

constexpr std::size_t kConvKernel = 5;
constexpr std::size_t kPoolWindow = 2;
constexpr std::size_t kConv1Channels = 6;
constexpr std::size_t kConv2Channels = 16;
constexpr double kDropout2dRate = 0.25;
constexpr double kDropoutRate = 0.5;
constexpr std::size_t kLargeInputThreshold = 256;

/// Output side after the two conv+pool blocks on an e x e input.
[[nodiscard]] std::size_t trunk_spatial_dim(std::size_t input_dim)
{
    const std::size_t after_conv1 = input_dim - (kConvKernel - 1);
    const std::size_t after_pool1 = after_conv1 / kPoolWindow;
    const std::size_t after_conv2 = after_pool1 - (kConvKernel - 1);
    return after_conv2 / kPoolWindow;
}

/// Append the shared convolutional trunk (through the 120-d representation)
/// to `network`.  Returns the flattened dimension feeding Linear(->120).
std::size_t append_trunk(Sequential& network, const ModelConfig& config)
{
    // Large flowpics (>= 256) are max-pooled to ~64x64 by the data pipeline
    // (core::rasterize) before reaching the network; the trunk is built for
    // that effective resolution.
    const std::size_t input_dim = effective_input_dim(config.flowpic_dim);
    if (input_dim < 2 * kConvKernel) {
        throw std::invalid_argument("make network: flowpic_dim too small for LeNet trunk");
    }
    network.add(std::make_unique<Conv2d>(config.input_channels, kConv1Channels, kConvKernel,
                                         util::mix_seed(config.seed, 1)));
    network.add(std::make_unique<ReLU>());
    network.add(std::make_unique<MaxPool2d>(kPoolWindow));
    network.add(std::make_unique<Conv2d>(kConv1Channels, kConv2Channels, kConvKernel,
                                         util::mix_seed(config.seed, 2)));
    network.add(std::make_unique<ReLU>());
    if (config.with_dropout) {
        network.add(std::make_unique<Dropout2d>(kDropout2dRate, util::mix_seed(config.seed, 3)));
    } else {
        network.add(std::make_unique<Identity>()); // "<- masked" in listing 2
    }
    network.add(std::make_unique<MaxPool2d>(kPoolWindow));
    network.add(std::make_unique<Flatten>());
    const std::size_t spatial = trunk_spatial_dim(input_dim);
    const std::size_t flattened = kConv2Channels * spatial * spatial;
    network.add(
        std::make_unique<Linear>(flattened, kRepresentationDim, util::mix_seed(config.seed, 4)));
    network.add(std::make_unique<ReLU>());
    return flattened;
}

} // namespace

std::size_t effective_input_dim(std::size_t flowpic_dim) noexcept
{
    if (flowpic_dim < kLargeInputThreshold) {
        return flowpic_dim;
    }
    const std::size_t window = flowpic_dim / 64;
    return flowpic_dim / window;
}

Sequential make_supervised_network(const ModelConfig& config)
{
    Sequential network;
    append_trunk(network, config);
    if (config.flowpic_dim >= kLargeInputThreshold) {
        // "Full" architecture: one fewer fully-connected layer than the mini
        // version (the Ref-Paper's Fig. 6-7 diagrams, as noted in Sec. 4.4.1).
        if (config.with_dropout) {
            network.add(std::make_unique<Dropout>(kDropoutRate, util::mix_seed(config.seed, 5)));
        } else {
            network.add(std::make_unique<Identity>());
        }
        network.add(std::make_unique<Linear>(kRepresentationDim, config.num_classes,
                                             util::mix_seed(config.seed, 6)));
        return network;
    }
    network.add(std::make_unique<Linear>(kRepresentationDim, 84, util::mix_seed(config.seed, 5)));
    network.add(std::make_unique<ReLU>());
    if (config.with_dropout) {
        network.add(std::make_unique<Dropout>(kDropoutRate, util::mix_seed(config.seed, 6)));
    } else {
        network.add(std::make_unique<Identity>()); // "<- masked" in listing 2
    }
    network.add(
        std::make_unique<Linear>(84, config.num_classes, util::mix_seed(config.seed, 7)));
    return network;
}

Tensor SimClrNetwork::forward(const Tensor& input, bool training)
{
    return projection.forward(trunk.forward(input, training), training);
}

void SimClrNetwork::backward(const Tensor& grad_output)
{
    const Tensor grad_h = projection.backward(grad_output);
    (void)trunk.backward(grad_h);
}

Tensor SimClrNetwork::embed(const Tensor& input)
{
    return trunk.forward(input, /*training=*/false);
}

std::vector<Parameter*> SimClrNetwork::parameters()
{
    auto params = trunk.parameters();
    const auto head = projection.parameters();
    params.insert(params.end(), head.begin(), head.end());
    return params;
}

void SimClrNetwork::zero_grad()
{
    trunk.zero_grad();
    projection.zero_grad();
}

SimClrNetwork make_simclr_network(const ModelConfig& config)
{
    SimClrNetwork network;
    append_trunk(network.trunk, config);
    // Projection head g(.): Linear(120->120) ReLU [dropout slot] Linear(120->proj).
    network.projection.add(std::make_unique<Linear>(kRepresentationDim, kRepresentationDim,
                                                    util::mix_seed(config.seed, 10)));
    network.projection.add(std::make_unique<ReLU>());
    if (config.with_dropout) {
        network.projection.add(
            std::make_unique<Dropout>(kDropoutRate, util::mix_seed(config.seed, 11)));
    } else {
        network.projection.add(std::make_unique<Identity>()); // listing 3's Identity-13
    }
    network.projection.add(std::make_unique<Linear>(kRepresentationDim, config.projection_dim,
                                                    util::mix_seed(config.seed, 12)));
    return network;
}

Sequential make_finetune_head(const ModelConfig& config)
{
    Sequential head;
    head.add(std::make_unique<Linear>(kRepresentationDim, config.num_classes,
                                      util::mix_seed(config.seed, 20)));
    return head;
}

} // namespace fptc::nn
