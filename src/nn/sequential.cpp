#include "fptc/nn/sequential.hpp"

#include "fptc/nn/layers.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace fptc::nn {

std::size_t Sequential::add(std::unique_ptr<Layer> layer)
{
    if (!layer) {
        throw std::invalid_argument("Sequential::add: null layer");
    }
    layers_.push_back(std::move(layer));
    return layers_.size() - 1;
}

Layer& Sequential::layer(std::size_t index)
{
    return *layers_.at(index);
}

const Layer& Sequential::layer(std::size_t index) const
{
    return *layers_.at(index);
}

void Sequential::mask_layer(std::size_t index)
{
    layers_.at(index) = std::make_unique<Identity>();
}

Tensor Sequential::forward(const Tensor& input, bool training)
{
    Tensor current = input;
    for (const auto& layer : layers_) {
        current = layer->forward(current, training);
    }
    return current;
}

Tensor Sequential::backward(const Tensor& grad_output)
{
    Tensor current = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        current = (*it)->backward(current);
    }
    return current;
}

std::vector<Parameter*> Sequential::parameters()
{
    std::vector<Parameter*> all;
    for (const auto& layer : layers_) {
        const auto params = layer->parameters();
        all.insert(all.end(), params.begin(), params.end());
    }
    return all;
}

void Sequential::zero_grad()
{
    for (auto* p : parameters()) {
        p->zero_grad();
    }
}

std::size_t Sequential::parameter_count()
{
    std::size_t total = 0;
    for (const auto& layer : layers_) {
        total += layer->parameter_count();
    }
    return total;
}

std::string Sequential::summary(const Shape& input_shape)
{
    std::ostringstream out;
    out << "Layer (type)          Output Shape           Param #\n";
    out << "====================================================\n";
    Tensor current(input_shape);
    std::size_t total = 0;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        current = layers_[i]->forward(current, /*training=*/false);
        const auto params = layers_[i]->parameter_count();
        total += params;
        char line[128];
        std::snprintf(line, sizeof line, "%-10s-%-10zu %-22s %zu\n", layers_[i]->name().c_str(),
                      i + 1, current.shape_string().c_str(), params);
        out << line;
    }
    out << "====================================================\n";
    out << "Total params: " << total << '\n';
    return out.str();
}

} // namespace fptc::nn
