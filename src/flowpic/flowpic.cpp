#include "fptc/flowpic/flowpic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fptc::flowpic {

Flowpic::Flowpic(std::size_t resolution, std::vector<float> counts)
    : resolution_(resolution),
      charge_(counts.size() * sizeof(float), "flowpic::Flowpic"),
      counts_(std::move(counts))
{
    if (resolution_ == 0 || counts_.size() != resolution_ * resolution_) {
        throw std::invalid_argument("Flowpic: counts size must be resolution^2");
    }
}

Flowpic Flowpic::from_flow(const flow::Flow& flow, const FlowpicConfig& config)
{
    if (config.resolution == 0 || config.duration <= 0.0) {
        throw std::invalid_argument("Flowpic::from_flow: bad configuration");
    }
    const std::size_t n = config.resolution;
    std::vector<float> counts(n * n, 0.0f);
    if (!flow.packets.empty()) {
        const double start =
            config.origin_at_first_packet ? flow.packets.front().timestamp : 0.0;
        const double time_width = config.duration / static_cast<double>(n);
        const double size_width = static_cast<double>(flow::kMaxPacketSize) / static_cast<double>(n);
        for (const auto& packet : flow.packets) {
            const double elapsed = packet.timestamp - start;
            if (elapsed < 0.0 || elapsed > config.duration) {
                continue; // only the first `duration` seconds are represented
            }
            auto time_bin = static_cast<std::size_t>(elapsed / time_width);
            time_bin = std::min(time_bin, n - 1);
            const double clamped_size =
                std::clamp(static_cast<double>(packet.size), 0.0,
                           static_cast<double>(flow::kMaxPacketSize));
            auto size_bin = static_cast<std::size_t>(clamped_size / size_width);
            size_bin = std::min(size_bin, n - 1);
            counts[size_bin * n + time_bin] += 1.0f;
        }
    }
    return Flowpic(n, std::move(counts));
}

float Flowpic::at(std::size_t row, std::size_t column) const
{
    if (row >= resolution_ || column >= resolution_) {
        throw std::out_of_range("Flowpic::at");
    }
    return counts_[row * resolution_ + column];
}

float& Flowpic::at(std::size_t row, std::size_t column)
{
    if (row >= resolution_ || column >= resolution_) {
        throw std::out_of_range("Flowpic::at");
    }
    return counts_[row * resolution_ + column];
}

double Flowpic::total_mass() const noexcept
{
    double mass = 0.0;
    for (const float v : counts_) {
        mass += static_cast<double>(v);
    }
    return mass;
}

void Flowpic::normalize_max()
{
    float max_count = 0.0f;
    for (const float v : counts_) {
        max_count = std::max(max_count, v);
    }
    if (max_count <= 0.0f) {
        return;
    }
    for (auto& v : counts_) {
        v /= max_count;
    }
}

std::vector<float> Flowpic::flattened() const
{
    return counts_;
}

double time_bin_width(const FlowpicConfig& config) noexcept
{
    return config.duration / static_cast<double>(config.resolution);
}

double size_bin_width(const FlowpicConfig& config) noexcept
{
    return static_cast<double>(flow::kMaxPacketSize) / static_cast<double>(config.resolution);
}

Flowpic average_flowpic(std::span<const flow::Flow> flows, const FlowpicConfig& config)
{
    if (flows.empty()) {
        throw std::invalid_argument("average_flowpic: no flows");
    }
    const std::size_t n = config.resolution;
    std::vector<float> accum(n * n, 0.0f);
    for (const auto& flow : flows) {
        const auto pic = Flowpic::from_flow(flow, config);
        const auto counts = pic.counts();
        for (std::size_t i = 0; i < accum.size(); ++i) {
            accum[i] += counts[i];
        }
    }
    const auto count = static_cast<float>(flows.size());
    for (auto& v : accum) {
        v /= count;
    }
    return Flowpic(n, std::move(accum));
}

std::pair<Flowpic, Flowpic> directional_flowpics(const flow::Flow& flow,
                                                 const FlowpicConfig& config)
{
    flow::Flow upstream;
    flow::Flow downstream;
    upstream.label = downstream.label = flow.label;
    for (const auto& packet : flow.packets) {
        if (packet.direction == flow::Direction::upstream) {
            upstream.packets.push_back(packet);
        } else {
            downstream.packets.push_back(packet);
        }
    }
    // The absolute time origin must be shared by both channels; with the
    // default origin (t = 0) each channel can be rasterized independently.
    FlowpicConfig channel_config = config;
    channel_config.origin_at_first_packet = false;
    if (config.origin_at_first_packet && !flow.packets.empty()) {
        const double start = flow.packets.front().timestamp;
        for (auto* direction : {&upstream, &downstream}) {
            for (auto& packet : direction->packets) {
                packet.timestamp -= start;
            }
        }
    }
    return {Flowpic::from_flow(upstream, channel_config),
            Flowpic::from_flow(downstream, channel_config)};
}

Flowpic average_flowpic_of_class(const flow::Dataset& dataset, std::size_t label,
                                 const FlowpicConfig& config)
{
    std::vector<flow::Flow> class_flows;
    for (const auto& flow : dataset.flows) {
        if (flow.label == label) {
            class_flows.push_back(flow);
        }
    }
    return average_flowpic(class_flows, config);
}

} // namespace fptc::flowpic
