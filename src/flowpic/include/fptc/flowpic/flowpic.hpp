// The flowpic input representation.
//
// Section 2.2 of the paper: "The Ref-Paper computes a flowpic using only the
// first 15s of the time series.  Specifically, both the 15s and the packets
// size range (0-1500) are split into bins based on the resolution of the
// target flowpic.  For instance a 32x32 flowpic leads to 469.8ms time bins
// and 46B packet size bins.  Then, the count of the packets occurring in
// each time window are tallied based on the defined packet size bins."
//
// Orientation follows Fig. 4: "the horizontal axis of a flowpic corresponds
// to time (time zero on the left) while the vertical axis corresponds to
// packet sizes (zero length on the top)".  Direction is ignored (footnote 3).
#pragma once

#include "fptc/flow/dataset.hpp"
#include "fptc/flow/packet.hpp"
#include "fptc/util/membudget.hpp"

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace fptc::flowpic {

/// Flowpic construction parameters.
struct FlowpicConfig {
    std::size_t resolution = 32; ///< N for an NxN flowpic (paper: 32, 64, 1500)
    double duration = 15.0;      ///< seconds of traffic considered (paper: 15 s)
    /// When false (default) the time window is the absolute [0, duration]
    /// interval — flows are curated to start at t=0, and the Time-shift
    /// augmentation moves packets within this fixed window.  When true the
    /// window starts at the first packet (useful for un-curated captures).
    bool origin_at_first_packet = false;
};

/// A single NxN flowpic: row-major packet counts, row = size bin (small sizes
/// at the top, i.e. row 0), column = time bin.
class Flowpic {
public:
    Flowpic(std::size_t resolution, std::vector<float> counts);

    /// Build from a flow using the given configuration.  Packets beyond the
    /// window or with out-of-range sizes are clamped into the edge bins.
    [[nodiscard]] static Flowpic from_flow(const flow::Flow& flow, const FlowpicConfig& config = {});

    [[nodiscard]] std::size_t resolution() const noexcept { return resolution_; }
    [[nodiscard]] std::span<const float> counts() const noexcept { return counts_; }
    [[nodiscard]] std::span<float> counts() noexcept { return counts_; }

    /// Count at (size_bin row, time_bin column).
    [[nodiscard]] float at(std::size_t row, std::size_t column) const;
    [[nodiscard]] float& at(std::size_t row, std::size_t column);

    /// Total number of packets tallied (the flowpic's "mass").
    [[nodiscard]] double total_mass() const noexcept;

    /// Scale counts so the maximum becomes 1 (CNN input normalization);
    /// no-op for an all-zero flowpic.
    void normalize_max();

    /// Flatten row-major into a feature vector (Table 3 feeds "a 32x32 image
    /// flattened into a 1,024 values array" to XGBoost).
    [[nodiscard]] std::vector<float> flattened() const;

private:
    std::size_t resolution_;
    // A 1500x1500 grid is ~9 MB — the dominant per-flow cost at the paper's
    // highest resolution, so every grid is charged against the process
    // memory budget for the life of the flowpic.
    util::Charge charge_;
    std::vector<float> counts_;
};

/// Time-bin width in seconds for a configuration (the paper quotes 469.8 ms
/// at 32x32 over 15 s).
[[nodiscard]] double time_bin_width(const FlowpicConfig& config) noexcept;

/// Size-bin width in bytes (46 B at 32x32).
[[nodiscard]] double size_bin_width(const FlowpicConfig& config) noexcept;

/// Element-wise mean flowpic over many flows (Fig. 4's per-class averages).
/// Throws std::invalid_argument for an empty input.
[[nodiscard]] Flowpic average_flowpic(std::span<const flow::Flow> flows,
                                      const FlowpicConfig& config = {});

/// Average flowpic of every flow of `label` in the dataset.
[[nodiscard]] Flowpic average_flowpic_of_class(const flow::Dataset& dataset, std::size_t label,
                                               const FlowpicConfig& config = {});

/// Direction-aware flowpic pair (paper footnote 3: "Traffic directionality
/// is not considered when composing the flowpic ... although the
/// representation could be reformulated to take it into account").
/// first = upstream packets only, second = downstream packets only; their
/// element-wise sum equals the plain flowpic of the same flow.
[[nodiscard]] std::pair<Flowpic, Flowpic> directional_flowpics(const flow::Flow& flow,
                                                               const FlowpicConfig& config = {});

} // namespace fptc::flowpic
