#include "fptc/serve/reload.hpp"

#include "fptc/nn/models.hpp"
#include "fptc/nn/serialize.hpp"
#include "fptc/trafficgen/traffic_model.hpp"
#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/crc32.hpp"
#include "fptc/util/rng.hpp"
#include "fptc/util/telemetry.hpp"

#include <fstream>
#include <sstream>
#include <utility>

namespace fptc::serve {

namespace {

/// Deterministic labeled replay buffer: the same (seed, num_classes,
/// canary_flows) always regenerates the identical flows, so incumbent and
/// candidate — and pre- and post-restart workers — are judged on the same
/// exam.
std::vector<ReadyFlow> make_golden_buffer(const ReloadConfig& config)
{
    std::vector<ReadyFlow> golden;
    if (config.canary_flows == 0 || config.num_classes == 0) {
        return golden;
    }
    util::Rng rng(util::mix_seed(config.seed, 0x901d));
    for (std::size_t c = 0; c < config.num_classes; ++c) {
        const auto profile = trafficgen::ucdavis19_profile(c % 5, false);
        auto flows = trafficgen::generate_flows(profile, c, config.canary_flows, rng);
        for (auto& f : flows) {
            ReadyFlow ready;
            ready.flow_id = golden.size() + 1;
            ready.label = static_cast<std::uint32_t>(c);
            ready.first_ts = f.packets.empty() ? 0.0 : f.packets.front().timestamp;
            ready.flow = std::move(f);
            golden.push_back(std::move(ready));
        }
    }
    return golden;
}

/// Whole-file read; empty optional-style "" + false on any failure.
bool read_file(const std::string& path, std::string& bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return false;
    }
    bytes = buffer.str();
    return !bytes.empty();
}

} // namespace

ModelReloader::ModelReloader(const ReloadConfig& config, CnnBackend* target)
    : config_(config), target_(config.path.empty() ? nullptr : target)
{
    if (enabled()) {
        golden_ = make_golden_buffer(config_);
    }
}

double ModelReloader::golden_accuracy(Backend& backend) const
{
    if (golden_.empty()) {
        return 0.0;
    }
    FPTC_TRACE_SPAN("serve_canary_replay", {{"backend", backend.name()}});
    const util::CancelToken token;
    const auto scored = backend.classify_scored({golden_.data(), golden_.size()}, token);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < scored.size(); ++i) {
        if (scored[i].label == golden_[i].label) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(golden_.size());
}

ModelReloader::Outcome ModelReloader::poll()
{
    if (!enabled()) {
        return Outcome::disabled;
    }
    ++polls_;
    if (config_.check_every > 1 && polls_ % config_.check_every != 0) {
        return Outcome::not_checked;
    }
    return check_now();
}

ModelReloader::Outcome ModelReloader::check_now()
{
    if (!enabled()) {
        return Outcome::disabled;
    }
    std::string bytes;
    if (!read_file(config_.path, bytes)) {
        return Outcome::no_candidate;
    }
    const std::uint32_t crc = util::crc32(bytes);
    if (has_last_crc_ && crc == last_crc_) {
        return Outcome::unchanged;
    }
    // A new candidate: remember it before judging so a rejected file is not
    // re-canaried (and re-counted) every interval.
    last_crc_ = crc;
    has_last_crc_ = true;
    ++stats_.attempts;

    // Stage 1: structural + semantic validation without touching anything.
    {
        std::istringstream in(bytes);
        std::string error;
        if (!nn::verify_checkpoint(in, &error)) {
            ++stats_.rollbacks;
            ++stats_.rejected_invalid;
            stats_.last_error = "checkpoint invalid: " + error;
            return Outcome::rolled_back;
        }
    }

    // Stage 2: load into a scratch network; the incumbent stays untouched.
    nn::ModelConfig model;
    model.flowpic_dim = target_->resolution();
    model.num_classes = config_.num_classes;
    model.seed = config_.seed;
    nn::Sequential candidate_network = nn::make_supervised_network(model);
    nn::Calibration candidate_calibration;
    try {
        std::istringstream in(bytes);
        nn::load_parameters(candidate_network.parameters(), in, &candidate_calibration);
    } catch (const std::exception& e) {
        ++stats_.rollbacks;
        ++stats_.rejected_invalid;
        stats_.last_error = std::string("candidate load failed: ") + e.what();
        return Outcome::rolled_back;
    }

    // Stage 3: golden replay — candidate vs incumbent on the same flows.
    stats_.incumbent_accuracy = golden_accuracy(*target_);
    CnnBackend candidate(target_->resolution(), std::move(candidate_network));
    candidate.set_calibration(candidate_calibration);
    stats_.candidate_accuracy = golden_accuracy(candidate);
    if (stats_.candidate_accuracy + config_.tolerance < stats_.incumbent_accuracy) {
        ++stats_.rollbacks;
        ++stats_.rejected_accuracy;
        stats_.last_error = "candidate golden accuracy " +
                            std::to_string(stats_.candidate_accuracy) + " below incumbent " +
                            std::to_string(stats_.incumbent_accuracy) + " - tolerance";
        return Outcome::rolled_back;
    }

    target_->swap_model(std::move(candidate.network()), candidate_calibration);
    ++model_generation_;
    ++stats_.reloads;
    stats_.last_error.clear();
    return Outcome::reloaded;
}

} // namespace fptc::serve
