#include "fptc/serve/stream.hpp"

#include "fptc/trafficgen/ucdavis19.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/rng.hpp"

#include <algorithm>
#include <limits>

namespace fptc::serve {

InterleavedStream::InterleavedStream(const StreamConfig& config)
{
    util::Rng rng(util::mix_seed(config.seed, 0x5E47E));
    const std::size_t num_classes = std::max<std::size_t>(1, config.num_classes);

    std::vector<trafficgen::ClassProfile> profiles;
    profiles.reserve(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
        profiles.push_back(trafficgen::ucdavis19_profile(c % 5, config.human_shift));
    }
    // Drift targets, built lazily only when a schedule is active so an
    // inactive schedule draws nothing extra from the RNG and the stream
    // stays bit-identical to the pre-drift one.
    const trafficgen::DriftSchedule& drift = config.drift;
    std::vector<trafficgen::ClassProfile> shifted;
    trafficgen::ClassProfile unknown_profile;
    std::vector<double> class_cdf;
    if (drift.active()) {
        shifted.reserve(num_classes);
        for (std::size_t c = 0; c < num_classes; ++c) {
            // The shift target is the *other* partition of the same class —
            // the paper's script-vs-human drift.
            shifted.push_back(trafficgen::ucdavis19_profile(c % 5, !config.human_shift));
        }
        unknown_profile = trafficgen::unknown_app_profile(config.seed);
        if (drift.imbalance > 0.0) {
            // Geometric class weights s^c, normalized into a CDF.
            double total = 0.0;
            double weight = 1.0;
            for (std::size_t c = 0; c < num_classes; ++c) {
                total += weight;
                class_cdf.push_back(total);
                weight *= drift.imbalance;
            }
            for (double& edge : class_cdf) {
                edge /= total;
            }
        }
    }

    for (std::size_t i = 0; i < config.flows; ++i) {
        std::size_t label = i % num_classes;
        flow::Flow flow;
        double start = 0.0;
        if (!drift.active()) {
            flow = trafficgen::generate_flow(profiles[label], label, rng);
            start = rng.uniform(0.0, std::max(config.arrival_window, 0.0));
        } else {
            // Start time first: the schedule keys off arrival progress.
            start = rng.uniform(0.0, std::max(config.arrival_window, 0.0));
            const double progress =
                config.arrival_window > 0.0 ? start / config.arrival_window : 0.0;
            if (!class_cdf.empty()) {
                const double u = rng.uniform(0.0, 1.0);
                label = 0;
                while (label + 1 < num_classes && u > class_cdf[label]) {
                    ++label;
                }
            }
            const bool inject_unknown = drift.unknown_rate > 0.0 && progress >= drift.at &&
                                        rng.uniform(0.0, 1.0) < drift.unknown_rate;
            if (inject_unknown) {
                label = num_classes;  // ground truth: outside every trained class
                flow = trafficgen::generate_flow(unknown_profile, label, rng);
            } else {
                const double w = drift.shift_weight(progress);
                flow = w > 0.0
                           ? trafficgen::generate_flow(
                                 trafficgen::blend_profiles(profiles[label], shifted[label], w),
                                 label, rng)
                           : trafficgen::generate_flow(profiles[label], label, rng);
            }
        }
        if (flow.packets.empty()) {
            continue;
        }
        if (label == num_classes) {
            ++unknown_flows_;
        }
        const std::uint64_t flow_id = static_cast<std::uint64_t>(i) + 1;  // 0 is invalid
        for (std::size_t p = 0; p < flow.packets.size(); ++p) {
            const flow::Packet& packet = flow.packets[p];
            events_.push_back(PacketEvent{
                .flow_id = flow_id,
                .label = static_cast<std::uint32_t>(label),
                .timestamp = start + packet.timestamp,
                .size = static_cast<double>(packet.size),
                .direction = packet.direction,
                .flow_end = p + 1 == flow.packets.size(),
            });
        }
        ++flow_count_;
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const PacketEvent& a, const PacketEvent& b) {
                         return a.timestamp < b.timestamp;
                     });
    mangle_rng_state_ = util::mix_seed(config.seed, 0x3A46);
}

namespace {

/// Corrupt an event so that serve::validate is guaranteed to reject it.
/// `selector` cycles through the corruption modes deterministically.
void mangle_event(PacketEvent& event, std::uint64_t selector)
{
    switch (selector % 4) {
    case 0: event.timestamp = std::numeric_limits<double>::quiet_NaN(); break;
    case 1: event.timestamp = -1.0 - event.timestamp; break;
    case 2: event.size = -static_cast<double>(42 + selector % 1000); break;
    default: event.size = 1e9; break;
    }
}

} // namespace

std::optional<PacketEvent> InterleavedStream::next()
{
    if (pending_burst_ > 0 && cursor_ > 0) {
        // Burst clones replay the previous event verbatim (same timestamp,
        // same flow) — but never its flow_end marker.
        PacketEvent clone = events_[cursor_ - 1];
        clone.flow_end = false;
        --pending_burst_;
        ++burst_events_;
        ++emitted_;
        return clone;
    }
    if (cursor_ >= events_.size()) {
        return std::nullopt;
    }
    PacketEvent event = events_[cursor_++];
    util::FaultInjector& faults = util::fault_injector();
    pending_burst_ = faults.inject_serve_burst();
    if (faults.inject_serve_mangle()) {
        mangle_event(event, ++mangle_rng_state_);
        ++mangled_;
    }
    ++emitted_;
    return event;
}

} // namespace fptc::serve
