#include "fptc/serve/service.hpp"

#include "fptc/serve/flow_table.hpp"
#include "fptc/serve/queue.hpp"

#include "fptc/util/cancel.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/shutdown.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

namespace fptc::serve {

namespace {

std::size_t env_size(const char* name, std::size_t fallback, std::size_t minimum)
{
    const auto value = util::env_int(name);
    if (!value.has_value()) {
        return fallback;
    }
    const auto parsed = static_cast<std::size_t>(*value);
    if (parsed < minimum) {
        throw util::EnvError(std::string(name) + " must be >= " + std::to_string(minimum) +
                             ", got " + std::to_string(parsed));
    }
    return parsed;
}

double env_positive(const char* name, double fallback, bool allow_zero)
{
    const auto value = util::env_double(name);
    if (!value.has_value()) {
        return fallback;
    }
    if (*value <= 0.0 && !(allow_zero && *value == 0.0)) {
        throw util::EnvError(std::string(name) + " must be positive, got " +
                             std::to_string(*value));
    }
    return *value;
}

} // namespace

ServeConfig ServeConfig::from_env()
{
    ServeConfig config;
    config.queue_depth = env_size("FPTC_SERVE_QUEUE_DEPTH", config.queue_depth, 1);
    config.ready_depth = env_size("FPTC_SERVE_READY_DEPTH", config.ready_depth, 1);
    config.batch_size = env_size("FPTC_SERVE_BATCH", config.batch_size, 1);
    config.window_seconds = env_positive("FPTC_SERVE_WINDOW_S", config.window_seconds, false);
    config.deadline_ms = env_positive("FPTC_SERVE_DEADLINE_MS", config.deadline_ms, true);
    config.mem_mb = env_size("FPTC_SERVE_MEM_MB", config.mem_mb, 1);
    config.breaker_p99_ms = env_positive("FPTC_SERVE_BREAKER_P99_MS", config.breaker_p99_ms, false);
    config.breaker_failures = static_cast<int>(
        env_size("FPTC_SERVE_BREAKER_FAILURES", static_cast<std::size_t>(config.breaker_failures), 1));
    config.breaker_cooldown = static_cast<int>(
        env_size("FPTC_SERVE_BREAKER_COOLDOWN", static_cast<std::size_t>(config.breaker_cooldown), 1));
    return config;
}

std::string ServeReport::summary() const
{
    std::ostringstream out;
    out << "serve: ingested=" << flows_ingested << " classified=" << flows_classified
        << " correct=" << flows_correct << " shed_mem_budget=" << shed_mem_budget
        << " shed_queue_full=" << shed_queue_full << " shed_deadline=" << shed_deadline
        << " shed_breaker=" << shed_breaker << " quarantined=" << events_quarantined
        << " dropped_queue=" << events_dropped_queue << " dropped_mem=" << events_dropped_mem
        << " batches=" << batches << " trips=" << breaker_trips
        << " recoveries=" << breaker_recoveries << " tier=" << final_tier
        << " accounted=" << (accounted() ? 1 : 0);
    return out.str();
}

namespace {

/// Counters shared across the three pipeline threads.  Each field has one
/// writer stage, but the final report reads them after joins, so relaxed
/// atomics keep tsan quiet at negligible cost.
struct ServeState {
    std::atomic<std::uint64_t> events_quarantined{0};
    std::atomic<std::uint64_t> events_dropped_mem{0};
    std::atomic<std::uint64_t> flows_ingested{0};
    std::atomic<std::uint64_t> flows_classified{0};
    std::atomic<std::uint64_t> flows_correct{0};
    std::atomic<std::uint64_t> shed_mem_budget{0};
    std::atomic<std::uint64_t> shed_queue_full{0};
    std::atomic<std::uint64_t> shed_deadline{0};
    std::atomic<std::uint64_t> shed_breaker{0};
    std::atomic<std::uint64_t> batches{0};
};

/// Cached registry instruments (lookups mutex, instruments lock-free).
struct ServeMetrics {
    util::Counter& events = util::metrics().counter("fptc_serve_events_total");
    util::Counter& quarantined = util::metrics().counter("fptc_serve_events_quarantined_total");
    util::Counter& dropped_queue = util::metrics().counter("fptc_serve_events_dropped_queue_total");
    util::Counter& dropped_mem = util::metrics().counter("fptc_serve_events_dropped_mem_total");
    util::Counter& ingested = util::metrics().counter("fptc_serve_flows_ingested_total");
    util::Counter& classified = util::metrics().counter("fptc_serve_flows_classified_total");
    util::Counter& shed_mem = util::metrics().counter("fptc_serve_shed_mem_budget_total");
    util::Counter& shed_queue = util::metrics().counter("fptc_serve_shed_queue_full_total");
    util::Counter& shed_deadline = util::metrics().counter("fptc_serve_shed_deadline_total");
    util::Counter& shed_breaker = util::metrics().counter("fptc_serve_shed_breaker_total");
    util::Counter& trips = util::metrics().counter("fptc_serve_breaker_trips_total");
    util::Counter& recoveries = util::metrics().counter("fptc_serve_breaker_recoveries_total");
    util::Gauge& flows_active = util::metrics().gauge("fptc_serve_flows_active");
    util::Gauge& breaker_state = util::metrics().gauge("fptc_serve_breaker_state");
    util::Histogram& latency = util::metrics().histogram("fptc_serve_classify_latency_ns");
};

double elapsed_ms(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

StreamingClassifier::StreamingClassifier(const ServeConfig& config, Backend& full,
                                         Backend& reduced, Backend& fallback)
    : config_(config), full_(full), reduced_(reduced), fallback_(fallback)
{
}

ServeReport StreamingClassifier::run(InterleavedStream& stream)
{
    const auto wall_start = std::chrono::steady_clock::now();
    ServeState state;
    ServeMetrics instruments;
    BoundedQueue<PacketEvent> ingest(config_.queue_depth);
    BoundedQueue<ReadyFlow> ready(config_.ready_depth);

    // Written only by the classifier thread; read after join() (the join is
    // the synchronization point, so plain variables suffice).
    std::vector<double> latencies;
    int breaker_final = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_recoveries = 0;

    // --- assembler: validate events, fold into the flow table, release
    // window-closed flows into the ready queue -----------------------------
    std::thread assembler([&] {
        FPTC_TRACE_SPAN("serve_assembler");
        FlowTable table(config_.mem_mb * 1024 * 1024, config_.window_seconds);
        double stream_now = 0.0;
        std::vector<PacketEvent> events;
        const auto offer = [&](ReadyFlow&& flow, bool final_flush) {
            // Bounded backpressure, like the ingest side: a busy classifier
            // gets a grace window (longer at the final flush, when it is
            // known to be draining), then the flow is shed with a typed
            // reason.  A wedged classifier can never block shutdown.
            const auto grace = std::chrono::milliseconds(final_flush ? 2000 : 200);
            const bool queued = ready.push_wait(std::move(flow), grace);
            if (!queued) {
                // The refused ReadyFlow dies inside the push call; its
                // Charge destructor credits the bytes back right here.
                state.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
                instruments.shed_queue.add();
            }
        };
        for (;;) {
            events.clear();
            const std::size_t taken =
                ingest.drain(events, 256, std::chrono::milliseconds(20));
            for (const PacketEvent& event : events) {
                if (const char* reason = validate(event); reason != nullptr) {
                    (void)reason;
                    state.events_quarantined.fetch_add(1, std::memory_order_relaxed);
                    instruments.quarantined.add();
                    continue;
                }
                stream_now = std::max(stream_now, event.timestamp);
                const AddOutcome outcome = table.add_packet(event);
                if (outcome.new_flow) {
                    state.flows_ingested.fetch_add(1, std::memory_order_relaxed);
                    instruments.ingested.add();
                }
                if (outcome.evicted > 0 || outcome.shed_self) {
                    const std::uint64_t shed =
                        outcome.evicted + (outcome.shed_self ? 1 : 0);
                    state.shed_mem_budget.fetch_add(shed, std::memory_order_relaxed);
                    instruments.shed_mem.add(shed);
                }
                if (!outcome.admitted && !outcome.new_flow && !outcome.shed_self) {
                    state.events_dropped_mem.fetch_add(1, std::memory_order_relaxed);
                    instruments.dropped_mem.add();
                }
            }
            for (ReadyFlow& flow : table.pop_ready(stream_now)) {
                offer(std::move(flow), false);
            }
            instruments.flows_active.set(static_cast<std::int64_t>(table.size()));
            if (taken == 0 && ingest.closed() && ingest.size() == 0) {
                break;
            }
        }
        for (ReadyFlow& flow : table.flush_all()) {
            offer(std::move(flow), true);
        }
        instruments.flows_active.set(0);
        ready.close();
    });

    // --- classifier: micro-batch ready flows into the breaker-picked
    // backend under a per-batch deadline ------------------------------------
    std::thread classifier([&] {
        FPTC_TRACE_SPAN("serve_classifier");
        CircuitBreaker breaker({.p99_ms = config_.breaker_p99_ms,
                                .failure_threshold = config_.breaker_failures,
                                .cooldown_batches = config_.breaker_cooldown});
        std::uint64_t last_trips = 0;
        std::uint64_t last_recoveries = 0;
        std::vector<ReadyFlow> batch;
        for (;;) {
            batch.clear();
            const std::size_t taken =
                ready.drain(batch, config_.batch_size, std::chrono::milliseconds(20));
            if (taken == 0) {
                if (ready.closed() && ready.size() == 0) {
                    break;
                }
                continue;
            }
            state.batches.fetch_add(1, std::memory_order_relaxed);
            const Tier tier = breaker.plan_batch();
            instruments.breaker_state.set(static_cast<std::int64_t>(breaker.tier()));
            if (tier == Tier::shed) {
                state.shed_breaker.fetch_add(batch.size(), std::memory_order_relaxed);
                instruments.shed_breaker.add(batch.size());
                continue;
            }
            Backend& backend = tier == Tier::full      ? full_
                               : tier == Tier::reduced ? reduced_
                                                       : fallback_;
            util::CancelToken token;
            if (config_.deadline_ms > 0.0) {
                token.set_timeout(config_.deadline_ms / 1000.0);
            }
            if (util::fault_injector().inject_serve_backend_stall()) {
                // Stall until the deadline trips the token, or a hard cap
                // elapses so a deadline-less configuration cannot hang.
                const auto cap = std::chrono::milliseconds(
                    config_.deadline_ms > 0.0
                        ? static_cast<std::int64_t>(config_.deadline_ms * 2.0) + 100
                        : 250);
                token.arm_stall(cap);
            }
            const auto batch_start = std::chrono::steady_clock::now();
            bool deadline_hit = false;
            bool failed = false;
            std::vector<std::size_t> predictions;
            try {
                FPTC_TRACE_SPAN("serve_classify", {{"backend", backend.name()}});
                predictions = backend.classify({batch.data(), batch.size()}, token);
            } catch (const util::CancelledError&) {
                deadline_hit = true;
            } catch (const std::exception&) {
                failed = true;
            }
            const double latency = elapsed_ms(batch_start);
            instruments.latency.observe(static_cast<std::uint64_t>(latency * 1e6));
            latencies.push_back(latency);
            if (deadline_hit || failed) {
                // deadline → typed deadline shed; any other backend failure
                // rides the breaker reason (it is the breaker's trigger).
                const auto reason_count = static_cast<std::uint64_t>(batch.size());
                if (deadline_hit) {
                    state.shed_deadline.fetch_add(reason_count, std::memory_order_relaxed);
                    instruments.shed_deadline.add(reason_count);
                } else {
                    state.shed_breaker.fetch_add(reason_count, std::memory_order_relaxed);
                    instruments.shed_breaker.add(reason_count);
                }
                breaker.record_failure(deadline_hit);
            } else {
                breaker.record_success(latency);
                std::uint64_t correct = 0;
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    if (i < predictions.size() && predictions[i] == batch[i].label) {
                        ++correct;
                    }
                }
                state.flows_classified.fetch_add(batch.size(), std::memory_order_relaxed);
                state.flows_correct.fetch_add(correct, std::memory_order_relaxed);
                instruments.classified.add(batch.size());
            }
            instruments.breaker_state.set(static_cast<std::int64_t>(breaker.tier()));
            if (breaker.trips() > last_trips) {
                instruments.trips.add(breaker.trips() - last_trips);
                last_trips = breaker.trips();
            }
            if (breaker.recoveries() > last_recoveries) {
                instruments.recoveries.add(breaker.recoveries() - last_recoveries);
                last_recoveries = breaker.recoveries();
            }
        }
        breaker_final = static_cast<int>(breaker.tier());
        breaker_trips = breaker.trips();
        breaker_recoveries = breaker.recoveries();
    });

    // --- driver (this thread): pump the stream into the ingest queue -------
    ServeReport report;
    {
        FPTC_TRACE_SPAN("serve_ingest");
        while (auto event = stream.next()) {
            ++report.events_total;
            instruments.events.add();
            // Bounded backpressure: tolerate a short stall (a capture
            // buffer's worth), then shed the event with a typed reason —
            // the driver never blocks indefinitely on a wedged assembler.
            if (!ingest.push_wait(*event, std::chrono::milliseconds(20))) {
                ++report.events_dropped_queue;
                instruments.dropped_queue.add();
            }
            if (util::shutdown_requested()) {
                break;
            }
        }
    }
    ingest.close();
    assembler.join();
    classifier.join();

    report.events_quarantined = state.events_quarantined.load();
    report.events_dropped_mem = state.events_dropped_mem.load();
    report.flows_ingested = state.flows_ingested.load();
    report.flows_classified = state.flows_classified.load();
    report.flows_correct = state.flows_correct.load();
    report.shed_mem_budget = state.shed_mem_budget.load();
    report.shed_queue_full = state.shed_queue_full.load();
    report.shed_deadline = state.shed_deadline.load();
    report.shed_breaker = state.shed_breaker.load();
    report.batches = state.batches.load();
    report.breaker_trips = breaker_trips;
    report.breaker_recoveries = breaker_recoveries;
    report.final_tier = breaker_final;
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        const auto rank = [&](double q) {
            return latencies[std::min(latencies.size() - 1,
                                      static_cast<std::size_t>(q * static_cast<double>(
                                                                       latencies.size())))];
        };
        report.p50_latency_ms = rank(0.50);
        report.p99_latency_ms = rank(0.99);
    }
    return report;
}

} // namespace fptc::serve
