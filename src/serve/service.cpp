#include "fptc/serve/service.hpp"

#include "fptc/serve/admission.hpp"
#include "fptc/serve/drift.hpp"
#include "fptc/serve/flightrec.hpp"
#include "fptc/serve/flow_table.hpp"
#include "fptc/serve/queue.hpp"
#include "fptc/serve/reload.hpp"
#include "fptc/serve/snapshot.hpp"
#include "fptc/serve/status.hpp"
#include "fptc/serve/supervisor.hpp"
#include "fptc/serve/watchdog.hpp"

#include "fptc/util/cancel.hpp"
#include "fptc/util/durable.hpp"
#include "fptc/util/env.hpp"
#include "fptc/util/fault.hpp"
#include "fptc/util/log.hpp"
#include "fptc/util/shutdown.hpp"
#include "fptc/util/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

namespace fptc::serve {

namespace {

std::size_t env_size(const char* name, std::size_t fallback, std::size_t minimum)
{
    const auto value = util::env_int(name);
    if (!value.has_value()) {
        return fallback;
    }
    const auto parsed = static_cast<std::size_t>(*value);
    if (parsed < minimum) {
        throw util::EnvError(std::string(name) + " must be >= " + std::to_string(minimum) +
                             ", got " + std::to_string(parsed));
    }
    return parsed;
}

double env_positive(const char* name, double fallback, bool allow_zero)
{
    const auto value = util::env_double(name);
    if (!value.has_value()) {
        return fallback;
    }
    if (*value <= 0.0 && !(allow_zero && *value == 0.0)) {
        throw util::EnvError(std::string(name) + " must be positive, got " +
                             std::to_string(*value));
    }
    return *value;
}

[[nodiscard]] std::string env_string(const char* name)
{
    const char* value = std::getenv(name);
    return value != nullptr ? std::string(value) : std::string();
}

} // namespace

std::uint64_t ServeConfig::fingerprint() const
{
    // FNV-1a over the fields a watermark-skip resume depends on: the window
    // decides which flows close when, the dims/classes decide what the
    // backends see, and fingerprint_extra carries the stream identity.
    const auto mix = [](std::uint64_t hash, std::uint64_t value) {
        hash ^= value;
        return hash * 1099511628211ULL;
    };
    std::uint64_t hash = 14695981039346656037ULL;
    hash = mix(hash, std::bit_cast<std::uint64_t>(window_seconds));
    hash = mix(hash, num_classes);
    hash = mix(hash, flowpic_dim);
    hash = mix(hash, reduced_dim);
    hash = mix(hash, fingerprint_extra);
    return hash | 1;  // 0 means "don't check" to load_snapshot
}

ServeConfig ServeConfig::from_env()
{
    ServeConfig config;
    config.queue_depth = env_size("FPTC_SERVE_QUEUE_DEPTH", config.queue_depth, 1);
    config.ready_depth = env_size("FPTC_SERVE_READY_DEPTH", config.ready_depth, 1);
    config.batch_size = env_size("FPTC_SERVE_BATCH", config.batch_size, 1);
    config.window_seconds = env_positive("FPTC_SERVE_WINDOW_S", config.window_seconds, false);
    config.deadline_ms = env_positive("FPTC_SERVE_DEADLINE_MS", config.deadline_ms, true);
    config.mem_mb = env_size("FPTC_SERVE_MEM_MB", config.mem_mb, 1);
    config.breaker_p99_ms = env_positive("FPTC_SERVE_BREAKER_P99_MS", config.breaker_p99_ms, false);
    config.breaker_failures = static_cast<int>(
        env_size("FPTC_SERVE_BREAKER_FAILURES", static_cast<std::size_t>(config.breaker_failures), 1));
    config.breaker_cooldown = static_cast<int>(
        env_size("FPTC_SERVE_BREAKER_COOLDOWN", static_cast<std::size_t>(config.breaker_cooldown), 1));
    config.slo_ms = env_positive("FPTC_SERVE_SLO_MS", config.slo_ms, true);
    config.slo_interval_ms =
        env_positive("FPTC_SERVE_SLO_INTERVAL_MS", config.slo_interval_ms, false);
    config.snapshot_path = env_string("FPTC_SERVE_SNAPSHOT");
    config.snapshot_period_s =
        env_positive("FPTC_SERVE_SNAPSHOT_S", config.snapshot_period_s, true);
    config.snapshot_every = static_cast<std::uint64_t>(
        util::env_int("FPTC_SERVE_SNAPSHOT_EVERY").value_or(0));
    config.unknown_thresh = env_positive("FPTC_SERVE_UNKNOWN_THRESH", config.unknown_thresh, true);
    if (config.unknown_thresh > 1.0) {
        throw util::EnvError("FPTC_SERVE_UNKNOWN_THRESH must be in [0, 1], got " +
                             std::to_string(config.unknown_thresh));
    }
    config.drift_lambda = env_positive("FPTC_SERVE_DRIFT_LAMBDA", config.drift_lambda, true);
    config.drift_delta = env_positive("FPTC_SERVE_DRIFT_DELTA", config.drift_delta, false);
    config.drift_min_samples = env_size("FPTC_SERVE_DRIFT_MIN", config.drift_min_samples, 1);
    config.drift_rate_window = env_size("FPTC_SERVE_DRIFT_RATE_WINDOW", config.drift_rate_window, 8);
    config.drift_rate_thresh =
        env_positive("FPTC_SERVE_DRIFT_RATE_THRESH", config.drift_rate_thresh, true);
    config.reload_path = env_string("FPTC_SERVE_RELOAD");
    config.reload_tolerance = env_positive("FPTC_SERVE_RELOAD_TOL", config.reload_tolerance, true);
    config.reload_canary_flows = env_size("FPTC_SERVE_RELOAD_CANARY", config.reload_canary_flows, 1);
    config.reload_every = env_size("FPTC_SERVE_RELOAD_EVERY", config.reload_every, 1);
    config.hang_stall_s = env_positive("FPTC_SERVE_HANG_S", config.hang_stall_s, true);
    config.heartbeat_path = env_string("FPTC_SERVE_HEARTBEAT");
    config.gbt_only = util::env_int("FPTC_SERVE_GBT_ONLY").value_or(0) != 0;
    config.generation = serve_generation();
    config.flightrec = util::env_int("FPTC_SERVE_FLIGHTREC").value_or(0) != 0;
    config.flightrec_events =
        env_size("FPTC_SERVE_FLIGHTREC_EVENTS", config.flightrec_events, 64);
    config.flightrec_ring = env_string("FPTC_SERVE_FLIGHTREC_RING");
    config.postmortem_path = env_string("FPTC_SERVE_POSTMORTEM");
    if (!config.postmortem_path.empty()) {
        // A crash dump needs rings to dump: the postmortem knob implies the
        // recorder, and the ring backing defaults next to the postmortem so
        // supervisor and worker agree on it without a second knob.
        config.flightrec = true;
        if (config.flightrec_ring.empty()) {
            config.flightrec_ring = config.postmortem_path + ".ring";
        }
    }
    config.status_path = env_string("FPTC_SERVE_STATUS");
    config.status_period_s = env_positive("FPTC_SERVE_STATUS_S", config.status_period_s, false);
    return config;
}

std::string ServeReport::summary() const
{
    std::ostringstream out;
    out << "serve: ingested=" << flows_ingested << " classified=" << flows_classified
        << " correct=" << flows_correct << " shed_mem_budget=" << shed_mem_budget
        << " shed_queue_full=" << shed_queue_full << " shed_deadline=" << shed_deadline
        << " shed_breaker=" << shed_breaker << " shed_slo=" << shed_slo
        << " shed_restart_loss=" << shed_restart_loss << " quarantined=" << events_quarantined
        << " dropped_queue=" << events_dropped_queue << " dropped_mem=" << events_dropped_mem
        << " dropped_slo=" << events_dropped_slo << " batches=" << batches
        << " trips=" << breaker_trips << " recoveries=" << breaker_recoveries
        << " tier=" << final_tier << " slo_violations=" << slo_violations
        << " snapshots=" << snapshots_written << " restored=" << (restored ? 1 : 0)
        << " generation=" << generation << " unknown=" << flows_unknown
        << " unknown_truth=" << unknown_truth_total
        << " unknown_rejected=" << unknown_truth_rejected
        << " quarantined_backwards=" << events_quarantined_backwards
        << " drift_alarms=" << drift_alarms << " reloads=" << reloads
        << " rollbacks=" << reload_rollbacks << " model_generation=" << model_generation
        << " frec_events=" << frec_events << " frec_dropped=" << frec_dropped
        << " postmortems=" << postmortems_written << " status_writes=" << status_writes
        << " accounted=" << (accounted() ? 1 : 0);
    return out.str();
}

namespace {

/// Counters shared across the three pipeline threads.  Each field has one
/// writer stage, but the final report reads them after joins, so relaxed
/// atomics keep tsan quiet at negligible cost.  With a restored snapshot
/// the fields are *seeded* from the persisted cut, so the report spans
/// process generations.
struct ServeState {
    std::atomic<std::uint64_t> events_quarantined{0};
    std::atomic<std::uint64_t> events_dropped_mem{0};
    std::atomic<std::uint64_t> events_dropped_slo{0};
    std::atomic<std::uint64_t> flows_ingested{0};
    std::atomic<std::uint64_t> flows_classified{0};
    std::atomic<std::uint64_t> flows_correct{0};
    std::atomic<std::uint64_t> shed_mem_budget{0};
    std::atomic<std::uint64_t> shed_queue_full{0};
    std::atomic<std::uint64_t> shed_deadline{0};
    std::atomic<std::uint64_t> shed_breaker{0};
    std::atomic<std::uint64_t> shed_slo{0};
    std::atomic<std::uint64_t> shed_restart_loss{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> slo_considered{0};
    std::atomic<std::uint64_t> slo_violations{0};
    std::atomic<std::uint64_t> snapshots_written{0};
    std::atomic<std::uint64_t> restored_flows{0};
    std::atomic<std::uint64_t> restore_refused{0};
    std::atomic<std::uint64_t> flows_unknown{0};
    std::atomic<std::uint64_t> unknown_truth_total{0};
    std::atomic<std::uint64_t> unknown_truth_rejected{0};
    std::atomic<std::uint64_t> events_quarantined_backwards{0};
    std::atomic<std::uint64_t> drift_alarms{0};
    std::atomic<std::uint64_t> reloads{0};
    std::atomic<std::uint64_t> reload_rollbacks{0};
    std::atomic<std::uint32_t> model_generation{0};
    std::atomic<std::uint64_t> postmortems_written{0};
};

/// Cached registry instruments (lookups mutex, instruments lock-free).
struct ServeMetrics {
    util::Counter& events = util::metrics().counter("fptc_serve_events_total");
    util::Counter& quarantined = util::metrics().counter("fptc_serve_events_quarantined_total");
    util::Counter& dropped_queue = util::metrics().counter("fptc_serve_events_dropped_queue_total");
    util::Counter& dropped_mem = util::metrics().counter("fptc_serve_events_dropped_mem_total");
    util::Counter& dropped_slo = util::metrics().counter("fptc_serve_events_dropped_slo_total");
    util::Counter& ingested = util::metrics().counter("fptc_serve_flows_ingested_total");
    util::Counter& classified = util::metrics().counter("fptc_serve_flows_classified_total");
    util::Counter& shed_mem = util::metrics().counter("fptc_serve_shed_mem_budget_total");
    util::Counter& shed_queue = util::metrics().counter("fptc_serve_shed_queue_full_total");
    util::Counter& shed_deadline = util::metrics().counter("fptc_serve_shed_deadline_total");
    util::Counter& shed_breaker = util::metrics().counter("fptc_serve_shed_breaker_total");
    util::Counter& shed_slo = util::metrics().counter("fptc_serve_shed_slo_total");
    util::Counter& shed_restart = util::metrics().counter("fptc_serve_shed_restart_loss_total");
    util::Counter& slo_violations = util::metrics().counter("fptc_serve_slo_violations_total");
    util::Counter& snapshots = util::metrics().counter("fptc_serve_snapshots_total");
    util::Counter& trips = util::metrics().counter("fptc_serve_breaker_trips_total");
    util::Counter& recoveries = util::metrics().counter("fptc_serve_breaker_recoveries_total");
    util::Counter& unknown = util::metrics().counter("fptc_serve_flows_unknown_total");
    util::Counter& quarantined_backwards =
        util::metrics().counter("fptc_serve_quarantined_backwards_ts_total");
    util::Counter& drift_alarms = util::metrics().counter("fptc_serve_drift_alarms_total");
    util::Counter& reloads = util::metrics().counter("fptc_serve_reloads_total");
    util::Counter& reload_rollbacks =
        util::metrics().counter("fptc_serve_reload_rollbacks_total");
    util::Counter& postmortems = util::metrics().counter("fptc_serve_postmortems_total");
    util::Gauge& flows_active = util::metrics().gauge("fptc_serve_flows_active");
    util::Gauge& breaker_state = util::metrics().gauge("fptc_serve_breaker_state");
    util::Gauge& generation = util::metrics().gauge("fptc_serve_generation");
    util::Gauge& model_generation = util::metrics().gauge("fptc_serve_model_generation");
    util::Gauge& frec_events = util::metrics().gauge("fptc_serve_flightrec_events");
    util::Gauge& frec_dropped = util::metrics().gauge("fptc_serve_flightrec_dropped");
    util::Histogram& latency = util::metrics().histogram("fptc_serve_classify_latency_ns");
    // Stage attribution sub-histograms (ns, same bit-width buckets as the
    // end-to-end latency histogram).  backend_compute observes the *same*
    // value as `latency`, so the two reconcile exactly in count and sum.
    util::Histogram& stage_ingest_wait =
        util::metrics().histogram(frec_stage_metric_name(FrecStage::ingest_wait));
    util::Histogram& stage_assembly =
        util::metrics().histogram(frec_stage_metric_name(FrecStage::assembly));
    util::Histogram& stage_ready_wait =
        util::metrics().histogram(frec_stage_metric_name(FrecStage::ready_wait));
    util::Histogram& stage_backend =
        util::metrics().histogram(frec_stage_metric_name(FrecStage::backend_compute));
};

double elapsed_ms(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
        .count();
}

double steady_now_ms()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Nanoseconds since a steady stamp; 0 for a default-constructed (unset)
/// stamp so a missing origin never inflates a stage histogram.
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since)
{
    if (since.time_since_epoch().count() == 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - since)
                                          .count());
}

/// The driver's exact counter cut carried by a snapshot marker.
struct SnapshotMarker {
    std::uint64_t events_total = 0;
    std::uint64_t events_dropped_queue = 0;
};

/// Ingest-queue payload: a packet event or a snapshot marker, stamped at
/// enqueue for the sojourn-time admission controller.
struct IngestItem {
    PacketEvent event{};
    bool is_marker = false;
    SnapshotMarker cut{};
    std::chrono::steady_clock::time_point enqueued{};
};

/// Ready-queue payload: a window-closed flow stamped at enqueue.
struct StampedFlow {
    ReadyFlow flow;
    std::chrono::steady_clock::time_point enqueued{};
};

} // namespace

StreamingClassifier::StreamingClassifier(const ServeConfig& config, Backend& full,
                                         Backend& reduced, Backend& fallback)
    : config_(config), full_(full), reduced_(reduced), fallback_(fallback)
{
}

ServeReport StreamingClassifier::run(InterleavedStream& stream)
{
    const auto wall_start = std::chrono::steady_clock::now();
    ServeState state;
    ServeMetrics instruments;
    instruments.generation.set(static_cast<std::int64_t>(config_.generation));
    BoundedQueue<IngestItem> ingest(config_.queue_depth);
    BoundedQueue<StampedFlow> ready(config_.ready_depth);

    // ---- flight recorder: per-thread lifecycle rings ----------------------
    // Constructed before any pipeline thread so every frec_note() in the
    // stages sees an armed gate; when disabled, each call site costs one
    // relaxed load + predicted branch (the <=2% contract).
    std::optional<FlightRecorder> recorder;
    if (config_.flightrec) {
        recorder.emplace(FrecConfig{
            .ring_path = config_.flightrec_ring,
            .ring_capacity = config_.flightrec_events,
            .generation = config_.generation,
        });
    }
    // One postmortem per process: watchdog stall and breaker hard-trip race
    // only in pathological runs, and the first dump is the interesting one.
    std::atomic<bool> postmortem_taken{false};
    const auto take_postmortem = [&](PostmortemReason reason, const std::string& detail) {
        if (!recorder.has_value() || config_.postmortem_path.empty() ||
            postmortem_taken.exchange(true)) {
            return;
        }
        state.postmortems_written.fetch_add(1, std::memory_order_relaxed);
        instruments.postmortems.add();
        instruments.frec_events.set(static_cast<std::int64_t>(recorder->recorded_total()));
        instruments.frec_dropped.set(static_cast<std::int64_t>(recorder->dropped_total()));
        recorder->dump(config_.postmortem_path, reason, detail);
    };

    // ---- crash recovery: restore the previous generation's snapshot ------
    std::optional<ServeSnapshot> snap;
    if (!config_.snapshot_path.empty()) {
        // Sweep half-written snapshot temps whose writer died mid-commit
        // (same dead-pid-guarded scavenger the journal layer uses).
        (void)util::scavenge_orphan_temps(util::parent_dir_of(config_.snapshot_path));
        snap = load_snapshot(config_.snapshot_path, config_.fingerprint());
    }
    if (snap.has_value()) {
        const SnapshotCounters& base = snap->counters;
        // The loss window: flows the cut says were ingested but are neither
        // classified, shed, nor in the persisted table — they sat in the
        // ready queue or a half-classified batch when the process died.
        // Classifier-side counters in the cut are relaxed samples that can
        // only *lag* (under-count), so the deficit can only over-estimate —
        // a conservative, typed bound on what the crash cost.
        const std::uint64_t accounted_at_cut =
            base.flows_classified + base.flows_unknown + base.flow_sheds() + snap->flows.size();
        const std::uint64_t loss = base.flows_ingested > accounted_at_cut
                                       ? base.flows_ingested - accounted_at_cut
                                       : 0;
        state.events_quarantined.store(base.events_quarantined);
        state.events_dropped_mem.store(base.events_dropped_mem);
        state.events_dropped_slo.store(base.events_dropped_slo);
        state.flows_ingested.store(base.flows_ingested);
        state.flows_classified.store(base.flows_classified);
        state.flows_correct.store(base.flows_correct);
        state.shed_mem_budget.store(base.shed_mem_budget);
        state.shed_queue_full.store(base.shed_queue_full);
        state.shed_deadline.store(base.shed_deadline);
        state.shed_breaker.store(base.shed_breaker);
        state.shed_slo.store(base.shed_slo);
        state.shed_restart_loss.store(base.shed_restart_loss + loss);
        state.batches.store(base.batches);
        state.slo_violations.store(base.slo_violations);
        state.flows_unknown.store(base.flows_unknown);
        state.unknown_truth_total.store(base.unknown_truth_total);
        state.unknown_truth_rejected.store(base.unknown_truth_rejected);
        state.events_quarantined_backwards.store(base.events_quarantined_backwards);
        state.drift_alarms.store(base.drift_alarms);
        state.reloads.store(base.reloads);
        state.reload_rollbacks.store(base.reload_rollbacks);
        state.model_generation.store(snap->model_generation);
        if (loss > 0) {
            instruments.shed_restart.add(loss);
        }
        util::log_info("serve: restored snapshot (watermark=" + std::to_string(snap->watermark) +
                       " flows=" + std::to_string(snap->flows.size()) +
                       " restart_loss=" + std::to_string(loss) + " from generation " +
                       std::to_string(snap->generation) + ")");
    }

    // ---- watchdog: per-thread stall detection + supervisor heartbeat ------
    WatchdogConfig wd_config{
        .stall_seconds = config_.hang_stall_s,
        .poll_seconds = 0.25,
        .heartbeat_path = config_.heartbeat_path,
        .on_stall = {},
    };
    if (recorder.has_value() && !config_.postmortem_path.empty()) {
        // Mirror the default stall action (log + _Exit) but seal a
        // postmortem first: the rings hold the stalled thread's last steps.
        wd_config.on_stall = [&take_postmortem](const std::string& name) {
            take_postmortem(PostmortemReason::watchdog_stall, "stalled thread: " + name);
            util::log_info("serve watchdog: thread '" + name +
                           "' stalled; postmortem sealed; hang-exiting");
            std::_Exit(kHangExitCode);
        };
    }
    Watchdog watchdog(wd_config);
    const std::size_t wd_driver = watchdog.add_thread("driver");
    const std::size_t wd_assembler = watchdog.add_thread("assembler");
    const std::size_t wd_classifier = watchdog.add_thread("classifier");
    watchdog.start();

    // Written only by the classifier thread; read after join() (the join is
    // the synchronization point, so plain variables suffice).
    std::vector<double> latencies;
    int breaker_final = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_recoveries = 0;
    DriftStats drift_final;
    ReloadStats reload_final;

    // --- assembler: validate events, fold into the flow table, release
    // window-closed flows into the ready queue -----------------------------
    std::thread assembler([&] {
        FPTC_TRACE_SPAN("serve_assembler");
        FlowTable table(config_.mem_mb * 1024 * 1024, config_.window_seconds);
        double stream_now = 0.0;
        if (snap.has_value()) {
            // Charges go through the MemBudget exactly like live admission;
            // a shrunken post-restart budget turns refusals into typed
            // mem_budget sheds instead of a crash loop.
            const std::size_t refused = table.restore(snap->flows);
            state.restored_flows.store(snap->flows.size() - refused);
            if (refused > 0) {
                state.restore_refused.store(refused);
                state.shed_mem_budget.fetch_add(refused, std::memory_order_relaxed);
                instruments.shed_mem.add(refused);
            }
            stream_now = snap->stream_now;
        }
        CoDelAdmission admission(
            {.target_ms = config_.slo_ms, .interval_ms = config_.slo_interval_ms});
        const auto write_snapshot = [&](const SnapshotMarker& cut) {
            ServeSnapshot out;
            out.watermark = cut.events_total;
            out.stream_now = stream_now;
            out.generation = config_.generation;
            out.model_generation = state.model_generation.load(std::memory_order_relaxed);
            out.config_fingerprint = config_.fingerprint();
            SnapshotCounters& c = out.counters;
            c.events_total = cut.events_total;
            c.events_dropped_queue = cut.events_dropped_queue;
            // Assembler-owned counters: exact at this point — FIFO order
            // guarantees every surviving event before the watermark has
            // been folded into the table already.
            c.events_quarantined = state.events_quarantined.load(std::memory_order_relaxed);
            c.events_dropped_mem = state.events_dropped_mem.load(std::memory_order_relaxed);
            c.events_dropped_slo = state.events_dropped_slo.load(std::memory_order_relaxed);
            c.events_quarantined_backwards =
                state.events_quarantined_backwards.load(std::memory_order_relaxed);
            c.flows_ingested = state.flows_ingested.load(std::memory_order_relaxed);
            c.shed_mem_budget = state.shed_mem_budget.load(std::memory_order_relaxed);
            c.shed_queue_full = state.shed_queue_full.load(std::memory_order_relaxed);
            c.shed_restart_loss = state.shed_restart_loss.load(std::memory_order_relaxed);
            // Classifier-owned counters: relaxed samples that may lag.  Lag
            // only under-counts, which the restore-time deficit absorbs as
            // restart_loss — never a broken invariant.
            c.flows_classified = state.flows_classified.load(std::memory_order_relaxed);
            c.flows_correct = state.flows_correct.load(std::memory_order_relaxed);
            c.shed_deadline = state.shed_deadline.load(std::memory_order_relaxed);
            c.shed_breaker = state.shed_breaker.load(std::memory_order_relaxed);
            c.shed_slo = state.shed_slo.load(std::memory_order_relaxed);
            c.batches = state.batches.load(std::memory_order_relaxed);
            c.slo_violations = state.slo_violations.load(std::memory_order_relaxed);
            c.flows_unknown = state.flows_unknown.load(std::memory_order_relaxed);
            c.unknown_truth_total = state.unknown_truth_total.load(std::memory_order_relaxed);
            c.unknown_truth_rejected =
                state.unknown_truth_rejected.load(std::memory_order_relaxed);
            c.drift_alarms = state.drift_alarms.load(std::memory_order_relaxed);
            c.reloads = state.reloads.load(std::memory_order_relaxed);
            c.reload_rollbacks = state.reload_rollbacks.load(std::memory_order_relaxed);
            out.flows = table.snapshot_entries();
            try {
                save_snapshot(config_.snapshot_path, out);
            } catch (const std::exception& e) {
                // A failed snapshot costs recovery freshness, never the
                // stream: log and keep serving; the next marker retries.
                util::log_info(std::string("serve: snapshot write failed (") + e.what() +
                               "); continuing without");
                return;
            }
            state.snapshots_written.fetch_add(1, std::memory_order_relaxed);
            instruments.snapshots.add();
            // Recorded after the durable commit and before the injected
            // SIGKILL below: a postmortem sealed from the ring file always
            // ends at (or after) the watermark the restarted worker resumes
            // from.
            frec_note(FrecRing::assembler, FrecKind::snapshot_marker, 0, cut.events_total);
            if (util::fault_injector().inject_serve_kill()) {
                util::log_info("serve: fault injector SIGKILLing worker after snapshot commit");
                ::raise(SIGKILL);
            }
        };
        std::vector<IngestItem> items;
        const auto offer = [&](ReadyFlow&& flow, bool final_flush) {
            // The assembly stage ends here: first packet seen -> window
            // closed and offered downstream.
            const std::uint64_t flow_id = flow.flow_id;
            const std::uint64_t assembly_ns = elapsed_ns(flow.first_seen);
            instruments.stage_assembly.observe(assembly_ns);
            frec_exemplar(FrecStage::assembly, assembly_ns, flow_id);
            frec_note(FrecRing::assembler, FrecKind::window_close, flow_id, assembly_ns);
            // Bounded backpressure, like the ingest side: a busy classifier
            // gets a grace window (longer at the final flush, when it is
            // known to be draining), then the flow is shed with a typed
            // reason.  A wedged classifier can never block shutdown.
            const auto grace = std::chrono::milliseconds(final_flush ? 2000 : 200);
            const bool queued = ready.push_wait(
                StampedFlow{std::move(flow), std::chrono::steady_clock::now()}, grace);
            if (!queued) {
                // The refused ReadyFlow dies inside the push call; its
                // Charge destructor credits the bytes back right here.
                state.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
                instruments.shed_queue.add();
                frec_note(FrecRing::assembler, FrecKind::shed, flow_id, 1,
                          static_cast<std::uint32_t>(FrecShed::queue_full));
            } else {
                frec_note(FrecRing::assembler, FrecKind::batch_enqueue, flow_id,
                          ready.size());
            }
        };
        for (;;) {
            watchdog.beat(wd_assembler);
            items.clear();
            const std::size_t taken =
                ingest.drain(items, 256, std::chrono::milliseconds(20));
            for (IngestItem& item : items) {
                if (item.is_marker) {
                    write_snapshot(item.cut);
                    continue;
                }
                // The ingest-wait stage ends at dequeue, whatever the
                // event's fate below.
                const std::uint64_t wait_ns = elapsed_ns(item.enqueued);
                instruments.stage_ingest_wait.observe(wait_ns);
                frec_exemplar(FrecStage::ingest_wait, wait_ns, item.event.flow_id);
                if (admission.enabled() &&
                    admission.should_drop(elapsed_ms(item.enqueued), steady_now_ms())) {
                    // Sojourn over the SLO for a sustained interval: the
                    // event is doomed work — drop it before it costs table
                    // space and classify time (event-level, typed).
                    state.events_dropped_slo.fetch_add(1, std::memory_order_relaxed);
                    instruments.dropped_slo.add();
                    frec_note(FrecRing::assembler, FrecKind::codel_drop, item.event.flow_id,
                              wait_ns);
                    continue;
                }
                const PacketEvent& event = item.event;
                if (const char* reason = validate(event); reason != nullptr) {
                    (void)reason;
                    state.events_quarantined.fetch_add(1, std::memory_order_relaxed);
                    instruments.quarantined.add();
                    frec_note(FrecRing::assembler, FrecKind::quarantine, event.flow_id);
                    continue;
                }
                stream_now = std::max(stream_now, event.timestamp);
                const AddOutcome outcome = table.add_packet(event);
                if (outcome.quarantined_backwards) {
                    // Trust boundary: a packet time-warping backwards inside
                    // its flow is dropped before it can poison the window.
                    // Event-level, typed; the flow itself keeps serving.
                    state.events_quarantined_backwards.fetch_add(1, std::memory_order_relaxed);
                    instruments.quarantined_backwards.add();
                    frec_note(FrecRing::assembler, FrecKind::quarantine, event.flow_id, 0, 1);
                    continue;
                }
                if (outcome.new_flow) {
                    state.flows_ingested.fetch_add(1, std::memory_order_relaxed);
                    instruments.ingested.add();
                    frec_note(FrecRing::assembler, FrecKind::admit, event.flow_id,
                              table.size());
                }
                if (outcome.evicted > 0 || outcome.shed_self) {
                    const std::uint64_t shed =
                        outcome.evicted + (outcome.shed_self ? 1 : 0);
                    state.shed_mem_budget.fetch_add(shed, std::memory_order_relaxed);
                    instruments.shed_mem.add(shed);
                    frec_note(FrecRing::assembler, FrecKind::shed, event.flow_id, shed,
                              static_cast<std::uint32_t>(FrecShed::mem_budget));
                }
                if (!outcome.admitted && !outcome.new_flow && !outcome.shed_self) {
                    state.events_dropped_mem.fetch_add(1, std::memory_order_relaxed);
                    instruments.dropped_mem.add();
                }
            }
            for (ReadyFlow& flow : table.pop_ready(stream_now)) {
                offer(std::move(flow), false);
            }
            instruments.flows_active.set(static_cast<std::int64_t>(table.size()));
            if (taken == 0 && ingest.closed() && ingest.size() == 0) {
                break;
            }
        }
        // The final flush blocks up to 2 s per flow by design (the
        // classifier is draining) — tell the watchdog this is intentional.
        watchdog.set_idle(wd_assembler, true);
        for (ReadyFlow& flow : table.flush_all()) {
            offer(std::move(flow), true);
        }
        instruments.flows_active.set(0);
        ready.close();
        watchdog.mark_done(wd_assembler);
    });

    // --- classifier: micro-batch ready flows into the breaker-picked
    // backend under a per-batch deadline ------------------------------------
    std::thread classifier([&] {
        FPTC_TRACE_SPAN("serve_classifier");
        CircuitBreaker breaker({.p99_ms = config_.breaker_p99_ms,
                                .failure_threshold = config_.breaker_failures,
                                .cooldown_batches = config_.breaker_cooldown});
        CoDelAdmission admission(
            {.target_ms = config_.slo_ms, .interval_ms = config_.slo_interval_ms});
        DriftMonitor drift(DriftMonitorConfig{
            .lambda = config_.drift_lambda,
            .delta = config_.drift_delta,
            .min_samples = config_.drift_min_samples,
            .num_classes = config_.num_classes,
            .rate_window = config_.drift_rate_window,
            .rate_threshold = config_.drift_rate_thresh,
        });
        // The reload target is the full-tier CNN; a non-CNN full tier (or
        // the gbt_only degraded worker) leaves the reloader disabled.
        ModelReloader reloader(
            ReloadConfig{
                .path = config_.reload_path,
                .tolerance = config_.reload_tolerance,
                .canary_flows = config_.reload_canary_flows,
                .check_every = config_.reload_every,
                .num_classes = config_.num_classes,
                .seed = config_.fingerprint_extra != 0 ? config_.fingerprint_extra : 1,
            },
            config_.gbt_only ? nullptr : dynamic_cast<CnnBackend*>(&full_));
        // Generations survive SIGKILL: the counter continues from the
        // restored snapshot cut, so an accepted reload before the crash is
        // still visible in the restarted worker's report.
        reloader.set_model_generation(state.model_generation.load(std::memory_order_relaxed));
        instruments.model_generation.set(
            static_cast<std::int64_t>(reloader.model_generation()));
        std::uint64_t last_drift_alarms = 0;
        const auto apply_reload = [&](ModelReloader::Outcome outcome) {
            if (outcome == ModelReloader::Outcome::reloaded) {
                state.reloads.fetch_add(1, std::memory_order_relaxed);
                state.model_generation.store(reloader.model_generation(),
                                             std::memory_order_relaxed);
                instruments.reloads.add();
                instruments.model_generation.set(
                    static_cast<std::int64_t>(reloader.model_generation()));
                util::log_info("serve: hot-reloaded model (generation " +
                               std::to_string(reloader.model_generation()) +
                               ", candidate golden accuracy " +
                               std::to_string(reloader.stats().candidate_accuracy) + ")");
            } else if (outcome == ModelReloader::Outcome::rolled_back) {
                state.reload_rollbacks.fetch_add(1, std::memory_order_relaxed);
                instruments.reload_rollbacks.add();
                util::log_info("serve: reload candidate rejected, incumbent kept (" +
                               reloader.stats().last_error + ")");
            }
        };
        std::uint64_t last_trips = 0;
        std::uint64_t last_recoveries = 0;
        std::vector<StampedFlow> staged;
        std::vector<ReadyFlow> batch;
        for (;;) {
            watchdog.beat(wd_classifier);
            staged.clear();
            batch.clear();
            const std::size_t taken =
                ready.drain(staged, config_.batch_size, std::chrono::milliseconds(20));
            if (taken == 0) {
                if (ready.closed() && ready.size() == 0) {
                    break;
                }
                continue;
            }
            for (StampedFlow& stamped : staged) {
                // The ready-wait stage ends at dequeue (the existing
                // sojourn, now also attributed in ns).
                const std::uint64_t sojourn_ns = elapsed_ns(stamped.enqueued);
                const double sojourn = static_cast<double>(sojourn_ns) / 1e6;
                instruments.stage_ready_wait.observe(sojourn_ns);
                frec_exemplar(FrecStage::ready_wait, sojourn_ns, stamped.flow.flow_id);
                if (config_.slo_ms > 0.0) {
                    state.slo_considered.fetch_add(1, std::memory_order_relaxed);
                    if (sojourn > config_.slo_ms) {
                        state.slo_violations.fetch_add(1, std::memory_order_relaxed);
                        instruments.slo_violations.add();
                    }
                    if (admission.should_drop(sojourn, steady_now_ms())) {
                        // Hard SLO: a flow that queued past the target for
                        // a sustained interval is dropped *ahead of* the
                        // breaker — the ladder never sees doomed work.  The
                        // StampedFlow dies here; its Charge credits back.
                        state.shed_slo.fetch_add(1, std::memory_order_relaxed);
                        instruments.shed_slo.add();
                        frec_note(FrecRing::classifier, FrecKind::shed,
                                  stamped.flow.flow_id, 1,
                                  static_cast<std::uint32_t>(FrecShed::slo));
                        continue;
                    }
                }
                batch.push_back(std::move(stamped.flow));
            }
            if (batch.empty()) {
                continue;
            }
            if (util::fault_injector().inject_serve_hang()) {
                // Wedge without heartbeating: the watchdog must detect the
                // stall and hang-exit.  The failsafe cap below keeps an
                // un-watched configuration from hanging forever.
                util::log_info("serve: fault injector wedging classifier thread (serve_hang)");
                const double cap_s =
                    config_.hang_stall_s > 0.0 ? config_.hang_stall_s * 10.0 : 5.0;
                const auto wedged_at = std::chrono::steady_clock::now();
                while (elapsed_ms(wedged_at) < cap_s * 1000.0) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(50));
                }
                util::log_info("serve: wedge failsafe cap elapsed; resuming");
            }
            state.batches.fetch_add(1, std::memory_order_relaxed);
            Tier tier = breaker.plan_batch();
            if (config_.gbt_only && tier != Tier::shed) {
                // Degraded mode (supervisor's last restart): the CNN tiers
                // are suspected of the crash loop, so serve from the cheap
                // GBT fallback only.
                tier = Tier::fallback;
            }
            instruments.breaker_state.set(static_cast<std::int64_t>(breaker.tier()));
            if (tier == Tier::shed) {
                state.shed_breaker.fetch_add(batch.size(), std::memory_order_relaxed);
                instruments.shed_breaker.add(batch.size());
                for (const ReadyFlow& flow : batch) {
                    frec_note(FrecRing::classifier, FrecKind::shed, flow.flow_id, 1,
                              static_cast<std::uint32_t>(FrecShed::breaker));
                }
                // Hard trip: the ladder has run out of cheaper tiers and is
                // refusing whole batches — exactly the state a postmortem
                // should capture while the evidence is still in the rings.
                take_postmortem(PostmortemReason::breaker_hard_trip,
                                "breaker ladder at shed tier");
                continue;
            }
            Backend& backend = tier == Tier::full      ? full_
                               : tier == Tier::reduced ? reduced_
                                                       : fallback_;
            util::CancelToken token;
            if (config_.deadline_ms > 0.0) {
                token.set_timeout(config_.deadline_ms / 1000.0);
            }
            if (util::fault_injector().inject_serve_backend_stall()) {
                // Stall until the deadline trips the token, or a hard cap
                // elapses so a deadline-less configuration cannot hang.
                const auto cap = std::chrono::milliseconds(
                    config_.deadline_ms > 0.0
                        ? static_cast<std::int64_t>(config_.deadline_ms * 2.0) + 100
                        : 250);
                token.arm_stall(cap);
            }
            frec_note(FrecRing::classifier, FrecKind::classify_start, batch.front().flow_id,
                      batch.size(), static_cast<std::uint32_t>(tier));
            const auto batch_start = std::chrono::steady_clock::now();
            bool deadline_hit = false;
            bool failed = false;
            std::vector<ScoredPrediction> predictions;
            try {
                FPTC_TRACE_SPAN("serve_classify", {{"backend", backend.name()}});
                predictions = backend.classify_scored({batch.data(), batch.size()}, token);
            } catch (const util::CancelledError&) {
                deadline_hit = true;
            } catch (const std::exception&) {
                failed = true;
            }
            const double latency = elapsed_ms(batch_start);
            const auto latency_ns = static_cast<std::uint64_t>(latency * 1e6);
            instruments.latency.observe(latency_ns);
            // The backend-compute stage observes the identical value as the
            // end-to-end histogram: the two reconcile exactly.
            instruments.stage_backend.observe(latency_ns);
            frec_exemplar(FrecStage::backend_compute, latency_ns, batch.front().flow_id);
            frec_note(FrecRing::classifier, FrecKind::classify_end, batch.front().flow_id,
                      latency_ns, static_cast<std::uint32_t>(tier));
            latencies.push_back(latency);
            if (deadline_hit || failed) {
                // deadline → typed deadline shed; any other backend failure
                // rides the breaker reason (it is the breaker's trigger).
                const auto reason_count = static_cast<std::uint64_t>(batch.size());
                if (deadline_hit) {
                    state.shed_deadline.fetch_add(reason_count, std::memory_order_relaxed);
                    instruments.shed_deadline.add(reason_count);
                } else {
                    state.shed_breaker.fetch_add(reason_count, std::memory_order_relaxed);
                    instruments.shed_breaker.add(reason_count);
                }
                for (const ReadyFlow& flow : batch) {
                    frec_note(FrecRing::classifier, FrecKind::shed, flow.flow_id, 1,
                              static_cast<std::uint32_t>(deadline_hit ? FrecShed::deadline
                                                                      : FrecShed::breaker));
                }
                breaker.record_failure(deadline_hit);
            } else {
                breaker.record_success(latency);
                std::uint64_t correct = 0;
                std::uint64_t unknown = 0;
                std::uint64_t unknown_truth = 0;
                std::uint64_t unknown_rejected = 0;
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    const ReadyFlow& flow = batch[i];
                    const ScoredPrediction prediction =
                        i < predictions.size() ? predictions[i] : ScoredPrediction{};
                    // Open-set rejection: a score below the threshold means
                    // "none of the trained classes" — the typed `unknown`
                    // outcome, never a forced label.
                    const bool rejected = config_.unknown_thresh > 0.0 &&
                                          prediction.confidence < config_.unknown_thresh;
                    const bool truth_unknown = flow.label >= config_.num_classes;
                    if (truth_unknown) {
                        ++unknown_truth;
                        if (rejected) {
                            ++unknown_rejected;
                        }
                    }
                    if (rejected) {
                        ++unknown;
                        frec_note(FrecRing::classifier, FrecKind::unknown_route,
                                  flow.flow_id);
                    } else if (prediction.label == flow.label) {
                        ++correct;
                    }
                    double mean_size = 0.0;
                    for (const flow::Packet& packet : flow.flow.packets) {
                        mean_size += static_cast<double>(packet.size);
                    }
                    if (!flow.flow.packets.empty()) {
                        mean_size /= static_cast<double>(flow.flow.packets.size());
                    }
                    (void)drift.observe(DriftObservation{
                        .confidence = prediction.confidence,
                        .predicted = rejected ? config_.num_classes : prediction.label,
                        .mean_packet_size = mean_size,
                        .packet_count = flow.flow.packets.size(),
                    });
                }
                state.flows_classified.fetch_add(batch.size() - unknown,
                                                 std::memory_order_relaxed);
                state.flows_correct.fetch_add(correct, std::memory_order_relaxed);
                instruments.classified.add(batch.size() - unknown);
                if (unknown > 0) {
                    state.flows_unknown.fetch_add(unknown, std::memory_order_relaxed);
                    instruments.unknown.add(unknown);
                }
                if (unknown_truth > 0) {
                    state.unknown_truth_total.fetch_add(unknown_truth,
                                                        std::memory_order_relaxed);
                    state.unknown_truth_rejected.fetch_add(unknown_rejected,
                                                           std::memory_order_relaxed);
                }
            }
            instruments.breaker_state.set(static_cast<std::int64_t>(breaker.tier()));
            // Drift response ladder: count the alarm, step the breaker one
            // tier down (cheap tiers are cheaper to be wrong with), and
            // canary any pending reload candidate immediately.  Without an
            // alarm the candidate path is still polled on its cadence.
            const std::uint64_t drift_total = drift.stats().total();
            if (drift_total > last_drift_alarms) {
                const std::uint64_t fired = drift_total - last_drift_alarms;
                last_drift_alarms = drift_total;
                state.drift_alarms.fetch_add(fired, std::memory_order_relaxed);
                instruments.drift_alarms.add(fired);
                util::log_info("serve: drift alarm at sample " +
                               std::to_string(drift.stats().samples) + " (confidence mean " +
                               std::to_string(drift.stats().confidence_mean) + ")");
                breaker.drift_trip();
                apply_reload(reloader.check_now());
            } else {
                apply_reload(reloader.poll());
            }
            if (breaker.trips() > last_trips) {
                instruments.trips.add(breaker.trips() - last_trips);
                last_trips = breaker.trips();
            }
            if (breaker.recoveries() > last_recoveries) {
                instruments.recoveries.add(breaker.recoveries() - last_recoveries);
                last_recoveries = breaker.recoveries();
            }
        }
        breaker_final = static_cast<int>(breaker.tier());
        breaker_trips = breaker.trips();
        breaker_recoveries = breaker.recoveries();
        drift_final = drift.stats();
        reload_final = reloader.stats();
        watchdog.mark_done(wd_classifier);
    });

    // ---- live introspection: periodic atomic status-file export -----------
    // The render callback reads only lock-free instruments and relaxed
    // atomics, so the writer thread never contends with the pipeline.
    const auto render_status = [&]() {
        util::Histogram* stages[kFrecStageCount] = {
            &instruments.stage_ingest_wait, &instruments.stage_assembly,
            &instruments.stage_ready_wait, &instruments.stage_backend};
        const std::uint64_t shed_total =
            state.shed_mem_budget.load(std::memory_order_relaxed) +
            state.shed_queue_full.load(std::memory_order_relaxed) +
            state.shed_deadline.load(std::memory_order_relaxed) +
            state.shed_breaker.load(std::memory_order_relaxed) +
            state.shed_slo.load(std::memory_order_relaxed) +
            state.shed_restart_loss.load(std::memory_order_relaxed);
        const std::uint64_t considered = state.slo_considered.load(std::memory_order_relaxed);
        const std::uint64_t violations = state.slo_violations.load(std::memory_order_relaxed);
        const auto tier = static_cast<Tier>(instruments.breaker_state.value());
        std::ostringstream out;
        out << "{\n";
        out << "  \"pid\": " << ::getpid() << ",\n";
        out << "  \"generation\": " << config_.generation << ",\n";
        out << "  \"model_generation\": "
            << state.model_generation.load(std::memory_order_relaxed) << ",\n";
        out << "  \"uptime_s\": "
            << std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
                   .count()
            << ",\n";
        out << "  \"breaker_tier\": " << static_cast<int>(tier) << ",\n";
        out << "  \"breaker_tier_name\": \"" << tier_name(tier) << "\",\n";
        out << "  \"flows_active\": " << instruments.flows_active.value() << ",\n";
        out << "  \"flows_ingested\": " << state.flows_ingested.load(std::memory_order_relaxed)
            << ",\n";
        out << "  \"flows_classified\": "
            << state.flows_classified.load(std::memory_order_relaxed) << ",\n";
        out << "  \"flows_unknown\": " << state.flows_unknown.load(std::memory_order_relaxed)
            << ",\n";
        out << "  \"shed_total\": " << shed_total << ",\n";
        out << "  \"drift_alarms\": " << state.drift_alarms.load(std::memory_order_relaxed)
            << ",\n";
        out << "  \"slo_considered\": " << considered << ",\n";
        out << "  \"slo_violations\": " << violations << ",\n";
        out << "  \"slo_compliance\": "
            << (considered > 0
                    ? 1.0 - static_cast<double>(violations) / static_cast<double>(considered)
                    : 1.0)
            << ",\n";
        out << "  \"snapshots\": " << state.snapshots_written.load(std::memory_order_relaxed)
            << ",\n";
        out << "  \"postmortems\": "
            << state.postmortems_written.load(std::memory_order_relaxed) << ",\n";
        out << "  \"flightrec\": {\"enabled\": " << (recorder.has_value() ? "true" : "false")
            << ", \"events\": " << (recorder.has_value() ? recorder->recorded_total() : 0)
            << ", \"dropped\": " << (recorder.has_value() ? recorder->dropped_total() : 0)
            << "},\n";
        out << "  \"stages\": [";
        for (std::size_t s = 0; s < kFrecStageCount; ++s) {
            const util::Histogram& h = *stages[s];
            const auto p99 = static_cast<std::uint64_t>(h.quantile(0.99));
            out << (s == 0 ? "\n" : ",\n");
            out << "    {\"stage\": \"" << frec_stage_name(static_cast<std::uint32_t>(s))
                << "\", \"count\": " << h.count() << ", \"p50_ns\": "
                << static_cast<std::uint64_t>(h.quantile(0.50))
                << ", \"p95_ns\": " << static_cast<std::uint64_t>(h.quantile(0.95))
                << ", \"p99_ns\": " << p99
                << ", \"p99_exemplar_flow\": "
                << (recorder.has_value()
                        ? recorder->exemplar(static_cast<FrecStage>(s), frec_bucket(p99))
                        : 0)
                << "}";
        }
        out << "\n  ]\n}\n";
        return out.str();
    };
    std::optional<StatusWriter> status;
    if (!config_.status_path.empty()) {
        status.emplace(
            StatusWriterConfig{.path = config_.status_path, .period_s = config_.status_period_s},
            render_status);
    }

    // --- driver (this thread): pump the stream into the ingest queue -------
    ServeReport report;
    report.generation = config_.generation;
    std::uint64_t events_total = 0;
    std::uint64_t events_dropped_queue = 0;
    if (snap.has_value()) {
        report.restored = true;
        report.watermark = snap->watermark;
        events_total = snap->counters.events_total;
        events_dropped_queue = snap->counters.events_dropped_queue;
        // The stream is seed-deterministic (bursts and mangles included), so
        // skipping exactly `watermark` draws resumes the identical sequence
        // the crashed generation had not yet delivered.
        for (std::uint64_t skipped = 0; skipped < snap->watermark; ++skipped) {
            if (!stream.next().has_value()) {
                break;
            }
            if ((skipped & 0x3FF) == 0) {
                watchdog.beat(wd_driver);
            }
        }
    }
    {
        FPTC_TRACE_SPAN("serve_ingest");
        const bool snapshots_on =
            !config_.snapshot_path.empty() &&
            (config_.snapshot_period_s > 0.0 || config_.snapshot_every > 0);
        auto last_marker = std::chrono::steady_clock::now();
        std::uint64_t events_since_marker = 0;
        while (auto event = stream.next()) {
            watchdog.beat(wd_driver);
            ++events_total;
            instruments.events.add();
            // Bounded backpressure: tolerate a short stall (a capture
            // buffer's worth), then shed the event with a typed reason —
            // the driver never blocks indefinitely on a wedged assembler.
            if (!ingest.push_wait(
                    IngestItem{*event, false, {}, std::chrono::steady_clock::now()},
                    std::chrono::milliseconds(20))) {
                ++events_dropped_queue;
                instruments.dropped_queue.add();
                frec_note(FrecRing::driver, FrecKind::shed, event->flow_id, 1,
                          static_cast<std::uint32_t>(FrecShed::queue_full));
            } else {
                frec_note(FrecRing::driver, FrecKind::ingest, event->flow_id, events_total);
            }
            ++events_since_marker;
            if (snapshots_on &&
                ((config_.snapshot_period_s > 0.0 &&
                  elapsed_ms(last_marker) >= config_.snapshot_period_s * 1000.0) ||
                 (config_.snapshot_every > 0 && events_since_marker >= config_.snapshot_every))) {
                // Consistent cut: the marker rides the FIFO queue carrying
                // the driver's exact counters, so when the assembler
                // dequeues it, table + assembler counters agree with the
                // watermark precisely.
                IngestItem marker;
                marker.is_marker = true;
                marker.cut = SnapshotMarker{events_total, events_dropped_queue};
                marker.enqueued = std::chrono::steady_clock::now();
                // A refused marker just skips one snapshot period; the
                // cadence clock resets either way so a saturated queue is
                // not hammered with markers.
                (void)ingest.push_wait(std::move(marker), std::chrono::milliseconds(200));
                last_marker = std::chrono::steady_clock::now();
                events_since_marker = 0;
            }
            if (util::shutdown_requested()) {
                break;
            }
        }
    }
    watchdog.mark_done(wd_driver);
    ingest.close();
    assembler.join();
    classifier.join();
    watchdog.stop();
    if (recorder.has_value()) {
        instruments.frec_events.set(static_cast<std::int64_t>(recorder->recorded_total()));
        instruments.frec_dropped.set(static_cast<std::int64_t>(recorder->dropped_total()));
        report.frec_events = recorder->recorded_total();
        report.frec_dropped = recorder->dropped_total();
    }
    if (status.has_value()) {
        status->stop();  // the final export reflects the fully drained pipeline
        report.status_writes = status->writes();
    }

    const bool clean_finish = !util::shutdown_requested();
    if (!config_.snapshot_path.empty() && clean_finish) {
        // The stream is fully served and accounted: a leftover snapshot
        // would make the *next* run believe it crashed.  Remove it; only a
        // crash leaves one behind.
        ::unlink(config_.snapshot_path.c_str());
    }
    if (recorder.has_value() && clean_finish) {
        // A leftover ring file would let a later seal describe a run that
        // finished fine; only a crash leaves one behind (that is the point).
        recorder->remove_backing();
    }
    report.postmortems_written = state.postmortems_written.load();

    report.events_total = events_total;
    report.events_dropped_queue = events_dropped_queue;
    report.events_quarantined = state.events_quarantined.load();
    report.events_dropped_mem = state.events_dropped_mem.load();
    report.events_dropped_slo = state.events_dropped_slo.load();
    report.flows_ingested = state.flows_ingested.load();
    report.flows_classified = state.flows_classified.load();
    report.flows_correct = state.flows_correct.load();
    report.shed_mem_budget = state.shed_mem_budget.load();
    report.shed_queue_full = state.shed_queue_full.load();
    report.shed_deadline = state.shed_deadline.load();
    report.shed_breaker = state.shed_breaker.load();
    report.shed_slo = state.shed_slo.load();
    report.shed_restart_loss = state.shed_restart_loss.load();
    report.batches = state.batches.load();
    report.slo_considered = state.slo_considered.load();
    report.slo_violations = state.slo_violations.load();
    report.snapshots_written = state.snapshots_written.load();
    report.restored_flows = state.restored_flows.load();
    report.restore_refused = state.restore_refused.load();
    report.flows_unknown = state.flows_unknown.load();
    report.unknown_truth_total = state.unknown_truth_total.load();
    report.unknown_truth_rejected = state.unknown_truth_rejected.load();
    report.events_quarantined_backwards = state.events_quarantined_backwards.load();
    report.drift_alarms = state.drift_alarms.load();
    report.drift_alarms_confidence = drift_final.alarms_confidence;
    report.drift_alarms_input = drift_final.alarms_input;
    report.drift_alarms_rate = drift_final.alarms_rate;
    report.drift_samples = drift_final.samples;
    report.drift_first_alarm_sample = drift_final.first_alarm_sample;
    report.confidence_mean = drift_final.confidence_mean;
    report.reload_attempts = reload_final.attempts;
    report.reloads = state.reloads.load();
    report.reload_rollbacks = state.reload_rollbacks.load();
    report.model_generation = state.model_generation.load();
    report.breaker_trips = breaker_trips;
    report.breaker_recoveries = breaker_recoveries;
    report.final_tier = breaker_final;
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        const auto rank = [&](double q) {
            return latencies[std::min(latencies.size() - 1,
                                      static_cast<std::size_t>(q * static_cast<double>(
                                                                       latencies.size())))];
        };
        report.p50_latency_ms = rank(0.50);
        report.p99_latency_ms = rank(0.99);
    }
    return report;
}

} // namespace fptc::serve
