#include "fptc/serve/admission.hpp"

#include <cmath>

namespace fptc::serve {

CoDelAdmission::CoDelAdmission(const CoDelConfig& config) : config_(config) {}

double CoDelAdmission::control_law(double t) const
{
    return t + config_.interval_ms / std::sqrt(static_cast<double>(count_));
}

bool CoDelAdmission::should_drop(double sojourn_ms, double now_ms)
{
    if (!enabled()) {
        return false;
    }

    bool ok_to_drop = false;
    if (sojourn_ms < config_.target_ms) {
        // One good sojourn resets the excursion: a standing queue that
        // drains below target is healthy.
        first_above_ms_ = -1.0;
    } else if (first_above_ms_ < 0.0) {
        // Start the excursion clock; dropping begins only if we stay above
        // target for a full interval.
        first_above_ms_ = now_ms + config_.interval_ms;
    } else if (now_ms >= first_above_ms_) {
        ok_to_drop = true;
    }

    if (dropping_) {
        if (!ok_to_drop) {
            dropping_ = false;
            exited_dropping_ms_ = now_ms;
            last_count_ = count_;
            return false;
        }
        if (now_ms >= drop_next_ms_) {
            ++count_;
            ++drops_;
            drop_next_ms_ = control_law(drop_next_ms_);
            return true;
        }
        return false;
    }

    if (ok_to_drop) {
        dropping_ = true;
        // A relapse within two intervals of the last dropping state resumes
        // near the previous drop rate instead of re-learning it from 1.
        const bool recent = exited_dropping_ms_ >= 0.0 &&
                            now_ms - exited_dropping_ms_ < 2.0 * config_.interval_ms;
        count_ = (recent && last_count_ > 2) ? last_count_ - 2 : 1;
        ++drops_;
        drop_next_ms_ = control_law(now_ms);
        return true;
    }
    return false;
}

} // namespace fptc::serve
