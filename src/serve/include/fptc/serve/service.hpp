// The streaming classification service.
//
// Three-stage pipeline over two bounded queues, one thread per stage:
//
//   driver (caller)  --events-->  [ingest queue]  --assembler thread-->
//   flow table (rolling 15 s windows, LRU eviction)  --ready flows-->
//   [ready queue]  --classifier thread-->  breaker-picked backend --> labels
//
// Robustness contract (the torture gate's assertions):
//
//   * The service never aborts: malformed events are quarantined, overload
//     is shed, backend stalls are cut by the batch deadline, repeated
//     failures walk the breaker down the degradation ladder.
//   * Every dropped *flow* carries exactly one typed shed reason —
//     queue_full (ready queue backpressure), mem_budget (LRU eviction /
//     budget refusal), deadline (batch deadline expired), breaker (ladder
//     bottom), slo (sojourn-time admission control, admission.hpp),
//     restart_loss (in flight across a crash, bounded by the snapshot
//     period) — and flows_ingested == flows_classified + flows_unknown +
//     sheds, checked by ServeReport::accounted() (flows_unknown is the
//     typed open-set rejection outcome, not a shed: the flow *was* served,
//     the service declined to force a label on it).  With snapshots
//     enabled the invariant
//     holds *across process generations*: a restarted worker re-bases its
//     counters on the snapshot cut and types the loss window.
//   * Event-level drops are separate, also typed: quarantined (validation),
//     queue_full (ingest queue), mem_budget (refused admission), slo
//     (sojourn admission at the ingest queue).
//   * After run() returns and the report is dropped, every byte charged to
//     the MemBudget has been credited back (in_use() returns to its
//     pre-run level; 0 in a dedicated process).
//
// Crash recovery (snapshot.hpp, watchdog.hpp, supervisor.hpp): the driver
// injects consistent-cut markers into the ingest queue; the assembler
// serializes the flow table + counter cut through DurableFile when a marker
// arrives; a restarted worker restores the snapshot, skips the
// deterministic stream past the watermark, and accounts the bounded loss
// window as restart_loss sheds.  A watchdog thread detects wedged pipeline
// threads (FPTC_FAULT_SERVE_HANG) and hang-exits so the supervisor can
// recover.
//
// Metric names: the registry's JSON export does not escape instrument
// names, so the shed taxonomy uses plain suffixed counters
// (fptc_serve_shed_<reason>_total) instead of Prometheus-style labels.
#pragma once

#include "fptc/serve/backend.hpp"
#include "fptc/serve/breaker.hpp"
#include "fptc/serve/stream.hpp"

#include <cstddef>
#include <cstdint>
#include <string>

namespace fptc::serve {

/// Service knobs, each with an FPTC_SERVE_* environment override (strictly
/// validated by from_env(); a malformed knob throws util::EnvError).
struct ServeConfig {
    std::size_t queue_depth = 4096;   ///< FPTC_SERVE_QUEUE_DEPTH: ingest events
    std::size_t ready_depth = 64;     ///< FPTC_SERVE_READY_DEPTH: window-closed flows
    std::size_t batch_size = 16;      ///< FPTC_SERVE_BATCH: flows per classify batch
    double window_seconds = 15.0;     ///< FPTC_SERVE_WINDOW_S: flowpic window
    double deadline_ms = 500.0;       ///< FPTC_SERVE_DEADLINE_MS: per-batch (0 = off)
    std::size_t mem_mb = 64;          ///< FPTC_SERVE_MEM_MB: flow-table byte cap
    double breaker_p99_ms = 250.0;    ///< FPTC_SERVE_BREAKER_P99_MS
    int breaker_failures = 3;         ///< FPTC_SERVE_BREAKER_FAILURES
    int breaker_cooldown = 8;         ///< FPTC_SERVE_BREAKER_COOLDOWN batches
    std::size_t flowpic_dim = 32;     ///< full-tier flowpic resolution
    std::size_t reduced_dim = 16;     ///< reduced-tier flowpic resolution
    std::size_t num_classes = 5;

    // Hard latency SLO (CoDel sojourn admission at both queues; admission.hpp).
    double slo_ms = 0.0;              ///< FPTC_SERVE_SLO_MS: queue-sojourn target (0 = off)
    double slo_interval_ms = 100.0;   ///< FPTC_SERVE_SLO_INTERVAL_MS: CoDel interval

    // Durable flow-state snapshots (snapshot.hpp).
    std::string snapshot_path;        ///< FPTC_SERVE_SNAPSHOT: snapshot file (empty = off)
    double snapshot_period_s = 1.0;   ///< FPTC_SERVE_SNAPSHOT_S: wall-clock cadence (0 = off)
    std::uint64_t snapshot_every = 0; ///< FPTC_SERVE_SNAPSHOT_EVERY: event cadence (0 = off)

    // Open-set rejection (backend.hpp): a flow whose calibrated max-class
    // score is below the threshold is routed to the typed `unknown` outcome
    // instead of a forced label.  The accounting invariant becomes
    // flows_ingested == flows_classified + flows_unknown + sheds.
    double unknown_thresh = 0.0;      ///< FPTC_SERVE_UNKNOWN_THRESH: 0 = off

    // Online drift detection (drift.hpp).  lambda = 0 disables the monitor.
    double drift_lambda = 0.0;        ///< FPTC_SERVE_DRIFT_LAMBDA: PH alarm threshold
    double drift_delta = 0.05;        ///< FPTC_SERVE_DRIFT_DELTA: PH slack (sigma units)
    std::size_t drift_min_samples = 64; ///< FPTC_SERVE_DRIFT_MIN: PH warmup samples
    std::size_t drift_rate_window = 128; ///< FPTC_SERVE_DRIFT_RATE_WINDOW
    double drift_rate_thresh = 0.0;   ///< FPTC_SERVE_DRIFT_RATE_THRESH: L1 (0 = off)

    // Canary-gated hot reload (reload.hpp).  Empty path disables.
    std::string reload_path;          ///< FPTC_SERVE_RELOAD: candidate checkpoint
    double reload_tolerance = 0.1;    ///< FPTC_SERVE_RELOAD_TOL: golden-accuracy slack
    std::size_t reload_canary_flows = 12; ///< FPTC_SERVE_RELOAD_CANARY: flows/class
    std::uint64_t reload_every = 8;   ///< FPTC_SERVE_RELOAD_EVERY: poll cadence (batches)

    // Supervision (watchdog.hpp, supervisor.hpp).
    double hang_stall_s = 0.0;        ///< FPTC_SERVE_HANG_S: watchdog stall budget (0 = off)
    std::string heartbeat_path;       ///< FPTC_SERVE_HEARTBEAT: liveness file for supervisor
    bool gbt_only = false;            ///< FPTC_SERVE_GBT_ONLY: clamp ladder to fallback tier
    std::uint32_t generation = 0;     ///< FPTC_SERVE_GENERATION: worker restart count

    // Flight recorder + crash postmortems (flightrec.hpp).  A non-empty
    // postmortem path implies the recorder: a crash dump needs rings.
    bool flightrec = false;           ///< FPTC_SERVE_FLIGHTREC: record lifecycle events
    std::size_t flightrec_events = 4096; ///< FPTC_SERVE_FLIGHTREC_EVENTS: per-ring capacity
    std::string flightrec_ring;       ///< FPTC_SERVE_FLIGHTREC_RING: mmap backing file
    std::string postmortem_path;      ///< FPTC_SERVE_POSTMORTEM: crash dump file ("" = off)

    // Live introspection (status.hpp).
    std::string status_path;          ///< FPTC_SERVE_STATUS: status file ("" = off)
    double status_period_s = 1.0;     ///< FPTC_SERVE_STATUS_S: export cadence

    /// Extra entropy mixed into fingerprint() — the bench sets this from the
    /// stream identity (seed/flows/arrival), so a snapshot is never restored
    /// against a *different* deterministic stream.
    std::uint64_t fingerprint_extra = 0;

    /// Replay-compatibility fingerprint persisted in snapshots: covers the
    /// fields that must match for a watermark-skip resume to be sound.
    /// Never 0 (0 means "don't check" to load_snapshot).
    [[nodiscard]] std::uint64_t fingerprint() const;

    /// Defaults overridden by the FPTC_SERVE_* environment knobs.
    [[nodiscard]] static ServeConfig from_env();
};

/// Everything the run did, for the harness and the bench emitter.  With a
/// restored snapshot, counters continue from the snapshot cut — the report
/// describes the whole logical run, not just this process generation.
struct ServeReport {
    // Event-level accounting.
    std::uint64_t events_total = 0;          ///< events pulled from the stream
    std::uint64_t events_quarantined = 0;    ///< failed ingest validation
    std::uint64_t events_dropped_queue = 0;  ///< ingest queue full
    std::uint64_t events_dropped_mem = 0;    ///< new flow refused admission
    std::uint64_t events_dropped_slo = 0;    ///< CoDel drop at the ingest queue

    // Flow-level accounting (the invariant).
    std::uint64_t flows_ingested = 0;   ///< flows that entered the table
    std::uint64_t flows_classified = 0; ///< confident labels emitted
    std::uint64_t flows_correct = 0;    ///< labels matching ground truth
    std::uint64_t flows_unknown = 0;    ///< open-set rejected (below unknown_thresh)
    std::uint64_t shed_mem_budget = 0;  ///< LRU evicted / budget refused
    std::uint64_t shed_queue_full = 0;  ///< ready-queue backpressure
    std::uint64_t shed_deadline = 0;    ///< batch deadline expired
    std::uint64_t shed_breaker = 0;     ///< shed tier or backend failure
    std::uint64_t shed_slo = 0;         ///< CoDel drop at the ready queue
    std::uint64_t shed_restart_loss = 0; ///< in flight across a crash (typed loss window)

    // Pipeline health.
    std::uint64_t batches = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_recoveries = 0;
    int final_tier = 0;
    double p50_latency_ms = 0.0;  ///< per-batch classify latency
    double p99_latency_ms = 0.0;
    double wall_seconds = 0.0;

    // SLO compliance (flows whose ready-queue sojourn was measured).
    std::uint64_t slo_considered = 0;
    std::uint64_t slo_violations = 0;   ///< sojourns over the target

    // Open-set oracle (flows whose *ground truth* is outside the trained
    // classes, i.e. label >= num_classes — trafficgen drift schedules
    // inject them).  Counted at classification time, so the unknown-flood
    // gate can assert rejected/total without re-deriving the oracle.
    std::uint64_t unknown_truth_total = 0;    ///< unknown-truth flows that reached a verdict
    std::uint64_t unknown_truth_rejected = 0; ///< ... of which were routed to `unknown`

    // Ingest trust boundary.
    std::uint64_t events_quarantined_backwards = 0; ///< in-flow time-warped packets dropped

    // Drift detection (drift.hpp).
    std::uint64_t drift_alarms = 0;             ///< alarms across all signal families
    std::uint64_t drift_alarms_confidence = 0;
    std::uint64_t drift_alarms_input = 0;
    std::uint64_t drift_alarms_rate = 0;
    std::uint64_t drift_samples = 0;            ///< flows the monitor observed
    std::uint64_t drift_first_alarm_sample = 0; ///< 1-based; 0 = never
    double confidence_mean = 0.0;               ///< mean calibrated max-class score

    // Hot reload (reload.hpp).
    std::uint64_t reload_attempts = 0;
    std::uint64_t reloads = 0;           ///< candidates accepted + swapped in
    std::uint64_t reload_rollbacks = 0;  ///< candidates rejected by the canary gate
    std::uint32_t model_generation = 0;  ///< accepted reloads (persists across restarts)

    // Crash recovery.
    std::uint64_t snapshots_written = 0;
    bool restored = false;              ///< this run resumed from a snapshot
    std::uint64_t watermark = 0;        ///< stream events skipped on restore
    std::uint64_t restored_flows = 0;   ///< flows rebuilt into the table
    std::uint64_t restore_refused = 0;  ///< restored flows the budget refused (typed mem sheds)
    std::uint32_t generation = 0;       ///< worker generation (restart count)

    // Flight recorder + live status (flightrec.hpp, status.hpp).
    std::uint64_t frec_events = 0;      ///< lifecycle events recorded across rings
    std::uint64_t frec_dropped = 0;     ///< events overwritten by ring wrap-around
    std::uint64_t postmortems_written = 0; ///< in-process crash dumps this generation
    std::uint64_t status_writes = 0;    ///< status-file exports this generation

    [[nodiscard]] std::uint64_t shed_total() const noexcept
    {
        return shed_mem_budget + shed_queue_full + shed_deadline + shed_breaker + shed_slo +
               shed_restart_loss;
    }

    /// The flow-accounting invariant (holds across process generations):
    /// every ingested flow ends as exactly one of a confident label, a
    /// typed `unknown` rejection, or a typed shed.
    [[nodiscard]] bool accounted() const noexcept
    {
        return flows_ingested == flows_classified + flows_unknown + shed_total();
    }

    /// Fraction of measured ready-queue sojourns that met the SLO target
    /// (1.0 when the SLO is off or nothing was measured).
    [[nodiscard]] double slo_compliance() const noexcept
    {
        if (slo_considered == 0) {
            return 1.0;
        }
        return 1.0 - static_cast<double>(slo_violations) / static_cast<double>(slo_considered);
    }

    /// One greppable line ("serve: ingested=... classified=... shed=...").
    [[nodiscard]] std::string summary() const;
};

class StreamingClassifier {
public:
    /// Backends must outlive the classifier.
    StreamingClassifier(const ServeConfig& config, Backend& full, Backend& reduced,
                        Backend& fallback);

    /// Drive `stream` to completion (or until a SIGTERM shutdown request),
    /// then drain and join both pipeline threads.  Never throws for data-,
    /// load- or backend-level failures; those become typed sheds in the
    /// report.  When config.snapshot_path names a loadable snapshot, the run
    /// first restores it and skips `stream` past the persisted watermark;
    /// `stream` must be the same deterministic stream the crashed
    /// generation was consuming (enforced via the config fingerprint).
    [[nodiscard]] ServeReport run(InterleavedStream& stream);

private:
    ServeConfig config_;
    Backend& full_;
    Backend& reduced_;
    Backend& fallback_;
};

} // namespace fptc::serve
