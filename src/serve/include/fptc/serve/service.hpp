// The streaming classification service.
//
// Three-stage pipeline over two bounded queues, one thread per stage:
//
//   driver (caller)  --events-->  [ingest queue]  --assembler thread-->
//   flow table (rolling 15 s windows, LRU eviction)  --ready flows-->
//   [ready queue]  --classifier thread-->  breaker-picked backend --> labels
//
// Robustness contract (the torture gate's assertions):
//
//   * The service never aborts: malformed events are quarantined, overload
//     is shed, backend stalls are cut by the batch deadline, repeated
//     failures walk the breaker down the degradation ladder.
//   * Every dropped *flow* carries exactly one typed shed reason —
//     queue_full (ready queue backpressure), mem_budget (LRU eviction /
//     budget refusal), deadline (batch deadline expired), breaker (ladder
//     bottom) — and flows_ingested == flows_classified + sheds, checked by
//     ServeReport::accounted().
//   * Event-level drops are separate, also typed: quarantined (validation),
//     queue_full (ingest queue), mem_budget (refused admission).
//   * After run() returns and the report is dropped, every byte charged to
//     the MemBudget has been credited back (in_use() returns to its
//     pre-run level; 0 in a dedicated process).
//
// Metric names: the registry's JSON export does not escape instrument
// names, so the shed taxonomy uses plain suffixed counters
// (fptc_serve_shed_<reason>_total) instead of Prometheus-style labels.
#pragma once

#include "fptc/serve/backend.hpp"
#include "fptc/serve/breaker.hpp"
#include "fptc/serve/stream.hpp"

#include <cstddef>
#include <cstdint>
#include <string>

namespace fptc::serve {

/// Service knobs, each with an FPTC_SERVE_* environment override (strictly
/// validated by from_env(); a malformed knob throws util::EnvError).
struct ServeConfig {
    std::size_t queue_depth = 4096;   ///< FPTC_SERVE_QUEUE_DEPTH: ingest events
    std::size_t ready_depth = 64;     ///< FPTC_SERVE_READY_DEPTH: window-closed flows
    std::size_t batch_size = 16;      ///< FPTC_SERVE_BATCH: flows per classify batch
    double window_seconds = 15.0;     ///< FPTC_SERVE_WINDOW_S: flowpic window
    double deadline_ms = 500.0;       ///< FPTC_SERVE_DEADLINE_MS: per-batch (0 = off)
    std::size_t mem_mb = 64;          ///< FPTC_SERVE_MEM_MB: flow-table byte cap
    double breaker_p99_ms = 250.0;    ///< FPTC_SERVE_BREAKER_P99_MS
    int breaker_failures = 3;         ///< FPTC_SERVE_BREAKER_FAILURES
    int breaker_cooldown = 8;         ///< FPTC_SERVE_BREAKER_COOLDOWN batches
    std::size_t flowpic_dim = 32;     ///< full-tier flowpic resolution
    std::size_t reduced_dim = 16;     ///< reduced-tier flowpic resolution
    std::size_t num_classes = 5;

    /// Defaults overridden by the FPTC_SERVE_* environment knobs.
    [[nodiscard]] static ServeConfig from_env();
};

/// Everything the run did, for the harness and the bench emitter.
struct ServeReport {
    // Event-level accounting.
    std::uint64_t events_total = 0;          ///< events pulled from the stream
    std::uint64_t events_quarantined = 0;    ///< failed ingest validation
    std::uint64_t events_dropped_queue = 0;  ///< ingest queue full
    std::uint64_t events_dropped_mem = 0;    ///< new flow refused admission

    // Flow-level accounting (the invariant).
    std::uint64_t flows_ingested = 0;   ///< flows that entered the table
    std::uint64_t flows_classified = 0; ///< labels emitted
    std::uint64_t flows_correct = 0;    ///< labels matching ground truth
    std::uint64_t shed_mem_budget = 0;  ///< LRU evicted / budget refused
    std::uint64_t shed_queue_full = 0;  ///< ready-queue backpressure
    std::uint64_t shed_deadline = 0;    ///< batch deadline expired
    std::uint64_t shed_breaker = 0;     ///< shed tier or backend failure

    // Pipeline health.
    std::uint64_t batches = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_recoveries = 0;
    int final_tier = 0;
    double p50_latency_ms = 0.0;  ///< per-batch classify latency
    double p99_latency_ms = 0.0;
    double wall_seconds = 0.0;

    [[nodiscard]] std::uint64_t shed_total() const noexcept
    {
        return shed_mem_budget + shed_queue_full + shed_deadline + shed_breaker;
    }

    /// The flow-accounting invariant.
    [[nodiscard]] bool accounted() const noexcept
    {
        return flows_ingested == flows_classified + shed_total();
    }

    /// One greppable line ("serve: ingested=... classified=... shed=...").
    [[nodiscard]] std::string summary() const;
};

class StreamingClassifier {
public:
    /// Backends must outlive the classifier.
    StreamingClassifier(const ServeConfig& config, Backend& full, Backend& reduced,
                        Backend& fallback);

    /// Drive `stream` to completion (or until a SIGTERM shutdown request),
    /// then drain and join both pipeline threads.  Never throws for data-,
    /// load- or backend-level failures; those become typed sheds in the
    /// report.
    [[nodiscard]] ServeReport run(InterleavedStream& stream);

private:
    ServeConfig config_;
    Backend& full_;
    Backend& reduced_;
    Backend& fallback_;
};

} // namespace fptc::serve
