// CoDel-style sojourn-time admission control for the serve queues.
//
// The deadline/breaker pair bounds how long a *batch* may compute, but says
// nothing about how long work may *queue*: under sustained overload both
// bounded queues fill, and every item that finally reaches its consumer has
// already burned most of its latency budget standing in line — the
// classic bufferbloat failure, where p99 latency pins at (queue depth ×
// service time) and the deadline then sheds work that was doomed at
// enqueue.  FPTC_SERVE_SLO_MS turns the latency target into an *admission*
// decision using the CoDel controlled-delay discipline (Nichols & Jacobson,
// CACM 2012):
//
//   * every queue item is stamped at enqueue;
//   * the consumer measures sojourn time at dequeue;
//   * one sojourn below target resets the controller (standing queues are
//     fine as long as they drain);
//   * sojourns continuously above target for a full `interval` enter the
//     dropping state: the offending item is dropped, and while the
//     excursion persists further items are dropped on a schedule that
//     tightens with the square root of the drop count (interval/sqrt(n)),
//     the controlled-delay law that steers the queue back to the target;
//   * leaving the dropping state remembers recent pressure: a quick
//     relapse resumes near the previous drop rate instead of restarting
//     the full interval wait.
//
// Drops surface as typed sheds (`slo` for window-closed flows at the ready
// queue, `events_dropped_slo` for packet events at the ingest queue) ahead
// of the circuit breaker — the ladder never even sees work that could not
// meet the SLO.
//
// The controller is a pure, deterministic state machine over caller-supplied
// clocks (milliseconds; any monotonic origin), so unit tests drive it with
// synthetic time and assert exact drop sequences.  Thread safety: none —
// one instance lives on each consumer thread.
#pragma once

#include <cstdint>

namespace fptc::serve {

struct CoDelConfig {
    double target_ms = 0.0;     ///< sojourn target (the SLO); <= 0 disables
    double interval_ms = 100.0; ///< how long above target before dropping starts
};

class CoDelAdmission {
public:
    explicit CoDelAdmission(const CoDelConfig& config);

    /// Decide the fate of the item about to be delivered: `sojourn_ms` is
    /// its time in queue, `now_ms` the consumer's monotonic clock.  True =
    /// drop the item (the caller owns the typed-shed bookkeeping).
    [[nodiscard]] bool should_drop(double sojourn_ms, double now_ms);

    [[nodiscard]] bool dropping() const noexcept { return dropping_; }
    [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
    [[nodiscard]] bool enabled() const noexcept { return config_.target_ms > 0.0; }

private:
    /// Next drop time under the controlled-delay law.
    [[nodiscard]] double control_law(double t) const;

    CoDelConfig config_;
    bool dropping_ = false;       ///< in the dropping state
    double first_above_ms_ = -1.0; ///< when the current above-target excursion would mature
    double drop_next_ms_ = 0.0;   ///< scheduled next drop while dropping
    std::uint64_t count_ = 0;     ///< drops in the current dropping state
    std::uint64_t last_count_ = 0; ///< count when the last dropping state ended
    double exited_dropping_ms_ = -1.0; ///< when the last dropping state ended
    std::uint64_t drops_ = 0;     ///< lifetime drops (telemetry)
};

} // namespace fptc::serve
